(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4). Default runs are scaled down so the whole suite
   finishes in minutes; --full selects the paper-scale parameters.

     dune exec bench/main.exe                     all experiments, scaled
     dune exec bench/main.exe -- --only fig42
     dune exec bench/main.exe -- --full --only table2
     dune exec bench/main.exe -- --micro          Bechamel micro-suite *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Timer = Tsg_util.Timer
module Table = Tsg_util.Text_table
module Synth_graph = Tsg_data.Synth_graph
module Datasets = Tsg_data.Datasets
module Pathways = Tsg_data.Pathways
module Pte = Tsg_data.Pte
module Taxogram = Tsg_core.Taxogram
module Tacgm = Tsg_core.Tacgm
module Specialize = Tsg_core.Specialize

type ctx = {
  scale : float;  (* database-size multiplier vs the paper *)
  go_concepts : int;  (* GO stand-in size (paper: 7800) *)
  seed : int;
  theta : float;  (* default support threshold (paper: 0.2) *)
  tacgm_seconds : float;  (* time budget per TAcGM run *)
  tacgm_embeddings : int;  (* simulated memory budget per TAcGM run *)
  pte_molecules : int;
  pte_max_edges : int option;
  baseline_seconds : float;  (* time budget for enhancement-free runs *)
  domains_max : int;  (* largest pool size the parallel experiment sweeps *)
}

let default_ctx =
  {
    scale = 0.03;
    go_concepts = 800;
    seed = 20080325; (* EDBT'08 opened on 2008-03-25 *)
    theta = 0.2;
    tacgm_seconds = 60.0;
    tacgm_embeddings = 3_000_000;
    pte_molecules = 120;
    pte_max_edges = Some 5;
    baseline_seconds = 120.0;
    domains_max = 8;
  }

let full_ctx =
  {
    default_ctx with
    scale = 1.0;
    go_concepts = Tsg_taxonomy.Go_like.paper_concepts;
    tacgm_seconds = 1200.0;
    tacgm_embeddings = 50_000_000;
    pte_molecules = Pte.paper_graph_count;
    pte_max_edges = None;
    baseline_seconds = 3600.0;
  }

let header title = Printf.printf "\n=== %s ===\n" title

let note fmt = Printf.printf fmt

let ms s = Printf.sprintf "%.0f" (1000.0 *. s)

(* when --csv DIR is given, every printed table is also written there *)
let csv_dir : string option ref = ref None

let finish_table name t =
  Table.print t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Table.save_csv t (Filename.concat dir (name ^ ".csv"))

let go_taxonomy ctx =
  Tsg_taxonomy.Go_like.generate ~concepts:ctx.go_concepts
    (Prng.of_int ctx.seed)

let build_scaled ctx tax spec =
  let rng = Prng.of_int (ctx.seed + Hashtbl.hash spec.Datasets.id) in
  let spec = Datasets.scale ctx.scale spec in
  let db =
    Datasets.build rng ~node_label:(Synth_graph.uniform_labels tax) spec
  in
  (spec, db)

(* the paper-reproduction experiments stay on one domain so the numbers
   remain comparable with the single-threaded Java implementation; the
   `parallel` experiment is where the pool is measured *)
let drop (_ : Tsg_core.Pattern.t) = ()

let run_taxogram ?max_edges ?(enhancements = Specialize.all_on) tax db theta =
  let config = { Taxogram.min_support = theta; max_edges; enhancements } in
  let spec = Taxogram.Spec.stream ~config ~domains:1 drop in
  let r = Taxogram.run spec tax db in
  (r.Taxogram.total_wall_seconds, r.Taxogram.pattern_count)

(* enhancement-free runs can take hours on the larger points (that is the
   point of the comparison); cut them off and report DNF like the paper's
   failed comparator runs *)
let run_budgeted ?max_edges ?(enhancements = Specialize.all_off) ctx tax db
    theta =
  let config = { Taxogram.min_support = theta; max_edges; enhancements } in
  let budget = Timer.Budget.of_seconds ctx.baseline_seconds in
  let spec = Taxogram.Spec.stream ~config ~budget ~domains:1 drop in
  let r = Taxogram.run spec tax db in
  let status =
    if r.Taxogram.completed then ms r.Taxogram.total_wall_seconds else "DNF"
  in
  (status, r.Taxogram.pattern_count)

let run_baseline ctx tax db theta = fst (run_budgeted ctx tax db theta)

let run_tacgm ?max_edges ctx tax db theta =
  let r =
    Tacgm.run ?max_edges ~embedding_budget:ctx.tacgm_embeddings
      ~time_budget:(Timer.Budget.of_seconds ctx.tacgm_seconds)
      ~min_support:theta tax db
  in
  match r.Tacgm.outcome with
  | Tacgm.Completed -> ms r.Tacgm.total_seconds
  | Tacgm.Out_of_memory -> "OOM"
  | Tacgm.Timed_out -> "DNF"

(* --- Table 1: dataset properties ------------------------------------------ *)

let table1 ctx =
  header "Table 1: properties of experimental data sets";
  note "(scaled to %.0f%% of the paper's database sizes)\n" (100.0 *. ctx.scale);
  let t =
    Table.create
      [ "DB Id"; "DB Size"; "Avg Nodes"; "Avg Edges"; "Dist Labels"; "Density" ]
  in
  let add_row id db =
    let s = Db.statistics db in
    Table.add_row t
      [
        id;
        string_of_int s.Db.graphs;
        Printf.sprintf "%.1f" s.Db.avg_nodes;
        Printf.sprintf "%.1f" s.Db.avg_edges;
        string_of_int s.Db.distinct_labels;
        Printf.sprintf "%.2f" s.Db.avg_density;
      ]
  in
  let go = go_taxonomy ctx in
  List.iter
    (fun spec ->
      let spec, db = build_scaled ctx go spec in
      add_row spec.Datasets.id db)
    (Datasets.d_series @ Datasets.nc_series @ Datasets.ed_series);
  List.iter
    (fun depth ->
      let rng = Prng.of_int (ctx.seed + depth) in
      let tax =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 1000; relationships = 2000; depth }
      in
      let sampler = Synth_graph.per_level_labels tax () in
      let spec = Datasets.scale ctx.scale (Datasets.td_spec ~depth) in
      let db = Datasets.build rng ~node_label:sampler spec in
      add_row spec.Datasets.id db)
    Datasets.td_depths;
  List.iter
    (fun concepts ->
      let rng = Prng.of_int (ctx.seed + concepts) in
      let tax =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts; relationships = 2 * concepts; depth = 10 }
      in
      let sampler = Synth_graph.uniform_labels tax in
      let spec = Datasets.scale ctx.scale (Datasets.ts_spec ~concepts) in
      let db = Datasets.build rng ~node_label:sampler spec in
      add_row spec.Datasets.id db)
    Datasets.ts_concept_counts;
  let atom_tax = Tsg_taxonomy.Atom_taxonomy.create () in
  let pte_db =
    Pte.generate (Prng.of_int ctx.seed) ~taxonomy:atom_tax
      ~molecules:ctx.pte_molecules ()
  in
  add_row "PTE" pte_db;
  finish_table "table1" t;
  note
    "paper: D/NC/ED/TD/TS rows average 6-15 nodes, 6-21 edges, density\n\
     0.06-0.32; PTE is 416 graphs averaging 22.6 nodes at density 0.12.\n"

(* --- Figure 4.2: runtime vs database size ---------------------------------- *)

let fig42 ctx =
  header "Figure 4.2: running time vs database size (theta=0.2)";
  let go = go_taxonomy ctx in
  let t =
    Table.create
      [ "DB"; "Graphs"; "Taxogram ms"; "TAcGM ms"; "Baseline ms"; "Patterns" ]
  in
  List.iter
    (fun spec ->
      let spec, db = build_scaled ctx go spec in
      let tg_s, tg_n = run_taxogram go db ctx.theta in
      let ta_status = run_tacgm ctx go db ctx.theta in
      let bl_status = run_baseline ctx go db ctx.theta in
      Table.add_row t
        [
          spec.Datasets.id;
          string_of_int (Db.size db);
          ms tg_s;
          ta_status;
          bl_status;
          string_of_int tg_n;
        ])
    Datasets.d_series;
  finish_table "fig42" t;
  note
    "paper shape: Taxogram nearly flat (seconds); TAcGM grows steeply and\n\
     hits out-of-memory beyond 4000 graphs; the baseline is the slowest\n\
     completing line.\n"

(* --- Figure 4.3: runtime vs max graph size ---------------------------------- *)

let fig43 ctx =
  header "Figure 4.3: running time vs max graph size (|D|=4000, theta=0.2)";
  let go = go_taxonomy ctx in
  let t =
    Table.create
      [ "DB"; "MaxEdges"; "Taxogram ms"; "TAcGM ms"; "Baseline ms"; "Patterns" ]
  in
  List.iter
    (fun spec ->
      let spec, db = build_scaled ctx go spec in
      let tg_s, tg_n = run_taxogram go db ctx.theta in
      let ta_status = run_tacgm ctx go db ctx.theta in
      let bl_status = run_baseline ctx go db ctx.theta in
      Table.add_row t
        [
          spec.Datasets.id;
          string_of_int spec.Datasets.max_edges;
          ms tg_s;
          ta_status;
          bl_status;
          string_of_int tg_n;
        ])
    Datasets.nc_series;
  finish_table "fig43" t;
  note
    "paper shape: Taxogram's growth rate is well below TAcGM's, and TAcGM\n\
     dies (OOM) once graphs exceed 20 edges.\n"

(* --- Figure 4.4: runtime & pattern count vs edge density --------------------- *)

let fig44 ctx =
  header "Figure 4.4: running time and pattern count vs edge density";
  let go = go_taxonomy ctx in
  let t = Table.create [ "DB"; "Density"; "Taxogram ms"; "Patterns" ] in
  List.iter
    (fun spec ->
      let spec, db = build_scaled ctx go spec in
      let tg_s, tg_n = run_taxogram go db ctx.theta in
      Table.add_row t
        [
          spec.Datasets.id;
          Printf.sprintf "%.2f" spec.Datasets.edge_density;
          ms tg_s;
          string_of_int tg_n;
        ])
    Datasets.ed_series;
  finish_table "fig44" t;
  note
    "paper shape: roughly linear up to density 0.10, then superlinear as\n\
     occurrence indices and the pattern count blow up.\n"

(* --- Figure 4.5: taxonomy depth ---------------------------------------------- *)

let fig45 ctx =
  header "Figure 4.5: performance vs taxonomy depth (1000 concepts, 2000 rels)";
  let t = Table.create [ "Depth"; "Taxogram ms"; "Patterns" ] in
  List.iter
    (fun depth ->
      let rng = Prng.of_int (ctx.seed + depth) in
      let tax =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 1000; relationships = 2000; depth }
      in
      let sampler = Synth_graph.per_level_labels tax () in
      let spec = Datasets.scale ctx.scale (Datasets.td_spec ~depth) in
      let db = Datasets.build rng ~node_label:sampler spec in
      let tg_s, tg_n = run_taxogram tax db ctx.theta in
      Table.add_row t [ string_of_int depth; ms tg_s; string_of_int tg_n ])
    Datasets.td_depths;
  finish_table "fig45" t;
  note
    "paper shape: flat until depth ~13, then the pattern count (and with it\n\
     the running time) grows steeply; TAcGM cannot run these at all.\n"

(* --- Figure 4.6: taxonomy size ------------------------------------------------ *)

let fig46 ctx =
  header "Figure 4.6: performance vs taxonomy size (fixed depth 10)";
  let t = Table.create [ "Concepts"; "Taxogram ms"; "Patterns" ] in
  List.iter
    (fun concepts ->
      let rng = Prng.of_int (ctx.seed + concepts) in
      let tax =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts; relationships = 2 * concepts; depth = 10 }
      in
      let sampler = Synth_graph.uniform_labels tax in
      let spec = Datasets.scale ctx.scale (Datasets.ts_spec ~concepts) in
      let db = Datasets.build rng ~node_label:sampler spec in
      let tg_s, tg_n = run_taxogram tax db ctx.theta in
      Table.add_row t [ string_of_int concepts; ms tg_s; string_of_int tg_n ])
    Datasets.ts_concept_counts;
  finish_table "fig46" t;
  note
    "paper shape: running time follows the pattern count, which generally\n\
     falls as the label vocabulary grows (fewer co-occurrences), with a\n\
     bump at small-to-mid taxonomy sizes (the paper sees it at 100).\n"

(* --- Figure 4.7: support threshold --------------------------------------------- *)

let fig47 ctx =
  header "Figure 4.7: Taxogram vs TAcGM at different support thresholds (D4000)";
  let go = go_taxonomy ctx in
  let _, db = build_scaled ctx go Datasets.d4000 in
  let t = Table.create [ "Support"; "Taxogram ms"; "Patterns"; "TAcGM ms" ] in
  List.iter
    (fun theta ->
      let tg_status, tg_n =
        run_budgeted ~enhancements:Specialize.all_on ctx go db theta
      in
      let ta_status = run_tacgm ctx go db theta in
      Table.add_row t
        [ Printf.sprintf "%.2f" theta; tg_status; string_of_int tg_n;
          ta_status ])
    [ 0.6; 0.5; 0.4; 0.3; 0.2; 0.1; 0.05; 0.02 ];
  finish_table "fig47" t;
  note
    "paper shape: Taxogram grows smoothly down to theta=0.02; TAcGM grows\n\
     exponentially below 0.3 and fails below 0.2 (out of memory).\n"

(* --- Table 2: pathways ----------------------------------------------------------- *)

let table2 ctx =
  header "Table 2: conserved pathway fragments across 30 prokaryotes (theta=0.2)";
  let rng = Prng.of_int ctx.seed in
  (* the pathway study always uses a full-size GO stand-in, like the paper:
     generating 7,800 concepts is cheap, and a thinner vocabulary would
     inflate label co-occurrences *)
  let go =
    Tsg_taxonomy.Go_like.generate
      ~concepts:(max ctx.go_concepts Tsg_taxonomy.Go_like.paper_concepts)
      (Prng.of_int ctx.seed)
  in
  let t =
    Table.create
      [ "Pathway"; "Time ms"; "Patterns"; "Paper ms"; "Paper pats";
        "Avg nodes"; "Avg edges" ]
  in
  let results =
    List.map
      (fun (spec : Pathways.spec) ->
        let db = Pathways.generate rng ~taxonomy:go spec in
        let tg_status, tg_n =
          run_budgeted ~max_edges:5 ~enhancements:Specialize.all_on ctx go db
            ctx.theta
        in
        (spec, db, tg_status, tg_n))
      Pathways.table2
  in
  List.iter
    (fun ((spec : Pathways.spec), db, tg_status, tg_n) ->
      Table.add_row t
        [
          spec.Pathways.name;
          tg_status;
          string_of_int tg_n;
          string_of_int spec.Pathways.paper_time_ms;
          string_of_int spec.Pathways.paper_patterns;
          Printf.sprintf "%.1f" (Db.avg_nodes db);
          Printf.sprintf "%.1f" (Db.avg_edges db);
        ])
    results;
  finish_table "table2" t;
  (* Spearman rank correlation between our pattern counts and the paper's:
     does the conservation ordering survive the simulation? *)
  let ours = List.map (fun (_, _, _, n) -> float_of_int n) results in
  let papers =
    List.map
      (fun ((s : Pathways.spec), _, _, _) ->
        float_of_int s.Pathways.paper_patterns)
      results
  in
  let rank xs =
    List.map
      (fun x -> float_of_int (List.length (List.filter (fun y -> y < x) xs)))
      xs
  in
  let ra = rank ours and rb = rank papers in
  let n = float_of_int (List.length ra) in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. n in
  let ma = mean ra and mb = mean rb in
  let cov =
    List.fold_left2 (fun acc a b -> acc +. ((a -. ma) *. (b -. mb))) 0.0 ra rb
  in
  let sd xs m =
    sqrt (List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs)
  in
  let denom = sd ra ma *. sd rb mb in
  if denom > 0.0 then
    note
      "rank correlation of pattern counts with the paper's Table 2: %.2f\n\
     \  (the conservation ordering, e.g. Nitrogen metabolism near the top,\n\
     \  should be broadly preserved)\n"
      (cov /. denom)

(* --- Figure 4.8: PTE ---------------------------------------------------------------- *)

let fig48 ctx =
  header "Figure 4.8: performance on (simulated) PTE chemical data";
  let tax = Tsg_taxonomy.Atom_taxonomy.create () in
  let db =
    Pte.generate (Prng.of_int ctx.seed) ~taxonomy:tax
      ~molecules:ctx.pte_molecules ()
  in
  note "molecules=%d avg_nodes=%.1f avg_edges=%.1f%s\n" (Db.size db)
    (Db.avg_nodes db) (Db.avg_edges db)
    (match ctx.pte_max_edges with
    | Some m -> Printf.sprintf " (patterns capped at %d edges)" m
    | None -> "");
  let t = Table.create [ "Support*100"; "Taxogram ms"; "Patterns" ] in
  List.iter
    (fun theta ->
      let tg_status, tg_n =
        run_budgeted ?max_edges:ctx.pte_max_edges
          ~enhancements:Specialize.all_on ctx tax db theta
      in
      Table.add_row t
        [ Printf.sprintf "%.0f" (100.0 *. theta); tg_status;
          string_of_int tg_n ])
    [ 0.6; 0.5; 0.3 ];
  finish_table "fig48" t;
  note
    "paper shape: both running time and pattern count explode even at high\n\
     supports (10,000 patterns at support 30) because C/H/O dominate the\n\
     molecules.\n"

(* --- Ablation: the Section 3 efficiency enhancements one by one -------------- *)

let ablation ctx =
  header "Ablation: Section 3 enhancements (a)-(d) on D3000";
  let go = go_taxonomy ctx in
  let _, db = build_scaled ctx go (List.nth Datasets.d_series 2) in
  let t =
    Table.create
      [ "Configuration"; "Time ms"; "Intersections"; "Visited"; "Patterns" ]
  in
  let run name enhancements =
    let config =
      { Taxogram.min_support = ctx.theta; max_edges = None; enhancements }
    in
    let r =
      Taxogram.run (Taxogram.Spec.stream ~config ~domains:1 drop) go db
    in
    Table.add_row t
      [
        name;
        ms r.Taxogram.total_wall_seconds;
        string_of_int r.Taxogram.spec_stats.Specialize.intersections;
        string_of_int r.Taxogram.spec_stats.Specialize.visited;
        string_of_int r.Taxogram.pattern_count;
      ]
  in
  run "all enhancements" Specialize.all_on;
  run "without (a) child pruning"
    { Specialize.all_on with child_pruning = false };
  run "without (b) label prefilter"
    { Specialize.all_on with label_prefilter = false };
  run "without (c) start preprocess"
    { Specialize.all_on with start_preprocess = false };
  run "without (d) collapse"
    { Specialize.all_on with collapse_equal_children = false };
  run "none (baseline)" Specialize.all_off;
  finish_table "ablation" t;
  note
    "every configuration returns the identical pattern set (tested); the\n\
     table shows what each pruning rule saves.\n";
  (* step-2 miner choice: gSpan (depth-first) vs the FSG-style level-wise
     miner -- identical output, different cost profile *)
  let t2 = Table.create [ "Step-2 miner"; "Time ms"; "Patterns" ] in
  List.iter
    (fun (name, miner) ->
      let config =
        {
          Taxogram.min_support = ctx.theta;
          max_edges = Some 4;
          enhancements = Specialize.all_on;
        }
      in
      let r =
        Taxogram.run
          (Taxogram.Spec.stream ~config ~class_miner:miner ~domains:1 drop)
          go db
      in
      Table.add_row t2
        [ name; ms r.Taxogram.total_wall_seconds;
          string_of_int r.Taxogram.pattern_count ])
    [ ("gSpan (depth-first)", `Gspan); ("FSG-style (level-wise)", `Level_wise) ];
  finish_table "ablation_miner" t2

(* --- Parallel speedup (opt-in: --only parallel) --------------------------------- *)

(* Work-stealing end-to-end runs on the generator's standard workloads:
   a step-2-heavy regime (the biggest NC point: large graphs make gSpan +
   occurrence-index construction dominate) and a step-3-heavy one (the
   deep-taxonomy regime of Figure 4.5, where specialization dominates).
   Writes BENCH_parallel.json. *)
let assert_scaling = ref false

let parallel_exp ctx =
  header "Parallel mining: work-stealing pool across Steps 2+3 (beyond the paper)";
  let host_cores = Domain.recommended_domain_count () in
  let domain_counts =
    let standard = List.filter (fun d -> d <= ctx.domains_max) [ 1; 2; 4; 8 ] in
    if List.mem ctx.domains_max standard then standard
    else standard @ [ ctx.domains_max ]
  in
  let workloads =
    let nc_heavy =
      let go = go_taxonomy ctx in
      let spec =
        List.nth Datasets.nc_series (List.length Datasets.nc_series - 1)
      in
      let spec, db = build_scaled ctx go spec in
      ("step2-heavy " ^ spec.Datasets.id, go, db)
    in
    let td_heavy =
      let depth = 13 in
      let rng = Prng.of_int (ctx.seed + depth) in
      let go =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 1000; relationships = 2000; depth }
      in
      let sampler = Synth_graph.per_level_labels go () in
      let spec = Datasets.scale ctx.scale (Datasets.td_spec ~depth) in
      let db = Datasets.build rng ~node_label:sampler spec in
      ("step3-heavy " ^ spec.Datasets.id, go, db)
    in
    [ nc_heavy; td_heavy ]
  in
  let config =
    { Taxogram.min_support = ctx.theta; max_edges = None;
      enhancements = Specialize.all_on }
  in
  let wall_cpu w c = Printf.sprintf "%s/%s" (ms w) (ms c) in
  let t =
    Table.create
      [ "Workload"; "Domains"; "Step2 w/c ms"; "Spec w/c ms"; "Total w/c ms";
        "Minor MW"; "Patterns"; "Identical" ]
  in
  (* measured wall clock per domain count, summed across workloads --
     the basis for recommended_domains below *)
  let wall_by_domains = Hashtbl.create 8 in
  let add_wall d s =
    let prev =
      Option.value ~default:0.0 (Hashtbl.find_opt wall_by_domains d)
    in
    Hashtbl.replace wall_by_domains d (prev +. s)
  in
  let json_workloads =
    List.map
      (fun (id, tax, db) ->
        let reference = ref [] in
        let rows =
          List.map
            (fun domains ->
              let g0 = Gc.quick_stat () in
              let r =
                Taxogram.run (Taxogram.Spec.collect ~config ~domains ()) tax db
              in
              let g1 = Gc.quick_stat () in
              (* calling domain only: each worker retires its own minor
                 heap with its domain, so this under-counts at d>1 -- it
                 tracks the sequential share plus join/merge allocation,
                 which is the part per-domain arenas are meant to shrink *)
              let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
              let identical =
                if domains = 1 then begin
                  reference := r.Taxogram.patterns;
                  true
                end
                else
                  Tsg_core.Pattern.equal_sets !reference r.Taxogram.patterns
              in
              add_wall domains r.Taxogram.total_wall_seconds;
              Table.add_row t
                [ id; string_of_int domains;
                  wall_cpu r.Taxogram.mining_wall_seconds
                    r.Taxogram.mining_cpu_seconds;
                  wall_cpu r.Taxogram.enumerate_wall_seconds
                    r.Taxogram.enumerate_cpu_seconds;
                  wall_cpu r.Taxogram.total_wall_seconds
                    r.Taxogram.total_cpu_seconds;
                  Printf.sprintf "%.1f" (minor_words /. 1e6);
                  string_of_int r.Taxogram.pattern_count;
                  (if identical then "yes" else "NO") ];
              (domains, r, minor_words, identical))
            domain_counts
        in
        let find d = List.find_opt (fun (d', _, _, _) -> d' = d) rows in
        let speedup field at =
          match (find 1, find at) with
          | Some (_, r1, _, _), Some (_, rn, _, _) when field rn > 0.0 ->
            field r1 /. field rn
          | _ -> 0.0
        in
        let step2_x4 = speedup (fun r -> r.Taxogram.mining_wall_seconds) 4 in
        let total_x4 = speedup (fun r -> r.Taxogram.total_wall_seconds) 4 in
        let row_json (domains, (r : Taxogram.result), minor_words, identical)
            =
          Printf.sprintf
            "      { \"domains\": %d, \"step2_wall_ms\": %.3f, \
             \"step2_cpu_ms\": %.3f, \"enumerate_wall_ms\": %.3f, \
             \"enumerate_cpu_ms\": %.3f, \"total_wall_ms\": %.3f, \
             \"total_cpu_ms\": %.3f, \"minor_words\": %.0f, \"patterns\": \
             %d, \"classes\": %d, \"identical_to_domains1\": %b }"
            domains
            (1000.0 *. r.Taxogram.mining_wall_seconds)
            (1000.0 *. r.Taxogram.mining_cpu_seconds)
            (1000.0 *. r.Taxogram.enumerate_wall_seconds)
            (1000.0 *. r.Taxogram.enumerate_cpu_seconds)
            (1000.0 *. r.Taxogram.total_wall_seconds)
            (1000.0 *. r.Taxogram.total_cpu_seconds)
            minor_words r.Taxogram.pattern_count r.Taxogram.class_count
            identical
        in
        Printf.sprintf
          "    {\n\
          \      \"id\": %S,\n\
          \      \"db_size\": %d,\n\
          \      \"step2_speedup_x4\": %.3f,\n\
          \      \"total_speedup_x4\": %.3f,\n\
          \      \"rows\": [\n%s\n      ]\n\
          \    }"
          id (Db.size db) step2_x4 total_x4
          (String.concat ",\n" (List.map row_json rows)))
      workloads
  in
  finish_table "parallel" t;
  (* recommended_domains is measured, not Domain.recommended_domain_count:
     the domain count whose summed total wall across both workloads was
     smallest (first wins on a tie, so it is deterministic) *)
  let recommended =
    fst
      (List.fold_left
         (fun best d ->
           match Hashtbl.find_opt wall_by_domains d with
           | Some w when w < snd best -> (d, w)
           | _ -> best)
         (1, infinity) domain_counts)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"recommended_domains\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"theta\": %.3f,\n\
      \  \"scale\": %.3f,\n\
      \  \"domain_counts\": [%s],\n\
      \  \"workloads\": [\n%s\n  ]\n\
       }\n"
      recommended host_cores ctx.theta ctx.scale
      (String.concat ", " (List.map string_of_int domain_counts))
      (String.concat ",\n" json_workloads)
  in
  let oc = open_out "BENCH_parallel.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  note
    "wrote BENCH_parallel.json (recommended_domains=%d, measured; this\n\
     host reports %d cores -- with a single CPU the extra domains are\n\
     pure overhead). gSpan roots are batched into the step-2 parallel\n\
     unit and same-root specializations into the step-3 unit; skew\n\
     toward one huge subtree bounds the gain.\n"
    recommended host_cores;
  if !assert_scaling then begin
    let wall d = Hashtbl.find_opt wall_by_domains d in
    match (wall 1, wall 4) with
    | Some w1, Some w4 when host_cores >= 4 ->
      if w4 <= w1 then
        note "scaling assertion: wall(4)=%sms <= wall(1)=%sms -- ok\n"
          (ms w4) (ms w1)
      else begin
        Printf.eprintf
          "scaling assertion FAILED: wall(4)=%sms > wall(1)=%sms on a \
           %d-core host\n"
          (ms w4) (ms w1) host_cores;
        exit 1
      end
    | Some w1, Some w4 ->
      (* under 4 cores extra domains cannot win and time-slicing plus
         stop-the-world minor collections make any wall bound noise, so
         the assertion reports instead of failing -- result identity is
         what the run just proved *)
      note
        "scaling assertion skipped: only %d core(s); wall(4)=%sms vs \
         wall(1)=%sms is time-slicing, not scaling\n"
        host_cores (ms w4) (ms w1)
    | _ ->
      note "scaling assertion skipped: sweep did not cover 1 and 4 domains\n"
  end

(* --- Failpoint overhead (opt-in: --only faults) -------------------------------- *)

(* The fault framework's contract is "zero-cost when disarmed": an inject
   site is one atomic load and a branch. This experiment prices that claim
   on the two parallel workloads — disarmed vs armed with an all-zero
   schedule (every site hit, none fire — the worst armed case that still
   completes) — and writes BENCH_faults.json with the medians. *)
let faults_exp ctx =
  header "Failpoint overhead: disarmed vs armed-at-p=0 schedules";
  let domains = min 4 ctx.domains_max in
  let workloads =
    let nc_heavy =
      let go = go_taxonomy ctx in
      let spec =
        List.nth Datasets.nc_series (List.length Datasets.nc_series - 1)
      in
      let spec, db = build_scaled ctx go spec in
      ("step2-heavy " ^ spec.Datasets.id, go, db)
    in
    let td_heavy =
      let depth = 13 in
      let rng = Prng.of_int (ctx.seed + depth) in
      let go =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 1000; relationships = 2000; depth }
      in
      let sampler = Synth_graph.per_level_labels go () in
      let spec = Datasets.scale ctx.scale (Datasets.td_spec ~depth) in
      let db = Datasets.build rng ~node_label:sampler spec in
      ("step3-heavy " ^ spec.Datasets.id, go, db)
    in
    [ nc_heavy; td_heavy ]
  in
  let config =
    { Taxogram.min_support = ctx.theta; max_edges = None;
      enhancements = Specialize.all_on }
  in
  let armed_schedule =
    [
      ("pool.task", Tsg_util.Fault.Probability 0.0);
      ("occ_index.build", Tsg_util.Fault.Probability 0.0);
      ("taxogram.root", Tsg_util.Fault.Probability 0.0);
    ]
  in
  let reps = 3 in
  let median_total tax db =
    let samples =
      List.init reps (fun _ ->
          (Taxogram.run
             (Taxogram.Spec.collect ~config ~domains ())
             tax db)
            .Taxogram.total_wall_seconds)
    in
    match List.sort compare samples with
    | [ _; m; _ ] -> m
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let t =
    Table.create
      [ "Workload"; "Disarmed ms"; "Armed(p=0) ms"; "Overhead %" ]
  in
  let json_rows =
    List.map
      (fun (id, tax, db) ->
        Tsg_util.Fault.clear ();
        let disarmed = median_total tax db in
        Tsg_util.Fault.configure armed_schedule;
        let armed =
          Fun.protect ~finally:Tsg_util.Fault.clear (fun () ->
              median_total tax db)
        in
        let overhead_pct =
          if disarmed > 0.0 then 100.0 *. (armed -. disarmed) /. disarmed
          else 0.0
        in
        Table.add_row t
          [ id; ms disarmed; ms armed; Printf.sprintf "%+.2f" overhead_pct ];
        Printf.sprintf
          "    { \"id\": %S, \"db_size\": %d, \"domains\": %d, \"reps\": %d, \
           \"disarmed_ms\": %.3f, \"armed_p0_ms\": %.3f, \"overhead_pct\": \
           %.3f }"
          id (Db.size db) domains reps (1000.0 *. disarmed)
          (1000.0 *. armed) overhead_pct)
      workloads
  in
  finish_table "faults" t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"theta\": %.3f,\n\
      \  \"scale\": %.3f,\n\
      \  \"target_overhead_pct\": 2.0,\n\
      \  \"workloads\": [\n%s\n  ]\n\
       }\n"
      ctx.theta ctx.scale
      (String.concat ",\n" json_rows)
  in
  let oc = open_out "BENCH_faults.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  note
    "wrote BENCH_faults.json. Target: armed-at-p=0 within 2%% of disarmed\n\
     (medians of %d reps; timing noise on busy hosts can exceed that —\n\
     rerun with --scale up for a steadier signal).\n"
    reps

(* --- Query serving: store build, prefilter, cache (lib/query) ----------------- *)

let query_exp ctx =
  header "Query serving: store build, prefilter selectivity, LRU cache";
  let module Store = Tsg_query.Store in
  let module Engine = Tsg_query.Engine in
  let go = go_taxonomy ctx in
  let _, db = build_scaled ctx go (List.hd Datasets.d_series) in
  let config =
    { Taxogram.min_support = ctx.theta; max_edges = Some 4;
      enhancements = Specialize.all_on }
  in
  let patterns =
    (Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) go db)
      .Taxogram.patterns
  in
  let store, build_s =
    Timer.time (fun () ->
        Store.build ~taxonomy:go ~db ~db_size:(Db.size db) patterns)
  in
  (* every database graph doubles as a query *)
  let queries = Db.to_list db in
  let nq = List.length queries in
  let time_queries engine =
    let _, s =
      Timer.time (fun () ->
          List.iter (fun q -> ignore (Engine.contains engine q)) queries)
    in
    1000.0 *. s /. float_of_int (max 1 nq)
  in
  (* cold: cache disabled, every query pays prefilter + iso; warm: a
     primed cache answers by minimum-DFS-code lookup *)
  let uncached =
    Engine.create ~cache_capacity:0 ~metrics:(Tsg_util.Metrics.create ()) store
  in
  let cold_ms = time_queries uncached in
  let cached =
    Engine.create ~cache_capacity:(4 * nq)
      ~metrics:(Tsg_util.Metrics.create ()) store
  in
  ignore (time_queries cached);
  let warm_ms = time_queries cached in
  let candidate_total =
    List.fold_left
      (fun acc q ->
        acc + Tsg_util.Bitset.cardinal (Store.candidates store q))
      0 queries
  in
  let brute_total = nq * Store.size store in
  let avg total = float_of_int total /. float_of_int (max 1 nq) in
  let ratio =
    if brute_total = 0 then 1.0
    else float_of_int candidate_total /. float_of_int brute_total
  in
  let speedup = if warm_ms > 0.0 then cold_ms /. warm_ms else infinity in
  let t = Table.create [ "Measure"; "Value" ] in
  Table.add_row t [ "patterns in store"; string_of_int (Store.size store) ];
  Table.add_row t [ "store build ms"; Printf.sprintf "%.1f" (1000.0 *. build_s) ];
  Table.add_row t [ "queries"; string_of_int nq ];
  Table.add_row t [ "cold ms/query"; Printf.sprintf "%.3f" cold_ms ];
  Table.add_row t [ "warm ms/query"; Printf.sprintf "%.3f" warm_ms ];
  Table.add_row t [ "cold/warm speedup"; Printf.sprintf "%.1fx" speedup ];
  Table.add_row t
    [ "prefilter candidates/query"; Printf.sprintf "%.1f" (avg candidate_total) ];
  Table.add_row t
    [ "brute-force candidates/query"; Printf.sprintf "%.1f" (avg brute_total) ];
  Table.add_row t [ "prefilter ratio"; Printf.sprintf "%.3f" ratio ];
  Table.add_row t
    [ "warm cache hit rate"; Printf.sprintf "%.2f" (Engine.cache_hit_rate cached) ];
  finish_table "query" t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"patterns\": %d,\n\
      \  \"db_size\": %d,\n\
      \  \"store_build_ms\": %.3f,\n\
      \  \"queries\": %d,\n\
      \  \"cold_ms_per_query\": %.4f,\n\
      \  \"warm_ms_per_query\": %.4f,\n\
      \  \"cold_warm_speedup\": %.2f,\n\
      \  \"prefilter_candidates_per_query\": %.2f,\n\
      \  \"brute_candidates_per_query\": %.2f,\n\
      \  \"prefilter_ratio\": %.4f,\n\
      \  \"warm_cache_hit_rate\": %.4f\n\
       }\n"
      (Store.size store) (Db.size db) (1000.0 *. build_s) nq cold_ms warm_ms
      speedup (avg candidate_total) (avg brute_total) ratio
      (Engine.cache_hit_rate cached)
  in
  let oc = open_out "BENCH_query.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  note
    "wrote BENCH_query.json; the cold/warm gap is the LRU cache, the\n\
     prefilter ratio is the share of the store the inverted indexes leave\n\
     for real generalized-subiso tests.\n"

(* --- Overload: admission control under 4x open-loop saturation ----------------- *)

(* A discrete-event simulation through the real [Tsg_query.Admission]
   gate: a virtual clock replays measured per-query service times at 4x
   the service rate (open loop — arrivals never back off), comparing a
   protected single server (CoDel dequeue deadline) against an
   unprotected FIFO. Writes BENCH_overload.json. Target: the protected
   p99 sojourn of answered queries stays within 2x the unloaded p99
   while the unprotected queue (and with it every sojourn) grows without
   bound. *)

let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let p99_of samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  percentile_sorted sorted 99.0

let overload_exp ctx =
  header "Overload: CoDel admission vs unprotected FIFO at 4x saturation";
  let module Store = Tsg_query.Store in
  let module Engine = Tsg_query.Engine in
  let module Admission = Tsg_query.Admission in
  let go = go_taxonomy ctx in
  let _, db = build_scaled ctx go (List.hd Datasets.d_series) in
  let config =
    { Taxogram.min_support = ctx.theta; max_edges = Some 4;
      enhancements = Specialize.all_on }
  in
  let patterns =
    (Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) go db)
      .Taxogram.patterns
  in
  let store = Store.build ~taxonomy:go ~db ~db_size:(Db.size db) patterns in
  (* cache off: a warm cache would hide the service cost being shed *)
  let engine =
    Engine.create ~cache_capacity:0 ~metrics:(Tsg_util.Metrics.create ()) store
  in
  let queries = Array.of_list (Db.to_list db) in
  let nq = Array.length queries in
  let measure q =
    let _, s = Timer.time (fun () -> ignore (Engine.contains engine q)) in
    s
  in
  (* unloaded baseline: each query served alone, sojourn = service time *)
  let unloaded = Array.init nq (fun i -> measure queries.(i)) in
  let p99_unloaded = p99_of unloaded in
  let mean_service =
    Array.fold_left ( +. ) 0.0 unloaded /. float_of_int (max 1 nq)
  in
  let n = max 400 (4 * nq) in
  let dt = mean_service /. 4.0 in
  (* the deadline is the protection budget: sojourn of any answered
     query is bounded by deadline + service, so half the unloaded p99
     keeps the protected p99 within the 2x target by construction —
     the experiment verifies the gate actually enforces it *)
  let deadline = 0.5 *. p99_unloaded in
  let run_protected () =
    let now = ref 0.0 in
    let clock () = !now in
    let config =
      {
        Admission.default_config with
        max_queue = 64;
        queue_deadline_s = deadline;
        ladder = false;
      }
    in
    let adm =
      Admission.create ~clock ~config ~metrics:(Tsg_util.Metrics.create ()) ()
    in
    let cl = Admission.client adm in
    let t_free = ref 0.0 in
    let sojourns = ref [] in
    let shed = ref 0 in
    for i = 0 to n - 1 do
      let arrival = float_of_int i *. dt in
      now := arrival;
      match Admission.admit adm cl Admission.Contains with
      | Admission.Shed _ -> incr shed
      | Admission.Admit ticket -> (
        now := Float.max !t_free arrival;
        match Admission.start adm ticket with
        | `Expired _ -> incr shed
        | `Run _ ->
          let s = measure queries.(i mod nq) in
          now := !now +. s;
          t_free := !now;
          Admission.finish adm ticket ~ok:true;
          sojourns := (!now -. arrival) :: !sojourns)
    done;
    (Array.of_list !sojourns, !shed)
  in
  let run_unprotected () =
    let t_free = ref 0.0 in
    Array.init n (fun i ->
        let arrival = float_of_int i *. dt in
        let start = Float.max !t_free arrival in
        let s = measure queries.(i mod nq) in
        t_free := start +. s;
        !t_free -. arrival)
  in
  let protected_sojourns, shed = run_protected () in
  let unprotected_sojourns = run_unprotected () in
  let p99_protected = p99_of protected_sojourns in
  let p99_unprotected = p99_of unprotected_sojourns in
  let served = Array.length protected_sojourns in
  let within_2x = p99_protected <= 2.0 *. p99_unloaded in
  let ms s = 1000.0 *. s in
  let t = Table.create [ "Measure"; "Value" ] in
  Table.add_row t [ "queries (db graphs)"; string_of_int nq ];
  Table.add_row t [ "open-loop arrivals"; string_of_int n ];
  Table.add_row t [ "load factor"; "4.0x" ];
  Table.add_row t
    [ "mean service ms"; Printf.sprintf "%.4f" (ms mean_service) ];
  Table.add_row t
    [ "p99 unloaded ms"; Printf.sprintf "%.4f" (ms p99_unloaded) ];
  Table.add_row t [ "codel deadline ms"; Printf.sprintf "%.4f" (ms deadline) ];
  Table.add_row t
    [ "p99 protected ms"; Printf.sprintf "%.4f" (ms p99_protected) ];
  Table.add_row t
    [ "p99 unprotected ms"; Printf.sprintf "%.4f" (ms p99_unprotected) ];
  Table.add_row t [ "answered (protected)"; string_of_int served ];
  Table.add_row t [ "shed (protected)"; string_of_int shed ];
  Table.add_row t
    [ "protected p99 <= 2x unloaded"; (if within_2x then "yes" else "NO") ];
  finish_table "overload" t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"queries\": %d,\n\
      \  \"arrivals\": %d,\n\
      \  \"load_factor\": 4.0,\n\
      \  \"mean_service_ms\": %.6f,\n\
      \  \"p99_unloaded_ms\": %.6f,\n\
      \  \"codel_deadline_ms\": %.6f,\n\
      \  \"p99_protected_ms\": %.6f,\n\
      \  \"p99_unprotected_ms\": %.6f,\n\
      \  \"answered_protected\": %d,\n\
      \  \"shed_protected\": %d,\n\
      \  \"protected_within_2x_unloaded\": %b\n\
       }\n"
      nq n (ms mean_service) (ms p99_unloaded) (ms deadline)
      (ms p99_protected) (ms p99_unprotected) served shed within_2x
  in
  let oc = open_out "BENCH_overload.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  note
    "wrote BENCH_overload.json. Target: protected p99 <= 2x unloaded p99\n\
     under 4x open-loop load; the unprotected p99 shows the collapse the\n\
     admission gate prevents (it grows with the arrival count, not the\n\
     service time).\n"

(* --- Cluster: 2x2 sharded serving under 8 closed-loop clients ------------------ *)

(* Real sockets, real protocol, one process: four sharded replica
   backends (each in its own OCaml domain, so backend work genuinely
   runs in parallel the way separate tsg-serve processes would) behind
   an in-process Router, against a single unsharded node. Three loads:
   one sequential client (the unloaded baseline and the single-node
   saturation throughput), eight closed-loop clients on the single node
   (the overload contrast), and eight on the 2-shard x 2-replica
   cluster — which must hold p99 within 2x the unloaded single-node p99
   and answer every request even when one replica is hard-killed
   mid-run. Writes BENCH_cluster.json. *)

let cluster_exp ctx =
  header "Cluster: 2x2 sharded serving vs one node, 8 closed-loop clients";
  (* replica sockets die mid-write when a backend is hard-killed *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let progress fmt = Printf.eprintf (fmt ^^ "%!") in
  let module Protocol = Tsg_query.Protocol in
  let module Replica = Tsg_cluster.Replica in
  let module Router = Tsg_cluster.Router in
  let module Label = Tsg_graph.Label in
  let go = go_taxonomy ctx in
  let _, db = build_scaled ctx go (List.hd Datasets.d_series) in
  (* a serving-grade store: support low enough that containment answers
     scan thousands of patterns — per-pattern search is the work that
     consistent-hash sharding genuinely divides between the shards *)
  let config =
    { Taxogram.min_support = 0.04; max_edges = Some 4;
      enhancements = Specialize.all_on }
  in
  let patterns =
    (Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) go db)
      .Taxogram.patterns
  in
  let el_names =
    let max_el =
      Db.to_list db
      |> List.fold_left
           (fun acc g ->
             Graph.fold_edges (fun _ _ l acc -> max acc l) g acc)
           0
    in
    List.init (max_el + 1) (Printf.sprintf "e%d")
  in
  let names = Taxonomy.labels go in
  let edge_labels = Label.of_names el_names in
  (* the replicas are real tsg-serve processes over saved artifacts:
     separate runtimes keep one replica's GC pauses — and its death —
     out of the others, exactly like a production deployment *)
  let work_dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tsg-bench-cluster.%d" (Unix.getpid ()))
    in
    (try Sys.mkdir d 0o700 with Sys_error _ -> ());
    d
  in
  let pat_file = Filename.concat work_dir "live.pat" in
  let tax_file = Filename.concat work_dir "go.tax" in
  let db_file = Filename.concat work_dir "graphs.db" in
  Tsg_core.Pattern_io.save pat_file ~node_labels:names ~edge_labels
    ~db_size:(Db.size db) patterns;
  Tsg_taxonomy.Taxonomy_io.save tax_file go;
  Tsg_graph.Serial.save_db db_file ~node_labels:names ~edge_labels db;
  (* a production-shaped mix: mostly cheap index reads (top-k), a slice
     of per-graph containment checks, and a 1.25% heavy tail of dense
     random query graphs. The dense graphs are match-dominated (tiny
     request line, expensive generalized-subiso search over the full
     pattern store), so sharding genuinely divides their cost — a
     parse-dominated heavy would just be parsed once per shard. The
     stride is chosen against the 8-client interleave (heavy index
     ≡ 7 mod 8, so with round-robin assignment every heavy lands on one
     client): heavies arrive one at a time and never convoy on each
     other, which makes p99 measure a heavy under ambient load rather
     than heavy-on-heavy pileups — and at 1.25% the p99 rank falls
     inside the heavy block in every phase, loaded and unloaded alike. *)
  let requests =
    let contains g =
      "contains " ^ Protocol.format_graph ~names ~edge_labels g
    in
    let graphs = Array.of_list (Db.to_list db) in
    let ng = Array.length graphs in
    let nlabels = Label.size names in
    let nel = List.length el_names in
    let dense_at i =
      let rng = Random.State.make [| ctx.seed; i; 0xdeed |] in
      let n = 80 in
      let target_edges = n * 4 in
      let labels = Array.init n (fun _ -> Random.State.int rng nlabels) in
      let seen = Hashtbl.create target_edges in
      let edges = ref [] in
      let added = ref 0 in
      while !added < target_edges do
        let u = Random.State.int rng n and v = Random.State.int rng n in
        if u <> v then begin
          let a, b = (min u v, max u v) in
          if not (Hashtbl.mem seen (a, b)) then begin
            Hashtbl.add seen (a, b) ();
            edges := (a, b, Random.State.int rng nel) :: !edges;
            incr added
          end
        end
      done;
      Graph.build ~labels ~edges:!edges
    in
    let rng = Random.State.make [| ctx.seed; 0x5eed |] in
    Array.init 1000 (fun i ->
        if i mod 80 = 7 then contains (dense_at i)
        else
          let r = Random.State.float rng 1.0 in
          if r < 0.04 then contains graphs.(Random.State.int rng ng)
          else Printf.sprintf "top-k %d support" (1 + Random.State.int rng 20))
  in
  let nq = Array.length requests in
  (* each backend is a real tsg-serve process over the saved artifacts;
     SIGKILL is therefore a genuine hard kill: every socket the replica
     held resets at once, mid-write included *)
  let find_bin name =
    let local =
      Filename.concat (Sys.getcwd ()) ("_build/install/default/bin/" ^ name)
    in
    if Sys.file_exists local then local else name
  in
  let serve_bin = find_bin "tsg-serve" in
  let proc_seq = ref 0 in
  let spawn_proc stem bin args =
    incr proc_seq;
    let err_file =
      Filename.concat work_dir (Printf.sprintf "%s-%d.err" stem !proc_seq)
    in
    let err_fd =
      Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o600
    in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let pid =
      Unix.create_process bin (Array.of_list (bin :: args)) devnull devnull
        err_fd
    in
    Unix.close err_fd;
    Unix.close devnull;
    (* the process prints "listening on 127.0.0.1:PORT" once bound *)
    let parse_port () =
      let ic = open_in err_file in
      let port = ref 0 in
      (try
         while !port = 0 do
           let line = input_line ic in
           match String.rindex_opt line ':' with
           | Some i
             when String.ends_with ~suffix:"listening on 127.0.0.1"
                    (String.sub line 0 i) ->
             port :=
               Option.value ~default:0
                 (int_of_string_opt
                    (String.sub line (i + 1) (String.length line - i - 1)))
           | _ -> ()
         done
       with End_of_file -> ());
      close_in ic;
      !port
    in
    let port = ref 0 in
    let deadline = Unix.gettimeofday () +. 30.0 in
    while !port = 0 && Unix.gettimeofday () < deadline do
      (try port := parse_port () with Sys_error _ -> ());
      if !port = 0 then Thread.delay 0.05
    done;
    if !port = 0 then
      failwith
        (Printf.sprintf "%s %d: did not start listening (see %s)" stem
           !proc_seq err_file);
    let dead = ref false in
    let kill () =
      if not !dead then begin
        dead := true;
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
      end
    in
    (!port, kill)
  in
  let spawn_backend ?shard () =
    (* --cache 0: the mix never repeats a containment query, and the
       result-cache key is the query's min-DFS-code — for the dense
       heavies that canonicalization costs more than the search itself *)
    spawn_proc "serve" serve_bin
      ([ "--patterns"; pat_file; "--taxonomy"; tax_file; "--db"; db_file;
         "--listen"; "0"; "--quiet"; "--max-request-bytes"; "262144";
         "--cache"; "0" ]
      @ (match shard with Some s -> [ "--shard"; s ] | None -> []))
  in
  let percentiles samples =
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    (percentile_sorted sorted 50.0, percentile_sorted sorted 99.0)
  in
  (* closed-loop clients: [clients] threads, [per_client] requests each,
     issued through [call : int -> string -> string] (client index first,
     so each thread can own its connection); returns the per-request
     round trips, the wall-clock qps, and the error-reply count *)
  let drive ~clients ~per_client ~on_progress call =
    let rtts = Array.make (clients * per_client) 0.0 in
    let errors = Atomic.make 0 in
    let done_count = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let client c =
      for i = 0 to per_client - 1 do
        let req = requests.((c + (i * clients)) mod nq) in
        let s = Unix.gettimeofday () in
        let reply = call c req in
        rtts.((c * per_client) + i) <- Unix.gettimeofday () -. s;
        if String.length reply >= 5 && String.sub reply 0 5 = "error" then
          Atomic.incr errors;
        on_progress (Atomic.fetch_and_add done_count 1 + 1)
      done
    in
    let threads = List.init clients (fun c -> Thread.create client c) in
    List.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. t0 in
    (rtts, float_of_int (clients * per_client) /. elapsed, Atomic.get errors)
  in
  let no_progress (_ : int) = () in
  let replica_call rep req =
    match Replica.call rep req with Ok r -> r | Error msg -> "error IO " ^ msg
  in
  let per_client = 150 in
  (* --- single node ----------------------------------------------------- *)
  let single_port, kill_single = spawn_backend () in
  let single_rep =
    Replica.create ~host:Unix.inet_addr_loopback ~port:single_port ~name:"solo"
      ()
  in
  progress "[cluster] single node up, unloaded baseline...\n";
  (* 1-client phases run 4x longer than a single client's share of the
     loaded phases: they are the denominators of the retention ratios
     and the p99 baseline, so they get the most averaging *)
  let seq_rtts, qps_single_1c, seq_errors =
    drive ~clients:1 ~per_client:(4 * per_client) ~on_progress:no_progress
      (fun _ req -> replica_call single_rep req)
  in
  let p50_unloaded, p99_unloaded = percentiles seq_rtts in
  progress "[cluster] single node, 8 clients...\n";
  let hot_reps =
    Array.init 8 (fun i ->
        Replica.create ~host:Unix.inet_addr_loopback ~port:single_port
          ~name:(Printf.sprintf "solo-%d" i) ())
  in
  let hot_rtts, qps_single_8c, hot_errors =
    drive ~clients:8 ~per_client ~on_progress:no_progress (fun c req ->
        replica_call hot_reps.(c) req)
  in
  let _, p99_single_8c = percentiles hot_rtts in
  Array.iter Replica.close hot_reps;
  Replica.close single_rep;
  (* --- 2 shards x 2 replicas ------------------------------------------ *)
  (* tsg-serve --shard i/n slices the loaded artifact with the same
     consistent hash the router uses, so no pre-sliced files are needed.
     The routing tier runs in-process with the clients: on this box an
     extra client-to-router TCP hop would double the per-request context
     switches and measure the scheduler rather than the tier (hashing,
     scatter, merge, hedging, failover). The real tsg-router binary gets
     exercised end-to-end by scripts/cluster_smoke.sh instead *)
  let backends =
    [| [| spawn_backend ~shard:"0/2" (); spawn_backend ~shard:"0/2" () |];
       [| spawn_backend ~shard:"1/2" (); spawn_backend ~shard:"1/2" () |] |]
  in
  let metrics = Tsg_util.Metrics.create () in
  let shards =
    Array.mapi
      (fun si reps ->
        Array.mapi
          (fun ri (port, _) ->
            Replica.create ~host:Unix.inet_addr_loopback ~port
              ~name:(Printf.sprintf "%d/%d" si ri) ())
          reps)
      backends
  in
  let router =
    (* the hedge floor is an operator knob: service time here is ~1 ms,
       so the 2 ms default would hedge on routine queueing; floor it at
       a clear outlier threshold instead *)
    Router.create
      ~config:
        { Router.default_config with deadline_s = 10.0; hedge_min_s = 0.25 }
      ~taxonomy:go ~metrics ~shards ()
  in
  let stop_probes = Atomic.make false in
  let prober =
    Router.start_probes router ~stop:(fun () -> Atomic.get stop_probes)
  in
  let router_call _ req =
    match Router.dispatch router req with
    | `Reply r -> r
    | `Quit | `None -> "error IO no reply"
  in
  progress "[cluster] 2x2 cluster up, 1 client...\n";
  let quiet_rtts, qps_cluster_1c, quiet_errors =
    drive ~clients:1 ~per_client:(4 * per_client) ~on_progress:no_progress
      router_call
  in
  let p50_cluster_1c, p99_cluster_1c = percentiles quiet_rtts in
  progress "[cluster] 2x2 cluster, 8 clients...\n";
  let cluster_rtts, qps_cluster_8c, cluster_errors =
    drive ~clients:8 ~per_client ~on_progress:no_progress router_call
  in
  let p50_cluster, p99_cluster = percentiles cluster_rtts in
  (* --- kill one replica mid-run ---------------------------------------- *)
  progress "[cluster] 8 clients, hard-killing replica 0/0 mid-run...\n";
  let total_kill_phase = 8 * per_client in
  let kill_fired = Atomic.make false in
  let kill_rtts, qps_kill, kill_errors =
    drive ~clients:8 ~per_client
      ~on_progress:(fun n ->
        if n >= total_kill_phase / 3 && not (Atomic.exchange kill_fired true)
        then snd backends.(0).(0) ())
      router_call
  in
  ignore kill_rtts;
  progress "[cluster] shutting down...\n";
  let mval name =
    Tsg_util.Metrics.value (Tsg_util.Metrics.counter metrics name)
  in
  let failovers = mval "cluster.failovers" in
  let hedges = mval "cluster.hedges" in
  let hedge_wins = mval "cluster.hedge_wins" in
  let replica_errors = mval "cluster.replica_errors" in
  Atomic.set stop_probes true;
  Thread.join prober;
  Array.iter (Array.iter Replica.close) shards;
  Array.iter (Array.iter (fun (_, kill) -> kill ())) backends;
  kill_single ();
  let msf s = 1000.0 *. s in
  let within_2x = p99_cluster <= 2.0 *. p99_unloaded in
  (* one closed-loop client saturates a serial node, so 8 clients offer
     8x single-node saturation. "Sustained" compares throughput
     *retention* under that load (8-client qps over 1-client qps):
     every process on this box shares the same cores, so the single
     node itself loses some throughput to scheduler pressure at 8
     clients — the claim the cluster tier can honestly make is that
     routing, scatter-gather, and hedging do not degrade retention
     beyond the node's own, i.e. the cluster does not collapse where
     the node does not *)
  let single_retention = qps_single_8c /. Float.max 1e-9 qps_single_1c in
  let cluster_retention = qps_cluster_8c /. Float.max 1e-9 qps_cluster_1c in
  let sustained = cluster_retention >= 0.9 *. single_retention in
  let zero_errors =
    quiet_errors = 0 && cluster_errors = 0 && kill_errors = 0
  in
  let t = Table.create [ "Measure"; "Value" ] in
  Table.add_row t [ "patterns"; string_of_int (List.length patterns) ];
  Table.add_row t [ "distinct queries"; string_of_int nq ];
  Table.add_row t
    [ "p50/p99 unloaded ms";
      Printf.sprintf "%.3f / %.3f" (msf p50_unloaded) (msf p99_unloaded) ];
  Table.add_row t
    [ "single node qps (1 client)"; Printf.sprintf "%.0f" qps_single_1c ];
  Table.add_row t
    [ "single node p99 ms (8 clients)";
      Printf.sprintf "%.3f" (msf p99_single_8c) ];
  Table.add_row t
    [ "cluster p50/p99 ms (1 client)";
      Printf.sprintf "%.3f / %.3f" (msf p50_cluster_1c) (msf p99_cluster_1c)
    ];
  Table.add_row t
    [ "cluster 2x2 qps (8 clients)"; Printf.sprintf "%.0f" qps_cluster_8c ];
  Table.add_row t
    [ "cluster p50/p99 ms (8 clients)";
      Printf.sprintf "%.3f / %.3f" (msf p50_cluster) (msf p99_cluster) ];
  Table.add_row t
    [ "hedges / wins / replica errors";
      Printf.sprintf "%d / %d / %d" hedges hedge_wins replica_errors ];
  Table.add_row t
    [ "cluster p99 <= 2x unloaded"; (if within_2x then "yes" else "NO") ];
  Table.add_row t
    [ "throughput retention @8c";
      Printf.sprintf "single %.2f / cluster %.2f" single_retention
        cluster_retention ];
  Table.add_row t
    [ "sustains 8x saturation load"; (if sustained then "yes" else "NO") ];
  Table.add_row t
    [ "kill-one-replica errors";
      Printf.sprintf "%d (failovers %d)" kill_errors failovers ];
  finish_table "cluster" t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"patterns\": %d,\n\
      \  \"distinct_queries\": %d,\n\
      \  \"clients\": 8,\n\
      \  \"shards\": 2,\n\
      \  \"replicas_per_shard\": 2,\n\
      \  \"p50_unloaded_ms\": %.6f,\n\
      \  \"p99_unloaded_ms\": %.6f,\n\
      \  \"qps_single_1_client\": %.1f,\n\
      \  \"p99_single_8_clients_ms\": %.6f,\n\
      \  \"qps_single_8_clients\": %.1f,\n\
      \  \"qps_cluster_1_client\": %.1f,\n\
      \  \"qps_cluster_8_clients\": %.1f,\n\
      \  \"qps_cluster_during_kill\": %.1f,\n\
      \  \"p50_cluster_1_client_ms\": %.6f,\n\
      \  \"p99_cluster_1_client_ms\": %.6f,\n\
      \  \"p50_cluster_ms\": %.6f,\n\
      \  \"p99_cluster_ms\": %.6f,\n\
      \  \"sequential_errors\": %d,\n\
      \  \"single_8c_errors\": %d,\n\
      \  \"cluster_1c_errors\": %d,\n\
      \  \"cluster_errors\": %d,\n\
      \  \"kill_phase_errors\": %d,\n\
      \  \"hedges\": %d,\n\
      \  \"hedge_wins\": %d,\n\
      \  \"replica_errors\": %d,\n\
      \  \"failovers\": %d,\n\
      \  \"throughput_retention_single_8c\": %.3f,\n\
      \  \"throughput_retention_cluster_8c\": %.3f,\n\
      \  \"cluster_p99_within_2x_unloaded\": %b,\n\
      \  \"sustains_8x_saturation_load\": %b,\n\
      \  \"zero_client_visible_errors\": %b\n\
       }\n"
      (List.length patterns) nq (msf p50_unloaded) (msf p99_unloaded)
      qps_single_1c (msf p99_single_8c) qps_single_8c qps_cluster_1c
      qps_cluster_8c qps_kill (msf p50_cluster_1c) (msf p99_cluster_1c)
      (msf p50_cluster) (msf p99_cluster) seq_errors hot_errors quiet_errors
      cluster_errors kill_errors hedges hedge_wins replica_errors failovers
      single_retention cluster_retention within_2x sustained zero_errors
  in
  let oc = open_out "BENCH_cluster.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  note
    "wrote BENCH_cluster.json. Target: under 8 closed-loop clients (8x the\n\
     concurrency that saturates one serial node) the 2x2 cluster holds p99\n\
     within 2x the unloaded single-node p99, retains as much of its\n\
     1-client throughput as the single node retains of its own (the\n\
     routing tier adds no collapse of its own), and answers every request\n\
     (zero error replies) while one replica is hard-killed mid-run.\n"

(* --- Bechamel micro-suite ------------------------------------------------------------ *)

let micro ctx =
  let open Bechamel in
  let go = go_taxonomy { ctx with go_concepts = 300 } in
  let db =
    Synth_graph.generate (Prng.of_int ctx.seed)
      {
        Synth_graph.graph_count = 20;
        max_edges = 10;
        edge_density = 0.25;
        edge_label_count = 5;
        node_label = Synth_graph.uniform_labels go;
      }
  in
  let a = Tsg_util.Bitset.full 4096 in
  let b = Tsg_util.Bitset.create 4096 in
  List.iter (Tsg_util.Bitset.set b) (List.init 1024 (fun i -> 4 * i));
  let pattern_graph =
    Graph.build ~labels:[| 0; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ]
  in
  let root_pattern =
    Graph.relabel pattern_graph (fun _ -> List.hd (Taxonomy.roots go))
  in
  let tests =
    [
      Test.make ~name:"bitset-intersection"
        (Staged.stage (fun () -> ignore (Tsg_util.Bitset.inter_cardinal a b)));
      Test.make ~name:"min-dfs-code"
        (Staged.stage (fun () -> ignore (Tsg_gspan.Min_code.minimum pattern_graph)));
      Test.make ~name:"generalized-subiso"
        (Staged.stage (fun () ->
             ignore
               (Tsg_iso.Gen_iso.subgraph_isomorphic go ~pattern:root_pattern
                  ~target:(Db.get db 0))));
      Test.make ~name:"taxogram-20-graphs"
        (Staged.stage (fun () -> ignore (run_taxogram go db 0.3)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  header "Bechamel micro-benchmarks (ns/run, OLS on monotonic clock)";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name m ->
          let ols =
            Analyze.one
              (Analyze.ols ~r_square:false ~bootstrap:0
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock m
          in
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (est :: _) -> Printf.sprintf "%12.0f ns/run" est
            | _ -> "         n/a"
          in
          Printf.printf "  %-24s %s\n" name estimate)
        results)
    tests

(* --- Incremental pipeline: delta commits vs full re-mines (opt-in: --only pipeline) -- *)

(* The incremental engine's pitch: a root-localized delta (one graph out,
   one graph in) dirties only the gSpan roots whose seed 1-edge the two
   graphs contain, so a commit re-mines a handful of subtrees instead of
   the whole pattern space. This experiment builds a corpus through the
   pipeline, then runs paired add+remove delta rounds — the pairing keeps
   the database size, and with it the absolute support threshold,
   constant, which is the regime where root reuse applies — timing each
   incremental refresh against a from-scratch mine of the identical
   corpus. Writes BENCH_incremental.json. Target: median speedup >= 5x. *)
let pipeline_exp ctx =
  header "Incremental pipeline: root-localized delta commits vs full re-mines";
  let module Label = Tsg_graph.Label in
  let module Serial = Tsg_graph.Serial in
  let module Wal = Tsg_pipeline.Wal in
  let module Corpus = Tsg_pipeline.Corpus in
  let module Incremental = Tsg_pipeline.Incremental in
  let rng = Prng.of_int (ctx.seed + 77) in
  (* a broad forest, not the GO stand-in: root localization needs many
     most-general labels (every tree root is one), since the number of
     gSpan seeds — and with it the fraction a small delta can dirty —
     grows with the D_mg label diversity *)
  (* a FOREST, not a single-rooted ontology: D_mg relabels every node to
     its most-general ancestor, so the number of gSpan roots is bounded by
     (distinct tree roots)^2 x edge labels. Eight independent trees give
     the engine a wide root partition for a delta to stay local in. *)
  let tax =
    let trees = 8 and children = 4 and leaves = 4 in
    let names = ref [] and is_a = ref [] in
    for t = 0 to trees - 1 do
      let root = Printf.sprintf "f%d" t in
      names := root :: !names;
      for c = 0 to children - 1 do
        let mid = Printf.sprintf "f%d_%d" t c in
        names := mid :: !names;
        is_a := (mid, root) :: !is_a;
        for l = 0 to leaves - 1 do
          let leaf = Printf.sprintf "f%d_%d_%d" t c l in
          names := leaf :: !names;
          is_a := (leaf, mid) :: !is_a
        done
      done
    done;
    Taxonomy.build ~names:(List.rev !names) ~is_a:(List.rev !is_a)
  in
  let sampler = Synth_graph.uniform_labels tax in
  let graph_count = max 400 (int_of_float (12000.0 *. ctx.scale)) in
  (* low theta: many frequent seeds means many independent subtrees, the
     regime the incremental engine is built for *)
  let theta = min ctx.theta 0.03 in
  let edge_names = Label.of_names [ "b0"; "b1"; "b2"; "b3" ] in
  (* corpus graphs carry the mining weight; delta graphs are small, so a
     delta touches few seeds *)
  let mk_corpus_graph () =
    Synth_graph.generate_graph rng ~max_edges:12 ~edge_density:0.35
      ~edge_label_count:4 ~node_label:sampler
  in
  let mk_graph () =
    Synth_graph.generate_graph rng ~max_edges:2 ~edge_density:0.5
      ~edge_label_count:4 ~node_label:sampler
  in
  let ser g =
    Serial.db_to_string
      ~node_labels:(Taxonomy.labels tax)
      ~edge_labels:edge_names (Db.of_list [ g ])
  in
  let config =
    { Taxogram.min_support = theta; max_edges = Some 5;
      enhancements = Specialize.all_on }
  in
  let exec = Tsg_util.Pool.Exec.create ~domains:1 () in
  let corpus = Corpus.create ~taxonomy:tax () in
  let engine = Incremental.create ~corpus ~config ~exec () in
  let seq = ref 0L in
  let push op =
    seq := Int64.add !seq 1L;
    match Corpus.apply corpus { Wal.seq = !seq; op } with
    | Ok g -> Incremental.mark_dirty engine g
    | Error d -> failwith d.Tsg_util.Diagnostic.message
  in
  for _ = 1 to graph_count do
    push (Wal.Add (ser (mk_corpus_graph ())))
  done;
  (* one churn graph in place before the base mine, so every timed round is
     remove-old-churn + add-new-churn: a couple of edges each way, hence a
     delta that dirties only a handful of roots *)
  push (Wal.Add (ser (mk_graph ())));
  let churn = ref !seq in
  let t0 = Timer.start () in
  let base = Incremental.refresh engine in
  let base_wall = Timer.elapsed_s t0 in
  let rounds = 10 in
  let samples = ref [] in
  for _ = 1 to rounds do
    push (Wal.Remove !churn);
    push (Wal.Add (ser (mk_graph ())));
    churn := !seq;
    let dirty = Incremental.dirty_count engine in
    let t = Timer.start () in
    let stats = Incremental.refresh engine in
    let inc_wall = Timer.elapsed_s t in
    let t = Timer.start () in
    let scratch =
      Taxogram.run (Taxogram.Spec.collect ~config ~exec ()) tax
        (Corpus.db corpus)
    in
    let full_wall = Timer.elapsed_s t in
    if scratch.Taxogram.pattern_count <> stats.Incremental.patterns then
      failwith "incremental pattern count diverged from the full re-mine";
    samples := (dirty, stats, inc_wall, full_wall) :: !samples
  done;
  let samples = List.rev !samples in
  let median xs =
    match List.sort compare xs with
    | [] -> 0.0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let inc_med = median (List.map (fun (_, _, i, _) -> i) samples) in
  let full_med = median (List.map (fun (_, _, _, f) -> f) samples) in
  let speedup = if inc_med > 0.0 then full_med /. inc_med else 0.0 in
  let t = Table.create
      [ "Round"; "Dirty roots"; "Mined"; "Cached"; "Incr ms"; "Full ms";
        "Speedup" ]
  in
  List.iteri
    (fun i (dirty, (stats : Incremental.refresh_stats), inc, full) ->
      Table.add_row t
        [ string_of_int (i + 1); string_of_int dirty;
          string_of_int stats.Incremental.roots_mined;
          string_of_int stats.Incremental.roots_cached; ms inc; ms full;
          Printf.sprintf "%.1fx" (if inc > 0.0 then full /. inc else 0.0) ])
    samples;
  finish_table "pipeline" t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"theta\": %.3f,\n\
      \  \"scale\": %.3f,\n\
      \  \"graph_count\": %d,\n\
      \  \"base_full_mine_ms\": %.3f,\n\
      \  \"base_roots\": %d,\n\
      \  \"rounds\": %d,\n\
      \  \"incremental_median_ms\": %.3f,\n\
      \  \"full_median_ms\": %.3f,\n\
      \  \"speedup\": %.2f,\n\
      \  \"target_speedup\": 5.0,\n\
      \  \"rounds_detail\": [\n%s\n  ]\n\
       }\n"
      theta ctx.scale graph_count (1000.0 *. base_wall)
      base.Incremental.roots_mined rounds (1000.0 *. inc_med)
      (1000.0 *. full_med) speedup
      (String.concat ",\n"
         (List.map
            (fun (dirty, (stats : Incremental.refresh_stats), inc, full) ->
              Printf.sprintf
                "    { \"dirty_roots\": %d, \"roots_mined\": %d, \
                 \"roots_cached\": %d, \"incremental_ms\": %.3f, \
                 \"full_ms\": %.3f }"
                dirty stats.Incremental.roots_mined
                stats.Incremental.roots_cached (1000.0 *. inc)
                (1000.0 *. full))
            samples))
  in
  let oc = open_out "BENCH_incremental.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc json);
  note
    "wrote BENCH_incremental.json (median speedup %.1fx over %d rounds).\n\
     Target: >= 5x on root-localized deltas — the gap is the clean-root\n\
     subtrees a commit never re-mines.\n"
    speedup rounds

(* --- driver ---------------------------------------------------------------------------- *)

(* not in the default sweep (it is additional to the paper); run with
   --only parallel *)
let optional_experiments =
  [
    ("parallel", parallel_exp);
    ("faults", faults_exp);
    ("overload", overload_exp);
    ("cluster", cluster_exp);
    ("pipeline", pipeline_exp);
  ]

let all_experiments =
  [
    ("table1", table1);
    ("fig42", fig42);
    ("fig43", fig43);
    ("fig44", fig44);
    ("fig45", fig45);
    ("fig46", fig46);
    ("fig47", fig47);
    ("table2", table2);
    ("fig48", fig48);
    ("ablation", ablation);
    ("query", query_exp);
  ]

let () =
  let full = ref false in
  let only = ref [] in
  let run_micro = ref false in
  let scale = ref None in
  let seed = ref None in
  let theta = ref None in
  let domains = ref None in
  let set_theta f = theta := Some f in
  let set_domains n = domains := Some n in
  let spec =
    [
      ("--full", Arg.Set full, " paper-scale parameters (slow)");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        " comma-separated experiment ids (table1,fig42..fig48,table2)" );
      ("--micro", Arg.Set run_micro, " run the Bechamel micro-suite");
      ( "--scale",
        Arg.Float (fun f -> scale := Some f),
        " database-size multiplier (default 0.03)" );
      ("--seed", Arg.Int (fun i -> seed := Some i), " generator seed");
      ( "--theta",
        Arg.Float set_theta,
        " default support threshold (same spelling as tsg-mine)" );
      ("--support", Arg.Float set_theta, " alias of --theta");
      ( "--domains",
        Arg.Int set_domains,
        " largest pool size the parallel experiment sweeps (same spelling \
         as tsg-mine and tsg-serve; TSG_DOMAINS is honored when the flag \
         is absent)" );
      ( "--csv",
        Arg.String (fun d -> csv_dir := Some d),
        " also write each table as CSV into this directory" );
      ( "--assert-scaling",
        Arg.Set assert_scaling,
        " after the parallel experiment, fail unless 4-domain wall <= \
         1-domain wall (enforced on hosts with >= 4 cores; reported \
         only below that)" );
    ]
  in
  Arg.parse (Arg.align spec)
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "taxogram benchmark harness";
  let ctx = if !full then full_ctx else default_ctx in
  let ctx = match !scale with Some s -> { ctx with scale = s } | None -> ctx in
  let ctx = match !seed with Some s -> { ctx with seed = s } | None -> ctx in
  let ctx = match !theta with Some t -> { ctx with theta = t } | None -> ctx in
  let ctx =
    (* --domains caps the sweep; without it, TSG_DOMAINS (via the pool
       default) can only raise the cap above the built-in 8 *)
    match !domains with
    | Some d -> { ctx with domains_max = max 1 d }
    | None ->
      { ctx with
        domains_max = max ctx.domains_max (Tsg_util.Pool.default_domains ())
      }
  in
  Printf.printf
    "taxogram benchmarks: scale=%.3f go_concepts=%d seed=%d theta=%.2f\n"
    ctx.scale ctx.go_concepts ctx.seed ctx.theta;
  if !run_micro then micro ctx
  else
    let selected =
      match !only with
      | [] -> all_experiments
      | ids ->
        List.map
          (fun id ->
            match
              List.assoc_opt id (all_experiments @ optional_experiments)
            with
            | Some f -> (id, f)
            | None ->
              Printf.eprintf "unknown experiment id: %s\n" id;
              exit 2)
          ids
    in
    List.iter (fun (_, f) -> f ctx) selected
