.PHONY: all build test check bench examples lint analyze chaos soak \
        cluster-smoke pipeline-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# everything the repo can build (libraries, binaries, tests, benches,
# examples), the full test suite, and the examples as a smoke test
check:
	dune build @all
	dune runtest
	$(MAKE) examples
	$(MAKE) lint
	$(MAKE) analyze

# strict warnings-as-errors build, plus tsg-lint over the committed
# example artifacts (must be finding-free)
lint:
	dune build --profile strict @all
	dune exec -- tsg-lint --strict --deep \
	  --taxonomy examples/data/demo.tax \
	  --db examples/data/demo.db \
	  --patterns examples/data/demo.pat

# static analysis over our own typed trees: domain-safety, determinism,
# IO and registry rules (DOM/DET/IO1/REG, catalog in DESIGN.md). Must be
# finding-free; the allowlist is committed and deliberately empty.
analyze:
	dune build @check
	dune exec -- tsg-analyze --strict --allowlist analyze.allow
	scripts/rule_catalog_check.sh

examples:
	@for e in quickstart pathway_mining chemical_mining taxonomy_explore \
	          regulatory_network annotation_study; do \
	  echo "== examples/$$e =="; \
	  dune exec examples/$$e.exe > /dev/null || exit 1; \
	done

bench:
	dune exec bench/main.exe

# the fault-injection suite under a forced-wide pool: failpoints,
# supervised retries/quarantine, checkpoint kill+resume byte-identity,
# hardened serve loop
chaos:
	TSG_DOMAINS=4 dune exec test/test_fault.exe

# 30s open-loop blast against a live tsg-serve --listen with 1%
# injected request faults: asserts zero crashes, bounded RSS, a
# successful mid-blast hot reload, and a corrupt-artifact rollback
soak: build
	scripts/soak.sh

# tsg-router over 2 shards x 2 replicas of tsg-serve --shard: scatter-
# gather answers byte-identical to an unsharded node, a two-phase
# rolling reload flipping the cluster epoch mid-blast, a straggler
# fenced and repaired by the anti-entropy scrubber, a reload aborted
# cluster-wide with a replica SIGKILLed — all with zero client-visible
# errors and zero mixed-epoch replies — then a graceful drain
cluster-smoke: build
	scripts/cluster_smoke.sh

# tsg-serve fed by tsg-pipe over --push: ~50 deltas streamed with 1%
# injected faults on every pipeline fault site, tsg-pipe SIGKILLed
# mid-stream and restarted to resume the remaining deltas; the served
# artifact must be byte-identical to a from-scratch mine of the
# exported corpus, with zero client-visible errors throughout
pipeline-smoke: build
	scripts/pipeline_smoke.sh

clean:
	dune clean
