.PHONY: all build test check bench examples clean

all: build

build:
	dune build

test:
	dune runtest

# everything the repo can build (libraries, binaries, tests, benches,
# examples), the full test suite, and the examples as a smoke test
check:
	dune build @all
	dune runtest
	$(MAKE) examples

examples:
	@for e in quickstart pathway_mining chemical_mining taxonomy_explore \
	          regulatory_network annotation_study; do \
	  echo "== examples/$$e =="; \
	  dune exec examples/$$e.exe > /dev/null || exit 1; \
	done

bench:
	dune exec bench/main.exe

clean:
	dune clean
