#!/usr/bin/env bash
# Smoke test for the sharded serving cluster: tsg-router fronting
# 2 shards x 2 replicas of tsg-serve --shard over the demo artifacts,
# plus one unsharded reference server. Asserts byte-identical answers
# through the router, a blast with a two-phase rolling reload
# mid-flight that flips the cluster epoch everywhere, a hand-reloaded
# straggler fenced by the anti-entropy scrubber within one interval
# and then repaired by the next fleet reload, a blast with one replica
# SIGKILLed mid-flight during which a reload attempt must abort
# cluster-wide (the survivors stay on one epoch; zero client-visible
# errors and zero STALE_EPOCH replies throughout), and a graceful
# drain. Run from the repo root after `dune build` (or via
# `make cluster-smoke`).
#
#   DURATION=10 scripts/cluster_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=_build/install/default/bin
DURATION="${DURATION:-10}"

[ -x "$BIN/tsg-serve" ] && [ -x "$BIN/tsg-router" ] && [ -x "$BIN/tsg-blast" ] ||
  { echo "cluster-smoke: binaries missing — run 'dune build' first" >&2; exit 2; }

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

# one request over bash's /dev/tcp against port $1; prints the full
# reply: the first line, plus the announced block body for "ok N" and
# "begin stats" replies (so multi-line answers can be diffed whole)
ask() {
  local port=$1 req=$2 line n
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf '%s\nquit\n' "$req" >&3
  IFS= read -r line <&3 || true
  printf '%s\n' "$line"
  if [[ "$line" =~ ^ok\ ([0-9]+)$ ]]; then
    n="${BASH_REMATCH[1]}"
    for _ in $(seq 1 "$n"); do
      IFS= read -r line <&3 || break
      printf '%s\n' "$line"
    done
  elif [[ "$line" == "begin stats" ]]; then
    while IFS= read -r line <&3; do
      printf '%s\n' "$line"
      [[ "$line" == "end stats" ]] && break
    done
  fi
  exec 3<&- 3>&-
}

# boot one server ($1: logfile stem, rest: command); sets BOOT_PID and
# BOOT_PORT in the calling shell (no subshell, so the trap sees the pid)
boot() {
  local stem=$1; shift
  "$@" >"$WORK/$stem.out" 2>"$WORK/$stem.err" &
  BOOT_PID=$!
  PIDS+=("$BOOT_PID")
  BOOT_PORT=""
  for _ in $(seq 1 100); do
    BOOT_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WORK/$stem.err" | head -n1)
    [ -n "$BOOT_PORT" ] && break
    kill -0 "$BOOT_PID" 2>/dev/null || { cat "$WORK/$stem.err" >&2; fail "$stem died at startup"; }
    sleep 0.1
  done
  [ -n "$BOOT_PORT" ] && [ "$BOOT_PORT" != "0" ] || fail "could not parse $stem's listen port"
}

# the artifact lives in the workdir so the test can publish new
# versions: appending a comment line changes the content epoch while
# every '#'-skipping parser still reads the same patterns
cp examples/data/demo.pat "$WORK/live.pat"
ART=(--patterns "$WORK/live.pat" --taxonomy examples/data/demo.tax
     --db examples/data/demo.db)

echo "== cluster-smoke: booting 2 shards x 2 replicas + unsharded reference"
boot r00 "$BIN/tsg-serve" "${ART[@]}" --shard 0/2 --listen 0 --quiet
P00=$BOOT_PORT; R00_PID=$BOOT_PID
boot r01 "$BIN/tsg-serve" "${ART[@]}" --shard 0/2 --listen 0 --quiet
P01=$BOOT_PORT; R01_PID=$BOOT_PID
boot r10 "$BIN/tsg-serve" "${ART[@]}" --shard 1/2 --listen 0 --quiet
P10=$BOOT_PORT; R10_PID=$BOOT_PID
boot r11 "$BIN/tsg-serve" "${ART[@]}" --shard 1/2 --listen 0 --quiet
P11=$BOOT_PORT; R11_PID=$BOOT_PID
boot ref "$BIN/tsg-serve" "${ART[@]}" --listen 0 --quiet
PREF=$BOOT_PORT; REF_PID=$BOOT_PID
boot router "$BIN/tsg-router" \
  --shard "127.0.0.1:$P00,127.0.0.1:$P01" \
  --shard "127.0.0.1:$P10,127.0.0.1:$P11" \
  --taxonomy examples/data/demo.tax --scrub-interval 1 --listen 0 --quiet
RPORT=$BOOT_PORT; ROUTER_PID=$BOOT_PID
echo "== cluster-smoke: router on $RPORT, reference on $PREF"

HEALTH=$(ask "$RPORT" health)
case "$HEALTH" in
  "ok health shards 2 replicas 4 up 4"*) ;;
  *) fail "bad router health: $HEALTH";;
esac

STATS=$(ask "$RPORT" stats)
grep -q '^begin stats$' <<<"$STATS" || fail "router stats missing header"
grep -q 'cluster\.requests' <<<"$STATS" || fail "router stats missing cluster counters"

echo "== cluster-smoke: waiting for the scrubber to pin the cluster epoch"
E1=""
for _ in $(seq 1 100); do
  E1=$(ask "$RPORT" epoch)
  [ "$E1" != "ok epoch none" ] && break
  sleep 0.2
done
case "$E1" in
  "ok epoch "*.*) E1=${E1#ok epoch };;
  *) fail "router never pinned an epoch: $E1";;
esac
[ "$(ask "$P00" epoch)" = "ok epoch $E1" ] ||
  fail "replica 0/0 epoch disagrees with the router pin $E1"
echo "== cluster-smoke: cluster pinned to epoch $E1"

echo "== cluster-smoke: scatter-gather answers match the unsharded node"
for req in "top-k 5 support" "top-k 5 interest" "by-label c0" "contains c0,c0 0-1"; do
  diff <(ask "$RPORT" "$req") <(ask "$PREF" "$req") >/dev/null ||
    fail "router and reference answers differ for '$req'"
done

echo "== cluster-smoke: blast A (${DURATION}s) with a two-phase reload mid-flight"
"$BIN/tsg-blast" --port "$RPORT" --router --duration "$DURATION" \
  --clients 4 --rate 100 --min-success 0.999 \
  --request "top-k 5 support" >"$WORK/blast_a.out" 2>&1 &
BLAST_PID=$!
sleep $((DURATION / 3))
printf '# epoch-bump 1\n' >>"$WORK/live.pat"
RELOAD=$(ask "$RPORT" reload)
case "$RELOAD" in
  "ok reload replicas 4 epoch "*) E2=${RELOAD#ok reload replicas 4 epoch };;
  *) fail "two-phase reload replied: $RELOAD";;
esac
[ "$E2" != "$E1" ] || fail "reload did not move the epoch off $E1"
wait "$BLAST_PID" || { cat "$WORK/blast_a.out" >&2; fail "blast A failed"; }
grep -q "error replies:      0" "$WORK/blast_a.out" ||
  { cat "$WORK/blast_a.out" >&2; fail "blast A saw error replies"; }
grep -q "broken connections: 0" "$WORK/blast_a.out" ||
  { cat "$WORK/blast_a.out" >&2; fail "blast A saw broken connections"; }
grep -q "STALE_EPOCH" "$WORK/blast_a.out" &&
  { cat "$WORK/blast_a.out" >&2; fail "a mixed-epoch reply reached a client in blast A"; }

[ "$(ask "$RPORT" epoch)" = "ok epoch $E2" ] ||
  fail "router pin did not flip to $E2"
for port in "$P00" "$P01" "$P10" "$P11"; do
  [ "$(ask "$port" epoch)" = "ok epoch $E2" ] ||
    fail "replica on $port is not serving epoch $E2 after the reload"
done
for req in "top-k 5 support" "by-label c0"; do
  diff <(ask "$RPORT" "$req") <(ask "$PREF" "$req") >/dev/null ||
    fail "answers drifted from the reference after the reload ('$req')"
done
echo "== cluster-smoke: fleet flipped $E1 -> $E2 with zero client-visible errors"

echo "== cluster-smoke: a hand-reloaded straggler is fenced within one scrub interval"
printf '# epoch-bump 2\n' >>"$WORK/live.pat"
DRIFT=$(ask "$P10" reload)
case "$DRIFT" in
  "ok reload "*" epoch "*) E3=${DRIFT##* };;
  *) fail "direct replica reload replied: $DRIFT";;
esac
[ "$E3" != "$E2" ] || fail "hand reload did not drift replica 1/0 off $E2"
FENCED=""
for _ in $(seq 1 100); do
  HEALTH=$(ask "$RPORT" health)
  case "$HEALTH" in
    "ok health shards 2 replicas 4 up 4 degraded 1"*) FENCED=yes; break;;
  esac
  sleep 0.2
done
[ -n "$FENCED" ] || fail "scrubber never fenced the straggler: $HEALTH"
[ "$(ask "$RPORT" epoch)" = "ok epoch $E2" ] ||
  fail "straggler moved the cluster pin off $E2"
for req in "top-k 5 support" "by-label c0"; do
  diff <(ask "$RPORT" "$req") <(ask "$PREF" "$req") >/dev/null ||
    fail "answers drifted from the reference with a fenced straggler ('$req')"
done
# repair: roll the whole fleet forward to the straggler's version
RELOAD=$(ask "$RPORT" reload)
[ "$RELOAD" = "ok reload replicas 4 epoch $E3" ] ||
  fail "repair reload replied: $RELOAD (want epoch $E3)"
HEALED=""
for _ in $(seq 1 100); do
  HEALTH=$(ask "$RPORT" health)
  case "$HEALTH" in
    "ok health shards 2 replicas 4 up 4 degraded 0"*" epoch $E3") HEALED=yes; break;;
  esac
  sleep 0.2
done
[ -n "$HEALED" ] || fail "fleet never converged on $E3: $HEALTH"
for port in "$P00" "$P01" "$P10" "$P11"; do
  [ "$(ask "$port" epoch)" = "ok epoch $E3" ] ||
    fail "replica on $port is not serving epoch $E3 after the repair"
done
echo "== cluster-smoke: straggler fenced ($E3 vs pin $E2), then fleet repaired to $E3"

echo "== cluster-smoke: blast B (${DURATION}s), SIGKILL replica 0/1 mid-flight"
"$BIN/tsg-blast" --port "$RPORT" --router --duration "$DURATION" \
  --clients 4 --rate 100 --min-success 0.999 \
  --request "top-k 5 support" >"$WORK/blast_b.out" 2>&1 &
BLAST_PID=$!
sleep $((DURATION / 3))
kill -9 "$R01_PID"
# a reload with a replica down must abort cluster-wide: replica 0/0
# stages the new artifact, the dead replica fails its prepare, and the
# router releases the staged swap — nobody flips, the fleet stays put
printf '# epoch-bump 3\n' >>"$WORK/live.pat"
RELOAD=$(ask "$RPORT" reload)
case "$RELOAD" in
  "error RELOAD"*) ;;
  *) fail "reload with a dead replica replied: $RELOAD (want error RELOAD)";;
esac
wait "$BLAST_PID" || { cat "$WORK/blast_b.out" >&2; fail "blast B failed"; }
grep -q "error replies:      0" "$WORK/blast_b.out" ||
  { cat "$WORK/blast_b.out" >&2; fail "a protocol-level error reached a client"; }
grep -q "STALE_EPOCH" "$WORK/blast_b.out" &&
  { cat "$WORK/blast_b.out" >&2; fail "a mixed-epoch reply reached a client in blast B"; }

sleep 2
HEALTH=$(ask "$RPORT" health)
case "$HEALTH" in
  "ok health shards 2 replicas 4 up 3"*) ;;
  *) fail "router health after kill: $HEALTH (want up 3)";;
esac
[ "$(ask "$RPORT" epoch)" = "ok epoch $E3" ] ||
  fail "aborted reload moved the router pin off $E3"
for port in "$P00" "$P10" "$P11"; do
  [ "$(ask "$port" epoch)" = "ok epoch $E3" ] ||
    fail "surviving replica on $port drifted off epoch $E3 after the abort"
done
STATS=$(ask "$RPORT" stats)
grep -Eq 'cluster\.reload_aborts[[:space:]]+[1-9]' <<<"$STATS" ||
  fail "router stats did not count the cluster-wide reload abort"
echo "== cluster-smoke: abort held the survivors on one epoch (health: up 3)"

echo "== cluster-smoke: graceful drain"
kill -TERM "$ROUTER_PID"
for _ in $(seq 1 100); do
  kill -0 "$ROUTER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$ROUTER_PID" 2>/dev/null && fail "router did not exit within 10s of SIGTERM"
for pid in "$R00_PID" "$R10_PID" "$R11_PID" "$REF_PID"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "$R00_PID" "$R10_PID" "$R11_PID" "$REF_PID"; do
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "$pid" 2>/dev/null && fail "replica $pid did not exit within 10s of SIGTERM"
done

echo "== cluster-smoke: PASS"
