#!/usr/bin/env bash
# Smoke test for the sharded serving cluster: tsg-router fronting
# 2 shards x 2 replicas of tsg-serve --shard over the demo artifacts,
# plus one unsharded reference server. Asserts byte-identical answers
# through the router, a blast with a rolling reload mid-flight, a
# blast with one replica SIGKILLed mid-flight (zero client-visible
# errors either way), and a graceful drain. Run from the repo root
# after `dune build` (or via `make cluster-smoke`).
#
#   DURATION=10 scripts/cluster_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=_build/install/default/bin
DURATION="${DURATION:-10}"

[ -x "$BIN/tsg-serve" ] && [ -x "$BIN/tsg-router" ] && [ -x "$BIN/tsg-blast" ] ||
  { echo "cluster-smoke: binaries missing — run 'dune build' first" >&2; exit 2; }

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

# one request over bash's /dev/tcp against port $1; prints the full
# reply: the first line, plus the announced block body for "ok N" and
# "begin stats" replies (so multi-line answers can be diffed whole)
ask() {
  local port=$1 req=$2 line n
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf '%s\nquit\n' "$req" >&3
  IFS= read -r line <&3 || true
  printf '%s\n' "$line"
  if [[ "$line" =~ ^ok\ ([0-9]+)$ ]]; then
    n="${BASH_REMATCH[1]}"
    for _ in $(seq 1 "$n"); do
      IFS= read -r line <&3 || break
      printf '%s\n' "$line"
    done
  elif [[ "$line" == "begin stats" ]]; then
    while IFS= read -r line <&3; do
      printf '%s\n' "$line"
      [[ "$line" == "end stats" ]] && break
    done
  fi
  exec 3<&- 3>&-
}

# boot one server ($1: logfile stem, rest: command); sets BOOT_PID and
# BOOT_PORT in the calling shell (no subshell, so the trap sees the pid)
boot() {
  local stem=$1; shift
  "$@" >"$WORK/$stem.out" 2>"$WORK/$stem.err" &
  BOOT_PID=$!
  PIDS+=("$BOOT_PID")
  BOOT_PORT=""
  for _ in $(seq 1 100); do
    BOOT_PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WORK/$stem.err" | head -n1)
    [ -n "$BOOT_PORT" ] && break
    kill -0 "$BOOT_PID" 2>/dev/null || { cat "$WORK/$stem.err" >&2; fail "$stem died at startup"; }
    sleep 0.1
  done
  [ -n "$BOOT_PORT" ] && [ "$BOOT_PORT" != "0" ] || fail "could not parse $stem's listen port"
}

ART=(--patterns examples/data/demo.pat --taxonomy examples/data/demo.tax
     --db examples/data/demo.db)

echo "== cluster-smoke: booting 2 shards x 2 replicas + unsharded reference"
boot r00 "$BIN/tsg-serve" "${ART[@]}" --shard 0/2 --listen 0 --quiet
P00=$BOOT_PORT; R00_PID=$BOOT_PID
boot r01 "$BIN/tsg-serve" "${ART[@]}" --shard 0/2 --listen 0 --quiet
P01=$BOOT_PORT; R01_PID=$BOOT_PID
boot r10 "$BIN/tsg-serve" "${ART[@]}" --shard 1/2 --listen 0 --quiet
P10=$BOOT_PORT; R10_PID=$BOOT_PID
boot r11 "$BIN/tsg-serve" "${ART[@]}" --shard 1/2 --listen 0 --quiet
P11=$BOOT_PORT; R11_PID=$BOOT_PID
boot ref "$BIN/tsg-serve" "${ART[@]}" --listen 0 --quiet
PREF=$BOOT_PORT; REF_PID=$BOOT_PID
boot router "$BIN/tsg-router" \
  --shard "127.0.0.1:$P00,127.0.0.1:$P01" \
  --shard "127.0.0.1:$P10,127.0.0.1:$P11" \
  --taxonomy examples/data/demo.tax --listen 0 --quiet
RPORT=$BOOT_PORT; ROUTER_PID=$BOOT_PID
echo "== cluster-smoke: router on $RPORT, reference on $PREF"

HEALTH=$(ask "$RPORT" health)
case "$HEALTH" in
  "ok health shards 2 replicas 4 up 4"*) ;;
  *) fail "bad router health: $HEALTH";;
esac

STATS=$(ask "$RPORT" stats)
grep -q '^begin stats$' <<<"$STATS" || fail "router stats missing header"
grep -q 'cluster\.requests' <<<"$STATS" || fail "router stats missing cluster counters"

echo "== cluster-smoke: scatter-gather answers match the unsharded node"
for req in "top-k 5 support" "top-k 5 interest" "by-label c0" "contains c0,c0 0-1"; do
  diff <(ask "$RPORT" "$req") <(ask "$PREF" "$req") >/dev/null ||
    fail "router and reference answers differ for '$req'"
done

echo "== cluster-smoke: blast A (${DURATION}s) with a rolling reload mid-flight"
"$BIN/tsg-blast" --port "$RPORT" --router --duration "$DURATION" \
  --clients 4 --rate 100 --min-success 0.999 \
  --request "top-k 5 support" >"$WORK/blast_a.out" 2>&1 &
BLAST_PID=$!
sleep $((DURATION / 3))
RELOAD=$(ask "$RPORT" reload)
[ "$RELOAD" = "ok reload replicas 4" ] || fail "rolling reload replied: $RELOAD"
wait "$BLAST_PID" || { cat "$WORK/blast_a.out" >&2; fail "blast A failed"; }
grep -q "error replies:      0" "$WORK/blast_a.out" ||
  { cat "$WORK/blast_a.out" >&2; fail "blast A saw error replies"; }
grep -q "broken connections: 0" "$WORK/blast_a.out" ||
  { cat "$WORK/blast_a.out" >&2; fail "blast A saw broken connections"; }

echo "== cluster-smoke: blast B (${DURATION}s), SIGKILL replica 0/0 mid-flight"
"$BIN/tsg-blast" --port "$RPORT" --router --duration "$DURATION" \
  --clients 4 --rate 100 --min-success 0.999 \
  --request "top-k 5 support" >"$WORK/blast_b.out" 2>&1 &
BLAST_PID=$!
sleep $((DURATION / 3))
kill -9 "$R00_PID"
wait "$BLAST_PID" || { cat "$WORK/blast_b.out" >&2; fail "blast B failed"; }
grep -q "error replies:      0" "$WORK/blast_b.out" ||
  { cat "$WORK/blast_b.out" >&2; fail "a protocol-level error reached a client"; }

sleep 2
HEALTH=$(ask "$RPORT" health)
case "$HEALTH" in
  "ok health shards 2 replicas 4 up 3"*) ;;
  *) fail "router health after kill: $HEALTH (want up 3)";;
esac
echo "== cluster-smoke: failover absorbed the kill (health: up 3)"

echo "== cluster-smoke: graceful drain"
kill -TERM "$ROUTER_PID"
for _ in $(seq 1 100); do
  kill -0 "$ROUTER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$ROUTER_PID" 2>/dev/null && fail "router did not exit within 10s of SIGTERM"
for pid in "$R01_PID" "$R10_PID" "$R11_PID" "$REF_PID"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "$R01_PID" "$R10_PID" "$R11_PID" "$REF_PID"; do
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  kill -0 "$pid" 2>/dev/null && fail "replica $pid did not exit within 10s of SIGTERM"
done

echo "== cluster-smoke: PASS"
