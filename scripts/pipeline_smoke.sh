#!/usr/bin/env bash
# End-to-end smoke for the crash-safe incremental pipeline: a tsg-serve
# fed by tsg-pipe over --push, ~50 deltas (adds and removes) streamed
# with 1% injected faults on every pipeline fault site, a SIGKILL of
# tsg-pipe mid-stream, a restart that recovers the WAL and resumes the
# remaining deltas, and a client blast running throughout. At the end
# the served artifact must be byte-identical to a from-scratch mine of
# the exported corpus, and no client may have seen an error. Run from
# the repo root after `dune build` (or via `make pipeline-smoke`).
#
#   DELTAS=50 DURATION=15 scripts/pipeline_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=_build/install/default/bin
DELTAS="${DELTAS:-50}"
DURATION="${DURATION:-15}"
SUPPORT=0.3
FAULTS="wal.append:0.01,wal.fsync:0.01,wal.replay:0.01,pipeline.remine:0.01,pipeline.publish:0.01"
# the fault streams are deterministic per (seed, site); this seed is one
# where the 1% triggers actually fire within a 50-delta run
export TSG_FAULT_SEED="${TSG_FAULT_SEED:-1}"
TAX=examples/data/demo.tax

[ -x "$BIN/tsg-pipe" ] && [ -x "$BIN/tsg-serve" ] && [ -x "$BIN/tsg-mine" ] &&
  [ -x "$BIN/tsg-blast" ] ||
  { echo "pipeline-smoke: binaries missing — run 'dune build' first" >&2; exit 2; }

WORK=$(mktemp -d)
SERVER_PID=""
PIPE_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  [ -n "$PIPE_PID" ] && kill -9 "$PIPE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "pipeline-smoke: FAIL: $*" >&2; exit 1; }

# one request over bash's /dev/tcp, first reply line only
ask() {
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf '%s\nquit\n' "$1" >&3
  IFS= read -r line <&3 || true
  exec 3<&- 3>&-
  printf '%s\n' "$line"
}

checksum_of() { sed -n 's/.* checksum \([^ ]*\).*/\1/p' <<<"$1"; }

# split a Serial database into one payload file per graph (each
# re-headed "t # 0": an add payload is a single-graph database)
split_db() { # <db> <dir>
  mkdir -p "$2"
  awk -v dir="$2" '
    /^t /  { if (f) close(f); n++; f = sprintf("%s/g_%03d.txt", dir, n);
             print "t # 0" > f; next }
    f      { print > f }' "$1"
}

split_db examples/data/demo.db "$WORK/graphs"
GRAPHS=("$WORK"/graphs/g_*.txt)
[ "${#GRAPHS[@]}" -gt 0 ] || fail "could not split demo.db into graphs"

# The canonical delta plan: DELTAS numbered command blocks, every 6th a
# remove of the oldest still-live add. Each block consumes exactly one
# WAL sequence number (delta i <-> seq i), so after a crash the durable
# head tells us exactly which blocks remain.
mkdir -p "$WORK/plan"
live=()
for i in $(seq 1 "$DELTAS"); do
  f=$(printf '%s/plan/d_%03d.txt' "$WORK" "$i")
  if [ $((i % 6)) -eq 0 ] && [ "${#live[@]}" -gt 0 ]; then
    printf 'remove %s\n' "${live[0]}" >"$f"
    live=("${live[@]:1}")
  else
    g=${GRAPHS[$(((i - 1) % ${#GRAPHS[@]}))]}
    { echo add; cat "$g"; echo .; } >"$f"
    live+=("$i")
  fi
done

# emit blocks FROM..DELTAS with a commit every 10 deltas and a trailing
# commit; an optional pace keeps the stream alive long enough to be
# killed mid-run
emit_from() { # <from> [pace-seconds]
  local from=$1 pace=${2:-0} i
  for i in $(seq "$from" "$DELTAS"); do
    cat "$(printf '%s/plan/d_%03d.txt' "$WORK" "$i")"
    [ $((i % 10)) -eq 0 ] && echo commit
    [ "$pace" != 0 ] && sleep "$pace"
  done
  echo commit
}

# initial artifact so the server has something to serve before the first
# push replaces it
"$BIN/tsg-mine" --db examples/data/demo.db --taxonomy "$TAX" \
  --support 0.5 --save "$WORK/live.pat" --quiet >/dev/null

echo "== pipeline-smoke: starting tsg-serve"
"$BIN/tsg-serve" --patterns "$WORK/live.pat" --taxonomy "$TAX" \
  --listen 0 --request-timeout 5 \
  >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WORK/serve.err" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.err" >&2; fail "server died at startup"; }
  sleep 0.1
done
[ -n "$PORT" ] && [ "$PORT" != "0" ] || fail "could not parse the listen port"
echo "== pipeline-smoke: port $PORT, pid $SERVER_PID"

case "$(ask health)" in "ok health "*) ;; *) fail "server not healthy at start";; esac

echo "== pipeline-smoke: client blast in the background (${DURATION}s)"
"$BIN/tsg-blast" --port "$PORT" --duration "$DURATION" \
  --clients 2 --rate 50 --request "contains c0 -" >"$WORK/blast.out" 2>&1 &
BLAST_PID=$!

PIPE_ARGS=(--wal "$WORK/corpus.wal" --taxonomy "$TAX" --state "$WORK/pipe.state"
  --out "$WORK/live.pat" --push "127.0.0.1:$PORT" --support "$SUPPORT")

echo "== pipeline-smoke: run 1 — paced deltas, 1% faults, SIGKILL mid-run"
mkfifo "$WORK/stream"
emit_from 1 0.05 >"$WORK/stream" &
PRODUCER=$!
TSG_FAULTS="$FAULTS" "$BIN/tsg-pipe" "${PIPE_ARGS[@]}" \
  <"$WORK/stream" >"$WORK/run1.out" 2>"$WORK/run1.err" &
PIPE_PID=$!
disown "$PIPE_PID"   # keep bash quiet about the upcoming SIGKILL
sleep 1.5
kill -9 "$PIPE_PID" 2>/dev/null || fail "tsg-pipe finished before the kill"
while kill -0 "$PIPE_PID" 2>/dev/null; do sleep 0.05; done
PIPE_PID=""
kill "$PRODUCER" 2>/dev/null || true
wait "$PRODUCER" 2>/dev/null || true

# the recovered head tells us which deltas survived the kill
"$BIN/tsg-pipe" --wal "$WORK/corpus.wal" --taxonomy "$TAX" \
  --export "$WORK/corpus_mid.db" --quiet >"$WORK/export1.out" 2>/dev/null
HEAD=$(sed -n 's/^exported seq \([0-9]*\) .*/\1/p' "$WORK/export1.out")
[ -n "$HEAD" ] || { cat "$WORK/export1.out" >&2; fail "could not parse the recovered head"; }
[ "$HEAD" -lt "$DELTAS" ] || fail "kill landed after all $DELTAS deltas (head $HEAD) — nothing was interrupted"
echo "== pipeline-smoke: killed with $HEAD/$DELTAS deltas durable"

echo "== pipeline-smoke: run 2 — restart, resume deltas $((HEAD + 1)).. with faults still on"
emit_from $((HEAD + 1)) |
  TSG_FAULTS="$FAULTS" "$BIN/tsg-pipe" "${PIPE_ARGS[@]}" \
    >"$WORK/run2.out" 2>"$WORK/run2.err" ||
  { cat "$WORK/run2.err" >&2; fail "restarted tsg-pipe failed"; }
grep -q '^recovered seq ' "$WORK/run2.out" || fail "restart printed no recovery line"
FINAL=$(grep '^committed seq ' "$WORK/run2.out" | tail -n1)
[ -n "$FINAL" ] || { cat "$WORK/run2.out" >&2; fail "restart never committed"; }
echo "== pipeline-smoke: $FINAL"
FINAL_SEQ=$(sed -n 's/^committed seq \([0-9]*\) .*/\1/p' <<<"$FINAL")
FINAL_PATTERNS=$(sed -n 's/.* patterns \([0-9]*\) .*/\1/p' <<<"$FINAL")
FINAL_SUM=$(checksum_of "$FINAL")
[ "$FINAL_SEQ" = "$DELTAS" ] || fail "final commit at seq $FINAL_SEQ, expected $DELTAS"
[ -n "$FINAL_SUM" ] || fail "final commit carries no push checksum"

# the server must be serving exactly the final artifact
HEALTH=$(ask health)
case "$HEALTH" in "ok health "*) ;; *) fail "bad health reply: $HEALTH";; esac
SUM=$(checksum_of "$HEALTH")
[ "$SUM" = "$FINAL_SUM" ] || fail "served checksum $SUM != pushed checksum $FINAL_SUM"

echo "== pipeline-smoke: comparing against a from-scratch mine of the exported corpus"
"$BIN/tsg-pipe" --wal "$WORK/corpus.wal" --taxonomy "$TAX" \
  --export "$WORK/corpus_final.db" --quiet >"$WORK/export2.out" 2>/dev/null
grep -q "^exported seq $DELTAS " "$WORK/export2.out" ||
  { cat "$WORK/export2.out" >&2; fail "final export is not at seq $DELTAS"; }

# from-scratch reference artifact: a fresh WAL, no state, no faults —
# every graph of the exported corpus added in one batch and mined cold
split_db "$WORK/corpus_final.db" "$WORK/final_graphs"
for g in "$WORK"/final_graphs/g_*.txt; do
  echo add; cat "$g"; echo .
done | "$BIN/tsg-pipe" --wal "$WORK/scratch.wal" --taxonomy "$TAX" \
  --out "$WORK/scratch.pat" --support "$SUPPORT" --quiet \
  >"$WORK/scratch.out" 2>&1 || { cat "$WORK/scratch.out" >&2; fail "from-scratch mine failed"; }
# the epoch stamps differ by design — the live artifact carries the
# real WAL watermark, the cold one a fresh WAL's — so the guarantee is
# payload identity plus a correct stamp on the live artifact
head -n1 "$WORK/live.pat" | grep -Eq "^# epoch $DELTAS [0-9a-f]{16}$" ||
  fail "live artifact is not stamped with epoch seq $DELTAS: $(head -n1 "$WORK/live.pat")"
cmp -s <(grep -v '^# epoch ' "$WORK/live.pat") \
       <(grep -v '^# epoch ' "$WORK/scratch.pat") ||
  fail "served artifact differs from the from-scratch mine"

# and tsg-mine agrees on the pattern count
MINE_PATTERNS=$("$BIN/tsg-mine" --db "$WORK/corpus_final.db" --taxonomy "$TAX" \
  --support "$SUPPORT" --quiet --save "$WORK/mine.pat" |
  sed -n 's/^\([0-9]*\) patterns in .*/\1/p')
[ "$MINE_PATTERNS" = "$FINAL_PATTERNS" ] ||
  fail "tsg-mine found $MINE_PATTERNS patterns, pipeline published $FINAL_PATTERNS"

wait "$BLAST_PID" || { cat "$WORK/blast.out" >&2; fail "blast failed"; }
grep -q "error replies:      0" "$WORK/blast.out" ||
  { cat "$WORK/blast.out" >&2; fail "a client saw an error reply"; }
grep -q "broken connections: 0" "$WORK/blast.out" ||
  { cat "$WORK/blast.out" >&2; fail "a client saw a broken connection"; }
kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during the run"

R1=$(grep -c 'injected fault' "$WORK/run1.err" || true)
R2=$(grep -c 'injected fault' "$WORK/run2.err" || true)
[ $((R1 + R2)) -ge 1 ] ||
  fail "no injected fault fired — the run exercised no in-process recovery"
echo "== pipeline-smoke: OK ($DELTAS deltas, kill at $HEAD, $((R1 + R2)) injected faults recovered, $FINAL_PATTERNS patterns served)"
