#!/usr/bin/env bash
# Soak test for the serving path: a 30s open-loop blast against
# tsg-serve --listen with 1% injected request faults, a hot artifact
# reload mid-blast, a corrupt-artifact reload that must roll back, a
# bounded-RSS check, and a graceful shutdown. Run from the repo root
# after `dune build` (or via `make soak`).
#
#   DURATION=30 RSS_LIMIT_KB=524288 scripts/soak.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=_build/install/default/bin
DURATION="${DURATION:-30}"
RSS_LIMIT_KB="${RSS_LIMIT_KB:-524288}" # 512 MB

[ -x "$BIN/tsg-serve" ] && [ -x "$BIN/tsg-blast" ] && [ -x "$BIN/tsg-mine" ] ||
  { echo "soak: binaries missing — run 'dune build' first" >&2; exit 2; }

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "soak: FAIL: $*" >&2; exit 1; }

# one barrier request over bash's /dev/tcp, first reply line only
ask() {
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf '%s\nquit\n' "$1" >&3
  IFS= read -r line <&3 || true
  exec 3<&- 3>&-
  printf '%s\n' "$line"
}

checksum_of() { sed -n 's/.* checksum \([^ ]*\).*/\1/p' <<<"$1"; }

# the served artifact is a scratch copy: the reload test overwrites it
cp examples/data/demo.pat "$WORK/live.pat"
# a genuinely different pattern set for the hot swap
"$BIN/tsg-mine" --db examples/data/demo.db --taxonomy examples/data/demo.tax \
  --support 0.4 --save "$WORK/alt.pat" --quiet >/dev/null
cmp -s "$WORK/live.pat" "$WORK/alt.pat" &&
  fail "alt artifact is identical to the live one"

echo "== soak: starting tsg-serve (1% injected faults, reload-on-hup)"
TSG_FAULTS=serve.request:0.01 "$BIN/tsg-serve" \
  --patterns "$WORK/live.pat" \
  --taxonomy examples/data/demo.tax \
  --db examples/data/demo.db \
  --listen 0 --reload-on-hup --request-timeout 5 \
  >"$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WORK/serve.err" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.err" >&2; fail "server died at startup"; }
  sleep 0.1
done
[ -n "$PORT" ] && [ "$PORT" != "0" ] || fail "could not parse the listen port"
echo "== soak: port $PORT, pid $SERVER_PID"

HEALTH0=$(ask health)
case "$HEALTH0" in "ok health "*) ;; *) fail "bad health reply: $HEALTH0";; esac
SUM0=$(checksum_of "$HEALTH0")
[ -n "$SUM0" ] && [ "$SUM0" != "-" ] || fail "health reports no checksum: $HEALTH0"

echo "== soak: blasting for ${DURATION}s (paced: 4 clients x 100 rounds/s)"
"$BIN/tsg-blast" --port "$PORT" --duration "$DURATION" \
  --clients 4 --rate 100 --request "contains c0 -" >"$WORK/blast.out" 2>&1 &
BLAST_PID=$!

# mid-blast: hot swap to the alternate artifact over SIGHUP
sleep $((DURATION / 3))
cp "$WORK/alt.pat" "$WORK/live.pat"
kill -HUP "$SERVER_PID"
sleep 1
HEALTH1=$(ask health)
SUM1=$(checksum_of "$HEALTH1")
[ -n "$SUM1" ] && [ "$SUM1" != "-" ] || fail "post-reload health broken: $HEALTH1"
[ "$SUM1" != "$SUM0" ] || fail "checksum unchanged after hot reload"
echo "== soak: hot reload ok ($SUM0 -> $SUM1)"

# mid-blast: a corrupt artifact must roll back and keep serving
printf 'this is not a pattern artifact\n' >"$WORK/live.pat"
kill -HUP "$SERVER_PID"
sleep 1
kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on corrupt reload"
HEALTH2=$(ask health)
SUM2=$(checksum_of "$HEALTH2")
[ "$SUM2" = "$SUM1" ] || fail "corrupt reload changed the checksum ($SUM1 -> $SUM2)"
grep -q "SRV00" "$WORK/serve.err" || fail "no SRV00x rollback diagnostic on stderr"
echo "== soak: corrupt reload rolled back, still serving"

wait "$BLAST_PID" || { cat "$WORK/blast.out" >&2; fail "blast failed"; }
cat "$WORK/blast.out"
grep -q "broken connections: 0" "$WORK/blast.out" || fail "blast saw broken connections"

kill -0 "$SERVER_PID" 2>/dev/null || fail "server crashed during the blast"
RSS_KB=$(awk '/^VmRSS:/ { print $2 }' "/proc/$SERVER_PID/status" 2>/dev/null || echo 0)
echo "== soak: server RSS ${RSS_KB} kB (limit ${RSS_LIMIT_KB})"
[ "$RSS_KB" -gt 0 ] && [ "$RSS_KB" -lt "$RSS_LIMIT_KB" ] ||
  fail "RSS out of bounds: ${RSS_KB} kB"

echo "== soak: graceful shutdown"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  kill -9 "$SERVER_PID" 2>/dev/null || true
  fail "server did not exit within 10s of SIGTERM"
fi
SERVER_PID=""

echo "== soak: PASS"
