#!/usr/bin/env bash
# Registry <-> documentation consistency.
#
# The single source of truth for diagnostic rule codes and protocol
# error codes is Tsg_util.Diagnostic.Registry, surfaced by
# `tsg-analyze --list-rules`. This script fails when:
#   - a registered rule code is missing from the DESIGN.md catalog,
#   - a tsg-analyze rule (DOM/DET/IO1/REG/ANA) is missing from README.md,
#   - a registered protocol error code is missing from DESIGN.md,
#   - README.md or DESIGN.md mentions a rule-shaped code the registry
#     does not know (stale docs or a typo).
set -euo pipefail
cd "$(dirname "$0")/.."

listing=$(dune exec -- tsg-analyze --list-rules)
codes=$(echo "$listing" | awk '/^Rules/{s=1;next} /^Protocol/{s=0} s&&NF{print $1}')
proto=$(echo "$listing" | awk '/^Protocol/{s=1;next} s&&NF{print $1}')

fail=0

for c in $codes; do
  if ! grep -q "$c" DESIGN.md; then
    echo "rule $c is registered but missing from the DESIGN.md catalog" >&2
    fail=1
  fi
done

for c in $(echo "$codes" | grep -E '^(DOM|DET|IO1|REG|ANA)' || true); do
  if ! grep -q "$c" README.md; then
    echo "tsg-analyze rule $c is missing from the README.md rule table" >&2
    fail=1
  fi
done

for c in $proto; do
  if ! grep -q "$c" DESIGN.md; then
    echo "protocol error code $c is missing from DESIGN.md" >&2
    fail=1
  fi
done

doc_codes=$(grep -ohE '\b[A-Z]{1,6}[0-9]{3}\b' README.md DESIGN.md | sort -u)
for c in $doc_codes; do
  if ! echo "$codes" | grep -qx "$c"; then
    echo "documented code $c is not in Diagnostic.Registry" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "rule catalog: registry and docs agree" \
    "($(echo "$codes" | wc -l) rules, $(echo "$proto" | wc -l) protocol codes)"
fi
exit $fail
