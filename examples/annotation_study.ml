(* A complete annotation-mining study, end to end: generate data, mine with
   Taxogram (in parallel), condense the result with the closed-pattern
   filter, rank what is left by taxonomy-based interestingness, and export
   everything (pattern file + Graphviz) for downstream tools.

     dune exec examples/annotation_study.exe [output-directory] *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Taxogram = Tsg_core.Taxogram
module Pattern = Tsg_core.Pattern

let () =
  let out_dir =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat (Filename.get_temp_dir_name ()) "annotation_study"
  in
  let rng = Prng.of_int 1859 in

  (* 1. a GO-like annotation vocabulary and an annotated-graph corpus with a
     planted motif: two specific deep concepts that co-occur far more often
     than their generalizations predict *)
  let taxonomy = Tsg_taxonomy.Go_like.generate ~concepts:400 rng in
  let leaves =
    Array.of_list
      (List.filter
         (fun l -> Taxonomy.is_leaf taxonomy l)
         (List.init (Taxonomy.label_count taxonomy) (fun i -> i)))
  in
  let motif_a = leaves.(0) and motif_b = leaves.(1) in
  let base =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 60;
        max_edges = 10;
        edge_density = 0.3;
        edge_label_count = 3;
        node_label = Tsg_data.Synth_graph.uniform_labels taxonomy;
      }
  in
  let db =
    Db.map
      (fun g ->
        if Prng.bernoulli rng 0.5 && Graph.edge_count g > 0 then begin
          (* overwrite one edge's endpoints with the motif labels *)
          let u, v, _ = (Graph.edges g).(0) in
          Graph.relabel g (fun w ->
              if w = u then motif_a
              else if w = v then motif_b
              else Graph.node_label g w)
        end
        else g)
      base
  in
  Printf.printf "corpus: %d graphs over %d concepts (%d levels)\n" (Db.size db)
    (Taxonomy.label_count taxonomy)
    (Taxonomy.level_count taxonomy);
  Printf.printf "planted motif: %s - %s in about half the graphs\n"
    (Taxonomy.name taxonomy motif_a)
    (Taxonomy.name taxonomy motif_b);

  (* 2. mine on all cores (the pool defaults to TSG_DOMAINS, else the
     machine's recommended domain count capped at 8) *)
  let config = { Taxogram.default_config with min_support = 0.25 } in
  let result = Taxogram.run (Taxogram.Spec.collect ~config ()) taxonomy db in
  Printf.printf
    "mined %d patterns from %d classes in %.2fs (%d occurrence-set \
     intersections)\n"
    result.Taxogram.pattern_count result.Taxogram.class_count
    result.Taxogram.total_wall_seconds
    result.Taxogram.spec_stats.Tsg_core.Specialize.intersections;

  (* 3. condense: drop patterns subsumed by an equal-support super-pattern *)
  let closed = Tsg_core.Postprocess.closed taxonomy result.Taxogram.patterns in
  Printf.printf "closed patterns: %d of %d\n" (List.length closed)
    result.Taxogram.pattern_count;

  (* 4. rank by interestingness: support relative to what the taxonomy
     already predicts (Srikant & Agrawal's R-interest, R = 1.1) *)
  let ranked = Tsg_core.Interest.rank ~r:1.1 taxonomy db closed in
  Printf.printf "R-interesting (R=1.1): %d\n" (List.length ranked);
  let names = Taxonomy.labels taxonomy in
  (* patterns of all-root labels have no generalization to compare against
     (infinite ratio, trivially interesting); the informative ones are the
     finite ratios — specialized patterns that beat their expectation *)
  let finite =
    List.filter
      (fun x -> Float.is_finite x.Tsg_core.Interest.ratio)
      ranked
  in
  Printf.printf "  of which with a finite surprise ratio: %d\n"
    (List.length finite);
  List.iteri
    (fun i { Tsg_core.Interest.pattern; ratio } ->
      if i < 5 then
        Printf.printf "  %.2fx  %s\n" ratio (Pattern.to_string ~names pattern))
    finite;

  (* 5. export: pattern file (tsg-dot input) and DOT renderings *)
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let edge_labels = Label.of_names [ "e0"; "e1"; "e2" ] in
  let patterns_path = Filename.concat out_dir "patterns.tsg" in
  Tsg_core.Pattern_io.save patterns_path ~node_labels:names ~edge_labels
    ~db_size:(Db.size db) closed;
  List.iteri
    (fun i { Tsg_core.Interest.pattern; ratio } ->
      if i < 3 then
        Tsg_graph.Dot.save
          (Filename.concat out_dir (Printf.sprintf "interesting_%d.dot" i))
          ~name:(Printf.sprintf "ratio %.2f" ratio)
          ~node_labels:names ~edge_labels pattern.Pattern.graph)
    ranked;
  Tsg_taxonomy.Taxonomy_dot.save
    (Filename.concat out_dir "taxonomy.dot")
    ~highlight:
      (List.concat_map
         (fun (p : Pattern.t) -> Array.to_list (Graph.node_labels p.Pattern.graph))
         (List.filteri (fun i _ -> i < 3) closed))
    taxonomy;
  Printf.printf "artifacts written to %s\n" out_dir
