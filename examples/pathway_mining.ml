(* Comparative genomics: mine conserved pathway fragments across organisms
   (the paper's Section 4.2 study on KEGG metabolic pathways, simulated).

   Each of a handful of pathways is instantiated for 10 organisms; nodes are
   GO-like functional annotations of enzymes. Mining at support 0.3 yields
   the annotation structures conserved across the lineage — the paper reads
   the pattern count as a conservation measure.

     dune exec examples/pathway_mining.exe *)

module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Pathways = Tsg_data.Pathways
module Taxogram = Tsg_core.Taxogram
module Pattern = Tsg_core.Pattern

let selected =
  [
    "Vitamin B6 metabolism";      (* weakly conserved in the paper *)
    "Citrate cycle (TCA cycle)";
    "beta-Alanine metabolism";
    "Nitrogen metabolism";        (* the paper's most conserved pathway *)
  ]

let () =
  let rng = Prng.of_int 2008 in
  let taxonomy = Tsg_taxonomy.Go_like.generate ~concepts:600 rng in
  Printf.printf
    "taxonomy: %d GO-like concepts, %d levels\n\n"
    (Taxonomy.label_count taxonomy)
    (Taxonomy.level_count taxonomy);
  let config =
    { Taxogram.default_config with min_support = 0.3; max_edges = Some 4 }
  in
  Printf.printf "%-42s %9s %9s %12s\n" "pathway" "patterns" "time ms"
    "conservation";
  let results =
    List.map
      (fun name ->
        let spec =
          List.find (fun s -> s.Pathways.name = name) Pathways.table2
        in
        let db = Pathways.generate rng ~taxonomy ~organisms:10 spec in
        let r = Taxogram.run (Taxogram.Spec.collect ~config ()) taxonomy db in
        Printf.printf "%-42s %9d %9.0f %12.2f\n" name
          r.Taxogram.pattern_count
          (1000.0 *. r.Taxogram.total_wall_seconds)
          (Pathways.conservation spec);
        (name, r))
      selected
  in
  (* show the strongest conserved fragments of the most conserved pathway *)
  let name, best =
    List.fold_left
      (fun ((_, b) as acc) ((_, r) as cand) ->
        if r.Taxogram.pattern_count > b.Taxogram.pattern_count then cand
        else acc)
      (List.hd results) (List.tl results)
  in
  Printf.printf "\nmost conserved: %s — top fragments by support:\n" name;
  let names = Taxonomy.labels taxonomy in
  best.Taxogram.patterns
  |> List.sort (fun (a : Pattern.t) b ->
         compare
           (b.Pattern.support_count, Pattern.edge_count b)
           (a.Pattern.support_count, Pattern.edge_count a))
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun p -> print_endline ("  " ^ Pattern.to_string ~names p))
