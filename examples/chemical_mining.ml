(* Chemical substructure mining under the atom taxonomy (the paper's PTE
   study, Figure 4.8, simulated).

   Molecules are graphs of atoms; the Figure 4.1 taxonomy groups atoms into
   halogens, metals, aromatic atoms, and so on. Taxonomy-superimposed mining
   surfaces fragments like "halogen bonded to carbon" that exact-label
   mining would fragment across F/Cl/Br/I variants.

     dune exec examples/chemical_mining.exe *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Pte = Tsg_data.Pte
module Taxogram = Tsg_core.Taxogram
module Pattern = Tsg_core.Pattern

let () =
  let taxonomy = Tsg_taxonomy.Atom_taxonomy.create () in
  let rng = Prng.of_int 416 in
  let db = Pte.generate rng ~taxonomy ~molecules:150 () in
  Printf.printf "molecules: %d, avg %.1f atoms / %.1f bonds\n\n" (Db.size db)
    (Db.avg_nodes db) (Db.avg_edges db);

  (* the paper's observation: pattern count explodes as support drops, even
     at high thresholds, because C/H/O dominate *)
  Printf.printf "%10s %10s %10s\n" "support" "patterns" "time ms";
  List.iter
    (fun theta ->
      let config =
        { Taxogram.default_config with min_support = theta; max_edges = Some 4 }
      in
      let r = Taxogram.run (Taxogram.Spec.collect ~config ()) taxonomy db in
      Printf.printf "%10.2f %10d %10.0f\n" theta r.Taxogram.pattern_count
        (1000.0 *. r.Taxogram.total_wall_seconds))
    [ 0.8; 0.6; 0.4 ];

  (* fish out patterns that use grouped (non-leaf) labels: these are the
     fragments only taxonomy-aware mining can report *)
  let config =
    { Taxogram.default_config with min_support = 0.1; max_edges = Some 2 }
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config ()) taxonomy db in
  let names = Taxonomy.labels taxonomy in
  let grouped (p : Pattern.t) =
    let g = p.Pattern.graph in
    let uses_group = ref false in
    let uses_halogen = ref false in
    for v = 0 to Graph.node_count g - 1 do
      let l = Graph.node_label g v in
      if not (Taxonomy.is_leaf taxonomy l) then uses_group := true;
      if Taxonomy.name taxonomy l = "Halogen" then uses_halogen := true
    done;
    !uses_group && !uses_halogen
  in
  let interesting = List.filter grouped r.Taxogram.patterns in
  Printf.printf
    "\ngeneralized halogen fragments at support 0.10 (invisible to exact mining):\n";
  interesting
  |> List.sort (fun (a : Pattern.t) b ->
         compare b.Pattern.support_count a.Pattern.support_count)
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter (fun p -> print_endline ("  " ^ Pattern.to_string ~names p))
