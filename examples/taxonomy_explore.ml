(* A tour of the taxonomy and occurrence-index machinery: what Taxogram's
   three steps actually do to a small database, stage by stage.

     dune exec examples/taxonomy_explore.exe *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Gspan = Tsg_gspan.Gspan
module Relabel = Tsg_core.Relabel
module Occ_index = Tsg_core.Occ_index
module Specialize = Tsg_core.Specialize
module Pattern = Tsg_core.Pattern

let () =
  (* taxonomy: a over {b, c}; b over {d, e}; c over {f} — the DESIGN.md
     running example *)
  let t =
    Taxonomy.build
      ~names:[ "a"; "b"; "c"; "d"; "e"; "f" ]
      ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c") ]
  in
  let id n = Taxonomy.id_of_name t n in
  let name l = Taxonomy.name t l in
  Printf.printf "taxonomy: %d concepts, %d levels, root %s\n"
    (Taxonomy.label_count t) (Taxonomy.level_count t)
    (name (List.hd (Taxonomy.roots t)));
  Printf.printf "ancestors of d: %s\n"
    (String.concat ", " (List.map name (Taxonomy.ancestors t (id "d"))));
  Printf.printf "descendants of b: %s\n\n"
    (String.concat ", " (List.map name (Taxonomy.descendants t (id "b"))));

  let db =
    Db.of_list
      [
        Graph.build ~labels:[| id "d"; id "f" |] ~edges:[ (0, 1, 0) ];
        Graph.build ~labels:[| id "e"; id "f" |] ~edges:[ (0, 1, 0) ];
      ]
  in

  (* Step 1: relabel with most general ancestors *)
  let relabeled = Relabel.db t db in
  print_endline "step 1 (relabel): every node collapses to its root label";
  Db.iteri
    (fun gid g ->
      Printf.printf "  graph %d labels: %s\n" gid
        (String.concat ", "
           (List.map name (Array.to_list (Graph.node_labels g)))))
    relabeled;

  (* Step 2: mine pattern classes on the relabeled db; build the occurrence
     index of the single class *)
  let classes = Gspan.mine_list ~min_support:2 relabeled in
  Printf.printf "\nstep 2 (mine classes): %d pattern class(es)\n"
    (List.length classes);
  let oi = Occ_index.build ~taxonomy:t ~original:db (List.hd classes) in
  Printf.printf "  class has %d occurrences across %d graphs\n"
    oi.Occ_index.occ_count
    (Bitset.cardinal oi.Occ_index.class_support_set);
  List.iter
    (fun pos ->
      let entries =
        Occ_index.covered_labels oi ~position:pos
        |> List.map (fun l ->
               let set = Option.get (Occ_index.occurrence_set oi ~position:pos l) in
               Printf.sprintf "%s:%d" (name l) (Bitset.cardinal set))
      in
      Printf.printf "  OIE(position %d): %s\n" pos (String.concat " " entries))
    [ 0; 1 ];

  (* Step 3: enumerate specialized patterns; over-generalized ones vanish *)
  let stats = Specialize.fresh_stats () in
  print_endline "\nstep 3 (specialize): emitted patterns";
  Specialize.enumerate ~taxonomy:t ~min_support:2
    ~enhancements:Specialize.all_on ~stats oi (fun p ->
      print_endline ("  " ^ Pattern.to_string ~names:(Taxonomy.labels t) p));
  Printf.printf
    "  visited %d label vectors, %d intersections, %d over-generalized\n"
    stats.Specialize.visited stats.Specialize.intersections
    stats.Specialize.over_generalized
