(* Quickstart: the paper's Example 1.1 in code.

   Two "pathway annotation" graphs share no explicit edge, yet both contain
   an implicit transporter-helicase interaction once the Gene Ontology
   is-a hierarchy is taken into account. Traditional graph mining finds
   nothing; Taxogram finds the generalized pattern.

     dune exec examples/quickstart.exe *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxogram = Tsg_core.Taxogram
module Pattern = Tsg_core.Pattern

let () =
  (* 1. the label taxonomy (Figure 1.1: a GO molecular-function excerpt) *)
  let taxonomy =
    Taxonomy.build
      ~names:
        [ "molecular function"; "transporter"; "catalytic activity";
          "protein carrier"; "cation transporter"; "helicase"; "dna helicase" ]
      ~is_a:
        [
          ("transporter", "molecular function");
          ("catalytic activity", "molecular function");
          ("protein carrier", "transporter");
          ("cation transporter", "transporter");
          ("helicase", "catalytic activity");
          ("dna helicase", "helicase");
        ]
  in
  let id name = Taxonomy.id_of_name taxonomy name in

  (* 2. the graph database (Figure 1.2: two pathway annotation graphs) *)
  let pathway1 =
    Graph.build
      ~labels:[| id "protein carrier"; id "dna helicase"; id "helicase" |]
      ~edges:[ (0, 1, 0); (1, 2, 0) ]
  in
  let pathway2 =
    Graph.build
      ~labels:[| id "cation transporter"; id "helicase" |]
      ~edges:[ (0, 1, 0) ]
  in
  let db = Db.of_list [ pathway1; pathway2 ] in

  (* 3. exact mining finds nothing at support 1.0 ... *)
  let exact = Tsg_gspan.Gspan.mine_list ~min_support:2 db in
  Printf.printf "exact gSpan patterns at support 1.0: %d\n" (List.length exact);

  (* 4. ... while taxonomy-superimposed mining discovers the implicit
     structure, with over-generalized variants already pruned *)
  let config = { Taxogram.default_config with min_support = 1.0 } in
  let result = Taxogram.run (Taxogram.Spec.collect ~config ()) taxonomy db in
  Printf.printf "Taxogram patterns at support 1.0: %d\n"
    result.Taxogram.pattern_count;
  let names = Taxonomy.labels taxonomy in
  List.iter
    (fun p -> print_endline ("  " ^ Pattern.to_string ~names p))
    (Pattern.sort result.Taxogram.patterns);

  (* 5. supports can always be re-checked against the definition *)
  List.iter
    (fun (p : Pattern.t) ->
      let support = Tsg_iso.Gen_iso.support taxonomy ~pattern:p.Pattern.graph db in
      Printf.printf "  verified support: %.2f\n" support)
    result.Taxogram.patterns
