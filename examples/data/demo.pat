p # 0 support 34/40
v 0 c0
v 1 c0
e 0 1 e2
p # 1 support 33/40
v 0 c0
v 1 c0
e 0 1 e1
p # 2 support 33/40
v 0 c0
v 1 c0
e 0 1 e0
p # 3 support 30/40
v 0 c0
v 1 c5
e 0 1 e2
p # 4 support 29/40
v 0 c0
v 1 c3
e 0 1 e1
p # 5 support 27/40
v 0 c0
v 1 c0
v 2 c0
e 0 1 e0
e 1 2 e2
p # 6 support 27/40
v 0 c0
v 1 c0
v 2 c0
e 0 1 e0
e 1 2 e1
p # 7 support 26/40
v 0 c0
v 1 c2
e 0 1 e2
p # 8 support 26/40
v 0 c0
v 1 c2
e 0 1 e1
p # 9 support 25/40
v 0 c0
v 1 c5
e 0 1 e1
p # 10 support 25/40
v 0 c0
v 1 c0
v 2 c0
e 0 1 e1
e 1 2 e1
p # 11 support 24/40
v 0 c0
v 1 c8
e 0 1 e1
p # 12 support 24/40
v 0 c0
v 1 c3
e 0 1 e0
p # 13 support 23/40
v 0 c0
v 1 c0
v 2 c0
e 0 1 e1
e 1 2 e2
p # 14 support 23/40
v 0 c0
v 1 c2
e 0 1 e0
p # 15 support 22/40
v 0 c0
v 1 c3
e 0 1 e2
p # 16 support 22/40
v 0 c0
v 1 c8
e 0 1 e2
p # 17 support 22/40
v 0 c0
v 1 c0
v 2 c5
e 0 1 e0
e 1 2 e2
p # 18 support 22/40
v 0 c0
v 1 c0
v 2 c3
e 0 1 e1
e 1 2 e1
p # 19 support 21/40
v 0 c0
v 1 c5
e 0 1 e0
p # 20 support 20/40
v 0 c2
v 1 c5
e 0 1 e2
p # 21 support 20/40
v 0 c0
v 1 c1
e 0 1 e1
p # 22 support 19/40
v 0 c0
v 1 c7
e 0 1 e2
p # 23 support 19/40
v 0 c0
v 1 c0
v 2 c0
e 0 1 e2
e 1 2 e2
p # 24 support 19/40
v 0 c0
v 1 c7
e 0 1 e1
p # 25 support 18/40
v 0 c0
v 1 c1
e 0 1 e2
p # 26 support 18/40
v 0 c0
v 1 c9
e 0 1 e1
p # 27 support 18/40
v 0 c0
v 1 c0
v 2 c2
e 0 1 e1
e 1 2 e1
p # 28 support 18/40
v 0 c0
v 1 c8
e 0 1 e0
p # 29 support 18/40
v 0 c0
v 1 c0
v 2 c0
e 0 1 e0
e 1 2 e0
p # 30 support 17/40
v 0 c0
v 1 c9
e 0 1 e2
p # 31 support 17/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e1
e 1 2 e1
e 2 3 e2
p # 32 support 17/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e1
e 1 3 e2
p # 33 support 17/40
v 0 c0
v 1 c0
v 2 c2
e 0 1 e0
e 1 2 e2
p # 34 support 17/40
v 0 c0
v 1 c11
e 0 1 e1
p # 35 support 17/40
v 0 c0
v 1 c16
e 0 1 e1
p # 36 support 17/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e1
e 2 3 e1
p # 37 support 17/40
v 0 c0
v 1 c0
v 2 c3
e 0 1 e0
e 1 2 e1
p # 38 support 17/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e0
e 0 2 e1
p # 39 support 16/40
v 0 c0
v 1 c16
e 0 1 e2
p # 40 support 16/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e0
e 0 2 e2
p # 41 support 16/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 0 3 e2
e 1 2 e1
p # 42 support 16/40
v 0 c0
v 1 c0
v 2 c5
e 0 1 e1
e 1 2 e1
p # 43 support 16/40
v 0 c0
v 1 c0
v 2 c8
e 0 1 e1
e 1 2 e1
p # 44 support 16/40
v 0 c0
v 1 c0
v 2 c2
e 0 1 e0
e 1 2 e1
p # 45 support 16/40
v 0 c0
v 1 c9
e 0 1 e0
p # 46 support 15/40
v 0 c3
v 1 c5
e 0 1 e2
p # 47 support 15/40
v 0 c0
v 1 c13
e 0 1 e2
p # 48 support 15/40
v 0 c5
v 1 c8
e 0 1 e2
p # 49 support 15/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e1
e 0 2 e2
p # 50 support 15/40
v 0 c0
v 1 c0
v 2 c8
e 0 1 e0
e 1 2 e2
p # 51 support 15/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e0
e 0 2 e2
p # 52 support 15/40
v 0 c2
v 1 c5
e 0 1 e1
p # 53 support 15/40
v 0 c0
v 1 c6
e 0 1 e1
p # 54 support 15/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e0
e 1 2 e1
p # 55 support 15/40
v 0 c0
v 1 c7
e 0 1 e0
p # 56 support 14/40
v 0 c0
v 1 c11
e 0 1 e2
p # 57 support 14/40
v 0 c0
v 1 c4
e 0 1 e2
p # 58 support 14/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e2
e 1 2 e2
p # 59 support 14/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e2
e 2 3 e2
p # 60 support 14/40
v 0 c0
v 1 c0
v 2 c2
e 0 1 e1
e 1 2 e2
p # 61 support 14/40
v 0 c0
v 1 c0
v 2 c8
e 0 1 e1
e 1 2 e2
p # 62 support 14/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e1
e 2 3 e2
p # 63 support 14/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e0
e 1 2 e2
p # 64 support 14/40
v 0 c0
v 1 c3
v 2 c0
e 0 1 e0
e 0 2 e2
p # 65 support 14/40
v 0 c2
v 1 c3
e 0 1 e1
p # 66 support 14/40
v 0 c3
v 1 c5
e 0 1 e1
p # 67 support 14/40
v 0 c0
v 1 c4
e 0 1 e1
p # 68 support 14/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e1
e 1 2 e1
p # 69 support 14/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e0
e 1 2 e1
p # 70 support 14/40
v 0 c0
v 1 c3
v 2 c0
e 0 1 e0
e 1 2 e1
p # 71 support 14/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e0
e 0 2 e1
p # 72 support 14/40
v 0 c0
v 1 c3
v 2 c0
e 0 1 e0
e 0 2 e1
p # 73 support 14/40
v 0 c0
v 1 c1
e 0 1 e0
p # 74 support 14/40
v 0 c3
v 1 c5
e 0 1 e0
p # 75 support 14/40
v 0 c0
v 1 c16
e 0 1 e0
p # 76 support 13/40
v 0 c0
v 1 c0
v 2 c2
e 0 1 e2
e 1 2 e2
p # 77 support 13/40
v 0 c0
v 1 c0
v 2 c5
e 0 1 e2
e 1 2 e2
p # 78 support 13/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e1
e 1 2 e2
p # 79 support 13/40
v 0 c0
v 1 c7
v 2 c0
e 0 1 e1
e 0 2 e2
p # 80 support 13/40
v 0 c0
v 1 c9
v 2 c0
e 0 1 e1
e 0 2 e2
p # 81 support 13/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e0
e 2 3 e2
p # 82 support 13/40
v 0 c2
v 1 c2
e 0 1 e1
p # 83 support 13/40
v 0 c2
v 1 c8
e 0 1 e1
p # 84 support 13/40
v 0 c0
v 1 c13
e 0 1 e1
p # 85 support 13/40
v 0 c0
v 1 c0
v 2 c1
e 0 1 e1
e 1 2 e1
p # 86 support 13/40
v 0 c0
v 1 c0
v 2 c7
e 0 1 e1
e 1 2 e1
p # 87 support 13/40
v 0 c0
v 1 c0
v 2 c9
e 0 1 e1
e 1 2 e1
p # 88 support 13/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e0
e 0 2 e1
p # 89 support 13/40
v 0 c0
v 1 c4
e 0 1 e0
p # 90 support 13/40
v 0 c0
v 1 c13
e 0 1 e0
p # 91 support 12/40
v 0 c0
v 1 c6
e 0 1 e2
p # 92 support 12/40
v 0 c0
v 1 c0
v 2 c3
e 0 1 e2
e 1 2 e2
p # 93 support 12/40
v 0 c0
v 1 c0
v 2 c8
e 0 1 e2
e 1 2 e2
p # 94 support 12/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e2
e 1 3 e2
p # 95 support 12/40
v 0 c0
v 1 c0
v 2 c5
e 0 1 e1
e 1 2 e2
p # 96 support 12/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e1
e 1 2 e2
p # 97 support 12/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e1
e 0 2 e2
p # 98 support 12/40
v 0 c0
v 1 c16
v 2 c0
e 0 1 e1
e 0 2 e2
p # 99 support 12/40
v 0 c0
v 1 c0
v 2 c3
v 3 c0
e 0 1 e1
e 0 3 e2
e 1 2 e1
p # 100 support 12/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e1
e 1 2 e1
e 1 3 e2
p # 101 support 12/40
v 0 c0
v 1 c0
v 2 c0
v 3 c2
e 0 1 e0
e 1 2 e1
e 1 3 e2
p # 102 support 12/40
v 0 c0
v 1 c2
v 2 c0
e 0 1 e0
e 1 2 e2
p # 103 support 12/40
v 0 c0
v 1 c3
v 2 c0
e 0 1 e0
e 1 2 e2
p # 104 support 12/40
v 0 c0
v 1 c0
v 2 c0
v 3 c5
e 0 1 e0
e 1 2 e0
e 2 3 e2
p # 105 support 12/40
v 0 c2
v 1 c9
e 0 1 e1
p # 106 support 12/40
v 0 c5
v 1 c8
e 0 1 e1
p # 107 support 12/40
v 0 c0
v 1 c0
v 2 c11
e 0 1 e1
e 1 2 e1
p # 108 support 12/40
v 0 c0
v 1 c0
v 2 c16
e 0 1 e1
e 1 2 e1
p # 109 support 12/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e1
e 1 3 e1
p # 110 support 12/40
v 0 c0
v 1 c0
v 2 c5
e 0 1 e0
e 1 2 e1
p # 111 support 12/40
v 0 c0
v 1 c0
v 2 c8
e 0 1 e0
e 1 2 e1
p # 112 support 12/40
v 0 c0
v 1 c9
v 2 c0
e 0 1 e0
e 0 2 e1
p # 113 support 12/40
v 0 c0
v 1 c11
e 0 1 e0
p # 114 support 12/40
v 0 c2
v 1 c5
e 0 1 e0
p # 115 support 12/40
v 0 c0
v 1 c6
e 0 1 e0
p # 116 support 11/40
v 0 c1
v 1 c5
e 0 1 e2
p # 117 support 11/40
v 0 c0
v 1 c19
e 0 1 e2
p # 118 support 11/40
v 0 c2
v 1 c13
e 0 1 e2
p # 119 support 11/40
v 0 c2
v 1 c8
e 0 1 e2
p # 120 support 11/40
v 0 c3
v 1 c8
e 0 1 e2
p # 121 support 11/40
v 0 c0
v 1 c15
e 0 1 e2
p # 122 support 11/40
v 0 c5
v 1 c9
e 0 1 e2
p # 123 support 11/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e1
e 1 2 e2
e 2 3 e2
p # 124 support 11/40
v 0 c0
v 1 c0
v 2 c0
v 3 c5
e 0 1 e0
e 1 2 e2
e 2 3 e2
p # 125 support 11/40
v 0 c0
v 1 c0
v 2 c5
v 3 c0
e 0 1 e0
e 1 2 e2
e 2 3 e2
p # 126 support 11/40
v 0 c0
v 1 c2
v 2 c8
e 0 1 e1
e 0 2 e2
p # 127 support 11/40
v 0 c0
v 1 c0
v 2 c9
e 0 1 e1
e 1 2 e2
p # 128 support 11/40
v 0 c0
v 1 c3
v 2 c0
e 0 1 e1
e 1 2 e2
p # 129 support 11/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e1
e 1 2 e2
p # 130 support 11/40
v 0 c0
v 1 c6
v 2 c0
e 0 1 e1
e 0 2 e2
p # 131 support 11/40
v 0 c0
v 1 c0
v 2 c0
v 3 c5
e 0 1 e0
e 1 2 e1
e 1 3 e2
p # 132 support 11/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e2
e 2 3 e1
p # 133 support 11/40
v 0 c0
v 1 c0
v 2 c3
e 0 1 e0
e 1 2 e2
p # 134 support 11/40
v 0 c0
v 1 c2
v 2 c5
e 0 1 e0
e 0 2 e2
p # 135 support 11/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e0
e 1 2 e2
p # 136 support 11/40
v 0 c0
v 1 c5
v 2 c0
v 3 c0
e 0 1 e0
e 0 3 e1
e 1 2 e2
p # 137 support 11/40
v 0 c2
v 1 c6
e 0 1 e1
p # 138 support 11/40
v 0 c2
v 1 c16
e 0 1 e1
p # 139 support 11/40
v 0 c3
v 1 c9
e 0 1 e1
p # 140 support 11/40
v 0 c0
v 1 c2
v 2 c2
e 0 1 e1
e 1 2 e1
p # 141 support 11/40
v 0 c0
v 1 c2
v 2 c3
e 0 1 e1
e 1 2 e1
p # 142 support 11/40
v 0 c0
v 1 c0
v 2 c6
e 0 1 e1
e 1 2 e1
p # 143 support 11/40
v 0 c0
v 1 c5
v 2 c0
e 0 1 e1
e 1 2 e1
p # 144 support 11/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e1
e 1 2 e1
p # 145 support 11/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e1
e 1 2 e1
e 2 3 e1
p # 146 support 11/40
v 0 c0
v 1 c5
v 2 c5
e 0 1 e1
e 1 2 e0
p # 147 support 11/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e0
e 1 2 e1
p # 148 support 11/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e0
e 1 2 e0
e 2 3 e1
p # 149 support 11/40
v 0 c2
v 1 c3
e 0 1 e0
p # 150 support 11/40
v 0 c3
v 1 c8
e 0 1 e0
p # 151 support 11/40
v 0 c5
v 1 c5
e 0 1 e0
p # 152 support 11/40
v 0 c5
v 1 c9
e 0 1 e0
p # 153 support 11/40
v 0 c0
v 1 c0
v 2 c2
e 0 1 e0
e 1 2 e0
p # 154 support 11/40
v 0 c0
v 1 c0
v 2 c3
e 0 1 e0
e 1 2 e0
p # 155 support 11/40
v 0 c0
v 1 c0
v 2 c5
e 0 1 e0
e 1 2 e0
p # 156 support 11/40
v 0 c0
v 1 c0
v 2 c8
e 0 1 e0
e 1 2 e0
p # 157 support 10/40
v 0 c5
v 1 c5
e 0 1 e2
p # 158 support 10/40
v 0 c5
v 1 c7
e 0 1 e2
p # 159 support 10/40
v 0 c0
v 1 c5
v 2 c2
e 0 1 e2
e 1 2 e2
p # 160 support 10/40
v 0 c0
v 1 c0
v 2 c7
e 0 1 e2
e 1 2 e2
p # 161 support 10/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e2
e 1 2 e2
p # 162 support 10/40
v 0 c0
v 1 c0
v 2 c0
v 3 c0
e 0 1 e2
e 1 2 e2
e 2 3 e2
p # 163 support 10/40
v 0 c0
v 1 c0
v 2 c1
e 0 1 e1
e 1 2 e2
p # 164 support 10/40
v 0 c0
v 1 c0
v 2 c3
e 0 1 e1
e 1 2 e2
p # 165 support 10/40
v 0 c0
v 1 c2
v 2 c5
e 0 1 e1
e 0 2 e2
p # 166 support 10/40
v 0 c0
v 1 c3
v 2 c0
e 0 1 e1
e 0 2 e2
p # 167 support 10/40
v 0 c0
v 1 c5
v 2 c0
v 3 c0
e 0 1 e0
e 0 2 e1
e 2 3 e2
p # 168 support 10/40
v 0 c0
v 1 c0
v 2 c0
v 3 c8
e 0 1 e0
e 1 2 e1
e 1 3 e2
p # 169 support 10/40
v 0 c0
v 1 c2
v 2 c2
e 0 1 e0
e 0 2 e2
p # 170 support 10/40
v 0 c0
v 1 c3
v 2 c2
e 0 1 e0
e 0 2 e2
p # 171 support 10/40
v 0 c0
v 1 c5
v 2 c2
e 0 1 e0
e 0 2 e2
p # 172 support 10/40
v 0 c0
v 1 c5
v 2 c5
e 0 1 e0
e 0 2 e2
p # 173 support 10/40
v 0 c0
v 1 c8
v 2 c0
e 0 1 e0
e 0 2 e2
p # 174 support 10/40
v 0 c0
v 1 c0
v 2 c0
v 3 c5
e 0 1 e0
e 0 3 e2
e 1 2 e1
p # 175 support 10/40
v 0 c0
v 1 c0
v 2 c2
v 3 c0
e 0 1 e0
e 0 3 e2
e 1 2 e1
p # 176 support 10/40
v 0 c0
v 1 c0
v 2 c3
v 3 c0
e 0 1 e0
e 0 3 e2
e 1 2 e1
p # 177 support 10/40
v 0 c1
v 1 c9
e 0 1 e1
p # 178 support 10/40
v 0 c3
v 1 c6
e 0 1 e1
p # 179 support 10/40
v 0 c3
v 1 c16
e 0 1 e1
p # 180 support 10/40
v 0 c3
v 1 c8
e 0 1 e1
p # 181 support 10/40
v 0 c7
v 1 c8
e 0 1 e1
p # 182 support 10/40
v 0 c0
v 1 c17
e 0 1 e1
p # 183 support 10/40
v 0 c8
v 1 c9
e 0 1 e1
p # 184 support 10/40
v 0 c0
v 1 c0
v 2 c4
e 0 1 e1
e 1 2 e1
p # 185 support 10/40
v 0 c0
v 1 c5
v 2 c0
v 3 c0
e 0 1 e0
e 0 2 e1
e 2 3 e1
p # 186 support 10/40
v 0 c0
v 1 c5
v 2 c2
e 0 1 e0
e 0 2 e1
p # 187 support 10/40
v 0 c0
v 1 c0
v 2 c7
e 0 1 e0
e 1 2 e1
p # 188 support 10/40
v 0 c0
v 1 c7
v 2 c0
e 0 1 e0
e 1 2 e1
p # 189 support 10/40
v 0 c0
v 1 c9
v 2 c0
e 0 1 e0
e 1 2 e1
p # 190 support 10/40
v 0 c0
v 1 c6
v 2 c0
e 0 1 e0
e 0 2 e1
p # 191 support 10/40
v 0 c5
v 1 c8
e 0 1 e0
