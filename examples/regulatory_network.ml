(* Directed mining: regulatory-motif discovery across signaling networks.

   Regulation is inherently directed (kinase -> transcription factor is not
   transcription factor -> kinase), so this example exercises the directed
   mode the paper describes but never evaluates: arcs are activation (0) or
   inhibition (1), node labels come from a small protein-function taxonomy.

     dune exec examples/regulatory_network.exe *)

module Digraph = Tsg_graph.Digraph
module Taxonomy = Tsg_taxonomy.Taxonomy
module Directed = Tsg_core.Directed

let activation = 0

let inhibition = 1

let () =
  let tax =
    Taxonomy.build
      ~names:
        [ "protein"; "enzyme"; "regulator"; "kinase"; "phosphatase";
          "transcription factor"; "repressor" ]
      ~is_a:
        [
          ("enzyme", "protein"); ("regulator", "protein");
          ("kinase", "enzyme"); ("phosphatase", "enzyme");
          ("transcription factor", "regulator"); ("repressor", "regulator");
        ]
  in
  let id n = Taxonomy.id_of_name tax n in
  let env = Directed.prepare tax in

  (* three observed signaling cascades from different conditions: each has
     some enzyme activating some regulator, with varying specifics *)
  let cascade1 =
    Digraph.build
      ~labels:[| id "kinase"; id "transcription factor"; id "repressor" |]
      ~arcs:[ (0, 1, activation); (1, 2, inhibition) ]
  in
  let cascade2 =
    Digraph.build
      ~labels:[| id "phosphatase"; id "repressor" |]
      ~arcs:[ (0, 1, activation) ]
  in
  let cascade3 =
    Digraph.build
      ~labels:[| id "kinase"; id "repressor"; id "kinase" |]
      ~arcs:[ (0, 1, activation); (2, 1, inhibition) ]
  in
  let networks = [ cascade1; cascade2; cascade3 ] in

  Printf.printf "mining %d cascades for conserved regulatory motifs...\n\n"
    (List.length networks);
  let names = Taxonomy.labels (Directed.taxonomy env) in
  List.iter
    (fun theta ->
      let patterns = Directed.mine ~min_support:theta env networks in
      Printf.printf "support >= %.2f: %d motifs\n" theta (List.length patterns);
      List.iter
        (fun p ->
          Format.printf "  %a@." (Directed.pp_pattern ~names) p)
        patterns)
    [ 1.0; 0.66 ];
  print_endline
    "\narc labels: activation = plain, inhibition = /1; note the motifs are\n\
     directed — enzyme -> regulator, never the reverse."
