(* tsg-mine: mine a taxonomy-superimposed graph database from files.

     tsg-mine --db pathways.db --taxonomy go.tax --support 0.2
     tsg-mine --db pte.db --taxonomy atoms.tax --algorithm tacgm --limit 20 *)

module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Pattern = Tsg_core.Pattern
module Taxogram = Tsg_core.Taxogram
module Tacgm = Tsg_core.Tacgm
module Naive = Tsg_core.Naive
module Specialize = Tsg_core.Specialize
module Diagnostic = Tsg_util.Diagnostic

open Cmdliner

type algorithm = Alg_taxogram | Alg_baseline | Alg_tacgm | Alg_naive

let algorithm_conv =
  let parse = function
    | "taxogram" -> Ok Alg_taxogram
    | "baseline" -> Ok Alg_baseline
    | "tacgm" -> Ok Alg_tacgm
    | "naive" -> Ok Alg_naive
    | s -> Error (`Msg ("unknown algorithm: " ^ s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Alg_taxogram -> "taxogram"
      | Alg_baseline -> "baseline"
      | Alg_tacgm -> "tacgm"
      | Alg_naive -> "naive")
  in
  Arg.conv (parse, print)

(* fail fast on malformed artifacts, with rule-coded diagnostics; the
   --no-validate escape hatch skips straight to loading *)
let validate_inputs db_path tax_path =
  let c = Diagnostic.collector () in
  ignore (Tsg_check.Lint.run c ~taxonomy:tax_path ~dbs:[ db_path ] ());
  if Diagnostic.has_errors c then begin
    Diagnostic.print stderr c;
    Printf.eprintf
      "tsg-mine: validation failed (%s); --no-validate to override\n"
      (Diagnostic.summary c);
    exit 2
  end

let load_inputs db_path tax_path =
  let taxonomy =
    try Taxonomy_io.load tax_path
    with Taxonomy_io.Parse_error d ->
      Printf.eprintf "tsg-mine: %s\n" (Diagnostic.to_string d);
      exit 2
  in
  let edge_labels = Label.create () in
  let db =
    Serial.load_db ~node_labels:(Taxonomy.labels taxonomy) ~edge_labels db_path
  in
  (* every node label read from the db must already be a taxonomy concept;
     Serial interns unknown names, which would leave them outside the DAG *)
  let c = Diagnostic.collector () in
  Tsg_check.Check_db.validate c ~taxonomy db;
  if Diagnostic.has_errors c then begin
    Diagnostic.print stderr c;
    Printf.eprintf "tsg-mine: %s uses labels outside the taxonomy (%s)\n"
      db_path (Diagnostic.summary c);
    exit 2
  end;
  (taxonomy, db, edge_labels)

let run_directed db_path tax_path support max_edges limit quiet =
  let taxonomy = Taxonomy_io.load tax_path in
  let env = Tsg_core.Directed.prepare taxonomy in
  let arc_labels = Label.create () in
  let digraphs =
    Serial.load_digraphs ~node_labels:(Taxonomy.labels taxonomy) ~arc_labels
      db_path
  in
  Printf.printf "directed database: %d graphs, taxonomy: %d concepts\n%!"
    (List.length digraphs)
    (Taxonomy.label_count taxonomy);
  let t = Tsg_util.Timer.start () in
  let max_arcs = max_edges in
  let patterns =
    Tsg_core.Directed.mine ~min_support:support ?max_arcs env digraphs
  in
  let elapsed = Tsg_util.Timer.elapsed_s t in
  let sorted =
    List.sort
      (fun (a : Tsg_core.Directed.pattern) b ->
        compare b.Tsg_core.Directed.support_count
          a.Tsg_core.Directed.support_count)
      patterns
  in
  Printf.printf "%d directed patterns in %.3fs (support >= %.2f)\n"
    (List.length sorted) elapsed support;
  if not quiet then begin
    let shown =
      match limit with
      | Some l -> List.filteri (fun i _ -> i < l) sorted
      | None -> sorted
    in
    let names = Taxonomy.labels (Tsg_core.Directed.taxonomy env) in
    List.iter
      (fun p ->
        Format.printf "  %a@." (Tsg_core.Directed.pp_pattern ~names) p)
      shown
  end;
  0

let run db_path tax_path support algorithm max_edges limit quiet directed out
    domains parallel no_validate checkpoint_path checkpoint_every corpus_seq
    supervised =
  if directed then run_directed db_path tax_path support max_edges limit quiet
  else begin
  (match (checkpoint_path, algorithm) with
  | Some _, (Alg_tacgm | Alg_naive) ->
    prerr_endline
      "tsg-mine: --checkpoint applies to the taxogram and baseline algorithms";
    exit 2
  | Some _, (Alg_taxogram | Alg_baseline) | None, _ -> ());
  if not no_validate then validate_inputs db_path tax_path;
  let taxonomy, db, edge_labels = load_inputs db_path tax_path in
  (* mining is parallel by default now; --domains overrides the
     TSG_DOMAINS-aware pool default, and the deprecated --parallel flag is
     accepted as a no-op alias of that default *)
  ignore parallel;
  let domains =
    Option.value ~default:(Tsg_util.Pool.default_domains ()) domains
  in
  Printf.printf
    "database: %d graphs, taxonomy: %d concepts (%d levels), %d domains\n%!"
    (Db.size db)
    (Taxonomy.label_count taxonomy)
    (Taxonomy.level_count taxonomy)
    domains;
  let incomplete = ref false in
  let patterns, elapsed =
    match algorithm with
    | Alg_taxogram | Alg_baseline ->
      let enhancements =
        if algorithm = Alg_taxogram then Specialize.all_on
        else Specialize.all_off
      in
      let config = { Taxogram.min_support = support; max_edges; enhancements } in
      let checkpoint =
        Option.map
          (fun path ->
            { Taxogram.path; every_s = checkpoint_every; corpus_seq })
          checkpoint_path
      in
      let spec =
        Taxogram.Spec.collect ~config ~domains ?checkpoint ~supervised ()
      in
      let r =
        try Taxogram.run spec taxonomy db with
        | Tsg_core.Checkpoint.Error d ->
          Printf.eprintf "tsg-mine: %s\n" (Diagnostic.to_string d);
          exit 2
        | Tsg_util.Fault.Injected _ as e ->
          Printf.eprintf "tsg-mine: aborted: %s\n" (Printexc.to_string e);
          (match checkpoint_path with
          | Some p ->
            Printf.eprintf
              "tsg-mine: progress saved to %s; rerun with --checkpoint to \
               resume\n"
              p
          | None -> ());
          exit 3
      in
      List.iter
        (fun d -> Printf.eprintf "tsg-mine: %s\n" (Diagnostic.to_string d))
        r.Taxogram.diagnostics;
      if not r.Taxogram.completed then begin
        incomplete := true;
        prerr_endline
          "tsg-mine: run stopped early; reporting the completed prefix"
      end;
      (r.Taxogram.patterns, r.Taxogram.total_wall_seconds)
    | Alg_tacgm ->
      let r = Tacgm.run ?max_edges ~min_support:support taxonomy db in
      (match r.Tacgm.outcome with
      | Tacgm.Completed -> ()
      | Tacgm.Out_of_memory -> prerr_endline "tacgm: embedding budget exceeded"
      | Tacgm.Timed_out -> prerr_endline "tacgm: time budget exceeded");
      (r.Tacgm.patterns, r.Tacgm.total_seconds)
    | Alg_naive ->
      let max_edges = Option.value ~default:3 max_edges in
      let t = Tsg_util.Timer.start () in
      let ps = Naive.mine ~max_edges ~min_support:support taxonomy db in
      (ps, Tsg_util.Timer.elapsed_s t)
  in
  let sorted =
    List.sort
      (fun (a : Pattern.t) b -> compare b.Pattern.support_count a.Pattern.support_count)
      patterns
  in
  Printf.printf "%d patterns in %.3fs (support >= %.2f)\n" (List.length sorted)
    elapsed support;
  (match out with
  | Some path ->
    if not no_validate then begin
      (* make sure we never persist a pattern set that tsg-lint would
         reject: same checks, before any bytes hit the disk *)
      let c = Diagnostic.collector () in
      Tsg_check.Check_patterns.validate c ~taxonomy
        ~node_labels:(Taxonomy.labels taxonomy)
        ~db_size:(Db.size db) sorted;
      if Diagnostic.has_errors c then begin
        Diagnostic.print stderr c;
        Printf.eprintf
          "tsg-mine: refusing to save invalid pattern set (%s); \
           --no-validate to override\n"
          (Diagnostic.summary c);
        exit 2
      end
    end;
    (* save with the db's own edge-label table: pattern edge-label ids are
       the loader's interning, which need not follow the e0..eN name order *)
    Tsg_core.Pattern_io.save path
      ~node_labels:(Taxonomy.labels taxonomy)
      ~edge_labels ~db_size:(Db.size db) sorted;
    Printf.printf "patterns written to %s\n" path
  | None -> ());
  if not quiet then begin
    let shown = match limit with Some l -> List.filteri (fun i _ -> i < l) sorted | None -> sorted in
    let names = Taxonomy.labels taxonomy in
    List.iter (fun p -> print_endline ("  " ^ Pattern.to_string ~names p)) shown;
    match limit with
    | Some l when List.length sorted > l ->
      Printf.printf "  ... (%d more; raise --limit)\n" (List.length sorted - l)
    | _ -> ()
  end;
  if !incomplete then 1 else 0
  end

let db_arg =
  Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE"
         ~doc:"Graph database in gSpan-style text format (see tsg-datagen).")

let tax_arg =
  Arg.(required & opt (some file) None & info [ "taxonomy" ] ~docv:"FILE"
         ~doc:"Label taxonomy (c/i line format).")

let support_arg =
  Arg.(value & opt float 0.2 & info [ "theta"; "support"; "s" ] ~docv:"THETA"
         ~doc:"Minimum support threshold in [0,1]. $(b,--support) and \
               $(b,-s) are kept as aliases of $(b,--theta).")

let algorithm_arg =
  Arg.(value & opt algorithm_conv Alg_taxogram & info [ "algorithm"; "a" ]
         ~docv:"ALG" ~doc:"One of taxogram, baseline, tacgm, naive.")

let max_edges_arg =
  Arg.(value & opt (some int) None & info [ "max-edges" ] ~docv:"N"
         ~doc:"Cap patterns at $(docv) edges.")

let limit_arg =
  Arg.(value & opt (some int) (Some 50) & info [ "limit" ] ~docv:"N"
         ~doc:"Print at most $(docv) patterns (highest support first).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the summary line.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "save" ] ~docv:"FILE"
         ~doc:"Also write the mined patterns to $(docv) (Pattern_io format, \
               readable by tsg-serve and tsg-dot).")

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"N"
           ~env:(Cmd.Env.info "TSG_DOMAINS")
           ~doc:"Size of the work-stealing domain pool Steps 2 and 3 run \
                 on (taxogram and baseline algorithms only); 1 selects the \
                 sequential pipeline. Defaults to $(b,TSG_DOMAINS) when \
                 set, else the machine's recommended domain count capped \
                 at 8.")

let parallel_arg =
  Arg.(value & flag
       & info [ "parallel" ]
           ~deprecated:"use --domains N (mining is parallel by default)"
           ~doc:"Deprecated no-op alias of the default --domains.")

let directed_arg =
  Arg.(value & flag & info [ "directed" ]
         ~doc:"Treat the database as directed ('a' lines); --max-edges then \
               counts arcs. The algorithm is always taxogram in this mode.")

let no_validate_arg =
  Arg.(value & flag & info [ "no-validate" ]
         ~doc:"Skip the tsg-lint validation pass over inputs and over the \
               pattern set written by --save.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Snapshot completed mining roots to $(docv) (written \
               atomically) and resume from it when it already holds a \
               snapshot of the same inputs; the resumed pattern set is \
               identical to an uninterrupted run. The file is removed when \
               mining completes. Taxogram and baseline algorithms only.")

let checkpoint_every_arg =
  Arg.(value & opt float 5.0 & info [ "checkpoint-every" ] ~docv:"SECS"
         ~doc:"Minimum seconds between checkpoint snapshots (0 snapshots \
               after every completed root).")

let corpus_seq_arg =
  Arg.(value & opt int64 0L & info [ "corpus-seq" ] ~docv:"SEQ"
         ~doc:"Corpus version stamped into --checkpoint snapshots: the WAL \
               sequence number of a tsg-pipe-maintained database (see \
               tsg-pipe export), 0 for a static corpus. Resuming a \
               snapshot taken at a different sequence fails with CKPT003 — \
               the corpus moved on, so the snapshot's completed-root \
               prefix no longer describes it.")

let supervised_arg =
  Arg.(value & flag & info [ "supervised" ]
         ~doc:"Quarantine failing mining tasks instead of aborting: the run \
               reports the completed prefix plus rule-coded diagnostics on \
               stderr, and exits 1 when cut short.")

let cmd =
  let doc = "mine frequent patterns from a taxonomy-superimposed graph database" in
  Cmd.v
    (Cmd.info "tsg-mine" ~doc)
    Term.(
      const run $ db_arg $ tax_arg $ support_arg $ algorithm_arg
      $ max_edges_arg $ limit_arg $ quiet_arg $ directed_arg $ out_arg
      $ domains_arg $ parallel_arg $ no_validate_arg $ checkpoint_arg
      $ checkpoint_every_arg $ corpus_seq_arg $ supervised_arg)

let () =
  (match Tsg_util.Fault.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "tsg-mine: %s\n" msg;
    exit 2);
  exit (Cmd.eval' cmd)
