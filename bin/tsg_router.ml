(* tsg-router: the cluster front for sharded tsg-serve replicas.

     tsg-serve --patterns p.pat --taxonomy d.tax --shard 0/2 --listen 7411 &
     tsg-serve --patterns p.pat --taxonomy d.tax --shard 0/2 --listen 7412 &
     tsg-serve --patterns p.pat --taxonomy d.tax --shard 1/2 --listen 7421 &
     tsg-serve --patterns p.pat --taxonomy d.tax --shard 1/2 --listen 7422 &
     tsg-router --listen 7400 \
       --shard 127.0.0.1:7411,127.0.0.1:7412 \
       --shard 127.0.0.1:7421,127.0.0.1:7422

   Speaks the tsg-serve line protocol on both sides: clients need not
   know the cluster exists. Data queries scatter-gather across every
   shard with hedged, breaker-aware replica fan-out, pinned to the
   cluster target epoch, and merge byte-identically to one unsharded
   server; [health] summarizes the cluster, [epoch] reports the target
   pin, [stats] dumps the router's cluster.* metrics, [reload] runs
   the two-phase (prepare/commit) rolling reload with cluster-wide
   abort. A background scrubber fences and repairs replicas that
   drift off the target epoch. SIGTERM/SIGINT drain gracefully. *)

module Router = Tsg_cluster.Router
module Replica = Tsg_cluster.Replica
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Metrics = Tsg_util.Metrics
module Diagnostic = Tsg_util.Diagnostic

open Cmdliner

(* HOST:PORT, :PORT or bare PORT (host defaults to 127.0.0.1) *)
let parse_endpoint spec =
  let host, port =
    match String.rindex_opt spec ':' with
    | None -> ("127.0.0.1", spec)
    | Some i ->
      ( (if i = 0 then "127.0.0.1" else String.sub spec 0 i),
        String.sub spec (i + 1) (String.length spec - i - 1) )
  in
  match (Unix.inet_addr_of_string host, int_of_string_opt port) with
  | addr, Some p when p > 0 && p < 65536 -> Ok (addr, p)
  | _, _ -> Error (Printf.sprintf "bad endpoint %S (expected HOST:PORT)" spec)
  | exception Failure _ ->
    Error (Printf.sprintf "bad endpoint host in %S" spec)

let parse_shard_spec spec =
  let eps = String.split_on_char ',' spec |> List.filter (fun s -> s <> "") in
  if eps = [] then Error (Printf.sprintf "empty --shard %S" spec)
  else
    List.fold_left
      (fun acc ep ->
        match (acc, parse_endpoint ep) with
        | Ok eps, Ok e -> Ok (e :: eps)
        | (Error _ as e), _ -> e
        | _, Error msg -> Error msg)
      (Ok []) eps
    |> Result.map List.rev

let run shard_specs listen_port bind tax_path hedge_ms deadline probe_interval
    scrub_interval no_resync max_conns quiet =
  let bind_addr =
    match Tsg_query.Serve.parse_bind_addr bind with
    | Ok addr -> addr
    | Error d ->
      Printf.eprintf "tsg-router: %s\n" (Diagnostic.to_string d);
      exit 2
  in
  let shards =
    List.map
      (fun spec ->
        match parse_shard_spec spec with
        | Ok eps -> eps
        | Error msg ->
          Printf.eprintf "tsg-router: %s\n" msg;
          exit 2)
      shard_specs
  in
  let taxonomy =
    Option.map
      (fun path ->
        try Taxonomy_io.load path
        with Taxonomy_io.Parse_error d ->
          Printf.eprintf "tsg-router: %s\n" (Diagnostic.to_string d);
          exit 2)
      tax_path
  in
  let metrics = Metrics.create () in
  let replicas =
    Array.of_list
      (List.mapi
         (fun si eps ->
           Array.of_list
             (List.mapi
                (fun ri (host, port) ->
                  Replica.create ~host ~port
                    ~io_timeout_s:deadline
                    ~name:(Printf.sprintf "%d/%d" si ri)
                    ())
                eps))
         shards)
  in
  let config =
    {
      Router.default_config with
      hedge_min_s = hedge_ms /. 1000.0;
      deadline_s = deadline;
      probe_interval_s = probe_interval;
      scrub_interval_s = scrub_interval;
      resync = not no_resync;
    }
  in
  let router = Router.create ~config ?taxonomy ~metrics ~shards:replicas () in
  let up = Router.probe_all router in
  let total = Array.fold_left (fun a r -> a + Array.length r) 0 replicas in
  Printf.eprintf "tsg-router: %d shards, %d replicas (%d up)\n%!"
    (Array.length replicas) total up;
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
  let lo =
    Router.listen ~max_conns ~bind_addr
      ~on_listen:(fun p ->
        Printf.eprintf "tsg-router: listening on %s:%d\n%!"
          (Unix.string_of_inet_addr bind_addr)
          p)
      ~should_stop:(fun () -> !stop)
      router ~port:listen_port ()
  in
  Printf.eprintf "tsg-router: %d connections (%d shed)\n%!"
    lo.Router.connections lo.Router.overloaded;
  if not quiet then begin
    print_endline "begin stats";
    print_string (Metrics.render_machine metrics);
    print_endline "end stats"
  end;
  Array.iter (Array.iter Replica.close) replicas;
  0

let shards_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "shard" ] ~docv:"EP,EP,..."
        ~doc:
          "Replica endpoints of one shard as comma-separated HOST:PORT pairs \
           (repeatable, one per shard, in shard order — the order must match \
           the replicas' tsg-serve --shard indexes).")

let listen_arg =
  Arg.(
    value & opt int 0
    & info [ "listen" ] ~docv:"PORT"
        ~doc:"Front port (0, the default, picks a free one).")

let bind_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "bind" ] ~docv:"ADDR"
        ~doc:"Address to bind (an IPv4 or IPv6 literal). Default 127.0.0.1.")

let tax_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "taxonomy" ] ~docv:"FILE"
        ~doc:
          "Label taxonomy; enables label-closure-root replica affinity for \
           by-label queries (routing works without it, just with less \
           cache-friendly replica choice).")

let hedge_ms_arg =
  Arg.(
    value & opt float 2.0
    & info [ "hedge-ms" ] ~docv:"MS"
        ~doc:
          "Hedge-delay floor in milliseconds: a second replica is asked when \
           the first has been silent for max(this, its observed p95).")

let deadline_arg =
  Arg.(
    value & opt float 2.0
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "End-to-end budget per request; past it the client gets error \
           DEADLINE.")

let probe_arg =
  Arg.(
    value & opt float 1.0
    & info [ "probe-interval" ] ~docv:"SECS"
        ~doc:"Seconds between background health probes of every replica.")

let scrub_arg =
  Arg.(
    value & opt float 5.0
    & info [ "scrub-interval" ] ~docv:"SECS"
        ~doc:
          "Seconds between anti-entropy rounds: the scrubber recomputes the \
           cluster target epoch, fences replicas serving any other epoch \
           (RSY001), and — unless --no-resync — drives stale replicas \
           through a reload.")

let no_resync_arg =
  Arg.(
    value & flag
    & info [ "no-resync" ]
        ~doc:
          "Only fence stale replicas; never send them a repair reload. \
           RSY002 still reports replicas the scrubber cannot bring to the \
           target epoch.")

let max_conns_arg =
  Arg.(
    value & opt int 256
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Concurrent-connection cap; extra clients are shed with a single \
           OVERLOADED line.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Skip the metrics dump on shutdown.")

let cmd =
  let doc =
    "consistent-hash router over sharded, replicated tsg-serve backends"
  in
  Cmd.v
    (Cmd.info "tsg-router" ~doc)
    Term.(
      const run $ shards_arg $ listen_arg $ bind_arg $ tax_arg $ hedge_ms_arg
      $ deadline_arg $ probe_arg $ scrub_arg $ no_resync_arg $ max_conns_arg
      $ quiet_arg)

let () =
  (match Tsg_util.Fault.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("tsg-router: " ^ msg);
    exit 2);
  exit (Cmd.eval' cmd)
