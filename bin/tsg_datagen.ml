(* tsg-datagen: generate taxonomy-superimposed graph datasets to files.

     tsg-datagen synth --graphs 500 --out-db d.db --out-taxonomy d.tax
     tsg-datagen pathways --pathway "Citrate cycle (TCA cycle)" ...
     tsg-datagen pte --molecules 416 ... *)

module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Prng = Tsg_util.Prng
module Synth_graph = Tsg_data.Synth_graph
module Pathways = Tsg_data.Pathways
module Pte = Tsg_data.Pte

open Cmdliner

let edge_label_table n = Label.of_names (List.init n (Printf.sprintf "e%d"))

let write ~out_db ~out_tax taxonomy edge_labels db =
  Taxonomy_io.save out_tax taxonomy;
  Serial.save_db out_db ~node_labels:(Taxonomy.labels taxonomy) ~edge_labels db;
  Printf.printf "wrote %d graphs to %s and %d concepts to %s\n" (Db.size db)
    out_db
    (Taxonomy.label_count taxonomy)
    out_tax;
  0

(* common options *)
let out_db_arg =
  Arg.(value & opt string "graphs.db" & info [ "out-db" ] ~docv:"FILE")

let out_tax_arg =
  Arg.(value & opt string "labels.tax" & info [ "out-taxonomy" ] ~docv:"FILE")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N")

(* synth subcommand *)
let synth out_db out_tax seed graphs max_edges density edge_labels concepts
    depth go directed =
  let rng = Prng.of_int seed in
  let taxonomy =
    if go then Tsg_taxonomy.Go_like.generate ~concepts rng
    else
      Tsg_taxonomy.Synth_taxonomy.generate rng
        { concepts; relationships = 2 * concepts; depth }
  in
  let params =
    {
      Synth_graph.graph_count = graphs;
      max_edges;
      edge_density = density;
      edge_label_count = edge_labels;
      node_label = Synth_graph.uniform_labels taxonomy;
    }
  in
  if directed then begin
    let digraphs = Synth_graph.generate_directed rng params in
    Taxonomy_io.save out_tax taxonomy;
    Serial.save_digraphs out_db
      ~node_labels:(Taxonomy.labels taxonomy)
      ~arc_labels:(edge_label_table edge_labels)
      digraphs;
    Printf.printf "wrote %d directed graphs to %s and %d concepts to %s\n"
      (List.length digraphs) out_db
      (Taxonomy.label_count taxonomy)
      out_tax;
    0
  end
  else
    write ~out_db ~out_tax taxonomy (edge_label_table edge_labels)
      (Synth_graph.generate rng params)

let synth_cmd =
  let doc = "synthetic database over a synthetic (or GO-like) taxonomy" in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const synth $ out_db_arg $ out_tax_arg $ seed_arg
      $ Arg.(value & opt int 1000 & info [ "graphs" ] ~docv:"N")
      $ Arg.(value & opt int 20 & info [ "max-edges" ] ~docv:"N")
      $ Arg.(value & opt float 0.27 & info [ "density" ] ~docv:"D")
      $ Arg.(value & opt int 10 & info [ "edge-labels" ] ~docv:"N")
      $ Arg.(value & opt int 800 & info [ "concepts" ] ~docv:"N")
      $ Arg.(value & opt int 10 & info [ "depth" ] ~docv:"N")
      $ Arg.(value & flag & info [ "go" ] ~doc:"GO-like taxonomy shape")
      $ Arg.(value & flag & info [ "directed" ]
             ~doc:"emit a directed database ('a' lines)"))

(* pathways subcommand *)
let pathways out_db out_tax seed organisms concepts pathway =
  let rng = Prng.of_int seed in
  let taxonomy = Tsg_taxonomy.Go_like.generate ~concepts rng in
  let spec =
    match
      List.find_opt (fun s -> s.Pathways.name = pathway) Pathways.table2
    with
    | Some s -> s
    | None ->
      prerr_endline ("unknown pathway: " ^ pathway);
      prerr_endline "known pathways:";
      List.iter (fun s -> prerr_endline ("  " ^ s.Pathways.name)) Pathways.table2;
      exit 2
  in
  let db = Pathways.generate rng ~taxonomy ~organisms spec in
  write ~out_db ~out_tax taxonomy (edge_label_table 1) db

let pathways_cmd =
  let doc = "simulated KEGG pathway versions across organisms (Table 2)" in
  Cmd.v (Cmd.info "pathways" ~doc)
    Term.(
      const pathways $ out_db_arg $ out_tax_arg $ seed_arg
      $ Arg.(value & opt int 30 & info [ "organisms" ] ~docv:"N")
      $ Arg.(value & opt int 800 & info [ "concepts" ] ~docv:"N")
      $ Arg.(value & opt string "Citrate cycle (TCA cycle)"
             & info [ "pathway" ] ~docv:"NAME"))

(* pte subcommand *)
let pte out_db out_tax seed molecules =
  let rng = Prng.of_int seed in
  let taxonomy = Tsg_taxonomy.Atom_taxonomy.create () in
  let db = Pte.generate rng ~taxonomy ~molecules () in
  write ~out_db ~out_tax taxonomy (Label.of_names Pte.bond_label_names) db

let pte_cmd =
  let doc = "simulated PTE carcinogenicity molecules (Figure 4.8)" in
  Cmd.v (Cmd.info "pte" ~doc)
    Term.(
      const pte $ out_db_arg $ out_tax_arg $ seed_arg
      $ Arg.(value & opt int Pte.paper_graph_count & info [ "molecules" ] ~docv:"N"))

let cmd =
  let doc = "generate taxonomy-superimposed graph datasets" in
  Cmd.group (Cmd.info "tsg-datagen" ~doc) [ synth_cmd; pathways_cmd; pte_cmd ]

let () = exit (Cmd.eval' cmd)
