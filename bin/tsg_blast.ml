(* tsg-blast: open-loop TCP load generator for tsg-serve.

     tsg-serve --patterns p.pat --taxonomy d.tax --listen 7411 &
     tsg-blast --port 7411 --duration 30 --clients 8
     tsg-blast --port 7411 --request "top-k 5 support" --rate 200

   Each client connection pipelines one request line plus a [health]
   barrier per round (data queries are batched server-side until a
   barrier flushes them), paced at --rate rounds per second per client
   (0 = as fast as the socket accepts). A separate reader thread drains
   replies, so senders never back off on a slow server — the load is
   open-loop, which is exactly what overload protection has to survive.

   Prints an aggregate summary (reply counts by class, barrier
   round-trip p50/p99) and exits non-zero when no reply ever arrived or
   a connection saw a malformed stream. *)

open Cmdliner

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

type tally = {
  lock : Mutex.t;
  mutable sent : int; (* request lines written, barriers excluded *)
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable rtt_s : float list; (* barrier round trips *)
  mutable broken : int; (* connections that died mid-stream *)
}

let tally () =
  {
    lock = Mutex.create ();
    sent = 0;
    ok = 0;
    errors = 0;
    overloaded = 0;
    rtt_s = [];
    broken = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* read one response block: an [ok <n>] header owns n result lines;
   everything else (errors, health, reload acks) is a single line *)
let read_block ic =
  let head = input_line ic in
  (if has_prefix "ok " head then
     match int_of_string_opt (String.sub head 3 (String.length head - 3)) with
     | Some n ->
       for _ = 1 to n do
         ignore (input_line ic)
       done
     | None -> ());
  head

let client ~host ~port ~request ~rate ~deadline t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (host, port)) with
  | exception Unix.Unix_error _ ->
    locked t (fun () -> t.broken <- t.broken + 1);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* send times of in-flight barriers, consumed by the reader in FIFO
       order (the protocol preserves request order per connection) *)
    let pending : float Queue.t = Queue.create () in
    let qlock = Mutex.create () in
    let reader () =
      try
        while true do
          let head = read_block ic in
          if has_prefix "ok health" head then begin
            let sent_at =
              Mutex.lock qlock;
              let v = Queue.take_opt pending in
              Mutex.unlock qlock;
              v
            in
            match sent_at with
            | Some s ->
              let rtt = Unix.gettimeofday () -. s in
              locked t (fun () -> t.rtt_s <- rtt :: t.rtt_s)
            | None -> ()
          end
          else if has_prefix "error OVERLOADED" head then
            locked t (fun () ->
                t.overloaded <- t.overloaded + 1;
                t.errors <- t.errors + 1)
          else if has_prefix "error" head then
            locked t (fun () -> t.errors <- t.errors + 1)
          else if has_prefix "ok" head then
            locked t (fun () -> t.ok <- t.ok + 1)
        done
      with End_of_file | Sys_error _ -> ()
    in
    let rt = Thread.create reader () in
    (try
       while Unix.gettimeofday () < deadline do
         output_string oc request;
         output_char oc '\n';
         output_string oc "health\n";
         Mutex.lock qlock;
         Queue.push (Unix.gettimeofday ()) pending;
         Mutex.unlock qlock;
         flush oc;
         locked t (fun () -> t.sent <- t.sent + 1);
         if rate > 0.0 then Thread.delay (1.0 /. rate)
       done;
       output_string oc "quit\n";
       flush oc;
       Unix.shutdown fd Unix.SHUTDOWN_SEND
     with Sys_error _ | Unix.Unix_error _ ->
       locked t (fun () -> t.broken <- t.broken + 1));
    Thread.join rt;
    try Unix.close fd with Unix.Unix_error _ -> ()

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let run host port request duration clients rate =
  match Tsg_query.Serve.parse_bind_addr host with
  | Error d ->
    prerr_endline (Tsg_util.Diagnostic.to_string d);
    2
  | Ok host ->
    let t = tally () in
    let deadline = Unix.gettimeofday () +. duration in
    let threads =
      List.init clients (fun _ ->
          Thread.create
            (fun () -> client ~host ~port ~request ~rate ~deadline t)
            ())
    in
    List.iter Thread.join threads;
    let rtt = Array.of_list t.rtt_s in
    Array.sort compare rtt;
    let ms s = 1000.0 *. s in
    Printf.printf "tsg-blast: %d clients x %.1fs against port %d\n" clients
      duration port;
    Printf.printf "  rounds sent:        %d\n" t.sent;
    Printf.printf "  ok replies:         %d\n" t.ok;
    Printf.printf "  error replies:      %d\n" t.errors;
    Printf.printf "  of which OVERLOADED %d\n" t.overloaded;
    Printf.printf "  broken connections: %d\n" t.broken;
    Printf.printf "  barrier rtt p50:    %.3f ms\n" (ms (percentile rtt 50.0));
    Printf.printf "  barrier rtt p99:    %.3f ms\n" (ms (percentile rtt 99.0));
    if t.ok + t.errors = 0 then begin
      prerr_endline "tsg-blast: no replies received";
      1
    end
    else 0

let host_arg =
  let doc = "server address (an IPv4 or IPv6 literal)" in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let port_arg =
  let doc = "server port" in
  Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let request_arg =
  let doc =
    "request line to blast (each round also sends a $(b,health) barrier \
     so replies flush immediately)"
  in
  Arg.(value & opt string "top-k 5 support" & info [ "request" ] ~docv:"LINE" ~doc)

let duration_arg =
  let doc = "seconds to keep blasting" in
  Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"S" ~doc)

let clients_arg =
  let doc = "concurrent client connections" in
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "rounds per second per client (0 = unpaced)" in
  Arg.(value & opt float 0.0 & info [ "rate" ] ~docv:"R" ~doc)

let cmd =
  let doc = "open-loop TCP load generator for tsg-serve" in
  Cmd.v
    (Cmd.info "tsg-blast" ~doc)
    Term.(
      const run $ host_arg $ port_arg $ request_arg $ duration_arg
      $ clients_arg $ rate_arg)

let () = exit (Cmd.eval' cmd)
