(* tsg-blast: open-loop TCP load generator for tsg-serve and tsg-router.

     tsg-serve --patterns p.pat --taxonomy d.tax --listen 7411 &
     tsg-blast --port 7411 --duration 30 --clients 8
     tsg-blast --port 7411 --request "top-k 5 support" --rate 200
     tsg-blast --port 7400 --router --min-success 0.99

   Each client connection pipelines one request line plus a [health]
   barrier per round (data queries are batched server-side until a
   barrier flushes them), paced at --rate rounds per second per client
   (0 = as fast as the socket accepts). A separate reader thread drains
   replies, so senders never back off on a slow server — the load is
   open-loop, which is exactly what overload protection has to survive.

   With --router each round sends a single tagged request
   ([id <n> <request>]) instead: tagged data queries are answered
   immediately (no barrier needed), replies are matched by tag, and the
   round-trip of every request is measured directly. Works against
   tsg-router and tsg-serve alike.

   Prints an aggregate summary (reply counts by class, a per-error-code
   breakdown, round-trip p50/p99) and exits non-zero when no reply ever
   arrived, a connection saw a malformed stream, or the success rate
   ok/(ok+errors) fell below --min-success. *)

open Cmdliner

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

type tally = {
  lock : Mutex.t;
  mutable sent : int; (* request lines written, barriers excluded *)
  mutable ok : int;
  mutable errors : int;
  mutable overloaded : int;
  codes : (string, int) Hashtbl.t; (* error code -> count *)
  mutable rtt_s : float list; (* per-round round trips *)
  mutable broken : int; (* connections that died mid-stream *)
}

let tally () =
  {
    lock = Mutex.create ();
    sent = 0;
    ok = 0;
    errors = 0;
    overloaded = 0;
    codes = Hashtbl.create 8;
    rtt_s = [];
    broken = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count_error t head =
  let code =
    match String.split_on_char ' ' head with
    | "error" :: code :: _ when code <> "" -> code
    | _ -> "(uncoded)"
  in
  locked t (fun () ->
      t.errors <- t.errors + 1;
      if code = "OVERLOADED" then t.overloaded <- t.overloaded + 1;
      Hashtbl.replace t.codes code
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.codes code)))

(* read one response block, returning its (possibly tagged) header line
   with the tag stripped: an [ok <n>] header owns n result lines;
   everything else (errors, health, reload acks) is a single line *)
let read_block ic =
  let head = input_line ic in
  let tag, head = Tsg_query.Protocol.split_tag head in
  (if has_prefix "ok " head then
     match int_of_string_opt (String.sub head 3 (String.length head - 3)) with
     | Some n ->
       for _ = 1 to n do
         ignore (input_line ic)
       done
     | None -> ());
  (tag, head)

let client ~host ~port ~request ~rate ~router ~deadline t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (host, port)) with
  | exception Unix.Unix_error _ ->
    locked t (fun () -> t.broken <- t.broken + 1);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (* send times of in-flight rounds, consumed by the reader in FIFO
       order (the protocol preserves request order per connection) *)
    let pending : float Queue.t = Queue.create () in
    let qlock = Mutex.create () in
    let pop_pending () =
      Mutex.lock qlock;
      let v = Queue.take_opt pending in
      Mutex.unlock qlock;
      v
    in
    let note_rtt sent_at =
      match sent_at with
      | Some s ->
        let rtt = Unix.gettimeofday () -. s in
        locked t (fun () -> t.rtt_s <- rtt :: t.rtt_s)
      | None -> ()
    in
    let reader () =
      try
        while true do
          let tag, head = read_block ic in
          (* in router mode every reply is tagged and ends one round *)
          if router && tag <> None then note_rtt (pop_pending ());
          if has_prefix "ok health" head then begin
            if not router then note_rtt (pop_pending ())
          end
          else if has_prefix "error" head then count_error t head
          else if has_prefix "ok" head then
            locked t (fun () -> t.ok <- t.ok + 1)
        done
      with End_of_file | Sys_error _ -> ()
    in
    let rt = Thread.create reader () in
    let seq = ref 0 in
    (try
       while Unix.gettimeofday () < deadline do
         if router then begin
           incr seq;
           output_string oc (Printf.sprintf "id %d %s\n" !seq request)
         end
         else begin
           output_string oc request;
           output_char oc '\n';
           output_string oc "health\n"
         end;
         Mutex.lock qlock;
         Queue.push (Unix.gettimeofday ()) pending;
         Mutex.unlock qlock;
         flush oc;
         locked t (fun () -> t.sent <- t.sent + 1);
         if rate > 0.0 then Thread.delay (1.0 /. rate)
       done;
       output_string oc "quit\n";
       flush oc;
       Unix.shutdown fd Unix.SHUTDOWN_SEND
     with Sys_error _ | Unix.Unix_error _ ->
       locked t (fun () -> t.broken <- t.broken + 1));
    Thread.join rt;
    try Unix.close fd with Unix.Unix_error _ -> ()

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let run host port request duration clients rate router min_success =
  match Tsg_query.Serve.parse_bind_addr host with
  | Error d ->
    prerr_endline (Tsg_util.Diagnostic.to_string d);
    2
  | Ok host ->
    let t = tally () in
    let deadline = Unix.gettimeofday () +. duration in
    let threads =
      List.init clients (fun _ ->
          Thread.create
            (fun () -> client ~host ~port ~request ~rate ~router ~deadline t)
            ())
    in
    List.iter Thread.join threads;
    let rtt = Array.of_list t.rtt_s in
    Array.sort compare rtt;
    let ms s = 1000.0 *. s in
    let replies = t.ok + t.errors in
    let success_rate =
      if replies = 0 then 0.0
      else float_of_int t.ok /. float_of_int replies
    in
    Printf.printf "tsg-blast: %d clients x %.1fs against port %d%s\n" clients
      duration port
      (if router then " (router mode)" else "");
    Printf.printf "  rounds sent:        %d\n" t.sent;
    Printf.printf "  ok replies:         %d\n" t.ok;
    Printf.printf "  error replies:      %d\n" t.errors;
    Printf.printf "  of which OVERLOADED %d\n" t.overloaded;
    List.iter
      (fun (code, n) -> Printf.printf "    error %-11s %d\n" code n)
      (List.sort compare
         (Hashtbl.fold (fun c n acc -> (c, n) :: acc) t.codes []));
    Printf.printf "  broken connections: %d\n" t.broken;
    Printf.printf "  success rate:       %.4f (min %.3f)\n" success_rate
      min_success;
    Printf.printf "  round rtt p50:      %.3f ms\n" (ms (percentile rtt 50.0));
    Printf.printf "  round rtt p99:      %.3f ms\n" (ms (percentile rtt 99.0));
    if replies = 0 then begin
      prerr_endline "tsg-blast: no replies received";
      1
    end
    else if success_rate < min_success then begin
      Printf.eprintf "tsg-blast: success rate %.4f below --min-success %.3f\n"
        success_rate min_success;
      1
    end
    else 0

let host_arg =
  let doc = "server address (an IPv4 or IPv6 literal)" in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let port_arg =
  let doc = "server port" in
  Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let request_arg =
  let doc =
    "request line to blast (each round also sends a $(b,health) barrier \
     so replies flush immediately; with $(b,--router) the request is \
     tagged instead and no barrier is sent)"
  in
  Arg.(value & opt string "top-k 5 support" & info [ "request" ] ~docv:"LINE" ~doc)

let duration_arg =
  let doc = "seconds to keep blasting" in
  Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"S" ~doc)

let clients_arg =
  let doc = "concurrent client connections" in
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "rounds per second per client (0 = unpaced)" in
  Arg.(value & opt float 0.0 & info [ "rate" ] ~docv:"R" ~doc)

let router_arg =
  let doc =
    "tagged per-request mode: send $(b,id <n> <request>) lines and match \
     replies by tag — the natural way to drive tsg-router (also works \
     against tsg-serve, whose tagged replies flush immediately)"
  in
  Arg.(value & flag & info [ "router" ] ~doc)

let min_success_arg =
  let doc =
    "exit non-zero when ok/(ok+errors) falls below this fraction (no \
     replies at all always fails)"
  in
  Arg.(value & opt float 0.5 & info [ "min-success" ] ~docv:"FRAC" ~doc)

let cmd =
  let doc = "open-loop TCP load generator for tsg-serve and tsg-router" in
  Cmd.v
    (Cmd.info "tsg-blast" ~doc)
    Term.(
      const run $ host_arg $ port_arg $ request_arg $ duration_arg
      $ clients_arg $ rate_arg $ router_arg $ min_success_arg)

let () = exit (Cmd.eval' cmd)
