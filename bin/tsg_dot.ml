(* tsg-dot: render mined patterns (and the taxonomy regions they cover) as
   Graphviz DOT files.

     tsg-mine --db d.db --taxonomy d.tax --out patterns.tsg
     tsg-dot  --patterns patterns.tsg --taxonomy d.tax --out-dir dot/ --top 10 *)

module Graph = Tsg_graph.Graph
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Pattern = Tsg_core.Pattern
module Pattern_io = Tsg_core.Pattern_io

open Cmdliner

let run patterns_path tax_path out_dir top =
  let taxonomy = Taxonomy_io.load tax_path in
  let node_labels = Taxonomy.labels taxonomy in
  let edge_labels = Label.create () in
  let patterns, db_size =
    Pattern_io.load ~node_labels ~edge_labels patterns_path
  in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let selected =
    patterns
    |> List.sort (fun (a : Pattern.t) b ->
           compare b.Pattern.support_count a.Pattern.support_count)
    |> List.filteri (fun i _ -> i < top)
  in
  let covered = ref [] in
  List.iteri
    (fun i (p : Pattern.t) ->
      let name =
        Printf.sprintf "pattern %d (support %d/%d)" i p.Pattern.support_count
          db_size
      in
      let path = Filename.concat out_dir (Printf.sprintf "pattern_%03d.dot" i) in
      Tsg_graph.Dot.save path ~name ~node_labels ~edge_labels p.Pattern.graph;
      covered :=
        Array.to_list (Graph.node_labels p.Pattern.graph) @ !covered)
    selected;
  let highlight = List.sort_uniq compare !covered in
  Tsg_taxonomy.Taxonomy_dot.save
    (Filename.concat out_dir "taxonomy.dot")
    ~name:"taxonomy (pattern labels highlighted)" ~highlight taxonomy;
  Printf.printf "wrote %d pattern files and taxonomy.dot to %s\n"
    (List.length selected) out_dir;
  0

let cmd =
  let doc = "render mined patterns and their taxonomy coverage as DOT" in
  Cmd.v (Cmd.info "tsg-dot" ~doc)
    Term.(
      const run
      $ Arg.(required & opt (some file) None & info [ "patterns" ] ~docv:"FILE")
      $ Arg.(required & opt (some file) None & info [ "taxonomy" ] ~docv:"FILE")
      $ Arg.(value & opt string "dot" & info [ "out-dir" ] ~docv:"DIR")
      $ Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"))

let () = exit (Cmd.eval' cmd)
