(* tsg-lint: multi-pass invariant checker for taxonomies, graph databases,
   and mined pattern sets.

     tsg-lint --taxonomy d.tax
     tsg-lint --taxonomy d.tax --db d.db --patterns p.pat
     tsg-lint --taxonomy d.tax --db d.db --patterns p.pat --deep --stats

   Findings print one per line as `file:line: severity [RULE] message`
   (tab-separated with --machine). Exit status: 0 clean, 1 warnings only,
   2 errors (or warnings under --strict). The rule-code catalog is in
   DESIGN.md. *)

module Diagnostic = Tsg_util.Diagnostic
module Lint = Tsg_check.Lint

open Cmdliner

let run tax_path dbs patterns wals suppress machine fmt stats deep strict quiet
    =
  if tax_path = None && dbs = [] && patterns = [] && wals = [] then begin
    prerr_endline
      "tsg-lint: nothing to check (give --taxonomy, --db, --patterns or \
       --wal)";
    exit 2
  end;
  let c = Diagnostic.collector ~suppress () in
  let result =
    Lint.run c ?taxonomy:tax_path ~dbs ~patterns ~wals ~stats ~deep ()
  in
  let fmt =
    match fmt with
    | Some f -> f
    | None -> if machine then Diagnostic.Machine else Diagnostic.Text
  in
  Diagnostic.print ~format:fmt stdout c;
  if not quiet then begin
    let checked =
      (match tax_path with Some _ -> [ "1 taxonomy" ] | None -> [])
      @ (match result.Lint.db_count with
        | 0 -> []
        | n -> [ Printf.sprintf "%d database%s" n (if n = 1 then "" else "s") ])
      @ (match result.Lint.pattern_count with
        | 0 -> []
        | n -> [ Printf.sprintf "%d patterns" n ])
      @
      match result.Lint.wal_count with
      | 0 -> []
      | n -> [ Printf.sprintf "%d WAL%s" n (if n = 1 then "" else "s") ]
    in
    Printf.eprintf "tsg-lint: %s: %s\n"
      (if checked = [] then "nothing parsed" else String.concat ", " checked)
      (Diagnostic.summary c)
  end;
  let code = Diagnostic.exit_code c in
  if strict && code = 1 then 2 else code

let tax_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "taxonomy" ] ~docv:"FILE" ~doc:"Label taxonomy (c/i line format).")

let db_arg =
  Arg.(
    value & opt_all file []
    & info [ "db" ] ~docv:"FILE"
        ~doc:"Graph database (gSpan-style text format; repeatable).")

let patterns_arg =
  Arg.(
    value & opt_all file []
    & info [ "patterns"; "p" ] ~docv:"FILE"
        ~doc:"Pattern set written by tsg-mine --save (repeatable).")

let wal_arg =
  Arg.(
    value & opt_all file []
    & info [ "wal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead delta log written by tsg-pipe (repeatable). Checks \
           framing, checksums and sequence order (WAL001-WAL003); a torn \
           final record is only a warning, since recovery repairs it.")

let suppress_arg =
  Arg.(
    value & opt_all string []
    & info [ "suppress" ] ~docv:"RULE"
        ~doc:"Drop findings with this rule code, e.g. TAX007 (repeatable).")

let machine_arg =
  Arg.(
    value & flag
    & info [ "machine" ]
        ~doc:
          "Tab-separated output: file, line, severity, rule, message \
           (alias for $(b,--format machine)).")

let format_arg =
  let fmt_conv =
    let parse s =
      match Diagnostic.format_of_string s with
      | Some f -> Ok f
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown format %S (expected text, machine or json)"
               s))
    in
    let print ppf f =
      Format.pp_print_string ppf
        (match f with
        | Diagnostic.Text -> "text"
        | Diagnostic.Machine -> "machine"
        | Diagnostic.Json -> "json")
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some fmt_conv) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (file:line: severity [RULE] message), \
           $(b,machine) (tab-separated), or $(b,json). Overrides \
           $(b,--machine).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Also emit info-level statistics findings (TAX008/DB008/PAT008).")

let deep_arg =
  Arg.(
    value & flag
    & info [ "deep" ]
        ~doc:
          "Recompute every pattern's support against the database(s) by \
           brute-force generalized isomorphism (X003; slow).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit 2 on warnings too, not only on errors.")

let quiet_arg =
  Arg.(
    value & flag & info [ "quiet"; "q" ] ~doc:"Skip the summary line on stderr.")

let cmd =
  let doc =
    "check taxonomies, graph databases and pattern sets for invariant \
     violations"
  in
  Cmd.v
    (Cmd.info "tsg-lint" ~doc)
    Term.(
      const run $ tax_arg $ db_arg $ patterns_arg $ wal_arg $ suppress_arg
      $ machine_arg
      $ format_arg $ stats_arg $ deep_arg $ strict_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
