(* tsg-pipe: crash-safe incremental mining from a changing corpus.

     tsg-pipe --wal corpus.wal --taxonomy d.tax --out patterns.pat < deltas
     tsg-pipe --wal corpus.wal --taxonomy d.tax --out patterns.pat \
       --state pipe.state --push 127.0.0.1:7411 --deltas day1.delta
     tsg-pipe --wal corpus.wal --taxonomy d.tax --export corpus.db

   Reads delta commands (below), appends each to the write-ahead log
   (fsynced before anything else sees it), folds it into the in-memory
   corpus, and on [commit] re-mines only the gSpan roots the deltas
   could have touched, publishes the artifact atomically, and (with
   --push) hot-reloads a running tsg-serve, verifying the acknowledged
   checksum. On startup the WAL is recovered (torn tail truncated,
   records replayed), so a crash at any point — including the injected
   faults under TSG_FAULTS — loses at most unacknowledged work.

   Delta command syntax, one command per line:

     add            start a graph; Serial text lines follow, "." ends it
     remove SEQ     remove the graph added by WAL record SEQ
     commit         re-mine, publish, push
     # ...          comment; blank lines are skipped

   An EOF with uncommitted deltas (or no commit at all) commits once
   more, so piping a bare delta stream with no trailing "commit" still
   publishes. After each commit one line is printed to stdout:

     committed seq <head> patterns <n> full <b> mined <r> cached <r> [checksum <hex>]

   and on startup:

     recovered seq <head> graphs <n> truncated <b> rejected <n> *)

module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Taxogram = Tsg_core.Taxogram
module Wal = Tsg_pipeline.Wal
module Corpus = Tsg_pipeline.Corpus
module Incremental = Tsg_pipeline.Incremental
module Publish = Tsg_pipeline.Publish
module Diagnostic = Tsg_util.Diagnostic
module Fault = Tsg_util.Fault
module Pool = Tsg_util.Pool

open Cmdliner

exception Push_failed of Diagnostic.t

let read_file_opt = function
  | None -> None
  | Some path when Sys.file_exists path -> (
    try Some (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error _ -> None)
  | Some _ -> None

type boot = {
  b_writer : Wal.writer;
  b_corpus : Corpus.t;
  b_engine : Incremental.t;
  b_recovery : Wal.recovery;
  b_rejected : int;  (* PIPE001 rejections seen during replay *)
}

(* recovery: WAL -> corpus (full replay, which also fixes the edge-label
   interning order), state snapshot -> cached groups, records past the
   snapshot watermark -> dirty roots *)
let boot ~wal_path ~state_path ~taxonomy ~config ~exec ~quiet =
  let note d = if not quiet then prerr_endline (Diagnostic.to_string d) in
  let recovery = Wal.recover wal_path in
  let snapshot = read_file_opt state_path in
  let watermark =
    match Option.bind snapshot Incremental.state_watermark with
    | Some w -> w
    | None -> -1L
  in
  let corpus = Corpus.create ~taxonomy () in
  let engine = Incremental.create ~corpus ~config ~exec () in
  let rejected = ref 0 in
  List.iter
    (fun (r : Wal.record) ->
      match Corpus.apply corpus r with
      | Ok g ->
        if Int64.compare r.seq watermark > 0 then
          Incremental.mark_dirty engine g
      | Error d ->
        incr rejected;
        note d)
    recovery.replayed;
  (match snapshot with
  | None -> ()
  | Some text -> (
    match Incremental.load_state engine text with
    | Ok () -> ()
    | Error d -> note d));
  {
    b_writer = Wal.open_writer wal_path;
    b_corpus = corpus;
    b_engine = engine;
    b_recovery = recovery;
    b_rejected = !rejected;
  }

type session = {
  wal_path : string;
  state_path : string option;
  taxonomy : Taxonomy.t;
  config : Taxogram.config;
  exec : Pool.Exec.t;
  quiet : bool;
  mutable writer : Wal.writer;
  mutable corpus : Corpus.t;
  mutable engine : Incremental.t;
  mutable rejected : int;  (* PIPE001 rejections, replay + live *)
}

let note session d =
  if not session.quiet then prerr_endline (Diagnostic.to_string d)

let reboot session =
  (try Wal.close session.writer with Unix.Unix_error _ | Sys_error _ -> ());
  let b =
    boot ~wal_path:session.wal_path ~state_path:session.state_path
      ~taxonomy:session.taxonomy ~config:session.config ~exec:session.exec
      ~quiet:session.quiet
  in
  session.writer <- b.b_writer;
  session.corpus <- b.b_corpus;
  session.engine <- b.b_engine;
  session.rejected <- session.rejected + b.b_rejected

(* run one step, treating an injected fault as the crash it simulates:
   recover (WAL replay, state reload) and try the step again, bounded *)
let with_recovery session ~max_restarts ~what f =
  let rec go attempt needs_reboot =
    if attempt > max_restarts then begin
      Printf.eprintf
        "tsg-pipe: %s still failing after %d recovery attempts, giving up\n"
        what max_restarts;
      exit 3
    end;
    match
      if needs_reboot then reboot session;
      f ()
    with
    | v -> v
    | exception Fault.Injected { site; hit } ->
      if not session.quiet then
        Printf.eprintf "tsg-pipe: injected fault at %s (hit %d), recovering\n%!"
          site hit;
      go (attempt + 1) true
    | exception Push_failed d ->
      note session d;
      go (attempt + 1) true
  in
  go 1 false

(* a delta is durable first, applied second; if the crash landed between
   the two, recovery has already applied it and the sequence number tells
   us not to append again *)
let apply_delta session ~max_restarts op =
  let intended = ref 0L in
  with_recovery session ~max_restarts ~what:"delta"
    (fun () ->
      if Int64.compare !intended 0L > 0
         && Int64.compare (Corpus.seq session.corpus) !intended >= 0
      then ()  (* the previous attempt made it into the log after all *)
      else begin
        let seq = Int64.add (Corpus.seq session.corpus) 1L in
        intended := seq;
        let r = { Wal.seq; op } in
        Wal.append session.writer r;
        match Corpus.apply session.corpus r with
        | Ok g -> Incremental.mark_dirty session.engine g
        | Error d ->
          session.rejected <- session.rejected + 1;
          note session d
      end)

let commit session ~max_restarts ~out ~push ~stamp =
  with_recovery session ~max_restarts ~what:"commit" (fun () ->
      let stats = Incremental.refresh session.engine in
      (match session.state_path with
      | Some path -> Incremental.save_state session.engine path
      | None -> ());
      let checksum =
        match out with
        | None -> None
        | Some path ->
          let previous = read_file_opt (Some path) in
          let artifact = Incremental.render session.engine in
          let artifact =
            if stamp then artifact else Tsg_query.Epoch.payload artifact
          in
          Publish.write path artifact;
          (match push with
          | None -> None
          | Some (host, port) -> (
            match Publish.push ~host ~port ~artifact:path ~previous with
            | Ok ck -> Some ck
            | Error d -> raise (Push_failed d)))
      in
      Printf.printf "committed seq %Ld patterns %d full %b mined %d cached %d%s\n%!"
        (Incremental.mined_seq session.engine)
        stats.Incremental.patterns stats.Incremental.full
        stats.Incremental.roots_mined stats.Incremental.roots_cached
        (match checksum with
        | None -> ""
        | Some ck -> Printf.sprintf " checksum %016Lx" ck))

(* ------------------------------------------------------------------ *)
(* delta command stream *)

let input_lines paths =
  match paths with
  | [] ->
    fun () -> In_channel.input_line stdin
  | paths ->
    let remaining = ref paths in
    let current = ref None in
    let rec next () =
      match !current with
      | Some ic -> (
        match In_channel.input_line ic with
        | Some _ as line -> line
        | None ->
          In_channel.close ic;
          current := None;
          next ())
      | None -> (
        match !remaining with
        | [] -> None
        | path :: tl ->
          remaining := tl;
          (match In_channel.open_bin path with
          | ic ->
            current := Some ic;
            next ()
          | exception Sys_error msg ->
            Printf.eprintf "tsg-pipe: %s\n" msg;
            exit 2))
    in
    next

let read_graph_payload next_line =
  let buf = Buffer.create 256 in
  let rec go () =
    match next_line () with
    | None ->
      Printf.eprintf "tsg-pipe: EOF inside an add payload (missing \".\")\n";
      exit 2
    | Some "." -> Buffer.contents buf
    | Some line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      go ()
  in
  go ()

let parse_push s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad --push %S (expected HOST:PORT)" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match Tsg_query.Serve.parse_bind_addr host with
    | Error d -> Error (Diagnostic.to_string d)
    | Ok addr -> (
      match int_of_string_opt port with
      | Some port when port > 0 && port < 65536 -> Ok (addr, port)
      | Some _ | None -> Error (Printf.sprintf "bad --push port %S" port)))

(* ------------------------------------------------------------------ *)

let run wal_path tax_path state_path out export deltas push_spec support
    max_edges domains max_restarts quiet no_epoch_stamp =
  (match Fault.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "tsg-pipe: bad TSG_FAULTS: %s\n" msg;
    exit 2);
  let push =
    match push_spec with
    | None -> None
    | Some s -> (
      match parse_push s with
      | Ok hp -> Some hp
      | Error msg ->
        Printf.eprintf "tsg-pipe: %s\n" msg;
        exit 2)
  in
  let taxonomy =
    try Taxonomy_io.load tax_path
    with Taxonomy_io.Parse_error d ->
      Printf.eprintf "tsg-pipe: %s\n" (Diagnostic.to_string d);
      exit 2
  in
  let config =
    { Taxogram.default_config with min_support = support; max_edges }
  in
  let exec = Pool.Exec.create ~domains () in
  let rec first_boot attempt =
    match boot ~wal_path ~state_path ~taxonomy ~config ~exec ~quiet with
    | b -> b
    | exception Fault.Injected { site; hit } ->
      if attempt >= max_restarts then begin
        Printf.eprintf
          "tsg-pipe: recovery still failing after %d attempts, giving up\n"
          max_restarts;
        exit 3
      end;
      if not quiet then
        Printf.eprintf "tsg-pipe: injected fault at %s (hit %d), recovering\n%!"
          site hit;
      first_boot (attempt + 1)
  in
  match first_boot 1 with
  | exception Wal.Error d ->
    Printf.eprintf "tsg-pipe: %s\n" (Diagnostic.to_string d);
    exit 1
  | b -> (
    let session =
      {
        wal_path;
        state_path;
        taxonomy;
        config;
        exec;
        quiet;
        writer = b.b_writer;
        corpus = b.b_corpus;
        engine = b.b_engine;
        rejected = b.b_rejected;
      }
    in
    Printf.printf "recovered seq %Ld graphs %d truncated %b rejected %d\n%!"
      (Corpus.seq session.corpus)
      (Corpus.size session.corpus)
      b.b_recovery.Wal.truncated session.rejected;
    match export with
    | Some path ->
      Tsg_util.Safe_io.write_atomic path (Corpus.to_serial session.corpus);
      Printf.printf "exported seq %Ld graphs %d to %s\n"
        (Corpus.seq session.corpus)
        (Corpus.size session.corpus)
        path;
      0
    | None ->
      let next_line = input_lines deltas in
      let commits = ref 0 in
      let applied = ref 0 in
      let rec loop () =
        match next_line () with
        | None -> ()
        | Some line ->
          let line = String.trim line in
          (if String.equal line "" || String.length line > 0 && line.[0] = '#'
           then ()
           else if String.equal line "add" then begin
             let text = read_graph_payload next_line in
             apply_delta session ~max_restarts (Wal.Add text);
             incr applied
           end
           else if String.equal line "commit" then begin
             commit session ~max_restarts ~out ~push ~stamp:(not no_epoch_stamp);
             incr commits
           end
           else
             match String.split_on_char ' ' line with
             | [ "remove"; target ] -> (
               match Int64.of_string_opt target with
               | Some target ->
                 apply_delta session ~max_restarts (Wal.Remove target);
                 incr applied
               | None ->
                 Printf.eprintf "tsg-pipe: bad remove target %S\n" target;
                 exit 2)
             | _ ->
               Printf.eprintf "tsg-pipe: unknown command %S\n" line;
               exit 2);
          loop ()
      in
      (match loop () with
      | () -> ()
      | exception Wal.Error d ->
        Printf.eprintf "tsg-pipe: %s\n" (Diagnostic.to_string d);
        exit 1);
      (* publish what EOF left behind: uncommitted deltas, or a run that
         never committed at all *)
      if
        !commits = 0
        || Incremental.dirty_count session.engine > 0
        || Int64.compare
             (Incremental.mined_seq session.engine)
             (Corpus.seq session.corpus)
           <> 0
      then begin
        (match commit session ~max_restarts ~out ~push
                 ~stamp:(not no_epoch_stamp)
         with
        | () -> ()
        | exception Wal.Error d ->
          Printf.eprintf "tsg-pipe: %s\n" (Diagnostic.to_string d);
          exit 1);
        incr commits
      end;
      Wal.close session.writer;
      if not quiet then
        Printf.printf "done: %d deltas applied, %d rejected, %d commits\n"
          !applied session.rejected !commits;
      0)

(* ------------------------------------------------------------------ *)

let wal_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "wal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead log. Created when missing; recovered (torn tail \
           truncated, records replayed) when present.")

let taxonomy_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "taxonomy" ] ~docv:"FILE" ~doc:"Taxonomy file.")

let state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"FILE"
        ~doc:
          "Pipeline state snapshot: cached per-root pattern groups keyed \
           by the WAL sequence they describe. Lets a restart re-mine only \
           what changed since the last commit; without it every restart \
           re-mines from scratch. An unusable snapshot degrades to a full \
           re-mine (PIPE003), never an error.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Pattern artifact to publish on each commit (atomic rename, \
           content-ordered so bytes are reproducible).")

let export_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"FILE"
        ~doc:
          "Recover the WAL, write the resulting corpus as a graph \
           database to $(docv), print its sequence number, and exit. The \
           sequence number is what $(b,tsg-mine --corpus-seq) needs for a \
           checkpointed mine of the exported corpus.")

let deltas_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "deltas" ] ~docv:"FILE"
        ~doc:
          "Delta command file(s), processed in order; stdin when none \
           are given.")

let push_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "push" ] ~docv:"HOST:PORT"
        ~doc:
          "After each publish, hot-reload the tsg-serve at $(docv) (the \
           $(b,reload) protocol verb) and verify the acknowledged \
           checksum; on mismatch the previous artifact is restored and \
           re-pushed (PIPE002).")

let support_arg =
  Arg.(
    value
    & opt float 0.2
    & info [ "support" ] ~docv:"THETA" ~doc:"Minimum support in [0, 1].")

let max_edges_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-edges" ] ~docv:"N" ~doc:"Cap pattern size at $(docv) edges.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N" ~doc:"Mining domains (see tsg-mine).")

let max_restarts_arg =
  Arg.(
    value
    & opt int 100
    & info [ "max-restarts" ] ~docv:"N"
        ~doc:
          "In-process crash-recovery budget: how many times a step \
           (delta append, commit) may fail — e.g. under TSG_FAULTS \
           injection — and be retried after recovery, before giving up \
           with exit code 3.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-record noise.")

let no_epoch_stamp_arg =
  Arg.(
    value & flag
    & info [ "no-epoch-stamp" ]
        ~doc:
          "Publish artifacts without the leading '# epoch' stamp line \
           (pre-epoch byte format). Clusters served from unstamped \
           artifacts still agree on versions by checksum, but lose the \
           WAL-watermark ordering half of the epoch.")

let cmd =
  let doc = "crash-safe incremental mining from a write-ahead delta log" in
  let term =
    Term.(
      const run $ wal_arg $ taxonomy_arg $ state_arg $ out_arg $ export_arg
      $ deltas_arg $ push_arg $ support_arg $ max_edges_arg $ domains_arg
      $ max_restarts_arg $ quiet_arg $ no_epoch_stamp_arg)
  in
  Cmd.v (Cmd.info "tsg-pipe" ~doc) term

let () = exit (Cmd.eval' cmd)
