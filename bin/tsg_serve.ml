(* tsg-serve: serve queries over mined pattern sets without re-mining.

     tsg-mine --db d.db --taxonomy d.tax --save patterns.pat
     tsg-serve --patterns patterns.pat --taxonomy d.tax < requests.txt
     tsg-serve --patterns a.pat --patterns b.pat --taxonomy d.tax \
       --db d.db --requests warmup.txt --requests run.txt
     tsg-serve --patterns patterns.pat --taxonomy d.tax --listen 7411

   Reads the newline protocol (see lib/query/protocol.mli) from request
   files, or stdin when none are given, and prints the metrics table on
   shutdown. With --listen it serves the same protocol over TCP instead:
   one thread per connection, load shedding past --max-conns, graceful
   drain on SIGTERM/SIGINT. *)

module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Store = Tsg_query.Store
module Engine = Tsg_query.Engine
module Epoch = Tsg_query.Epoch
module Serve = Tsg_query.Serve
module Admission = Tsg_query.Admission
module Metrics = Tsg_util.Metrics
module Diagnostic = Tsg_util.Diagnostic
module Lint = Tsg_check.Lint

open Cmdliner

let limits_of timeout max_bytes =
  {
    Serve.max_line_bytes = max_bytes;
    request_deadline_s = (if timeout <= 0.0 then None else Some timeout);
  }

(* --shard i/n: keep only the patterns the consistent hash assigns to
   shard i — the same Shard_map tsg-router uses, so router and replicas
   agree on the partition without talking to each other *)
let parse_shard s =
  match String.split_on_char '/' s with
  | [ i; n ] -> (
    match (int_of_string_opt i, int_of_string_opt n) with
    | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (i, n)
    | _ -> Error ())
  | _ -> Error ()

let apply_shard shard store =
  match shard with
  | None -> store
  | Some (i, n) ->
    let map = Tsg_cluster.Shard_map.create ~shards:n () in
    Store.slice store ~keep:(fun idx ->
        Tsg_cluster.Shard_map.shard_of_key map
          (Tsg_core.Pattern.key (Store.pattern store idx))
        = i)

let run patterns tax_path db_path requests domains cache quiet no_validate
    listen_port bind max_conns timeout max_bytes rate burst degrade
    reload_on_hup shard_spec require_epoch =
  let shard =
    match shard_spec with
    | None -> None
    | Some s -> (
      match parse_shard s with
      | Ok sh -> Some sh
      | Error () ->
        Printf.eprintf
          "tsg-serve: bad --shard %S (expected i/n with 0 <= i < n)\n" s;
        exit 2)
  in
  let bind_addr =
    match Serve.parse_bind_addr bind with
    | Ok addr -> addr
    | Error d ->
      Printf.eprintf "tsg-serve: %s\n" (Diagnostic.to_string d);
      exit 2
  in
  (* fail fast on malformed artifacts, with rule-coded diagnostics; the
     --no-validate escape hatch skips straight to loading *)
  if not no_validate then begin
    let c = Diagnostic.collector () in
    ignore (Lint.run c ~taxonomy:tax_path ~patterns ());
    if Diagnostic.has_errors c then begin
      Diagnostic.print stderr c;
      Printf.eprintf "tsg-serve: validation failed (%s); --no-validate to \
                      override\n"
        (Diagnostic.summary c);
      exit 2
    end
  end;
  let taxonomy =
    try Taxonomy_io.load tax_path
    with Taxonomy_io.Parse_error d ->
      Printf.eprintf "tsg-serve: %s\n" (Diagnostic.to_string d);
      exit 2
  in
  let edge_labels = Label.create () in
  let db =
    Option.map
      (fun path ->
        Serial.load_db ~node_labels:(Taxonomy.labels taxonomy) ~edge_labels
          path)
      db_path
  in
  let full_store =
    try Store.load ~taxonomy ~edge_labels ?db patterns with
    | Invalid_argument msg ->
      prerr_endline ("tsg-serve: " ^ msg);
      exit 2
    | Tsg_core.Pattern_io.Parse_error d ->
      Printf.eprintf "tsg-serve: %s\n" (Diagnostic.to_string d);
      exit 2
  in
  let store = apply_shard shard full_store in
  (match shard with
  | None -> ()
  | Some (i, n) ->
    Printf.eprintf "tsg-serve: shard %d/%d keeps %d of %d patterns\n%!" i n
      (Store.size store) (Store.size full_store));
  (* the artifact set's epoch: stamp-verified (a spliced or truncated
     payload is refused before it serves a single query), sequence from
     the pipeline's stamps, checksum over the full bytes *)
  let sources =
    List.map
      (fun p ->
        try (p, Tsg_util.Safe_io.read_file p)
        with Sys_error msg ->
          prerr_endline ("tsg-serve: " ^ msg);
          exit 2)
      patterns
  in
  List.iter
    (fun (path, content) ->
      match Epoch.verify_stamp content with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "tsg-serve: %s: error [EPO002] %s\n" path msg;
        exit 2)
    sources;
  if require_epoch then
    List.iter
      (fun (path, content) ->
        if not (Epoch.has_stamp content) then begin
          Printf.eprintf
            "tsg-serve: %s has no epoch stamp (--require-epoch); publish it \
             with tsg-pipe or stamp it explicitly\n"
            path;
          exit 2
        end)
      sources;
  let epoch = Epoch.of_sources sources in
  Printf.eprintf
    "tsg-serve: %d patterns over %d concepts (db size %d), cache %d, %d \
     domains, epoch %s\n\
     %!"
    (Store.size store)
    (Taxonomy.label_count taxonomy)
    (Store.db_size store) cache domains (Epoch.to_string epoch);
  let metrics = Metrics.create () in
  let engine = Engine.create ~cache_capacity:cache ~epoch ~metrics store in
  (* one executor for the process: --domains (or TSG_DOMAINS, read once in
     the cmdliner default) is pinned here and survives hot reloads *)
  let exec = Tsg_util.Pool.Exec.create ~domains () in
  let limits = limits_of timeout max_bytes in
  (* the admission gate: always on in --listen mode (the ladder obeys
     --degrade), opt-in for file/stdin serving, where a bulk request file
     is supposed to saturate the server rather than be shed *)
  let admission_config ~ladder ~codel =
    {
      Admission.default_config with
      client_rate = rate;
      client_burst = burst;
      queue_deadline_s = (if codel && timeout > 0.0 then timeout else 0.0);
      ladder;
    }
  in
  let admission =
    match (listen_port, degrade) with
    | Some _, `Off ->
      Some
        (Admission.create
           ~config:(admission_config ~ladder:false ~codel:true)
           ~metrics ())
    | Some _, (`Auto | `On) ->
      Some
        (Admission.create
           ~config:(admission_config ~ladder:true ~codel:true)
           ~metrics ())
    | None, `On ->
      Some
        (Admission.create
           ~config:(admission_config ~ladder:true ~codel:false)
           ~metrics ())
    | None, `Auto when rate > 0.0 ->
      Some
        (Admission.create
           ~config:(admission_config ~ladder:false ~codel:false)
           ~metrics ())
    | None, (`Auto | `Off) -> None
  in
  let checksum =
    try Some (Serve.checksum_files patterns) with Sys_error _ -> None
  in
  let outcome =
    match listen_port with
    | Some port ->
      (* graceful shutdown: first signal stops accepting and drains *)
      let stop = ref false in
      let handler = Sys.Signal_handle (fun _ -> stop := true) in
      (try Sys.set_signal Sys.sigterm handler
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
      let hup = ref false in
      if reload_on_hup then (
        try Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> hup := true))
        with Invalid_argument _ -> ());
      let reload_poll () =
        if !hup then begin
          hup := false;
          true
        end
        else false
      in
      (* rebuild everything label-id-dependent from scratch on reload: a
         fresh edge-label table, the database re-read against it (so
         pattern and db edge ids agree), the same metrics registry so
         counters survive the swap *)
      let reload_build sources =
        let edge_labels = Label.create () in
        let db =
          Option.map
            (fun path ->
              Serial.load_db
                ~node_labels:(Taxonomy.labels taxonomy)
                ~edge_labels path)
            db_path
        in
        let store =
          apply_shard shard (Store.of_strings ~taxonomy ~edge_labels ?db sources)
        in
        let engine = Engine.create ~cache_capacity:cache ~metrics store in
        (engine, Array.to_list (Label.names edge_labels))
      in
      let reload = { Serve.reload_paths = patterns; reload_build } in
      let lo =
        Serve.listen ~exec ~limits ~max_conns ~bind_addr ?admission ?checksum
          ~reload ~reload_poll
          ~on_listen:(fun p ->
            Printf.eprintf "tsg-serve: listening on %s:%d\n%!"
              (Unix.string_of_inet_addr bind_addr)
              p)
          ~should_stop:(fun () -> !stop)
          ~engine ~edge_labels ~port ()
      in
      Printf.eprintf "tsg-serve: %d connections (%d shed)\n%!"
        lo.Serve.connections lo.Serve.overloaded;
      lo.Serve.aggregate
    | None -> (
      let checksum () = checksum in
      let client = Option.map Admission.client admission in
      let serve ic =
        Serve.run ~exec ~limits ?admission ?client ~checksum ~engine
          ~edge_labels ic stdout
      in
      match requests with
      | [] -> serve stdin
      | paths ->
        List.fold_left
          (fun (acc : Serve.outcome) path ->
            if acc.Serve.quit then acc
            else
              let ic = open_in path in
              let o =
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> serve ic)
              in
              {
                Serve.requests = acc.Serve.requests + o.Serve.requests;
                errors = acc.Serve.errors + o.Serve.errors;
                quit = o.Serve.quit;
                disconnected = acc.Serve.disconnected || o.Serve.disconnected;
              })
          { Serve.requests = 0; errors = 0; quit = false; disconnected = false }
          paths)
  in
  if not quiet then begin
    print_endline "begin stats";
    Metrics.print metrics;
    print_endline "end stats"
  end;
  Printf.eprintf "tsg-serve: %d requests (%d errors), cache hit rate %.1f%%\n"
    outcome.Serve.requests outcome.Serve.errors
    (100.0 *. Engine.cache_hit_rate engine);
  if outcome.Serve.errors > 0 then 1 else 0

let patterns_arg =
  Arg.(
    non_empty & opt_all file []
    & info [ "patterns"; "p" ] ~docv:"FILE"
        ~doc:
          "Pattern set written by tsg-mine --save (repeatable; sets are \
           merged).")

let tax_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "taxonomy" ] ~docv:"FILE" ~doc:"Label taxonomy (c/i line format).")

let db_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "db" ] ~docv:"FILE"
        ~doc:
          "The database the patterns were mined from; enables top-k by \
           interest.")

let requests_arg =
  Arg.(
    value & opt_all file []
    & info [ "requests" ] ~docv:"FILE"
        ~doc:
          "Request file in the serve protocol (repeatable, served in order); \
           stdin when absent.")

let domains_arg =
  Arg.(
    value
    & opt int (Tsg_util.Pool.default_domains ())
    & info [ "domains" ] ~docv:"N"
        ~env:(Cmd.Env.info "TSG_DOMAINS")
        ~doc:"Size of the worker-domain pool. Defaults to $(b,TSG_DOMAINS) \
              when set, else the machine's recommended domain count capped \
              at 8 — the same spelling and default as tsg-mine and bench.")

let cache_arg =
  Arg.(
    value & opt int 1024
    & info [ "cache" ] ~docv:"N"
        ~doc:"LRU result-cache capacity (0 disables caching).")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Skip the metrics table on shutdown.")

let no_validate_arg =
  Arg.(
    value & flag
    & info [ "no-validate" ]
        ~doc:"Skip the tsg-lint validation pass over the input artifacts.")

let listen_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Serve over TCP on 127.0.0.1:$(docv) instead of request files (0 \
           picks a free port). One thread per connection; SIGTERM/SIGINT \
           drain gracefully.")

let bind_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "bind" ] ~docv:"ADDR"
        ~doc:
          "Address to bind in --listen mode (an IPv4 or IPv6 literal; \
           0.0.0.0 faces all interfaces). Default 127.0.0.1.")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Concurrent-connection cap in --listen mode; extra clients are \
           shed with a single OVERLOADED line.")

let timeout_arg =
  Arg.(
    value & opt float 0.0
    & info [ "request-timeout" ] ~docv:"SECS"
        ~doc:
          "Per-request deadline; a request that misses it answers 'error \
           deadline exceeded'. 0 (the default) disables deadlines.")

let max_bytes_arg =
  Arg.(
    value
    & opt int Tsg_query.Protocol.default_max_line_bytes
    & info [ "max-request-bytes" ] ~docv:"N"
        ~doc:
          "Longest accepted request line; longer lines answer with an error \
           without buffering more than $(docv) bytes.")

let rate_arg =
  Arg.(
    value & opt float 0.0
    & info [ "rate" ] ~docv:"R"
        ~doc:
          "Per-client admission rate in requests/second (token bucket; \
           bursts up to --burst pass untouched). 0 (the default) disables \
           per-client rate limiting. Shed requests answer 'error OVERLOADED \
           retry-after <s>'.")

let burst_arg =
  Arg.(
    value & opt float 16.0
    & info [ "burst" ] ~docv:"N"
        ~doc:"Per-client token-bucket capacity used with --rate.")

let degrade_arg =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ]) `Auto
    & info [ "degrade" ] ~docv:"MODE"
        ~doc:
          "Adaptive degradation ladder: $(b,auto) (default) enables it in \
           --listen mode only, $(b,on) forces it everywhere, $(b,off) \
           disables it (admission still bounds the queue in --listen \
           mode). Level 1 sheds large top-k and serves contains without \
           the result cache; level 2 sheds everything but contains.")

let shard_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "shard" ] ~docv:"I/N"
        ~doc:
          "Serve shard $(b,i) of an $(b,n)-way consistent-hash partition of \
           the pattern set (e.g. --shard 0/2). Result lines keep the ids of \
           the unsliced store and interest scores are computed before \
           slicing, so a tsg-router scatter-gather over all $(b,n) shards \
           answers byte-identically to one unsharded server.")

let require_epoch_arg =
  Arg.(
    value & flag
    & info [ "require-epoch" ]
        ~doc:
          "Refuse pattern artifacts that carry no '# epoch' stamp. Stamped \
           or not, artifacts whose stamp fingerprint does not match their \
           payload are always refused (EPO002).")

let reload_on_hup_arg =
  Arg.(
    value & flag
    & info [ "reload-on-hup" ]
        ~doc:
          "In --listen mode, reload the pattern artifacts on SIGHUP \
           (checksum-verified, atomic engine swap; in-flight requests \
           finish on the old engine). The 'reload' protocol verb is \
           always available in --listen mode regardless of this flag.")

let cmd =
  let doc = "serve contains/by-label/top-k queries over mined pattern sets" in
  Cmd.v
    (Cmd.info "tsg-serve" ~doc)
    Term.(
      const run $ patterns_arg $ tax_arg $ db_arg $ requests_arg $ domains_arg
      $ cache_arg $ quiet_arg $ no_validate_arg $ listen_arg $ bind_arg
      $ max_conns_arg $ timeout_arg $ max_bytes_arg $ rate_arg $ burst_arg
      $ degrade_arg $ reload_on_hup_arg $ shard_arg $ require_epoch_arg)

let () =
  (match Tsg_util.Fault.configure_from_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("tsg-serve: " ^ msg);
    exit 2);
  exit (Cmd.eval' cmd)
