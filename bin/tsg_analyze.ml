(* tsg-analyze: domain-safety & determinism static analyzer over the
   project's own typed trees.

     dune build @check
     tsg-analyze                      # lib/ and bin/ under _build/default
     tsg-analyze --format json lib
     tsg-analyze --allowlist analyze.allow --strict

   Reads the .cmt files dune's @check alias leaves next to every
   compiled unit and checks the DOM/DET/IO1/REG rule family (see
   DESIGN.md for the catalog, `--list-rules` for a quick reference).
   Findings print like tsg-lint: `file:line: severity [RULE] message`.
   Exit status: 0 clean, 1 warnings only, 2 errors (or warnings under
   --strict). *)

module Diagnostic = Tsg_util.Diagnostic
module Registry = Diagnostic.Registry
module Cmt_load = Tsg_analysis.Cmt_load
module Analyze = Tsg_analysis.Analyze

open Cmdliner

let list_rules () =
  print_endline "Rules (tsg-analyze):";
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "  %-8s %-9s %s\n" e.code
        (Diagnostic.severity_to_string e.default_severity)
        e.summary)
    Registry.rules;
  print_endline "";
  print_endline "Protocol error codes (tsg-serve/tsg-router wire protocol):";
  List.iter
    (fun (code, summary) -> Printf.printf "  %-12s %s\n" code summary)
    Registry.protocol_errors;
  0

let run paths root allowlist_file rules show_rules fmt suppress strict quiet =
  if show_rules then list_rules ()
  else begin
    let allowlist =
      match allowlist_file with
      | None -> Ok []
      | Some f -> Analyze.parse_allowlist f
    in
    match allowlist with
    | Error msg ->
      Printf.eprintf "tsg-analyze: bad allowlist: %s\n" msg;
      2
    | Ok allowlist ->
      let paths = if paths = [] then [ "lib"; "bin" ] else paths in
      let roots =
        List.map
          (fun p -> if Filename.is_relative p then Filename.concat root p else p)
          paths
      in
      let cmts = Cmt_load.discover roots in
      if cmts = [] then begin
        Printf.eprintf
          "tsg-analyze: no .cmt files under %s (build them with `dune build \
           @check`)\n"
          (String.concat ", " roots);
        2
      end
      else begin
        let c = Diagnostic.collector ~suppress () in
        let units = Cmt_load.load_all c cmts in
        let rules = match rules with [] -> None | l -> Some l in
        let summary =
          Analyze.run ?rules ~allowlist ?allowlist_file c units
        in
        Diagnostic.print ~format:fmt stdout c;
        if not quiet then begin
          let extra =
            (match summary.Analyze.suppressed with
            | 0 -> []
            | n -> [ Printf.sprintf "%d suppressed in source" n ])
            @
            match summary.Analyze.allowlisted with
            | 0 -> []
            | n -> [ Printf.sprintf "%d allowlisted" n ]
          in
          Printf.eprintf "tsg-analyze: %d units: %s%s\n" summary.Analyze.units
            (Diagnostic.summary c)
            (match extra with
            | [] -> ""
            | l -> Printf.sprintf " (%s)" (String.concat ", " l))
        end;
        let code = Diagnostic.exit_code c in
        if strict && code = 1 then 2 else code
      end
  end

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Directories (or .cmt files) to analyze, relative to $(b,--root) \
           when relative. Defaults to $(b,lib bin).")

let root_arg =
  Arg.(
    value
    & opt string "_build/default"
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Build directory that holds the compiled .cmt trees.")

let allowlist_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "allowlist" ] ~docv:"FILE"
        ~doc:
          "Grandfathered findings: one $(i,RULE FILE IDENT) triple per \
           line, # comments. Stale entries are reported (ANA003).")

let rules_arg =
  Arg.(
    value & opt_all string []
    & info [ "rules" ] ~docv:"RULE"
        ~doc:"Check only this rule code (repeatable); default: all rules.")

let list_rules_arg =
  Arg.(
    value & flag
    & info [ "list-rules" ]
        ~doc:"Print the rule and protocol-code catalog and exit.")

let format_arg =
  let fmt_conv =
    let parse s =
      match Diagnostic.format_of_string s with
      | Some f -> Ok f
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown format %S (expected text, machine or json)"
               s))
    in
    let print ppf f =
      Format.pp_print_string ppf
        (match f with
        | Diagnostic.Text -> "text"
        | Diagnostic.Machine -> "machine"
        | Diagnostic.Json -> "json")
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt fmt_conv Diagnostic.Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text) (file:line: severity [RULE] message), \
           $(b,machine) (tab-separated), or $(b,json).")

let suppress_arg =
  Arg.(
    value & opt_all string []
    & info [ "suppress" ] ~docv:"RULE"
        ~doc:"Drop findings with this rule code, e.g. DET002 (repeatable).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit 2 on warnings too, not only on errors.")

let quiet_arg =
  Arg.(
    value & flag & info [ "quiet"; "q" ] ~doc:"Skip the summary line on stderr.")

let cmd =
  let doc =
    "check the project's typed trees for domain-safety and determinism \
     violations"
  in
  Cmd.v
    (Cmd.info "tsg-analyze" ~doc)
    Term.(
      const run $ paths_arg $ root_arg $ allowlist_arg $ rules_arg
      $ list_rules_arg $ format_arg $ suppress_arg $ strict_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
