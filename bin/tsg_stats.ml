(* tsg-stats: report Table 1-style statistics for a dataset on disk.

     tsg-stats --db graphs.db --taxonomy labels.tax *)

module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io

open Cmdliner

let run db_path tax_path =
  let taxonomy = Taxonomy_io.load tax_path in
  let edge_labels = Label.create () in
  let db =
    Serial.load_db ~node_labels:(Taxonomy.labels taxonomy) ~edge_labels db_path
  in
  let s = Db.statistics db in
  Printf.printf "database %s\n" db_path;
  Printf.printf "  graphs:               %d\n" s.Db.graphs;
  Printf.printf "  avg graph size:       %.2f nodes, %.2f edges\n"
    s.Db.avg_nodes s.Db.avg_edges;
  Printf.printf "  max graph size:       %d nodes, %d edges\n"
    (Db.max_graph_nodes db) (Db.max_graph_edges db);
  Printf.printf "  distinct node labels: %d\n" s.Db.distinct_labels;
  Printf.printf "  distinct edge labels: %d\n"
    (List.length (Db.distinct_edge_labels db));
  Printf.printf "  avg edge density:     %.3f\n" s.Db.avg_density;
  Printf.printf "taxonomy %s\n" tax_path;
  Printf.printf "  concepts:             %d\n" (Taxonomy.label_count taxonomy);
  Printf.printf "  is-a relationships:   %d\n"
    (Taxonomy.relationship_count taxonomy);
  Printf.printf "  levels:               %d\n" (Taxonomy.level_count taxonomy);
  Printf.printf "  roots / leaves:       %d / %d\n"
    (List.length (Taxonomy.roots taxonomy))
    (List.length (Taxonomy.leaves taxonomy));
  Printf.printf "  avg strict ancestors: %.2f\n"
    (Taxonomy.avg_strict_ancestors taxonomy);
  0

let db_arg =
  Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE")

let tax_arg =
  Arg.(required & opt (some file) None & info [ "taxonomy" ] ~docv:"FILE")

let cmd =
  let doc = "dataset and taxonomy statistics (Table 1 columns)" in
  Cmd.v (Cmd.info "tsg-stats" ~doc) Term.(const run $ db_arg $ tax_arg)

let () = exit (Cmd.eval' cmd)
