module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Edge_labeled = Tsg_core.Edge_labeled

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* node labels: protein -> {kinase, receptor}
   edge labels: interaction -> {binds, inhibits} *)
let envs () =
  let nodes =
    Taxonomy.build
      ~names:[ "protein"; "kinase"; "receptor" ]
      ~is_a:[ ("kinase", "protein"); ("receptor", "protein") ]
  in
  let edges =
    Taxonomy.build
      ~names:[ "interaction"; "binds"; "inhibits" ]
      ~is_a:[ ("binds", "interaction"); ("inhibits", "interaction") ]
  in
  (nodes, edges, Edge_labeled.prepare ~node_taxonomy:nodes ~edge_taxonomy:edges)

let test_prepare () =
  let nodes, edges, env = envs () in
  let combined = Edge_labeled.taxonomy env in
  check int "six concepts" 6 (Taxonomy.label_count combined);
  let k = Taxonomy.id_of_name nodes "kinase" in
  let b = Taxonomy.id_of_name edges "binds" in
  check Alcotest.string "node concept maps by name" "kinase"
    (Taxonomy.name combined (Edge_labeled.node_concept env k));
  check Alcotest.string "edge concept maps by name" "binds"
    (Taxonomy.name combined (Edge_labeled.edge_concept env b));
  check (Alcotest.option int) "back maps node" (Some k)
    (Edge_labeled.node_concept_back env (Edge_labeled.node_concept env k));
  check (Alcotest.option int) "back maps edge" (Some b)
    (Edge_labeled.edge_concept_back env (Edge_labeled.edge_concept env b));
  check (Alcotest.option int) "node is not an edge concept" None
    (Edge_labeled.edge_concept_back env (Edge_labeled.node_concept env k));
  (* hierarchy preserved on both sides *)
  check bool "binds under interaction" true
    (Taxonomy.is_ancestor combined
       ~anc:(Taxonomy.id_of_name combined "interaction")
       (Taxonomy.id_of_name combined "binds"));
  check bool "kinase under protein" true
    (Taxonomy.is_ancestor combined
       ~anc:(Taxonomy.id_of_name combined "protein")
       (Taxonomy.id_of_name combined "kinase"))

let test_prepare_name_clash () =
  let t = Taxonomy.build ~names:[ "x" ] ~is_a:[] in
  Alcotest.check_raises "clash"
    (Invalid_argument "Edge_labeled.prepare: name used by both taxonomies: x")
    (fun () -> ignore (Edge_labeled.prepare ~node_taxonomy:t ~edge_taxonomy:t))

let test_encode_decode_roundtrip () =
  let nodes, edges, env = envs () in
  let nid n = Taxonomy.id_of_name nodes n in
  let eid n = Taxonomy.id_of_name edges n in
  let cases =
    [
      Graph.build ~labels:[| nid "kinase"; nid "receptor" |]
        ~edges:[ (0, 1, eid "binds") ];
      Graph.build
        ~labels:[| nid "kinase"; nid "protein"; nid "receptor" |]
        ~edges:[ (0, 1, eid "binds"); (1, 2, eid "inhibits") ];
    ]
  in
  List.iter
    (fun g ->
      let encoded = Edge_labeled.encode env g in
      check int "subdivision adds edge nodes"
        (Graph.node_count g + Graph.edge_count g)
        (Graph.node_count encoded);
      match Edge_labeled.decode env encoded with
      | Some g' -> check bool "roundtrip" true (Graph.equal g g')
      | None -> Alcotest.fail "decode failed")
    cases

let test_decode_rejects_artifacts () =
  let _, edges, env = envs () in
  let binds = Edge_labeled.edge_concept env (Taxonomy.id_of_name edges "binds") in
  let combined = Edge_labeled.taxonomy env in
  let kinase = Taxonomy.id_of_name combined "kinase" in
  (* dangling edge node *)
  let dangling = Graph.build ~labels:[| kinase; binds |] ~edges:[ (0, 1, 0) ] in
  check bool "dangling rejected" true (Edge_labeled.decode env dangling = None);
  (* direct node-node edge *)
  let direct = Graph.build ~labels:[| kinase; kinase |] ~edges:[ (0, 1, 0) ] in
  check bool "direct edge rejected" true (Edge_labeled.decode env direct = None)

(* the motivating case: databases that share no exact edge label still share
   a generalized interaction *)
let test_edge_generalization_mining () =
  let nodes, edges, env = envs () in
  let nid n = Taxonomy.id_of_name nodes n in
  let eid n = Taxonomy.id_of_name edges n in
  let g1 =
    Graph.build ~labels:[| nid "kinase"; nid "receptor" |]
      ~edges:[ (0, 1, eid "binds") ]
  in
  let g2 =
    Graph.build ~labels:[| nid "kinase"; nid "receptor" |]
      ~edges:[ (0, 1, eid "inhibits") ]
  in
  (* plain taxogram with exact edge labels finds nothing at support 1.0 *)
  let plain =
    Tsg_core.Taxogram.run (Tsg_core.Taxogram.Spec.collect ~config:{ Tsg_core.Taxogram.default_config with min_support = 1.0 } ())
      nodes
      (Db.of_list [ g1; g2 ])
  in
  check int "exact edge labels: no shared pattern" 0
    plain.Tsg_core.Taxogram.pattern_count;
  (* edge-taxonomy mining finds kinase -interaction- receptor *)
  let patterns = Edge_labeled.mine ~min_support:1.0 env [ g1; g2 ] in
  check int "one generalized pattern" 1 (List.length patterns);
  let p = List.hd patterns in
  check int "support 2" 2 p.Edge_labeled.support_count;
  let g = p.Edge_labeled.graph in
  let labels = Graph.node_labels g in
  Array.sort compare labels;
  check (Alcotest.array int) "kinase, receptor"
    [| nid "kinase"; nid "receptor" |]
    labels;
  check
    (Alcotest.option int)
    "edge generalized to interaction"
    (Some (Taxonomy.id_of_name edges "interaction"))
    (Graph.edge_label g 0 1)

let test_specific_edge_label_wins () =
  let nodes, edges, env = envs () in
  let nid n = Taxonomy.id_of_name nodes n in
  let eid n = Taxonomy.id_of_name edges n in
  let mk e =
    Graph.build ~labels:[| nid "kinase"; nid "receptor" |] ~edges:[ (0, 1, e) ]
  in
  (* both graphs use binds: the specific label must win, interaction is
     over-generalized *)
  let patterns =
    Edge_labeled.mine ~min_support:1.0 env [ mk (eid "binds"); mk (eid "binds") ]
  in
  check int "one pattern" 1 (List.length patterns);
  check (Alcotest.option int) "binds survives"
    (Some (eid "binds"))
    (Graph.edge_label (List.hd patterns).Edge_labeled.graph 0 1)

let test_supports_verified () =
  let nodes, edges, env = envs () in
  let nid n = Taxonomy.id_of_name nodes n in
  let eid n = Taxonomy.id_of_name edges n in
  let rng = Tsg_util.Prng.of_int 5 in
  let random_graph () =
    let n = 2 + Tsg_util.Prng.int rng 3 in
    let node_pool = [| nid "protein"; nid "kinase"; nid "receptor" |] in
    let edge_pool = [| eid "interaction"; eid "binds"; eid "inhibits" |] in
    let labels = Array.init n (fun _ -> Tsg_util.Prng.choose rng node_pool) in
    let es = ref [] in
    for v = 1 to n - 1 do
      es := (v, Tsg_util.Prng.int rng v, Tsg_util.Prng.choose rng edge_pool) :: !es
    done;
    Graph.build ~labels ~edges:!es
  in
  let graphs = List.init 6 (fun _ -> random_graph ()) in
  let patterns = Edge_labeled.mine ~min_support:0.5 ~max_edges:2 env graphs in
  check bool "found patterns" true (patterns <> []);
  let encoded_db = Db.of_list (List.map (Edge_labeled.encode env) graphs) in
  List.iter
    (fun (p : Edge_labeled.pattern) ->
      let recount =
        Tsg_iso.Gen_iso.support_set (Edge_labeled.taxonomy env)
          ~pattern:(Edge_labeled.encode env p.Edge_labeled.graph)
          encoded_db
      in
      check bool "support verified" true
        (Bitset.equal recount p.Edge_labeled.support_set))
    patterns

let () =
  Alcotest.run "edge_labeled"
    [
      ( "setup",
        [
          Alcotest.test_case "prepare" `Quick test_prepare;
          Alcotest.test_case "name clash" `Quick test_prepare_name_clash;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "artifacts rejected" `Quick
            test_decode_rejects_artifacts;
        ] );
      ( "mining",
        [
          Alcotest.test_case "edge generalization" `Quick
            test_edge_generalization_mining;
          Alcotest.test_case "specific edge wins" `Quick
            test_specific_edge_label_wins;
          Alcotest.test_case "supports verified" `Quick test_supports_verified;
        ] );
    ]
