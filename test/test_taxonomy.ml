module Taxonomy = Tsg_taxonomy.Taxonomy
module Synth = Tsg_taxonomy.Synth_taxonomy
module Go_like = Tsg_taxonomy.Go_like
module Atoms = Tsg_taxonomy.Atom_taxonomy
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(*        a
         / \
        b   c
       / \   \
      d   e   f
           \ /
            g      (g has two parents: e and f — DAG) *)
let diamond () =
  Taxonomy.build
    ~names:[ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]
    ~is_a:
      [
        ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c");
        ("g", "e"); ("g", "f");
      ]

let id t n = Taxonomy.id_of_name t n

let test_structure () =
  let t = diamond () in
  check int "labels" 7 (Taxonomy.label_count t);
  check int "relationships" 7 (Taxonomy.relationship_count t);
  check (Alcotest.list int) "roots" [ id t "a" ] (Taxonomy.roots t);
  check (Alcotest.list int) "parents of g"
    [ id t "e"; id t "f" ]
    (Taxonomy.parents t (id t "g"));
  check (Alcotest.list int) "children of b"
    [ id t "d"; id t "e" ]
    (Taxonomy.children t (id t "b"));
  check bool "a root" true (Taxonomy.is_root t (id t "a"));
  check bool "g leaf" true (Taxonomy.is_leaf t (id t "g"));
  check bool "b not leaf" false (Taxonomy.is_leaf t (id t "b"));
  check (Alcotest.list int) "leaves"
    [ id t "d"; id t "g" ]
    (Taxonomy.leaves t)

let test_ancestorship () =
  let t = diamond () in
  check bool "reflexive" true (Taxonomy.is_ancestor t ~anc:(id t "g") (id t "g"));
  check bool "parent" true (Taxonomy.is_ancestor t ~anc:(id t "e") (id t "g"));
  check bool "transitive" true (Taxonomy.is_ancestor t ~anc:(id t "a") (id t "g"));
  check bool "both diamond arms" true
    (Taxonomy.is_ancestor t ~anc:(id t "b") (id t "g")
    && Taxonomy.is_ancestor t ~anc:(id t "c") (id t "g"));
  check bool "not downward" false (Taxonomy.is_ancestor t ~anc:(id t "g") (id t "e"));
  check bool "not sibling" false (Taxonomy.is_ancestor t ~anc:(id t "d") (id t "e"));
  check (Alcotest.list int) "ancestors of g (all)"
    [ id t "a"; id t "b"; id t "c"; id t "e"; id t "f"; id t "g" ]
    (Taxonomy.ancestors t (id t "g"));
  check (Alcotest.list int) "strict ancestors of d"
    [ id t "a"; id t "b" ]
    (Taxonomy.strict_ancestors t (id t "d"));
  check (Alcotest.list int) "descendants of c"
    [ id t "c"; id t "f"; id t "g" ]
    (Taxonomy.descendants t (id t "c"));
  check (Alcotest.list int) "strict descendants of e"
    [ id t "g" ]
    (Taxonomy.strict_descendants t (id t "e"))

let test_depth () =
  let t = diamond () in
  check int "root depth" 0 (Taxonomy.depth t (id t "a"));
  check int "b depth" 1 (Taxonomy.depth t (id t "b"));
  check int "g depth (longest path)" 3 (Taxonomy.depth t (id t "g"));
  check int "max depth" 3 (Taxonomy.max_depth t);
  check int "levels" 4 (Taxonomy.level_count t)

let test_most_general () =
  let t = diamond () in
  List.iter
    (fun n -> check int ("mg of " ^ n) (id t "a") (Taxonomy.most_general t (id t n)))
    [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]

let test_topological_order () =
  let t = diamond () in
  let order = Taxonomy.topological_order t in
  let pos = Array.make (Taxonomy.label_count t) 0 in
  Array.iteri (fun i l -> pos.(l) <- i) order;
  List.iter
    (fun l ->
      List.iter
        (fun p ->
          check bool "ancestor precedes" true (pos.(p) < pos.(l)))
        (Taxonomy.parents t l))
    (Array.to_list order)

let test_avg_strict_ancestors () =
  (* chain a <- b <- c : strict ancestor counts 0,1,2 -> avg 1.0 *)
  let t = Taxonomy.build ~names:[ "a"; "b"; "c" ] ~is_a:[ ("b", "a"); ("c", "b") ] in
  check (Alcotest.float 1e-9) "chain" 1.0 (Taxonomy.avg_strict_ancestors t)

let test_cycle_rejected () =
  Alcotest.check_raises "cycle"
    (Invalid_argument "Taxonomy.build: is-a graph has a cycle") (fun () ->
      ignore
        (Taxonomy.build ~names:[ "a"; "b" ] ~is_a:[ ("a", "b"); ("b", "a") ]))

let test_bad_edges_rejected () =
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Taxonomy.build: unknown label z") (fun () ->
      ignore (Taxonomy.build ~names:[ "a" ] ~is_a:[ ("z", "a") ]));
  Alcotest.check_raises "self edge"
    (Invalid_argument "Taxonomy.build_ids: self is-a edge") (fun () ->
      ignore (Taxonomy.build ~names:[ "a" ] ~is_a:[ ("a", "a") ]));
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Taxonomy.build_ids: duplicate is-a edge") (fun () ->
      ignore
        (Taxonomy.build ~names:[ "a"; "b" ] ~is_a:[ ("b", "a"); ("b", "a") ]))

let test_multi_root_artificial () =
  (* two roots r1 r2, shared child x -> artificial root above both *)
  let t =
    Taxonomy.build ~names:[ "r1"; "r2"; "x" ]
      ~is_a:[ ("x", "r1"); ("x", "r2") ]
  in
  check int "one extra label" 4 (Taxonomy.label_count t);
  let roots = Taxonomy.roots t in
  check int "single root" 1 (List.length roots);
  let root = List.hd roots in
  check bool "artificial" true (Taxonomy.is_artificial t root);
  check bool "named" true (String.length (Taxonomy.name t root) > 0);
  check int "mg x is artificial root" root (Taxonomy.most_general t (id t "x"));
  check int "mg r1 too" root (Taxonomy.most_general t (id t "r1"))

let test_multi_root_independent () =
  (* two roots with disjoint subtrees -> no artificial root *)
  let t =
    Taxonomy.build ~names:[ "r1"; "r2"; "x"; "y" ]
      ~is_a:[ ("x", "r1"); ("y", "r2") ]
  in
  check int "no extra labels" 4 (Taxonomy.label_count t);
  check int "two roots" 2 (List.length (Taxonomy.roots t));
  check int "mg x" (id t "r1") (Taxonomy.most_general t (id t "x"));
  check int "mg y" (id t "r2") (Taxonomy.most_general t (id t "y"))

let test_multi_root_transitive_groups () =
  (* r1-r2 linked through x, r2-r3 through y: all three under one root *)
  let t =
    Taxonomy.build
      ~names:[ "r1"; "r2"; "r3"; "x"; "y" ]
      ~is_a:[ ("x", "r1"); ("x", "r2"); ("y", "r2"); ("y", "r3") ]
  in
  check int "single root" 1 (List.length (Taxonomy.roots t));
  let root = List.hd (Taxonomy.roots t) in
  List.iter
    (fun n -> check int ("mg " ^ n) root (Taxonomy.most_general t (id t n)))
    [ "r1"; "r2"; "r3"; "x"; "y" ]

let test_restrict () =
  let t = diamond () in
  (* drop the middle layer below b: children of b skipping e are d and
     (through e) g *)
  let keep l = Taxonomy.name t l <> "e" in
  check (Alcotest.list int) "bypasses removed label"
    [ id t "d"; id t "g" ]
    (Taxonomy.restrict t ~keep (id t "b"));
  check (Alcotest.list int) "no filter = children"
    (Taxonomy.children t (id t "b"))
    (Taxonomy.restrict t ~keep:(fun _ -> true) (id t "b"))

(* --- generators ---------------------------------------------------------- *)

let test_synth_level_widths () =
  let rng = Prng.of_int 1 in
  let widths = Synth.level_widths rng ~concepts:100 ~depth:7 in
  check int "depth levels" 7 (Array.length widths);
  check int "sums to concepts" 100 (Array.fold_left ( + ) 0 widths);
  check int "root alone" 1 widths.(0);
  Array.iter (fun w -> check bool "non-empty level" true (w > 0)) widths

let test_synth_generate () =
  let rng = Prng.of_int 2 in
  let t = Synth.generate rng { concepts = 200; relationships = 400; depth = 8 } in
  check int "labels" 200 (Taxonomy.label_count t);
  check int "levels" 8 (Taxonomy.level_count t);
  check int "single root" 1 (List.length (Taxonomy.roots t));
  check bool "relationship count respected" true
    (Taxonomy.relationship_count t >= 199
    && Taxonomy.relationship_count t <= 400)

let test_synth_determinism () =
  let gen seed =
    let t = Synth.generate (Prng.of_int seed)
        { concepts = 50; relationships = 80; depth = 5 } in
    List.init (Taxonomy.label_count t) (fun l -> Taxonomy.parents t l)
  in
  check bool "same seed same taxonomy" true (gen 7 = gen 7);
  check bool "seeds differ" true (gen 7 <> gen 8)

let test_go_like () =
  let rng = Prng.of_int 3 in
  let t = Go_like.generate ~concepts:500 rng in
  check int "concepts" 500 (Taxonomy.label_count t);
  check int "14 levels" 14 (Taxonomy.level_count t);
  check int "single root" 1 (List.length (Taxonomy.roots t));
  let multi_parent =
    List.length
      (List.filter
         (fun l -> List.length (Taxonomy.parents t l) >= 2)
         (List.init 500 (fun i -> i)))
  in
  check bool "has multi-parent concepts (DAG)" true (multi_parent > 10);
  check bool "GO-styled names" true
    (String.length (Taxonomy.name t 0) = 10
    && String.sub (Taxonomy.name t 0) 0 3 = "GO:")

let test_atoms () =
  let t = Atoms.create () in
  let atoms = Atoms.atom_labels t in
  check int "24 atom labels" 24 (List.length atoms);
  List.iter
    (fun l -> check bool "atoms are leaves" true (Taxonomy.is_leaf t l))
    atoms;
  check (Alcotest.list int) "single root" [ id t "Atom" ] (Taxonomy.roots t);
  check bool "aromatic c under Aromatic" true
    (Taxonomy.is_ancestor t ~anc:(id t "Aromatic") (id t "c"));
  check bool "Cl is halogen" true
    (Taxonomy.is_ancestor t ~anc:(id t "Halogen") (id t "Cl"));
  check bool "C not halogen" false
    (Taxonomy.is_ancestor t ~anc:(id t "Halogen") (id t "C"));
  check int "organic labels" 6 (List.length (Atoms.organic_labels t));
  check int "aromatic labels" 4 (List.length (Atoms.aromatic_labels t));
  check int "3 levels deep" 3 (Taxonomy.max_depth t)

(* --- Taxonomy_io ---------------------------------------------------------- *)

module Taxonomy_io = Tsg_taxonomy.Taxonomy_io

let same_taxonomy a b =
  Taxonomy.label_count a = Taxonomy.label_count b
  && List.for_all
       (fun l ->
         Taxonomy.name a l = Taxonomy.name b l
         && List.map (Taxonomy.name a) (Taxonomy.parents a l)
            = List.map (Taxonomy.name b) (Taxonomy.parents b l))
       (List.init (Taxonomy.label_count a) (fun i -> i))

let test_io_roundtrip () =
  let t = diamond () in
  let t' = Taxonomy_io.parse (Taxonomy_io.to_string t) in
  check bool "roundtrip" true (same_taxonomy t t')

let test_io_artificial_roots_recreated () =
  let t =
    Taxonomy.build ~names:[ "r1"; "r2"; "x" ]
      ~is_a:[ ("x", "r1"); ("x", "r2") ]
  in
  let text = Taxonomy_io.to_string t in
  check bool "artificial root not serialized" true
    (not
       (List.exists
          (fun line -> String.length line > 2 && String.sub line 2 1 = "<")
          (String.split_on_char '\n' text)));
  let t' = Taxonomy_io.parse text in
  check int "artificial root recreated" (Taxonomy.label_count t)
    (Taxonomy.label_count t');
  check int "single root again" 1 (List.length (Taxonomy.roots t'))

let test_io_errors () =
  let expect text =
    match Taxonomy_io.parse text with
    | exception Taxonomy_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect "z 1 2\n";
  expect "c a\ni a b\n";
  (* cycle *)
  expect "c a\nc b\ni a b\ni b a\n"

let test_io_comments () =
  let t = Taxonomy_io.parse "# taxonomy\nc a\n\nc b\ni b a\n" in
  check int "two concepts" 2 (Taxonomy.label_count t);
  check bool "edge parsed" true
    (Taxonomy.is_ancestor t ~anc:(Taxonomy.id_of_name t "a")
       (Taxonomy.id_of_name t "b"))

let test_io_file_roundtrip () =
  let rng = Prng.of_int 77 in
  let t = Synth.generate rng { concepts = 60; relationships = 100; depth = 5 } in
  let path = Filename.temp_file "tsg_tax" ".tax" in
  Taxonomy_io.save path t;
  let t' = Taxonomy_io.load path in
  Sys.remove path;
  check bool "file roundtrip" true (same_taxonomy t t')

(* --- properties ---------------------------------------------------------- *)

let arb_taxonomy =
  QCheck.make
    QCheck.Gen.(
      int_range 3 40 >>= fun concepts ->
      int_range 1 5 >>= fun depth ->
      int_range 0 30 >>= fun extra ->
      small_int >>= fun seed ->
      return
        (Synth.generate (Prng.of_int seed)
           { concepts; relationships = concepts - 1 + extra; depth }))

let duality_prop =
  QCheck.Test.make ~name:"ancestor/descendant duality" ~count:100 arb_taxonomy
    (fun t ->
      let n = Taxonomy.label_count t in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let anc = Taxonomy.is_ancestor t ~anc:a b in
          let desc = Bitset.mem (Taxonomy.descendant_set t a) b in
          if anc <> desc then ok := false
        done
      done;
      !ok)

let transitivity_prop =
  QCheck.Test.make ~name:"ancestorship is transitive" ~count:50 arb_taxonomy
    (fun t ->
      let n = Taxonomy.label_count t in
      let ok = ref true in
      for a = 0 to n - 1 do
        List.iter
          (fun b ->
            List.iter
              (fun c ->
                if not (Taxonomy.is_ancestor t ~anc:c a) then ok := false)
              (Taxonomy.ancestors t b))
          (Taxonomy.ancestors t a)
      done;
      !ok)

let most_general_is_root_prop =
  QCheck.Test.make ~name:"most_general is a root ancestor" ~count:100
    arb_taxonomy (fun t ->
      List.for_all
        (fun l ->
          let mg = Taxonomy.most_general t l in
          Taxonomy.is_root t mg && Taxonomy.is_ancestor t ~anc:mg l)
        (List.init (Taxonomy.label_count t) (fun i -> i)))

let depth_parent_prop =
  QCheck.Test.make ~name:"depth exceeds every parent's" ~count:100
    arb_taxonomy (fun t ->
      List.for_all
        (fun l ->
          List.for_all
            (fun p -> Taxonomy.depth t l > Taxonomy.depth t p)
            (Taxonomy.parents t l))
        (List.init (Taxonomy.label_count t) (fun i -> i)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "taxonomy"
    [
      ( "structure",
        [
          Alcotest.test_case "parents/children/roots/leaves" `Quick
            test_structure;
          Alcotest.test_case "ancestorship" `Quick test_ancestorship;
          Alcotest.test_case "depth/levels" `Quick test_depth;
          Alcotest.test_case "most_general" `Quick test_most_general;
          Alcotest.test_case "topological order" `Quick
            test_topological_order;
          Alcotest.test_case "avg strict ancestors" `Quick
            test_avg_strict_ancestors;
          Alcotest.test_case "restrict" `Quick test_restrict;
        ] );
      ( "validation",
        [
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "bad edges rejected" `Quick
            test_bad_edges_rejected;
        ] );
      ( "multi-root",
        [
          Alcotest.test_case "artificial root" `Quick
            test_multi_root_artificial;
          Alcotest.test_case "independent roots" `Quick
            test_multi_root_independent;
          Alcotest.test_case "transitive groups" `Quick
            test_multi_root_transitive_groups;
        ] );
      ( "generators",
        [
          Alcotest.test_case "level widths" `Quick test_synth_level_widths;
          Alcotest.test_case "synth generate" `Quick test_synth_generate;
          Alcotest.test_case "synth determinism" `Quick
            test_synth_determinism;
          Alcotest.test_case "go-like" `Quick test_go_like;
          Alcotest.test_case "atom taxonomy" `Quick test_atoms;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "artificial roots" `Quick
            test_io_artificial_roots_recreated;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "comments" `Quick test_io_comments;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
        ] );
      ( "properties",
        qsuite
          [
            duality_prop;
            transitivity_prop;
            most_general_is_root_prop;
            depth_parent_prop;
          ] );
    ]
