module Label = Tsg_graph.Label
module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Serial = Tsg_graph.Serial

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9

(* --- Label --------------------------------------------------------------- *)

let test_label_intern () =
  let t = Label.create () in
  let a = Label.intern t "alpha" in
  let b = Label.intern t "beta" in
  check int "first id" 0 a;
  check int "second id" 1 b;
  check int "re-intern stable" a (Label.intern t "alpha");
  check int "size" 2 (Label.size t);
  check Alcotest.string "name" "beta" (Label.name t b);
  check (Alcotest.option int) "find" (Some 0) (Label.find t "alpha");
  check (Alcotest.option int) "find missing" None (Label.find t "gamma");
  check bool "mem" true (Label.mem t "alpha")

let test_label_find_exn () =
  let t = Label.of_names [ "x"; "y" ] in
  check int "find_exn" 1 (Label.find_exn t "y");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Label.find_exn t "z"))

let test_label_of_names_dup () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Label.of_names: duplicate name a") (fun () ->
      ignore (Label.of_names [ "a"; "b"; "a" ]))

let test_label_name_bounds () =
  let t = Label.of_names [ "a" ] in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Label.name: id 5 out of range") (fun () ->
      ignore (Label.name t 5))

let test_label_growth () =
  let t = Label.create () in
  for i = 0 to 99 do
    ignore (Label.intern t (string_of_int i))
  done;
  check int "hundred labels" 100 (Label.size t);
  check Alcotest.string "lookup survives growth" "57" (Label.name t 57);
  check int "names array length" 100 (Array.length (Label.names t))

(* --- Graph --------------------------------------------------------------- *)

let path3 () =
  (* 0:a - 1:b - 2:c with edge labels 7, 8 *)
  Graph.build ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 7); (1, 2, 8) ]

let triangle () =
  Graph.build ~labels:[| 0; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]

let test_graph_basics () =
  let g = path3 () in
  check int "nodes" 3 (Graph.node_count g);
  check int "edges" 2 (Graph.edge_count g);
  check int "label" 1 (Graph.node_label g 1);
  check int "degree mid" 2 (Graph.degree g 1);
  check int "degree end" 1 (Graph.degree g 0);
  check bool "has edge" true (Graph.has_edge g 1 0);
  check bool "no edge" false (Graph.has_edge g 0 2);
  check (Alcotest.option int) "edge label" (Some 8) (Graph.edge_label g 2 1);
  check (Alcotest.option int) "missing edge label" None (Graph.edge_label g 0 2)

let test_graph_build_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.build: self loop at node 0") (fun () ->
      ignore (Graph.build ~labels:[| 0 |] ~edges:[ (0, 0, 0) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.build: duplicate edge (1,0)") (fun () ->
      ignore (Graph.build ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0); (1, 0, 3) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.build: edge (0,5) out of range [0,2)") (fun () ->
      ignore (Graph.build ~labels:[| 0; 1 |] ~edges:[ (0, 5, 0) ]))

let test_graph_edges_normalized () =
  let g = Graph.build ~labels:[| 0; 1; 2 |] ~edges:[ (2, 0, 5); (1, 0, 6) ] in
  check
    (Alcotest.list (Alcotest.triple int int int))
    "sorted, fst<snd"
    [ (0, 1, 6); (0, 2, 5) ]
    (Array.to_list (Graph.edges g))

let test_graph_neighbors_symmetric () =
  let g = triangle () in
  let n0 = Array.to_list (Graph.neighbors g 0) in
  check bool "0 sees 1 and 2" true (List.mem (1, 0) n0 && List.mem (2, 0) n0);
  let n2 = Array.to_list (Graph.neighbors g 2) in
  check bool "2 sees 0 and 1" true (List.mem (0, 0) n2 && List.mem (1, 0) n2)

let test_graph_density () =
  let g = triangle () in
  check flt "triangle density" (2.0 *. 3.0 /. 9.0) (Graph.edge_density g);
  check flt "empty density" 0.0 (Graph.edge_density Graph.empty)

let test_graph_connectivity () =
  check bool "empty connected" true (Graph.is_connected Graph.empty);
  check bool "single connected" true
    (Graph.is_connected (Graph.build ~labels:[| 0 |] ~edges:[]));
  check bool "path connected" true (Graph.is_connected (path3 ()));
  let disconnected =
    Graph.build ~labels:[| 0; 1; 2; 3 |] ~edges:[ (0, 1, 0); (2, 3, 0) ]
  in
  check bool "two components" false (Graph.is_connected disconnected);
  check
    (Alcotest.list (Alcotest.list int))
    "component membership"
    [ [ 0; 1 ]; [ 2; 3 ] ]
    (Graph.connected_components disconnected)

let test_graph_relabel () =
  let g = path3 () in
  let g' = Graph.relabel g (fun v -> 10 + Graph.node_label g v) in
  check int "relabeled" 11 (Graph.node_label g' 1);
  check int "structure kept" 2 (Graph.edge_count g');
  check int "original untouched" 1 (Graph.node_label g 1)

let test_graph_induced () =
  let g = triangle () in
  let sub, mapping = Graph.induced g [ 0; 2 ] in
  check int "sub nodes" 2 (Graph.node_count sub);
  check int "sub edges" 1 (Graph.edge_count sub);
  check (Alcotest.array int) "mapping" [| 0; 2 |] mapping;
  check int "labels follow" 1 (Graph.node_label sub 1);
  Alcotest.check_raises "dup node"
    (Invalid_argument "Graph.induced: duplicate node") (fun () ->
      ignore (Graph.induced g [ 0; 0 ]))

let test_graph_distinct_labels () =
  let g = Graph.build ~labels:[| 3; 1; 3; 2 |] ~edges:[ (0, 1, 0) ] in
  check (Alcotest.list int) "sorted unique" [ 1; 2; 3 ]
    (Graph.distinct_node_labels g)

let test_graph_fold_edges () =
  let g = triangle () in
  let total = Graph.fold_edges (fun _ _ _ acc -> acc + 1) g 0 in
  check int "fold counts edges" 3 total

let test_graph_equal () =
  check bool "equal" true (Graph.equal (path3 ()) (path3 ()));
  let other =
    Graph.build ~labels:[| 0; 1; 9 |] ~edges:[ (0, 1, 7); (1, 2, 8) ]
  in
  check bool "label differs" false (Graph.equal (path3 ()) other)

(* --- Db ------------------------------------------------------------------ *)

let sample_db () = Db.of_list [ path3 (); triangle () ]

let test_db_stats () =
  let db = sample_db () in
  check int "size" 2 (Db.size db);
  check flt "avg nodes" 3.0 (Db.avg_nodes db);
  check flt "avg edges" 2.5 (Db.avg_edges db);
  check int "distinct labels" 3 (Db.distinct_label_count db);
  check (Alcotest.list int) "labels" [ 0; 1; 2 ] (Db.distinct_labels db);
  check (Alcotest.list int) "edge labels" [ 0; 7; 8 ]
    (Db.distinct_edge_labels db);
  check int "max nodes" 3 (Db.max_graph_nodes db);
  check int "max edges" 3 (Db.max_graph_edges db);
  let s = Db.statistics db in
  check int "stat graphs" 2 s.Db.graphs

let test_db_threshold () =
  let db = Db.of_list (List.init 10 (fun _ -> path3 ())) in
  check int "theta 0.2" 2 (Db.support_count_to_threshold db 0.2);
  check int "theta 1.0" 10 (Db.support_count_to_threshold db 1.0);
  check int "theta 0 gives 1" 1 (Db.support_count_to_threshold db 0.0);
  check int "theta 0.15 ceil" 2 (Db.support_count_to_threshold db 0.15);
  Alcotest.check_raises "theta > 1"
    (Invalid_argument "Db.support_count_to_threshold: theta outside [0,1]")
    (fun () -> ignore (Db.support_count_to_threshold db 1.5))

let test_db_map_fold () =
  let db = sample_db () in
  let db' = Db.map (fun g -> Graph.relabel g (fun _ -> 0)) db in
  check int "map keeps size" 2 (Db.size db');
  check int "map applied" 1 (Db.distinct_label_count db');
  let nodes = Db.fold (fun acc g -> acc + Graph.node_count g) 0 db in
  check int "fold" 6 nodes;
  let ids = ref [] in
  Db.iteri (fun i _ -> ids := i :: !ids) db;
  check (Alcotest.list int) "iteri order" [ 0; 1 ] (List.rev !ids)

let test_db_empty () =
  let db = Db.of_list [] in
  check flt "avg nodes 0" 0.0 (Db.avg_nodes db);
  check flt "density 0" 0.0 (Db.avg_edge_density db);
  check int "distinct" 0 (Db.distinct_label_count db)

(* --- Serial -------------------------------------------------------------- *)

let test_serial_roundtrip () =
  let node_labels = Label.of_names [ "a"; "b"; "c" ] in
  let edge_labels = Label.of_names [ "x"; "y" ] in
  let g1 = Graph.build ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  let g2 = Graph.build ~labels:[| 2; 2; 0 |] ~edges:[ (0, 1, 1); (1, 2, 0) ] in
  let db = Db.of_list [ g1; g2 ] in
  let text = Serial.db_to_string ~node_labels ~edge_labels db in
  let db' = Serial.parse_db ~node_labels ~edge_labels text in
  check int "size" 2 (Db.size db');
  check bool "g1 equal" true (Graph.equal (Db.get db' 0) g1);
  check bool "g2 equal" true (Graph.equal (Db.get db' 1) g2)

let test_serial_new_labels_interned () =
  let node_labels = Label.create () in
  let edge_labels = Label.create () in
  let db =
    Serial.parse_db ~node_labels ~edge_labels
      "t # 0\nv 0 enzyme\nv 1 carrier\ne 0 1 bond\n"
  in
  check int "parsed one graph" 1 (Db.size db);
  check bool "node labels interned" true (Label.mem node_labels "carrier");
  check bool "edge labels interned" true (Label.mem edge_labels "bond")

let test_serial_errors () =
  let nl = Label.create () and el = Label.create () in
  let expect_err text =
    match Serial.parse_db ~node_labels:nl ~edge_labels:el text with
    | exception Serial.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect_err "v 0 a\n";
  expect_err "t # 0\ne 0 1 z\n";
  expect_err "t # 0\nv 0 a\nv 0 b\n";
  expect_err "t # 0\nv 0 a\nnonsense line\n";
  expect_err "t # 0\nv 0 a\nv 1 b\ne 0 0 x\n"

let test_serial_comments_and_blanks () =
  let nl = Label.create () and el = Label.create () in
  let db =
    Serial.parse_db ~node_labels:nl ~edge_labels:el
      "# comment\n\nt # 0\nv 0 a\n\n# more\nv 1 b\ne 0 1 x\n"
  in
  check int "one graph" 1 (Db.size db);
  check int "two nodes" 2 (Graph.node_count (Db.get db 0))

let test_serial_file_roundtrip () =
  let nl = Label.of_names [ "n" ] and el = Label.of_names [ "e" ] in
  let db = Db.of_list [ Graph.build ~labels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] ] in
  let path = Filename.temp_file "tsg_test" ".db" in
  Serial.save_db path ~node_labels:nl ~edge_labels:el db;
  let db' = Serial.load_db ~node_labels:nl ~edge_labels:el path in
  Sys.remove path;
  check bool "file roundtrip" true (Graph.equal (Db.get db 0) (Db.get db' 0))

(* --- Serial: directed -------------------------------------------------------- *)

let test_serial_directed_roundtrip () =
  let nl = Label.of_names [ "k"; "t" ] and al = Label.of_names [ "act"; "inh" ] in
  let d1 =
    Tsg_graph.Digraph.build ~labels:[| 0; 1 |] ~arcs:[ (0, 1, 0); (1, 0, 1) ]
  in
  let d2 = Tsg_graph.Digraph.build ~labels:[| 1; 0; 0 |] ~arcs:[ (2, 0, 1) ] in
  let text = Serial.digraphs_to_string ~node_labels:nl ~arc_labels:al [ d1; d2 ] in
  match Serial.parse_digraphs ~node_labels:nl ~arc_labels:al text with
  | [ d1'; d2' ] ->
    check bool "d1 roundtrip" true (Tsg_graph.Digraph.equal d1 d1');
    check bool "d2 roundtrip" true (Tsg_graph.Digraph.equal d2 d2')
  | _ -> Alcotest.fail "expected two digraphs"

let test_serial_directed_rejects_edges () =
  let nl = Label.create () and al = Label.create () in
  match
    Serial.parse_digraphs ~node_labels:nl ~arc_labels:al
      "t # 0\nv 0 a\nv 1 b\ne 0 1 x\n"
  with
  | exception Serial.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error on 'e' line"

let test_serial_directed_file_roundtrip () =
  let nl = Label.of_names [ "n" ] and al = Label.of_names [ "a" ] in
  let d = Tsg_graph.Digraph.build ~labels:[| 0; 0 |] ~arcs:[ (1, 0, 0) ] in
  let path = Filename.temp_file "tsg_test" ".ddb" in
  Serial.save_digraphs path ~node_labels:nl ~arc_labels:al [ d ];
  let loaded = Serial.load_digraphs ~node_labels:nl ~arc_labels:al path in
  Sys.remove path;
  check bool "file roundtrip" true
    (match loaded with [ d' ] -> Tsg_graph.Digraph.equal d d' | _ -> false)

(* --- Dot ------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_dot_render () =
  let nl = Label.of_names [ "enzyme"; "carrier" ] in
  let el = Label.of_names [ "binds" ] in
  let g = Graph.build ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  let dot = Tsg_graph.Dot.graph ~name:"demo" ~node_labels:nl ~edge_labels:el g in
  check bool "graph block" true (contains dot "graph \"demo\" {");
  check bool "node names" true (contains dot "label=\"carrier\"");
  check bool "edge names" true (contains dot "n0 -- n1 [label=\"binds\"]");
  let bare = Tsg_graph.Dot.graph g in
  check bool "numeric fallback" true (contains bare "label=\"1\"")

let test_dot_escaping () =
  let nl = Label.of_names [ "say \"hi\"" ] in
  let g = Graph.build ~labels:[| 0 |] ~edges:[] in
  let dot = Tsg_graph.Dot.graph ~node_labels:nl g in
  check bool "quotes escaped" true (contains dot "say \\\"hi\\\"")

(* --- properties ---------------------------------------------------------- *)

let random_graph_gen =
  QCheck.Gen.(
    int_range 1 8 >>= fun n ->
    array_size (return n) (int_bound 4) >>= fun labels ->
    let all_pairs =
      List.concat (List.init n (fun u -> List.init u (fun v -> (u, v))))
    in
    let pick_edges =
      List.fold_left
        (fun acc (u, v) ->
          acc >>= fun acc ->
          bool >>= fun keep ->
          if not keep then return acc
          else int_bound 2 >>= fun l -> return ((u, v, l) :: acc))
        (return []) all_pairs
    in
    pick_edges >>= fun edges -> return (Graph.build ~labels ~edges))

let arb_graph = QCheck.make random_graph_gen

let graph_invariants_prop =
  QCheck.Test.make ~name:"graph invariants" ~count:300 arb_graph (fun g ->
      let n = Graph.node_count g in
      let degree_sum =
        List.init n (fun v -> Graph.degree g v) |> List.fold_left ( + ) 0
      in
      degree_sum = 2 * Graph.edge_count g
      && Array.for_all
           (fun (u, v, l) ->
             u < v
             && Graph.has_edge g u v && Graph.has_edge g v u
             && Graph.edge_label g u v = Some l)
           (Graph.edges g)
      && List.fold_left ( + ) 0
           (List.map List.length (Graph.connected_components g))
         = n)

let induced_full_prop =
  QCheck.Test.make ~name:"induced over all nodes is identity" ~count:200
    arb_graph (fun g ->
      let nodes = List.init (Graph.node_count g) (fun i -> i) in
      let sub, _ = Graph.induced g nodes in
      Graph.equal sub g)

let serial_roundtrip_prop =
  QCheck.Test.make ~name:"serialization roundtrip" ~count:200 arb_graph
    (fun g ->
      let nl = Label.create () and el = Label.create () in
      for i = 0 to 9 do
        ignore (Label.intern nl (Printf.sprintf "n%d" i));
        ignore (Label.intern el (Printf.sprintf "e%d" i))
      done;
      let db = Db.of_list [ g ] in
      let text = Serial.db_to_string ~node_labels:nl ~edge_labels:el db in
      let db' = Serial.parse_db ~node_labels:nl ~edge_labels:el text in
      Graph.equal (Db.get db' 0) g)

(* parsers must reject garbage with Parse_error, never crash otherwise *)
let parser_fuzz_prop =
  QCheck.Test.make ~name:"serial parsers never crash on garbage" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 80) QCheck.Gen.printable)
    (fun text ->
      let nl = Label.create () and el = Label.create () in
      let ok_undirected =
        match Serial.parse_db ~node_labels:nl ~edge_labels:el text with
        | _ -> true
        | exception Serial.Parse_error _ -> true
      in
      let ok_directed =
        match Serial.parse_digraphs ~node_labels:nl ~arc_labels:el text with
        | _ -> true
        | exception Serial.Parse_error _ -> true
      in
      ok_undirected && ok_directed)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "graph"
    [
      ( "label",
        [
          Alcotest.test_case "intern" `Quick test_label_intern;
          Alcotest.test_case "find_exn" `Quick test_label_find_exn;
          Alcotest.test_case "of_names dup" `Quick test_label_of_names_dup;
          Alcotest.test_case "name bounds" `Quick test_label_name_bounds;
          Alcotest.test_case "growth" `Quick test_label_growth;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "validation" `Quick test_graph_build_validation;
          Alcotest.test_case "normalized edges" `Quick
            test_graph_edges_normalized;
          Alcotest.test_case "neighbors symmetric" `Quick
            test_graph_neighbors_symmetric;
          Alcotest.test_case "density" `Quick test_graph_density;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "relabel" `Quick test_graph_relabel;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "distinct labels" `Quick
            test_graph_distinct_labels;
          Alcotest.test_case "fold edges" `Quick test_graph_fold_edges;
          Alcotest.test_case "equal" `Quick test_graph_equal;
        ]
        @ qsuite [ graph_invariants_prop; induced_full_prop ] );
      ( "db",
        [
          Alcotest.test_case "statistics" `Quick test_db_stats;
          Alcotest.test_case "support threshold" `Quick test_db_threshold;
          Alcotest.test_case "map/fold/iteri" `Quick test_db_map_fold;
          Alcotest.test_case "empty db" `Quick test_db_empty;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "interning" `Quick test_serial_new_labels_interned;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "comments/blanks" `Quick
            test_serial_comments_and_blanks;
          Alcotest.test_case "file roundtrip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "directed roundtrip" `Quick
            test_serial_directed_roundtrip;
          Alcotest.test_case "directed rejects edges" `Quick
            test_serial_directed_rejects_edges;
          Alcotest.test_case "directed file roundtrip" `Quick
            test_serial_directed_file_roundtrip;
        ]
        @ qsuite [ serial_roundtrip_prop; parser_fuzz_prop ] );
      ( "dot",
        [
          Alcotest.test_case "render" `Quick test_dot_render;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
        ] );
    ]
