(* End-to-end scenarios across libraries: generated data through the full
   Taxogram pipeline, with supports, minimality and completeness re-verified
   from first principles, plus serialization in the loop. *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng
module Gen_iso = Tsg_iso.Gen_iso
module Pattern = Tsg_core.Pattern
module Taxogram = Tsg_core.Taxogram
module Tacgm = Tsg_core.Tacgm
module Naive = Tsg_core.Naive
module Specialize = Tsg_core.Specialize

let check = Alcotest.check
let bool = Alcotest.bool


let config ?(max_edges = Some 3) theta =
  { Taxogram.min_support = theta; max_edges; enhancements = Specialize.all_on }

let verify_supports tax db (patterns : Pattern.t list) =
  List.iter
    (fun (p : Pattern.t) ->
      let recount = Gen_iso.support_set tax ~pattern:p.Pattern.graph db in
      check bool "support set re-verified" true
        (Bitset.equal recount p.Pattern.support_set))
    patterns

let verify_minimal tax (patterns : Pattern.t list) =
  List.iter
    (fun (p : Pattern.t) ->
      let dominated =
        List.exists
          (fun (q : Pattern.t) ->
            Pattern.key p <> Pattern.key q
            && p.Pattern.support_count = q.Pattern.support_count
            && Pattern.node_count p = Pattern.node_count q
            && Pattern.edge_count p = Pattern.edge_count q
            && Gen_iso.graph_isomorphic tax p.Pattern.graph q.Pattern.graph)
          patterns
      in
      check bool "not over-generalized" true (not dominated))
    patterns

(* --- pathway scenario ------------------------------------------------------ *)

let test_pathway_end_to_end () =
  let rng = Prng.of_int 21 in
  let tax = Tsg_taxonomy.Go_like.generate ~concepts:250 rng in
  let spec =
    List.find
      (fun s -> s.Tsg_data.Pathways.name = "Citrate cycle (TCA cycle)")
      Tsg_data.Pathways.table2
  in
  let db = Tsg_data.Pathways.generate rng ~taxonomy:tax ~organisms:10 spec in
  let theta = 0.4 in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db in
  check bool "finds conserved annotation patterns" true
    (r.Taxogram.pattern_count > 0);
  let min_count = Db.support_count_to_threshold db theta in
  List.iter
    (fun (p : Pattern.t) ->
      check bool "support above threshold" true
        (p.Pattern.support_count >= min_count);
      check bool "pattern has an edge" true (Pattern.edge_count p >= 1);
      check bool "pattern connected" true (Graph.is_connected p.Pattern.graph))
    r.Taxogram.patterns;
  verify_supports tax db r.Taxogram.patterns;
  verify_minimal tax r.Taxogram.patterns

(* --- chemical scenario ------------------------------------------------------ *)

let test_pte_end_to_end () =
  let tax = Tsg_taxonomy.Atom_taxonomy.create () in
  let rng = Prng.of_int 22 in
  let db = Tsg_data.Pte.generate rng ~taxonomy:tax ~molecules:40 () in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config ~max_edges:(Some 2) 0.6) ()) tax db in
  check bool "frequent chemical fragments exist" true
    (r.Taxogram.pattern_count > 0);
  verify_supports tax db r.Taxogram.patterns;
  verify_minimal tax r.Taxogram.patterns;
  (* generalized mining must find at least as many 1-edge patterns as exact
     mining does, structure for structure *)
  let exact =
    Tsg_gspan.Gspan.mine_list
      ~max_edges:2
      ~min_support:(Db.support_count_to_threshold db 0.6)
      db
  in
  check bool "taxonomy adds patterns over exact mining" true
    (r.Taxogram.pattern_count >= List.length exact)

(* --- serialization in the pipeline ------------------------------------------ *)

let test_serialize_then_mine () =
  let rng = Prng.of_int 23 in
  let tax = Tsg_taxonomy.Go_like.generate ~concepts:120 rng in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 25;
        max_edges = 8;
        edge_density = 0.3;
        edge_label_count = 3;
        node_label = sampler;
      }
  in
  let node_labels = Taxonomy.labels tax in
  let edge_labels = Label.of_names [ "e0"; "e1"; "e2" ] in
  let text = Serial.db_to_string ~node_labels ~edge_labels db in
  let db' = Serial.parse_db ~node_labels ~edge_labels text in
  let a = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.3) ()) tax db in
  let b = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.3) ()) tax db' in
  check bool "mining unchanged by (de)serialization" true
    (Pattern.equal_sets a.Taxogram.patterns b.Taxogram.patterns)

(* --- three miners on one realistic instance ---------------------------------- *)

let test_three_miners_agree_realistic () =
  let rng = Prng.of_int 24 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      { concepts = 40; relationships = 60; depth = 4 }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 15;
        max_edges = 6;
        edge_density = 0.3;
        edge_label_count = 2;
        node_label = sampler;
      }
  in
  let theta = 0.3 in
  let taxogram = (Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db).Taxogram.patterns in
  let baseline =
    (Taxogram.run (Taxogram.Spec.collect ~config:{ (config theta) with enhancements = Specialize.all_off } ())
       tax db)
      .Taxogram.patterns
  in
  let tacgm = Tacgm.run ~max_edges:3 ~min_support:theta tax db in
  check bool "tacgm completed" true (tacgm.Tacgm.outcome = Tacgm.Completed);
  check bool "taxogram = baseline" true (Pattern.equal_sets taxogram baseline);
  check bool "taxogram = tacgm" true
    (Pattern.equal_sets taxogram tacgm.Tacgm.patterns);
  verify_supports tax db taxogram

(* --- completeness against the naive specification ----------------------------- *)

let test_completeness_small_realistic () =
  let rng = Prng.of_int 25 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      { concepts = 12; relationships = 16; depth = 3 }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 5;
        max_edges = 4;
        edge_density = 0.4;
        edge_label_count = 2;
        node_label = sampler;
      }
  in
  let naive = Naive.mine ~max_edges:3 ~min_support:0.4 tax db in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.4) ()) tax db in
  check bool "complete and minimal vs specification" true
    (Pattern.equal_sets naive r.Taxogram.patterns)

(* --- multi-root taxonomy end to end ------------------------------------------- *)

let test_multi_root_end_to_end () =
  (* two ontology roots whose subtrees overlap on a shared concept *)
  let tax =
    Taxonomy.build
      ~names:[ "process"; "function"; "kinase"; "transferase"; "binding" ]
      ~is_a:
        [
          ("kinase", "process"); ("kinase", "function");
          ("transferase", "function"); ("binding", "process");
        ]
  in
  let id n = Taxonomy.id_of_name tax n in
  let g labels edges = Graph.build ~labels ~edges in
  let db =
    Db.of_list
      [
        g [| id "kinase"; id "binding" |] [ (0, 1, 0) ];
        g [| id "transferase"; id "binding" |] [ (0, 1, 0) ];
      ]
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) tax db in
  (* the artificial root makes 'function-?' and 'process-?' classes minable;
     kinase is under both roots *)
  check bool "patterns found across roots" true (r.Taxogram.pattern_count > 0);
  verify_supports tax db r.Taxogram.patterns;
  verify_minimal tax r.Taxogram.patterns;
  let naive = Naive.mine ~max_edges:3 ~min_support:1.0 tax db in
  check bool "matches specification" true
    (Pattern.equal_sets naive r.Taxogram.patterns)

(* --- figure 4.7 microcosm: lower support never loses patterns ------------------ *)

let test_support_monotonicity () =
  let rng = Prng.of_int 26 in
  let tax = Tsg_taxonomy.Go_like.generate ~concepts:150 rng in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 20;
        max_edges = 6;
        edge_density = 0.3;
        edge_label_count = 3;
        node_label = sampler;
      }
  in
  let count theta =
    (Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db).Taxogram.pattern_count
  in
  let c6 = count 0.6 and c4 = count 0.4 and c2 = count 0.2 in
  check bool "pattern count grows as support drops" true (c6 <= c4 && c4 <= c2)

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "pathway end-to-end" `Quick
            test_pathway_end_to_end;
          Alcotest.test_case "pte end-to-end" `Quick test_pte_end_to_end;
          Alcotest.test_case "serialize then mine" `Quick
            test_serialize_then_mine;
          Alcotest.test_case "three miners agree" `Quick
            test_three_miners_agree_realistic;
          Alcotest.test_case "completeness vs naive" `Quick
            test_completeness_small_realistic;
          Alcotest.test_case "multi-root end-to-end" `Quick
            test_multi_root_end_to_end;
          Alcotest.test_case "support monotonicity" `Quick
            test_support_monotonicity;
        ] );
    ]
