module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng
module Metrics = Tsg_util.Metrics
module Pattern = Tsg_core.Pattern
module Taxogram = Tsg_core.Taxogram
module Specialize = Tsg_core.Specialize
module Interest = Tsg_core.Interest
module Store = Tsg_query.Store
module Engine = Tsg_query.Engine
module Lru = Tsg_query.Lru
module Protocol = Tsg_query.Protocol
module Serve = Tsg_query.Serve
module Epoch = Tsg_query.Epoch

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let ints = Alcotest.(list int)

let g ~labels ~edges = Graph.build ~labels ~edges

let small_taxonomy () =
  Taxonomy.build
    ~names:[ "a"; "b"; "c"; "d"; "e"; "f" ]
    ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c") ]

let go_excerpt () =
  Taxonomy.build
    ~names:
      [ "molecular_function"; "transporter"; "catalytic_activity"; "carrier";
        "cation_transporter"; "helicase"; "dna_helicase" ]
    ~is_a:
      [
        ("transporter", "molecular_function");
        ("catalytic_activity", "molecular_function");
        ("carrier", "transporter");
        ("cation_transporter", "transporter");
        ("helicase", "catalytic_activity");
        ("dna_helicase", "helicase");
      ]

let id t n = Taxonomy.id_of_name t n

let two_graph_db t =
  Db.of_list
    [
      g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ];
      g ~labels:[| id t "e"; id t "f" |] ~edges:[ (0, 1, 0) ];
    ]

let mine ?(theta = 0.5) t db =
  let config =
    { Taxogram.min_support = theta; max_edges = Some 3;
      enhancements = Specialize.all_on }
  in
  (Taxogram.run (Taxogram.Spec.collect ~config ()) t db).Taxogram.patterns

let mined_store ?db:interest_db ?(theta = 0.5) t db =
  Store.build ~taxonomy:t ?db:interest_db ~db_size:(Db.size db)
    (mine ~theta t db)

let fresh_engine ?cache_capacity store =
  Engine.create ?cache_capacity ~metrics:(Metrics.create ()) store

(* --- Lru ------------------------------------------------------------------ *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  check bool "a evicted" false (Lru.mem c "a");
  check int "length" 2 (Lru.length c);
  check Alcotest.(list string) "mru order" [ "c"; "b" ] (Lru.keys c)

let test_lru_find_promotes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check (Alcotest.option int) "find a" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  (* b was least recently used after the find *)
  check bool "b evicted" false (Lru.mem c "b");
  check bool "a kept" true (Lru.mem c "a")

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "a" 10;
  check int "no duplicate" 1 (Lru.length c);
  check (Alcotest.option int) "updated" (Some 10) (Lru.find c "a")

let test_lru_disabled () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  check int "stays empty" 0 (Lru.length c);
  check (Alcotest.option int) "always misses" None (Lru.find c "a")

let test_lru_clear () =
  let c = Lru.create ~capacity:4 in
  List.iter (fun k -> Lru.add c k 0) [ "a"; "b"; "c" ];
  Lru.clear c;
  check int "cleared" 0 (Lru.length c);
  check Alcotest.(list string) "no keys" [] (Lru.keys c);
  Lru.add c "d" 1;
  check (Alcotest.option int) "usable after clear" (Some 1) (Lru.find c "d")

let lru_model_prop =
  (* against a naive list model of recency *)
  QCheck.Test.make ~name:"lru agrees with list model" ~count:200
    QCheck.(list (pair (int_bound 9) bool))
    (fun ops ->
      let cap = 3 in
      let c = Lru.create ~capacity:cap in
      let model = ref [] in
      List.iter
        (fun (k, is_add) ->
          let key = string_of_int k in
          if is_add then begin
            Lru.add c key k;
            model := (key, k) :: List.remove_assoc key !model;
            if List.length !model > cap then
              model := List.filteri (fun i _ -> i < cap) !model
          end
          else begin
            let expect = List.assoc_opt key !model in
            if Lru.find c key <> expect then raise Exit;
            match expect with
            | Some _ ->
              model := (key, List.assoc key !model)
                       :: List.remove_assoc key !model
            | None -> ()
          end)
        ops;
      List.map fst !model = Lru.keys c)

(* --- Store indexes -------------------------------------------------------- *)

let scan_generalizing t patterns l =
  (* patterns with a node label that is an ancestor of l *)
  List.filteri (fun _ _ -> true) patterns
  |> List.mapi (fun i p -> (i, p))
  |> List.filter_map (fun (i, (p : Pattern.t)) ->
         if
           List.exists
             (fun pl -> Taxonomy.is_ancestor t ~anc:pl l)
             (Graph.distinct_node_labels p.Pattern.graph)
         then Some i
         else None)

let scan_mentioning t patterns l =
  List.mapi (fun i p -> (i, p)) patterns
  |> List.filter_map (fun (i, (p : Pattern.t)) ->
         if
           List.exists
             (fun pl -> Taxonomy.is_ancestor t ~anc:l pl)
             (Graph.distinct_node_labels p.Pattern.graph)
         then Some i
         else None)

let test_store_indexes_small () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let patterns = mine t db in
  let store = Store.build ~taxonomy:t ~db_size:(Db.size db) patterns in
  check int "store size" (List.length patterns) (Store.size store);
  check int "db size" 2 (Store.db_size store);
  for l = 0 to Taxonomy.label_count t - 1 do
    check ints
      (Printf.sprintf "generalizing %s" (Taxonomy.name t l))
      (scan_generalizing t patterns l)
      (Bitset.to_list (Store.generalizing store l));
    check ints
      (Printf.sprintf "mentioning %s" (Taxonomy.name t l))
      (scan_mentioning t patterns l)
      (Bitset.to_list (Store.mentioning store l))
  done;
  (* out-of-taxonomy labels hit nothing *)
  check ints "unknown label" [] (Bitset.to_list (Store.generalizing store 999));
  check ints "unknown label" [] (Bitset.to_list (Store.mentioning store 999))

let test_store_edge_buckets_and_support_order () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let patterns = mine t db in
  let store = Store.build ~taxonomy:t ~db_size:(Db.size db) patterns in
  let all = List.mapi (fun i _ -> i) patterns in
  List.iter
    (fun k ->
      let expect =
        List.filter (fun i -> Pattern.edge_count (List.nth patterns i) <= k) all
      in
      check ints
        (Printf.sprintf "at most %d edges" k)
        expect
        (Bitset.to_list (Store.with_at_most_edges store k)))
    [ 0; 1; 2; 3; 99 ];
  let order = Array.to_list (Store.by_support store) in
  check int "order covers all" (List.length patterns) (List.length order);
  let rec descending = function
    | a :: (b :: _ as rest) ->
      (Store.pattern store a).Pattern.support_count
      >= (Store.pattern store b).Pattern.support_count
      && descending rest
    | _ -> true
  in
  check bool "support descending" true (descending order)

let test_store_rejects_foreign_labels () =
  let t = small_taxonomy () in
  let p =
    Pattern.make ~db_size:1
      (g ~labels:[| 99 |] ~edges:[])
      (Bitset.of_list 1 [ 0 ])
  in
  check bool "invalid label rejected" true
    (match Store.build ~taxonomy:t ~db_size:1 [ p ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_store_load_merges_files () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let patterns = mine t db in
  let node_labels = Taxonomy.labels t in
  let edge_labels = Label.of_names [ "e0" ] in
  let file suffix patterns db_size =
    let path = Filename.temp_file "tsg_store" suffix in
    Tsg_core.Pattern_io.save path ~node_labels ~edge_labels ~db_size patterns;
    path
  in
  let f1 = file "a.pat" patterns 2 in
  let f2 = file "b.pat" [ List.hd patterns ] 5 in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove f1;
      Sys.remove f2)
    (fun () ->
      let store = Store.load ~taxonomy:t ~edge_labels [ f1; f2 ] in
      check int "patterns merged" (List.length patterns + 1) (Store.size store);
      check int "db size is max" 5 (Store.db_size store))

(* --- Engine --------------------------------------------------------------- *)

let test_contains_matches_brute_force_small () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let engine = fresh_engine (mined_store t db) in
  Db.iteri
    (fun gid target ->
      let brute = Engine.contains_brute engine target in
      check ints
        (Printf.sprintf "graph %d" gid)
        brute
        (Engine.contains engine target);
      (* prefilter is sound: candidates is a superset of the answer *)
      let cands = Store.candidates (Engine.store engine) target in
      List.iter
        (fun i -> check bool "candidate superset" true (Bitset.mem cands i))
        brute)
    db

let test_contains_cache_hit () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let engine = fresh_engine (mined_store t db) in
  let metrics = Engine.metrics engine in
  let hits = Metrics.counter metrics "cache.hits" in
  let target = g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ] in
  let first = Engine.contains engine target in
  check int "cold miss" 0 (Metrics.value hits);
  let second = Engine.contains engine target in
  check ints "same answer" first second;
  check int "warm hit" 1 (Metrics.value hits);
  (* an isomorphic spelling shares the DFS-code cache key *)
  let twisted = g ~labels:[| id t "f"; id t "d" |] ~edges:[ (0, 1, 0) ] in
  check ints "isomorphic answer" first (Engine.contains engine twisted);
  check int "isomorphic hit" 2 (Metrics.value hits);
  check bool "hit rate" true (Engine.cache_hit_rate engine > 0.5)

let test_contains_cache_disabled () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let engine = fresh_engine ~cache_capacity:0 (mined_store t db) in
  let target = g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ] in
  let a = Engine.contains engine target in
  let b = Engine.contains engine target in
  check ints "still correct" a b;
  check int "no hits ever" 0
    (Metrics.value (Metrics.counter (Engine.metrics engine) "cache.hits"))

let test_by_label () =
  let t = go_excerpt () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "carrier"; id t "dna_helicase" |] ~edges:[ (0, 1, 0) ];
        g
          ~labels:[| id t "cation_transporter"; id t "helicase" |]
          ~edges:[ (0, 1, 0) ];
      ]
  in
  let store = mined_store ~theta:1.0 t db in
  let engine = fresh_engine store in
  (* the single mined pattern is transporter-helicase *)
  check int "one pattern" 1 (Store.size store);
  check ints "by transporter" [ 0 ] (Engine.by_label engine (id t "transporter"));
  check ints "by helicase" [ 0 ] (Engine.by_label engine (id t "helicase"));
  (* taxonomy-aware: the root generalizes both mentioned labels *)
  check ints "by molecular_function" [ 0 ]
    (Engine.by_label engine (id t "molecular_function"));
  (* a sibling specialization is not mentioned *)
  check ints "by dna_helicase" [] (Engine.by_label engine (id t "dna_helicase"));
  check ints "out of range" [] (Engine.by_label engine 999)

let test_top_k_support () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let store = mined_store t db in
  let engine = fresh_engine store in
  let all = Engine.top_k engine ~k:max_int `Support in
  check int "all patterns" (Store.size store) (List.length all);
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | _ -> true
  in
  check bool "scores descending" true (descending all);
  List.iter
    (fun (i, s) ->
      check (Alcotest.float 1e-9) "score is support"
        (Store.pattern store i).Pattern.support s)
    all;
  check int "k truncates" 1 (List.length (Engine.top_k engine ~k:1 `Support));
  check int "k zero" 0 (List.length (Engine.top_k engine ~k:0 `Support))

let test_top_k_interest () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let store = mined_store ~db t db in
  let engine = fresh_engine store in
  let ranked = Engine.top_k engine ~k:max_int `Interest in
  check int "all ranked" (Store.size store) (List.length ranked);
  let freq = Interest.label_frequencies t db in
  List.iter
    (fun (i, s) ->
      check (Alcotest.float 1e-9) "score is interest ratio"
        (Interest.ratio t db ~freq (Store.pattern store i))
        s)
    ranked;
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | _ -> true
  in
  check bool "descending" true (descending ranked);
  (* without the database the ranking is unavailable *)
  let engine = fresh_engine (mined_store t db) in
  check bool "needs db" true
    (match Engine.top_k engine ~k:1 `Interest with
    | exception Failure _ -> true
    | _ -> false)

(* --- Protocol ------------------------------------------------------------- *)

let test_protocol_parse () =
  let t = small_taxonomy () in
  let edge_labels = Label.of_names [ "e0"; "e1" ] in
  let parse s = Protocol.parse ~taxonomy:t ~edge_labels s in
  (match[@warning "-4"] parse "contains d,f 0-1" with
  | Some (Protocol.Contains g) ->
    check int "nodes" 2 (Graph.node_count g);
    check int "edges" 1 (Graph.edge_count g);
    check int "label 0" (id t "d") (Graph.node_label g 0)
  | _ -> Alcotest.fail "expected contains");
  (match[@warning "-4"] parse "contains d -" with
  | Some (Protocol.Contains g) ->
    check int "single node" 1 (Graph.node_count g);
    check int "edgeless" 0 (Graph.edge_count g)
  | _ -> Alcotest.fail "expected edgeless contains");
  (match[@warning "-4"] parse "contains d,f,e 0-1/e1,1-2" with
  | Some (Protocol.Contains g) ->
    check (Alcotest.option int) "edge label" (Some 1) (Graph.edge_label g 0 1);
    check (Alcotest.option int) "default label" (Some 0) (Graph.edge_label g 1 2)
  | _ -> Alcotest.fail "expected labeled contains");
  (match[@warning "-4"] parse "by-label b" with
  | Some (Protocol.By_label l) -> check int "label id" (id t "b") l
  | _ -> Alcotest.fail "expected by-label");
  check bool "top-k support" true
    (parse "top-k 5 support" = Some (Protocol.Top_k (5, `Support)));
  check bool "top-k interest" true
    (parse "top-k 3 interest" = Some (Protocol.Top_k (3, `Interest)));
  check bool "stats" true (parse "stats" = Some Protocol.Stats);
  check bool "quit" true (parse "quit" = Some Protocol.Quit);
  check bool "blank" true (parse "   " = None);
  check bool "comment" true (parse "# hello" = None)

let test_protocol_errors () =
  let t = small_taxonomy () in
  let edge_labels = Label.create () in
  let expect_error s =
    match[@warning "-4"] Protocol.parse ~taxonomy:t ~edge_labels s with
    | exception Protocol.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected Parse_error for " ^ s)
  in
  expect_error "contains z 0-1";
  expect_error "contains d,f 0_1";
  expect_error "contains d,f 0-5";
  expect_error "contains d,f 0-0";
  expect_error "by-label nosuch";
  expect_error "top-k x support";
  expect_error "top-k -1 support";
  expect_error "top-k 5 folly";
  expect_error "frobnicate";
  (* unseen edge labels are interned, not rejected: the query graph is a
     target, not a pattern *)
  match[@warning "-4"] Protocol.parse ~taxonomy:t ~edge_labels "contains d,f 0-1/novel" with
  | Some (Protocol.Contains _) ->
    check bool "interned" true (Label.mem edge_labels "novel")
  | _ -> Alcotest.fail "expected contains"

let test_protocol_format_roundtrip () =
  let t = small_taxonomy () in
  let edge_labels = Label.of_names [ "e0"; "e1"; "e2" ] in
  let names = Taxonomy.labels t in
  List.iter
    (fun graph ->
      let spec = Protocol.format_graph ~names ~edge_labels graph in
      match[@warning "-4"] Protocol.parse ~taxonomy:t ~edge_labels ("contains " ^ spec) with
      | Some (Protocol.Contains g) ->
        check bool ("round-trip " ^ spec) true (Graph.equal graph g)
      | _ -> Alcotest.fail ("no parse for " ^ spec))
    [
      g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ];
      g ~labels:[| id t "a" |] ~edges:[];
      g
        ~labels:[| id t "b"; id t "c"; id t "e" |]
        ~edges:[ (0, 1, 2); (1, 2, 0); (0, 2, 1) ];
    ]

(* --- Epoch ----------------------------------------------------------------- *)

let test_epoch_roundtrip_and_order () =
  let e = Epoch.make ~seq:7L ~sum:0xffL in
  check Alcotest.string "wire format" "7.00000000000000ff" (Epoch.to_string e);
  (match Epoch.of_string (Epoch.to_string e) with
  | Some e' -> check bool "of_string round-trips" true (Epoch.equal e e')
  | None -> Alcotest.fail "wire format did not parse back");
  check Alcotest.string "zero epoch" "0.0000000000000000"
    (Epoch.to_string Epoch.zero);
  check bool "garbage rejected" true
    (Epoch.of_string "nope" = None
    && Epoch.of_string "1" = None
    && Epoch.of_string "1.xyz" = None);
  check bool "sequence dominates the order" true
    (Epoch.compare (Epoch.make ~seq:2L ~sum:0L) (Epoch.make ~seq:1L ~sum:99L)
    > 0);
  check bool "checksum breaks sequence ties" true
    (Epoch.compare (Epoch.make ~seq:1L ~sum:2L) (Epoch.make ~seq:1L ~sum:1L)
    > 0)

let test_epoch_stamp_verify_payload () =
  let body = "# a comment\npattern lines\n" in
  let stamped = Epoch.stamp ~seq:42L body in
  check bool "stamped artifact detected" true (Epoch.has_stamp stamped);
  check bool "plain content has no stamp" true (not (Epoch.has_stamp body));
  check bool "stamp sequence recovered" true (Epoch.stamp_seq stamped = Some 42L);
  check Alcotest.string "payload strips the stamp" body (Epoch.payload stamped);
  check Alcotest.string "payload of unstamped content is the identity" body
    (Epoch.payload body);
  (match Epoch.verify_stamp stamped with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check bool "unstamped content verifies trivially" true
    (Epoch.verify_stamp body = Ok ());
  (* flip one payload byte: the stamp fingerprint must catch it *)
  let torn = Bytes.of_string stamped in
  Bytes.set torn (Bytes.length torn - 2) 'X';
  (match Epoch.verify_stamp (Bytes.to_string torn) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered payload passed verification");
  (* of_sources: newest stamp sequence, content-sensitive checksum *)
  let e =
    Epoch.of_sources
      [ ("a", Epoch.stamp ~seq:3L "x"); ("b", Epoch.stamp ~seq:9L "y") ]
  in
  check bool "sequence is the newest stamp" true (Epoch.seq e = 9L);
  let e' =
    Epoch.of_sources
      [ ("a", Epoch.stamp ~seq:3L "x"); ("b", Epoch.stamp ~seq:9L "z") ]
  in
  check bool "changed bytes change the epoch" true (not (Epoch.equal e e'));
  check bool "unstamped sources fall back to sequence 0" true
    (Epoch.seq (Epoch.of_sources [ ("a", "x") ]) = 0L)

(* --- Serve end-to-end ------------------------------------------------------ *)

let run_serve ?domains ?epoch store requests =
  let edge_labels = Label.of_names [ "e0" ] in
  let metrics = Metrics.create () in
  let engine = Engine.create ?epoch ~metrics store in
  let req_path = Filename.temp_file "tsg_serve" ".req" in
  let out_path = Filename.temp_file "tsg_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out req_path in
      output_string oc requests;
      close_out oc;
      let ic = open_in req_path and oc = open_out out_path in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            close_in ic;
            close_out oc)
          (fun () ->
            let exec =
              Option.map
                (fun d -> Tsg_util.Pool.Exec.create ~domains:d ())
                domains
            in
            Serve.run ?exec ~engine ~edge_labels ic oc)
      in
      let ic = open_in out_path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (outcome, text, metrics))

let test_serve_end_to_end () =
  let t = go_excerpt () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "carrier"; id t "dna_helicase" |] ~edges:[ (0, 1, 0) ];
        g
          ~labels:[| id t "cation_transporter"; id t "helicase" |]
          ~edges:[ (0, 1, 0) ];
      ]
  in
  let store = mined_store ~theta:1.0 t db in
  let requests =
    String.concat "\n"
      [
        "# warm-up";
        "contains carrier,dna_helicase 0-1";
        "contains dna_helicase,carrier 1-0";
        "by-label transporter";
        "top-k 2 support";
        "top-k 1 interest";
        "bogus";
        "stats";
        "quit";
        "";
      ]
  in
  let outcome, text, metrics = run_serve ~domains:2 store requests in
  check int "requests" 8 outcome.Serve.requests;
  check int "errors" 2 outcome.Serve.errors;
  check bool "quit seen" true outcome.Serve.quit;
  let lines = String.split_on_char '\n' text in
  let oks = List.filter (fun l -> l = "ok 1") lines in
  (* two contains, one by-label, one top-k *)
  check int "four single-result responses" 4 (List.length oks);
  check bool "pattern line present" true
    (List.exists
       (fun l ->
         l = "p 0 support 2/2 pattern[sup=2 (1.00)] 0:transporter 1:helicase \
              (0-1)")
       lines);
  let has_prefix p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  (* stable machine-readable error codes: top-k interest without a db is
     UNAVAILABLE, a malformed request is BADREQ *)
  check bool "interest error coded UNAVAILABLE" true
    (List.exists (has_prefix "error UNAVAILABLE") lines);
  check bool "bogus request coded BADREQ" true
    (List.exists (has_prefix "error BADREQ") lines);
  check bool "stats markers" true
    (List.mem "begin stats" lines && List.mem "end stats" lines);
  (* the second (isomorphic) contains was served from the cache *)
  check int "cache hit recorded" 1
    (Metrics.value (Metrics.counter metrics "cache.hits"))

let test_serve_parallel_matches_sequential () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let store = mined_store t db in
  let names = Taxonomy.labels t in
  let edge_labels = Label.of_names [ "e0" ] in
  let requests =
    (Db.to_list db
    |> List.map (fun graph ->
           "contains " ^ Protocol.format_graph ~names ~edge_labels graph))
    @ [ "by-label b"; "top-k 10 support" ]
  in
  let text = String.concat "\n" (requests @ [ "" ]) in
  let _, sequential, _ = run_serve ~domains:1 store text in
  let _, parallel, _ = run_serve ~domains:4 store text in
  check Alcotest.string "responses identical in order" sequential parallel

let test_serve_epoch_pin () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let store = mined_store t db in
  let epoch = Epoch.make ~seq:5L ~sum:0xabcdL in
  let e = Epoch.to_string epoch in
  let has_prefix p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let has_suffix s l =
    String.length l >= String.length s
    && String.sub l (String.length l - String.length s) (String.length s) = s
  in
  let requests =
    String.concat "\n"
      [
        "epoch";
        Printf.sprintf "at %s top-k 1 support" e;
        "at 4.0000000000000000 top-k 1 support";
        "health";
        "quit";
        "";
      ]
  in
  let outcome, text, metrics = run_serve ~epoch store requests in
  let lines = String.split_on_char '\n' text in
  check bool "epoch verb reports the serving epoch" true
    (List.mem (Printf.sprintf "ok epoch %s" e) lines);
  check bool "matching pin is answered" true
    (List.exists (has_prefix "ok 1") lines);
  check bool "mismatched pin answers STALE_EPOCH, computing nothing" true
    (List.exists (has_prefix "error STALE_EPOCH") lines);
  check bool "health carries the epoch" true
    (List.exists
       (fun l -> has_prefix "ok health" l && has_suffix (" epoch " ^ e) l)
       lines);
  check int "the stale pin is the only error" 1 outcome.Serve.errors;
  check int "stale pins counted" 1
    (Metrics.value (Metrics.counter metrics "serve.stale_epoch"))

(* --- properties: engine = brute force over random instances ---------------- *)

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      {
        concepts;
        relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3;
      }
  in
  let nlabels = Taxonomy.label_count tax in
  let ngraphs = 3 + Prng.int rng 3 in
  let graphs =
    List.init ngraphs (fun _ ->
        let n = 2 + Prng.int rng 4 in
        let labels = Array.init n (fun _ -> Prng.int rng nlabels) in
        let edges = ref [] in
        for v = 1 to n - 1 do
          edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
        done;
        g ~labels ~edges:!edges)
  in
  (tax, Db.of_list graphs)

let arb_instance =
  QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 2))

let theta_of = function 0 -> 1.0 | 1 -> 0.5 | _ -> 0.34

let contains_equals_brute_prop =
  QCheck.Test.make ~name:"contains (index + cache) = brute-force iso scan"
    ~count:60 arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let engine = fresh_engine (mined_store ~theta:(theta_of k) tax db) in
      Db.fold
        (fun ok target ->
          ok
          && Engine.contains engine target = Engine.contains_brute engine target
          (* repeat: the cached answer must be identical *)
          && Engine.contains engine target = Engine.contains_brute engine target)
        true db)

let by_label_equals_scan_prop =
  QCheck.Test.make ~name:"by-label = direct descendant scan" ~count:60
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let patterns = mine ~theta:(theta_of k) tax db in
      let engine =
        fresh_engine
          (Store.build ~taxonomy:tax ~db_size:(Db.size db) patterns)
      in
      List.for_all
        (fun l -> Engine.by_label engine l = scan_mentioning tax patterns l)
        (List.init (Taxonomy.label_count tax) (fun i -> i)))

let candidates_sound_prop =
  QCheck.Test.make ~name:"index prefilter never drops a true match" ~count:60
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let store = mined_store ~theta:(theta_of k) tax db in
      let engine = fresh_engine store in
      Db.fold
        (fun ok target ->
          ok
          &&
          let cands = Store.candidates store target in
          List.for_all
            (fun i -> Bitset.mem cands i)
            (Engine.contains_brute engine target))
        true db)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "query"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction" `Quick test_lru_eviction;
          Alcotest.test_case "find promotes" `Quick test_lru_find_promotes;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "capacity 0" `Quick test_lru_disabled;
          Alcotest.test_case "clear" `Quick test_lru_clear;
        ]
        @ qsuite [ lru_model_prop ] );
      ( "store",
        [
          Alcotest.test_case "inverted indexes" `Quick test_store_indexes_small;
          Alcotest.test_case "edge buckets + support order" `Quick
            test_store_edge_buckets_and_support_order;
          Alcotest.test_case "foreign labels rejected" `Quick
            test_store_rejects_foreign_labels;
          Alcotest.test_case "load merges files" `Quick
            test_store_load_merges_files;
        ] );
      ( "engine",
        [
          Alcotest.test_case "contains = brute force" `Quick
            test_contains_matches_brute_force_small;
          Alcotest.test_case "cache hits" `Quick test_contains_cache_hit;
          Alcotest.test_case "cache disabled" `Quick
            test_contains_cache_disabled;
          Alcotest.test_case "by-label" `Quick test_by_label;
          Alcotest.test_case "top-k support" `Quick test_top_k_support;
          Alcotest.test_case "top-k interest" `Quick test_top_k_interest;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
          Alcotest.test_case "format round-trip" `Quick
            test_protocol_format_roundtrip;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "wire format round-trip and order" `Quick
            test_epoch_roundtrip_and_order;
          Alcotest.test_case "stamp, verify, payload" `Quick
            test_epoch_stamp_verify_payload;
        ] );
      ( "serve",
        [
          Alcotest.test_case "end to end" `Quick test_serve_end_to_end;
          Alcotest.test_case "parallel = sequential" `Quick
            test_serve_parallel_matches_sequential;
          Alcotest.test_case "epoch pin" `Quick test_serve_epoch_pin;
        ] );
      ( "properties",
        qsuite
          [
            contains_equals_brute_prop;
            by_label_equals_scan_prop;
            candidates_sound_prop;
          ] );
    ]
