module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng
module Gen_iso = Tsg_iso.Gen_iso
module Gspan = Tsg_gspan.Gspan
module Pattern = Tsg_core.Pattern
module Relabel = Tsg_core.Relabel
module Occ_index = Tsg_core.Occ_index
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram
module Tacgm = Tsg_core.Tacgm
module Naive = Tsg_core.Naive

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let g ~labels ~edges = Graph.build ~labels ~edges

(* taxonomy: a -> {b, c}; b -> {d, e}; c -> {f} *)
let small_taxonomy () =
  Taxonomy.build
    ~names:[ "a"; "b"; "c"; "d"; "e"; "f" ]
    ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c") ]

(* the GO excerpt of the paper's Figure 1.1, with a two-pathway database in
   the spirit of Figure 1.2 *)
let go_excerpt () =
  Taxonomy.build
    ~names:
      [ "molecular_function"; "transporter"; "catalytic_activity"; "carrier";
        "cation_transporter"; "helicase"; "dna_helicase" ]
    ~is_a:
      [
        ("transporter", "molecular_function");
        ("catalytic_activity", "molecular_function");
        ("carrier", "transporter");
        ("cation_transporter", "transporter");
        ("helicase", "catalytic_activity");
        ("dna_helicase", "helicase");
      ]

let id t n = Taxonomy.id_of_name t n

let config ?(max_edges = Some 3) theta =
  { Taxogram.min_support = theta; max_edges;
    enhancements = Specialize.all_on }

let pattern_strings t ps =
  let names = Taxonomy.labels t in
  List.map (Pattern.to_string ~names) (Pattern.sort ps)

(* --- Pattern -------------------------------------------------------------- *)

let test_pattern_make () =
  let set = Bitset.of_list 4 [ 0; 2 ] in
  let p = Pattern.make ~db_size:4 (g ~labels:[| 1; 2 |] ~edges:[ (0, 1, 0) ]) set in
  check int "count" 2 p.Pattern.support_count;
  check (Alcotest.float 1e-9) "support" 0.5 p.Pattern.support;
  check int "edges" 1 (Pattern.edge_count p);
  check int "nodes" 2 (Pattern.node_count p)

let test_pattern_key_iso () =
  let set = Bitset.of_list 1 [ 0 ] in
  let p1 = Pattern.make ~db_size:1 (g ~labels:[| 1; 2 |] ~edges:[ (0, 1, 0) ]) set in
  let p2 = Pattern.make ~db_size:1 (g ~labels:[| 2; 1 |] ~edges:[ (0, 1, 0) ]) set in
  check Alcotest.string "isomorphic same key" (Pattern.key p1) (Pattern.key p2);
  check int "compare 0" 0 (Pattern.compare p1 p2);
  check bool "equal_sets" true (Pattern.equal_sets [ p1 ] [ p2 ]);
  let p3 = Pattern.make ~db_size:1 (g ~labels:[| 1; 3 |] ~edges:[ (0, 1, 0) ]) set in
  check bool "different not equal" false (Pattern.equal_sets [ p1 ] [ p3 ])

(* --- Relabel --------------------------------------------------------------- *)

let test_relabel () =
  let t = small_taxonomy () in
  let graph = g ~labels:[| id t "d"; id t "f"; id t "a" |] ~edges:[ (0, 1, 0); (1, 2, 1) ] in
  let relabeled = Relabel.graph t graph in
  List.iter
    (fun v -> check int "most general" (id t "a") (Graph.node_label relabeled v))
    [ 0; 1; 2 ];
  check int "edges kept" 2 (Graph.edge_count relabeled);
  let db = Relabel.db t (Db.of_list [ graph ]) in
  check int "db size" 1 (Db.size db)

(* --- Occ_index ------------------------------------------------------------ *)

let two_graph_db t =
  Db.of_list
    [
      g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ];
      g ~labels:[| id t "e"; id t "f" |] ~edges:[ (0, 1, 0) ];
    ]

let build_oi ?keep_label t db =
  let relabeled = Relabel.db t db in
  let classes = Gspan.mine_list ~min_support:2 relabeled in
  check int "one class" 1 (List.length classes);
  Occ_index.build ~taxonomy:t ~original:db ?keep_label (List.hd classes)

let test_occ_index_build () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let oi = build_oi t db in
  check int "positions" 2 (Graph.node_count oi.Occ_index.class_graph);
  (* the a-a class: both orientations of both edges = 4 occurrences *)
  check int "occurrences" 4 oi.Occ_index.occ_count;
  check (Alcotest.list int) "occ graph ids sorted per embedding order" [ 0; 1 ]
    (List.sort_uniq compare (Array.to_list oi.Occ_index.occ_gid));
  (* position tables: label a covers everything *)
  (match Occ_index.occurrence_set oi ~position:0 (id t "a") with
  | Some s -> check int "a covers all" 4 (Bitset.cardinal s)
  | None -> Alcotest.fail "a missing");
  (* d appears at position 0 only via graph 0's orientations *)
  (match Occ_index.occurrence_set oi ~position:0 (id t "d") with
  | Some s ->
    check int "d occurrences" 1 (Occ_index.distinct_graph_count oi s)
  | None -> Alcotest.fail "d missing");
  check bool "c covered via f's ancestors" true
    (Occ_index.occurrence_set oi ~position:0 (id t "c") <> None);
  let covered = Occ_index.covered_labels oi ~position:0 in
  check bool "covered contains a,b" true
    (List.mem (id t "a") covered && List.mem (id t "b") covered)

let test_occ_index_graph_set () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let oi = build_oi t db in
  let all = oi.Occ_index.all_occs in
  check int "distinct graphs" 2 (Occ_index.distinct_graph_count oi all);
  check (Alcotest.list int) "graph set" [ 0; 1 ]
    (Bitset.to_list (Occ_index.graph_set oi all))

let test_occ_index_keep_label () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  (* filter out 'd' (frequency 1 of 2) *)
  let keep l = l <> id t "d" in
  let oi = build_oi ~keep_label:keep t db in
  check bool "d filtered" true
    (Occ_index.occurrence_set oi ~position:0 (id t "d") = None);
  check bool "b kept" true
    (Occ_index.occurrence_set oi ~position:0 (id t "b") <> None)

(* --- Specialize & Taxogram: hand-computed examples ------------------------- *)

(* D = { d-f, e-f }, theta = 1: the only non-over-generalized pattern with
   support 2 is b-f (see DESIGN.md): every generalization of it has the same
   support, and every specialization has support 1. *)
let test_taxogram_hand_example () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  check int "one class" 1 r.Taxogram.class_count;
  check int "one pattern" 1 r.Taxogram.pattern_count;
  check (Alcotest.list Alcotest.string) "pattern is b-f"
    [ "pattern[sup=2 (1.00)] 0:b 1:f (0-1)" ]
    (pattern_strings t r.Taxogram.patterns)

(* Example 1.1 of the paper: two pathways share no explicit edge, yet the
   generalized pattern transporter-helicase is in both. *)
let test_taxogram_go_excerpt () =
  let t = go_excerpt () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "carrier"; id t "dna_helicase" |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| id t "cation_transporter"; id t "helicase" |] ~edges:[ (0, 1, 0) ];
      ]
  in
  (* traditional (exact) mining finds nothing *)
  let exact = Gspan.mine_list ~min_support:2 db in
  check int "gspan alone finds nothing" 0 (List.length exact);
  (* Taxogram finds the implicit pattern *)
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  check (Alcotest.list Alcotest.string) "transporter-helicase"
    [ "pattern[sup=2 (1.00)] 0:transporter 1:helicase (0-1)" ]
    (pattern_strings t r.Taxogram.patterns)

let test_taxogram_no_patterns_below_support () =
  let t = small_taxonomy () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "d"; id t "d" |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| id t "f"; id t "f" |] ~edges:[ (0, 1, 1) ];
      ]
  in
  (* different edge labels: no pattern occurs in both graphs *)
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  check int "nothing at theta 1" 0 r.Taxogram.pattern_count;
  (* at theta 0.5 both a-a variants qualify *)
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t db in
  check bool "patterns at theta 0.5" true (r.Taxogram.pattern_count > 0)

let test_taxogram_flat_taxonomy_equals_gspan () =
  (* with a flat taxonomy Taxogram degenerates to plain gSpan *)
  let t =
    Taxonomy.build ~names:[ "x"; "y"; "z" ] ~is_a:[]
  in
  let db =
    Db.of_list
      [
        g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
        g ~labels:[| 0; 1; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
      ]
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  let mined = Gspan.mine_list ~min_support:2 db in
  check int "same count" (List.length mined) r.Taxogram.pattern_count;
  let keys l = List.sort compare (List.map (fun p -> Pattern.key p) l) in
  let gspan_keys =
    List.sort compare
      (List.map
         (fun p -> Tsg_gspan.Min_code.canonical_key p.Gspan.graph)
         mined)
  in
  check (Alcotest.list Alcotest.string) "same patterns" gspan_keys
    (keys r.Taxogram.patterns)

let test_taxogram_max_edges () =
  let t = small_taxonomy () in
  let db =
    Db.of_list
      [ g ~labels:[| id t "d"; id t "f"; id t "d" |] ~edges:[ (0, 1, 0); (1, 2, 0) ] ]
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config ~max_edges:(Some 1) 1.0) ()) t db in
  check bool "only 1-edge patterns" true
    (List.for_all (fun p -> Pattern.edge_count p = 1) r.Taxogram.patterns)

let test_taxogram_streaming_equals_run () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let streamed = ref [] in
  let result =
    Taxogram.run (Taxogram.Spec.stream ~config:(config 0.5) ~domains:1 (fun p -> streamed := p :: !streamed))
      t db
  in
  let direct = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t db in
  check bool "same patterns" true
    (Pattern.equal_sets !streamed direct.Taxogram.patterns);
  check int "count matches" result.Taxogram.pattern_count
    (List.length !streamed);
  check int "empty patterns field" 0 (List.length result.Taxogram.patterns)

let test_taxogram_timing_fields () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  check bool "timings non-negative" true
    (r.Taxogram.relabel_wall_seconds >= 0.0
    && r.Taxogram.mining_wall_seconds >= 0.0
    && r.Taxogram.enumerate_wall_seconds >= 0.0
    && r.Taxogram.total_wall_seconds >= 0.0);
  check bool "stats populated" true
    (r.Taxogram.spec_stats.Specialize.intersections > 0);
  check bool "occurrence-index accounting populated" true
    (r.Taxogram.oi_entries > 0 && r.Taxogram.oi_set_members > 0);
  (* without the label prefilter the indices can only grow *)
  let r' = Taxogram.run (Taxogram.Spec.collect ~config:(Taxogram.baseline_config) ()) t db in
  check bool "prefilter shrinks indices" true
    (r.Taxogram.oi_entries <= r'.Taxogram.oi_entries)

let test_frequent_label_filter () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let keep = Taxogram.frequent_label_filter t db ~min_support:2 in
  check bool "a frequent" true (keep (id t "a"));
  check bool "b frequent (d,e under it)" true (keep (id t "b"));
  check bool "f frequent" true (keep (id t "f"));
  check bool "d infrequent" false (keep (id t "d"));
  check bool "out of range" false (keep 999);
  (* upward closure: every ancestor of a kept label is kept *)
  List.iter
    (fun l ->
      if keep l then
        List.iter
          (fun anc -> check bool "upward closed" true (keep anc))
          (Taxonomy.strict_ancestors t l))
    (List.init (Taxonomy.label_count t) (fun i -> i))

(* over-generalization subtleties: Lemma 3 — an over-generalized pattern can
   have a non-over-generalized generalization. *)
let test_lemma3_shape () =
  (* taxonomy: a -> {b, c}; D: two graphs both containing b-x; one also c-x.
     With x flat. Pattern (a-x) support 2; (b-x) support 2 -> (a-x)
     over-generalized. *)
  let t =
    Taxonomy.build ~names:[ "a"; "b"; "c"; "x" ]
      ~is_a:[ ("b", "a"); ("c", "a") ]
  in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "b"; id t "x" |] ~edges:[ (0, 1, 0) ];
        g
          ~labels:[| id t "b"; id t "x"; id t "c" |]
          ~edges:[ (0, 1, 0); (1, 2, 0) ];
      ]
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  let strings = pattern_strings t r.Taxogram.patterns in
  check bool "b-x survives" true
    (List.exists (fun s -> s = "pattern[sup=2 (1.00)] 0:b 1:x (0-1)") strings);
  check bool "a-x eliminated as over-generalized" true
    (not (List.exists (fun s -> s = "pattern[sup=2 (1.00)] 0:a 1:x (0-1)") strings))

(* --- edge cases ------------------------------------------------------------- *)

let test_taxogram_empty_db () =
  let t = small_taxonomy () in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t (Db.of_list []) in
  check int "no classes" 0 r.Taxogram.class_count;
  check int "no patterns" 0 r.Taxogram.pattern_count

let test_taxogram_single_graph () =
  let t = small_taxonomy () in
  let db = Db.of_list [ g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ] ] in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  (* with one graph, the only non-over-generalized pattern is the fully
     specific d-f (all generalizations share its support) *)
  check (Alcotest.list Alcotest.string) "most specific survives"
    [ "pattern[sup=1 (1.00)] 0:d 1:f (0-1)" ]
    (pattern_strings t r.Taxogram.patterns)

let test_taxogram_edgeless_graphs () =
  let t = small_taxonomy () in
  let db =
    Db.of_list
      [
        Graph.build ~labels:[| id t "d" |] ~edges:[];
        Graph.build ~labels:[| id t "e" |] ~edges:[];
      ]
  in
  (* patterns need at least one edge: nothing to mine *)
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  check int "no patterns from edgeless graphs" 0 r.Taxogram.pattern_count

let test_edge_labels_distinguish_patterns () =
  let t = small_taxonomy () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 7) ];
        g ~labels:[| id t "e"; id t "f" |] ~edges:[ (0, 1, 7) ];
        g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 8) ];
      ]
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t db in
  let with_edge_label l =
    List.filter
      (fun (p : Pattern.t) ->
        Array.exists (fun (_, _, el) -> el = l) (Graph.edges p.Pattern.graph))
      r.Taxogram.patterns
  in
  (* b-f via edge label 7 has support 2; via edge label 8 only 1 *)
  check bool "label-7 patterns found" true (with_edge_label 7 <> []);
  check bool "label-8 patterns infrequent" true (with_edge_label 8 = []);
  List.iter
    (fun (p : Pattern.t) ->
      check int "support 2" 2 p.Pattern.support_count)
    r.Taxogram.patterns

let test_specialize_stats_consistent () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let stats = Specialize.fresh_stats () in
  let relabeled = Relabel.db t db in
  let classes = Gspan.mine_list ~min_support:2 relabeled in
  let oi = Occ_index.build ~taxonomy:t ~original:db (List.hd classes) in
  Specialize.enumerate ~taxonomy:t ~min_support:2
    ~enhancements:Specialize.all_off ~stats oi (fun _ -> ());
  check bool "emitted <= visited" true
    (stats.Specialize.emitted <= stats.Specialize.visited);
  check bool "over-generalized <= visited" true
    (stats.Specialize.over_generalized <= stats.Specialize.visited);
  check bool "did some intersections" true (stats.Specialize.intersections > 0)

let test_taxogram_time_budget () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let expired = Tsg_util.Timer.Budget.of_seconds (-1.0) in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ~budget:expired ()) t db in
  check bool "reported incomplete" false r.Taxogram.completed;
  let r' = Taxogram.run (Taxogram.Spec.collect ~config:(config 1.0) ()) t db in
  check bool "unlimited completes" true r'.Taxogram.completed

let test_run_parallel_equals_sequential () =
  let rng = Prng.of_int 17 in
  let t =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      { concepts = 60; relationships = 90; depth = 5 }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels t in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 25;
        max_edges = 8;
        edge_density = 0.3;
        edge_label_count = 2;
        node_label = sampler;
      }
  in
  let cfg = config ~max_edges:(Some 3) 0.2 in
  let sequential = Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) t db in
  List.iter
    (fun domains ->
      let parallel = Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains ()) t db in
      check bool
        (Printf.sprintf "parallel(%d) = sequential" domains)
        true
        (Pattern.equal_sets sequential.Taxogram.patterns
           parallel.Taxogram.patterns);
      check int "class counts agree" sequential.Taxogram.class_count
        parallel.Taxogram.class_count;
      check int "stats: visited agree"
        sequential.Taxogram.spec_stats.Specialize.visited
        parallel.Taxogram.spec_stats.Specialize.visited)
    [ 1; 2; 4 ]

let test_pattern_pp_edge_labels () =
  let set = Bitset.of_list 1 [ 0 ] in
  let names = Taxonomy.labels (small_taxonomy ()) in
  let p0 =
    Pattern.make ~db_size:1 (g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ]) set
  in
  let p9 =
    Pattern.make ~db_size:1 (g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 9) ]) set
  in
  check Alcotest.string "label 0 implicit" "pattern[sup=1 (1.00)] 0:a 1:b (0-1)"
    (Pattern.to_string ~names p0);
  check Alcotest.string "label 9 shown" "pattern[sup=1 (1.00)] 0:a 1:b (0-1/9)"
    (Pattern.to_string ~names p9)

(* --- enhancement configurations ------------------------------------------- *)

let enhancement_configs =
  [
    ("all on", Specialize.all_on);
    ("all off", Specialize.all_off);
    ("only (a)", { Specialize.all_off with child_pruning = true });
    ("only (b)", { Specialize.all_off with label_prefilter = true });
    ("only (c)", { Specialize.all_off with start_preprocess = true });
    ("only (d)", { Specialize.all_off with collapse_equal_children = true });
    ("(a)+(b)", { Specialize.all_off with child_pruning = true; label_prefilter = true });
    ("(c)+(d)", { Specialize.all_off with start_preprocess = true; collapse_equal_children = true });
  ]

let test_enhancements_equivalent () =
  let t = small_taxonomy () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "d"; id t "f"; id t "e" |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
        g ~labels:[| id t "e"; id t "f"; id t "d" |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
        g ~labels:[| id t "d"; id t "c" |] ~edges:[ (0, 1, 0) ];
      ]
  in
  let reference =
    (Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t db).Taxogram.patterns
  in
  List.iter
    (fun (name, enh) ->
      let r =
        Taxogram.run (Taxogram.Spec.collect ~config:{ (config 0.5) with enhancements = enh } ())
          t db
      in
      check bool (name ^ " equals all-on") true
        (Pattern.equal_sets reference r.Taxogram.patterns))
    enhancement_configs

let test_enhancements_reduce_work () =
  let rng = Prng.of_int 11 in
  let t =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      { concepts = 60; relationships = 90; depth = 5 }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels t in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 30;
        max_edges = 8;
        edge_density = 0.3;
        edge_label_count = 2;
        node_label = sampler;
      }
  in
  let run enh =
    let r =
      Taxogram.run (Taxogram.Spec.collect ~config:{ (config ~max_edges:(Some 3) 0.2) with enhancements = enh } ())
        t db
    in
    (r.Taxogram.patterns, r.Taxogram.spec_stats.Specialize.intersections)
  in
  let on_patterns, on_work = run Specialize.all_on in
  let off_patterns, off_work = run Specialize.all_off in
  check bool "same output" true (Pattern.equal_sets on_patterns off_patterns);
  check bool "enhancements reduce intersections" true (on_work <= off_work)

(* --- TAcGM ----------------------------------------------------------------- *)

let test_tacgm_hand_example () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r = Tacgm.run ~min_support:1.0 t db in
  check bool "completed" true (r.Tacgm.outcome = Tacgm.Completed);
  check (Alcotest.list Alcotest.string) "same as taxogram"
    [ "pattern[sup=2 (1.00)] 0:b 1:f (0-1)" ]
    (pattern_strings t r.Tacgm.patterns);
  check bool "iso tests counted" true (r.Tacgm.iso_tests > 0);
  check bool "level reached" true (r.Tacgm.levels_completed >= 1)

let test_tacgm_oom () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r = Tacgm.run ~embedding_budget:1 ~min_support:1.0 t db in
  check bool "out of memory" true (r.Tacgm.outcome = Tacgm.Out_of_memory)

let test_tacgm_timeout () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r =
    Tacgm.run
      ~time_budget:(Tsg_util.Timer.Budget.of_seconds (-1.0))
      ~min_support:1.0 t db
  in
  check bool "timed out" true (r.Tacgm.outcome = Tacgm.Timed_out)

let test_tacgm_max_edges () =
  let t = small_taxonomy () in
  let db =
    Db.of_list
      [
        g ~labels:[| id t "d"; id t "f"; id t "e" |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
        g ~labels:[| id t "d"; id t "f"; id t "e" |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
      ]
  in
  let r = Tacgm.run ~max_edges:1 ~min_support:1.0 t db in
  check bool "capped" true
    (List.for_all (fun p -> Pattern.edge_count p = 1) r.Tacgm.patterns)

(* --- Naive ------------------------------------------------------------------ *)

let test_naive_connected_subgraphs () =
  let path = g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  check int "path3: 2 single edges + 1 path" 3
    (List.length (Naive.connected_subgraphs ~max_edges:2 path));
  let triangle = g ~labels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ] in
  check int "triangle: 3 + 3 + 1" 7
    (List.length (Naive.connected_subgraphs ~max_edges:3 triangle));
  check int "edge cap respected" 6
    (List.length (Naive.connected_subgraphs ~max_edges:2 triangle));
  List.iter
    (fun sub -> check bool "connected" true (Graph.is_connected sub))
    (Naive.connected_subgraphs ~max_edges:3 triangle)

let test_naive_generalizations () =
  let t = small_taxonomy () in
  let graph = g ~labels:[| id t "d"; id t "f" |] ~edges:[ (0, 1, 0) ] in
  (* d has ancestors {d,b,a}, f has {f,c,a}: 9 combinations *)
  check int "product of ancestor counts" 9
    (List.length (Naive.generalizations t graph))

(* --- Postprocess ------------------------------------------------------------ *)

let mk_pattern t db_size labels edges graphs =
  ignore t;
  Pattern.make ~db_size (g ~labels ~edges) (Bitset.of_list db_size graphs)

let test_postprocess_closed () =
  let t = small_taxonomy () in
  (* d-f embeds in d-f-e with the same support set: not closed *)
  let small = mk_pattern t 3 [| id t "d"; id t "f" |] [ (0, 1, 0) ] [ 0; 1 ] in
  let big =
    mk_pattern t 3
      [| id t "d"; id t "f"; id t "e" |]
      [ (0, 1, 0); (1, 2, 0) ]
      [ 0; 1 ]
  in
  let other = mk_pattern t 3 [| id t "e"; id t "f" |] [ (0, 1, 0) ] [ 0; 2 ] in
  let closed = Tsg_core.Postprocess.closed t [ small; big; other ] in
  check bool "small dropped" true
    (not (List.exists (fun p -> Pattern.key p = Pattern.key small) closed));
  check bool "big kept" true
    (List.exists (fun p -> Pattern.key p = Pattern.key big) closed);
  check bool "different support kept" true
    (List.exists (fun p -> Pattern.key p = Pattern.key other) closed)

let test_postprocess_closed_respects_support () =
  let t = small_taxonomy () in
  (* same embedding but strictly larger support set: stays closed *)
  let small = mk_pattern t 3 [| id t "d"; id t "f" |] [ (0, 1, 0) ] [ 0; 1; 2 ] in
  let big =
    mk_pattern t 3
      [| id t "d"; id t "f"; id t "e" |]
      [ (0, 1, 0); (1, 2, 0) ]
      [ 0; 1 ]
  in
  let closed = Tsg_core.Postprocess.closed t [ small; big ] in
  check int "both survive" 2 (List.length closed)

let test_postprocess_maximal () =
  let t = small_taxonomy () in
  let small = mk_pattern t 3 [| id t "d"; id t "f" |] [ (0, 1, 0) ] [ 0; 1; 2 ] in
  let big =
    mk_pattern t 3
      [| id t "b"; id t "f"; id t "e" |]
      [ (0, 1, 0); (1, 2, 0) ]
      [ 0 ]
  in
  (* small (d-f) gen-embeds in big? pattern labels d,f vs target b,f,e:
     d must be ancestor of a target label — it is not, so small is maximal
     too. Use a generalized small instead. *)
  let general_small = mk_pattern t 3 [| id t "b"; id t "f" |] [ (0, 1, 0) ] [ 0 ] in
  let kept = Tsg_core.Postprocess.maximal t [ small; big; general_small ] in
  check bool "general small subsumed" true
    (not
       (List.exists (fun p -> Pattern.key p = Pattern.key general_small) kept));
  check bool "big kept" true
    (List.exists (fun p -> Pattern.key p = Pattern.key big) kept);
  check bool "incomparable small kept" true
    (List.exists (fun p -> Pattern.key p = Pattern.key small) kept)

let test_postprocess_subsumption_direction () =
  let t = small_taxonomy () in
  let small = mk_pattern t 2 [| id t "b"; id t "c" |] [ (0, 1, 0) ] [ 0 ] in
  let big =
    mk_pattern t 2
      [| id t "d"; id t "f"; id t "e" |]
      [ (0, 1, 0); (1, 2, 0) ] [ 0 ]
  in
  check bool "small in big" true (Tsg_core.Postprocess.is_subsumed_by t small big);
  check bool "big not in small" false
    (Tsg_core.Postprocess.is_subsumed_by t big small);
  check bool "not reflexive" false (Tsg_core.Postprocess.is_subsumed_by t small small)

(* --- Pattern_io ------------------------------------------------------------- *)

let test_pattern_io_roundtrip () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t db in
  let node_labels = Taxonomy.labels t in
  let edge_labels = Tsg_graph.Label.of_names [ "e0" ] in
  let text =
    Tsg_core.Pattern_io.to_string ~node_labels ~edge_labels ~db_size:2
      r.Taxogram.patterns
  in
  let loaded, size =
    Tsg_core.Pattern_io.parse ~node_labels ~edge_labels text
  in
  check int "db size recorded" 2 size;
  check int "count preserved" (List.length r.Taxogram.patterns)
    (List.length loaded);
  List.iter2
    (fun (a : Pattern.t) (b : Pattern.t) ->
      check Alcotest.string "pattern keys" (Pattern.key a) (Pattern.key b);
      check int "supports" a.Pattern.support_count b.Pattern.support_count)
    r.Taxogram.patterns loaded

let test_pattern_io_errors () =
  let nl = Tsg_graph.Label.create () and el = Tsg_graph.Label.create () in
  let expect text =
    match Tsg_core.Pattern_io.parse ~node_labels:nl ~edge_labels:el text with
    | exception Tsg_core.Pattern_io.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected Parse_error"
  in
  expect "v 0 a\n";
  expect "p # 0 support x/2\nv 0 a\n";
  expect "p # 0 support 3/2\nv 0 a\n";
  expect "p # 0 support 1/2\nnonsense\n";
  (* malformed %XX escapes in label names *)
  expect "p # 0 support 1/2\nv 0 a%2\n";
  expect "p # 0 support 1/2\nv 0 a%zz\n"

let test_pattern_io_nasty_names () =
  let node_labels =
    Tsg_graph.Label.of_names [ "has space"; "100% sure"; "tab\there"; "" ]
  in
  let edge_labels = Tsg_graph.Label.of_names [ "e"; "% of total" ] in
  let mk labels edges support =
    Pattern.make ~db_size:3 (g ~labels ~edges) (Bitset.of_list 3 support)
  in
  let patterns =
    [
      mk [| 0; 1 |] [ (0, 1, 1) ] [ 0; 2 ];
      mk [| 2; 3 |] [ (0, 1, 0) ] [ 1 ];
    ]
  in
  let text =
    Tsg_core.Pattern_io.to_string ~node_labels ~edge_labels ~db_size:3 patterns
  in
  (* reload into FRESH label tables: only the escaping carries the names *)
  let nl = Tsg_graph.Label.create () and el = Tsg_graph.Label.create () in
  let loaded, size =
    Tsg_core.Pattern_io.parse ~node_labels:nl ~edge_labels:el text
  in
  check int "db size" 3 size;
  check int "count" 2 (List.length loaded);
  List.iter2
    (fun (a : Pattern.t) (b : Pattern.t) ->
      check int "supports" a.Pattern.support_count b.Pattern.support_count;
      let ga = a.Pattern.graph and gb = b.Pattern.graph in
      for v = 0 to Graph.node_count ga - 1 do
        check Alcotest.string "node name survives"
          (Tsg_graph.Label.name node_labels (Graph.node_label ga v))
          (Tsg_graph.Label.name nl (Graph.node_label gb v))
      done;
      Array.iter2
        (fun (_, _, la) (_, _, lb) ->
          check Alcotest.string "edge name survives"
            (Tsg_graph.Label.name edge_labels la)
            (Tsg_graph.Label.name el lb))
        (Graph.edges ga) (Graph.edges gb))
    patterns loaded

(* --- Interest ----------------------------------------------------------------- *)

let test_interest_frequencies () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let freq = Tsg_core.Interest.label_frequencies t db in
  check int "a in both" 2 freq.(id t "a");
  check int "b in both (d,e)" 2 freq.(id t "b");
  check int "d in one" 1 freq.(id t "d");
  check int "f in both" 2 freq.(id t "f")

let test_interest_ratio () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let freq = Tsg_core.Interest.label_frequencies t db in
  (* b-f: sup 2. generalization a-f: sup 2, share f(b)/f(a) = 1
     -> expected 2, ratio 1. generalization b-c likewise. *)
  let p = mk_pattern t 2 [| id t "b"; id t "f" |] [ (0, 1, 0) ] [ 0; 1 ] in
  check (Alcotest.float 1e-9) "expected ratio 1" 1.0
    (Tsg_core.Interest.ratio t db ~freq p);
  (* d-f: sup 1. generalization b-f: sup 2, share f(d)/f(b) = 1/2 ->
     expected 1, ratio 1; generalization d-c: sup 1, share f(f)/f(c)=1 ->
     expected 1 -> min ratio 1 *)
  let spec = mk_pattern t 2 [| id t "d"; id t "f" |] [ (0, 1, 0) ] [ 0 ] in
  check (Alcotest.float 1e-9) "specialization ratio" 1.0
    (Tsg_core.Interest.ratio t db ~freq spec)

let test_interest_root_pattern_infinite () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let freq = Tsg_core.Interest.label_frequencies t db in
  let p = mk_pattern t 2 [| id t "a"; id t "a" |] [ (0, 1, 0) ] [ 0; 1 ] in
  check bool "no generalization -> infinite" true
    (Tsg_core.Interest.ratio t db ~freq p = infinity)

let test_interest_rank () =
  let t = small_taxonomy () in
  let db = two_graph_db t in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ()) t db in
  let ranked = Tsg_core.Interest.rank ~r:0.0 t db r.Taxogram.patterns in
  check int "all patterns ranked at r=0" (List.length r.Taxogram.patterns)
    (List.length ranked);
  let rec descending = function
    | a :: (b :: _ as rest) ->
      a.Tsg_core.Interest.ratio >= b.Tsg_core.Interest.ratio && descending rest
    | _ -> true
  in
  check bool "sorted by ratio" true (descending ranked);
  let high = Tsg_core.Interest.rank ~r:1e9 t db r.Taxogram.patterns in
  check bool "high threshold keeps only infinite" true
    (List.for_all (fun x -> x.Tsg_core.Interest.ratio = infinity) high)

(* --- cross-algorithm agreement (the paper's completeness/minimality) ------- *)

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      {
        concepts;
        relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3;
      }
  in
  let nlabels = Taxonomy.label_count tax in
  let ngraphs = 2 + Prng.int rng 3 in
  let graphs =
    List.init ngraphs (fun _ ->
        let n = 2 + Prng.int rng 3 in
        let labels = Array.init n (fun _ -> Prng.int rng nlabels) in
        let edges = ref [] in
        for v = 1 to n - 1 do
          edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
        done;
        if n >= 3 && Prng.bool rng then begin
          let u = Prng.int rng n and v = Prng.int rng n in
          if
            u <> v
            && not
                 (List.exists
                    (fun (a, b, _) -> (a = u && b = v) || (a = v && b = u))
                    !edges)
          then edges := (u, v, Prng.int rng 2) :: !edges
        end;
        g ~labels ~edges:!edges)
  in
  (tax, Db.of_list graphs)

let arb_instance =
  QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 2))

let theta_of = function 0 -> 1.0 | 1 -> 0.5 | _ -> 0.34

let taxogram_equals_naive_prop =
  QCheck.Test.make ~name:"taxogram = naive specification" ~count:80
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let naive = Naive.mine ~max_edges:3 ~min_support:theta tax db in
      let r = Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db in
      Pattern.equal_sets naive r.Taxogram.patterns)

let baseline_equals_naive_prop =
  QCheck.Test.make ~name:"baseline (no enhancements) = naive" ~count:50
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let naive = Naive.mine ~max_edges:3 ~min_support:theta tax db in
      let r =
        Taxogram.run (Taxogram.Spec.collect ~config:{ (config theta) with enhancements = Specialize.all_off } ())
          tax db
      in
      Pattern.equal_sets naive r.Taxogram.patterns)

let tacgm_equals_naive_prop =
  QCheck.Test.make ~name:"tacgm = naive specification" ~count:40 arb_instance
    (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let naive = Naive.mine ~max_edges:3 ~min_support:theta tax db in
      let r = Tacgm.run ~max_edges:3 ~min_support:theta tax db in
      r.Tacgm.outcome = Tacgm.Completed
      && Pattern.equal_sets naive r.Tacgm.patterns)

(* every reported support must agree with a from-scratch recount *)
let supports_verified_prop =
  QCheck.Test.make ~name:"taxogram supports verified by gen-subiso" ~count:60
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let r = Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db in
      List.for_all
        (fun (p : Pattern.t) ->
          let recount = Gen_iso.support_set tax ~pattern:p.Pattern.graph db in
          Bitset.equal recount p.Pattern.support_set)
        r.Taxogram.patterns)

(* minimality straight from the definition *)
let minimality_prop =
  QCheck.Test.make ~name:"taxogram output has no over-generalized pattern"
    ~count:60 arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let ps = (Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db).Taxogram.patterns in
      List.for_all
        (fun (p : Pattern.t) ->
          not
            (List.exists
               (fun (q : Pattern.t) ->
                 Pattern.key p <> Pattern.key q
                 && p.Pattern.support_count = q.Pattern.support_count
                 && Pattern.node_count p = Pattern.node_count q
                 && Pattern.edge_count p = Pattern.edge_count q
                 && Gen_iso.graph_isomorphic tax p.Pattern.graph
                      q.Pattern.graph)
               ps))
        ps)

(* --- robustness properties for the extensions -------------------------------- *)

let postprocess_sound_prop =
  QCheck.Test.make ~name:"closed/maximal are sound condensations" ~count:40
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let all = (Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db).Taxogram.patterns in
      let closed = Tsg_core.Postprocess.closed tax all in
      let maximal = Tsg_core.Postprocess.maximal tax all in
      let keys l = List.map Pattern.key l in
      let subset a b = List.for_all (fun k -> List.mem k (keys b)) (keys a) in
      (* filters only remove *)
      subset closed all && subset maximal all
      && subset maximal closed
      (* every dropped pattern has a surviving witness that subsumes it *)
      && List.for_all
           (fun (p : Pattern.t) ->
             List.mem (Pattern.key p) (keys closed)
             || List.exists
                  (fun (q : Pattern.t) ->
                    Tsg_util.Bitset.equal p.Pattern.support_set
                      q.Pattern.support_set
                    && Tsg_core.Postprocess.is_subsumed_by tax p q)
                  all)
           all)

let interest_nonnegative_prop =
  QCheck.Test.make ~name:"interest ratios are non-negative and rank-sorted"
    ~count:40 arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let ps = (Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ()) tax db).Taxogram.patterns in
      let ranked = Tsg_core.Interest.rank ~r:0.0 tax db ps in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          a.Tsg_core.Interest.ratio >= b.Tsg_core.Interest.ratio && sorted rest
        | _ -> true
      in
      List.length ranked = List.length ps
      && List.for_all (fun x -> x.Tsg_core.Interest.ratio >= 0.0) ranked
      && sorted ranked)

(* save/load is the identity on mined pattern sets, including when label
   names need escaping; the support set itself is not serialized, so
   compare keys and cardinalities *)
let pattern_io_roundtrip_prop =
  QCheck.Test.make ~name:"pattern_io round-trips mined sets" ~count:60
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let patterns =
        (Taxogram.run (Taxogram.Spec.collect ~config:(config (theta_of k)) ()) tax db).Taxogram.patterns
      in
      QCheck.assume (patterns <> []);
      let node_labels = Taxonomy.labels tax in
      let edge_labels = Tsg_graph.Label.of_names [ "edge zero"; "100%" ] in
      let text =
        Tsg_core.Pattern_io.to_string ~node_labels ~edge_labels
          ~db_size:(Db.size db) patterns
      in
      let loaded, size =
        Tsg_core.Pattern_io.parse ~node_labels ~edge_labels text
      in
      size = Db.size db
      && List.length loaded = List.length patterns
      && List.for_all2
           (fun (a : Pattern.t) (b : Pattern.t) ->
             Pattern.key a = Pattern.key b
             && a.Pattern.support_count = b.Pattern.support_count)
           patterns loaded)

let parallel_equals_sequential_prop =
  QCheck.Test.make ~name:"domains=3 = domains=1 on random instances" ~count:30
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let theta = theta_of k in
      let a =
        Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ~domains:1 ()) tax db
      in
      let b =
        Taxogram.run (Taxogram.Spec.collect ~config:(config theta) ~domains:3 ()) tax db
      in
      Pattern.equal_sets a.Taxogram.patterns b.Taxogram.patterns)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "core"
    [
      ( "pattern",
        [
          Alcotest.test_case "make" `Quick test_pattern_make;
          Alcotest.test_case "key isomorphism" `Quick test_pattern_key_iso;
        ] );
      ("relabel", [ Alcotest.test_case "most general" `Quick test_relabel ]);
      ( "occ_index",
        [
          Alcotest.test_case "build" `Quick test_occ_index_build;
          Alcotest.test_case "graph sets" `Quick test_occ_index_graph_set;
          Alcotest.test_case "keep_label" `Quick test_occ_index_keep_label;
        ] );
      ( "taxogram",
        [
          Alcotest.test_case "hand example" `Quick test_taxogram_hand_example;
          Alcotest.test_case "GO excerpt (Example 1.1)" `Quick
            test_taxogram_go_excerpt;
          Alcotest.test_case "support threshold" `Quick
            test_taxogram_no_patterns_below_support;
          Alcotest.test_case "flat taxonomy = gSpan" `Quick
            test_taxogram_flat_taxonomy_equals_gspan;
          Alcotest.test_case "max edges" `Quick test_taxogram_max_edges;
          Alcotest.test_case "streaming = run" `Quick
            test_taxogram_streaming_equals_run;
          Alcotest.test_case "timings/stats" `Quick test_taxogram_timing_fields;
          Alcotest.test_case "frequent label filter" `Quick
            test_frequent_label_filter;
          Alcotest.test_case "lemma 3 shape" `Quick test_lemma3_shape;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "empty db" `Quick test_taxogram_empty_db;
          Alcotest.test_case "single graph" `Quick test_taxogram_single_graph;
          Alcotest.test_case "edgeless graphs" `Quick
            test_taxogram_edgeless_graphs;
          Alcotest.test_case "edge labels distinguish" `Quick
            test_edge_labels_distinguish_patterns;
          Alcotest.test_case "specialize stats" `Quick
            test_specialize_stats_consistent;
          Alcotest.test_case "time budget" `Quick test_taxogram_time_budget;
          Alcotest.test_case "parallel = sequential" `Quick
            test_run_parallel_equals_sequential;
          Alcotest.test_case "pattern printing" `Quick
            test_pattern_pp_edge_labels;
        ] );
      ( "enhancements",
        [
          Alcotest.test_case "all configurations equivalent" `Quick
            test_enhancements_equivalent;
          Alcotest.test_case "reduce work" `Quick test_enhancements_reduce_work;
        ] );
      ( "tacgm",
        [
          Alcotest.test_case "hand example" `Quick test_tacgm_hand_example;
          Alcotest.test_case "out of memory" `Quick test_tacgm_oom;
          Alcotest.test_case "timeout" `Quick test_tacgm_timeout;
          Alcotest.test_case "max edges" `Quick test_tacgm_max_edges;
        ] );
      ( "naive",
        [
          Alcotest.test_case "connected subgraphs" `Quick
            test_naive_connected_subgraphs;
          Alcotest.test_case "generalizations" `Quick
            test_naive_generalizations;
        ] );
      ( "postprocess",
        [
          Alcotest.test_case "closed" `Quick test_postprocess_closed;
          Alcotest.test_case "closed respects support" `Quick
            test_postprocess_closed_respects_support;
          Alcotest.test_case "maximal" `Quick test_postprocess_maximal;
          Alcotest.test_case "subsumption direction" `Quick
            test_postprocess_subsumption_direction;
        ] );
      ( "pattern_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_pattern_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_pattern_io_errors;
          Alcotest.test_case "nasty names" `Quick test_pattern_io_nasty_names;
        ] );
      ( "interest",
        [
          Alcotest.test_case "frequencies" `Quick test_interest_frequencies;
          Alcotest.test_case "ratio" `Quick test_interest_ratio;
          Alcotest.test_case "root pattern" `Quick
            test_interest_root_pattern_infinite;
          Alcotest.test_case "rank" `Quick test_interest_rank;
        ] );
      ( "agreement",
        qsuite
          [
            taxogram_equals_naive_prop;
            baseline_equals_naive_prop;
            tacgm_equals_naive_prop;
            supports_verified_prop;
            minimality_prop;
            postprocess_sound_prop;
            interest_nonnegative_prop;
            pattern_io_roundtrip_prop;
            parallel_equals_sequential_prop;
          ] );
    ]
