(* Cluster suite: the consistent-hash ring (determinism, coverage,
   resharding stability), store slicing (global ids, inherited interest,
   composition), pure scatter-gather merging, a qcheck property that any
   sharding of the demo patterns answers byte-identically to one
   unsharded engine, and TCP integration against kill-able backends:
   failover with zero client-visible errors, OVERLOADED failover,
   hedging past a slow replica, and rolling reload. *)

module Shard_map = Tsg_cluster.Shard_map
module Merge = Tsg_cluster.Merge
module Replica = Tsg_cluster.Replica
module Router = Tsg_cluster.Router
module Checksum = Tsg_util.Checksum
module Metrics = Tsg_util.Metrics
module Prng = Tsg_util.Prng
module Label = Tsg_graph.Label
module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern = Tsg_core.Pattern
module Taxogram = Tsg_core.Taxogram
module Specialize = Tsg_core.Specialize
module Store = Tsg_query.Store
module Engine = Tsg_query.Engine
module Protocol = Tsg_query.Protocol
module Serve = Tsg_query.Serve

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

let counter_value metrics name = Metrics.value (Metrics.counter metrics name)

(* --- Shard_map --------------------------------------------------------------- *)

let keys n = List.init n (Printf.sprintf "key-%d")

let test_ring_determinism () =
  let a = Shard_map.create ~shards:4 () in
  let b = Shard_map.create ~shards:4 () in
  List.iter
    (fun k ->
      let sa = Shard_map.shard_of_key a k in
      check int ("agree on " ^ k) sa (Shard_map.shard_of_key b k);
      check bool "in range" true (sa >= 0 && sa < 4))
    (keys 200);
  let one = Shard_map.create ~shards:1 () in
  List.iter
    (fun k -> check int "single shard owns all" 0 (Shard_map.shard_of_key one k))
    (keys 50)

let test_ring_coverage () =
  let m = Shard_map.create ~shards:4 () in
  let owned = Array.make 4 0 in
  List.iter
    (fun k -> owned.(Shard_map.shard_of_key m k) <- 1 + owned.(Shard_map.shard_of_key m k))
    (keys 500);
  Array.iteri
    (fun i n ->
      check bool (Printf.sprintf "shard %d owns keys" i) true (n > 0))
    owned

let test_ring_stability () =
  (* going 3 -> 4 shards must move a minority of keys, not reshuffle *)
  let m3 = Shard_map.create ~shards:3 () in
  let m4 = Shard_map.create ~shards:4 () in
  let moved =
    List.fold_left
      (fun acc k ->
        if Shard_map.shard_of_key m3 k <> Shard_map.shard_of_key m4 k then
          acc + 1
        else acc)
      0 (keys 500)
  in
  check bool
    (Printf.sprintf "3->4 shards moved %d of 500 keys (expect ~125)" moved)
    true
    (moved > 0 && moved < 250)

let test_ring_invalid () =
  let raises f =
    match f () with
    | (_ : Shard_map.t) -> false
    | exception Invalid_argument _ -> true
  in
  check bool "0 shards rejected" true
    (raises (fun () -> Shard_map.create ~shards:0 ()));
  check bool "0 vnodes rejected" true
    (raises (fun () -> Shard_map.create ~vnodes:0 ~shards:2 ()))

let test_fingerprint_is_fnv1a64 () =
  List.iter
    (fun s ->
      check bool ("fingerprint of " ^ s) true
        (Shard_map.fingerprint s = Checksum.fnv1a64 s))
    [ ""; "a"; "shard-0#0"; "by-label root:c0" ]

(* --- fixtures: a small mined store (with its db, so interest works) ---------- *)

let fixture_taxonomy () =
  Taxonomy.build
    ~names:[ "a"; "b"; "c"; "d"; "e" ]
    ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b") ]

let fixture_db t =
  let id n = Taxonomy.id_of_name t n in
  Db.of_list
    [
      Graph.build ~labels:[| id "d"; id "c" |] ~edges:[ (0, 1, 0) ];
      Graph.build ~labels:[| id "e"; id "c" |] ~edges:[ (0, 1, 0) ];
      Graph.build
        ~labels:[| id "d"; id "e"; id "c" |]
        ~edges:[ (0, 1, 0); (1, 2, 0) ];
    ]

let fixture_store () =
  let t = fixture_taxonomy () in
  let db = fixture_db t in
  let config =
    { Taxogram.min_support = 0.3; max_edges = Some 2;
      enhancements = Specialize.all_on }
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) t db in
  (t, db, Store.build ~taxonomy:t ~db ~db_size:(Db.size db) r.Taxogram.patterns)

let engine store = Engine.create ~metrics:(Metrics.create ()) store

let slice_stores store nshards =
  let map = Shard_map.create ~shards:nshards () in
  List.init nshards (fun si ->
      Store.slice store ~keep:(fun i ->
          Shard_map.shard_of_key map (Pattern.key (Store.pattern store i)) = si))

(* --- Store.slice ------------------------------------------------------------- *)

let test_slice_external_ids () =
  let _, _, store = fixture_store () in
  let n = Store.size store in
  check bool "fixture mines enough patterns" true (n >= 4);
  for i = 0 to n - 1 do
    check int "unsliced external id is the identity" i
      (Store.external_id store i)
  done;
  let evens = Store.slice store ~keep:(fun i -> i mod 2 = 0) in
  check int "slice size" ((n + 1) / 2) (Store.size evens);
  for i = 0 to Store.size evens - 1 do
    check int "external ids are the kept originals, in order" (2 * i)
      (Store.external_id evens i)
  done

let test_slice_partition () =
  let _, _, store = fixture_store () in
  let n = Store.size store in
  let slices = slice_stores store 3 in
  check int "slices partition the patterns" n
    (List.fold_left (fun acc s -> acc + Store.size s) 0 slices);
  let seen = Array.make n 0 in
  List.iter
    (fun s ->
      for i = 0 to Store.size s - 1 do
        let ext = Store.external_id s i in
        seen.(ext) <- seen.(ext) + 1
      done)
    slices;
  Array.iteri
    (fun i c -> check int (Printf.sprintf "pattern %d owned exactly once" i) 1 c)
    seen

let test_slice_composes () =
  let _, _, store = fixture_store () in
  let evens = Store.slice store ~keep:(fun i -> i mod 2 = 0) in
  let sub = Store.slice evens ~keep:(fun i -> i mod 2 = 0) in
  for i = 0 to Store.size sub - 1 do
    check int "slice of a slice keeps original ids" (4 * i)
      (Store.external_id sub i)
  done

let test_slice_inherits_interest () =
  let _, _, store = fixture_store () in
  let full =
    match Store.by_interest store with
    | Some a -> a
    | None -> Alcotest.fail "fixture store has no interest order"
  in
  let evens = Store.slice store ~keep:(fun i -> i mod 2 = 0) in
  let sliced =
    match Store.by_interest evens with
    | Some a -> a
    | None -> Alcotest.fail "slice lost the interest order"
  in
  (* every sliced entry carries the score the pattern had in the full
     store — inherited, not recomputed over the slice *)
  Array.iter
    (fun (local, score) ->
      let ext = Store.external_id evens local in
      let expected =
        Array.to_list full
        |> List.filter_map (fun (id, s) -> if id = ext then Some s else None)
      in
      check bool "score inherited from the unsliced store" true
        (expected = [ score ]))
    sliced

(* --- Merge ------------------------------------------------------------------- *)

let test_verb_of_query () =
  let t = fixture_taxonomy () in
  check bool "contains is a listing" true
    (Merge.verb_of_query (Protocol.Contains (Graph.build ~labels:[| 0 |] ~edges:[]))
    = Some Merge.List);
  check bool "by-label is a listing" true
    (Merge.verb_of_query (Protocol.By_label (Taxonomy.id_of_name t "a"))
    = Some Merge.List);
  check bool "top-k keeps k and order" true
    (Merge.verb_of_query (Protocol.Top_k (7, `Interest))
    = Some (Merge.Top_k (7, `Interest)));
  check bool "barriers have no merge plan" true
    (List.for_all
       (fun q -> Merge.verb_of_query q = None)
       Protocol.[ Stats; Health; Reload; Quit ])

let test_merge_list_sorts_and_dedups () =
  let a = "ok 2\np 3 support 2/3 x\np 1 support 1/3 y" in
  let b = "ok 2\np 2 support 3/3 z\np 1 support 9/9 DUPLICATE" in
  check string "union sorted by id, first duplicate wins"
    "ok 3\np 1 support 1/3 y\np 2 support 3/3 z\np 3 support 2/3 x"
    (Merge.merge Merge.List [ a; b ])

let test_merge_top_k_support () =
  let a = "ok 2\np 4 score 0.6667 support 2/3 x\np 1 score 0.6667 support 2/3 y" in
  let b = "ok 1\np 2 score 1.0000 support 3/3 z" in
  (* support desc, then id asc among the tied *)
  check string "top-2 by support with id tie-break"
    "ok 2\np 2 score 1.0000 support 3/3 z\np 1 score 0.6667 support 2/3 y"
    (Merge.merge (Merge.Top_k (2, `Support)) [ a; b ])

let test_merge_top_k_interest () =
  let a = "ok 1\np 5 score 2.5000 support 1/3 x" in
  let b = "ok 1\np 2 score 7.0000 support 1/3 y" in
  check string "top-1 by score"
    "ok 1\np 2 score 7.0000 support 1/3 y"
    (Merge.merge (Merge.Top_k (1, `Interest)) [ a; b ]);
  check string "k beyond the union returns everything"
    "ok 2\np 2 score 7.0000 support 1/3 y\np 5 score 2.5000 support 1/3 x"
    (Merge.merge (Merge.Top_k (10, `Interest)) [ a; b ])

let test_merge_propagates_first_error () =
  let good = "ok 1\np 0 support 1/3 x" in
  let e1 = "error OVERLOADED retry-after 0.1" in
  let e2 = "error BADREQ nope" in
  check string "first error block in shard order wins" e1
    (Merge.merge Merge.List [ good; e1; e2 ]);
  check string "an error beats every row" e2
    (Merge.merge (Merge.Top_k (3, `Support)) [ good; e2 ])

let test_merge_rejects_malformed () =
  let raises blocks =
    match Merge.merge Merge.List blocks with
    | (_ : string) -> false
    | exception Failure _ -> true
  in
  check bool "garbage header" true (raises [ "what is this" ]);
  check bool "header/row count mismatch" true (raises [ "ok 2\np 0 support 1/3 x" ]);
  check bool "bad result line" true (raises [ "ok 1\nq 0 support 1/3 x" ])

(* --- sharding equivalence ----------------------------------------------------- *)

let random_requests rng t db =
  let names = Taxonomy.labels t in
  let edge_labels = Label.of_names [ "e0" ] in
  let graphs = Array.of_list (Db.to_list db) in
  let n = 5 + Prng.int rng 10 in
  List.init n (fun _ ->
      match Prng.int rng 4 with
      | 0 | 1 ->
        let g = graphs.(Prng.int rng (Array.length graphs)) in
        "contains " ^ Protocol.format_graph ~names ~edge_labels g
      | 2 ->
        let l = Prng.int rng (Taxonomy.label_count t) in
        "by-label " ^ Label.name names l
      | _ -> Printf.sprintf "top-k %d support" (Prng.int rng 30))

(* the tentpole acceptance property: scatter-gather over ANY sharding of
   the fixture patterns merges byte-identically to one unsharded engine
   (interest ordering is pinned by the deterministic test below — its
   printed %.4f scores can tie where the exact floats do not, so it is
   excluded from the randomized property) *)
let sharding_equivalence_prop =
  let t, db, store = fixture_store () in
  let full = engine store in
  QCheck.Test.make ~name:"any sharding merges byte-identical to unsharded"
    ~count:50
    QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (int_range 1 4))
    (fun (seed, nshards) ->
      let rng = Prng.of_int seed in
      let engines = List.map engine (slice_stores store nshards) in
      let edge_labels = Label.of_names [ "e0" ] in
      List.for_all
        (fun line ->
          match Protocol.parse ~taxonomy:t ~edge_labels line with
          | None -> true
          | Some q -> (
            match Merge.verb_of_query q with
            | None -> true
            | Some verb ->
              let expected = Serve.answer full q in
              let blocks = List.map (fun e -> Serve.answer e q) engines in
              Merge.merge verb blocks = expected)
          | exception Protocol.Parse_error _ -> true)
        (random_requests rng t db))

let test_interest_merge_identity () =
  let _, _, store = fixture_store () in
  let full = engine store in
  List.iter
    (fun nshards ->
      let engines = List.map engine (slice_stores store nshards) in
      List.iter
        (fun k ->
          let q = Protocol.Top_k (k, `Interest) in
          check string
            (Printf.sprintf "top-%d interest over %d shards" k nshards)
            (Serve.answer full q)
            (Merge.merge
               (Merge.Top_k (k, `Interest))
               (List.map (fun e -> Serve.answer e q) engines)))
        [ 1; 3; 1000 ])
    [ 2; 3; 4 ]

(* --- TCP integration: kill-able backends -------------------------------------- *)

(* a real Serve.run backend behind our own accept loop, so a test can
   hard-kill it: every socket is shut down at once, the way SIGKILL
   looks to the peers (in-flight replies cut, new connects refused) *)
type backend = { b_port : int; b_kill : unit -> unit }

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let serve_backend ?reloader store =
  let e = engine store in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 32;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "inet socket expected"
  in
  let lock = Mutex.create () in
  let conns = ref [] in
  let dead = ref false in
  let accepter =
    Thread.create
      (fun () ->
        let stop = ref false in
        while not !stop do
          if locked lock (fun () -> !dead) then stop := true
          else
            match Unix.select [ lsock ] [] [] 0.05 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
              match Unix.accept lsock with
              | fd, _ ->
                locked lock (fun () -> conns := fd :: !conns);
                ignore
                  (Thread.create
                     (fun fd ->
                       let ic = Unix.in_channel_of_descr fd in
                       let oc = Unix.out_channel_of_descr fd in
                       (* private label table per connection, as
                          Serve.listen gives each of its threads *)
                       let edge_labels = Label.of_names [ "e0" ] in
                       try
                         ignore
                           (Serve.run ~exec:(Tsg_util.Pool.Exec.create ~domains:1 ()) ?reloader ~engine:e
                              ~edge_labels ic oc)
                       with
                       | Sys_error _ | End_of_file | Unix.Unix_error _ -> ())
                     fd)
              | exception Unix.Unix_error _ -> stop := true)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
      ()
  in
  let kill () =
    let cs =
      locked lock (fun () ->
          dead := true;
          let cs = !conns in
          conns := [];
          cs)
    in
    List.iter
      (fun fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      cs;
    Thread.join accepter;
    try Unix.close lsock with Unix.Unix_error _ -> ()
  in
  { b_port = port; b_kill = kill }

(* a scriptable fake replica speaking just enough of the protocol to
   exercise the router: echoes tags, answers [handler body] per line *)
let fake_backend handler =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 32;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "inet socket expected"
  in
  let dead = ref false in
  let lock = Mutex.create () in
  let accepter =
    Thread.create
      (fun () ->
        let stop = ref false in
        while not !stop do
          if locked lock (fun () -> !dead) then stop := true
          else
            match Unix.select [ lsock ] [] [] 0.05 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
              match Unix.accept lsock with
              | fd, _ ->
                ignore
                  (Thread.create
                     (fun fd ->
                       let ic = Unix.in_channel_of_descr fd in
                       let oc = Unix.out_channel_of_descr fd in
                       (try
                          let quit = ref false in
                          while not !quit do
                            let line = input_line ic in
                            let tag, body = Protocol.split_tag line in
                            if body = "quit" then quit := true
                            else begin
                              output_string oc
                                (Protocol.tag_reply tag (handler body) ^ "\n");
                              flush oc
                            end
                          done
                        with
                       | Sys_error _ | End_of_file | Unix.Unix_error _ -> ());
                       try Unix.close fd with Unix.Unix_error _ -> ())
                     fd)
              | exception Unix.Unix_error _ -> stop := true)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
      ()
  in
  let kill () =
    locked lock (fun () -> dead := true);
    Thread.join accepter;
    try Unix.close lsock with Unix.Unix_error _ -> ()
  in
  { b_port = port; b_kill = kill }

let replica port name =
  Replica.create ~host:Unix.inet_addr_loopback ~port ~name ()

let router_over ?taxonomy ?(deadline_s = 5.0) ?(hedge_min_s = 0.01) metrics
    shards =
  Router.create
    ~config:{ Router.default_config with deadline_s; hedge_min_s }
    ?taxonomy ~metrics
    ~shards:(Array.of_list (List.map Array.of_list shards))
    ()

let reply_exn router line =
  match Router.dispatch router line with
  | `Reply r -> r
  | `Quit | `None -> Alcotest.fail ("no reply to " ^ line)

let test_router_failover_zero_errors () =
  let t, _, store = fixture_store () in
  let b0 = serve_backend store in
  let b1 = serve_backend store in
  let metrics = Metrics.create () in
  let router =
    router_over ~taxonomy:t metrics
      [ [ replica b0.b_port "0/0"; replica b1.b_port "0/1" ] ]
  in
  let baseline = reply_exn router "top-k 3 support" in
  check bool "cluster answers before the kill" true (has_prefix "ok 3" baseline);
  (* hard-kill one replica; every request must still succeed *)
  b0.b_kill ();
  List.iter
    (fun q ->
      check bool ("survives the kill: " ^ q) true
        (has_prefix "ok " (reply_exn router q)))
    (List.init 24 (fun i -> Printf.sprintf "top-k %d support" (i + 1)));
  check string "same bytes after the kill" baseline
    (reply_exn router "top-k 3 support");
  check bool "failovers counted" true
    (counter_value metrics "cluster.failovers" >= 1);
  b1.b_kill ()

let test_router_all_dead_unavailable () =
  let _, _, store = fixture_store () in
  let b0 = serve_backend store in
  let b1 = serve_backend store in
  let metrics = Metrics.create () in
  let router =
    router_over ~deadline_s:2.0 metrics
      [ [ replica b0.b_port "0/0"; replica b1.b_port "0/1" ] ]
  in
  b0.b_kill ();
  b1.b_kill ();
  let r = reply_exn router "top-k 1 support" in
  check bool "whole-shard outage answers a coded error" true
    (has_prefix "error UNAVAILABLE" r || has_prefix "error DEADLINE" r);
  check bool "unavailability counted" true
    (counter_value metrics "cluster.unavailable" >= 1
    || counter_value metrics "cluster.deadline_giveups" >= 1)

let test_router_overloaded_failover () =
  let _, _, store = fixture_store () in
  let shedding =
    fake_backend (fun body ->
        if body = "health" then "ok health patterns 0 uptime 0.0"
        else "error OVERLOADED retry-after 0.05")
  in
  let real = serve_backend store in
  let metrics = Metrics.create () in
  let router =
    router_over metrics
      [ [ replica shedding.b_port "0/0"; replica real.b_port "0/1" ] ]
  in
  (* distinct lines rotate the preferred replica, so some prefer the
     shedding fake — those must fail over and still answer ok *)
  List.iter
    (fun q ->
      check bool ("sheds never reach the client: " ^ q) true
        (has_prefix "ok " (reply_exn router q)))
    (List.init 20 (fun i -> Printf.sprintf "top-k %d support" (i + 1)));
  check bool "failovers counted" true
    (counter_value metrics "cluster.failovers" >= 1);
  shedding.b_kill ();
  real.b_kill ()

let test_router_hedges_past_slow_replica () =
  let slow delay =
    fake_backend (fun body ->
        if body = "health" then "ok health patterns 0 uptime 0.0"
        else begin
          Thread.delay delay;
          "ok 0"
        end)
  in
  let a = slow 0.05 in
  let b = slow 0.45 in
  let metrics = Metrics.create () in
  let router =
    router_over ~deadline_s:2.0 ~hedge_min_s:0.01 metrics
      [ [ replica a.b_port "0/0"; replica b.b_port "0/1" ] ]
  in
  let t0 = Unix.gettimeofday () in
  let r = reply_exn router "top-k 0 support" in
  let elapsed = Unix.gettimeofday () -. t0 in
  check string "the fast replica's answer wins" "ok 0" r;
  check bool
    (Printf.sprintf "hedge beats the slow replica (%.3fs)" elapsed)
    true (elapsed < 0.35);
  check bool "hedge counted" true (counter_value metrics "cluster.hedges" >= 1);
  a.b_kill ();
  b.b_kill ()

let test_rolling_reload_walks_every_replica () =
  let _, _, store = fixture_store () in
  let reloads = Atomic.make 0 in
  let reloader () =
    Atomic.incr reloads;
    Ok "patterns 5 checksum 0"
  in
  let b0 = serve_backend ~reloader store in
  let b1 = serve_backend ~reloader store in
  let metrics = Metrics.create () in
  let router =
    router_over metrics
      [ [ replica b0.b_port "0/0"; replica b1.b_port "0/1" ] ]
  in
  check string "reload verb reports the walk" "ok reload replicas 2"
    (reply_exn router "reload");
  check int "every replica reloaded exactly once" 2 (Atomic.get reloads);
  check int "reload counted" 1 (counter_value metrics "cluster.reloads");
  (* a replica that refuses aborts the walk with the stable code *)
  let refusing = serve_backend ~reloader:(fun () -> Error "disk gone") store in
  let metrics2 = Metrics.create () in
  let router2 =
    router_over metrics2
      [ [ replica b0.b_port "0/0"; replica refusing.b_port "0/1" ] ]
  in
  check bool "failed walk answers error RELOAD" true
    (has_prefix "error RELOAD" (reply_exn router2 "reload"));
  check int "no reload recorded on failure" 0
    (counter_value metrics2 "cluster.reloads");
  b0.b_kill ();
  b1.b_kill ();
  refusing.b_kill ()

let test_router_verbs_and_tags () =
  let _, _, store = fixture_store () in
  let b0 = serve_backend store in
  let metrics = Metrics.create () in
  let router = router_over metrics [ [ replica b0.b_port "0/0" ] ] in
  check bool "health summarizes the cluster" true
    (has_prefix "ok health shards 1 replicas 1 up 1" (reply_exn router "health"));
  check bool "tags round-trip" true
    (has_prefix "id t7 ok health" (reply_exn router "id t7 health"));
  let stats = reply_exn router "stats" in
  check bool "stats brackets the registry" true
    (has_prefix "begin stats" stats
    && has_prefix "end stats"
         (let lines = String.split_on_char '\n' stats in
          List.nth lines (List.length lines - 1)));
  check bool "stats carries cluster counters" true
    (List.exists
       (has_prefix "counter cluster.requests")
       (String.split_on_char '\n' stats));
  check bool "unknown verbs answer BADREQ" true
    (has_prefix "error BADREQ" (reply_exn router "frobnicate now"));
  (match Router.dispatch router "# comment" with
  | `None -> ()
  | `Reply _ | `Quit -> Alcotest.fail "comments are ignored");
  (match Router.dispatch router "quit" with
  | `Quit -> ()
  | `Reply _ | `None -> Alcotest.fail "quit ends the connection");
  b0.b_kill ()

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cluster"
    [
      ( "shard-map",
        [
          Alcotest.test_case "deterministic" `Quick test_ring_determinism;
          Alcotest.test_case "covers every shard" `Quick test_ring_coverage;
          Alcotest.test_case "resharding moves a minority" `Quick
            test_ring_stability;
          Alcotest.test_case "rejects invalid sizes" `Quick test_ring_invalid;
          Alcotest.test_case "fingerprint is fnv1a64" `Quick
            test_fingerprint_is_fnv1a64;
        ] );
      ( "slice",
        [
          Alcotest.test_case "external ids" `Quick test_slice_external_ids;
          Alcotest.test_case "partition" `Quick test_slice_partition;
          Alcotest.test_case "composes" `Quick test_slice_composes;
          Alcotest.test_case "inherits interest" `Quick
            test_slice_inherits_interest;
        ] );
      ( "merge",
        [
          Alcotest.test_case "verb of query" `Quick test_verb_of_query;
          Alcotest.test_case "list sorts and dedups" `Quick
            test_merge_list_sorts_and_dedups;
          Alcotest.test_case "top-k support tie-break" `Quick
            test_merge_top_k_support;
          Alcotest.test_case "top-k interest" `Quick test_merge_top_k_interest;
          Alcotest.test_case "propagates first error" `Quick
            test_merge_propagates_first_error;
          Alcotest.test_case "rejects malformed" `Quick
            test_merge_rejects_malformed;
        ] );
      ( "equivalence",
        Alcotest.test_case "interest identical across shard counts" `Quick
          test_interest_merge_identity
        :: qsuite [ sharding_equivalence_prop ] );
      ( "router",
        [
          Alcotest.test_case "verbs and tags" `Quick test_router_verbs_and_tags;
          Alcotest.test_case "failover: kill one replica, zero errors" `Quick
            test_router_failover_zero_errors;
          Alcotest.test_case "whole shard dead answers UNAVAILABLE" `Quick
            test_router_all_dead_unavailable;
          Alcotest.test_case "OVERLOADED replies fail over" `Quick
            test_router_overloaded_failover;
          Alcotest.test_case "hedging beats a slow replica" `Quick
            test_router_hedges_past_slow_replica;
          Alcotest.test_case "rolling reload walks every replica" `Quick
            test_rolling_reload_walks_every_replica;
        ] );
    ]
