(* Cluster suite: the consistent-hash ring (determinism, coverage,
   resharding stability), store slicing (global ids, inherited interest,
   composition), pure scatter-gather merging, a qcheck property that any
   sharding of the demo patterns answers byte-identically to one
   unsharded engine, and TCP integration against kill-able backends:
   failover with zero client-visible errors, OVERLOADED failover,
   hedging past a slow replica, and rolling reload. *)

module Shard_map = Tsg_cluster.Shard_map
module Merge = Tsg_cluster.Merge
module Replica = Tsg_cluster.Replica
module Router = Tsg_cluster.Router
module Checksum = Tsg_util.Checksum
module Metrics = Tsg_util.Metrics
module Prng = Tsg_util.Prng
module Label = Tsg_graph.Label
module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern = Tsg_core.Pattern
module Taxogram = Tsg_core.Taxogram
module Specialize = Tsg_core.Specialize
module Store = Tsg_query.Store
module Engine = Tsg_query.Engine
module Protocol = Tsg_query.Protocol
module Serve = Tsg_query.Serve
module Epoch = Tsg_query.Epoch
module Pattern_io = Tsg_core.Pattern_io
module Safe_io = Tsg_util.Safe_io
module Fault = Tsg_util.Fault
module Diagnostic = Tsg_util.Diagnostic

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

let counter_value metrics name = Metrics.value (Metrics.counter metrics name)

(* --- Shard_map --------------------------------------------------------------- *)

let keys n = List.init n (Printf.sprintf "key-%d")

let test_ring_determinism () =
  let a = Shard_map.create ~shards:4 () in
  let b = Shard_map.create ~shards:4 () in
  List.iter
    (fun k ->
      let sa = Shard_map.shard_of_key a k in
      check int ("agree on " ^ k) sa (Shard_map.shard_of_key b k);
      check bool "in range" true (sa >= 0 && sa < 4))
    (keys 200);
  let one = Shard_map.create ~shards:1 () in
  List.iter
    (fun k -> check int "single shard owns all" 0 (Shard_map.shard_of_key one k))
    (keys 50)

let test_ring_coverage () =
  let m = Shard_map.create ~shards:4 () in
  let owned = Array.make 4 0 in
  List.iter
    (fun k -> owned.(Shard_map.shard_of_key m k) <- 1 + owned.(Shard_map.shard_of_key m k))
    (keys 500);
  Array.iteri
    (fun i n ->
      check bool (Printf.sprintf "shard %d owns keys" i) true (n > 0))
    owned

let test_ring_stability () =
  (* going 3 -> 4 shards must move a minority of keys, not reshuffle *)
  let m3 = Shard_map.create ~shards:3 () in
  let m4 = Shard_map.create ~shards:4 () in
  let moved =
    List.fold_left
      (fun acc k ->
        if Shard_map.shard_of_key m3 k <> Shard_map.shard_of_key m4 k then
          acc + 1
        else acc)
      0 (keys 500)
  in
  check bool
    (Printf.sprintf "3->4 shards moved %d of 500 keys (expect ~125)" moved)
    true
    (moved > 0 && moved < 250)

let test_ring_invalid () =
  let raises f =
    match f () with
    | (_ : Shard_map.t) -> false
    | exception Invalid_argument _ -> true
  in
  check bool "0 shards rejected" true
    (raises (fun () -> Shard_map.create ~shards:0 ()));
  check bool "0 vnodes rejected" true
    (raises (fun () -> Shard_map.create ~vnodes:0 ~shards:2 ()))

let test_fingerprint_is_fnv1a64 () =
  List.iter
    (fun s ->
      check bool ("fingerprint of " ^ s) true
        (Shard_map.fingerprint s = Checksum.fnv1a64 s))
    [ ""; "a"; "shard-0#0"; "by-label root:c0" ]

(* --- fixtures: a small mined store (with its db, so interest works) ---------- *)

let fixture_taxonomy () =
  Taxonomy.build
    ~names:[ "a"; "b"; "c"; "d"; "e" ]
    ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b") ]

let fixture_db t =
  let id n = Taxonomy.id_of_name t n in
  Db.of_list
    [
      Graph.build ~labels:[| id "d"; id "c" |] ~edges:[ (0, 1, 0) ];
      Graph.build ~labels:[| id "e"; id "c" |] ~edges:[ (0, 1, 0) ];
      Graph.build
        ~labels:[| id "d"; id "e"; id "c" |]
        ~edges:[ (0, 1, 0); (1, 2, 0) ];
    ]

let fixture_store () =
  let t = fixture_taxonomy () in
  let db = fixture_db t in
  let config =
    { Taxogram.min_support = 0.3; max_edges = Some 2;
      enhancements = Specialize.all_on }
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) t db in
  (t, db, Store.build ~taxonomy:t ~db ~db_size:(Db.size db) r.Taxogram.patterns)

let engine store = Engine.create ~metrics:(Metrics.create ()) store

let slice_stores store nshards =
  let map = Shard_map.create ~shards:nshards () in
  List.init nshards (fun si ->
      Store.slice store ~keep:(fun i ->
          Shard_map.shard_of_key map (Pattern.key (Store.pattern store i)) = si))

(* --- Store.slice ------------------------------------------------------------- *)

let test_slice_external_ids () =
  let _, _, store = fixture_store () in
  let n = Store.size store in
  check bool "fixture mines enough patterns" true (n >= 4);
  for i = 0 to n - 1 do
    check int "unsliced external id is the identity" i
      (Store.external_id store i)
  done;
  let evens = Store.slice store ~keep:(fun i -> i mod 2 = 0) in
  check int "slice size" ((n + 1) / 2) (Store.size evens);
  for i = 0 to Store.size evens - 1 do
    check int "external ids are the kept originals, in order" (2 * i)
      (Store.external_id evens i)
  done

let test_slice_partition () =
  let _, _, store = fixture_store () in
  let n = Store.size store in
  let slices = slice_stores store 3 in
  check int "slices partition the patterns" n
    (List.fold_left (fun acc s -> acc + Store.size s) 0 slices);
  let seen = Array.make n 0 in
  List.iter
    (fun s ->
      for i = 0 to Store.size s - 1 do
        let ext = Store.external_id s i in
        seen.(ext) <- seen.(ext) + 1
      done)
    slices;
  Array.iteri
    (fun i c -> check int (Printf.sprintf "pattern %d owned exactly once" i) 1 c)
    seen

let test_slice_composes () =
  let _, _, store = fixture_store () in
  let evens = Store.slice store ~keep:(fun i -> i mod 2 = 0) in
  let sub = Store.slice evens ~keep:(fun i -> i mod 2 = 0) in
  for i = 0 to Store.size sub - 1 do
    check int "slice of a slice keeps original ids" (4 * i)
      (Store.external_id sub i)
  done

let test_slice_inherits_interest () =
  let _, _, store = fixture_store () in
  let full =
    match Store.by_interest store with
    | Some a -> a
    | None -> Alcotest.fail "fixture store has no interest order"
  in
  let evens = Store.slice store ~keep:(fun i -> i mod 2 = 0) in
  let sliced =
    match Store.by_interest evens with
    | Some a -> a
    | None -> Alcotest.fail "slice lost the interest order"
  in
  (* every sliced entry carries the score the pattern had in the full
     store — inherited, not recomputed over the slice *)
  Array.iter
    (fun (local, score) ->
      let ext = Store.external_id evens local in
      let expected =
        Array.to_list full
        |> List.filter_map (fun (id, s) -> if id = ext then Some s else None)
      in
      check bool "score inherited from the unsliced store" true
        (expected = [ score ]))
    sliced

(* --- Merge ------------------------------------------------------------------- *)

let test_verb_of_query () =
  let t = fixture_taxonomy () in
  check bool "contains is a listing" true
    (Merge.verb_of_query (Protocol.Contains (Graph.build ~labels:[| 0 |] ~edges:[]))
    = Some Merge.List);
  check bool "by-label is a listing" true
    (Merge.verb_of_query (Protocol.By_label (Taxonomy.id_of_name t "a"))
    = Some Merge.List);
  check bool "top-k keeps k and order" true
    (Merge.verb_of_query (Protocol.Top_k (7, `Interest))
    = Some (Merge.Top_k (7, `Interest)));
  check bool "barriers have no merge plan" true
    (List.for_all
       (fun q -> Merge.verb_of_query q = None)
       Protocol.[ Stats; Health; Reload; Quit ])

let test_merge_list_sorts_and_dedups () =
  let a = "ok 2\np 3 support 2/3 x\np 1 support 1/3 y" in
  let b = "ok 2\np 2 support 3/3 z\np 1 support 9/9 DUPLICATE" in
  check string "union sorted by id, first duplicate wins"
    "ok 3\np 1 support 1/3 y\np 2 support 3/3 z\np 3 support 2/3 x"
    (Merge.merge Merge.List [ a; b ])

let test_merge_top_k_support () =
  let a = "ok 2\np 4 score 0.6667 support 2/3 x\np 1 score 0.6667 support 2/3 y" in
  let b = "ok 1\np 2 score 1.0000 support 3/3 z" in
  (* support desc, then id asc among the tied *)
  check string "top-2 by support with id tie-break"
    "ok 2\np 2 score 1.0000 support 3/3 z\np 1 score 0.6667 support 2/3 y"
    (Merge.merge (Merge.Top_k (2, `Support)) [ a; b ])

let test_merge_top_k_interest () =
  let a = "ok 1\np 5 score 2.5000 support 1/3 x" in
  let b = "ok 1\np 2 score 7.0000 support 1/3 y" in
  check string "top-1 by score"
    "ok 1\np 2 score 7.0000 support 1/3 y"
    (Merge.merge (Merge.Top_k (1, `Interest)) [ a; b ]);
  check string "k beyond the union returns everything"
    "ok 2\np 2 score 7.0000 support 1/3 y\np 5 score 2.5000 support 1/3 x"
    (Merge.merge (Merge.Top_k (10, `Interest)) [ a; b ])

let test_merge_propagates_first_error () =
  let good = "ok 1\np 0 support 1/3 x" in
  let e1 = "error OVERLOADED retry-after 0.1" in
  let e2 = "error BADREQ nope" in
  check string "first error block in shard order wins" e1
    (Merge.merge Merge.List [ good; e1; e2 ]);
  check string "an error beats every row" e2
    (Merge.merge (Merge.Top_k (3, `Support)) [ good; e2 ])

let test_merge_rejects_malformed () =
  let raises blocks =
    match Merge.merge Merge.List blocks with
    | (_ : string) -> false
    | exception Failure _ -> true
  in
  check bool "garbage header" true (raises [ "what is this" ]);
  check bool "header/row count mismatch" true (raises [ "ok 2\np 0 support 1/3 x" ]);
  check bool "bad result line" true (raises [ "ok 1\nq 0 support 1/3 x" ])

let test_merge_refuses_mixed_epochs () =
  let a = "ok 1\np 0 support 1/3 x" in
  let b = "ok 1\np 1 support 1/3 y" in
  let merged = "ok 2\np 0 support 1/3 x\np 1 support 1/3 y" in
  (* two different pinned epochs must refuse before any row-level work:
     blocks from different artifact versions never combine *)
  check bool "mixed epochs answer STALE_EPOCH" true
    (has_prefix "error STALE_EPOCH"
       (Merge.merge
          ~epochs:[ Some "1.00000000000000aa"; Some "2.00000000000000bb" ]
          Merge.List [ a; b ]));
  check string "equal epochs merge normally" merged
    (Merge.merge
       ~epochs:[ Some "1.00000000000000aa"; Some "1.00000000000000aa" ]
       Merge.List [ a; b ]);
  check string "an unknown epoch never refuses" merged
    (Merge.merge ~epochs:[ None; Some "1.00000000000000aa" ] Merge.List [ a; b ]);
  check string "no epochs at all is the legacy path" merged
    (Merge.merge Merge.List [ a; b ])

(* --- sharding equivalence ----------------------------------------------------- *)

let random_requests rng t db =
  let names = Taxonomy.labels t in
  let edge_labels = Label.of_names [ "e0" ] in
  let graphs = Array.of_list (Db.to_list db) in
  let n = 5 + Prng.int rng 10 in
  List.init n (fun _ ->
      match Prng.int rng 4 with
      | 0 | 1 ->
        let g = graphs.(Prng.int rng (Array.length graphs)) in
        "contains " ^ Protocol.format_graph ~names ~edge_labels g
      | 2 ->
        let l = Prng.int rng (Taxonomy.label_count t) in
        "by-label " ^ Label.name names l
      | _ -> Printf.sprintf "top-k %d support" (Prng.int rng 30))

(* the tentpole acceptance property: scatter-gather over ANY sharding of
   the fixture patterns merges byte-identically to one unsharded engine
   (interest ordering is pinned by the deterministic test below — its
   printed %.4f scores can tie where the exact floats do not, so it is
   excluded from the randomized property) *)
let sharding_equivalence_prop =
  let t, db, store = fixture_store () in
  let full = engine store in
  QCheck.Test.make ~name:"any sharding merges byte-identical to unsharded"
    ~count:50
    QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (int_range 1 4))
    (fun (seed, nshards) ->
      let rng = Prng.of_int seed in
      let engines = List.map engine (slice_stores store nshards) in
      let edge_labels = Label.of_names [ "e0" ] in
      List.for_all
        (fun line ->
          match Protocol.parse ~taxonomy:t ~edge_labels line with
          | None -> true
          | Some q -> (
            match Merge.verb_of_query q with
            | None -> true
            | Some verb ->
              let expected = Serve.answer full q in
              let blocks = List.map (fun e -> Serve.answer e q) engines in
              Merge.merge verb blocks = expected)
          | exception Protocol.Parse_error _ -> true)
        (random_requests rng t db))

let test_interest_merge_identity () =
  let _, _, store = fixture_store () in
  let full = engine store in
  List.iter
    (fun nshards ->
      let engines = List.map engine (slice_stores store nshards) in
      List.iter
        (fun k ->
          let q = Protocol.Top_k (k, `Interest) in
          check string
            (Printf.sprintf "top-%d interest over %d shards" k nshards)
            (Serve.answer full q)
            (Merge.merge
               (Merge.Top_k (k, `Interest))
               (List.map (fun e -> Serve.answer e q) engines)))
        [ 1; 3; 1000 ])
    [ 2; 3; 4 ]

(* --- TCP integration: kill-able backends -------------------------------------- *)

(* a real Serve.run backend behind our own accept loop, so a test can
   hard-kill it: every socket is shut down at once, the way SIGKILL
   looks to the peers (in-flight replies cut, new connects refused) *)
type backend = { b_port : int; b_kill : unit -> unit }

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let serve_backend ?reloader ?staging ?current store =
  let e = engine store in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 32;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "inet socket expected"
  in
  let lock = Mutex.create () in
  let conns = ref [] in
  let dead = ref false in
  let accepter =
    Thread.create
      (fun () ->
        let stop = ref false in
        while not !stop do
          if locked lock (fun () -> !dead) then stop := true
          else
            match Unix.select [ lsock ] [] [] 0.05 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
              match Unix.accept lsock with
              | fd, _ ->
                locked lock (fun () -> conns := fd :: !conns);
                ignore
                  (Thread.create
                     (fun fd ->
                       let ic = Unix.in_channel_of_descr fd in
                       let oc = Unix.out_channel_of_descr fd in
                       (* private label table per connection, as
                          Serve.listen gives each of its threads *)
                       let edge_labels = Label.of_names [ "e0" ] in
                       try
                         ignore
                           (Serve.run ~exec:(Tsg_util.Pool.Exec.create ~domains:1 ()) ?reloader ?staging
                              ?current ~engine:e ~edge_labels ic oc)
                       with
                       | Sys_error _ | End_of_file | Unix.Unix_error _ -> ())
                     fd)
              | exception Unix.Unix_error _ -> stop := true)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
      ()
  in
  let kill () =
    let cs =
      locked lock (fun () ->
          dead := true;
          let cs = !conns in
          conns := [];
          cs)
    in
    List.iter
      (fun fd ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      cs;
    Thread.join accepter;
    try Unix.close lsock with Unix.Unix_error _ -> ()
  in
  { b_port = port; b_kill = kill }

(* a scriptable fake replica speaking just enough of the protocol to
   exercise the router: echoes tags, answers [handler body] per line *)
let fake_backend handler =
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 32;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> Alcotest.fail "inet socket expected"
  in
  let dead = ref false in
  let lock = Mutex.create () in
  let accepter =
    Thread.create
      (fun () ->
        let stop = ref false in
        while not !stop do
          if locked lock (fun () -> !dead) then stop := true
          else
            match Unix.select [ lsock ] [] [] 0.05 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
              match Unix.accept lsock with
              | fd, _ ->
                ignore
                  (Thread.create
                     (fun fd ->
                       let ic = Unix.in_channel_of_descr fd in
                       let oc = Unix.out_channel_of_descr fd in
                       (try
                          let quit = ref false in
                          while not !quit do
                            let line = input_line ic in
                            let tag, body = Protocol.split_tag line in
                            if body = "quit" then quit := true
                            else begin
                              output_string oc
                                (Protocol.tag_reply tag (handler body) ^ "\n");
                              flush oc
                            end
                          done
                        with
                       | Sys_error _ | End_of_file | Unix.Unix_error _ -> ());
                       try Unix.close fd with Unix.Unix_error _ -> ())
                     fd)
              | exception Unix.Unix_error _ -> stop := true)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
      ()
  in
  let kill () =
    locked lock (fun () -> dead := true);
    Thread.join accepter;
    try Unix.close lsock with Unix.Unix_error _ -> ()
  in
  { b_port = port; b_kill = kill }

let replica port name =
  Replica.create ~host:Unix.inet_addr_loopback ~port ~name ()

let router_over ?taxonomy ?(deadline_s = 5.0) ?(hedge_min_s = 0.01) metrics
    shards =
  Router.create
    ~config:{ Router.default_config with deadline_s; hedge_min_s }
    ?taxonomy ~metrics
    ~shards:(Array.of_list (List.map Array.of_list shards))
    ()

let reply_exn router line =
  match Router.dispatch router line with
  | `Reply r -> r
  | `Quit | `None -> Alcotest.fail ("no reply to " ^ line)

let test_router_failover_zero_errors () =
  let t, _, store = fixture_store () in
  let b0 = serve_backend store in
  let b1 = serve_backend store in
  let metrics = Metrics.create () in
  let router =
    router_over ~taxonomy:t metrics
      [ [ replica b0.b_port "0/0"; replica b1.b_port "0/1" ] ]
  in
  let baseline = reply_exn router "top-k 3 support" in
  check bool "cluster answers before the kill" true (has_prefix "ok 3" baseline);
  (* hard-kill one replica; every request must still succeed *)
  b0.b_kill ();
  List.iter
    (fun q ->
      check bool ("survives the kill: " ^ q) true
        (has_prefix "ok " (reply_exn router q)))
    (List.init 24 (fun i -> Printf.sprintf "top-k %d support" (i + 1)));
  check string "same bytes after the kill" baseline
    (reply_exn router "top-k 3 support");
  check bool "failovers counted" true
    (counter_value metrics "cluster.failovers" >= 1);
  b1.b_kill ()

let test_router_all_dead_unavailable () =
  let _, _, store = fixture_store () in
  let b0 = serve_backend store in
  let b1 = serve_backend store in
  let metrics = Metrics.create () in
  let router =
    router_over ~deadline_s:2.0 metrics
      [ [ replica b0.b_port "0/0"; replica b1.b_port "0/1" ] ]
  in
  b0.b_kill ();
  b1.b_kill ();
  let r = reply_exn router "top-k 1 support" in
  check bool "whole-shard outage answers a coded error" true
    (has_prefix "error UNAVAILABLE" r || has_prefix "error DEADLINE" r);
  check bool "unavailability counted" true
    (counter_value metrics "cluster.unavailable" >= 1
    || counter_value metrics "cluster.deadline_giveups" >= 1)

let test_router_overloaded_failover () =
  let _, _, store = fixture_store () in
  let shedding =
    fake_backend (fun body ->
        if body = "health" then "ok health patterns 0 uptime 0.0"
        else "error OVERLOADED retry-after 0.05")
  in
  let real = serve_backend store in
  let metrics = Metrics.create () in
  let router =
    router_over metrics
      [ [ replica shedding.b_port "0/0"; replica real.b_port "0/1" ] ]
  in
  (* distinct lines rotate the preferred replica, so some prefer the
     shedding fake — those must fail over and still answer ok *)
  List.iter
    (fun q ->
      check bool ("sheds never reach the client: " ^ q) true
        (has_prefix "ok " (reply_exn router q)))
    (List.init 20 (fun i -> Printf.sprintf "top-k %d support" (i + 1)));
  check bool "failovers counted" true
    (counter_value metrics "cluster.failovers" >= 1);
  shedding.b_kill ();
  real.b_kill ()

let test_router_hedges_past_slow_replica () =
  let slow delay =
    fake_backend (fun body ->
        if body = "health" then "ok health patterns 0 uptime 0.0"
        else begin
          Thread.delay delay;
          "ok 0"
        end)
  in
  let a = slow 0.05 in
  let b = slow 0.45 in
  let metrics = Metrics.create () in
  let router =
    router_over ~deadline_s:2.0 ~hedge_min_s:0.01 metrics
      [ [ replica a.b_port "0/0"; replica b.b_port "0/1" ] ]
  in
  let t0 = Unix.gettimeofday () in
  let r = reply_exn router "top-k 0 support" in
  let elapsed = Unix.gettimeofday () -. t0 in
  check string "the fast replica's answer wins" "ok 0" r;
  check bool
    (Printf.sprintf "hedge beats the slow replica (%.3fs)" elapsed)
    true (elapsed < 0.35);
  check bool "hedge counted" true (counter_value metrics "cluster.hedges" >= 1);
  a.b_kill ();
  b.b_kill ()

let test_hedge_win_is_counted () =
  (* force the hedge to WIN, not merely fire: the stalled backend sits at
     the router's preferred index for this exact query key, so the
     primary attempt goes to it and only the hedge can answer in time *)
  let key = "top-k 1 support" in
  let pref = Int64.to_int (Shard_map.fingerprint key) land max_int mod 2 in
  let backend delay =
    fake_backend (fun body ->
        if body = "health" then "ok health patterns 0 uptime 0.0"
        else begin
          if delay > 0.0 then Thread.delay delay;
          "ok 0"
        end)
  in
  let slow = backend 0.6 in
  let fast = backend 0.0 in
  let order = if pref = 0 then [ slow; fast ] else [ fast; slow ] in
  let metrics = Metrics.create () in
  let router =
    router_over ~deadline_s:2.0 ~hedge_min_s:0.01 metrics
      [ List.mapi (fun i b -> replica b.b_port (Printf.sprintf "0/%d" i)) order ]
  in
  let t0 = Unix.gettimeofday () in
  let r = reply_exn router key in
  let elapsed = Unix.gettimeofday () -. t0 in
  check string "the hedge's answer wins" "ok 0" r;
  check bool
    (Printf.sprintf "answered before the stalled primary could (%.3fs)" elapsed)
    true (elapsed < 0.5);
  check bool "hedge fired" true (counter_value metrics "cluster.hedges" >= 1);
  check bool "hedge win accounted" true
    (counter_value metrics "cluster.hedge_wins" >= 1);
  slow.b_kill ();
  fast.b_kill ()

let test_rolling_reload_walks_every_replica () =
  let _, _, store = fixture_store () in
  let reloads = Atomic.make 0 in
  let reloader () =
    Atomic.incr reloads;
    Ok "patterns 5 checksum 0"
  in
  let b0 = serve_backend ~reloader store in
  let b1 = serve_backend ~reloader store in
  let metrics = Metrics.create () in
  let router =
    router_over metrics
      [ [ replica b0.b_port "0/0"; replica b1.b_port "0/1" ] ]
  in
  check string "reload verb reports the walk" "ok reload replicas 2"
    (reply_exn router "reload");
  check int "every replica reloaded exactly once" 2 (Atomic.get reloads);
  check int "reload counted" 1 (counter_value metrics "cluster.reloads");
  (* a replica that refuses aborts the walk with the stable code *)
  let refusing = serve_backend ~reloader:(fun () -> Error "disk gone") store in
  let metrics2 = Metrics.create () in
  let router2 =
    router_over metrics2
      [ [ replica b0.b_port "0/0"; replica refusing.b_port "0/1" ] ]
  in
  check bool "failed walk answers error RELOAD" true
    (has_prefix "error RELOAD" (reply_exn router2 "reload"));
  check int "no reload recorded on failure" 0
    (counter_value metrics2 "cluster.reloads");
  b0.b_kill ();
  b1.b_kill ();
  refusing.b_kill ()

let test_router_verbs_and_tags () =
  let _, _, store = fixture_store () in
  let b0 = serve_backend store in
  let metrics = Metrics.create () in
  let router = router_over metrics [ [ replica b0.b_port "0/0" ] ] in
  check bool "health summarizes the cluster" true
    (has_prefix "ok health shards 1 replicas 1 up 1" (reply_exn router "health"));
  check bool "tags round-trip" true
    (has_prefix "id t7 ok health" (reply_exn router "id t7 health"));
  let stats = reply_exn router "stats" in
  check bool "stats brackets the registry" true
    (has_prefix "begin stats" stats
    && has_prefix "end stats"
         (let lines = String.split_on_char '\n' stats in
          List.nth lines (List.length lines - 1)));
  check bool "stats carries cluster counters" true
    (List.exists
       (has_prefix "counter cluster.requests")
       (String.split_on_char '\n' stats));
  check bool "unknown verbs answer BADREQ" true
    (has_prefix "error BADREQ" (reply_exn router "frobnicate now"));
  (match Router.dispatch router "# comment" with
  | `None -> ()
  | `Reply _ | `Quit -> Alcotest.fail "comments are ignored");
  (match Router.dispatch router "quit" with
  | `Quit -> ()
  | `Reply _ | `None -> Alcotest.fail "quit ends the connection");
  b0.b_kill ()

(* --- epoch-consistent deployment ---------------------------------------------- *)

(* a serve_backend whose generation lives in a swap cell with real
   two-phase staging over an on-disk artifact: Serve.listen's reload
   machinery in miniature, but hard-killable like every other backend
   in this suite *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* full-artifact bytes for one version of the fixture pattern set,
   stamped with the given WAL sequence; [support] varies the content *)
let artifact_bytes t db ~seq ~support =
  let config =
    { Taxogram.min_support = support; max_edges = Some 2;
      enhancements = Specialize.all_on }
  in
  let patterns =
    (Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) t db)
      .Taxogram.patterns
  in
  let edge_labels = Label.of_names [ "e0" ] in
  Epoch.stamp ~seq
    (Pattern_io.to_string ~node_labels:(Taxonomy.labels t) ~edge_labels
       ~db_size:(Db.size db) patterns)

(* engine + labels + epoch from the artifact at [path], sliced for shard
   [si] of [nshards] exactly the way [tsg-serve --shard] does *)
let build_gen t ~shard:(si, nshards) path =
  let contents = Safe_io.read_file path in
  match Epoch.verify_stamp contents with
  | Error msg -> Error msg
  | Ok () ->
    let edge_labels = Label.create () in
    let full = Store.of_strings ~taxonomy:t ~edge_labels [ (path, contents) ] in
    let store =
      if nshards = 1 then full
      else begin
        let map = Shard_map.create ~shards:nshards () in
        Store.slice full ~keep:(fun i ->
            Shard_map.shard_of_key map (Pattern.key (Store.pattern full i)) = si)
      end
    in
    let epoch = Epoch.of_sources [ (path, contents) ] in
    Ok
      ( {
          Serve.gen_engine =
            Engine.create ~epoch ~metrics:(Metrics.create ()) store;
          gen_labels = edge_labels;
          gen_checksum = Some (Serve.checksum_strings [ contents ]);
        },
        epoch )

type epoch_backend = {
  e_port : int;
  e_kill : unit -> unit;
  e_swaps : unit -> int;  (** generations promoted (reload or commit) *)
  e_staged : unit -> bool;
  e_epoch : unit -> Epoch.t;  (** the serving epoch right now *)
}

let epoch_backend ?(fail_prepare = ref false) t ~shard path =
  let gen0 =
    match build_gen t ~shard path with
    | Ok g -> g
    | Error msg -> Alcotest.fail msg
  in
  let cell = Atomic.make gen0 in
  let slock = Mutex.create () in
  let staged = ref None in
  let swaps = Atomic.make 0 in
  let promote g =
    Atomic.set cell g;
    Atomic.incr swaps
  in
  let size_of (gen, _) = Store.size (Engine.store gen.Serve.gen_engine) in
  let csum_of (gen, _) = Option.value ~default:0L gen.Serve.gen_checksum in
  let prepare () =
    if !fail_prepare then Error "injected prepare failure"
    else
      match build_gen t ~shard path with
      | Error msg -> Error msg
      | Ok ((_, e) as g) ->
        locked slock (fun () -> staged := Some g);
        Ok
          (Printf.sprintf "prepare epoch %s patterns %d checksum %016Lx"
             (Epoch.to_string e) (size_of g) (csum_of g))
  in
  let commit () =
    match
      locked slock (fun () ->
          let s = !staged in
          staged := None;
          s)
    with
    | None -> Error "nothing prepared"
    | Some ((_, e) as g) ->
      promote g;
      Ok
        (Printf.sprintf "commit epoch %s patterns %d" (Epoch.to_string e)
           (size_of g))
  in
  let abort () =
    locked slock (fun () -> staged := None);
    Ok "abort"
  in
  let reloader () =
    match build_gen t ~shard path with
    | Error msg -> Error msg
    | Ok ((_, e) as g) ->
      locked slock (fun () -> staged := None);
      promote g;
      Ok
        (Printf.sprintf "patterns %d checksum %016Lx epoch %s" (size_of g)
           (csum_of g) (Epoch.to_string e))
  in
  let staging =
    {
      Serve.stage_prepare = prepare;
      stage_commit = commit;
      stage_abort = abort;
    }
  in
  let current () = fst (Atomic.get cell) in
  let b =
    serve_backend ~reloader ~staging ~current
      (Engine.store (fst gen0).Serve.gen_engine)
  in
  {
    e_port = b.b_port;
    e_kill = b.b_kill;
    e_swaps = (fun () -> Atomic.get swaps);
    e_staged = (fun () -> locked slock (fun () -> !staged <> None));
    e_epoch = (fun () -> snd (Atomic.get cell));
  }

let epoch_fixture () =
  let t = fixture_taxonomy () in
  let db = fixture_db t in
  (* two genuinely different artifact versions: looser and tighter
     support thresholds keep different pattern sets *)
  let v1 = artifact_bytes t db ~seq:1L ~support:0.3 in
  let v2 = artifact_bytes t db ~seq:2L ~support:1.0 in
  (t, v1, v2)

(* the single-node oracle: one unsharded engine over the same bytes *)
let reference t contents line =
  let edge_labels = Label.create () in
  let store = Store.of_strings ~taxonomy:t ~edge_labels [ ("ref", contents) ] in
  let engine = Engine.create ~metrics:(Metrics.create ()) store in
  match Protocol.parse ~taxonomy:t ~edge_labels line with
  | Some q -> Serve.answer engine q
  | None -> Alcotest.fail ("not a data query: " ^ line)
  | exception Protocol.Parse_error _ -> Alcotest.fail ("unparseable: " ^ line)

let epoch_of bytes = Epoch.of_sources [ ("artifact", bytes) ]

let with_epoch_pair f =
  let t, v1, v2 = epoch_fixture () in
  let p0 = Filename.temp_file "tsg_epoch" ".pat" in
  let p1 = Filename.temp_file "tsg_epoch" ".pat" in
  write_file p0 v1;
  write_file p1 v1;
  let fail_prepare = ref false in
  let b0 = epoch_backend t ~shard:(0, 1) p0 in
  let b1 = epoch_backend ~fail_prepare t ~shard:(0, 1) p1 in
  Fun.protect
    ~finally:(fun () ->
      b0.e_kill ();
      b1.e_kill ();
      (try Sys.remove p0 with Sys_error _ -> ());
      try Sys.remove p1 with Sys_error _ -> ())
    (fun () -> f ~t ~v1 ~v2 ~p0 ~p1 ~b0 ~b1 ~fail_prepare)

let epoch_router ?(resync = true) ?on_diagnostic t backends =
  let metrics = Metrics.create () in
  let router =
    Router.create
      ~config:
        { Router.default_config with deadline_s = 5.0; hedge_min_s = 0.01;
          reload_gate_s = 5.0; resync }
      ~taxonomy:t
      ?on_diagnostic ~metrics
      ~shards:
        (Array.of_list
           (List.mapi
              (fun si reps ->
                Array.of_list
                  (List.mapi
                     (fun ri (b : epoch_backend) ->
                       replica b.e_port (Printf.sprintf "%d/%d" si ri))
                     reps))
              backends))
      ()
  in
  (router, metrics)

let test_two_phase_reload_flips_epoch () =
  with_epoch_pair (fun ~t ~v1 ~v2 ~p0 ~p1 ~b0 ~b1 ~fail_prepare:_ ->
      let router, metrics = epoch_router t [ [ b0; b1 ] ] in
      let q = "top-k 5 support" in
      check string "pre-reload answers match the unsharded v1 engine"
        (reference t v1 q) (reply_exn router q);
      check string "no pin before the first reload" "ok epoch none"
        (reply_exn router "epoch");
      (* push v2 to every replica's disk, then roll *)
      write_file p0 v2;
      write_file p1 v2;
      let e2 = epoch_of v2 in
      check string "two-phase reload reports the new epoch"
        (Printf.sprintf "ok reload replicas 2 epoch %s" (Epoch.to_string e2))
        (reply_exn router "reload");
      check bool "target pin flipped" true
        (match Router.target_epoch router with
        | Some e -> Epoch.equal e e2
        | None -> false);
      check string "epoch verb reports the pin"
        (Printf.sprintf "ok epoch %s" (Epoch.to_string e2))
        (reply_exn router "epoch");
      let health = reply_exn router "health" in
      check bool "health counts the fleet and the pin" true
        (has_prefix "ok health shards 1 replicas 2 up 2 degraded 0" health
        &&
        let suffix = " epoch " ^ Epoch.to_string e2 in
        String.length health >= String.length suffix
        && String.sub health
             (String.length health - String.length suffix)
             (String.length suffix)
           = suffix);
      check int "each replica swapped exactly once" 2
        (b0.e_swaps () + b1.e_swaps ());
      check bool "both replicas serve the new epoch" true
        (Epoch.equal (b0.e_epoch ()) e2 && Epoch.equal (b1.e_epoch ()) e2);
      check bool "no staged swap left behind" true
        ((not (b0.e_staged ())) && not (b1.e_staged ()));
      check int "reload counted" 1 (counter_value metrics "cluster.reloads");
      check string "post-reload answers match the unsharded v2 engine"
        (reference t v2 q) (reply_exn router q))

let test_two_phase_abort_leaves_epoch_unchanged () =
  with_epoch_pair (fun ~t ~v1 ~v2 ~p0 ~p1 ~b0 ~b1 ~fail_prepare ->
      let router, metrics = epoch_router t [ [ b0; b1 ] ] in
      let q = "top-k 5 support" in
      let e1 = epoch_of v1 in
      (* (a) torn artifact push: one replica's disk has v2, the other
         still v1 — prepare stages mixed epochs and the round aborts *)
      write_file p0 v2;
      check bool "mixed-epoch prepare aborts with error RELOAD" true
        (has_prefix "error RELOAD" (reply_exn router "reload"));
      check int "abort counted" 1
        (counter_value metrics "cluster.reload_aborts");
      check bool "every staged swap released" true
        ((not (b0.e_staged ())) && not (b1.e_staged ()));
      check int "nothing committed" 0 (b0.e_swaps () + b1.e_swaps ());
      check bool "no target pin appeared" true
        (Router.target_epoch router = None);
      check bool "both replicas still serve v1" true
        (Epoch.equal (b0.e_epoch ()) e1 && Epoch.equal (b1.e_epoch ()) e1);
      check string "answers still match the unsharded v1 engine"
        (reference t v1 q) (reply_exn router q);
      (* (b) a replica that refuses to prepare aborts the round too *)
      write_file p1 v2;
      fail_prepare := true;
      check bool "refused prepare aborts" true
        (has_prefix "error RELOAD" (reply_exn router "reload"));
      check int "second abort counted" 2
        (counter_value metrics "cluster.reload_aborts");
      check int "still nothing committed" 0 (b0.e_swaps () + b1.e_swaps ());
      check bool "still serving v1" true
        (Epoch.equal (b0.e_epoch ()) e1 && Epoch.equal (b1.e_epoch ()) e1);
      (* (c) once the failure clears, the same roll goes through *)
      fail_prepare := false;
      check bool "reload succeeds after the failure clears" true
        (has_prefix "ok reload replicas 2 epoch " (reply_exn router "reload"));
      check string "answers now match the unsharded v2 engine"
        (reference t v2 q) (reply_exn router q))

let test_scrub_fences_and_repairs_straggler () =
  with_epoch_pair (fun ~t ~v1:_ ~v2 ~p0 ~p1 ~b0 ~b1 ~fail_prepare:_ ->
      let diags = ref [] in
      let dlock = Mutex.create () in
      let on_diagnostic d = locked dlock (fun () -> diags := d :: !diags) in
      let rules () =
        locked dlock (fun () -> List.map (fun d -> d.Diagnostic.rule) !diags)
      in
      let router, metrics = epoch_router ~on_diagnostic t [ [ b0; b1 ] ] in
      let reps = (Router.shards router).(0) in
      let e2 = epoch_of v2 in
      (* replica 1 races ahead: an operator pushes v2 to its disk and
         reloads it directly, bypassing the router *)
      write_file p1 v2;
      (match Replica.call reps.(1) "reload" with
      | Ok block when has_prefix "ok reload" block -> ()
      | Ok block -> Alcotest.fail ("direct reload refused: " ^ block)
      | Error msg -> Alcotest.fail ("direct reload failed: " ^ msg));
      check bool "replica 1 serves the new epoch" true
        (Epoch.equal (b1.e_epoch ()) e2);
      (* first scrub: the target moves to the newest served epoch;
         replica 0 (still v1 on disk) is fenced, and resync — reloading
         the stale artifact — cannot reach the target: RSY002 *)
      check int "one replica left fenced" 1 (Router.scrub router);
      check bool "target recomputed to the newest epoch" true
        (match Router.target_epoch router with
        | Some e -> Epoch.equal e e2
        | None -> false);
      check bool "behind replica fenced" true (Replica.degraded reps.(0));
      check bool "RSY001 raised on the fence" true
        (List.mem "RSY001" (rules ()));
      check bool "RSY002 raised when resync cannot reach the target" true
        (List.mem "RSY002" (rules ()));
      check bool "resync attempted" true
        (counter_value metrics "cluster.resyncs" >= 1);
      (* the fenced replica takes no data traffic: every answer is still
         byte-identical to the unsharded engine at the target epoch *)
      let q = "top-k 5 support" in
      check string "queries route around the fenced replica"
        (reference t v2 q) (reply_exn router q);
      (* the artifact push finally lands on replica 0; the next scrub
         round repairs and unfences it *)
      write_file p0 v2;
      check int "scrub repaired the straggler" 0 (Router.scrub router);
      check bool "unfenced after repair" true
        (not (Replica.degraded reps.(0)));
      check bool "repaired replica serves the target epoch" true
        (Epoch.equal (b0.e_epoch ()) e2);
      check string "whole cluster answers at the target epoch"
        (reference t v2 q) (reply_exn router q))

let test_scrub_no_resync_only_fences () =
  with_epoch_pair (fun ~t ~v1:_ ~v2 ~p0 ~p1 ~b0 ~b1 ~fail_prepare:_ ->
      let router, metrics = epoch_router ~resync:false t [ [ b0; b1 ] ] in
      let reps = (Router.shards router).(0) in
      (* both disks hold v2, but only replica 1 reloaded: replica 0 is
         repairable, yet --no-resync means the scrubber may only fence *)
      write_file p0 v2;
      write_file p1 v2;
      (match Replica.call reps.(1) "reload" with
      | Ok block when has_prefix "ok reload" block -> ()
      | Ok block -> Alcotest.fail ("direct reload refused: " ^ block)
      | Error msg -> Alcotest.fail ("direct reload failed: " ^ msg));
      check int "straggler fenced" 1 (Router.scrub router);
      check bool "fenced, not repaired" true (Replica.degraded reps.(0));
      check int "no repair reload was sent" 1 (b0.e_swaps () + b1.e_swaps ());
      check int "no resync attempted" 0
        (counter_value metrics "cluster.resyncs");
      check int "stays fenced on the next round" 1 (Router.scrub router);
      (* clients still get single-epoch answers from the up replica *)
      let q = "top-k 5 support" in
      check string "answers come from the target epoch"
        (reference t v2 q) (reply_exn router q))

let test_scrub_fault_skips_round () =
  with_epoch_pair (fun ~t ~v1:_ ~v2:_ ~p0:_ ~p1:_ ~b0 ~b1 ~fail_prepare:_ ->
      let router, metrics = epoch_router t [ [ b0; b1 ] ] in
      Fault.configure [ ("scrub.probe", Fault.Once) ];
      Fun.protect ~finally:Fault.clear (fun () ->
          check int "faulted round just reports the current fencing" 0
            (Router.scrub router);
          check bool "lost round counted" true
            (counter_value metrics "cluster.scrub_faults" >= 1);
          check int "the next round scrubs normally" 0 (Router.scrub router);
          check bool "scrub counted" true
            (counter_value metrics "cluster.scrubs" >= 1)))

(* the deployment acceptance property: under random interleavings of
   replica kills, aborted (torn-push) prepares and two-phase reloads,
   every [ok] reply the router hands a client is byte-identical to ONE
   unsharded engine at a single artifact epoch (v1 or v2) — never a
   mixed-version merge, whatever the cluster went through *)
let epoch_interleaving_prop =
  let t = fixture_taxonomy () in
  let db = fixture_db t in
  let v1 = artifact_bytes t db ~seq:1L ~support:0.3 in
  let v2 = artifact_bytes t db ~seq:2L ~support:1.0 in
  let queries =
    [ "top-k 1 support"; "top-k 3 support"; "top-k 8 support"; "by-label b" ]
  in
  let ref_v1 = List.map (fun q -> (q, reference t v1 q)) queries in
  let ref_v2 = List.map (fun q -> (q, reference t v2 q)) queries in
  QCheck.Test.make
    ~name:"interleaved kills/aborts/reloads never serve a mixed epoch"
    ~count:6
    QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (int_range 1 2))
    (fun (seed, nshards) ->
      let rng = Prng.of_int seed in
      let paths =
        Array.init nshards (fun _ ->
            Array.init 2 (fun _ -> Filename.temp_file "tsg_epochq" ".pat"))
      in
      Array.iter (Array.iter (fun p -> write_file p v1)) paths;
      let backends =
        Array.init nshards (fun si ->
            Array.init 2 (fun ri ->
                epoch_backend t ~shard:(si, nshards) paths.(si).(ri)))
      in
      let killed = Array.map (Array.map (fun _ -> false)) backends in
      Fun.protect
        ~finally:(fun () ->
          Array.iteri
            (fun si reps ->
              Array.iteri
                (fun ri b -> if not killed.(si).(ri) then b.e_kill ())
                reps)
            backends;
          Array.iter
            (Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()))
            paths)
        (fun () ->
          let router, _metrics =
            epoch_router t
              (Array.to_list (Array.map Array.to_list backends))
          in
          let ok = ref true in
          let check_queries () =
            List.iter
              (fun q ->
                match Router.dispatch router q with
                | `Reply r ->
                  (* coded errors (whole shard down, deadline) are an
                     allowed outcome; an [ok] must be one whole version *)
                  if has_prefix "ok " r then begin
                    let at_v1 = r = List.assoc q ref_v1 in
                    let at_v2 = r = List.assoc q ref_v2 in
                    if not (at_v1 || at_v2) then ok := false
                  end
                | `Quit | `None -> ok := false)
              queries
          in
          check_queries ();
          let everyone v =
            Array.iter (Array.iter (fun p -> write_file p v)) paths
          in
          let ops = 3 + Prng.int rng 3 in
          for _ = 1 to ops do
            (match Prng.int rng 4 with
            | 0 ->
              (* clean push + two-phase roll to a random version *)
              everyone (if Prng.int rng 2 = 0 then v1 else v2);
              ignore (Router.dispatch router "reload")
            | 1 ->
              (* torn push: one replica's disk disagrees — the roll must
                 abort (or fail on a dead replica) and change nothing *)
              everyone v1;
              write_file paths.(0).(0) v2;
              (match Router.dispatch router "reload" with
              | `Reply r ->
                if not (has_prefix "error RELOAD" r) then ok := false
              | `Quit | `None -> ok := false)
            | 2 ->
              (* SIGKILL one replica, chosen at random *)
              let si = Prng.int rng nshards in
              let ri = Prng.int rng 2 in
              if not killed.(si).(ri) then begin
                backends.(si).(ri).e_kill ();
                killed.(si).(ri) <- true
              end
            | _ -> () (* an extra client round between faults *));
            check_queries ()
          done;
          !ok))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cluster"
    [
      ( "shard-map",
        [
          Alcotest.test_case "deterministic" `Quick test_ring_determinism;
          Alcotest.test_case "covers every shard" `Quick test_ring_coverage;
          Alcotest.test_case "resharding moves a minority" `Quick
            test_ring_stability;
          Alcotest.test_case "rejects invalid sizes" `Quick test_ring_invalid;
          Alcotest.test_case "fingerprint is fnv1a64" `Quick
            test_fingerprint_is_fnv1a64;
        ] );
      ( "slice",
        [
          Alcotest.test_case "external ids" `Quick test_slice_external_ids;
          Alcotest.test_case "partition" `Quick test_slice_partition;
          Alcotest.test_case "composes" `Quick test_slice_composes;
          Alcotest.test_case "inherits interest" `Quick
            test_slice_inherits_interest;
        ] );
      ( "merge",
        [
          Alcotest.test_case "verb of query" `Quick test_verb_of_query;
          Alcotest.test_case "list sorts and dedups" `Quick
            test_merge_list_sorts_and_dedups;
          Alcotest.test_case "top-k support tie-break" `Quick
            test_merge_top_k_support;
          Alcotest.test_case "top-k interest" `Quick test_merge_top_k_interest;
          Alcotest.test_case "propagates first error" `Quick
            test_merge_propagates_first_error;
          Alcotest.test_case "rejects malformed" `Quick
            test_merge_rejects_malformed;
          Alcotest.test_case "refuses mixed epochs" `Quick
            test_merge_refuses_mixed_epochs;
        ] );
      ( "equivalence",
        Alcotest.test_case "interest identical across shard counts" `Quick
          test_interest_merge_identity
        :: qsuite [ sharding_equivalence_prop ] );
      ( "router",
        [
          Alcotest.test_case "verbs and tags" `Quick test_router_verbs_and_tags;
          Alcotest.test_case "failover: kill one replica, zero errors" `Quick
            test_router_failover_zero_errors;
          Alcotest.test_case "whole shard dead answers UNAVAILABLE" `Quick
            test_router_all_dead_unavailable;
          Alcotest.test_case "OVERLOADED replies fail over" `Quick
            test_router_overloaded_failover;
          Alcotest.test_case "hedging beats a slow replica" `Quick
            test_router_hedges_past_slow_replica;
          Alcotest.test_case "hedge wins are accounted" `Quick
            test_hedge_win_is_counted;
          Alcotest.test_case "rolling reload walks every replica" `Quick
            test_rolling_reload_walks_every_replica;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "two-phase reload flips the cluster epoch" `Quick
            test_two_phase_reload_flips_epoch;
          Alcotest.test_case "aborted reload leaves the epoch unchanged" `Quick
            test_two_phase_abort_leaves_epoch_unchanged;
          Alcotest.test_case "scrub fences and repairs a straggler" `Quick
            test_scrub_fences_and_repairs_straggler;
          Alcotest.test_case "no-resync scrub only fences" `Quick
            test_scrub_no_resync_only_fences;
          Alcotest.test_case "faulted scrub round is skipped" `Quick
            test_scrub_fault_skips_round;
        ]
        @ qsuite [ epoch_interleaving_prop ] );
    ]
