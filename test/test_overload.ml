(* Overload-resilience suite: the Limiter primitives under a virtual
   clock, the Admission gate (queue bound, per-client rate, CoDel
   deadline shedding, the degradation ladder), equivalence properties
   (degraded modes never change the result of an admitted query), a
   deterministic 4x-saturation simulation, and hot artifact reload under
   live TCP traffic (zero dropped in-flight requests, corrupt artifacts
   roll back with SRV00x diagnostics). *)

module Limiter = Tsg_util.Limiter
module Metrics = Tsg_util.Metrics
module Diagnostic = Tsg_util.Diagnostic
module Prng = Tsg_util.Prng
module Label = Tsg_graph.Label
module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Pattern_io = Tsg_core.Pattern_io
module Taxogram = Tsg_core.Taxogram
module Specialize = Tsg_core.Specialize
module Store = Tsg_query.Store
module Engine = Tsg_query.Engine
module Admission = Tsg_query.Admission
module Protocol = Tsg_query.Protocol
module Serve = Tsg_query.Serve

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* a controllable clock: tests advance time explicitly, nothing sleeps *)
let vclock () =
  let now = ref 0.0 in
  ((fun () -> !now), fun dt -> now := !now +. dt)

let has_prefix p l =
  String.length l >= String.length p && String.sub l 0 (String.length p) = p

(* --- Limiter.Token_bucket -------------------------------------------------- *)

let test_bucket_burst_and_refill () =
  let clock, advance = vclock () in
  let b = Limiter.Token_bucket.create ~clock ~rate:1.0 ~burst:3.0 () in
  check bool "burst of 3 admitted" true
    (Limiter.Token_bucket.try_take b
    && Limiter.Token_bucket.try_take b
    && Limiter.Token_bucket.try_take b);
  check bool "4th shed" false (Limiter.Token_bucket.try_take b);
  check (Alcotest.float 1e-9) "retry-after one token" 1.0
    (Limiter.Token_bucket.retry_after_s b);
  advance 2.0;
  check bool "refilled 2 tokens" true
    (Limiter.Token_bucket.try_take b && Limiter.Token_bucket.try_take b);
  check bool "but not 3" false (Limiter.Token_bucket.try_take b)

let test_bucket_backwards_clock () =
  let now = ref 100.0 in
  let b =
    Limiter.Token_bucket.create ~clock:(fun () -> !now) ~rate:10.0 ~burst:2.0 ()
  in
  check bool "take" true (Limiter.Token_bucket.try_take b);
  now := 0.0;
  (* a clock stepping backwards must neither drain nor refill the bucket *)
  check (Alcotest.float 1e-9) "one token left" 1.0
    (Limiter.Token_bucket.available b);
  check bool "still takes the remaining token" true
    (Limiter.Token_bucket.try_take b);
  check bool "then sheds" false (Limiter.Token_bucket.try_take b)

(* --- Limiter.Breaker -------------------------------------------------------- *)

let test_breaker_trip_and_recover () =
  let clock, advance = vclock () in
  let b =
    Limiter.Breaker.create ~clock ~window:16 ~min_samples:4 ~failure_ratio:0.5
      ~cooldown_s:1.0 ()
  in
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  check bool "below min_samples stays closed" true
    (Limiter.Breaker.state b = Limiter.Breaker.Closed);
  Limiter.Breaker.record b ~ok:false;
  check bool "tripped open" true
    (Limiter.Breaker.state b = Limiter.Breaker.Open);
  check bool "open sheds" false (Limiter.Breaker.allow b);
  check bool "retry-after bounded by cooldown" true
    (Limiter.Breaker.retry_after_s b <= 1.0);
  advance 1.1;
  check bool "half-open after cooldown" true
    (Limiter.Breaker.state b = Limiter.Breaker.Half_open);
  check bool "single probe allowed" true (Limiter.Breaker.allow b);
  check bool "second probe gated" false (Limiter.Breaker.allow b);
  Limiter.Breaker.record b ~ok:true;
  check bool "good probe closes" true
    (Limiter.Breaker.state b = Limiter.Breaker.Closed);
  (* the window was forgotten: it takes min_samples fresh failures to
     trip again *)
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  check bool "still closed on stale history" true
    (Limiter.Breaker.state b = Limiter.Breaker.Closed)

let test_breaker_failed_probe_reopens () =
  let clock, advance = vclock () in
  let b =
    Limiter.Breaker.create ~clock ~window:8 ~min_samples:2 ~failure_ratio:0.5
      ~cooldown_s:1.0 ()
  in
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  check bool "open" true (Limiter.Breaker.state b = Limiter.Breaker.Open);
  advance 1.5;
  check bool "probe allowed" true (Limiter.Breaker.allow b);
  Limiter.Breaker.record b ~ok:false;
  check bool "failed probe reopens" true
    (Limiter.Breaker.state b = Limiter.Breaker.Open);
  check bool "fresh cooldown" true (Limiter.Breaker.retry_after_s b > 0.0)

(* --- Limiter.Window --------------------------------------------------------- *)

let test_window_percentile () =
  let w = Limiter.Window.create ~capacity:200 in
  check (Alcotest.float 0.0) "empty is 0" 0.0 (Limiter.Window.percentile w 99.0);
  for i = 1 to 100 do
    Limiter.Window.observe w (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50 nearest-rank" 50.0
    (Limiter.Window.percentile w 50.0);
  check (Alcotest.float 1e-9) "p99 nearest-rank" 99.0
    (Limiter.Window.percentile w 99.0);
  check (Alcotest.float 1e-9) "p100 is max" 100.0
    (Limiter.Window.percentile w 100.0)

let test_window_single_sample () =
  let w = Limiter.Window.create ~capacity:8 in
  Limiter.Window.observe w 42.0;
  List.iter
    (fun q ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "p%.0f of one sample is the sample" q)
        42.0
        (Limiter.Window.percentile w q))
    [ 1.0; 50.0; 95.0; 99.0; 100.0 ];
  check int "count" 1 (Limiter.Window.count w);
  check (Alcotest.float 1e-9) "max" 42.0 (Limiter.Window.max_value w)

let test_window_wraparound_percentiles () =
  (* capacity 5, 7 observations: the ring wrapped, only 3..7 remain —
     every percentile must be computed over the surviving window, in
     sorted order regardless of ring position *)
  let w = Limiter.Window.create ~capacity:5 in
  for i = 1 to 7 do
    Limiter.Window.observe w (float_of_int i)
  done;
  check int "count capped at capacity" 5 (Limiter.Window.count w);
  check int "total keeps history" 7 (Limiter.Window.total w);
  (* nearest-rank over [3;4;5;6;7]: rank = ceil(q/100 * 5) *)
  List.iter
    (fun (q, expect) ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "p%.0f after wrap" q)
        expect
        (Limiter.Window.percentile w q))
    [ (1.0, 3.0); (20.0, 3.0); (40.0, 4.0); (50.0, 5.0); (95.0, 7.0);
      (100.0, 7.0) ];
  (* exactly one more wrap step drops the oldest survivor *)
  Limiter.Window.observe w 8.0;
  check (Alcotest.float 1e-9) "oldest forgotten" 4.0
    (Limiter.Window.percentile w 1.0)

let test_window_slides () =
  let w = Limiter.Window.create ~capacity:4 in
  for i = 1 to 8 do
    Limiter.Window.observe w (float_of_int i)
  done;
  check int "count capped" 4 (Limiter.Window.count w);
  check int "total keeps history" 8 (Limiter.Window.total w);
  (* only 5..8 remain in the window *)
  check (Alcotest.float 1e-9) "old observations forgotten" 5.0
    (Limiter.Window.percentile w 1.0);
  check (Alcotest.float 1e-9) "max over window" 8.0
    (Limiter.Window.max_value w)

let test_breaker_half_open_retrip () =
  let clock, advance = vclock () in
  let b =
    Limiter.Breaker.create ~clock ~window:8 ~min_samples:3 ~failure_ratio:0.5
      ~cooldown_s:1.0 ()
  in
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  check bool "tripped" true (Limiter.Breaker.state b = Limiter.Breaker.Open);
  advance 1.1;
  check bool "half-open" true
    (Limiter.Breaker.state b = Limiter.Breaker.Half_open);
  check bool "probe allowed" true (Limiter.Breaker.allow b);
  Limiter.Breaker.record b ~ok:true;
  check bool "good probe closes" true
    (Limiter.Breaker.state b = Limiter.Breaker.Closed);
  (* recovery cleared the window: re-tripping needs min_samples FRESH
     failures, two are not enough *)
  Limiter.Breaker.record b ~ok:false;
  Limiter.Breaker.record b ~ok:false;
  check bool "stale history cannot re-trip" true
    (Limiter.Breaker.state b = Limiter.Breaker.Closed);
  Limiter.Breaker.record b ~ok:false;
  check bool "third fresh failure re-trips" true
    (Limiter.Breaker.state b = Limiter.Breaker.Open);
  check bool "re-trip sheds again" false (Limiter.Breaker.allow b);
  advance 1.1;
  check bool "and cools down again" true
    (Limiter.Breaker.state b = Limiter.Breaker.Half_open)

(* --- Admission -------------------------------------------------------------- *)

let admission ?(config = Admission.default_config) clock =
  let metrics = Metrics.create () in
  (Admission.create ~clock ~config ~metrics (), metrics)

let shed_reason = function
  | Admission.Shed { reason; _ } -> Some reason
  | Admission.Admit _ -> None

let ticket_exn = function
  | Admission.Admit t -> t
  | Admission.Shed _ -> Alcotest.fail "expected Admit"

let test_admission_queue_bound () =
  let clock, _ = vclock () in
  let adm, metrics =
    admission ~config:{ Admission.default_config with max_queue = 2; ladder = false } clock
  in
  let cl = Admission.client adm in
  let t1 = ticket_exn (Admission.admit adm cl Admission.Contains) in
  let _t2 = ticket_exn (Admission.admit adm cl Admission.Contains) in
  check bool "3rd arrival sheds Queue_full" true
    (shed_reason (Admission.admit adm cl Admission.Contains)
    = Some Admission.Queue_full);
  check int "in flight" 2 (Admission.in_flight adm);
  (match Admission.start adm t1 with
  | `Run _ -> Admission.finish adm t1 ~ok:true
  | `Expired _ -> Alcotest.fail "no deadline configured");
  check int "slot freed" 1 (Admission.in_flight adm);
  check bool "admits again" true
    (shed_reason (Admission.admit adm cl Admission.Contains) = None);
  check int "metric" 1
    (Metrics.value (Metrics.counter metrics "serve.shed.queue_full"))

let test_admission_client_rate () =
  let clock, advance = vclock () in
  let config =
    { Admission.default_config with client_rate = 1.0; client_burst = 2.0;
      ladder = false }
  in
  let adm, metrics = admission ~config clock in
  let cl = Admission.client adm in
  check bool "burst admitted" true
    (shed_reason (Admission.admit adm cl Admission.Contains) = None
    && shed_reason (Admission.admit adm cl Admission.Contains) = None);
  (match[@warning "-4"] Admission.admit adm cl Admission.Contains with
  | Admission.Shed { reason = Admission.Rate; retry_after_s } ->
    check bool "retry-after positive" true (retry_after_s > 0.0)
  | _ -> Alcotest.fail "expected Rate shed");
  (* an unrelated client has its own bucket *)
  let other = Admission.client adm in
  check bool "other client unaffected" true
    (shed_reason (Admission.admit adm other Admission.Contains) = None);
  advance 1.0;
  check bool "token refilled" true
    (shed_reason (Admission.admit adm cl Admission.Contains) = None);
  check int "metric" 1
    (Metrics.value (Metrics.counter metrics "serve.shed.rate"))

let test_admission_codel_expiry () =
  let clock, advance = vclock () in
  let config =
    { Admission.default_config with queue_deadline_s = 0.5; ladder = false }
  in
  let adm, metrics = admission ~config clock in
  let cl = Admission.client adm in
  let t = ticket_exn (Admission.admit adm cl Admission.Contains) in
  advance 1.0;
  (match Admission.start adm t with
  | `Expired retry -> check bool "retry-after positive" true (retry > 0.0)
  | `Run _ -> Alcotest.fail "stale request must expire at dequeue");
  check int "accounting drained" 0 (Admission.in_flight adm);
  check int "metric" 1
    (Metrics.value (Metrics.counter metrics "serve.shed.deadline"));
  (* a fresh request sails through *)
  let t2 = ticket_exn (Admission.admit adm cl Admission.Contains) in
  match Admission.start adm t2 with
  | `Run _ -> Admission.finish adm t2 ~ok:true
  | `Expired _ -> Alcotest.fail "fresh request expired"

let test_admission_ladder_escalates_and_recovers () =
  let clock, _ = vclock () in
  let config =
    {
      Admission.default_config with
      max_queue = 64;
      level1_queue = 2;
      level2_queue = 4;
      level1_p99_s = 1000.0;
      level2_p99_s = 1000.0;
      recover_fraction = 0.5;
      top_k_cap = 10;
    }
  in
  let adm, metrics = admission ~config clock in
  let cl = Admission.client adm in
  let tickets = ref [] in
  let admit_contains () =
    tickets := ticket_exn (Admission.admit adm cl Admission.Contains) :: !tickets
  in
  admit_contains ();
  admit_contains ();
  check int "level 0 below threshold" 0 (Admission.level adm);
  admit_contains ();
  check int "depth 2 enters level 1" 1 (Admission.level adm);
  (* level 1: oversized top-k shed, small top-k and by-label admitted *)
  check bool "top-k over cap shed" true
    (shed_reason (Admission.admit adm cl (Admission.Top_k 100))
    = Some Admission.Degraded);
  tickets := ticket_exn (Admission.admit adm cl (Admission.Top_k 5)) :: !tickets;
  admit_contains ();
  check int "depth 4 enters level 2" 2 (Admission.level adm);
  (* level 2: everything but contains is shed *)
  check bool "by-label shed at level 2" true
    (shed_reason (Admission.admit adm cl Admission.By_label)
    = Some Admission.Degraded);
  check bool "small top-k shed at level 2" true
    (shed_reason (Admission.admit adm cl (Admission.Top_k 1))
    = Some Admission.Degraded);
  check bool "contains survives level 2" true
    (match Admission.admit adm cl Admission.Contains with
    | Admission.Admit t ->
      tickets := t :: !tickets;
      true
    | Admission.Shed _ -> false);
  check int "escalations counted" 2
    (Metrics.value (Metrics.counter metrics "serve.degrade.up"));
  check int "gauge tracks level" 2
    (Metrics.gauge_value (Metrics.gauge metrics "serve.degrade.level"));
  (* drain everything with instant sojourns: the ladder steps back down
     one level at a time (hysteresis) *)
  List.iter
    (fun t ->
      match Admission.start adm t with
      | `Run _ -> Admission.finish adm t ~ok:true
      | `Expired _ -> Alcotest.fail "no deadline configured")
    (List.rev !tickets);
  check int "recovered to level 0" 0 (Admission.level adm);
  check bool "recoveries counted" true
    (Metrics.value (Metrics.counter metrics "serve.degrade.down") >= 2)

let test_admission_ladder_latency_signal () =
  let clock, advance = vclock () in
  let config =
    {
      Admission.default_config with
      level1_queue = 1000;
      level2_queue = 2000;
      level1_p99_s = 0.1;
      level2_p99_s = 1000.0;
      window = 8;
    }
  in
  let adm, _ = admission ~config clock in
  let cl = Admission.client adm in
  let t = ticket_exn (Admission.admit adm cl Admission.Contains) in
  (match Admission.start adm t with
  | `Run _ ->
    advance 0.2;
    Admission.finish adm t ~ok:true
  | `Expired _ -> Alcotest.fail "no deadline configured");
  check int "slow p99 enters level 1" 1 (Admission.level adm)

let test_admission_pinned_ladder () =
  let clock, _ = vclock () in
  let config =
    { Admission.default_config with ladder = false; initial_level = 2 }
  in
  let adm, _ = admission ~config clock in
  let cl = Admission.client adm in
  check int "pinned" 2 (Admission.level adm);
  check bool "level-2 policy applies" true
    (shed_reason (Admission.admit adm cl Admission.By_label)
    = Some Admission.Degraded);
  let t = ticket_exn (Admission.admit adm cl Admission.Contains) in
  (match Admission.start adm t with
  | `Run level -> check int "executes at pinned level" 2 level
  | `Expired _ -> Alcotest.fail "no deadline configured");
  Admission.finish adm t ~ok:true;
  check int "never recovers when pinned" 2 (Admission.level adm)

(* --- fixtures: a small mined store ----------------------------------------- *)

let fixture_taxonomy () =
  Taxonomy.build
    ~names:[ "a"; "b"; "c"; "d"; "e" ]
    ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b") ]

let fixture_db t =
  let id n = Taxonomy.id_of_name t n in
  Db.of_list
    [
      Graph.build ~labels:[| id "d"; id "c" |] ~edges:[ (0, 1, 0) ];
      Graph.build ~labels:[| id "e"; id "c" |] ~edges:[ (0, 1, 0) ];
      Graph.build
        ~labels:[| id "d"; id "e"; id "c" |]
        ~edges:[ (0, 1, 0); (1, 2, 0) ];
    ]

let fixture_store () =
  let t = fixture_taxonomy () in
  let db = fixture_db t in
  let config =
    { Taxogram.min_support = 0.5; max_edges = Some 2;
      enhancements = Specialize.all_on }
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) t db in
  (t, db, Store.build ~taxonomy:t ~db_size:(Db.size db) r.Taxogram.patterns)

(* --- serve equivalence under degradation ------------------------------------ *)

let run_serve ?admission ?client store requests =
  let edge_labels = Label.of_names [ "e0" ] in
  let metrics = Metrics.create () in
  let engine = Engine.create ~metrics store in
  let req_path = Filename.temp_file "tsg_overload" ".req" in
  let out_path = Filename.temp_file "tsg_overload" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out req_path in
      output_string oc requests;
      close_out oc;
      let ic = open_in req_path and oc = open_out out_path in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            close_in ic;
            close_out oc)
          (fun () ->
            Serve.run ~exec:(Tsg_util.Pool.Exec.create ~domains:1 ()) ?admission ?client ~engine ~edge_labels ic oc)
      in
      let ic = open_in out_path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (outcome, text, metrics))

(* split a response stream into per-request blocks: an [ok <n>] header
   owns its n [p ...] result lines; every other line is its own block *)
let response_blocks text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  let rec go acc = function
    | [] -> List.rev acc
    | l :: rest when has_prefix "ok " l -> (
      match int_of_string_opt (String.sub l 3 (String.length l - 3)) with
      | Some n when n >= 0 ->
        let rec take k rs taken =
          if k = 0 then (List.rev taken, rs)
          else
            match rs with
            | r :: rs when has_prefix "p " r -> take (k - 1) rs (r :: taken)
            | _ -> (List.rev taken, rs)
        in
        let body, rest = take n rest [] in
        go ((l :: body) :: acc) rest
      | _ -> go ([ l ] :: acc) rest)
    | l :: rest -> go ([ l ] :: acc) rest
  in
  go [] lines

let pinned_admission level =
  Admission.create
    ~config:
      {
        Admission.default_config with
        ladder = false;
        initial_level = level;
        max_queue = 100_000;
      }
    ~metrics:(Metrics.create ()) ()

let random_requests rng t db =
  let names = Taxonomy.labels t in
  let edge_labels = Label.of_names [ "e0" ] in
  let graphs = Array.of_list (Db.to_list db) in
  let n = 5 + Prng.int rng 15 in
  List.init n (fun _ ->
      match Prng.int rng 4 with
      | 0 | 1 ->
        let g = graphs.(Prng.int rng (Array.length graphs)) in
        "contains " ^ Protocol.format_graph ~names ~edge_labels g
      | 2 ->
        let l = Prng.int rng (Taxonomy.label_count t) in
        "by-label " ^ Label.name names l
      | _ -> Printf.sprintf "top-k %d support" (Prng.int rng 300))

(* the acceptance property: at any pinned degradation level, each request
   is either shed with OVERLOADED or answered byte-identically to the
   un-gated server — degradation changes which queries run, never what an
   admitted query returns *)
let ladder_preserves_results_prop =
  let t, db, store = fixture_store () in
  QCheck.Test.make ~name:"ladder never changes an admitted result" ~count:40
    QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (int_bound 2))
    (fun (seed, level) ->
      let rng = Prng.of_int seed in
      let requests = random_requests rng t db in
      let text = String.concat "\n" (requests @ [ "quit"; "" ]) in
      let _, baseline, _ = run_serve store text in
      let _, gated, _ = run_serve ~admission:(pinned_admission level) store text in
      let base_blocks = response_blocks baseline in
      let gated_blocks = response_blocks gated in
      List.length base_blocks = List.length gated_blocks
      && List.for_all2
           (fun base gated ->
             match gated with
             | [ l ] when has_prefix "error OVERLOADED retry-after" l -> true
             | _ -> base = gated)
           base_blocks gated_blocks)

(* satellite: a capped or disabled LRU cache (the level-1 degradation)
   never changes contains results, only cache metrics *)
let cache_never_changes_results_prop =
  let _, db, store = fixture_store () in
  let targets = Array.of_list (Db.to_list db) in
  QCheck.Test.make ~name:"capped/disabled cache only moves cache metrics"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let queries =
        List.init
          (3 + Prng.int rng 10)
          (fun _ -> targets.(Prng.int rng (Array.length targets)))
      in
      let engines =
        List.map
          (fun capacity ->
            let metrics = Metrics.create () in
            (Engine.create ~cache_capacity:capacity ~metrics store, metrics))
          [ 0; 1; 1024 ]
      in
      let uncached_metrics = Metrics.create () in
      let uncached = Engine.create ~metrics:uncached_metrics store in
      List.for_all
        (fun target ->
          let expected = Engine.contains ~use_cache:false uncached target in
          List.for_all
            (fun (engine, _) -> Engine.contains engine target = expected)
            engines)
        queries
      &&
      (* the degraded path must leave the cache metrics untouched *)
      Metrics.value (Metrics.counter uncached_metrics "cache.hits") = 0
      && Metrics.value (Metrics.counter uncached_metrics "cache.misses") = 0)

(* --- deterministic 4x-saturation simulation --------------------------------- *)

(* a single-server queue driven through the real Admission logic on a
   virtual clock: arrivals every service/4 seconds. With CoDel enabled
   the stale head is shed and every served request's sojourn stays
   bounded by deadline + service; without it the backlog (and sojourn)
   grows without bound. The bench overload experiment is this same
   harness against the real engine. *)
let simulate ~codel ~n =
  let clock, _ = vclock () in
  let now = ref 0.0 in
  let clock () =
    ignore clock;
    !now
  in
  let service = 0.010 in
  let dt = service /. 4.0 in
  let config =
    {
      Admission.default_config with
      max_queue = n + 1;
      queue_deadline_s = (if codel then 0.05 else 0.0);
      ladder = false;
    }
  in
  let adm = Admission.create ~clock ~config ~metrics:(Metrics.create ()) () in
  let cl = Admission.client adm in
  let tickets =
    List.init n (fun i ->
        now := float_of_int i *. dt;
        (float_of_int i *. dt, Admission.admit adm cl Admission.Contains))
  in
  let t_free = ref 0.0 in
  let shed = ref 0 in
  let max_sojourn = ref 0.0 in
  List.iter
    (fun (arrival, decision) ->
      match decision with
      | Admission.Shed _ -> incr shed
      | Admission.Admit ticket -> (
        now := Float.max !t_free arrival;
        match Admission.start adm ticket with
        | `Expired _ -> incr shed
        | `Run _ ->
          now := !now +. service;
          t_free := !now;
          Admission.finish adm ticket ~ok:true;
          max_sojourn := Float.max !max_sojourn (!now -. arrival)))
    tickets;
  (!shed, !max_sojourn)

let test_codel_bounds_sojourn_under_4x () =
  let n = 400 in
  let shed, max_sojourn = simulate ~codel:true ~n in
  let shed_unprotected, max_unprotected = simulate ~codel:false ~n in
  check int "unprotected sheds nothing" 0 shed_unprotected;
  check bool "unprotected sojourn collapses (queues unboundedly)" true
    (max_unprotected > 10.0 *. 0.010);
  check bool "codel sheds the stale backlog" true (shed > 0);
  check bool "codel keeps served sojourn near deadline + service" true
    (max_sojourn <= 0.05 +. 0.010 +. 1e-9);
  check bool "most arrivals still shed under 4x" true
    (shed > n / 2)

(* --- TCP: hot reload under live traffic ------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* a listener over an on-disk artifact with reload enabled; returns the
   bound port, the metrics registry, collected diagnostics, and a stopper *)
let with_reload_listener f =
  let t, db, _ = fixture_store () in
  let node_labels = Taxonomy.labels t in
  let artifact = Filename.temp_file "tsg_overload" ".pat" in
  let mine ~support =
    let config =
      { Taxogram.min_support = support; max_edges = Some 2;
        enhancements = Specialize.all_on }
    in
    (Taxogram.run (Taxogram.Spec.collect ~config ~domains:1 ()) t db).Taxogram.patterns
  in
  let save patterns =
    let edge_labels = Label.of_names [ "e0" ] in
    write_file artifact
      (Pattern_io.to_string ~node_labels ~edge_labels ~db_size:(Db.size db)
         patterns)
  in
  save (mine ~support:0.5);
  let metrics = Metrics.create () in
  let diags = ref [] in
  let diag_lock = Mutex.create () in
  let on_diagnostic d =
    Mutex.lock diag_lock;
    diags := d :: !diags;
    Mutex.unlock diag_lock
  in
  let edge_labels = Label.create () in
  let store = Store.load ~taxonomy:t ~edge_labels [ artifact ] in
  let engine = Engine.create ~metrics store in
  let reload_build sources =
    let edge_labels = Label.create () in
    let store = Store.of_strings ~taxonomy:t ~edge_labels sources in
    (Engine.create ~metrics store, Array.to_list (Label.names edge_labels))
  in
  let admission =
    Admission.create
      ~config:{ Admission.default_config with max_queue = 100_000 }
      ~metrics ()
  in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let outcome = ref None in
  let server =
    Thread.create
      (fun () ->
        outcome :=
          Some
            (Serve.listen ~drain_s:5.0 ~admission
               ~checksum:(Serve.checksum_files [ artifact ])
               ~reload:{ Serve.reload_paths = [ artifact ]; reload_build }
               ~on_diagnostic
               ~on_listen:(fun p -> Atomic.set port p)
               ~should_stop:(fun () -> Atomic.get stop)
               ~engine ~edge_labels ~port:0 ()))
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check bool "listener came up" true (Atomic.get port <> 0);
  let finish () =
    Atomic.set stop true;
    Thread.join server;
    (try Sys.remove artifact with Sys_error _ -> ());
    match !outcome with
    | Some lo -> lo
    | None -> Alcotest.fail "listener did not return an outcome"
  in
  f
    ~port:(Atomic.get port)
    ~artifact ~metrics
    ~diags:(fun () ->
      Mutex.lock diag_lock;
      let d = !diags in
      Mutex.unlock diag_lock;
      d)
    ~save ~mine ~finish

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

(* read one response block: an [ok <n>] header plus the n result lines
   it owns, or a single line (errors, health, reload acks) *)
let read_block ic =
  let head = input_line ic in
  if has_prefix "ok " head then
    match int_of_string_opt (String.sub head 3 (String.length head - 3)) with
    | Some n ->
      let body = List.init n (fun _ -> input_line ic) in
      String.concat "\n" (head :: body)
    | None -> head
  else head

(* barrier verbs (health, reload) are answered immediately; data queries
   are batched until the next barrier, so an interactive client pipelines
   [contains ...] + [health] and reads both blocks back *)
let request_reply ic oc line =
  output_string oc (line ^ "\n");
  flush oc;
  read_block ic

let contains_roundtrip ic oc query =
  output_string oc (query ^ "\n");
  output_string oc "health\n";
  flush oc;
  let reply = read_block ic in
  let barrier = read_block ic in
  (reply, barrier)

let test_hot_reload_under_traffic () =
  with_reload_listener
    (fun ~port ~artifact:_ ~metrics ~diags:_ ~save ~mine ~finish ->
      let old_health =
        let fd, ic, oc = connect port in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> request_reply ic oc "health")
      in
      let checksum_token line =
        let rec after = function
          | "checksum" :: v :: _ -> Some v
          | _ :: rest -> after rest
          | [] -> None
        in
        after (String.split_on_char ' ' line)
      in
      check bool "health reports a checksum" true
        (match checksum_token old_health with
        | Some v -> v <> "-"
        | None -> false);
      (* clients blast contains queries while the artifact is swapped *)
      let per_client = 120 in
      let clients = 4 in
      let failures = Atomic.make 0 in
      let replies = Atomic.make 0 in
      let client () =
        let fd, ic, oc = connect port in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            for _ = 1 to per_client do
              let reply, barrier = contains_roundtrip ic oc "contains d,c 0-1" in
              Atomic.incr replies;
              if not (has_prefix "ok " reply) then Atomic.incr failures;
              if not (has_prefix "ok health" barrier) then Atomic.incr failures
            done)
      in
      let threads = List.init clients (fun _ -> Thread.create client ()) in
      (* mid-blast: swap in a genuinely different artifact (tighter
         support keeps only the patterns present in every graph) *)
      Thread.delay 0.05;
      save (mine ~support:1.0);
      let reload_reply =
        let fd, ic, oc = connect port in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> request_reply ic oc "reload")
      in
      List.iter Thread.join threads;
      check bool "reload acknowledged" true (has_prefix "ok reload" reload_reply);
      check int "every in-flight request answered" (clients * per_client)
        (Atomic.get replies);
      check int "zero dropped or failed requests" 0 (Atomic.get failures);
      check int "reload counted" 1
        (Metrics.value (Metrics.counter metrics "serve.reloads"));
      let new_health =
        let fd, ic, oc = connect port in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> request_reply ic oc "health")
      in
      check bool "checksum changed" true
        (match (checksum_token old_health, checksum_token new_health) with
        | Some a, Some b -> a <> b && b <> "-"
        | _ -> false);
      let lo = finish () in
      check bool "no disconnect storm" true
        (lo.Serve.aggregate.Serve.requests >= clients * per_client))

let test_corrupt_reload_rolls_back () =
  with_reload_listener
    (fun ~port ~artifact ~metrics ~diags ~save:_ ~mine:_ ~finish ->
      let fd, ic, oc = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let before, _ = contains_roundtrip ic oc "contains d,c 0-1" in
          check bool "serving before corruption" true (has_prefix "ok " before);
          write_file artifact "p # 0 support 1/1\nthis is not a pattern\n";
          let r = request_reply ic oc "reload" in
          check bool "reload refused with RELOAD code" true
            (has_prefix "error RELOAD" r);
          (* the old engine keeps serving, byte-identically *)
          let after, _ = contains_roundtrip ic oc "contains d,c 0-1" in
          check Alcotest.string "old engine still serving" before after;
          check int "rollback counted" 1
            (Metrics.value (Metrics.counter metrics "serve.reload.rollbacks"));
          check bool "SRV00x diagnostic emitted" true
            (List.exists
               (fun d ->
                 has_prefix "SRV" d.Diagnostic.rule
                 && d.Diagnostic.severity = Diagnostic.Error)
               (diags ())));
      ignore (finish ()))

let test_reload_unavailable_in_stdio () =
  let _, _, store = fixture_store () in
  let _, text, _ = run_serve store "reload\nquit\n" in
  check bool "stdio reload unavailable" true
    (has_prefix "error UNAVAILABLE reload is not enabled"
       (String.trim text))

(* --- bind addresses ---------------------------------------------------------- *)

let test_parse_bind_addr () =
  (match Serve.parse_bind_addr "0.0.0.0" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "0.0.0.0 must parse");
  (match Serve.parse_bind_addr "::1" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "::1 must parse");
  match Serve.parse_bind_addr "not-an-address" with
  | Ok _ -> Alcotest.fail "garbage must not parse"
  | Error d ->
    check Alcotest.string "rule code" "SRV001" d.Diagnostic.rule;
    check bool "severity" true (d.Diagnostic.severity = Diagnostic.Error)

(* --- serve-level shedding --------------------------------------------------- *)

let test_serve_sheds_with_overloaded_line () =
  let _, _, store = fixture_store () in
  let admission =
    Admission.create
      ~config:
        {
          Admission.default_config with
          client_rate = 1.0;
          client_burst = 1.0;
          ladder = false;
        }
      ~metrics:(Metrics.create ()) ()
  in
  let requests = "contains d,c 0-1\ncontains d,c 0-1\ncontains d,c 0-1\nquit\n" in
  let outcome, text, _ = run_serve ~admission store requests in
  let blocks = response_blocks text in
  let sheds =
    List.filter
      (function
        | [ l ] -> has_prefix "error OVERLOADED retry-after" l
        | _ -> false)
      blocks
  in
  check int "burst of 1 admitted, 2 shed" 2 (List.length sheds);
  check int "sheds counted as errors" 2 outcome.Serve.errors

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "overload"
    [
      ( "limiter",
        [
          Alcotest.test_case "token bucket burst + refill" `Quick
            test_bucket_burst_and_refill;
          Alcotest.test_case "token bucket backwards clock" `Quick
            test_bucket_backwards_clock;
          Alcotest.test_case "breaker trip + recover" `Quick
            test_breaker_trip_and_recover;
          Alcotest.test_case "breaker failed probe reopens" `Quick
            test_breaker_failed_probe_reopens;
          Alcotest.test_case "breaker half-open re-trip" `Quick
            test_breaker_half_open_retrip;
          Alcotest.test_case "window percentile" `Quick test_window_percentile;
          Alcotest.test_case "window single sample" `Quick
            test_window_single_sample;
          Alcotest.test_case "window wrap-around" `Quick
            test_window_wraparound_percentiles;
          Alcotest.test_case "window slides" `Quick test_window_slides;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue bound" `Quick test_admission_queue_bound;
          Alcotest.test_case "per-client rate" `Quick
            test_admission_client_rate;
          Alcotest.test_case "codel dequeue expiry" `Quick
            test_admission_codel_expiry;
          Alcotest.test_case "ladder escalates and recovers" `Quick
            test_admission_ladder_escalates_and_recovers;
          Alcotest.test_case "ladder follows p99" `Quick
            test_admission_ladder_latency_signal;
          Alcotest.test_case "pinned ladder" `Quick test_admission_pinned_ladder;
          Alcotest.test_case "4x saturation: codel bounds sojourn" `Quick
            test_codel_bounds_sojourn_under_4x;
        ] );
      ( "equivalence",
        qsuite [ ladder_preserves_results_prop; cache_never_changes_results_prop ]
      );
      ( "serve",
        [
          Alcotest.test_case "sheds with OVERLOADED + retry-after" `Quick
            test_serve_sheds_with_overloaded_line;
          Alcotest.test_case "reload unavailable in stdio" `Quick
            test_reload_unavailable_in_stdio;
          Alcotest.test_case "parse bind addr" `Quick test_parse_bind_addr;
          Alcotest.test_case "hot reload under live traffic" `Quick
            test_hot_reload_under_traffic;
          Alcotest.test_case "corrupt reload rolls back" `Quick
            test_corrupt_reload_rolls_back;
        ] );
    ]
