module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Synth_graph = Tsg_data.Synth_graph
module Datasets = Tsg_data.Datasets
module Pathways = Tsg_data.Pathways
module Pte = Tsg_data.Pte

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let go_taxonomy seed = Tsg_taxonomy.Go_like.generate ~concepts:300 (Prng.of_int seed)

(* --- Synth_graph ----------------------------------------------------------- *)

let small_params tax =
  {
    Synth_graph.graph_count = 40;
    max_edges = 12;
    edge_density = 0.25;
    edge_label_count = 5;
    node_label = Synth_graph.uniform_labels tax;
  }

let test_synth_graph_shape () =
  let tax = go_taxonomy 1 in
  let rng = Prng.of_int 2 in
  let db = Synth_graph.generate rng (small_params tax) in
  check int "graph count" 40 (Db.size db);
  Db.iteri
    (fun _ g ->
      check bool "edge cap" true (Graph.edge_count g <= 12);
      check bool "at least one edge" true (Graph.edge_count g >= 1);
      Array.iter
        (fun (_, _, l) -> check bool "edge label range" true (l >= 0 && l < 5))
        (Graph.edges g);
      Array.iter
        (fun l ->
          check bool "node label in taxonomy" true
            (l >= 0 && l < Taxonomy.label_count tax))
        (Graph.node_labels g))
    db

let test_synth_graph_determinism () =
  let tax = go_taxonomy 1 in
  let gen seed =
    let db = Synth_graph.generate (Prng.of_int seed) (small_params tax) in
    Db.fold (fun acc g -> Array.to_list (Graph.edges g) :: acc) [] db
  in
  check bool "same seed" true (gen 5 = gen 5);
  check bool "different seeds" true (gen 5 <> gen 6)

let test_synth_graph_density_tracks_target () =
  let tax = go_taxonomy 1 in
  let at density =
    let rng = Prng.of_int 3 in
    let db =
      Synth_graph.generate rng
        { (small_params tax) with edge_density = density; graph_count = 150 }
    in
    Db.avg_edge_density db
  in
  let low = at 0.08 and high = at 0.4 in
  check bool "denser parameter gives denser graphs" true (low < high)

let test_synth_graph_validation () =
  let tax = go_taxonomy 1 in
  let rng = Prng.of_int 4 in
  Alcotest.check_raises "bad max_edges"
    (Invalid_argument "Synth_graph: max_edges must be >= 1") (fun () ->
      ignore (Synth_graph.generate rng { (small_params tax) with max_edges = 0 }));
  Alcotest.check_raises "bad density"
    (Invalid_argument "Synth_graph: edge_density must be in (0, 1]") (fun () ->
      ignore
        (Synth_graph.generate rng { (small_params tax) with edge_density = 0.0 }))

let test_samplers () =
  let tax = go_taxonomy 7 in
  let rng = Prng.of_int 8 in
  let uniform = Synth_graph.uniform_labels tax in
  let per_level = Synth_graph.per_level_labels tax () in
  let leaves = Synth_graph.leaf_labels tax () in
  for _ = 1 to 200 do
    let u = uniform rng and p = per_level rng and l = leaves rng in
    check bool "uniform in range" true (u >= 0 && u < Taxonomy.label_count tax);
    check bool "per-level in range" true (p >= 0 && p < Taxonomy.label_count tax);
    check bool "leaf sampler yields leaves" true (Taxonomy.is_leaf tax l)
  done;
  (* per-level sampling hits shallow levels far more often than uniform *)
  let shallow sampler =
    let rng = Prng.of_int 99 in
    let hits = ref 0 in
    for _ = 1 to 2000 do
      if Taxonomy.depth tax (sampler rng) <= 1 then incr hits
    done;
    !hits
  in
  check bool "per-level over-samples shallow labels" true
    (shallow per_level > 2 * shallow uniform)

let test_synth_directed () =
  let tax = go_taxonomy 1 in
  let rng = Prng.of_int 21 in
  let digraphs = Synth_graph.generate_directed rng (small_params tax) in
  check int "count" 40 (List.length digraphs);
  List.iter
    (fun d ->
      check bool "arc cap" true (Tsg_graph.Digraph.arc_count d <= 12);
      check bool "at least one arc" true (Tsg_graph.Digraph.arc_count d >= 1);
      Array.iter
        (fun l ->
          check bool "labels in taxonomy" true
            (l >= 0 && l < Taxonomy.label_count tax))
        (Tsg_graph.Digraph.node_labels d))
    digraphs;
  (* orientation is random: across the corpus both directions occur *)
  let forward = ref 0 and backward = ref 0 in
  List.iter
    (fun d ->
      Array.iter
        (fun (u, v, _) -> if u < v then incr forward else incr backward)
        (Tsg_graph.Digraph.arcs d))
    digraphs;
  check bool "both orientations present" true (!forward > 0 && !backward > 0)

(* --- Datasets --------------------------------------------------------------- *)

let test_dataset_specs () =
  check int "five D sets" 5 (List.length Datasets.d_series);
  check int "four NC sets" 4 (List.length Datasets.nc_series);
  check int "four ED sets" 4 (List.length Datasets.ed_series);
  check int "eleven TD depths" 11 (List.length Datasets.td_depths);
  check int "eight TS sizes" 8 (List.length Datasets.ts_concept_counts);
  let d1000 = List.hd Datasets.d_series in
  check Alcotest.string "id" "D1000" d1000.Datasets.id;
  check int "graphs" 1000 d1000.Datasets.graph_count;
  check int "max edges" 20 d1000.Datasets.max_edges;
  check int "edge labels" 10 d1000.Datasets.edge_label_count;
  check Alcotest.string "d4000" "D4000" Datasets.d4000.Datasets.id;
  check int "d4000 size" 4000 Datasets.d4000.Datasets.graph_count

let test_dataset_find_scale () =
  (match Datasets.find "NC30" with
  | Some s ->
    check int "nc30 max edges" 30 s.Datasets.max_edges;
    check int "nc30 graphs" 4000 s.Datasets.graph_count
  | None -> Alcotest.fail "NC30 missing");
  check bool "unknown" true (Datasets.find "XX" = None);
  let scaled = Datasets.scale 0.01 Datasets.d4000 in
  check int "scaled" 40 scaled.Datasets.graph_count;
  let tiny = Datasets.scale 0.0001 Datasets.d4000 in
  check int "floor of 10" 10 tiny.Datasets.graph_count

let test_dataset_build () =
  let tax = go_taxonomy 1 in
  let rng = Prng.of_int 5 in
  let spec = Datasets.scale 0.01 (List.hd Datasets.d_series) in
  let db = Datasets.build rng ~node_label:(Synth_graph.uniform_labels tax) spec in
  check int "built size" spec.Datasets.graph_count (Db.size db)

(* --- Pathways ---------------------------------------------------------------- *)

let test_pathways_table () =
  check int "25 pathways" 25 (List.length Pathways.table2);
  let names = List.map (fun s -> s.Pathways.name) Pathways.table2 in
  check bool "nitrogen present" true (List.mem "Nitrogen metabolism" names);
  check int "organisms" 30 Pathways.paper_organism_count;
  List.iter
    (fun s ->
      let c = Pathways.conservation s in
      check bool "conservation in band" true (c >= 0.30 && c <= 0.92))
    Pathways.table2;
  (* more paper patterns => at least as much conservation *)
  let by_patterns =
    List.sort
      (fun a b -> compare a.Pathways.paper_patterns b.Pathways.paper_patterns)
      Pathways.table2
  in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Pathways.conservation a <= Pathways.conservation b +. 1e-9
      && monotone rest
    | _ -> true
  in
  check bool "conservation monotone in pattern count" true
    (monotone by_patterns)

let test_pathways_generate () =
  let tax = go_taxonomy 9 in
  let rng = Prng.of_int 10 in
  let spec = List.hd Pathways.table2 in
  let db = Pathways.generate rng ~taxonomy:tax ~organisms:12 spec in
  check int "twelve organisms" 12 (Db.size db);
  Db.iteri
    (fun _ g ->
      Array.iter
        (fun l -> check bool "leaf labels" true (Taxonomy.is_leaf tax l))
        (Graph.node_labels g))
    db;
  check bool "sizes near the template" true
    (Db.avg_nodes db >= spec.Pathways.avg_nodes -. 2.0
    && Db.avg_nodes db <= spec.Pathways.avg_nodes +. 2.0)

let test_pathways_generate_all () =
  let tax = go_taxonomy 11 in
  let rng = Prng.of_int 12 in
  let all = Pathways.generate_all rng ~taxonomy:tax ~organisms:3 () in
  check int "all 25" 25 (List.length all);
  List.iter (fun (_, db) -> check int "three organisms" 3 (Db.size db)) all

let test_pathways_conservation_effect () =
  (* high conservation should leave more shared generalized structure *)
  let tax = go_taxonomy 13 in
  let patterns_of spec seed =
    let rng = Prng.of_int seed in
    let db = Pathways.generate rng ~taxonomy:tax ~organisms:8 spec in
    let r =
      Tsg_core.Taxogram.run (Tsg_core.Taxogram.Spec.collect ~config:{ Tsg_core.Taxogram.min_support = 0.5; max_edges = Some 3; enhancements = Tsg_core.Specialize.all_on; } ())
        tax db
    in
    r.Tsg_core.Taxogram.pattern_count
  in
  let low_spec =
    List.find (fun s -> s.Pathways.paper_patterns = 2) Pathways.table2
  in
  let high_spec =
    List.find (fun s -> s.Pathways.paper_patterns = 1486) Pathways.table2
  in
  (* average over a few seeds to keep the comparison stable *)
  let avg spec =
    List.fold_left ( + ) 0 (List.map (patterns_of spec) [ 1; 2; 3 ]) / 3
  in
  check bool "conserved pathway yields more patterns" true
    (avg high_spec >= avg low_spec)

(* --- Pte ---------------------------------------------------------------------- *)

let test_pte_shape () =
  let tax = Tsg_taxonomy.Atom_taxonomy.create () in
  let rng = Prng.of_int 14 in
  let db = Pte.generate rng ~taxonomy:tax ~molecules:60 () in
  check int "sixty molecules" 60 (Db.size db);
  let atoms = Tsg_taxonomy.Atom_taxonomy.atom_labels tax in
  Db.iteri
    (fun _ g ->
      check bool "connected" true (Graph.is_connected g);
      Array.iter
        (fun l -> check bool "atom labels only" true (List.mem l atoms))
        (Graph.node_labels g);
      Array.iter
        (fun (_, _, l) -> check bool "bond labels 0..2" true (l >= 0 && l <= 2))
        (Graph.edges g))
    db

let test_pte_distribution () =
  let tax = Tsg_taxonomy.Atom_taxonomy.create () in
  let rng = Prng.of_int 15 in
  let db = Pte.generate rng ~taxonomy:tax ~molecules:120 () in
  let c = Taxonomy.id_of_name tax "C" in
  let h = Taxonomy.id_of_name tax "H" in
  let carom = Taxonomy.id_of_name tax "c" in
  let total = ref 0 and ch = ref 0 in
  Db.iteri
    (fun _ g ->
      Array.iter
        (fun l ->
          incr total;
          if l = c || l = h || l = carom then incr ch)
        (Graph.node_labels g))
    db;
  check bool "C/H dominate" true
    (float_of_int !ch /. float_of_int !total > 0.5);
  check bool "molecule-scale graphs" true
    (Db.avg_nodes db > 8.0 && Db.avg_nodes db < 40.0);
  check int "default molecule count is the paper's" 416 Pte.paper_graph_count

let test_pte_determinism () =
  let tax = Tsg_taxonomy.Atom_taxonomy.create () in
  let gen seed =
    let db = Pte.generate (Prng.of_int seed) ~taxonomy:tax ~molecules:10 () in
    Db.fold (fun acc g -> Graph.node_labels g :: acc) [] db
  in
  check bool "deterministic" true (gen 3 = gen 3)

let () =
  Alcotest.run "data"
    [
      ( "synth_graph",
        [
          Alcotest.test_case "shape" `Quick test_synth_graph_shape;
          Alcotest.test_case "determinism" `Quick test_synth_graph_determinism;
          Alcotest.test_case "density tracks target" `Quick
            test_synth_graph_density_tracks_target;
          Alcotest.test_case "validation" `Quick test_synth_graph_validation;
          Alcotest.test_case "samplers" `Quick test_samplers;
          Alcotest.test_case "directed generator" `Quick test_synth_directed;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "table 1 specs" `Quick test_dataset_specs;
          Alcotest.test_case "find/scale" `Quick test_dataset_find_scale;
          Alcotest.test_case "build" `Quick test_dataset_build;
        ] );
      ( "pathways",
        [
          Alcotest.test_case "table 2" `Quick test_pathways_table;
          Alcotest.test_case "generate" `Quick test_pathways_generate;
          Alcotest.test_case "generate all" `Quick test_pathways_generate_all;
          Alcotest.test_case "conservation effect" `Slow
            test_pathways_conservation_effect;
        ] );
      ( "pte",
        [
          Alcotest.test_case "shape" `Quick test_pte_shape;
          Alcotest.test_case "distribution" `Quick test_pte_distribution;
          Alcotest.test_case "determinism" `Quick test_pte_determinism;
        ] );
    ]
