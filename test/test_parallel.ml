(* The work-stealing pool (Tsg_util.Pool.Exec) and the determinism
   contract of Taxogram.run across domain counts: same canonical pattern
   set, same supports, whatever the schedule — including under time
   budgets, where `Collect must report a prefix of the canonical root
   sequence. Also the per-domain Arena scratch cache the pool's workers
   drain on exit. *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Pool = Tsg_util.Pool
module Arena = Tsg_util.Arena
module Bitset = Tsg_util.Bitset
module Timer = Tsg_util.Timer
module Pattern = Tsg_core.Pattern
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Pool ------------------------------------------------------------------ *)

let test_pool_root_ids () =
  let exec = Pool.Exec.create ~domains:3 () in
  let tasks = List.init 7 (fun i _ctx -> i * i) in
  let results = Pool.Exec.run exec tasks in
  check int "one result per task" 7 (List.length results);
  List.iteri
    (fun i (tid, v) ->
      check (Alcotest.list int) "id is root index" [ i ] tid;
      check int "value" (i * i) v)
    results

let test_pool_empty () =
  let exec = Pool.Exec.create ~domains:2 () in
  check int "no tasks, no results" 0 (List.length (Pool.Exec.run exec []))

let test_pool_fork_ids () =
  let exec = Pool.Exec.create ~domains:4 () in
  (* each root i forks i subtasks; ids must be [i] then [i;0] .. [i;i-1],
     and the flat listing must come back in lexicographic id order *)
  let task i ctx =
    for k = 0 to i - 1 do
      Pool.fork ctx (fun sub ->
          check (Alcotest.list int) "fork id" [ i; k ] (Pool.id sub);
          100 + (10 * i) + k)
    done;
    i
  in
  let results = Pool.Exec.run exec (List.init 4 task) in
  let expected_ids =
    List.concat_map
      (fun i -> [ i ] :: List.init i (fun k -> [ i; k ]))
      [ 0; 1; 2; 3 ]
  in
  check int "root + forked" (List.length expected_ids) (List.length results);
  List.iter2
    (fun want (got, _) ->
      check (Alcotest.list int) "sorted by id" want got)
    expected_ids results

let test_pool_stealing_tree () =
  (* a binary fork tree deep enough that every domain has work to steal;
     the values must still sum exactly once per task *)
  let exec = Pool.Exec.create ~domains:4 () in
  let rec task depth ctx =
    if depth < 5 then begin
      Pool.fork ctx (task (depth + 1));
      Pool.fork ctx (task (depth + 1))
    end;
    1
  in
  let results = Pool.Exec.run exec [ task 0 ] in
  (* complete binary tree of depth 5: 2^6 - 1 tasks *)
  check int "every task ran once" 63
    (List.fold_left (fun acc (_, v) -> acc + v) 0 results);
  let ids = List.map fst results in
  check bool "ids strictly increasing" true
    (List.for_all2 (fun a b -> compare a b < 0)
       (List.filteri (fun i _ -> i < List.length ids - 1) ids)
       (List.tl ids))

let test_pool_exception () =
  let exec = Pool.Exec.create ~domains:3 () in
  let ran = Atomic.make 0 in
  let task i _ctx =
    if i = 5 then failwith "boom";
    Atomic.incr ran;
    i
  in
  (match Pool.Exec.run exec (List.init 32 task) with
  | _ -> Alcotest.fail "expected the task's exception to propagate"
  | exception Failure msg ->
    check Alcotest.string "original exception" "boom" msg);
  (* a second run on the same handle must work: domains are per-run, so a
     failed run leaves no poisoned state behind *)
  let results = Pool.Exec.run exec (List.init 4 (fun i _ctx -> i)) in
  check int "handle reusable after failure" 4 (List.length results)

let test_default_domains_env () =
  let orig = Sys.getenv_opt "TSG_DOMAINS" in
  let restore () =
    match orig with
    | Some v -> Unix.putenv "TSG_DOMAINS" v
    | None -> Unix.putenv "TSG_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "TSG_DOMAINS" "3";
      check int "TSG_DOMAINS honored" 3 (Pool.default_domains ());
      Unix.putenv "TSG_DOMAINS" "not-a-number";
      let fallback = min 8 (Domain.recommended_domain_count ()) in
      check int "garbage falls back" fallback (Pool.default_domains ());
      Unix.putenv "TSG_DOMAINS" "0";
      check int "non-positive falls back" fallback (Pool.default_domains ());
      Unix.putenv "TSG_DOMAINS" "";
      check int "empty falls back" fallback (Pool.default_domains ()))

let test_exec_snapshots_env () =
  (* Exec.create reads TSG_DOMAINS exactly once: a handle created under
     one setting keeps its width when the environment changes under it
     (the race the serve loop's hot reload used to lose) *)
  let orig = Sys.getenv_opt "TSG_DOMAINS" in
  let restore () =
    match orig with
    | Some v -> Unix.putenv "TSG_DOMAINS" v
    | None -> Unix.putenv "TSG_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "TSG_DOMAINS" "3";
      let exec = Pool.Exec.create () in
      check int "snapshot at create" 3 (Pool.Exec.domains exec);
      Unix.putenv "TSG_DOMAINS" "7";
      check int "handle ignores later env changes" 3 (Pool.Exec.domains exec);
      let results = Pool.Exec.run exec (List.init 5 (fun i _ctx -> i)) in
      check int "still runs" 5 (List.length results);
      check int "explicit ~domains wins over env" 2
        (Pool.Exec.domains (Pool.Exec.create ~domains:2 ())))

(* random fork trees: the tree shape is a pure function of (seed, id), so
   the expected id set can be computed without the pool, and the pool —
   at any domain count, under any steal schedule — must return exactly
   that set, sorted, with each task's value intact *)
let fork_tree_children seed id depth =
  if depth >= 3 then 0 else Hashtbl.hash (seed, id) mod 4

let fork_tree_value seed id = Hashtbl.hash (id, seed, "v")

let rec fork_tree_expected seed id depth =
  let k = fork_tree_children seed id depth in
  (id, fork_tree_value seed id)
  :: List.concat_map
       (fun c -> fork_tree_expected seed (id @ [ c ]) (depth + 1))
       (List.init k Fun.id)

let steal_fork_interleaving_prop =
  QCheck.Test.make
    ~name:"random fork trees: no loss, no dup, id-sorted (domains 1-8)"
    ~count:60
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 8)))
    (fun (seed, domains) ->
      let exec = Pool.Exec.create ~domains () in
      let roots = 1 + (Hashtbl.hash (seed, "roots") mod 4) in
      let rec task depth ctx =
        let id = Pool.id ctx in
        let k = fork_tree_children seed id depth in
        for _c = 0 to k - 1 do
          Pool.fork ctx (task (depth + 1))
        done;
        fork_tree_value seed id
      in
      let results = Pool.Exec.run exec (List.init roots (fun _ -> task 0)) in
      let expected =
        List.sort compare
          (List.concat_map
             (fun i -> fork_tree_expected seed [ i ] 0)
             (List.init roots Fun.id))
      in
      results = expected)

(* --- Arena: per-domain scratch reuse --------------------------------------- *)

let test_arena_reuse () =
  Arena.drain ();
  Arena.reset_stats ();
  let b = Bitset.create 128 in
  let s = Arena.acquire 128 in
  Bitset.set s 5;
  Arena.release s;
  ignore b;
  let s1 = Arena.stats () in
  check int "first acquire allocates" 1 s1.Arena.misses;
  check int "released bitset is cached" 1 s1.Arena.cached;
  let s' = Arena.acquire 128 in
  check bool "recycled bitset comes back cleared" false (Bitset.mem s' 5);
  let s2 = Arena.stats () in
  check int "second acquire reuses" 1 s2.Arena.hits;
  check int "cache emptied by the hit" 0 s2.Arena.cached;
  Arena.release s';
  (* with_bitset releases on raise too *)
  (try Arena.with_bitset 128 (fun _ -> failwith "x") with Failure _ -> ());
  let s3 = Arena.stats () in
  check int "with_bitset returns its bitset on raise" 1 s3.Arena.cached;
  check int "raise path counted as a hit" 2 s3.Arena.hits

let test_arena_in_pool_tasks () =
  (* tasks on worker domains each see their own arena; using it across a
     run must neither crash nor leak into the caller's counters *)
  Arena.drain ();
  Arena.reset_stats ();
  let exec = Pool.Exec.create ~domains:4 () in
  let task _i _ctx =
    Arena.with_bitset 256 (fun b ->
        Bitset.set b 7;
        Bitset.mem b 7)
  in
  let results = Pool.Exec.run exec (List.init 16 task) in
  check bool "every task saw its own cleared scratch" true
    (List.for_all snd results)

(* --- Taxogram determinism across domain counts ----------------------------- *)

let g ~labels ~edges = Graph.build ~labels ~edges

let config ?(max_edges = Some 3) theta =
  { Taxogram.min_support = theta; max_edges; enhancements = Specialize.all_on }

(* canonical byte-level fingerprint: sorted patterns printed with names,
   one per line — equal fingerprints mean equal sets AND equal supports *)
let fingerprint tax (r : Taxogram.result) =
  let names = Taxonomy.labels tax in
  String.concat "\n"
    (List.map
       (fun (p : Pattern.t) ->
         Printf.sprintf "%d %s" p.Pattern.support_count
           (Pattern.to_string ~names p))
       (Pattern.sort r.Taxogram.patterns))

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      {
        concepts;
        relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3;
      }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 3 + Prng.int rng 5;
        max_edges = 6;
        edge_density = 0.3;
        edge_label_count = 2;
        node_label = sampler;
      }
  in
  (tax, db)

let arb_instance =
  QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 2))

let theta_of = function 0 -> 1.0 | 1 -> 0.5 | _ -> 0.34

let domains4_equals_domains1_prop =
  QCheck.Test.make ~name:"domains=4 byte-identical to domains=1" ~count:40
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let a =
        Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) tax db
      in
      let b =
        Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:4 ()) tax db
      in
      fingerprint tax a = fingerprint tax b
      && a.Taxogram.class_count = b.Taxogram.class_count
      && a.Taxogram.covered_graph_count = b.Taxogram.covered_graph_count)

let batch_invariance_prop =
  (* root_batch / spec_batch tune scheduling granularity only: any
     combination must give the byte-identical result *)
  QCheck.Test.make ~name:"root_batch/spec_batch never change the result"
    ~count:25 arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let reference =
        Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) tax db
      in
      let want = fingerprint tax reference in
      List.for_all
        (fun (root_batch, spec_batch) ->
          let r =
            Taxogram.run
              (Taxogram.Spec.collect ~config:cfg ~domains:4 ~root_batch
                 ~spec_batch ())
              tax db
          in
          fingerprint tax r = want)
        [ (1, 1); (2, 3); (64, 64) ])

let stream_equals_collect_prop =
  QCheck.Test.make ~name:"`Stream domains=4 emits the `Collect set" ~count:25
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let collected =
        Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) tax db
      in
      let streamed = ref [] in
      let m = Mutex.create () in
      let r =
        Taxogram.run
          (Taxogram.Spec.stream ~config:cfg ~domains:4 (fun p ->
               Mutex.protect m (fun () -> streamed := p :: !streamed)))
          tax db
      in
      Pattern.equal_sets collected.Taxogram.patterns !streamed
      && r.Taxogram.pattern_count = List.length !streamed
      && r.Taxogram.patterns = [])

let level_wise_pool_prop =
  QCheck.Test.make ~name:"`Level_wise domains=4 = `Gspan domains=1" ~count:20
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let a =
        Taxogram.run
          (Taxogram.Spec.collect ~config:cfg ~class_miner:`Gspan ~domains:1 ())
          tax db
      in
      let b =
        Taxogram.run
          (Taxogram.Spec.collect ~config:cfg ~class_miner:`Level_wise
             ~domains:4 ())
          tax db
      in
      (* byte-identity is a same-miner guarantee: the two miners emit
         isomorphic class graphs under different vertex orders, so the
         cross-miner comparison is canonical-key + support-set equality *)
      Pattern.equal_sets a.Taxogram.patterns b.Taxogram.patterns
      && a.Taxogram.class_count = b.Taxogram.class_count)

let test_expired_budget_deterministic () =
  let rng = Prng.of_int 4242 in
  let tax, db = random_instance rng in
  let expired = Timer.Budget.of_seconds (-1.0) in
  List.iter
    (fun domains ->
      let r =
        Taxogram.run
          (Taxogram.Spec.collect ~config:(config 0.5) ~budget:expired ~domains
             ())
          tax db
      in
      check bool "incomplete" false r.Taxogram.completed;
      (* budget already expired when mining started: the canonical prefix
         is empty, identically at every domain count *)
      check int "no patterns reported" 0 r.Taxogram.pattern_count;
      check int "patterns field empty" 0 (List.length r.Taxogram.patterns))
    [ 1; 2; 4 ]

let budget_prefix_prop =
  (* whatever a tight budget leaves behind must be a subset of the
     unlimited run, with the same support on every surviving pattern *)
  QCheck.Test.make ~name:"budgeted `Collect is a subset with equal supports"
    ~count:20 arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let full =
        Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) tax db
      in
      let by_key =
        List.map
          (fun (p : Pattern.t) -> (Pattern.key p, p))
          full.Taxogram.patterns
      in
      List.for_all
        (fun domains ->
          let tight = Timer.Budget.of_seconds 1e-4 in
          let r =
            Taxogram.run
              (Taxogram.Spec.collect ~config:cfg ~budget:tight ~domains ())
              tax db
          in
          List.for_all
            (fun (p : Pattern.t) ->
              match List.assoc_opt (Pattern.key p) by_key with
              | Some q -> p.Pattern.support_count = q.Pattern.support_count
              | None -> false)
            r.Taxogram.patterns)
        [ 1; 4 ])

let test_spec_builders () =
  let tax =
    Taxonomy.build
      ~names:[ "a"; "b"; "c"; "d"; "e"; "f" ]
      ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c") ]
  in
  let id n = Taxonomy.id_of_name tax n in
  let db =
    Db.of_list
      [
        g ~labels:[| id "d"; id "f" |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| id "e"; id "f" |] ~edges:[ (0, 1, 0) ];
      ]
  in
  let base = Taxogram.Spec.collect ~config:(config 0.5) () in
  let spec = Taxogram.Spec.with_domains 2 base in
  check int "with_domains resizes the executor" 2 (Taxogram.Spec.domains spec);
  let direct = Taxogram.run (Taxogram.Spec.with_domains 1 base) tax db in
  let pooled = Taxogram.run spec tax db in
  check bool "same set through the builders" true
    (Pattern.equal_sets direct.Taxogram.patterns pooled.Taxogram.patterns);
  (* one spec drives many runs *)
  let again = Taxogram.run spec tax db in
  check bool "spec reusable" true
    (Pattern.equal_sets pooled.Taxogram.patterns again.Taxogram.patterns)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "root ids in order" `Quick test_pool_root_ids;
          Alcotest.test_case "empty task list" `Quick test_pool_empty;
          Alcotest.test_case "fork ids" `Quick test_pool_fork_ids;
          Alcotest.test_case "stealing on a fork tree" `Quick
            test_pool_stealing_tree;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "TSG_DOMAINS override" `Quick
            test_default_domains_env;
          Alcotest.test_case "Exec snapshots TSG_DOMAINS once" `Quick
            test_exec_snapshots_env;
        ]
        @ qsuite [ steal_fork_interleaving_prop ] );
      ( "arena",
        [
          Alcotest.test_case "acquire/release reuse" `Quick test_arena_reuse;
          Alcotest.test_case "scratch inside pool tasks" `Quick
            test_arena_in_pool_tasks;
        ] );
      ( "determinism",
        Alcotest.test_case "expired budget, all domain counts" `Quick
          test_expired_budget_deterministic
        :: Alcotest.test_case "Spec builders" `Quick test_spec_builders
        :: qsuite
             [
               domains4_equals_domains1_prop;
               batch_invariance_prop;
               stream_equals_collect_prop;
               level_wise_pool_prop;
               budget_prefix_prop;
             ] );
    ]
