(* The work-stealing pool (Tsg_util.Pool) and the determinism contract of
   Taxogram.run across domain counts: same canonical pattern set, same
   supports, whatever the schedule — including under time budgets, where
   `Collect must report a prefix of the canonical root sequence. *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Pool = Tsg_util.Pool
module Timer = Tsg_util.Timer
module Pattern = Tsg_core.Pattern
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Pool ------------------------------------------------------------------ *)

let test_pool_root_ids () =
  let pool = Pool.create ~domains:3 () in
  let tasks = List.init 7 (fun i _ctx -> i * i) in
  let results = Pool.run pool tasks in
  check int "one result per task" 7 (List.length results);
  List.iteri
    (fun i (tid, v) ->
      check (Alcotest.list int) "id is root index" [ i ] tid;
      check int "value" (i * i) v)
    results

let test_pool_empty () =
  let pool = Pool.create ~domains:2 () in
  check int "no tasks, no results" 0 (List.length (Pool.run pool []))

let test_pool_fork_ids () =
  let pool = Pool.create ~domains:4 () in
  (* each root i forks i subtasks; ids must be [i] then [i;0] .. [i;i-1],
     and the flat listing must come back in lexicographic id order *)
  let task i ctx =
    for k = 0 to i - 1 do
      Pool.fork ctx (fun sub ->
          check (Alcotest.list int) "fork id" [ i; k ] (Pool.id sub);
          100 + (10 * i) + k)
    done;
    i
  in
  let results = Pool.run pool (List.init 4 task) in
  let expected_ids =
    List.concat_map
      (fun i -> [ i ] :: List.init i (fun k -> [ i; k ]))
      [ 0; 1; 2; 3 ]
  in
  check int "root + forked" (List.length expected_ids) (List.length results);
  List.iter2
    (fun want (got, _) ->
      check (Alcotest.list int) "sorted by id" want got)
    expected_ids results

let test_pool_stealing_tree () =
  (* a binary fork tree deep enough that every domain has work to steal;
     the values must still sum exactly once per task *)
  let pool = Pool.create ~domains:4 () in
  let rec task depth ctx =
    if depth < 5 then begin
      Pool.fork ctx (task (depth + 1));
      Pool.fork ctx (task (depth + 1))
    end;
    1
  in
  let results = Pool.run pool [ task 0 ] in
  (* complete binary tree of depth 5: 2^6 - 1 tasks *)
  check int "every task ran once" 63
    (List.fold_left (fun acc (_, v) -> acc + v) 0 results);
  let ids = List.map fst results in
  check bool "ids strictly increasing" true
    (List.for_all2 (fun a b -> compare a b < 0)
       (List.filteri (fun i _ -> i < List.length ids - 1) ids)
       (List.tl ids))

let test_pool_exception () =
  let pool = Pool.create ~domains:3 () in
  let ran = Atomic.make 0 in
  let task i _ctx =
    if i = 5 then failwith "boom";
    Atomic.incr ran;
    i
  in
  (match Pool.run pool (List.init 32 task) with
  | _ -> Alcotest.fail "expected the task's exception to propagate"
  | exception Failure msg -> check Alcotest.string "original exception" "boom" msg);
  (* a second run on the same pool descriptor must work: domains are
     per-run, so a failed run leaves no poisoned state behind *)
  let results = Pool.run pool (List.init 4 (fun i _ctx -> i)) in
  check int "pool reusable after failure" 4 (List.length results)

let test_default_domains_env () =
  let orig = Sys.getenv_opt "TSG_DOMAINS" in
  let restore () =
    match orig with
    | Some v -> Unix.putenv "TSG_DOMAINS" v
    | None -> Unix.putenv "TSG_DOMAINS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "TSG_DOMAINS" "3";
      check int "TSG_DOMAINS honored" 3 (Pool.default_domains ());
      Unix.putenv "TSG_DOMAINS" "not-a-number";
      let fallback = min 8 (Domain.recommended_domain_count ()) in
      check int "garbage falls back" fallback (Pool.default_domains ());
      Unix.putenv "TSG_DOMAINS" "0";
      check int "non-positive falls back" fallback (Pool.default_domains ());
      Unix.putenv "TSG_DOMAINS" "";
      check int "empty falls back" fallback (Pool.default_domains ()))

(* --- Taxogram determinism across domain counts ----------------------------- *)

let g ~labels ~edges = Graph.build ~labels ~edges

let config ?(max_edges = Some 3) theta =
  { Taxogram.min_support = theta; max_edges; enhancements = Specialize.all_on }

(* canonical byte-level fingerprint: sorted patterns printed with names,
   one per line — equal fingerprints mean equal sets AND equal supports *)
let fingerprint tax (r : Taxogram.result) =
  let names = Taxonomy.labels tax in
  String.concat "\n"
    (List.map
       (fun (p : Pattern.t) ->
         Printf.sprintf "%d %s" p.Pattern.support_count
           (Pattern.to_string ~names p))
       (Pattern.sort r.Taxogram.patterns))

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      {
        concepts;
        relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3;
      }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      {
        Tsg_data.Synth_graph.graph_count = 3 + Prng.int rng 5;
        max_edges = 6;
        edge_density = 0.3;
        edge_label_count = 2;
        node_label = sampler;
      }
  in
  (tax, db)

let arb_instance =
  QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 2))

let theta_of = function 0 -> 1.0 | 1 -> 0.5 | _ -> 0.34

let domains4_equals_domains1_prop =
  QCheck.Test.make ~name:"domains=4 byte-identical to domains=1" ~count:40
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let a = Taxogram.run ~config:cfg ~domains:1 ~sink:`Collect tax db in
      let b = Taxogram.run ~config:cfg ~domains:4 ~sink:`Collect tax db in
      fingerprint tax a = fingerprint tax b
      && a.Taxogram.class_count = b.Taxogram.class_count
      && a.Taxogram.covered_graph_count = b.Taxogram.covered_graph_count)

let stream_equals_collect_prop =
  QCheck.Test.make ~name:"`Stream domains=4 emits the `Collect set" ~count:25
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let collected =
        Taxogram.run ~config:cfg ~domains:1 ~sink:`Collect tax db
      in
      let streamed = ref [] in
      let m = Mutex.create () in
      let r =
        Taxogram.run ~config:cfg ~domains:4
          ~sink:
            (`Stream
              (fun p -> Mutex.protect m (fun () -> streamed := p :: !streamed)))
          tax db
      in
      Pattern.equal_sets collected.Taxogram.patterns !streamed
      && r.Taxogram.pattern_count = List.length !streamed
      && r.Taxogram.patterns = [])

let level_wise_pool_prop =
  QCheck.Test.make ~name:"`Level_wise domains=4 = `Gspan domains=1" ~count:20
    arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let a =
        Taxogram.run ~config:cfg ~class_miner:`Gspan ~domains:1 ~sink:`Collect
          tax db
      in
      let b =
        Taxogram.run ~config:cfg ~class_miner:`Level_wise ~domains:4
          ~sink:`Collect tax db
      in
      (* byte-identity is a same-miner guarantee: the two miners emit
         isomorphic class graphs under different vertex orders, so the
         cross-miner comparison is canonical-key + support-set equality *)
      Pattern.equal_sets a.Taxogram.patterns b.Taxogram.patterns
      && a.Taxogram.class_count = b.Taxogram.class_count)

let test_expired_budget_deterministic () =
  let rng = Prng.of_int 4242 in
  let tax, db = random_instance rng in
  let expired = Timer.Budget.of_seconds (-1.0) in
  List.iter
    (fun domains ->
      let r =
        Taxogram.run ~config:(config 0.5) ~budget:expired ~domains
          ~sink:`Collect tax db
      in
      check bool "incomplete" false r.Taxogram.completed;
      (* budget already expired when mining started: the canonical prefix
         is empty, identically at every domain count *)
      check int "no patterns reported" 0 r.Taxogram.pattern_count;
      check int "patterns field empty" 0 (List.length r.Taxogram.patterns))
    [ 1; 2; 4 ]

let budget_prefix_prop =
  (* whatever a tight budget leaves behind must be a subset of the
     unlimited run, with the same support on every surviving pattern *)
  QCheck.Test.make ~name:"budgeted `Collect is a subset with equal supports"
    ~count:20 arb_instance (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config (theta_of k) in
      let full = Taxogram.run ~config:cfg ~domains:1 ~sink:`Collect tax db in
      let by_key =
        List.map (fun (p : Pattern.t) -> (Pattern.key p, p)) full.Taxogram.patterns
      in
      List.for_all
        (fun domains ->
          let tight = Timer.Budget.of_seconds 1e-4 in
          let r =
            Taxogram.run ~config:cfg ~budget:tight ~domains ~sink:`Collect tax
              db
          in
          List.for_all
            (fun (p : Pattern.t) ->
              match List.assoc_opt (Pattern.key p) by_key with
              | Some q -> p.Pattern.support_count = q.Pattern.support_count
              | None -> false)
            r.Taxogram.patterns)
        [ 1; 4 ])

(* --- deprecated wrappers stay functional until removal --------------------- *)

module Wrappers = struct
  [@@@alert "-deprecated"]

  let small_instance () =
    let tax =
      Taxonomy.build
        ~names:[ "a"; "b"; "c"; "d"; "e"; "f" ]
        ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c") ]
    in
    let id n = Taxonomy.id_of_name tax n in
    let db =
      Db.of_list
        [
          g ~labels:[| id "d"; id "f" |] ~edges:[ (0, 1, 0) ];
          g ~labels:[| id "e"; id "f" |] ~edges:[ (0, 1, 0) ];
        ]
    in
    (tax, db)

  let test_run_streaming () =
    let tax, db = small_instance () in
    let seen = ref 0 in
    let r =
      Taxogram.run_streaming ~config:(config 0.5) tax db (fun _ -> incr seen)
    in
    check int "emits every pattern" r.Taxogram.pattern_count !seen;
    check int "patterns field empty" 0 (List.length r.Taxogram.patterns)

  let test_run_parallel () =
    let tax, db = small_instance () in
    let direct = Taxogram.run ~config:(config 0.5) ~sink:`Collect tax db in
    let wrapped = Taxogram.run_parallel ~config:(config 0.5) ~domains:2 tax db in
    check bool "same set as run" true
      (Pattern.equal_sets direct.Taxogram.patterns wrapped.Taxogram.patterns)
end

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "root ids in order" `Quick test_pool_root_ids;
          Alcotest.test_case "empty task list" `Quick test_pool_empty;
          Alcotest.test_case "fork ids" `Quick test_pool_fork_ids;
          Alcotest.test_case "stealing on a fork tree" `Quick
            test_pool_stealing_tree;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "TSG_DOMAINS override" `Quick
            test_default_domains_env;
        ] );
      ( "determinism",
        Alcotest.test_case "expired budget, all domain counts" `Quick
          test_expired_budget_deterministic
        :: qsuite
             [
               domains4_equals_domains1_prop;
               stream_equals_collect_prop;
               level_wise_pool_prop;
               budget_prefix_prop;
             ] );
      ( "deprecated wrappers",
        [
          Alcotest.test_case "run_streaming" `Quick Wrappers.test_run_streaming;
          Alcotest.test_case "run_parallel" `Quick Wrappers.test_run_parallel;
        ] );
    ]
