module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Subiso = Tsg_iso.Subiso
module Gen_iso = Tsg_iso.Gen_iso
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let g ~labels ~edges = Graph.build ~labels ~edges

(* target: a labeled house — triangle (0,1,2) on a square base (1,2,3,4) *)
let house () =
  g
    ~labels:[| 0; 1; 1; 2; 2 |]
    ~edges:
      [ (0, 1, 0); (0, 2, 0); (1, 2, 0); (1, 3, 0); (2, 4, 0); (3, 4, 0) ]

(* --- exact subgraph isomorphism ------------------------------------------ *)

let test_subiso_positive () =
  let target = house () in
  let edge01 = g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  check bool "single edge" true (Subiso.exists ~pattern:edge01 ~target);
  let triangle = g ~labels:[| 0; 1; 1 |] ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0) ] in
  check bool "triangle" true (Subiso.exists ~pattern:triangle ~target);
  let path = g ~labels:[| 2; 1; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  check bool "path through labels 2-1-0" true
    (Subiso.exists ~pattern:path ~target)

let test_subiso_negative () =
  let target = house () in
  let wrong_label = g ~labels:[| 0; 3 |] ~edges:[ (0, 1, 0) ] in
  check bool "label missing" false (Subiso.exists ~pattern:wrong_label ~target);
  let wrong_edge_label = g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 9) ] in
  check bool "edge label mismatch" false
    (Subiso.exists ~pattern:wrong_edge_label ~target);
  let square_of_zeros =
    g ~labels:[| 0; 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (2, 3, 0); (0, 3, 0) ]
  in
  check bool "no 0-labeled square" false
    (Subiso.exists ~pattern:square_of_zeros ~target);
  let too_big = g ~labels:(Array.make 6 0) ~edges:[ (0, 1, 0) ] in
  check bool "pattern larger than target" false
    (Subiso.exists ~pattern:too_big ~target)

let test_subiso_non_induced () =
  (* pattern is a path 1-0-1; target triangle has an extra 1-1 edge, which a
     non-induced match must tolerate *)
  let target = g ~labels:[| 0; 1; 1 |] ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0) ] in
  let path = g ~labels:[| 1; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  check bool "non-induced match" true (Subiso.exists ~pattern:path ~target)

let test_subiso_injective () =
  (* path of two distinct nodes cannot fold onto one target node *)
  let target = g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  let vee = g ~labels:[| 1; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  check bool "injective mapping required" false
    (Subiso.exists ~pattern:vee ~target)

let test_count_embeddings () =
  let target = g ~labels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  let edge = g ~labels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] in
  (* two edges, each matched in both orientations *)
  check int "automorphic embeddings" 4 (Subiso.count_embeddings ~pattern:edge target);
  check int "limited" 2 (Subiso.count_embeddings ~limit:2 ~pattern:edge target);
  let empty_pattern = Graph.empty in
  check int "empty pattern has one embedding" 1
    (Subiso.count_embeddings ~pattern:empty_pattern target)

let test_embeddings_are_valid () =
  let target = house () in
  let pattern = g ~labels:[| 1; 1; 2 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  let count = ref 0 in
  Subiso.iter_embeddings ~pattern ~target (fun a ->
      incr count;
      check int "assignment length" 3 (Array.length a);
      Array.iteri
        (fun p t ->
          check int "labels preserved" (Graph.node_label pattern p)
            (Graph.node_label target t))
        a;
      Array.iter
        (fun (u, v, l) ->
          check (Alcotest.option int) "edges preserved" (Some l)
            (Graph.edge_label target a.(u) a.(v)))
        (Graph.edges pattern));
  check bool "found some" true (!count > 0)

let test_isomorphic () =
  let a = g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 5); (1, 2, 6) ] in
  let b = g ~labels:[| 2; 1; 0 |] ~edges:[ (1, 0, 6); (2, 1, 5) ] in
  check bool "permuted" true (Subiso.isomorphic a b);
  let c = g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 5); (0, 2, 6) ] in
  check bool "different shape" false (Subiso.isomorphic a c);
  (* same degree sequence, different structure: C6 vs two C3 *)
  let c6 =
    g ~labels:(Array.make 6 0)
      ~edges:[ (0, 1, 0); (1, 2, 0); (2, 3, 0); (3, 4, 0); (4, 5, 0); (0, 5, 0) ]
  in
  let c3c3 =
    g ~labels:(Array.make 6 0)
      ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0); (3, 4, 0); (4, 5, 0); (3, 5, 0) ]
  in
  check bool "C6 vs 2xC3" false (Subiso.isomorphic c6 c3c3)

let test_support_count () =
  let db =
    Db.of_list
      [
        g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| 1; 0 |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| 0; 2 |] ~edges:[ (0, 1, 0) ];
      ]
  in
  let p = g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  check int "two graphs contain it" 2 (Subiso.support_count ~pattern:p db)

(* --- generalized isomorphism --------------------------------------------- *)

(* function -> {transport, catalysis}; transport -> {carrier, cation};
   catalysis -> {helicase}; helicase -> {dna_helicase} *)
let bio_taxonomy () =
  Taxonomy.build
    ~names:
      [ "function"; "transport"; "catalysis"; "carrier"; "cation";
        "helicase"; "dna_helicase" ]
    ~is_a:
      [
        ("transport", "function"); ("catalysis", "function");
        ("carrier", "transport"); ("cation", "transport");
        ("helicase", "catalysis"); ("dna_helicase", "helicase");
      ]

let test_gen_direction () =
  let t = bio_taxonomy () in
  let id n = Taxonomy.id_of_name t n in
  let specific = g ~labels:[| id "carrier"; id "dna_helicase" |] ~edges:[ (0, 1, 0) ] in
  let general = g ~labels:[| id "transport"; id "helicase" |] ~edges:[ (0, 1, 0) ] in
  check bool "general pattern matches specific target" true
    (Gen_iso.subgraph_isomorphic t ~pattern:general ~target:specific);
  check bool "specific pattern does not match general target" false
    (Gen_iso.subgraph_isomorphic t ~pattern:specific ~target:general);
  check bool "reflexive labels still match" true
    (Gen_iso.subgraph_isomorphic t ~pattern:specific ~target:specific)

let test_gen_edge_labels_exact () =
  let t = bio_taxonomy () in
  let id n = Taxonomy.id_of_name t n in
  let target = g ~labels:[| id "carrier"; id "helicase" |] ~edges:[ (0, 1, 1) ] in
  let pattern = g ~labels:[| id "transport"; id "catalysis" |] ~edges:[ (0, 1, 2) ] in
  check bool "edge labels are not generalized" false
    (Gen_iso.subgraph_isomorphic t ~pattern ~target)

let test_gen_support () =
  let t = bio_taxonomy () in
  let id n = Taxonomy.id_of_name t n in
  let db =
    Db.of_list
      [
        g ~labels:[| id "carrier"; id "dna_helicase" |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| id "cation"; id "helicase" |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| id "carrier"; id "cation" |] ~edges:[ (0, 1, 0) ];
      ]
  in
  let p = g ~labels:[| id "transport"; id "helicase" |] ~edges:[ (0, 1, 0) ] in
  check int "gen support count" 2 (Gen_iso.support_count t ~pattern:p db);
  check (Alcotest.float 1e-9) "gen support" (2.0 /. 3.0)
    (Gen_iso.support t ~pattern:p db);
  check (Alcotest.list int) "gen support set" [ 0; 1 ]
    (Bitset.to_list (Gen_iso.support_set t ~pattern:p db))

let test_gen_graph_isomorphic () =
  let t = bio_taxonomy () in
  let id n = Taxonomy.id_of_name t n in
  let general = g ~labels:[| id "transport"; id "helicase" |] ~edges:[ (0, 1, 0) ] in
  let specific = g ~labels:[| id "dna_helicase"; id "carrier" |] ~edges:[ (0, 1, 0) ] in
  check bool "general IS_GEN_ISO specific" true
    (Gen_iso.graph_isomorphic t general specific);
  check bool "not commutative" false
    (Gen_iso.graph_isomorphic t specific general);
  (* node counts must agree for a bijection *)
  let bigger =
    g ~labels:[| id "carrier"; id "helicase"; id "cation" |]
      ~edges:[ (0, 1, 0); (1, 2, 0) ]
  in
  check bool "size mismatch" false (Gen_iso.graph_isomorphic t general bigger)

let test_gen_count_embeddings () =
  let t = bio_taxonomy () in
  let id n = Taxonomy.id_of_name t n in
  let target =
    g
      ~labels:[| id "carrier"; id "cation"; id "helicase" |]
      ~edges:[ (0, 2, 0); (1, 2, 0) ]
  in
  let p = g ~labels:[| id "transport"; id "catalysis" |] ~edges:[ (0, 1, 0) ] in
  check int "two transport-catalysis embeddings" 2
    (Gen_iso.count_embeddings t ~pattern:p target)

(* --- properties ----------------------------------------------------------- *)

let arb_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

(* random taxonomy + random target; pattern built by picking a connected
   subgraph of the target and generalizing its labels: must always match *)
let planted_pattern_prop =
  QCheck.Test.make ~name:"generalized planted pattern always matches"
    ~count:200 arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 10; relationships = 14; depth = 3 }
      in
      let nlabels = Taxonomy.label_count tax in
      let n = 3 + Prng.int rng 4 in
      let labels = Array.init n (fun _ -> Prng.int rng nlabels) in
      let edges = ref [] in
      for v = 1 to n - 1 do
        edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
      done;
      let target = g ~labels ~edges:!edges in
      (* take the subtree rooted at node 0..k as a connected subgraph *)
      let k = 1 + Prng.int rng (n - 1) in
      let sub_edges =
        List.filter (fun (u, v, _) -> u <= k && v <= k) !edges
      in
      let sub_labels =
        Array.init (k + 1) (fun v ->
            (* generalize: replace by a random ancestor *)
            let l = labels.(v) in
            let ancs = Array.of_list (Taxonomy.ancestors tax l) in
            Prng.choose rng ancs)
      in
      let pattern = g ~labels:sub_labels ~edges:sub_edges in
      Gen_iso.subgraph_isomorphic tax ~pattern ~target)

(* exact matching is generalized matching under a flat taxonomy *)
let flat_taxonomy_prop =
  QCheck.Test.make ~name:"flat taxonomy = exact matching" ~count:200 arb_seed
    (fun seed ->
      let rng = Prng.of_int seed in
      let flat =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 5; relationships = 0; depth = 1 }
      in
      let mk () =
        let n = 2 + Prng.int rng 3 in
        let labels = Array.init n (fun _ -> Prng.int rng 5) in
        let edges = ref [] in
        for v = 1 to n - 1 do
          edges := (v, Prng.int rng v, 0) :: !edges
        done;
        g ~labels ~edges:!edges
      in
      let pattern = mk () and target = mk () in
      Gen_iso.subgraph_isomorphic flat ~pattern ~target
      = Subiso.exists ~pattern ~target)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "iso"
    [
      ( "exact",
        [
          Alcotest.test_case "positive" `Quick test_subiso_positive;
          Alcotest.test_case "negative" `Quick test_subiso_negative;
          Alcotest.test_case "non-induced" `Quick test_subiso_non_induced;
          Alcotest.test_case "injective" `Quick test_subiso_injective;
          Alcotest.test_case "count embeddings" `Quick test_count_embeddings;
          Alcotest.test_case "embeddings valid" `Quick
            test_embeddings_are_valid;
          Alcotest.test_case "graph isomorphism" `Quick test_isomorphic;
          Alcotest.test_case "support count" `Quick test_support_count;
        ] );
      ( "generalized",
        [
          Alcotest.test_case "direction" `Quick test_gen_direction;
          Alcotest.test_case "edge labels exact" `Quick
            test_gen_edge_labels_exact;
          Alcotest.test_case "support" `Quick test_gen_support;
          Alcotest.test_case "IS_GEN_ISO" `Quick test_gen_graph_isomorphic;
          Alcotest.test_case "count embeddings" `Quick
            test_gen_count_embeddings;
        ] );
      ("properties", qsuite [ planted_pattern_prop; flat_taxonomy_prop ]);
    ]
