(* Pipeline chaos suite: the WAL's framing and recovery contract, the
   incremental engine's delta equivalence, and the kill-matrix over the
   pipeline failpoints. The headline property: for any random delta
   sequence and any crash point, recover-and-replay publishes a pattern
   artifact byte-identical to mining the final corpus from scratch with a
   fresh interning history. *)

module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Pool = Tsg_util.Pool
module Fault = Tsg_util.Fault
module Checksum = Tsg_util.Checksum
module Diagnostic = Tsg_util.Diagnostic
module Safe_io = Tsg_util.Safe_io
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram
module Checkpoint = Tsg_core.Checkpoint
module Wal = Tsg_pipeline.Wal
module Corpus = Tsg_pipeline.Corpus
module Incremental = Tsg_pipeline.Incremental
module Publish = Tsg_pipeline.Publish
module Epoch = Tsg_query.Epoch

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let with_faults ?seed schedule f =
  Fault.configure ?seed schedule;
  Fun.protect ~finally:Fault.clear f

let temp_path suffix =
  let path = Filename.temp_file "tsg_pipe" suffix in
  Sys.remove path;
  path

let rm_f path = if Sys.file_exists path then Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- Streaming CRC --------------------------------------------------------- *)

let crc_stream_prop =
  (* feeding any split of a string through the stream equals the one-shot
     CRC of the whole *)
  QCheck.Test.make ~name:"streaming CRC = one-shot CRC on any split"
    ~count:200
    QCheck.(pair (string_of_size Gen.(int_bound 64)) (small_nat))
    (fun (s, seed) ->
      let rng = Prng.of_int seed in
      let rec cuts acc pos =
        if pos >= String.length s then List.rev acc
        else
          let step = 1 + Prng.int rng 7 in
          let pos' = min (String.length s) (pos + step) in
          cuts (String.sub s pos (pos' - pos) :: acc) pos'
      in
      let pieces = cuts [] 0 in
      let st = List.fold_left Checksum.feed Checksum.init pieces in
      Int32.equal (Checksum.finish st) (Checksum.crc32 s))

let test_crc_stream_empty () =
  check bool "empty stream = crc of empty" true
    (Int32.equal (Checksum.finish Checksum.init) (Checksum.crc32 ""))

(* --- WAL framing and recovery ---------------------------------------------- *)

let nasty_payload =
  (* newlines, NULs, hex-looking bytes: framing must be binary-safe *)
  "t # 0\nv 0 a\x00b\ne 0 0 0123abcd\n"

let sample_records =
  [
    { Wal.seq = 1L; op = Wal.Add "t # 0\nv 0 A\n" };
    { Wal.seq = 2L; op = Wal.Add nasty_payload };
    { Wal.seq = 3L; op = Wal.Remove 1L };
  ]

let write_log path records =
  rm_f path;
  let w = Wal.open_writer path in
  List.iter (Wal.append w) records;
  Wal.close w

let record_eq (a : Wal.record) (b : Wal.record) =
  Int64.equal a.seq b.seq
  &&
  match (a.op, b.op) with
  | Wal.Add x, Wal.Add y -> String.equal x y
  | Wal.Remove x, Wal.Remove y -> Int64.equal x y
  | (Wal.Add _ | Wal.Remove _), _ -> false

let test_wal_roundtrip () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      write_log path sample_records;
      let r = Wal.recover path in
      check int "record count" 3 (List.length r.Wal.replayed);
      check bool "records equal" true
        (List.for_all2 record_eq sample_records r.Wal.replayed);
      check bool "head" true (Int64.equal 3L r.Wal.head);
      check bool "clean tail" false r.Wal.truncated;
      (* appending after recovery keeps the log valid *)
      let w = Wal.open_writer path in
      Wal.append w { Wal.seq = 4L; op = Wal.Remove 2L };
      Wal.close w;
      check int "grown log" 4 (List.length (Wal.recover path).Wal.replayed))

let test_wal_missing_is_empty () =
  let path = temp_path ".wal" in
  let r = Wal.recover path in
  check int "no records" 0 (List.length r.Wal.replayed);
  check bool "head 0" true (Int64.equal 0L r.Wal.head)

let test_wal_torn_tail () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      write_log path sample_records;
      let full = read_file path in
      (* cut into the last frame at every possible byte: recovery must
         always yield exactly the first two records, never an error *)
      let boundary =
        (* end of record 2 = start of record 3's frame *)
        let scanned = Wal.scan full in
        ignore scanned;
        (* recompute by writing only two records *)
        let p2 = temp_path ".wal" in
        write_log p2 (List.filteri (fun i _ -> i < 2) sample_records);
        let n = String.length (read_file p2) in
        rm_f p2;
        n
      in
      for cut = boundary + 1 to String.length full - 1 do
        Safe_io.write_atomic path (String.sub full 0 cut);
        let r = Wal.recover path in
        check bool "truncated" true r.Wal.truncated;
        check int "prefix records" 2 (List.length r.Wal.replayed);
        (* the repair is durable: a second recovery is clean *)
        let r2 = Wal.recover path in
        check bool "repaired" false r2.Wal.truncated;
        check int "still two records" 2 (List.length r2.Wal.replayed)
      done)

let test_wal_torn_header () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      Safe_io.write_atomic path "tsgw";
      let r = Wal.recover path in
      check int "empty after torn header" 0 (List.length r.Wal.replayed);
      check bool "truncated" true r.Wal.truncated)

let expect_wal_error code f =
  match f () with
  | _ -> Alcotest.fail ("expected " ^ code)
  | exception Wal.Error d -> check string "rule" code d.Diagnostic.rule

let test_wal_bad_magic () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      Safe_io.write_atomic path "bogus 9\n";
      expect_wal_error "WAL001" (fun () -> Wal.recover path);
      Safe_io.write_atomic path "tsgwal 2\n";
      expect_wal_error "WAL001" (fun () -> Wal.recover path))

let test_wal_midlog_corruption () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      write_log path sample_records;
      let full = Bytes.of_string (read_file path) in
      (* flip a payload byte of the FIRST record: invalid frame with valid
         frames after it = rot under committed data, fatal *)
      let header_end = 1 + Bytes.index full '\n' in
      let target = header_end + 18 in
      Bytes.set full target
        (Char.chr (Char.code (Bytes.get full target) lxor 0x01));
      Safe_io.write_atomic path (Bytes.to_string full);
      expect_wal_error "WAL002" (fun () -> Wal.recover path))

let test_wal_non_monotonic () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      write_log path
        [
          { Wal.seq = 1L; op = Wal.Add "t # 0\nv 0 A\n" };
          { Wal.seq = 3L; op = Wal.Remove 1L };
          { Wal.seq = 2L; op = Wal.Remove 1L };
        ];
      expect_wal_error "WAL003" (fun () -> Wal.recover path))

let rules_of c = List.map (fun d -> d.Diagnostic.rule) (Diagnostic.items c)

let test_wal_validate () =
  let path = temp_path ".wal" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      (* clean log: no findings *)
      write_log path sample_records;
      let c = Diagnostic.collector () in
      Wal.validate c path;
      check int "clean log lints clean" 0 (List.length (Diagnostic.items c));
      (* torn tail: warning, not error *)
      let full = read_file path in
      Safe_io.write_atomic path (String.sub full 0 (String.length full - 3));
      let c = Diagnostic.collector () in
      Wal.validate c path;
      check bool "torn tail is WAL002" true (List.mem "WAL002" (rules_of c));
      check bool "torn tail is only a warning" false (Diagnostic.has_errors c);
      (* bad magic: error *)
      Safe_io.write_atomic path "nope\n";
      let c = Diagnostic.collector () in
      Wal.validate c path;
      check bool "bad magic is WAL001" true (List.mem "WAL001" (rules_of c));
      check bool "and an error" true (Diagnostic.has_errors c);
      (* out-of-order sequence numbers: error *)
      write_log path
        [
          { Wal.seq = 2L; op = Wal.Add "t # 0\nv 0 A\n" };
          { Wal.seq = 2L; op = Wal.Remove 2L };
        ];
      let c = Diagnostic.collector () in
      Wal.validate c path;
      check bool "duplicate seq is WAL003" true (List.mem "WAL003" (rules_of c));
      check bool "and an error" true (Diagnostic.has_errors c))

(* --- Random instances ------------------------------------------------------ *)

let config theta =
  {
    Taxogram.min_support = theta;
    max_edges = Some 4;
    enhancements = Specialize.all_on;
  }

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      {
        concepts;
        relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3;
      }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let graphs =
    Db.to_list
      (Tsg_data.Synth_graph.generate rng
         {
           Tsg_data.Synth_graph.graph_count = 6 + Prng.int rng 4;
           max_edges = 5;
           edge_density = 0.35;
           edge_label_count = 2;
           node_label = sampler;
         })
  in
  (tax, graphs)

(* generated edge-label ids are dense small ints with no table of their
   own; name them for serialization *)
let gen_edge_labels = Label.of_names [ "bond0"; "bond1"; "bond2"; "bond3" ]

let serialize_graph tax g =
  Serial.db_to_string
    ~node_labels:(Taxonomy.labels tax)
    ~edge_labels:gen_edge_labels (Db.of_list [ g ])

(* --- The daemon loop in miniature ------------------------------------------ *)

(* The same WAL-first / recover-and-retry discipline bin/tsg_pipe.ml
   runs, compacted for tests: every step that crashes (Fault.Injected)
   triggers a cold boot — WAL recovery, corpus replay, state reload —
   and is retried. *)
type harness = {
  h_wal : string;
  h_state : string;
  h_out : string;
  h_tax : Taxonomy.t;
  h_config : Taxogram.config;
  h_exec : Pool.Exec.t;
  mutable h_writer : Wal.writer;
  mutable h_corpus : Corpus.t;
  mutable h_engine : Incremental.t;
  mutable h_restarts : int;
  mutable h_rejected : int;
}

let hboot h =
  let recovery = Wal.recover h.h_wal in
  let snapshot =
    if Sys.file_exists h.h_state then Some (read_file h.h_state) else None
  in
  let watermark =
    match Option.bind snapshot Incremental.state_watermark with
    | Some w -> w
    | None -> -1L
  in
  let corpus = Corpus.create ~taxonomy:h.h_tax () in
  let engine =
    Incremental.create ~corpus ~config:h.h_config ~exec:h.h_exec ()
  in
  List.iter
    (fun (r : Wal.record) ->
      match Corpus.apply corpus r with
      | Ok g ->
        if Int64.compare r.seq watermark > 0 then
          Incremental.mark_dirty engine g
      | Error _ -> h.h_rejected <- h.h_rejected + 1)
    recovery.Wal.replayed;
  (match snapshot with
  | None -> ()
  | Some text -> (
    match Incremental.load_state engine text with
    | Ok () -> ()
    | Error _ -> ()));
  h.h_corpus <- corpus;
  h.h_engine <- engine;
  h.h_writer <- Wal.open_writer h.h_wal

let make_harness ~tax ~config ~domains =
  let wal = temp_path ".wal" and state = temp_path ".state" in
  let out = temp_path ".pat" in
  let corpus = Corpus.create ~taxonomy:tax () in
  let exec = Pool.Exec.create ~domains () in
  {
    h_wal = wal;
    h_state = state;
    h_out = out;
    h_tax = tax;
    h_config = config;
    h_exec = exec;
    h_writer = Wal.open_writer wal;
    h_corpus = corpus;
    h_engine = Incremental.create ~corpus ~config ~exec ();
    h_restarts = 0;
    h_rejected = 0;
  }

let cleanup_harness h = List.iter rm_f [ h.h_wal; h.h_state; h.h_out ]

let crash h =
  h.h_restarts <- h.h_restarts + 1;
  if h.h_restarts > 500 then Alcotest.fail "crash loop did not converge"

let rec reboot h =
  match hboot h with
  | () -> ()
  | exception Fault.Injected _ ->
    crash h;
    reboot h

let rec attempt h f =
  match f () with
  | v -> v
  | exception Fault.Injected _ ->
    crash h;
    reboot h;
    attempt h f

let apply h op =
  let intended = ref 0L in
  attempt h (fun () ->
      if
        Int64.compare !intended 0L > 0
        && Int64.compare (Corpus.seq h.h_corpus) !intended >= 0
      then () (* durable before the crash; replay already applied it *)
      else begin
        let seq = Int64.add (Corpus.seq h.h_corpus) 1L in
        intended := seq;
        let r = { Wal.seq; op } in
        Wal.append h.h_writer r;
        match Corpus.apply h.h_corpus r with
        | Ok g -> Incremental.mark_dirty h.h_engine g
        | Error _ -> h.h_rejected <- h.h_rejected + 1
      end)

let commit h =
  attempt h (fun () ->
      let stats = Incremental.refresh h.h_engine in
      Incremental.save_state h.h_engine h.h_state;
      Publish.write h.h_out (Incremental.render h.h_engine);
      stats)

let play h script =
  List.iter
    (function
      | `Add text -> apply h (Wal.Add text)
      | `Remove target -> apply h (Wal.Remove target)
      | `Commit -> ignore (commit h))
    script

(* from-scratch reference: the daemon's final corpus re-parsed with a
   FRESH edge-label table (a different interning history), fully mined on
   one domain — published bytes must still match exactly *)
let scratch_artifact h =
  let text = Corpus.to_serial h.h_corpus in
  let edge_labels = Label.create () in
  let db =
    Serial.parse_db ~node_labels:(Taxonomy.labels h.h_tax) ~edge_labels text
  in
  let r =
    Taxogram.run
      (Taxogram.Spec.collect ~config:h.h_config ~domains:1 ())
      h.h_tax db
  in
  Publish.render ~taxonomy:h.h_tax ~edge_labels ~db_size:(Db.size db)
    r.Taxogram.patterns

(* the published artifact's stamp payload: the daemon stamps its WAL
   watermark, the from-scratch reference has no WAL — equality is over
   payload bytes, after the stamp itself verifies *)
let published h =
  let bytes = read_file h.h_out in
  (match Epoch.verify_stamp bytes with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "published artifact stamp: %s" msg);
  Epoch.payload bytes

(* fixed 10-step script over an instance's graphs: adds, two removes, a
   commit in the middle and one at the end; sequence numbers are
   positional (every add/remove consumes one) *)
let fixed_script tax graphs =
  match List.map (serialize_graph tax) graphs with
  | g1 :: g2 :: g3 :: g4 :: g5 :: _ ->
    [
      `Add g1 (* seq 1 *);
      `Add g2 (* seq 2 *);
      `Add g3 (* seq 3 *);
      `Commit;
      `Add g4 (* seq 4 *);
      `Remove 2L (* seq 5 *);
      `Commit;
      `Add g5 (* seq 6 *);
      `Remove 4L (* seq 7 *);
      `Commit;
    ]
  | _ -> Alcotest.fail "instance too small"

(* --- Kill-matrix ------------------------------------------------------------ *)

(* each case arms one (or two, to reach the replay path) failpoints with a
   deterministic trigger, runs the fixed script with recover-and-retry,
   and requires the published artifact to be byte-identical to the
   from-scratch mine — and the fault to have actually fired *)
let kill_matrix_cases =
  [
    ("wal.append@1", [ ("wal.append", Fault.On_hit 1) ], "wal.append");
    ("wal.append@5", [ ("wal.append", Fault.On_hit 5) ], "wal.append");
    ("wal.fsync@1", [ ("wal.fsync", Fault.On_hit 1) ], "wal.fsync");
    ("wal.fsync@4", [ ("wal.fsync", Fault.On_hit 4) ], "wal.fsync");
    ("pipeline.remine@1", [ ("pipeline.remine", Fault.On_hit 1) ],
     "pipeline.remine");
    ("pipeline.remine@2", [ ("pipeline.remine", Fault.On_hit 2) ],
     "pipeline.remine");
    ("pipeline.publish@1", [ ("pipeline.publish", Fault.On_hit 1) ],
     "pipeline.publish");
    ("pipeline.publish@3", [ ("pipeline.publish", Fault.On_hit 3) ],
     "pipeline.publish");
    ( "wal.replay@1 (via wal.fsync@2)",
      [ ("wal.fsync", Fault.On_hit 2); ("wal.replay", Fault.On_hit 1) ],
      "wal.replay" );
    ( "wal.replay@1 (via pipeline.remine@1)",
      [ ("pipeline.remine", Fault.On_hit 1); ("wal.replay", Fault.On_hit 1) ],
      "wal.replay" );
  ]

let kill_matrix_case ~domains schedule fired_site () =
  let rng = Prng.of_int 20260809 in
  let tax, graphs = random_instance rng in
  let h = make_harness ~tax ~config:(config 0.34) ~domains in
  Fun.protect
    ~finally:(fun () -> cleanup_harness h)
    (fun () ->
      with_faults schedule (fun () ->
          play h (fixed_script tax graphs);
          check bool "the fault fired" true (Fault.fired_count fired_site > 0);
          check bool "at least one recovery" true (h.h_restarts > 0));
      check string "published = from-scratch" (scratch_artifact h)
        (published h))

let kill_matrix_tests ~domains =
  List.map
    (fun (name, schedule, fired_site) ->
      Alcotest.test_case
        (Printf.sprintf "%s, domains=%d" name domains)
        `Quick
        (kill_matrix_case ~domains schedule fired_site))
    kill_matrix_cases

(* --- Incremental equivalence ------------------------------------------------ *)

(* no faults at all: pure incremental maintenance across a random delta
   sequence must match from-scratch, and clean commits must reuse roots *)
let test_incremental_reuses_roots () =
  let rng = Prng.of_int 7 in
  let tax, graphs = random_instance rng in
  let h = make_harness ~tax ~config:(config 0.34) ~domains:1 in
  Fun.protect
    ~finally:(fun () -> cleanup_harness h)
    (fun () ->
      List.iter (fun g -> apply h (Wal.Add (serialize_graph tax g))) graphs;
      let first = commit h in
      check bool "first commit is full" true first.Incremental.full;
      (* a delta-free commit re-mines nothing *)
      let idle = commit h in
      check bool "idle commit is incremental" false idle.Incremental.full;
      check int "idle commit mines no roots" 0 idle.Incremental.roots_mined;
      check string "published = from-scratch" (scratch_artifact h)
        (published h))

let random_script rng tax graphs =
  let seq = ref 0L in
  let live = ref [] in
  let script = ref [] in
  List.iter
    (fun g ->
      (if !live <> [] && Prng.int rng 3 = 0 then begin
         let target = List.nth !live (Prng.int rng (List.length !live)) in
         live := List.filter (fun s -> not (Int64.equal s target)) !live;
         seq := Int64.add !seq 1L;
         script := `Remove target :: !script
       end);
      seq := Int64.add !seq 1L;
      script := `Add (serialize_graph tax g) :: !script;
      live := !seq :: !live;
      if Prng.int rng 3 = 0 then script := `Commit :: !script)
    graphs;
  List.rev (`Commit :: !script)

let arb_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let delta_equivalence_prop ~domains =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "random deltas + random crashes = from-scratch bytes, domains=%d"
         domains)
    ~count:12 arb_seed
    (fun seed ->
      let rng = Prng.of_int seed in
      let tax, graphs = random_instance rng in
      let theta = match Prng.int rng 3 with 0 -> 0.5 | 1 -> 0.34 | _ -> 0.25 in
      let h = make_harness ~tax ~config:(config theta) ~domains in
      Fun.protect
        ~finally:(fun () -> cleanup_harness h)
        (fun () ->
          let script = random_script rng tax graphs in
          with_faults
            ~seed:(Int64.of_int (seed + 1))
            [
              ("wal.append", Fault.Probability 0.04);
              ("wal.fsync", Fault.Probability 0.04);
              ("wal.replay", Fault.Probability 0.04);
              ("pipeline.remine", Fault.Probability 0.06);
              ("pipeline.publish", Fault.Probability 0.06);
            ]
            (fun () -> play h script);
          String.equal (scratch_artifact h) (published h)))

(* a cold process restart (not a crash retry loop): drop every in-memory
   structure, boot from WAL + state, apply more deltas, commit — the
   incremental path across the restart must still match from-scratch *)
let test_restart_resumes_incrementally () =
  let rng = Prng.of_int 42 in
  let tax, graphs = random_instance rng in
  let h = make_harness ~tax ~config:(config 0.34) ~domains:1 in
  Fun.protect
    ~finally:(fun () -> cleanup_harness h)
    (fun () ->
      let script = fixed_script tax graphs in
      let first_half = List.filteri (fun i _ -> i < 4) script in
      let second_half = List.filteri (fun i _ -> i >= 4) script in
      play h first_half;
      Wal.close h.h_writer;
      (* cold boot *)
      hboot h;
      check bool "watermark restored from state snapshot" true
        (Int64.compare (Incremental.mined_seq h.h_engine) 0L > 0);
      play h second_half;
      check string "published = from-scratch" (scratch_artifact h)
        (published h))

let test_corrupt_state_snapshot_degrades () =
  let rng = Prng.of_int 43 in
  let tax, graphs = random_instance rng in
  let h = make_harness ~tax ~config:(config 0.34) ~domains:1 in
  Fun.protect
    ~finally:(fun () -> cleanup_harness h)
    (fun () ->
      List.iter (fun g -> apply h (Wal.Add (serialize_graph tax g))) graphs;
      ignore (commit h);
      (* damage the snapshot *)
      let original = read_file h.h_state in
      let damaged = Bytes.of_string original in
      let mid = Bytes.length damaged / 2 in
      Bytes.set damaged mid
        (Char.chr (Char.code (Bytes.get damaged mid) lxor 1));
      Safe_io.write_atomic h.h_state (Bytes.to_string damaged);
      (* the load must reject it (PIPE003) and refresh must fall back to a
         full re-mine, not fail *)
      let corpus = Corpus.create ~taxonomy:tax () in
      let engine =
        Incremental.create ~corpus ~config:h.h_config ~exec:h.h_exec ()
      in
      let recovery = Wal.recover h.h_wal in
      List.iter
        (fun r -> ignore (Corpus.apply corpus r))
        recovery.Wal.replayed;
      (match Incremental.load_state engine (read_file h.h_state) with
      | Ok () -> Alcotest.fail "loaded a damaged snapshot"
      | Error d -> check string "rule" "PIPE003" d.Diagnostic.rule);
      let stats = Incremental.refresh engine in
      check bool "fell back to a full re-mine" true stats.Incremental.full;
      check string "and still matches from-scratch" (scratch_artifact h)
        (Publish.render ~taxonomy:tax
           ~edge_labels:(Corpus.edge_labels corpus)
           ~db_size:(Corpus.size corpus)
           (Incremental.patterns engine)))

let test_state_snapshot_rejects_config_drift () =
  let rng = Prng.of_int 44 in
  let tax, graphs = random_instance rng in
  let h = make_harness ~tax ~config:(config 0.34) ~domains:1 in
  Fun.protect
    ~finally:(fun () -> cleanup_harness h)
    (fun () ->
      List.iter (fun g -> apply h (Wal.Add (serialize_graph tax g))) graphs;
      ignore (commit h);
      let corpus = Corpus.create ~taxonomy:tax () in
      let engine =
        Incremental.create ~corpus ~config:(config 0.5) ~exec:h.h_exec ()
      in
      let recovery = Wal.recover h.h_wal in
      List.iter
        (fun r -> ignore (Corpus.apply corpus r))
        recovery.Wal.replayed;
      match Incremental.load_state engine (read_file h.h_state) with
      | Ok () -> Alcotest.fail "adopted a snapshot mined under another theta"
      | Error d -> check string "rule" "PIPE003" d.Diagnostic.rule)

(* --- Corpus rejection ------------------------------------------------------- *)

let test_corpus_rejects () =
  let rng = Prng.of_int 45 in
  let tax, graphs = random_instance rng in
  let corpus = Corpus.create ~taxonomy:tax () in
  let g1 = serialize_graph tax (List.hd graphs) in
  let expect_reject r =
    match Corpus.apply corpus r with
    | Ok _ -> Alcotest.fail "expected a PIPE001 rejection"
    | Error d -> check string "rule" "PIPE001" d.Diagnostic.rule
  in
  (match Corpus.apply corpus { Wal.seq = 1L; op = Wal.Add g1 } with
  | Ok _ -> ()
  | Error d -> Alcotest.fail d.Diagnostic.message);
  (* stale sequence number *)
  expect_reject { Wal.seq = 1L; op = Wal.Add g1 };
  (* unknown remove target; still consumes seq 2 *)
  expect_reject { Wal.seq = 2L; op = Wal.Remove 99L };
  (* unparseable payload *)
  expect_reject { Wal.seq = 3L; op = Wal.Add "not a graph\n" };
  (* multi-graph payload *)
  expect_reject { Wal.seq = 4L; op = Wal.Add (g1 ^ g1) };
  check bool "rejections consumed their sequence numbers" true
    (Int64.equal 4L (Corpus.seq corpus));
  check int "corpus still holds one graph" 1 (Corpus.size corpus);
  (* the one real graph can be removed *)
  match Corpus.apply corpus { Wal.seq = 5L; op = Wal.Remove 1L } with
  | Ok _ -> check int "empty" 0 (Corpus.size corpus)
  | Error d -> Alcotest.fail d.Diagnostic.message

(* --- Checkpoint corpus fingerprint (CKPT003) -------------------------------- *)

let test_checkpoint_rejects_moved_corpus () =
  let rng = Prng.of_int 46 in
  let tax, graphs = random_instance rng in
  let db = Db.of_list graphs in
  let cfg = config 0.34 in
  let path = temp_path ".ck" in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      (* kill a checkpointed run against corpus version 7 *)
      (with_faults [ ("taxogram.root", Fault.On_hit 1) ] (fun () ->
           let checkpoint =
             { Taxogram.path; every_s = 0.0; corpus_seq = 7L }
           in
           match
             Taxogram.run
               (Taxogram.Spec.collect ~config:cfg ~domains:1 ~checkpoint ())
               tax db
           with
           | _ -> Alcotest.fail "expected the injected fault to stop the run"
           | exception Fault.Injected _ -> ()));
      check bool "checkpoint written" true (Sys.file_exists path);
      (* resuming against corpus version 9 must refuse with CKPT003, even
         though taxonomy/db/config are identical *)
      (match
         Taxogram.run
           (Taxogram.Spec.collect ~config:cfg ~domains:1
              ~checkpoint:{ Taxogram.path; every_s = 0.0; corpus_seq = 9L }
              ())
           tax db
       with
      | _ -> Alcotest.fail "resumed a snapshot of a corpus that moved on"
      | exception Checkpoint.Error d ->
        check string "rule" "CKPT003" d.Diagnostic.rule);
      (* against the original version it resumes and completes *)
      let r =
        Taxogram.run
          (Taxogram.Spec.collect ~config:cfg ~domains:1
             ~checkpoint:{ Taxogram.path; every_s = 0.0; corpus_seq = 7L }
             ())
          tax db
      in
      check bool "resumed run completed" true r.Taxogram.completed)

(* --- Suite ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pipeline"
    [
      ( "checksum-stream",
        Alcotest.test_case "empty" `Quick test_crc_stream_empty
        :: qsuite [ crc_stream_prop ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "missing file is empty" `Quick
            test_wal_missing_is_empty;
          Alcotest.test_case "torn tail truncated at every cut" `Quick
            test_wal_torn_tail;
          Alcotest.test_case "torn header" `Quick test_wal_torn_header;
          Alcotest.test_case "bad magic/version" `Quick test_wal_bad_magic;
          Alcotest.test_case "mid-log corruption is fatal" `Quick
            test_wal_midlog_corruption;
          Alcotest.test_case "non-monotonic sequences" `Quick
            test_wal_non_monotonic;
          Alcotest.test_case "lint pass (WAL001-WAL003)" `Quick
            test_wal_validate;
        ] );
      ("corpus", [ Alcotest.test_case "rejections" `Quick test_corpus_rejects ]);
      ( "kill-matrix",
        kill_matrix_tests ~domains:1 @ kill_matrix_tests ~domains:4 );
      ( "incremental",
        [
          Alcotest.test_case "clean commits reuse roots" `Quick
            test_incremental_reuses_roots;
          Alcotest.test_case "cold restart resumes incrementally" `Quick
            test_restart_resumes_incrementally;
          Alcotest.test_case "corrupt state snapshot degrades to full" `Quick
            test_corrupt_state_snapshot_degrades;
          Alcotest.test_case "state snapshot rejects config drift" `Quick
            test_state_snapshot_rejects_config_drift;
        ]
        @ qsuite
            [
              delta_equivalence_prop ~domains:1;
              delta_equivalence_prop ~domains:4;
            ] );
      ( "checkpoint",
        [
          Alcotest.test_case "CKPT003 on a moved corpus" `Quick
            test_checkpoint_rejects_moved_corpus;
        ] );
    ]
