module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng
module Stats = Tsg_util.Stats
module Text_table = Tsg_util.Text_table
module Timer = Tsg_util.Timer

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let flt = Alcotest.float 1e-9

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Bitset -------------------------------------------------------------- *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  check bool "fresh is empty" true (Bitset.is_empty b);
  check int "capacity" 100 (Bitset.capacity b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 99;
  check bool "mem 0" true (Bitset.mem b 0);
  check bool "mem 63" true (Bitset.mem b 63);
  check bool "mem 64" true (Bitset.mem b 64);
  check bool "mem 99" true (Bitset.mem b 99);
  check bool "not mem 1" false (Bitset.mem b 1);
  check int "cardinal" 4 (Bitset.cardinal b);
  Bitset.unset b 63;
  check bool "unset" false (Bitset.mem b 63);
  check int "cardinal after unset" 3 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set out of range" (Invalid_argument
    "Bitset: index 10 out of bounds (capacity 10)") (fun () -> Bitset.set b 10);
  Alcotest.check_raises "negative" (Invalid_argument
    "Bitset: index -1 out of bounds (capacity 10)") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_bitset_zero_capacity () =
  let b = Bitset.create 0 in
  check bool "empty" true (Bitset.is_empty b);
  check int "cardinal" 0 (Bitset.cardinal b);
  check bool "equal itself" true (Bitset.equal b (Bitset.create 0))

let test_bitset_set_ops () =
  let a = Bitset.of_list 10 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 10 [ 3; 4; 5; 9 ] in
  check (Alcotest.list int) "inter" [ 3; 5 ] (Bitset.to_list (Bitset.inter a b));
  check (Alcotest.list int) "union" [ 1; 3; 4; 5; 7; 9 ]
    (Bitset.to_list (Bitset.union a b));
  check (Alcotest.list int) "diff" [ 1; 7 ] (Bitset.to_list (Bitset.diff a b));
  check int "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  check bool "subset no" false (Bitset.subset a b);
  check bool "subset yes" true (Bitset.subset (Bitset.of_list 10 [ 3; 5 ]) a);
  check bool "subset self" true (Bitset.subset a a)

let test_bitset_inter_into_aliasing () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 2; 3; 4 ] in
  Bitset.inter_into ~dst:a a b;
  check (Alcotest.list int) "dst aliases a" [ 2; 3 ] (Bitset.to_list a)

let test_bitset_copy_independent () =
  let a = Bitset.of_list 10 [ 1 ] in
  let b = Bitset.copy a in
  Bitset.set b 2;
  check bool "copy does not leak" false (Bitset.mem a 2);
  check bool "copy has both" true (Bitset.mem b 1 && Bitset.mem b 2)

let test_bitset_full_clear_choose () =
  let b = Bitset.full 70 in
  check int "full cardinal" 70 (Bitset.cardinal b);
  check (Alcotest.option int) "choose smallest" (Some 0) (Bitset.choose b);
  Bitset.unset b 0;
  check (Alcotest.option int) "choose next" (Some 1) (Bitset.choose b);
  Bitset.clear b;
  check bool "cleared" true (Bitset.is_empty b);
  check (Alcotest.option int) "choose empty" None (Bitset.choose b)

let test_bitset_iter_order () =
  let b = Bitset.of_list 200 [ 150; 3; 64; 127 ] in
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  check (Alcotest.list int) "ascending" [ 3; 64; 127; 150 ] (List.rev !seen)

let test_bitset_exists_forall () =
  let b = Bitset.of_list 10 [ 2; 4; 6 ] in
  check bool "exists even" true (Bitset.exists (fun i -> i mod 2 = 0) b);
  check bool "exists odd" false (Bitset.exists (fun i -> i mod 2 = 1) b);
  check bool "forall even" true (Bitset.for_all (fun i -> i mod 2 = 0) b);
  check bool "forall >2" false (Bitset.for_all (fun i -> i > 2) b)

let test_bitset_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "inter mismatch"
    (Invalid_argument "Bitset.inter: capacity mismatch") (fun () ->
      ignore (Bitset.inter a b))

(* model-based property: bitset ops agree with a set-of-ints model *)
module Int_set = Set.Make (Int)

let bitset_model_prop =
  QCheck.Test.make ~name:"bitset agrees with Set model" ~count:200
    QCheck.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      let ma = Int_set.of_list xs and mb = Int_set.of_list ys in
      let eq bs m = Bitset.to_list bs = Int_set.elements m in
      eq (Bitset.inter a b) (Int_set.inter ma mb)
      && eq (Bitset.union a b) (Int_set.union ma mb)
      && eq (Bitset.diff a b) (Int_set.diff ma mb)
      && Bitset.cardinal a = Int_set.cardinal ma
      && Bitset.subset a b = Int_set.subset ma mb
      && Bitset.inter_cardinal a b = Int_set.cardinal (Int_set.inter ma mb))

(* iter, fold, to_list, cardinal (pop-count) must all agree on the same
   population, whatever mix of set/unset produced it *)
let bitset_iteration_consistency_prop =
  QCheck.Test.make ~name:"iter/fold/cardinal agree on population" ~count:300
    QCheck.(pair (int_range 1 130) (list (pair (int_bound 129) bool)))
    (fun (cap, ops) ->
      let b = Bitset.create cap in
      List.iter
        (fun (i, on) ->
          let i = i mod cap in
          if on then Bitset.set b i else Bitset.unset b i)
        ops;
      let via_iter = ref [] in
      Bitset.iter (fun i -> via_iter := i :: !via_iter) b;
      let via_iter = List.rev !via_iter in
      let via_fold = List.rev (Bitset.fold (fun i acc -> i :: acc) b []) in
      let counted = Bitset.fold (fun _ acc -> acc + 1) b 0 in
      via_iter = via_fold
      && via_iter = Bitset.to_list b
      && counted = Bitset.cardinal b
      && List.for_all (Bitset.mem b) via_iter
      && via_iter = List.sort_uniq compare via_iter)

let bitset_popcount_ops_prop =
  QCheck.Test.make ~name:"pop-count distributes over set ops" ~count:300
    QCheck.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      let inter = Bitset.cardinal (Bitset.inter a b) in
      Bitset.inter_cardinal a b = inter
      && Bitset.cardinal (Bitset.union a b)
         = Bitset.cardinal a + Bitset.cardinal b - inter
      && Bitset.cardinal (Bitset.diff a b) = Bitset.cardinal a - inter)

(* --- Metrics -------------------------------------------------------------- *)

module Metrics = Tsg_util.Metrics

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests" in
  check int "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr ~n:4 c;
  check int "accumulates" 5 (Metrics.value c);
  let c' = Metrics.counter m "requests" in
  Metrics.incr c';
  check int "same name, same counter" 6 (Metrics.value c);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~n:(-1) c)

let test_metrics_hit_rate () =
  let m = Metrics.create () in
  let hits = Metrics.counter m "hits" and misses = Metrics.counter m "misses" in
  check flt "empty is 0" 0.0 (Metrics.hit_rate ~hits ~misses);
  Metrics.incr ~n:3 hits;
  Metrics.incr ~n:1 misses;
  check flt "3/4" 0.75 (Metrics.hit_rate ~hits ~misses)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "latency" in
  check int "empty count" 0 (Metrics.count h);
  check flt "empty mean" 0.0 (Metrics.mean h);
  check flt "empty percentile" 0.0 (Metrics.percentile h 99.0);
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.1 ];
  check int "count" 4 (Metrics.count h);
  check (Alcotest.float 1e-9) "sum" 0.107 (Metrics.sum h);
  check (Alcotest.float 1e-9) "mean" 0.02675 (Metrics.mean h);
  check flt "max" 0.1 (Metrics.max_value h);
  (* bucket upper bounds: the p50 of {1,2,4,100}ms sits in the 2ms bucket *)
  check flt "p50 bound" 0.002 (Metrics.percentile h 50.0);
  check bool "p100 covers max" true (Metrics.percentile h 100.0 >= 0.1);
  Metrics.observe h (-5.0);
  check int "negative clamps, still counted" 5 (Metrics.count h);
  check flt "clamped to zero" 0.1 (Metrics.max_value h)

let test_metrics_render () =
  let m = Metrics.create () in
  Metrics.incr ~n:7 (Metrics.counter m "cache.hits");
  Metrics.observe (Metrics.histogram m "latency.contains") 0.003;
  let rendered = Metrics.render m in
  check bool "counter row" true (contains rendered "cache.hits");
  check bool "counter value" true (contains rendered "7");
  check bool "histogram row" true (contains rendered "latency.contains")

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.of_int 1234 and b = Prng.of_int 1234 in
  let seq r = List.init 20 (fun _ -> Prng.int r 1000) in
  check (Alcotest.list int) "same seed same stream" (seq a) (seq b)

let test_prng_different_seeds () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let seq r = List.init 20 (fun _ -> Prng.int r 1_000_000) in
  check bool "different" true (seq a <> seq b)

let test_prng_split () =
  let parent = Prng.of_int 99 in
  let child = Prng.split parent in
  let a = List.init 10 (fun _ -> Prng.int parent 1000) in
  let b = List.init 10 (fun _ -> Prng.int child 1000) in
  check bool "streams differ" true (a <> b)

let test_prng_copy () =
  let a = Prng.of_int 5 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  check int "copy continues identically" (Prng.int a 1000) (Prng.int b 1000)

let test_prng_shuffle_permutation () =
  let rng = Prng.of_int 3 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array int) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_prng_sample () =
  let rng = Prng.of_int 8 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Prng.sample rng arr 10 in
  check int "length" 10 (List.length s);
  check int "distinct" 10 (List.length (List.sort_uniq compare s))

let test_prng_degenerate () =
  let rng = Prng.of_int 4 in
  check int "int 1 is 0" 0 (Prng.int rng 1);
  check int "int_in singleton" 7 (Prng.int_in rng 7 7);
  check bool "bernoulli 0" false (Prng.bernoulli rng 0.0);
  check int "geometric p=1" 0 (Prng.geometric rng 1.0);
  Alcotest.check_raises "int 0 rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let prng_bounds_prop =
  QCheck.Test.make ~name:"Prng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Prng.of_int seed in
      let x = Prng.int rng n in
      0 <= x && x < n)

let prng_float_prop =
  QCheck.Test.make ~name:"Prng.float within [0,x)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, x) ->
      let rng = Prng.of_int seed in
      let f = Prng.float rng x in
      0.0 <= f && f < x)

(* --- Stats --------------------------------------------------------------- *)

let test_stats_mean_median () =
  check flt "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check flt "mean_int" 2.0 (Stats.mean_int [ 1; 2; 3 ]);
  check flt "median odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  check flt "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check bool "mean empty nan" true (Float.is_nan (Stats.mean []));
  check bool "median empty nan" true (Float.is_nan (Stats.median []))

let test_stats_stddev () =
  check flt "constant" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]);
  check (Alcotest.float 1e-6) "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_min_max_percentile () =
  let xs = [ 3.0; 1.0; 4.0; 1.5; 9.0 ] in
  check flt "min" 1.0 (Stats.minimum xs);
  check flt "max" 9.0 (Stats.maximum xs);
  check flt "p0" 1.0 (Stats.percentile 0.0 xs);
  check flt "p100" 9.0 (Stats.percentile 100.0 xs);
  check flt "p50 = median elt" 3.0 (Stats.percentile 50.0 xs)

let test_stats_round_to () =
  check flt "2 places" 3.14 (Stats.round_to 2 3.14159);
  check flt "0 places" 3.0 (Stats.round_to 0 3.14159)

(* --- Text_table ---------------------------------------------------------- *)

let test_table_render () =
  let t = Text_table.create [ "name"; "value" ] in
  Text_table.add_row t [ "alpha"; "1" ];
  Text_table.add_row t [ "b"; "22" ];
  let rendered = Text_table.render t in
  check bool "aligned header" true
    (String.length (List.hd (String.split_on_char '\n' rendered)) > 10);
  check bool "contains alpha" true
    (String.length rendered > 0
    && contains rendered "alpha")

let test_table_short_rows_padded () =
  let t = Text_table.create [ "a"; "b"; "c" ] in
  Text_table.add_row t [ "only" ];
  let lines = String.split_on_char '\n' (Text_table.render t) in
  check int "three lines" 3 (List.length lines);
  let widths = List.map String.length lines in
  check bool "all lines same width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_csv () =
  let t = Text_table.create [ "name"; "value" ] in
  Text_table.add_row t [ "plain"; "1" ];
  Text_table.add_row t [ "with,comma"; "say \"hi\"" ];
  let csv = Text_table.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check int "three lines" 3 (List.length lines);
  check Alcotest.string "header" "name,value" (List.nth lines 0);
  check Alcotest.string "plain row" "plain,1" (List.nth lines 1);
  check Alcotest.string "quoted row" "\"with,comma\",\"say \"\"hi\"\"\""
    (List.nth lines 2)

let test_table_int_row () =
  let t = Text_table.create [ "id"; "x"; "y" ] in
  Text_table.add_int_row t "row" [ 10; 20 ];
  check bool "renders ints" true (contains (Text_table.render t) "20")

(* --- Timer --------------------------------------------------------------- *)

let test_timer_budget () =
  check bool "unlimited" false (Timer.Budget.exceeded Timer.Budget.unlimited);
  check bool "unlimited remaining" true
    (Timer.Budget.remaining_s Timer.Budget.unlimited = infinity);
  let b = Timer.Budget.of_seconds (-1.0) in
  check bool "past deadline" true (Timer.Budget.exceeded b);
  check flt "no remaining" 0.0 (Timer.Budget.remaining_s b)

let test_timer_monotone () =
  let t = Timer.start () in
  let a = Timer.elapsed_s t in
  let b = Timer.elapsed_s t in
  check bool "non-negative, monotone" true (a >= 0.0 && b >= a);
  let x, dt = Timer.time (fun () -> 42) in
  check int "time returns value" 42 x;
  check bool "time non-negative" true (dt >= 0.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "zero capacity" `Quick test_bitset_zero_capacity;
          Alcotest.test_case "set ops" `Quick test_bitset_set_ops;
          Alcotest.test_case "inter_into aliasing" `Quick
            test_bitset_inter_into_aliasing;
          Alcotest.test_case "copy independent" `Quick
            test_bitset_copy_independent;
          Alcotest.test_case "full/clear/choose" `Quick
            test_bitset_full_clear_choose;
          Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
          Alcotest.test_case "exists/forall" `Quick test_bitset_exists_forall;
          Alcotest.test_case "capacity mismatch" `Quick
            test_bitset_capacity_mismatch;
        ]
        @ qsuite
            [
              bitset_model_prop;
              bitset_iteration_consistency_prop;
              bitset_popcount_ops_prop;
            ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "hit rate" `Quick test_metrics_hit_rate;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "render" `Quick test_metrics_render;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_different_seeds;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample;
          Alcotest.test_case "degenerate params" `Quick test_prng_degenerate;
        ]
        @ qsuite [ prng_bounds_prop; prng_float_prop ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max/percentile" `Quick
            test_stats_min_max_percentile;
          Alcotest.test_case "round_to" `Quick test_stats_round_to;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows padded" `Quick
            test_table_short_rows_padded;
          Alcotest.test_case "int rows" `Quick test_table_int_row;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "timer",
        [
          Alcotest.test_case "budget" `Quick test_timer_budget;
          Alcotest.test_case "monotone" `Quick test_timer_monotone;
        ] );
    ]
