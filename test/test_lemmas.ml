(* The paper's lemmas (Sections 2-3), re-stated as executable checks.

   Lemma 1  — the number of generalized patterns of P is the product of its
              nodes' ancestor counts (O(d^n)).
   Lemma 2  — support sets grow along generalization: SS(P) ⊆ SS(Pg).
   Lemma 3  — an over-generalized pattern may have a generalization that is
              not over-generalized (downward closure fails on the
              generalization axis).
   Lemma 6  — pattern classes mined from the relabeled database coincide
              with the classes of the taxonomy-superimposed pattern set.
   Lemma 7  — OcS(Ps) = OcS(P) ∩ OcS(child-label entry), so specialized
              supports need no isomorphism tests.
   Lemma 8  — Taxogram's output is minimal (no over-generalized patterns).
   Lemma 9  — Taxogram's output is complete (every non-over-generalized
              frequent pattern).

   Lemmas 4 and 5 are complexity bounds; the occurrence-index size check
   here verifies the space side on concrete instances. *)

module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng
module Gen_iso = Tsg_iso.Gen_iso
module Gspan = Tsg_gspan.Gspan
module Min_code = Tsg_gspan.Min_code
module Pattern = Tsg_core.Pattern
module Relabel = Tsg_core.Relabel
module Occ_index = Tsg_core.Occ_index
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram
module Naive = Tsg_core.Naive

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      {
        concepts;
        relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3;
      }
  in
  let nlabels = Taxonomy.label_count tax in
  let graphs =
    List.init
      (2 + Prng.int rng 3)
      (fun _ ->
        let n = 2 + Prng.int rng 3 in
        let labels = Array.init n (fun _ -> Prng.int rng nlabels) in
        let edges = ref [] in
        for v = 1 to n - 1 do
          edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
        done;
        Graph.build ~labels ~edges:!edges)
  in
  (tax, Db.of_list graphs)

let arb_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

(* --- Lemma 1 ---------------------------------------------------------------- *)

let lemma1_prop =
  QCheck.Test.make ~name:"lemma 1: |generalizations| = prod |ancestors|"
    ~count:100 arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let g = Db.get db 0 in
      let expected =
        Array.fold_left
          (fun acc l -> acc * List.length (Taxonomy.ancestors tax l))
          1 (Graph.node_labels g)
      in
      List.length (Naive.generalizations tax g) = expected)

(* --- Lemma 2 ---------------------------------------------------------------- *)

let lemma2_prop =
  QCheck.Test.make
    ~name:"lemma 2: support sets grow under single-step generalization"
    ~count:60 arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      (* take a random small pattern from the data and generalize one node *)
      let g = Db.get db 0 in
      let sub = List.hd (Naive.connected_subgraphs ~max_edges:2 g) in
      let ss = Gen_iso.support_set tax ~pattern:sub db in
      let ok = ref true in
      for pos = 0 to Graph.node_count sub - 1 do
        List.iter
          (fun parent ->
            let general =
              Graph.relabel sub (fun v ->
                  if v = pos then parent else Graph.node_label sub v)
            in
            let ssg = Gen_iso.support_set tax ~pattern:general db in
            if not (Bitset.subset ss ssg) then ok := false)
          (Taxonomy.parents tax (Graph.node_label sub pos))
      done;
      !ok)

(* --- Lemma 3 ---------------------------------------------------------------- *)

(* the paper's Example 2.8 shape: an over-generalized pattern whose
   generalization is not over-generalized. Constructed instance:
   taxonomy a -> {b, c}; b -> d.
   D = { d-x, d-x & c-x }. Then:
     (b-x): sup 2, specialization (d-x) sup 2 -> over-generalized;
     (a-x): sup 2, specializations (b-x) sup 2... also over-generalized;
   use support sets that differ: D = { d-x , c-x }:
     (a-x) sup 2; (b-x) sup 1; (c-x) sup 1; (d-x) sup 1.
     (b-x) over-generalized (d-x same support), its generalization (a-x)
     is NOT over-generalized (all children drop support). *)
let test_lemma3_witness () =
  let tax =
    Taxonomy.build
      ~names:[ "a"; "b"; "c"; "d"; "x" ]
      ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b") ]
  in
  let id n = Taxonomy.id_of_name tax n in
  let edge l r = Graph.build ~labels:[| id l; id r |] ~edges:[ (0, 1, 0) ] in
  let db = Db.of_list [ edge "d" "x"; edge "c" "x" ] in
  let pattern l r =
    Pattern.make ~db_size:2 (edge l r)
      (Gen_iso.support_set tax ~pattern:(edge l r) db)
  in
  let over_generalized p =
    (* single-step specializations with equal support *)
    let g = (p : Pattern.t).Pattern.graph in
    List.exists
      (fun pos ->
        List.exists
          (fun child ->
            let spec =
              Graph.relabel g (fun v ->
                  if v = pos then child else Graph.node_label g v)
            in
            Gen_iso.support_count tax ~pattern:spec db = p.Pattern.support_count)
          (Taxonomy.children tax (Graph.node_label g pos)))
      [ 0; 1 ]
  in
  let bx = pattern "b" "x" and ax = pattern "a" "x" in
  check int "b-x support" 1 bx.Pattern.support_count;
  check bool "b-x over-generalized" true (over_generalized bx);
  check int "a-x support" 2 ax.Pattern.support_count;
  check bool "a-x (its generalization) is not" false (over_generalized ax);
  (* and Taxogram indeed emits a-x but not b-x *)
  let r =
    Taxogram.run (Taxogram.Spec.collect ~config:{ Taxogram.min_support = 0.5; max_edges = Some 2; enhancements = Specialize.all_on } ())
      tax db
  in
  let keys = List.map Pattern.key r.Taxogram.patterns in
  check bool "taxogram keeps a-x" true (List.mem (Pattern.key ax) keys);
  check bool "taxogram drops b-x" true (not (List.mem (Pattern.key bx) keys))

(* --- Lemma 6 ---------------------------------------------------------------- *)

(* class of a pattern = canonical key of its most-general relabeling *)
let class_key tax g = Min_code.canonical_key (Relabel.graph tax g)

let lemma6_prop =
  QCheck.Test.make
    ~name:"lemma 6: relabeled-db classes = taxonomy-mining classes" ~count:60
    arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let min_support = 1 + Prng.int rng 2 in
      let mg_classes =
        Gspan.mine_list ~max_edges:3 ~min_support (Relabel.db tax db)
        |> List.map (fun p -> Min_code.canonical_key p.Gspan.graph)
        |> List.sort_uniq compare
      in
      let naive_classes =
        Naive.mine ~max_edges:3
          ~min_support:
            (float_of_int min_support /. float_of_int (Db.size db))
          tax db
        |> List.map (fun (p : Pattern.t) -> class_key tax p.Pattern.graph)
        |> List.sort_uniq compare
      in
      (* every class with a surviving member appears among the relabeled
         classes, and every relabeled class has at least one non-over-
         generalized member *)
      naive_classes = mg_classes)

(* --- Lemma 7 ---------------------------------------------------------------- *)

let test_lemma7_intersection () =
  (* build an occurrence index by hand and re-derive a specialized
     occurrence set from embeddings directly *)
  let tax =
    Taxonomy.build
      ~names:[ "a"; "b"; "c"; "d"; "e"; "f" ]
      ~is_a:[ ("b", "a"); ("c", "a"); ("d", "b"); ("e", "b"); ("f", "c") ]
  in
  let id n = Taxonomy.id_of_name tax n in
  let g labels edges = Graph.build ~labels ~edges in
  let db =
    Db.of_list
      [
        g [| id "d"; id "f"; id "e" |] [ (0, 1, 0); (1, 2, 0) ];
        g [| id "e"; id "f" |] [ (0, 1, 0) ];
      ]
  in
  let classes = Gspan.mine_list ~min_support:2 (Relabel.db tax db) in
  List.iter
    (fun cls ->
      let oi = Occ_index.build ~taxonomy:tax ~original:db cls in
      let positions = Graph.node_count oi.Occ_index.class_graph in
      (* choose label b at each position in turn and verify lemma 7 *)
      for pos = 0 to positions - 1 do
        match Occ_index.occurrence_set oi ~position:pos (id "b") with
        | None -> ()
        | Some child_set ->
          let derived = Bitset.inter oi.Occ_index.all_occs child_set in
          (* recount from raw embeddings: occurrences whose original label
             at [pos] descends from b *)
          let expected = Bitset.create oi.Occ_index.occ_count in
          List.iteri
            (fun occ (e : Gspan.embedding) ->
              let original = Db.get db e.Gspan.graph_id in
              let l = Graph.node_label original e.Gspan.map.(pos) in
              if Taxonomy.is_ancestor tax ~anc:(id "b") l then
                Bitset.set expected occ)
            cls.Gspan.embeddings;
          check bool "lemma 7 intersection = recount" true
            (Bitset.equal derived expected)
      done)
    classes

(* --- Lemmas 8 & 9 ------------------------------------------------------------ *)

let lemma8_minimality_prop =
  QCheck.Test.make ~name:"lemma 8: output minimal (definition-checked)"
    ~count:60 arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let ps =
        (Taxogram.run (Taxogram.Spec.collect ~config:{ Taxogram.min_support = 0.5; max_edges = Some 3; enhancements = Specialize.all_on } ())
           tax db)
          .Taxogram.patterns
      in
      List.for_all
        (fun (p : Pattern.t) ->
          not
            (List.exists
               (fun (q : Pattern.t) ->
                 Pattern.key p <> Pattern.key q
                 && p.Pattern.support_count = q.Pattern.support_count
                 && Pattern.node_count p = Pattern.node_count q
                 && Pattern.edge_count p = Pattern.edge_count q
                 && Gen_iso.graph_isomorphic tax p.Pattern.graph
                      q.Pattern.graph)
               ps))
        ps)

let lemma9_completeness_prop =
  QCheck.Test.make ~name:"lemma 9: output complete (vs specification)"
    ~count:60 arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let naive = Naive.mine ~max_edges:3 ~min_support:0.5 tax db in
      let taxogram =
        (Taxogram.run (Taxogram.Spec.collect ~config:{ Taxogram.min_support = 0.5; max_edges = Some 3; enhancements = Specialize.all_on } ())
           tax db)
          .Taxogram.patterns
      in
      (* completeness direction: every specification pattern is found *)
      let keys = List.map Pattern.key taxogram in
      List.for_all (fun p -> List.mem (Pattern.key p) keys) naive)

(* --- Remarks 2.1/2.2: (non-)commutativity and transitivity ------------------- *)

let remark_transitivity_prop =
  QCheck.Test.make
    ~name:"remark 2.2: generalized subgraph isomorphism is transitive"
    ~count:60 arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      (* build a chain: sub is a subgraph of g; gen generalizes sub;
         gen2 generalizes gen. Then gen2 must occur in g. *)
      let g = Db.get db 0 in
      let sub = List.hd (Naive.connected_subgraphs ~max_edges:2 g) in
      let generalize graph =
        Graph.relabel graph (fun v ->
            let l = Graph.node_label graph v in
            match Taxonomy.parents tax l with
            | [] -> l
            | p :: _ -> if Prng.bool rng then p else l)
      in
      let gen = generalize sub in
      let gen2 = generalize gen in
      Gen_iso.subgraph_isomorphic tax ~pattern:gen ~target:g
      && Gen_iso.subgraph_isomorphic tax ~pattern:gen2 ~target:gen
      && Gen_iso.subgraph_isomorphic tax ~pattern:gen2 ~target:g)

let test_remark_non_commutative () =
  (* remark 2.1: IS_GEN_ISO is not commutative *)
  let tax = Taxonomy.build ~names:[ "a"; "b" ] ~is_a:[ ("b", "a") ] in
  let id n = Taxonomy.id_of_name tax n in
  let general = Graph.build ~labels:[| id "a"; id "a" |] ~edges:[ (0, 1, 0) ] in
  let specific = Graph.build ~labels:[| id "b"; id "b" |] ~edges:[ (0, 1, 0) ] in
  check bool "general ~ specific" true
    (Gen_iso.graph_isomorphic tax general specific);
  check bool "specific !~ general" false
    (Gen_iso.graph_isomorphic tax specific general)

(* --- occurrence-index size (the space side of Lemmas 4/5) -------------------- *)

let oi_size_bound_prop =
  QCheck.Test.make
    ~name:"occurrence-index entries bounded by |positions| * |T|" ~count:60
    arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let classes = Gspan.mine_list ~max_edges:3 ~min_support:1 (Relabel.db tax db) in
      List.for_all
        (fun cls ->
          let oi = Occ_index.build ~taxonomy:tax ~original:db cls in
          let positions = Graph.node_count oi.Occ_index.class_graph in
          let entries =
            Array.fold_left
              (fun acc table -> acc + Hashtbl.length table)
              0 oi.Occ_index.entries
          in
          entries <= positions * Taxonomy.label_count tax)
        classes)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lemmas"
    [
      ( "witnesses",
        [
          Alcotest.test_case "lemma 3 witness" `Quick test_lemma3_witness;
          Alcotest.test_case "lemma 7 intersection" `Quick
            test_lemma7_intersection;
          Alcotest.test_case "remark 2.1 non-commutativity" `Quick
            test_remark_non_commutative;
        ] );
      ( "properties",
        qsuite
          [
            lemma1_prop;
            lemma2_prop;
            lemma6_prop;
            remark_transitivity_prop;
            lemma8_minimality_prop;
            lemma9_completeness_prop;
            oi_size_bound_prop;
          ] );
    ]
