(* tsg_check: the lint passes, the diagnostics engine, and the
   occurrence-index self check.

   The corruption tests follow one scheme: take a well-formed artifact,
   break exactly one invariant, and assert that the lint run reports
   exactly the matching rule code anchored to the offending file:line. *)

module Prng = Tsg_util.Prng
module Diagnostic = Tsg_util.Diagnostic
module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Serial = Tsg_graph.Serial
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Synth_taxonomy = Tsg_taxonomy.Synth_taxonomy
module Gspan = Tsg_gspan.Gspan
module Pattern_io = Tsg_core.Pattern_io
module Relabel = Tsg_core.Relabel
module Occ_index = Tsg_core.Occ_index
module Taxogram = Tsg_core.Taxogram
module Synth_graph = Tsg_data.Synth_graph
module Lint = Tsg_check.Lint

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- harness ---------------------------------------------------------------- *)

let write_tmp suffix content =
  let path = Filename.temp_file "tsgcheck" suffix in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

(* run the full lint driver over throwaway files built from the given
   artifact texts and hand back the collector *)
let lint ?tax ?db ?pat ?(deep = false) () =
  let files = ref [] in
  let mk suffix content =
    let path = write_tmp suffix content in
    files := path :: !files;
    path
  in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove !files)
    (fun () ->
      let c = Diagnostic.collector () in
      let taxonomy = Option.map (mk ".tax") tax in
      let dbs = match db with None -> [] | Some s -> [ mk ".db" s ] in
      let patterns = match pat with None -> [] | Some s -> [ mk ".pat" s ] in
      ignore (Lint.run c ?taxonomy ~dbs ~patterns ~deep ());
      c)

let rules c =
  String.concat "; "
    (List.map (fun d -> Diagnostic.to_string d) (Diagnostic.items c))

(* the seeded corruption contract: the rule code fires, carries a file,
   and anchors to the expected line *)
let assert_rule ?line c rule =
  match
    List.find_opt (fun d -> d.Diagnostic.rule = rule) (Diagnostic.items c)
  with
  | None -> Alcotest.failf "expected %s among [%s]" rule (rules c)
  | Some d ->
    check bool (rule ^ " carries a file") true (d.Diagnostic.file <> None);
    (match line with
    | Some l ->
      check (Alcotest.option int) (rule ^ " line") (Some l) d.Diagnostic.line
    | None ->
      check bool (rule ^ " carries a line") true (d.Diagnostic.line <> None))

let assert_no_rule c rule =
  if List.exists (fun d -> d.Diagnostic.rule = rule) (Diagnostic.items c) then
    Alcotest.failf "unexpected %s among [%s]" rule (rules c)

(* --- well-formed baselines -------------------------------------------------- *)

let tax_ok = "c root\nc a\nc b\nc x\ni a root\ni b root\ni x root\n"
let db_ok = "t # 0\nv 0 a\nv 1 b\ne 0 1 e0\nt # 1\nv 0 a\nv 1 b\ne 0 1 e0\n"
let pat_ab support = Printf.sprintf "p # 0 support %d/2\nv 0 a\nv 1 b\ne 0 1 e0\n" support

let test_clean_artifacts () =
  let c = lint ~tax:tax_ok ~db:db_ok ~pat:(pat_ab 2) ~deep:true () in
  check int "no findings" 0 (List.length (Diagnostic.items c));
  check int "exit 0" 0 (Diagnostic.exit_code c)

(* --- taxonomy corruptions --------------------------------------------------- *)

let test_tax001_duplicate_decl () =
  let c = lint ~tax:(tax_ok ^ "c a\n") () in
  assert_rule ~line:8 c "TAX001";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_tax002_unknown_concept () =
  let c = lint ~tax:(tax_ok ^ "i zzz root\n") () in
  assert_rule ~line:8 c "TAX002";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_tax003_self_edge () =
  let c = lint ~tax:(tax_ok ^ "i a a\n") () in
  assert_rule ~line:8 c "TAX003";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_tax004_duplicate_edge () =
  let c = lint ~tax:(tax_ok ^ "i a root\n") () in
  assert_rule ~line:8 c "TAX004";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_tax005_cycle () =
  let c = lint ~tax:(tax_ok ^ "i root x\n") () in
  assert_rule c "TAX005";
  check int "exit 2" 2 (Diagnostic.exit_code c);
  (* the witness names a concrete closed is-a walk *)
  let d =
    List.find (fun d -> d.Diagnostic.rule = "TAX005") (Diagnostic.items c)
  in
  check bool "cycle witness" true
    (String.length d.Diagnostic.message > 0
    && String.contains d.Diagnostic.message '>')

let test_tax007_isolated_concept () =
  let c = lint ~tax:"c root\nc a\nc iso\ni a root\n" () in
  assert_rule ~line:3 c "TAX007";
  check int "warning only: exit 1" 1 (Diagnostic.exit_code c)

let test_tax009_syntax () =
  let c = lint ~tax:"c root\nbogus line\n" () in
  assert_rule ~line:2 c "TAX009";
  check int "exit 2" 2 (Diagnostic.exit_code c)

(* --- database corruptions --------------------------------------------------- *)

let test_db001_duplicate_node () =
  let c = lint ~tax:tax_ok ~db:"t # 0\nv 0 a\nv 1 b\nv 1 a\ne 0 1 e0\n" () in
  assert_rule ~line:4 c "DB001";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_db002_dangling_endpoint () =
  let c = lint ~tax:tax_ok ~db:"t # 0\nv 0 a\nv 1 b\ne 0 5 e0\n" () in
  assert_rule ~line:4 c "DB002";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_db003_self_loop () =
  let c = lint ~tax:tax_ok ~db:"t # 0\nv 0 a\nv 1 b\ne 0 0 e0\n" () in
  assert_rule ~line:4 c "DB003";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_db004_duplicate_edge () =
  let c =
    lint ~tax:tax_ok ~db:"t # 0\nv 0 a\nv 1 b\ne 0 1 e0\ne 1 0 e1\n" ()
  in
  assert_rule ~line:5 c "DB004";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_db005_unknown_label () =
  let c = lint ~tax:tax_ok ~db:"t # 0\nv 0 a\nv 1 zzz\ne 0 1 e0\n" () in
  assert_rule ~line:3 c "DB005";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_db007_bad_line () =
  let c = lint ~tax:tax_ok ~db:"t # 0\nv 0 a\nwhat is this\n" () in
  assert_rule ~line:3 c "DB007";
  check int "exit 2" 2 (Diagnostic.exit_code c)

(* --- pattern-set corruptions ------------------------------------------------ *)

let test_pat001_disconnected () =
  let c = lint ~tax:tax_ok ~pat:"p # 0 support 1/2\nv 0 a\nv 1 b\n" () in
  assert_rule ~line:1 c "PAT001";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_pat002_non_canonical () =
  (* label a precedes b, so the minimum DFS code roots at the a node;
     numbering the b node 0 breaks canonical form *)
  let c = lint ~tax:tax_ok ~pat:"p # 0 support 1/2\nv 0 b\nv 1 a\ne 0 1 e0\n" () in
  assert_rule ~line:1 c "PAT002";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_pat003_duplicate () =
  let c = lint ~tax:tax_ok ~pat:(pat_ab 1 ^ pat_ab 1) () in
  assert_rule ~line:5 c "PAT003";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_pat004_support_monotonicity () =
  (* root-root generalizes a-b, yet records smaller support *)
  let general = "p # 0 support 1/2\nv 0 root\nv 1 root\ne 0 1 e0\n" in
  let c = lint ~tax:tax_ok ~pat:(general ^ pat_ab 2) () in
  assert_rule ~line:1 c "PAT004";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_pat005_over_generalized () =
  (* equal support: the equal-support rule should have eliminated root-root *)
  let general = "p # 0 support 2/2\nv 0 root\nv 1 root\ne 0 1 e0\n" in
  let c = lint ~tax:tax_ok ~pat:(general ^ pat_ab 2) () in
  assert_rule ~line:1 c "PAT005";
  check int "warning only: exit 1" 1 (Diagnostic.exit_code c)

let test_pat006_db_size_mismatch () =
  let other = "p # 1 support 1/3\nv 0 a\nv 1 a\ne 0 1 e0\n" in
  let c = lint ~tax:tax_ok ~pat:(pat_ab 1 ^ other) () in
  assert_rule ~line:5 c "PAT006";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_pat007_unknown_label () =
  let c = lint ~tax:tax_ok ~pat:"p # 0 support 1/2\nv 0 zzz\n" () in
  assert_rule ~line:1 c "PAT007";
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_pat009_syntax () =
  let c = lint ~tax:tax_ok ~pat:"p # 0 support 1/2\nv 0 a\nbogus\n" () in
  assert_rule ~line:3 c "PAT009";
  check int "exit 2" 2 (Diagnostic.exit_code c)

(* --- cross-artifact corruptions --------------------------------------------- *)

let test_x001_unmatchable_pattern () =
  (* x is a taxonomy concept, but nothing in the database specializes it *)
  let c = lint ~tax:tax_ok ~db:db_ok ~pat:"p # 0 support 1/2\nv 0 x\n" () in
  assert_rule ~line:1 c "X001";
  check int "warning only: exit 1" 1 (Diagnostic.exit_code c)

let test_x003_support_mismatch () =
  (* a-b occurs in both graphs, the header claims one *)
  let c = lint ~tax:tax_ok ~db:db_ok ~pat:(pat_ab 1) ~deep:true () in
  assert_rule ~line:1 c "X003";
  check int "exit 2" 2 (Diagnostic.exit_code c);
  (* without --deep the mismatch goes unnoticed (it needs brute force) *)
  assert_no_rule (lint ~tax:tax_ok ~db:db_ok ~pat:(pat_ab 1) ()) "X003"

let test_io001_unreadable () =
  let c = Diagnostic.collector () in
  ignore (Lint.run c ~taxonomy:"/nonexistent/no.tax" ());
  match
    List.find_opt (fun d -> d.Diagnostic.rule = "IO001") (Diagnostic.items c)
  with
  | None -> Alcotest.failf "expected IO001 among [%s]" (rules c)
  | Some d ->
    (* a whole-file failure: named file, no line *)
    check (Alcotest.option Alcotest.string) "file" (Some "/nonexistent/no.tax")
      d.Diagnostic.file;
    check (Alcotest.option int) "no line" None d.Diagnostic.line;
    check int "exit 2" 2 (Diagnostic.exit_code c)

(* --- diagnostics engine ----------------------------------------------------- *)

let test_suppression () =
  let c = Diagnostic.collector ~suppress:[ "TAX007" ] () in
  Diagnostic.emitf c ~rule:"TAX007" Diagnostic.Warning "dropped";
  Diagnostic.emitf c ~rule:"TAX005" Diagnostic.Error "kept";
  check int "kept" 1 (List.length (Diagnostic.items c));
  check int "suppressed" 1 (Diagnostic.suppressed_count c);
  check int "exit 2" 2 (Diagnostic.exit_code c)

let test_rendering () =
  let d =
    Diagnostic.make ~file:"f.tax" ~line:3 ~rule:"TAX005" Diagnostic.Error
      "is-a cycle: a -> b -> a"
  in
  check Alcotest.string "human form"
    "f.tax:3: error [TAX005] is-a cycle: a -> b -> a" (Diagnostic.to_string d);
  check Alcotest.string "machine form"
    "f.tax\t3\terror\tTAX005\tis-a cycle: a -> b -> a"
    (Diagnostic.to_machine d);
  let bare = Diagnostic.make ~rule:"X002" Diagnostic.Warning "w" in
  check Alcotest.string "no location" "warning [X002] w"
    (Diagnostic.to_string bare);
  check Alcotest.string "machine placeholders" "-\t-\twarning\tX002\tw"
    (Diagnostic.to_machine bare)

(* --- generated artifacts lint clean (qcheck) -------------------------------- *)

let arb_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let random_taxonomy rng =
  let concepts = 4 + Prng.int rng 12 in
  Synth_taxonomy.generate rng
    {
      Synth_taxonomy.concepts;
      relationships = concepts + Prng.int rng 6;
      depth = 2 + Prng.int rng 3;
    }

let edge_label_names n = Label.of_names (List.init n (Printf.sprintf "e%d"))

let random_db rng tax =
  Synth_graph.generate rng
    {
      Synth_graph.graph_count = 3 + Prng.int rng 5;
      max_edges = 6;
      edge_density = 0.3;
      edge_label_count = 2;
      node_label = Synth_graph.uniform_labels tax;
    }

let synth_lint_clean_prop =
  QCheck.Test.make ~name:"synth taxonomy + database lint clean" ~count:60
    arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax = random_taxonomy rng in
      let db = random_db rng tax in
      let c =
        lint
          ~tax:(Taxonomy_io.to_string tax)
          ~db:
            (Serial.db_to_string
               ~node_labels:(Taxonomy.labels tax)
               ~edge_labels:(edge_label_names 2) db)
          ()
      in
      not (Diagnostic.has_errors c))

let miner_output_lint_clean_prop =
  QCheck.Test.make ~name:"tsg-mine output lints clean (deep)" ~count:25
    arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax = random_taxonomy rng in
      let db = random_db rng tax in
      let r =
        Taxogram.run (Taxogram.Spec.collect ~config:{ Taxogram.min_support = 0.5; max_edges = Some 3; enhancements = Tsg_core.Specialize.all_on; } ())
          tax db
      in
      let edge_labels = edge_label_names 2 in
      let c =
        lint
          ~tax:(Taxonomy_io.to_string tax)
          ~db:
            (Serial.db_to_string
               ~node_labels:(Taxonomy.labels tax)
               ~edge_labels db)
          ~pat:
            (Pattern_io.to_string
               ~node_labels:(Taxonomy.labels tax)
               ~edge_labels ~db_size:(Db.size db) r.Taxogram.patterns)
          ~deep:true ()
      in
      if Diagnostic.has_errors c then
        QCheck.Test.fail_reportf "lint errors: %s" (rules c)
      else true)

(* --- occurrence-index self check (qcheck) ------------------------------------ *)

let random_instance rng =
  let tax = random_taxonomy rng in
  let nlabels = Taxonomy.label_count tax in
  let graphs =
    List.init
      (2 + Prng.int rng 3)
      (fun _ ->
        let n = 2 + Prng.int rng 3 in
        let labels = Array.init n (fun _ -> Prng.int rng nlabels) in
        let edges = ref [] in
        for v = 1 to n - 1 do
          edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
        done;
        Graph.build ~labels ~edges:!edges)
  in
  (tax, Db.of_list graphs)

let occ_index_self_check_prop =
  QCheck.Test.make
    ~name:"occ_index self_check agrees with brute-force gen-iso" ~count:40
    arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let relabeled = Relabel.db tax db in
      let classes = Gspan.mine_list ~max_edges:3 ~min_support:2 relabeled in
      List.for_all
        (fun cls ->
          let oi = Occ_index.build ~taxonomy:tax ~original:db cls in
          match Occ_index.self_check ~taxonomy:tax ~original:db oi with
          | [] -> true
          | problems ->
            QCheck.Test.fail_reportf "self_check: %s"
              (String.concat "; " problems))
        classes)

let occ_index_self_check_filtered_prop =
  QCheck.Test.make ~name:"occ_index self_check honours keep_label" ~count:40
    arb_seed (fun seed ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let keep_label l = l mod 2 = 0 in
      let relabeled = Relabel.db tax db in
      let classes = Gspan.mine_list ~max_edges:3 ~min_support:2 relabeled in
      List.for_all
        (fun cls ->
          let oi = Occ_index.build ~taxonomy:tax ~original:db ~keep_label cls in
          Occ_index.self_check ~taxonomy:tax ~original:db ~keep_label oi = [])
        classes)

(* --- suites ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "check"
    [
      ( "baseline",
        [
          Alcotest.test_case "clean artifacts, zero findings" `Quick
            test_clean_artifacts;
        ] );
      ( "taxonomy corruptions",
        [
          Alcotest.test_case "TAX001 duplicate decl" `Quick
            test_tax001_duplicate_decl;
          Alcotest.test_case "TAX002 unknown concept" `Quick
            test_tax002_unknown_concept;
          Alcotest.test_case "TAX003 self is-a" `Quick test_tax003_self_edge;
          Alcotest.test_case "TAX004 duplicate is-a" `Quick
            test_tax004_duplicate_edge;
          Alcotest.test_case "TAX005 cycle" `Quick test_tax005_cycle;
          Alcotest.test_case "TAX007 isolated concept" `Quick
            test_tax007_isolated_concept;
          Alcotest.test_case "TAX009 syntax" `Quick test_tax009_syntax;
        ] );
      ( "database corruptions",
        [
          Alcotest.test_case "DB001 duplicate node" `Quick
            test_db001_duplicate_node;
          Alcotest.test_case "DB002 dangling endpoint" `Quick
            test_db002_dangling_endpoint;
          Alcotest.test_case "DB003 self loop" `Quick test_db003_self_loop;
          Alcotest.test_case "DB004 duplicate edge" `Quick
            test_db004_duplicate_edge;
          Alcotest.test_case "DB005 unknown label" `Quick
            test_db005_unknown_label;
          Alcotest.test_case "DB007 bad line" `Quick test_db007_bad_line;
        ] );
      ( "pattern corruptions",
        [
          Alcotest.test_case "PAT001 disconnected" `Quick
            test_pat001_disconnected;
          Alcotest.test_case "PAT002 non-canonical numbering" `Quick
            test_pat002_non_canonical;
          Alcotest.test_case "PAT003 duplicate" `Quick test_pat003_duplicate;
          Alcotest.test_case "PAT004 support monotonicity" `Quick
            test_pat004_support_monotonicity;
          Alcotest.test_case "PAT005 over-generalized" `Quick
            test_pat005_over_generalized;
          Alcotest.test_case "PAT006 db size mismatch" `Quick
            test_pat006_db_size_mismatch;
          Alcotest.test_case "PAT007 unknown label" `Quick
            test_pat007_unknown_label;
          Alcotest.test_case "PAT009 syntax" `Quick test_pat009_syntax;
        ] );
      ( "cross-artifact",
        [
          Alcotest.test_case "X001 unmatchable pattern" `Quick
            test_x001_unmatchable_pattern;
          Alcotest.test_case "X003 support mismatch (deep)" `Quick
            test_x003_support_mismatch;
          Alcotest.test_case "IO001 unreadable file" `Quick
            test_io001_unreadable;
        ] );
      ( "diagnostics engine",
        [
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "rendering" `Quick test_rendering;
        ] );
      ( "properties",
        qsuite
          [
            synth_lint_clean_prop;
            miner_output_lint_clean_prop;
            occ_index_self_check_prop;
            occ_index_self_check_filtered_prop;
          ] );
    ]
