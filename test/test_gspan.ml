module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Dfs_code = Tsg_gspan.Dfs_code
module Min_code = Tsg_gspan.Min_code
module Gspan = Tsg_gspan.Gspan
module Subiso = Tsg_iso.Subiso
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let g ~labels ~edges = Graph.build ~labels ~edges

let e from_i to_i from_label edge_label to_label =
  { Dfs_code.from_i; to_i; from_label; edge_label; to_label }

(* --- Dfs_code ------------------------------------------------------------- *)

let test_forward_backward () =
  check bool "forward" true (Dfs_code.is_forward (e 0 1 0 0 0));
  check bool "backward" true (Dfs_code.is_backward (e 3 1 0 0 0))

let test_compare_edge_rules () =
  let lt a b = Dfs_code.compare_edge a b < 0 in
  (* backward precedes forward when it leaves from a deeper or equal node *)
  check bool "backward < forward" true (lt (e 2 0 0 0 0) (e 2 3 0 0 0));
  (* forward from deeper anchor precedes forward from shallower *)
  check bool "deep forward first" true (lt (e 2 3 0 0 0) (e 1 3 0 0 0));
  check bool "shallow forward later" false (lt (e 0 3 0 0 0) (e 2 3 0 0 0));
  (* among backward: earlier target first *)
  check bool "backward targets" true (lt (e 3 0 0 0 0) (e 3 1 0 0 0));
  (* label tiebreak on equal positions *)
  check bool "labels break ties" true (lt (e 0 1 0 0 1) (e 0 1 0 0 2));
  check bool "from label dominates" true (lt (e 0 1 0 9 9) (e 0 1 1 0 0))

let test_code_compare_prefix () =
  let a = [| e 0 1 0 0 1 |] in
  let b = [| e 0 1 0 0 1; e 1 2 1 0 2 |] in
  check bool "prefix smaller" true (Dfs_code.compare a b < 0);
  check bool "reverse" true (Dfs_code.compare b a > 0);
  check int "equal" 0 (Dfs_code.compare a a)

let test_rightmost_path () =
  (* path code 0-1-2: rightmost path is [2;1;0] *)
  let code = [| e 0 1 0 0 1; e 1 2 1 0 2 |] in
  check (Alcotest.list int) "path" [ 2; 1; 0 ] (Dfs_code.rightmost_path code);
  (* branching: 0-1, 0-2: rightmost node 2 hangs off 0 *)
  let star = [| e 0 1 0 0 1; e 0 2 0 0 2 |] in
  check (Alcotest.list int) "star" [ 2; 0 ] (Dfs_code.rightmost_path star);
  check int "rightmost" 2 (Dfs_code.rightmost star)

let test_code_accessors () =
  let code = [| e 0 1 5 9 6; e 1 2 6 9 7; e 2 0 7 8 5 |] in
  check int "label_of 0" 5 (Dfs_code.label_of code 0);
  check int "label_of 2" 7 (Dfs_code.label_of code 2);
  check bool "has_edge forward" true (Dfs_code.has_edge code 0 1);
  check bool "has_edge backward stored" true (Dfs_code.has_edge code 0 2);
  check bool "no edge" true (Dfs_code.has_edge code 2 1);
  check int "node count" 3 (Dfs_code.node_count code);
  check int "edge count" 3 (Dfs_code.edge_count code)

let test_to_graph_roundtrip () =
  let code = [| e 0 1 5 9 6; e 1 2 6 9 7; e 2 0 7 8 5 |] in
  let graph = Dfs_code.to_graph code in
  check int "nodes" 3 (Graph.node_count graph);
  check int "edges" 3 (Graph.edge_count graph);
  check int "label" 6 (Graph.node_label graph 1);
  check (Alcotest.option int) "edge label" (Some 8) (Graph.edge_label graph 0 2)

(* --- Min_code ------------------------------------------------------------- *)

let test_minimum_single_edge () =
  let graph = g ~labels:[| 3; 1 |] ~edges:[ (0, 1, 4) ] in
  let code = Min_code.minimum graph in
  check int "one edge" 1 (Array.length code);
  let edge = code.(0) in
  (* minimum orientation starts at the smaller label *)
  check int "from label" 1 edge.Dfs_code.from_label;
  check int "to label" 3 edge.Dfs_code.to_label;
  check int "edge label" 4 edge.Dfs_code.edge_label

let test_minimum_is_min () =
  let graphs =
    [
      g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
      g ~labels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ];
      g ~labels:[| 1; 0; 1; 0 |]
        ~edges:[ (0, 1, 0); (1, 2, 0); (2, 3, 0); (0, 3, 0) ];
    ]
  in
  List.iter
    (fun graph -> check bool "minimum is minimal" true
        (Min_code.is_min (Min_code.minimum graph)))
    graphs

let test_non_minimal_rejected () =
  (* path a(0)-b(1)-c(2): the minimal code starts at label 0; a code starting
     from the c end is valid but not minimal *)
  let from_wrong_end = [| e 0 1 2 0 1; e 1 2 1 0 0 |] in
  check bool "not minimal" false (Min_code.is_min from_wrong_end);
  let minimal = [| e 0 1 0 0 1; e 1 2 1 0 2 |] in
  check bool "minimal" true (Min_code.is_min minimal)

let test_is_min_empty () = check bool "empty code" true (Min_code.is_min [||])

let test_min_code_disconnected_rejected () =
  let graph = g ~labels:[| 0; 1; 2; 3 |] ~edges:[ (0, 1, 0); (2, 3, 0) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Min_code: graph must be connected") (fun () ->
      ignore (Min_code.minimum graph))

let test_canonical_key_iso_invariant () =
  let a = g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 5); (1, 2, 6) ] in
  let b = g ~labels:[| 2; 1; 0 |] ~edges:[ (0, 1, 6); (1, 2, 5) ] in
  check Alcotest.string "isomorphic graphs same key" (Min_code.canonical_key a)
    (Min_code.canonical_key b);
  let c = g ~labels:[| 0; 1; 3 |] ~edges:[ (0, 1, 5); (1, 2, 6) ] in
  check bool "different labels different key" true
    (Min_code.canonical_key a <> Min_code.canonical_key c);
  let single0 = g ~labels:[| 0 |] ~edges:[] in
  let single1 = g ~labels:[| 1 |] ~edges:[] in
  check bool "single nodes keyed by label" true
    (Min_code.canonical_key single0 <> Min_code.canonical_key single1)

let random_connected_graph rng =
  let n = 2 + Prng.int rng 5 in
  let labels = Array.init n (fun _ -> Prng.int rng 3) in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
  done;
  for _ = 1 to Prng.int rng 3 do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (List.exists (fun (a, b, _) -> (a = u && b = v) || (a = v && b = u)) !edges)
    then edges := (u, v, Prng.int rng 2) :: !edges
  done;
  g ~labels ~edges:!edges

let permute_graph rng graph =
  let n = Graph.node_count graph in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let labels = Array.make n 0 in
  Array.iteri (fun old_v new_v -> labels.(new_v) <- Graph.node_label graph old_v) perm;
  let edges =
    Array.to_list
      (Array.map (fun (u, v, l) -> (perm.(u), perm.(v), l)) (Graph.edges graph))
  in
  g ~labels ~edges

let canonical_permutation_prop =
  QCheck.Test.make ~name:"canonical key is permutation-invariant" ~count:300
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let graph = random_connected_graph rng in
      let shuffled = permute_graph rng graph in
      Min_code.canonical_key graph = Min_code.canonical_key shuffled)

let minimum_always_minimal_prop =
  QCheck.Test.make ~name:"minimum code passes is_min" ~count:300
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let graph = random_connected_graph rng in
      Min_code.is_min (Min_code.minimum graph))

(* --- Cam -------------------------------------------------------------------- *)

module Cam = Tsg_gspan.Cam

let test_cam_basics () =
  let a = g ~labels:[| 0; 1; 2 |] ~edges:[ (0, 1, 5); (1, 2, 6) ] in
  let b = g ~labels:[| 2; 1; 0 |] ~edges:[ (0, 1, 6); (1, 2, 5) ] in
  check Alcotest.string "isomorphic same CAM key" (Cam.key a) (Cam.key b);
  check bool "same_class" true (Cam.same_class a b);
  let c = g ~labels:[| 0; 1; 3 |] ~edges:[ (0, 1, 5); (1, 2, 6) ] in
  check bool "label difference detected" false (Cam.same_class a c);
  check int "empty graph code" 0 (Array.length (Cam.code Graph.empty))

let test_cam_disconnected () =
  (* CAM handles disconnected graphs, unlike DFS codes *)
  let a = g ~labels:[| 0; 1; 0; 1 |] ~edges:[ (0, 1, 0); (2, 3, 0) ] in
  let b = g ~labels:[| 1; 0; 1; 0 |] ~edges:[ (1, 0, 0); (3, 2, 0) ] in
  check Alcotest.string "disconnected isomorphic" (Cam.key a) (Cam.key b);
  let c = g ~labels:[| 0; 1; 0; 1 |] ~edges:[ (0, 1, 0); (0, 3, 0) ] in
  check bool "different structure" true (Cam.key a <> Cam.key c)

(* two canonical forms computed by entirely different algorithms must induce
   the same equivalence *)
let cam_agrees_with_min_code_prop =
  QCheck.Test.make ~name:"CAM and min-DFS-code induce the same classes"
    ~count:150
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let a = random_connected_graph rng in
      let b =
        if Prng.bool rng then permute_graph rng a else random_connected_graph rng
      in
      Cam.same_class a b
      = (Min_code.canonical_key a = Min_code.canonical_key b))

(* --- Gspan ---------------------------------------------------------------- *)

let test_gspan_rejects_bad_support () =
  let db = Db.of_list [ g ~labels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] ] in
  Alcotest.check_raises "min_support >= 1"
    (Invalid_argument "Gspan.mine: min_support must be >= 1") (fun () ->
      Gspan.mine ~min_support:0 db (fun _ -> ()))

let test_gspan_single_edge_db () =
  let db =
    Db.of_list
      [
        g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| 1; 0 |] ~edges:[ (0, 1, 0) ];
      ]
  in
  let patterns = Gspan.mine_list ~min_support:2 db in
  check int "one frequent pattern" 1 (List.length patterns);
  let p = List.hd patterns in
  check int "support" 2 p.Gspan.support;
  check int "embeddings" 2 (List.length p.Gspan.embeddings);
  check (Alcotest.list int) "support set" [ 0; 1 ]
    (Bitset.to_list p.Gspan.support_set)

let test_gspan_triangle_counts () =
  (* one triangle graph, min support 1: patterns = edge, path, triangle *)
  let db =
    Db.of_list
      [ g ~labels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ] ]
  in
  let patterns = Gspan.mine_list ~min_support:1 db in
  check int "three isomorphism classes" 3 (List.length patterns);
  let sizes = List.sort compare (List.map (fun p -> Graph.edge_count p.Gspan.graph) patterns) in
  check (Alcotest.list int) "sizes 1,2,3" [ 1; 2; 3 ] sizes

let test_gspan_max_edges () =
  let db =
    Db.of_list
      [ g ~labels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ] ]
  in
  let patterns = Gspan.mine_list ~max_edges:2 ~min_support:1 db in
  check int "capped at 2 edges" 2 (List.length patterns);
  check bool "no big ones" true
    (List.for_all (fun p -> Graph.edge_count p.Gspan.graph <= 2) patterns)

let test_gspan_embeddings_valid () =
  let db =
    Db.of_list
      [
        g ~labels:[| 0; 1; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0); (2, 3, 0) ];
        g ~labels:[| 1; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
      ]
  in
  Gspan.mine ~min_support:2 db (fun p ->
      List.iter
        (fun { Gspan.graph_id; map } ->
          let target = Db.get db graph_id in
          Array.iteri
            (fun pos t ->
              check int "node label matches"
                (Graph.node_label p.Gspan.graph pos)
                (Graph.node_label target t))
            map;
          Array.iter
            (fun (u, v, l) ->
              check (Alcotest.option int) "edge present" (Some l)
                (Graph.edge_label target map.(u) map.(v)))
            (Graph.edges p.Gspan.graph))
        p.Gspan.embeddings)

let test_frequent_labels () =
  let db =
    Db.of_list
      [
        g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| 0; 2 |] ~edges:[ (0, 1, 0) ];
        g ~labels:[| 0; 1 |] ~edges:[ (0, 1, 0) ];
      ]
  in
  check (Alcotest.list int) "labels in >= 2 graphs" [ 0; 1 ]
    (Gspan.frequent_labels ~min_support:2 db);
  check (Alcotest.list int) "all" [ 0; 1; 2 ]
    (Gspan.frequent_labels ~min_support:1 db)

(* reference miner: enumerate connected subgraphs of every graph, dedupe by
   canonical key, count exact-subiso support *)
let brute_force_frequent ~max_edges ~min_support db =
  let seen = Hashtbl.create 256 in
  Db.iteri
    (fun _ graph ->
      List.iter
        (fun sub ->
          let key = Min_code.canonical_key sub in
          if not (Hashtbl.mem seen key) then Hashtbl.add seen key sub)
        (Tsg_core.Naive.connected_subgraphs ~max_edges graph))
    db;
  Hashtbl.fold
    (fun key sub acc ->
      let support = Subiso.support_count ~pattern:sub db in
      if support >= min_support then (key, support) :: acc else acc)
    seen []
  |> List.sort compare

let gspan_matches_brute_force_prop =
  QCheck.Test.make ~name:"gspan = brute force on small dbs" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let db =
        Db.of_list
          (List.init (2 + Prng.int rng 2) (fun _ -> random_connected_graph rng))
      in
      let min_support = 1 + Prng.int rng 2 in
      let max_edges = 3 in
      let mined =
        Gspan.mine_list ~max_edges ~min_support db
        |> List.map (fun p ->
               (Min_code.canonical_key p.Gspan.graph, p.Gspan.support))
        |> List.sort compare
      in
      let reference = brute_force_frequent ~max_edges ~min_support db in
      mined = reference)

(* --- Level_miner -------------------------------------------------------------- *)

module Level_miner = Tsg_gspan.Level_miner

let pattern_summary (p : Gspan.pattern) =
  ( Min_code.canonical_key p.Gspan.graph,
    p.Gspan.support,
    Bitset.to_list p.Gspan.support_set,
    List.length p.Gspan.embeddings )

let test_level_miner_triangle () =
  let db =
    Db.of_list
      [ g ~labels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ] ]
  in
  let level = Level_miner.mine_list ~min_support:1 db in
  check int "three classes" 3 (List.length level);
  let gspan = Gspan.mine_list ~min_support:1 db in
  let norm l = List.sort compare (List.map pattern_summary l) in
  check bool "same as gspan incl. embedding counts" true
    (norm level = norm gspan)

let test_level_miner_embeddings_valid () =
  let db =
    Db.of_list
      [
        g ~labels:[| 0; 1; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0) ];
        g ~labels:[| 1; 0 |] ~edges:[ (0, 1, 0) ];
      ]
  in
  Level_miner.mine ~min_support:2 db (fun p ->
      List.iter
        (fun { Gspan.graph_id; map } ->
          let target = Db.get db graph_id in
          Array.iteri
            (fun pos t ->
              check int "labels preserved"
                (Graph.node_label p.Gspan.graph pos)
                (Graph.node_label target t))
            map;
          Array.iter
            (fun (u, v, l) ->
              check (Alcotest.option int) "edges preserved" (Some l)
                (Graph.edge_label target map.(u) map.(v)))
            (Graph.edges p.Gspan.graph))
        p.Gspan.embeddings)

let level_equals_gspan_prop =
  QCheck.Test.make ~name:"level-wise miner = gspan" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let db =
        Db.of_list
          (List.init (2 + Prng.int rng 2) (fun _ -> random_connected_graph rng))
      in
      let min_support = 1 + Prng.int rng 2 in
      let norm l = List.sort compare (List.map pattern_summary l) in
      norm (Level_miner.mine_list ~max_edges:3 ~min_support db)
      = norm (Gspan.mine_list ~max_edges:3 ~min_support db))

let taxogram_level_miner_prop =
  QCheck.Test.make ~name:"taxogram with level-wise step 2 = with gspan"
    ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let tax =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 8; relationships = 12; depth = 3 }
      in
      let nlabels = Tsg_taxonomy.Taxonomy.label_count tax in
      let db =
        Db.of_list
          (List.init (2 + Prng.int rng 2) (fun _ ->
               let n = 2 + Prng.int rng 3 in
               let labels = Array.init n (fun _ -> Prng.int rng nlabels) in
               let edges = ref [] in
               for v = 1 to n - 1 do
                 edges := (v, Prng.int rng v, Prng.int rng 2) :: !edges
               done;
               g ~labels ~edges:!edges))
      in
      let config =
        {
          Tsg_core.Taxogram.min_support = 0.5;
          max_edges = Some 3;
          enhancements = Tsg_core.Specialize.all_on;
        }
      in
      let a = Tsg_core.Taxogram.run (Tsg_core.Taxogram.Spec.collect ~config ~class_miner:`Gspan ()) tax db in
      let b = Tsg_core.Taxogram.run (Tsg_core.Taxogram.Spec.collect ~config ~class_miner:`Level_wise ()) tax db in
      Tsg_core.Pattern.equal_sets a.Tsg_core.Taxogram.patterns
        b.Tsg_core.Taxogram.patterns)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "gspan"
    [
      ( "dfs_code",
        [
          Alcotest.test_case "forward/backward" `Quick test_forward_backward;
          Alcotest.test_case "edge order" `Quick test_compare_edge_rules;
          Alcotest.test_case "code compare" `Quick test_code_compare_prefix;
          Alcotest.test_case "rightmost path" `Quick test_rightmost_path;
          Alcotest.test_case "accessors" `Quick test_code_accessors;
          Alcotest.test_case "to_graph" `Quick test_to_graph_roundtrip;
        ] );
      ( "min_code",
        [
          Alcotest.test_case "single edge" `Quick test_minimum_single_edge;
          Alcotest.test_case "minimum is minimal" `Quick test_minimum_is_min;
          Alcotest.test_case "non-minimal rejected" `Quick
            test_non_minimal_rejected;
          Alcotest.test_case "empty code" `Quick test_is_min_empty;
          Alcotest.test_case "disconnected rejected" `Quick
            test_min_code_disconnected_rejected;
          Alcotest.test_case "canonical key" `Quick
            test_canonical_key_iso_invariant;
        ]
        @ qsuite [ canonical_permutation_prop; minimum_always_minimal_prop ] );
      ( "cam",
        [
          Alcotest.test_case "basics" `Quick test_cam_basics;
          Alcotest.test_case "disconnected" `Quick test_cam_disconnected;
        ]
        @ qsuite [ cam_agrees_with_min_code_prop ] );
      ( "miner",
        [
          Alcotest.test_case "bad support" `Quick test_gspan_rejects_bad_support;
          Alcotest.test_case "single edge db" `Quick test_gspan_single_edge_db;
          Alcotest.test_case "triangle counts" `Quick
            test_gspan_triangle_counts;
          Alcotest.test_case "max edges" `Quick test_gspan_max_edges;
          Alcotest.test_case "embeddings valid" `Quick
            test_gspan_embeddings_valid;
          Alcotest.test_case "frequent labels" `Quick test_frequent_labels;
        ]
        @ qsuite [ gspan_matches_brute_force_prop ] );
      ( "level_miner",
        [
          Alcotest.test_case "triangle" `Quick test_level_miner_triangle;
          Alcotest.test_case "embeddings valid" `Quick
            test_level_miner_embeddings_valid;
        ]
        @ qsuite [ level_equals_gspan_prop; taxogram_level_miner_prop ] );
    ]
