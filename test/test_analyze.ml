(* tsg-analyze: each rule demonstrated against a fixture compiled on the
   fly with ocamlc -bin-annot, plus a clean fixture that must produce no
   findings, suppression round-trips, and allowlist handling. *)

module Diagnostic = Tsg_util.Diagnostic
module Cmt_load = Tsg_analysis.Cmt_load
module Analyze = Tsg_analysis.Analyze

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

(* ---- fixture machinery ------------------------------------------------ *)

let fixture_seq = ref 0

let compile_fixture name source =
  incr fixture_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tsg_analyze_fx_%d_%d" (Unix.getpid ()) !fixture_seq)
  in
  Unix.mkdir dir 0o755;
  let ml = Filename.concat dir (name ^ ".ml") in
  let oc = open_out ml in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "ocamlc -bin-annot -c -w -a %s 2>/dev/null"
      (Filename.quote ml)
  in
  (* ocamlc -c drops the .cmt next to the source *)
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture %s does not compile" name;
  Filename.concat dir (name ^ ".cmt")

let analyze ?rules ?allowlist ?allowlist_file sources =
  let cmts = List.map (fun (n, s) -> compile_fixture n s) sources in
  let c = Diagnostic.collector () in
  let units = Cmt_load.load_all c cmts in
  check int "all fixtures loaded" (List.length sources) (List.length units);
  let summary = Analyze.run ?rules ?allowlist ?allowlist_file c units in
  (c, summary)

let findings_with c rule =
  List.filter (fun d -> d.Diagnostic.rule = rule) (Diagnostic.items c)

let count c rule = List.length (findings_with c rule)

(* ---- rule fixtures ---------------------------------------------------- *)

let test_dom001_unguarded () =
  let c, _ =
    analyze
      [
        ( "fx_dom001",
          {|
let table : (int, int) Hashtbl.t = Hashtbl.create 8
let bump k = Hashtbl.replace table k k
let start () = ignore (Domain.spawn (fun () -> bump 1))
|}
        );
      ]
  in
  check int "one DOM001" 1 (count c "DOM001");
  let d = List.hd (findings_with c "DOM001") in
  check bool "names the table" true (contains d.Diagnostic.message "table")

let test_dom001_unlocked_accessor () =
  let c, _ =
    analyze
      [
        ( "fx_dom001b",
          {|
let lock = Mutex.create ()
let table : (int, int) Hashtbl.t = Hashtbl.create 8

let good k =
  Mutex.lock lock;
  Hashtbl.replace table k k;
  Mutex.unlock lock

let bad k = Hashtbl.replace table k k
let start () = ignore (Domain.spawn (fun () -> good 1; bad 2))
|}
        );
      ]
  in
  let msgs =
    String.concat "\n"
      (List.map (fun d -> d.Diagnostic.message) (findings_with c "DOM001"))
  in
  check int "only the unlocked accessor" 1 (count c "DOM001");
  check bool "flags bad" true (contains msgs "\"bad\"")

let test_dom001_needs_taint () =
  (* same unguarded table, but nothing schedules: single-domain code *)
  let c, _ =
    analyze
      [
        ( "fx_dom001c",
          {|
let table : (int, int) Hashtbl.t = Hashtbl.create 8
let bump k = Hashtbl.replace table k k
|}
        );
      ]
  in
  check int "no DOM001 without domains" 0 (count c "DOM001")

let test_dom001_dls_silent () =
  (* the per-domain memory idiom the pool and arena rely on: mutable
     scratch reached only through Domain.DLS is domain-private by
     construction, so DOM001 must stay silent even with domains spawned
     — the lock-free executor must not need an allowlist entry *)
  let c, _ =
    analyze
      [
        ( "fx_dom001d",
          {|
let scratch : (int, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let bump k =
  let t = Domain.DLS.get scratch in
  Hashtbl.replace t k k

let start () = ignore (Domain.spawn (fun () -> bump 1))
|}
        );
      ]
  in
  check int "DLS-held state is not shared state" 0 (count c "DOM001")

let test_dom002 () =
  let c, _ =
    analyze
      [
        ( "fx_dom002",
          {|
let cell = lazy (40 + 2)
let spin () = ignore (Domain.spawn (fun () -> Lazy.force cell))
|}
        );
      ]
  in
  check bool "lazy expr and Lazy.force both flagged" true (count c "DOM002" >= 2)

let test_det001 () =
  let c, _ =
    analyze
      [
        ( "fx_det001",
          {|
let tbl : (string, int) Hashtbl.t = Hashtbl.create 4
let dump () = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
let cat () = output_string stdout (Hashtbl.fold (fun k _ acc -> acc ^ k) tbl "")
let sorted () =
  List.iter print_endline
    (List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []))
|}
        );
      ]
  in
  (* dump: printing callback; cat: fold fed straight to a sink; sorted:
     the List.sort in between breaks the flow and must stay clean *)
  check int "two DET001" 2 (count c "DET001")

let test_det002 () =
  let c, _ =
    analyze
      [
        ( "fx_det002",
          {|
let roll () = Random.int 6
let seeded = Random.State.make [| 42 |]
let ok () = Random.State.int seeded 6
let sneaky () = Random.State.make_self_init ()
|}
        );
      ]
  in
  let msgs =
    String.concat "\n"
      (List.map (fun d -> d.Diagnostic.message) (findings_with c "DET002"))
  in
  check int "ambient and self-init flagged, seeded state not" 2
    (count c "DET002");
  check bool "Random.int flagged" true (contains msgs "Random.int");
  check bool "make_self_init flagged" true (contains msgs "make_self_init")

let test_io101 () =
  let c, _ =
    analyze
      [
        ( "fx_io101",
          {|
let save path data =
  let oc = open_out path in
  output_string oc data;
  close_out oc
|}
        );
      ]
  in
  check int "one IO101" 1 (count c "IO101")

let test_reg001 () =
  let c, _ =
    analyze
      [
        ( "fx_reg001",
          {|
let explain code =
  match code with
  | "ZZZ999" -> "mystery"
  | "TAX001" -> "registered rule, fine"
  | "lowercase" -> "ignored"
  | _ -> "?"

let retryable code = code = "NOTACODE"
let also_fine code = code = "OVERLOADED"
|}
        );
      ]
  in
  let msgs =
    String.concat "\n"
      (List.map (fun d -> d.Diagnostic.message) (findings_with c "REG001"))
  in
  check int "two REG001" 2 (count c "REG001");
  check bool "unregistered rule code" true (contains msgs "ZZZ999");
  check bool "unregistered protocol code" true (contains msgs "NOTACODE")

let test_clean_fixture () =
  let c, summary =
    analyze
      [
        ( "fx_clean",
          {|
let lock = Mutex.create ()
let table : (int, int) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let bump k = locked (fun () -> Hashtbl.replace table k k)

let counter = Atomic.make 0
let tick () = Atomic.incr counter

let dump () =
  List.iter print_endline
    (List.sort compare
       (locked (fun () ->
            Hashtbl.fold (fun k _ acc -> string_of_int k :: acc) table [])))

let start () = ignore (Domain.spawn (fun () -> bump 1; tick (); dump ()))
|}
        );
      ]
  in
  check int "no findings" 0 (List.length (Diagnostic.items c));
  check int "nothing suppressed" 0 summary.Analyze.suppressed

(* ---- suppression ------------------------------------------------------ *)

let test_suppression_expression () =
  let c, summary =
    analyze
      [
        ( "fx_sup_expr",
          {|
let roll () = (Random.int 6 [@tsg.allow "DET002" "dice demo, reproducibility immaterial"])
|}
        );
      ]
  in
  check int "finding suppressed" 0 (count c "DET002");
  check int "counted" 1 summary.Analyze.suppressed

let test_suppression_binding () =
  let c, summary =
    analyze
      [
        ( "fx_sup_bind",
          {|
let save path data =
  let oc = open_out path in
  output_string oc data;
  close_out oc
[@@tsg.allow "IO101" "throwaway demo writer"]

let unrelated () = Random.bits ()
|}
        );
      ]
  in
  check int "IO101 suppressed" 0 (count c "IO101");
  (* the suppression is scoped: the DET002 elsewhere still lands *)
  check int "DET002 not covered by it" 1 (count c "DET002");
  check int "counted" 1 summary.Analyze.suppressed

let test_suppression_module () =
  let c, summary =
    analyze
      [
        ( "fx_sup_mod",
          {|
[@@@tsg.allow "DET002" "fixture exercises whole-module suppression"]

let roll () = Random.int 6
|}
        );
      ]
  in
  check int "suppressed module-wide" 0 (count c "DET002");
  check int "counted" 1 summary.Analyze.suppressed

let test_suppression_needs_justification () =
  let c, _ =
    analyze
      [
        ("fx_sup_bad", {|
let roll () = (Random.int 6 [@tsg.allow "DET002"])
|});
      ]
  in
  check int "malformed suppression reported" 1 (count c "ANA001");
  check int "finding still emitted" 1 (count c "DET002")

let test_suppression_unknown_code () =
  let c, _ =
    analyze
      [
        ( "fx_sup_unknown",
          {|
let x = (42 [@tsg.allow "NOPE999" "no such rule"])
|} );
      ]
  in
  check int "unknown code reported" 1 (count c "ANA001")

(* ---- allowlist -------------------------------------------------------- *)

let test_allowlist () =
  let c, summary =
    analyze
      ~allowlist:
        [
          { Analyze.al_rule = "IO101"; al_file = "fx_allow.ml"; al_ident = "save" };
          { Analyze.al_rule = "DOM001"; al_file = "gone.ml"; al_ident = "-" };
        ]
      ~allowlist_file:"analyze.allow"
      [
        ( "fx_allow",
          {|
let save path data =
  let oc = open_out path in
  output_string oc data;
  close_out oc
|}
        );
      ]
  in
  check int "grandfathered" 0 (count c "IO101");
  check int "counted" 1 summary.Analyze.allowlisted;
  check int "stale entry reported" 1 (count c "ANA003");
  let stale = List.hd (findings_with c "ANA003") in
  check string "stale points at the allowlist" "analyze.allow"
    (Option.value ~default:"?" stale.Diagnostic.file)

let test_allowlist_parse () =
  let path =
    Filename.temp_file "tsg_analyze_allow" ".allow"
  in
  let oc = open_out path in
  output_string oc
    "# comment\n\nIO101 fx.ml save   # trailing comment\nDOM001 other.ml -\n";
  close_out oc;
  (match Analyze.parse_allowlist path with
  | Ok entries ->
    check int "two entries" 2 (List.length entries);
    let e = List.hd entries in
    check string "rule" "IO101" e.Analyze.al_rule;
    check string "file" "fx.ml" e.Analyze.al_file;
    check string "ident" "save" e.Analyze.al_ident
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  let oc = open_out path in
  output_string oc "IO101 too many fields here\n";
  close_out oc;
  (match Analyze.parse_allowlist path with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error msg -> check bool "field count in error" true (contains msg "fields"));
  Sys.remove path

(* ---- rule restriction ------------------------------------------------- *)

let test_rules_filter () =
  let source =
    {|
let roll () = Random.int 6
let save path data =
  let oc = open_out path in
  output_string oc data;
  close_out oc
|}
  in
  let c, _ = analyze ~rules:[ "DET002" ] [ ("fx_filter", source) ] in
  check int "selected rule fires" 1 (count c "DET002");
  check int "unselected rule silent" 0 (count c "IO101")

(* ---- diagnostic JSON output ------------------------------------------- *)

let test_json_escaping () =
  let d =
    Diagnostic.make ~file:"a \"b\"\n.tax" ~line:3 ~rule:"TAX005"
      Diagnostic.Error "cycle: a\tb"
  in
  let j = Diagnostic.to_json d in
  check bool "quotes escaped" true (contains j {|a \"b\"\n.tax|});
  check bool "tab escaped" true (contains j {|a\tb|});
  check bool "rule field" true (contains j {|"rule":"TAX005"|});
  let d2 = Diagnostic.make ~rule:"X001" Diagnostic.Warning "no location" in
  let j2 = Diagnostic.to_json d2 in
  check bool "absent file is null" true (contains j2 {|"file":null|});
  check bool "absent line is null" true (contains j2 {|"line":null|})

let test_json_collector () =
  let c = Diagnostic.collector () in
  Diagnostic.emitf c ~file:"x.tax" ~line:1 ~rule:"TAX001" Diagnostic.Error
    "dup";
  Diagnostic.emitf c ~rule:"TAX007" Diagnostic.Warning "isolated";
  let tmp = Filename.temp_file "tsg_json" ".json" in
  let oc = open_out tmp in
  Diagnostic.print ~format:Diagnostic.Json oc c;
  close_out oc;
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  check bool "findings array" true (contains body {|"findings":[{|});
  check bool "error count" true (contains body {|"errors":1|});
  check bool "warning count" true (contains body {|"warnings":1|})

let test_format_of_string () =
  check bool "text" true (Diagnostic.format_of_string "text" = Some Diagnostic.Text);
  check bool "machine" true
    (Diagnostic.format_of_string "machine" = Some Diagnostic.Machine);
  check bool "json" true (Diagnostic.format_of_string "json" = Some Diagnostic.Json);
  check bool "unknown" true (Diagnostic.format_of_string "yaml" = None)

(* ---- registry --------------------------------------------------------- *)

let test_registry () =
  check bool "DOM001 registered" true (Diagnostic.Registry.is_rule "DOM001");
  check bool "TAX005 registered" true (Diagnostic.Registry.is_rule "TAX005");
  check bool "bogus not registered" false (Diagnostic.Registry.is_rule "ZZZ999");
  check bool "OVERLOADED is protocol" true
    (Diagnostic.Registry.is_protocol_error "OVERLOADED");
  check bool "NOTACODE is not" false
    (Diagnostic.Registry.is_protocol_error "NOTACODE");
  (* every registry code must look like a rule code: the REG001 shape
     check and the registry must agree with each other *)
  List.iter
    (fun (e : Diagnostic.Registry.entry) ->
      match Diagnostic.Registry.find e.code with
      | Some e' -> check string "find returns the entry" e.code e'.code
      | None -> Alcotest.failf "registry lookup failed for %s" e.code)
    Diagnostic.Registry.rules

let () =
  Alcotest.run "analyze"
    [
      ( "rules",
        [
          Alcotest.test_case "DOM001 no mutex" `Quick test_dom001_unguarded;
          Alcotest.test_case "DOM001 unlocked accessor" `Quick
            test_dom001_unlocked_accessor;
          Alcotest.test_case "DOM001 needs taint" `Quick test_dom001_needs_taint;
          Alcotest.test_case "DOM001 silent on Domain.DLS scratch" `Quick
            test_dom001_dls_silent;
          Alcotest.test_case "DOM002 lazy" `Quick test_dom002;
          Alcotest.test_case "DET001 hash order" `Quick test_det001;
          Alcotest.test_case "DET002 ambient random" `Quick test_det002;
          Alcotest.test_case "IO101 raw open_out" `Quick test_io101;
          Alcotest.test_case "REG001 unregistered codes" `Quick test_reg001;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "expression scope" `Quick
            test_suppression_expression;
          Alcotest.test_case "binding scope" `Quick test_suppression_binding;
          Alcotest.test_case "module scope" `Quick test_suppression_module;
          Alcotest.test_case "justification mandatory" `Quick
            test_suppression_needs_justification;
          Alcotest.test_case "unknown code rejected" `Quick
            test_suppression_unknown_code;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "grandfather and stale" `Quick test_allowlist;
          Alcotest.test_case "parser" `Quick test_allowlist_parse;
        ] );
      ( "output",
        [
          Alcotest.test_case "rule filter" `Quick test_rules_filter;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "json collector output" `Quick test_json_collector;
          Alcotest.test_case "format parsing" `Quick test_format_of_string;
          Alcotest.test_case "registry lookups" `Quick test_registry;
        ] );
    ]
