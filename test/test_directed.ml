module Graph = Tsg_graph.Graph
module Digraph = Tsg_graph.Digraph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset
module Prng = Tsg_util.Prng
module Directed = Tsg_core.Directed

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let dg ~labels ~arcs = Digraph.build ~labels ~arcs

(* --- Digraph ---------------------------------------------------------------- *)

let test_digraph_basics () =
  let g = dg ~labels:[| 0; 1; 2 |] ~arcs:[ (0, 1, 5); (1, 2, 6); (2, 0, 7) ] in
  check int "nodes" 3 (Digraph.node_count g);
  check int "arcs" 3 (Digraph.arc_count g);
  check int "label" 1 (Digraph.node_label g 1);
  check int "out degree" 1 (Digraph.out_degree g 0);
  check int "in degree" 1 (Digraph.in_degree g 0);
  check bool "has arc" true (Digraph.has_arc g ~src:0 ~dst:1);
  check bool "direction matters" false (Digraph.has_arc g ~src:1 ~dst:0);
  check (Alcotest.option int) "arc label" (Some 6)
    (Digraph.arc_label g ~src:1 ~dst:2);
  check (Alcotest.option int) "no reverse label" None
    (Digraph.arc_label g ~src:2 ~dst:1)

let test_digraph_antiparallel () =
  let g = dg ~labels:[| 0; 1 |] ~arcs:[ (0, 1, 2); (1, 0, 3) ] in
  check int "two arcs" 2 (Digraph.arc_count g);
  check bool "both directions" true
    (Digraph.has_arc g ~src:0 ~dst:1 && Digraph.has_arc g ~src:1 ~dst:0)

let test_digraph_validation () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Digraph.build: self loop at node 0") (fun () ->
      ignore (dg ~labels:[| 0 |] ~arcs:[ (0, 0, 0) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Digraph.build: duplicate arc (0,1)") (fun () ->
      ignore (dg ~labels:[| 0; 1 |] ~arcs:[ (0, 1, 0); (0, 1, 2) ]));
  Alcotest.check_raises "range"
    (Invalid_argument "Digraph.build: arc (0,3) out of range [0,1)") (fun () ->
      ignore (dg ~labels:[| 0 |] ~arcs:[ (0, 3, 0) ]))

let test_digraph_connectivity () =
  let connected = dg ~labels:[| 0; 1; 2 |] ~arcs:[ (0, 1, 0); (2, 1, 0) ] in
  check bool "weakly connected ignores direction" true
    (Digraph.is_weakly_connected connected);
  let split = dg ~labels:[| 0; 1; 2; 3 |] ~arcs:[ (0, 1, 0); (2, 3, 0) ] in
  check bool "disconnected" false (Digraph.is_weakly_connected split)

(* --- encode / decode --------------------------------------------------------- *)

(* taxonomy a over {b, c} *)
let small_env () =
  let t = Taxonomy.build ~names:[ "a"; "b"; "c" ] ~is_a:[ ("b", "a"); ("c", "a") ] in
  (t, Directed.prepare t)

let test_prepare () =
  let t, env = small_env () in
  let ext = Directed.taxonomy env in
  check int "one extra concept" (Taxonomy.label_count t + 1)
    (Taxonomy.label_count ext);
  let arc = Directed.arc_label env in
  check Alcotest.string "reserved name" Directed.arc_concept_name
    (Taxonomy.name ext arc);
  check bool "arc concept is an isolated root" true
    (Taxonomy.is_root ext arc && Taxonomy.is_leaf ext arc);
  (* original is-a structure is preserved *)
  check bool "b still under a" true
    (Taxonomy.is_ancestor ext ~anc:(Taxonomy.id_of_name ext "a")
       (Taxonomy.id_of_name ext "b"));
  Alcotest.check_raises "reserved name collision"
    (Invalid_argument
       ("Directed.prepare: taxonomy already defines " ^ Directed.arc_concept_name))
    (fun () ->
      ignore
        (Directed.prepare
           (Taxonomy.build ~names:[ Directed.arc_concept_name ] ~is_a:[])))

let test_encode_shape () =
  let t, env = small_env () in
  let id n = Taxonomy.id_of_name t n in
  let d = dg ~labels:[| id "b"; id "c" |] ~arcs:[ (0, 1, 3) ] in
  let g = Directed.encode env d in
  check int "nodes = real + arc" 3 (Graph.node_count g);
  check int "edges = 2 per arc" 2 (Graph.edge_count g);
  check int "arc node labeled" (Directed.arc_label env) (Graph.node_label g 2);
  check (Alcotest.option int) "source edge label 2e" (Some 6)
    (Graph.edge_label g 0 2);
  check (Alcotest.option int) "target edge label 2e+1" (Some 7)
    (Graph.edge_label g 2 1)

let test_encode_decode_roundtrip () =
  let t, env = small_env () in
  let id n = Taxonomy.id_of_name t n in
  let cases =
    [
      dg ~labels:[| id "b"; id "c" |] ~arcs:[ (0, 1, 0) ];
      dg ~labels:[| id "a"; id "b"; id "c" |]
        ~arcs:[ (0, 1, 1); (1, 2, 0); (2, 0, 2) ];
      dg ~labels:[| id "b"; id "b" |] ~arcs:[ (0, 1, 0); (1, 0, 0) ];
    ]
  in
  List.iter
    (fun d ->
      match Directed.decode env (Directed.encode env d) with
      | Some d' -> check bool "roundtrip" true (Digraph.equal d d')
      | None -> Alcotest.fail "decode failed on an encoding")
    cases

let test_decode_rejects_partial_arcs () =
  let _, env = small_env () in
  let arc = Directed.arc_label env in
  (* a dangling arc node: real node - arc node, one edge only *)
  let partial = Graph.build ~labels:[| 1; arc |] ~edges:[ (0, 1, 0) ] in
  check bool "partial arc rejected" true (Directed.decode env partial = None);
  (* arc node with mismatched source/target labels *)
  let mismatched =
    Graph.build ~labels:[| 1; arc; 2 |] ~edges:[ (0, 1, 0); (1, 2, 3) ]
  in
  check bool "mismatched labels rejected" true
    (Directed.decode env mismatched = None);
  (* direct real-real edge *)
  let direct = Graph.build ~labels:[| 1; 2 |] ~edges:[ (0, 1, 0) ] in
  check bool "real-real edge rejected" true (Directed.decode env direct = None)

let test_canonical_key_directed () =
  let t, env = small_env () in
  let id n = Taxonomy.id_of_name t n in
  let d1 = dg ~labels:[| id "b"; id "c" |] ~arcs:[ (0, 1, 0) ] in
  let d1' = dg ~labels:[| id "c"; id "b" |] ~arcs:[ (1, 0, 0) ] in
  let reversed = dg ~labels:[| id "b"; id "c" |] ~arcs:[ (1, 0, 0) ] in
  check Alcotest.string "isomorphic digraphs same key"
    (Directed.canonical_key env d1)
    (Directed.canonical_key env d1');
  check bool "reversed arc differs" true
    (Directed.canonical_key env d1 <> Directed.canonical_key env reversed)

(* --- mining -------------------------------------------------------------------- *)

let test_direction_sensitive_mining () =
  let t, env = small_env () in
  let id n = Taxonomy.id_of_name t n in
  (* g1: b -> c, g2: c -> b. Undirected mining would report b-c with
     support 1.0; direction-aware mining must generalize to a -> a. *)
  let d1 = dg ~labels:[| id "b"; id "c" |] ~arcs:[ (0, 1, 0) ] in
  let d2 = dg ~labels:[| id "c"; id "b" |] ~arcs:[ (0, 1, 0) ] in
  let patterns = Directed.mine ~min_support:1.0 env [ d1; d2 ] in
  check int "single minimal pattern" 1 (List.length patterns);
  let p = List.hd patterns in
  check int "support both graphs" 2 p.Directed.support_count;
  let ext = Directed.taxonomy env in
  let a = Taxonomy.id_of_name ext "a" in
  check (Alcotest.array int) "a -> a" [| a; a |]
    (Digraph.node_labels p.Directed.digraph);
  (* the undirected view of the same data is more specific *)
  let undirected =
    Db.of_list
      [
        Graph.build ~labels:[| id "b"; id "c" |] ~edges:[ (0, 1, 0) ];
        Graph.build ~labels:[| id "c"; id "b" |] ~edges:[ (0, 1, 0) ];
      ]
  in
  let u =
    Tsg_core.Taxogram.run (Tsg_core.Taxogram.Spec.collect ~config:{ Tsg_core.Taxogram.default_config with min_support = 1.0 } ())
      t undirected
  in
  check int "undirected keeps b-c" 1 (List.length u.Tsg_core.Taxogram.patterns);
  let labels =
    Graph.node_labels (List.hd u.Tsg_core.Taxogram.patterns).Tsg_core.Pattern.graph
  in
  Array.sort compare labels;
  check (Alcotest.array int) "b-c survives undirected" [| id "b"; id "c" |] labels

let test_directed_mining_specific_pattern () =
  let t, env = small_env () in
  let id n = Taxonomy.id_of_name t n in
  (* both graphs contain b -> c: the specific directed pattern must win *)
  let d1 = dg ~labels:[| id "b"; id "c" |] ~arcs:[ (0, 1, 0) ] in
  let d2 =
    dg ~labels:[| id "b"; id "c"; id "a" |] ~arcs:[ (0, 1, 0); (1, 2, 1) ]
  in
  let patterns = Directed.mine ~min_support:1.0 env [ d1; d2 ] in
  check int "one pattern" 1 (List.length patterns);
  let p = List.hd patterns in
  let ext = Directed.taxonomy env in
  check (Alcotest.array int) "b -> c"
    [| Taxonomy.id_of_name ext "b"; Taxonomy.id_of_name ext "c" |]
    (Digraph.node_labels p.Directed.digraph);
  check
    (Alcotest.list (Alcotest.triple int int int))
    "arc direction" [ (0, 1, 0) ]
    (Array.to_list (Digraph.arcs p.Directed.digraph))

let test_directed_supports_verified () =
  (* mined supports must equal direct generalized-subiso recounts on the
     encodings *)
  let rng = Prng.of_int 31 in
  let t =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      { concepts = 12; relationships = 18; depth = 3 }
  in
  let env = Directed.prepare t in
  let random_digraph () =
    let n = 2 + Prng.int rng 3 in
    let labels = Array.init n (fun _ -> Prng.int rng 12) in
    let arcs = ref [] in
    for v = 1 to n - 1 do
      let u = Prng.int rng v in
      let src, dst = if Prng.bool rng then (u, v) else (v, u) in
      arcs := (src, dst, Prng.int rng 2) :: !arcs
    done;
    dg ~labels ~arcs:!arcs
  in
  let digraphs = List.init 5 (fun _ -> random_digraph ()) in
  let patterns = Directed.mine ~min_support:0.4 ~max_arcs:2 env digraphs in
  check bool "mining returned something" true (patterns <> []);
  let encoded = List.map (Directed.encode env) digraphs in
  let db = Db.of_list encoded in
  List.iter
    (fun (p : Directed.pattern) ->
      let recount =
        Tsg_iso.Gen_iso.support_set (Directed.taxonomy env)
          ~pattern:(Directed.encode env p.Directed.digraph)
          db
      in
      check bool "support verified" true
        (Bitset.equal recount p.Directed.support_set))
    patterns

(* directed mining agrees with the naive specification applied to the
   encodings: mine the encoded database naively, decode, keep proper
   patterns — must be the same set *)
let directed_equals_naive_prop =
  QCheck.Test.make ~name:"directed mining = naive spec on encodings"
    ~count:25
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Prng.of_int seed in
      let t =
        Tsg_taxonomy.Synth_taxonomy.generate rng
          { concepts = 6; relationships = 8; depth = 2 }
      in
      let env = Directed.prepare t in
      let random_digraph () =
        let n = 2 + Prng.int rng 2 in
        let labels = Array.init n (fun _ -> Prng.int rng 6) in
        let arcs = ref [] in
        for v = 1 to n - 1 do
          let u = Prng.int rng v in
          let src, dst = if Prng.bool rng then (u, v) else (v, u) in
          arcs := (src, dst, 0) :: !arcs
        done;
        dg ~labels ~arcs:!arcs
      in
      let digraphs = List.init 3 (fun _ -> random_digraph ()) in
      let mined =
        Directed.mine ~min_support:0.67 ~max_arcs:2 env digraphs
        |> List.map (fun (p : Directed.pattern) ->
               (Directed.canonical_key env p.Directed.digraph,
                Bitset.to_list p.Directed.support_set))
        |> List.sort compare
      in
      let encoded_db =
        Tsg_graph.Db.of_list (List.map (Directed.encode env) digraphs)
      in
      let reference =
        Tsg_core.Naive.mine ~max_edges:4 ~min_support:0.67
          (Directed.taxonomy env) encoded_db
        |> List.filter_map (fun (p : Tsg_core.Pattern.t) ->
               match Directed.decode env p.Tsg_core.Pattern.graph with
               | Some d ->
                 Some
                   (Directed.canonical_key env d,
                    Bitset.to_list p.Tsg_core.Pattern.support_set)
               | None -> None)
        |> List.sort compare
      in
      mined = reference)

let test_max_arcs () =
  let t, env = small_env () in
  let id n = Taxonomy.id_of_name t n in
  let chain =
    dg ~labels:[| id "b"; id "c"; id "b" |] ~arcs:[ (0, 1, 0); (1, 2, 0) ]
  in
  let patterns = Directed.mine ~min_support:1.0 ~max_arcs:1 env [ chain ] in
  check bool "all single-arc" true
    (List.for_all
       (fun p -> Digraph.arc_count p.Directed.digraph = 1)
       patterns)

let () =
  Alcotest.run "directed"
    [
      ( "digraph",
        [
          Alcotest.test_case "basics" `Quick test_digraph_basics;
          Alcotest.test_case "antiparallel" `Quick test_digraph_antiparallel;
          Alcotest.test_case "validation" `Quick test_digraph_validation;
          Alcotest.test_case "connectivity" `Quick test_digraph_connectivity;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "prepare" `Quick test_prepare;
          Alcotest.test_case "encode shape" `Quick test_encode_shape;
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "partial arcs rejected" `Quick
            test_decode_rejects_partial_arcs;
          Alcotest.test_case "canonical key" `Quick test_canonical_key_directed;
        ] );
      ( "mining",
        [
          Alcotest.test_case "direction sensitivity" `Quick
            test_direction_sensitive_mining;
          Alcotest.test_case "specific pattern" `Quick
            test_directed_mining_specific_pattern;
          Alcotest.test_case "supports verified" `Quick
            test_directed_supports_verified;
          Alcotest.test_case "max arcs" `Quick test_max_arcs;
          QCheck_alcotest.to_alcotest directed_equals_naive_prop;
        ] );
    ]
