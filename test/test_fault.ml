(* Chaos suite: the failpoint framework (Tsg_util.Fault), supervised pool
   runs, checkpoint/resume byte-identity under injected kills, and the
   hardened serve loop. Every test here wires real faults through the real
   seams — no mocks — and asserts the system's recovery contract: partial
   results are canonical prefixes, resumed runs are byte-identical, and
   one poisoned request or task never takes down its run. *)

module Db = Tsg_graph.Db
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng
module Pool = Tsg_util.Pool
module Fault = Tsg_util.Fault
module Checksum = Tsg_util.Checksum
module Diagnostic = Tsg_util.Diagnostic
module Safe_io = Tsg_util.Safe_io
module Metrics = Tsg_util.Metrics
module Pattern = Tsg_core.Pattern
module Specialize = Tsg_core.Specialize
module Taxogram = Tsg_core.Taxogram
module Checkpoint = Tsg_core.Checkpoint
module Store = Tsg_query.Store
module Engine = Tsg_query.Engine
module Serve = Tsg_query.Serve

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* every test leaves the global schedule disarmed, whatever happened *)
let with_faults ?seed schedule f =
  Fault.configure ?seed schedule;
  Fun.protect ~finally:Fault.clear f

(* --- Fault framework ------------------------------------------------------- *)

let test_spec_parsing () =
  (match[@warning "-4"] Fault.parse_spec "a:0.25, b:once ,c:@3" with
  | Ok [ ("a", Fault.Probability p); ("b", Fault.Once); ("c", Fault.On_hit 3) ]
    ->
    check (Alcotest.float 1e-9) "probability" 0.25 p
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Fault.parse_spec bad with
      | Ok _ -> Alcotest.fail ("accepted " ^ bad)
      | Error _ -> ())
    [ "a:1.5"; "a:-0.1"; "a"; ":0.5"; "a:@0"; "a:@x"; "a:maybe" ]

let test_disarmed_is_noop () =
  Fault.clear ();
  check bool "disarmed" false (Fault.armed ());
  Fault.inject "anything";
  check int "no hits counted" 0 (Fault.hit_count "anything")

let test_once_and_on_hit () =
  with_faults [ ("s", Fault.Once) ] (fun () ->
      (match Fault.inject "s" with
      | () -> Alcotest.fail "Once did not fire"
      | exception Fault.Injected { site; hit } ->
        check Alcotest.string "site" "s" site;
        check int "hit" 1 hit);
      Fault.inject "s";
      Fault.inject "s";
      check int "fired exactly once" 1 (Fault.fired_count "s");
      check int "hits keep counting" 3 (Fault.hit_count "s"));
  with_faults [ ("s", Fault.On_hit 3) ] (fun () ->
      Fault.inject "s";
      Fault.inject "s";
      (match Fault.inject "s" with
      | () -> Alcotest.fail "On_hit 3 did not fire on hit 3"
      | exception Fault.Injected { hit; _ } -> check int "hit" 3 hit);
      Fault.inject "s";
      check int "fired exactly once" 1 (Fault.fired_count "s"))

let count_fired site n =
  let fired = ref [] in
  for i = 1 to n do
    match Fault.inject site with
    | () -> ()
    | exception Fault.Injected _ -> fired := i :: !fired
  done;
  List.rev !fired

let test_probability_deterministic () =
  let run seed =
    with_faults ~seed [ ("p", Fault.Probability 0.5) ] (fun () ->
        count_fired "p" 200)
  in
  let a = run 7L and b = run 7L and c = run 8L in
  check bool "some fired" true (a <> []);
  check bool "some survived" true (List.length a < 200);
  check bool "same seed, same schedule" true (a = b);
  check bool "different seed, different schedule" true (a <> c);
  with_faults [ ("p", Fault.Probability 0.0) ] (fun () ->
      check (Alcotest.list int) "p=0 never fires" [] (count_fired "p" 100));
  with_faults [ ("p", Fault.Probability 1.0) ] (fun () ->
      check int "p=1 always fires" 100 (List.length (count_fired "p" 100)))

let test_independent_streams () =
  (* a site's firing pattern must not depend on how often other sites are
     hit — that is what makes schedules replay across domain interleavings *)
  let solo =
    with_faults ~seed:11L [ ("x", Fault.Probability 0.4) ] (fun () ->
        count_fired "x" 100)
  in
  let interleaved =
    with_faults ~seed:11L
      [ ("x", Fault.Probability 0.4); ("noise", Fault.Probability 0.9) ]
      (fun () ->
        let fired = ref [] in
        for i = 1 to 100 do
          (try Fault.inject "noise" with Fault.Injected _ -> ());
          (try Fault.inject "noise" with Fault.Injected _ -> ());
          match Fault.inject "x" with
          | () -> ()
          | exception Fault.Injected _ -> fired := i :: !fired
        done;
        List.rev !fired)
  in
  check bool "x's stream unmoved by noise hits" true (solo = interleaved)

let test_env_configuration () =
  Unix.putenv "TSG_FAULTS" "e:once";
  Unix.putenv "TSG_FAULT_SEED" "42";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "TSG_FAULTS" "";
      Fault.clear ())
    (fun () ->
      (match Fault.configure_from_env () with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      check bool "armed from env" true (Fault.armed ());
      (match Fault.inject "e" with
      | () -> Alcotest.fail "env schedule did not fire"
      | exception Fault.Injected _ -> ());
      Unix.putenv "TSG_FAULTS" "bad spec!";
      (match Fault.configure_from_env () with
      | Ok () -> Alcotest.fail "accepted malformed TSG_FAULTS"
      | Error _ -> ());
      Unix.putenv "TSG_FAULTS" "";
      (match Fault.configure_from_env () with
      | Ok () -> check bool "empty env disarms" false (Fault.armed ())
      | Error e -> Alcotest.fail e))

let test_fault_diagnostic () =
  (match Fault.diagnostic (Fault.Injected { site = "s"; hit = 3 }) with
  | Some d -> check Alcotest.string "rule" "FLT001" d.Diagnostic.rule
  | None -> Alcotest.fail "no diagnostic for Injected");
  check bool "other exceptions pass" true
    (Fault.diagnostic (Failure "x") = None)

(* --- Checksum -------------------------------------------------------------- *)

let test_crc32_vector () =
  (* the IEEE 802.3 check value: CRC-32("123456789") *)
  check Alcotest.int32 "known vector" 0xCBF43926l
    (Checksum.crc32 "123456789");
  check bool "empty" true (Checksum.crc32 "" = 0l);
  check bool "order matters" true (Checksum.crc32 "ab" <> Checksum.crc32 "ba")

let test_fnv1a64 () =
  check bool "deterministic" true
    (Checksum.fnv1a64 "taxogram" = Checksum.fnv1a64 "taxogram");
  check bool "distinguishes" true
    (Checksum.fnv1a64 "taxogram" <> Checksum.fnv1a64 "taxogran")

(* --- Safe_io --------------------------------------------------------------- *)

let test_write_atomic_survives_fault () =
  let path = Filename.temp_file "tsg_fault" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Safe_io.write_atomic path "first\n";
      with_faults [ ("safe_io.write", Fault.Once) ] (fun () ->
          match Safe_io.write_atomic path "second\n" with
          | () -> Alcotest.fail "fault did not fire"
          | exception Fault.Injected _ -> ());
      (* the torn write must not have damaged the previous content *)
      check Alcotest.string "old content intact" "first\n"
        (Safe_io.read_file path);
      check bool "no temp litter" true
        (Array.for_all
           (fun f -> not (String.length f > 4 && String.sub f 0 4 = ".tsg"))
           (Sys.readdir (Filename.dirname path))))

let test_write_atomic_survives_dirsync_fault () =
  let path = Filename.temp_file "tsg_fault" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Safe_io.write_atomic path "first\n";
      with_faults [ ("safe_io.dirsync", Fault.Once) ] (fun () ->
          match Safe_io.write_atomic path "second\n" with
          | () -> Alcotest.fail "fault did not fire"
          | exception Fault.Injected { site; _ } ->
            check Alcotest.string "fault site" "safe_io.dirsync" site);
      (* the directory fsync comes after the rename: by the time it can
         fail, the new version is already the directory entry — only its
         crash-durability was at risk, never its content *)
      check Alcotest.string "new content already in place" "second\n"
        (Safe_io.read_file path);
      check bool "no temp litter" true
        (Array.for_all
           (fun f -> not (String.length f > 4 && String.sub f 0 4 = ".tsg"))
           (Sys.readdir (Filename.dirname path)));
      (* and the writer stays usable once the fault clears *)
      Safe_io.write_atomic path "third\n";
      check Alcotest.string "subsequent write lands" "third\n"
        (Safe_io.read_file path))

(* --- Supervised pool ------------------------------------------------------- *)

let rule_of = function
  | Ok _ -> "ok"
  | Error d -> d.Diagnostic.rule

let test_transient_retried () =
  let pool = Pool.Exec.create ~domains:2 () in
  let attempts = Array.make 4 0 in
  let task i _ctx =
    attempts.(i) <- attempts.(i) + 1;
    if i = 2 && attempts.(i) < 3 then raise (Pool.Transient "flaky");
    i * 10
  in
  let results = Pool.Exec.run_supervised pool (List.init 4 task) in
  check int "all tasks reported" 4 (List.length results);
  List.iter
    (fun (tid, r) ->
      match[@warning "-4"] (tid, r) with
      | [ i ], Ok v -> check int "value" (i * 10) v
      | _, Error d -> Alcotest.fail (Diagnostic.to_string d)
      | _ -> Alcotest.fail "unexpected id shape")
    results;
  check int "flaky task took 3 attempts" 3 attempts.(2);
  check int "healthy tasks ran once" 1 attempts.(0)

let test_permanent_quarantined () =
  let pool = Pool.Exec.create ~domains:2 () in
  let task i _ctx = if i = 1 then failwith "poisoned" else i in
  let results = Pool.Exec.run_supervised pool (List.init 3 task) in
  check (Alcotest.list Alcotest.string) "one casualty, run completes"
    [ "ok"; "POOL001"; "ok" ]
    (List.map (fun (_, r) -> rule_of r) results)

let test_fail_after_fork_not_retried () =
  let pool = Pool.Exec.create ~domains:2 () in
  let attempts = ref 0 in
  let task ctx =
    incr attempts;
    Pool.fork ctx (fun _ -> 99);
    raise (Pool.Transient "late failure")
  in
  let results = Pool.Exec.run_supervised pool [ task ] in
  (* the forked child is already scheduled under its id: retrying the
     parent would schedule it twice, so one attempt is all it gets *)
  check int "no retry after fork" 1 !attempts;
  check (Alcotest.list Alcotest.string) "parent quarantined, child ran"
    [ "POOL001"; "ok" ]
    (List.map (fun (_, r) -> rule_of r) results);
  match List.assoc [ 0; 0 ] results with
  | Ok v -> check int "child result kept" 99 v
  | Error d -> Alcotest.fail (Diagnostic.to_string d)

let test_deadline_quarantine () =
  let pool = Pool.Exec.create ~domains:2 () in
  let policy =
    { Pool.default_policy with Pool.deadline_s = Some 0.005 }
  in
  let task i ctx =
    if i = 0 then begin
      (* spin past the deadline, polling like a long mining task would *)
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.05 do
        Pool.check_deadline ctx
      done
    end;
    i
  in
  let results = Pool.Exec.run_supervised pool ~policy (List.init 2 task) in
  check (Alcotest.list Alcotest.string) "overrun quarantined as POOL002"
    [ "POOL002"; "ok" ]
    (List.map (fun (_, r) -> rule_of r) results)

let test_injected_fault_retried_then_ok () =
  (* pool.task fires once; the default policy treats Injected as
     transient, so the victim retries and the run is casualty-free *)
  with_faults [ ("pool.task", Fault.Once) ] (fun () ->
      let pool = Pool.Exec.create ~domains:2 () in
      let results = Pool.Exec.run_supervised pool (List.init 5 (fun i _ -> i)) in
      check bool "no casualties" true
        (List.for_all (fun (_, r) -> Result.is_ok r) results);
      check int "the fault did fire" 1 (Fault.fired_count "pool.task"))

let test_injected_fault_exhausts_to_flt001 () =
  with_faults [ ("pool.task", Fault.Probability 1.0) ] (fun () ->
      let pool = Pool.Exec.create ~domains:2 () in
      let results = Pool.Exec.run_supervised pool [ (fun _ -> 0) ] in
      match[@warning "-4"] results with
      | [ (_, Error d) ] ->
        check Alcotest.string "injected faults carry FLT001" "FLT001"
          d.Diagnostic.rule
      | _ -> Alcotest.fail "expected a single quarantined task")

(* --- Checkpoint / resume --------------------------------------------------- *)

let config theta =
  { Taxogram.min_support = theta; max_edges = Some 4;
    enhancements = Specialize.all_on }

let random_instance rng =
  let concepts = 4 + Prng.int rng 6 in
  let tax =
    Tsg_taxonomy.Synth_taxonomy.generate rng
      { concepts; relationships = concepts + Prng.int rng 4;
        depth = 2 + Prng.int rng 3 }
  in
  let sampler = Tsg_data.Synth_graph.uniform_labels tax in
  let db =
    Tsg_data.Synth_graph.generate rng
      { Tsg_data.Synth_graph.graph_count = 3 + Prng.int rng 5; max_edges = 6;
        edge_density = 0.3; edge_label_count = 2; node_label = sampler }
  in
  (tax, db)

let fingerprint tax (r : Taxogram.result) =
  let names = Taxonomy.labels tax in
  String.concat "\n"
    (List.map
       (fun (p : Pattern.t) ->
         Printf.sprintf "%d %s" p.Pattern.support_count
           (Pattern.to_string ~names p))
       (Pattern.sort r.Taxogram.patterns))

let temp_ckpt () =
  let path = Filename.temp_file "tsg_ckpt" ".ck" in
  Sys.remove path;
  path

let rm_f path = if Sys.file_exists path then Sys.remove path

(* kill a run at root k via the taxogram.root failpoint, leaving a
   checkpoint on disk; None when the run had fewer than k roots *)
let killed_run ?domains ~cfg ~path ~k tax db =
  with_faults [ ("taxogram.root", Fault.On_hit k) ] (fun () ->
      let checkpoint = { Taxogram.path; every_s = 0.0; corpus_seq = 0L } in
      match Taxogram.run (Taxogram.Spec.collect ~config:cfg ?domains ~checkpoint ()) tax db with
      | r -> Some r
      | exception Fault.Injected _ -> None)

let test_kill_resume_sequential () =
  let rng = Prng.of_int 20260807 in
  let tax, db = random_instance rng in
  let cfg = config 0.34 in
  let full = Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) tax db in
  let path = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      (match killed_run ~domains:1 ~cfg ~path ~k:2 tax db with
      | None -> check bool "checkpoint written" true (Sys.file_exists path)
      | Some _ -> ());
      let resumed =
        Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ~checkpoint:{ Taxogram.path; every_s = 0.0; corpus_seq = 0L } ()) tax db
      in
      check Alcotest.string "byte-identical to uninterrupted"
        (fingerprint tax full) (fingerprint tax resumed);
      check bool "checkpoint deleted on completion" false
        (Sys.file_exists path))

let test_checkpoint_corruption () =
  let rng = Prng.of_int 99 in
  let tax, db = random_instance rng in
  let cfg = config 0.34 in
  let path = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      ignore (killed_run ~domains:1 ~cfg ~path ~k:1 tax db);
      check bool "checkpoint exists" true (Sys.file_exists path);
      let original = Safe_io.read_file path in
      let expect_code code s =
        Safe_io.write_atomic path s;
        match Checkpoint.load path with
        | _ -> Alcotest.fail ("loaded damaged checkpoint (" ^ code ^ ")")
        | exception Checkpoint.Error d ->
          check Alcotest.string "rule" code d.Diagnostic.rule
      in
      (* bit-flip in the middle *)
      let flipped = Bytes.of_string original in
      let mid = Bytes.length flipped / 2 in
      Bytes.set flipped mid
        (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
      expect_code "CKPT001" (Bytes.to_string flipped);
      (* truncation: a torn tail must read as torn, not as fewer roots *)
      expect_code "CKPT001"
        (String.sub original 0 (String.length original / 2));
      expect_code "CKPT001" "";
      (* intact file still loads *)
      Safe_io.write_atomic path original;
      let ck = Checkpoint.load path in
      check bool "prefix shape" true
        (List.mapi (fun i _ -> i) ck.Checkpoint.entries
        = List.map (fun (e : Checkpoint.entry) -> e.Checkpoint.root)
            ck.Checkpoint.entries);
      (* fingerprint mismatch *)
      match
        Checkpoint.check ~fingerprint:1L
          ~corpus_seq:ck.Checkpoint.corpus_seq
          ~db_size:ck.Checkpoint.db_size
          ~roots_total:ck.Checkpoint.roots_total ck
      with
      | () -> Alcotest.fail "accepted foreign fingerprint"
      | exception Checkpoint.Error d ->
        check Alcotest.string "rule" "CKPT002" d.Diagnostic.rule)

let test_resume_rejects_other_config () =
  let rng = Prng.of_int 512 in
  let tax, db = random_instance rng in
  let path = temp_ckpt () in
  Fun.protect
    ~finally:(fun () -> rm_f path)
    (fun () ->
      ignore (killed_run ~domains:1 ~cfg:(config 0.34) ~path ~k:1 tax db);
      check bool "checkpoint exists" true (Sys.file_exists path);
      (* same path, different theta: the fingerprint must refuse *)
      match
        Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ~domains:1 ~checkpoint:{ Taxogram.path; every_s = 0.0; corpus_seq = 0L } ()) tax db
      with
      | _ -> Alcotest.fail "resumed under a different configuration"
      | exception Checkpoint.Error d ->
        check Alcotest.string "rule" "CKPT002" d.Diagnostic.rule)

let arb_instance =
  QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_bound 3))

let kill_resume_prop ~domains =
  QCheck.Test.make
    ~name:(Printf.sprintf "kill+resume byte-identical, domains=%d" domains)
    ~count:15 arb_instance
    (fun (seed, k) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config 0.34 in
      let full = Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains ()) tax db in
      let path = temp_ckpt () in
      Fun.protect
        ~finally:(fun () -> rm_f path)
        (fun () ->
          ignore (killed_run ~domains ~cfg ~path ~k:(1 + k) tax db);
          let resumed =
            Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains ~checkpoint:{ Taxogram.path; every_s = 0.0; corpus_seq = 0L } ()) tax db
          in
          fingerprint tax full = fingerprint tax resumed
          && not (Sys.file_exists path)))

let chaos_supervised_prop =
  (* any probabilistic schedule over the mining failpoints: a supervised
     run always completes, casualties surface as coded diagnostics, and
     surviving patterns are a subset of the clean run with equal supports *)
  QCheck.Test.make ~name:"supervised chaos: complete, coded, subset"
    ~count:15
    (QCheck.make
       QCheck.Gen.(triple (int_bound 1_000_000) (int_bound 2) (int_bound 1)))
    (fun (seed, p_idx, d_idx) ->
      let rng = Prng.of_int seed in
      let tax, db = random_instance rng in
      let cfg = config 0.34 in
      let clean = Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains:1 ()) tax db in
      let p = [| 0.0; 0.15; 0.5 |].(p_idx) in
      let domains = [| 1; 4 |].(d_idx) in
      let r =
        with_faults ~seed:(Int64.of_int seed)
          [
            ("pool.task", Fault.Probability p);
            ("taxogram.root", Fault.Probability p);
            ("occ_index.build", Fault.Probability (p /. 2.0));
          ]
          (fun () ->
            Taxogram.run (Taxogram.Spec.collect ~config:cfg ~domains ~supervised:true ())
              tax db)
      in
      let coded =
        List.for_all
          (fun (d : Diagnostic.t) ->
            List.mem d.Diagnostic.rule [ "FLT001"; "POOL001"; "POOL002" ])
          r.Taxogram.diagnostics
      in
      let by_key =
        List.map (fun (q : Pattern.t) -> (Pattern.key q, q)) clean.Taxogram.patterns
      in
      let subset =
        List.for_all
          (fun (q : Pattern.t) ->
            match List.assoc_opt (Pattern.key q) by_key with
            | Some full_p ->
              full_p.Pattern.support_count = q.Pattern.support_count
            | None -> false)
          r.Taxogram.patterns
      in
      let complete_when_quiet =
        r.Taxogram.diagnostics <> [] || r.Taxogram.completed
      in
      coded && subset && complete_when_quiet)

(* --- Hardened serve -------------------------------------------------------- *)

let serve_store () =
  let tax =
    Taxonomy.build ~names:[ "a"; "b"; "c" ] ~is_a:[ ("b", "a"); ("c", "a") ]
  in
  let db =
    Db.of_list
      [
        Tsg_graph.Graph.build
          ~labels:[| Taxonomy.id_of_name tax "b"; Taxonomy.id_of_name tax "c" |]
          ~edges:[ (0, 1, 0) ];
        Tsg_graph.Graph.build
          ~labels:[| Taxonomy.id_of_name tax "b"; Taxonomy.id_of_name tax "c" |]
          ~edges:[ (0, 1, 0) ];
      ]
  in
  let r = Taxogram.run (Taxogram.Spec.collect ~config:(config 0.5) ~domains:1 ()) tax db in
  Store.build ~taxonomy:tax ~db_size:2 r.Taxogram.patterns

let run_serve ?limits requests =
  let store = serve_store () in
  let edge_labels = Label.of_names [ "e0" ] in
  let metrics = Metrics.create () in
  let engine = Engine.create ~metrics store in
  let req_path = Filename.temp_file "tsg_fault_serve" ".req" in
  let out_path = Filename.temp_file "tsg_fault_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out req_path in
      output_string oc requests;
      close_out oc;
      let ic = open_in req_path and oc = open_out out_path in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            close_in ic;
            close_out oc)
          (fun () ->
            Serve.run ~exec:(Tsg_util.Pool.Exec.create ~domains:1 ()) ?limits ~engine ~edge_labels ic oc)
      in
      let ic = open_in out_path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (outcome, text, metrics))

let contains_line text prefix =
  List.exists
    (fun l ->
      String.length l >= String.length prefix
      && String.sub l 0 (String.length prefix) = prefix)
    (String.split_on_char '\n' text)

let test_serve_health () =
  let outcome, text, _ = run_serve "health\nquit\n" in
  check bool "health reply" true (contains_line text "ok health patterns 1");
  check int "both counted" 2 outcome.Serve.requests;
  check bool "clean quit" true outcome.Serve.quit

let test_serve_oversized () =
  let limits = { Serve.default_limits with Serve.max_line_bytes = 32 } in
  let big = "contains " ^ String.concat "," (List.init 40 (fun _ -> "b")) in
  let outcome, text, metrics =
    run_serve ~limits (big ^ "\nhealth\nquit\n")
  in
  check bool "rejected with error" true
    (contains_line text "error OVERSIZED request exceeds 32 bytes");
  check bool "loop survived to health" true
    (contains_line text "ok health");
  check int "errors counted" 1 outcome.Serve.errors;
  check int "metric" 1
    (Metrics.value (Metrics.counter metrics "serve.oversized"))

let test_serve_deadline () =
  let limits =
    { Serve.default_limits with Serve.request_deadline_s = Some 0.0 }
  in
  let outcome, text, metrics =
    run_serve ~limits "contains b,c 0-1/e0\ncontains b,c 0-1/e0\nquit\n"
  in
  check bool "deadline reply" true
    (contains_line text "error DEADLINE deadline exceeded");
  check int "both expired" 2 outcome.Serve.errors;
  check int "metric" 2
    (Metrics.value (Metrics.counter metrics "serve.deadline_expired"))

let test_serve_survives_injected_faults () =
  with_faults [ ("serve.request", Fault.Probability 1.0) ] (fun () ->
      let outcome, text, metrics =
        run_serve "contains b,c 0-1/e0\ntop-k 1 support\nhealth\nquit\n"
      in
      check bool "fault reported per request" true
        (contains_line text "error FAULT injected fault at serve.request");
      check bool "loop survived" true outcome.Serve.quit;
      check int "both data queries failed" 2 outcome.Serve.errors;
      check bool "health barrier unaffected" true
        (contains_line text "ok health");
      check int "metric" 2
        (Metrics.value (Metrics.counter metrics "serve.injected_faults")))

let test_serve_disconnect () =
  (* the peer is a closed channel: every write raises, the loop must end
     with [disconnected] set instead of crashing *)
  let store = serve_store () in
  let edge_labels = Label.of_names [ "e0" ] in
  let metrics = Metrics.create () in
  let engine = Engine.create ~metrics store in
  let req_path = Filename.temp_file "tsg_fault_serve" ".req" in
  let out_path = Filename.temp_file "tsg_fault_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out req_path in
      output_string oc "contains b,c 0-1/e0\nhealth\nquit\n";
      close_out oc;
      let ic = open_in req_path in
      let oc = open_out out_path in
      close_out oc;
      let outcome =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Serve.run ~exec:(Tsg_util.Pool.Exec.create ~domains:1 ()) ~engine ~edge_labels ic oc)
      in
      check bool "disconnect detected" true outcome.Serve.disconnected;
      check int "metric" 1
        (Metrics.value (Metrics.counter metrics "serve.disconnects")))

(* --- TCP mode -------------------------------------------------------------- *)

let with_listener ?max_conns f =
  let store = serve_store () in
  let edge_labels = Label.of_names [ "e0" ] in
  let metrics = Metrics.create () in
  let engine = Engine.create ~metrics store in
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let server =
    Thread.create
      (fun () ->
        Serve.listen ?max_conns ~drain_s:2.0
          ~on_listen:(fun p -> Atomic.set port p)
          ~should_stop:(fun () -> Atomic.get stop)
          ~engine ~edge_labels ~port:0 ())
      ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check bool "listener came up" true (Atomic.get port <> 0);
  let result =
    Fun.protect
      ~finally:(fun () -> Atomic.set stop true)
      (fun () -> f (Atomic.get port))
  in
  (result, Thread.join server)

let tcp_request port lines =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      output_string oc lines;
      flush oc;
      (* a load-shed peer may have hung up already: ENOTCONN is fine *)
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      let buf = Buffer.create 256 in
      (try
         while true do
           Buffer.add_channel buf ic 1
         done
       with End_of_file -> ());
      Buffer.contents buf)

let test_tcp_roundtrip () =
  let text, () =
    with_listener (fun port -> tcp_request port "health\nquit\n")
  in
  check bool "served over tcp" true (contains_line text "ok health patterns 1")

let test_tcp_overloaded () =
  (* max_conns = 0: every connection is load-shed with OVERLOADED *)
  let text, () =
    with_listener ~max_conns:0 (fun port -> tcp_request port "health\n")
  in
  check Alcotest.string "shed reply" "OVERLOADED\n" text

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Fault.clear ();
  Alcotest.run "fault"
    [
      ( "failpoints",
        [
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_is_noop;
          Alcotest.test_case "once and on-hit triggers" `Quick
            test_once_and_on_hit;
          Alcotest.test_case "probability is seed-deterministic" `Quick
            test_probability_deterministic;
          Alcotest.test_case "per-site streams are independent" `Quick
            test_independent_streams;
          Alcotest.test_case "TSG_FAULTS environment" `Quick
            test_env_configuration;
          Alcotest.test_case "FLT001 diagnostic" `Quick test_fault_diagnostic;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "crc32 known vector" `Quick test_crc32_vector;
          Alcotest.test_case "fnv1a64" `Quick test_fnv1a64;
        ] );
      ( "safe_io",
        [
          Alcotest.test_case "atomic write survives a torn write" `Quick
            test_write_atomic_survives_fault;
          Alcotest.test_case "atomic write survives a torn directory fsync"
            `Quick test_write_atomic_survives_dirsync_fault;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "transient failures retried" `Quick
            test_transient_retried;
          Alcotest.test_case "permanent failures quarantined" `Quick
            test_permanent_quarantined;
          Alcotest.test_case "no retry after fork" `Quick
            test_fail_after_fork_not_retried;
          Alcotest.test_case "deadline overrun is POOL002" `Quick
            test_deadline_quarantine;
          Alcotest.test_case "injected fault retried to success" `Quick
            test_injected_fault_retried_then_ok;
          Alcotest.test_case "exhausted injections carry FLT001" `Quick
            test_injected_fault_exhausts_to_flt001;
        ] );
      ( "checkpoint",
        Alcotest.test_case "kill and resume, sequential" `Quick
          test_kill_resume_sequential
        :: Alcotest.test_case "corruption detection" `Quick
             test_checkpoint_corruption
        :: Alcotest.test_case "config mismatch refused" `Quick
             test_resume_rejects_other_config
        :: qsuite
             [
               kill_resume_prop ~domains:1;
               kill_resume_prop ~domains:4;
               chaos_supervised_prop;
             ] );
      ( "serve",
        [
          Alcotest.test_case "health verb" `Quick test_serve_health;
          Alcotest.test_case "oversized request bounded" `Quick
            test_serve_oversized;
          Alcotest.test_case "request deadline" `Quick test_serve_deadline;
          Alcotest.test_case "loop survives injected faults" `Quick
            test_serve_survives_injected_faults;
          Alcotest.test_case "peer disconnect is clean" `Quick
            test_serve_disconnect;
          Alcotest.test_case "tcp round-trip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "tcp load shedding" `Quick test_tcp_overloaded;
        ] );
    ]
