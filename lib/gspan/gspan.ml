module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Bitset = Tsg_util.Bitset
module Arena = Tsg_util.Arena

type embedding = { graph_id : int; map : int array }

type pattern = {
  code : Dfs_code.t;
  graph : Tsg_graph.Graph.t;
  support_set : Bitset.t;
  support : int;
  embeddings : embedding list;
}

let mapped emb node = Array.exists (fun v -> v = node) emb.map

(* Group candidate extension edges, accumulating embeddings per edge. *)
module Edge_key = struct
  type t = Dfs_code.edge

  let compare = Dfs_code.compare_edge
end

module Edge_map = Map.Make (Edge_key)

let support_of_embeddings db embs =
  let set = Bitset.create (Db.size db) in
  List.iter (fun e -> Bitset.set set e.graph_id) embs;
  set

let single_edge_seeds db =
  let table = Hashtbl.create 256 in
  Db.iteri
    (fun gid g ->
      Array.iter
        (fun (u, v, le) ->
          let lu = Graph.node_label g u and lv = Graph.node_label g v in
          let orientations =
            if lu < lv then [ (u, v, lu, lv) ]
            else if lv < lu then [ (v, u, lv, lu) ]
            else [ (u, v, lu, lv); (v, u, lv, lu) ]
          in
          List.iter
            (fun (a, b, la, lb) ->
              let key = (la, le, lb) in
              let emb = { graph_id = gid; map = [| a; b |] } in
              let existing =
                Option.value ~default:[] (Hashtbl.find_opt table key)
              in
              Hashtbl.replace table key (emb :: existing))
            orientations)
        (Graph.edges g))
    db;
  Hashtbl.fold (fun key embs acc -> (key, List.rev embs) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let extensions code embeddings db =
  let rpath = Dfs_code.rightmost_path code in
  let r = List.hd rpath in
  let nodes_so_far = Dfs_code.node_count code in
  let back_targets =
    List.filter
      (fun i -> i <> r && not (Dfs_code.has_edge code r i))
      (List.sort compare (List.tl rpath))
  in
  let table = ref Edge_map.empty in
  let add edge emb =
    table :=
      Edge_map.update edge
        (function None -> Some [ emb ] | Some l -> Some (emb :: l))
        !table
  in
  List.iter
    (fun emb ->
      let g = Db.get db emb.graph_id in
      (* backward extensions from the rightmost node *)
      List.iter
        (fun i ->
          match Graph.edge_label g emb.map.(r) emb.map.(i) with
          | Some le ->
            add
              {
                Dfs_code.from_i = r;
                to_i = i;
                from_label = Dfs_code.label_of code r;
                edge_label = le;
                to_label = Dfs_code.label_of code i;
              }
              emb
          | None -> ())
        back_targets;
      (* forward extensions from every rightmost-path node *)
      List.iter
        (fun i ->
          Array.iter
            (fun (w, le) ->
              if not (mapped emb w) then
                add
                  {
                    Dfs_code.from_i = i;
                    to_i = nodes_so_far;
                    from_label = Dfs_code.label_of code i;
                    edge_label = le;
                    to_label = Graph.node_label g w;
                  }
                  { emb with map = Array.append emb.map [| w |] })
            (Graph.neighbors g emb.map.(i)))
        rpath)
    embeddings;
  Edge_map.bindings !table
  |> List.map (fun (edge, embs) -> (edge, List.rev embs))

(* explore one seed's rightmost-path extension subtree; [grow] is only
   entered with a frequent, minimal code *)
let explore_subtree ~max_edges ~min_support db root_edge root_embs root_set
    report =
  let db_n = Db.size db in
  let rec grow code embeddings support_set =
    report
      {
        code;
        graph = Dfs_code.to_graph code;
        support_set;
        support = Bitset.cardinal support_set;
        embeddings;
      };
    if Array.length code < max_edges then begin
      (* support sets are computed in per-domain scratch and copied out
         only for candidates that survive both the support threshold and
         the minimality check — the infrequent majority allocates
         nothing (the recursive call borrows its own scratch) *)
      let scratch = Arena.acquire db_n in
      List.iter
        (fun (edge, embs) ->
          Bitset.clear scratch;
          List.iter (fun e -> Bitset.set scratch e.graph_id) embs;
          if Bitset.cardinal scratch >= min_support then begin
            let code' = Array.append code [| edge |] in
            if Min_code.is_min code' then grow code' embs (Bitset.copy scratch)
          end)
        (extensions code embeddings db);
      Arena.release scratch
    end
  in
  grow [| root_edge |] root_embs root_set

let mine_seed_tasks ?max_edges ~min_support db =
  if min_support < 1 then invalid_arg "Gspan.mine: min_support must be >= 1";
  let max_edges = Option.value ~default:max_int max_edges in
  if max_edges < 1 then []
  else
    List.filter_map
      (fun ((la, le, lb), embs) ->
        let set = support_of_embeddings db embs in
        if Bitset.cardinal set >= min_support then
          let edge =
            {
              Dfs_code.from_i = 0;
              to_i = 1;
              from_label = la;
              edge_label = le;
              to_label = lb;
            }
          in
          Some
            ( (la, le, lb),
              fun report ->
                explore_subtree ~max_edges ~min_support db edge embs set report
            )
        else None)
      (single_edge_seeds db)

let mine_tasks ?max_edges ~min_support db =
  List.map snd (mine_seed_tasks ?max_edges ~min_support db)

let mine ?max_edges ~min_support db report =
  List.iter (fun task -> task report) (mine_tasks ?max_edges ~min_support db)

let mine_list ?max_edges ~min_support db =
  let acc = ref [] in
  mine ?max_edges ~min_support db (fun p ->
      acc := { p with embeddings = p.embeddings } :: !acc);
  List.rev !acc

let frequent_labels ~min_support db =
  let counts = Hashtbl.create 256 in
  Db.iteri
    (fun _ g ->
      List.iter
        (fun l ->
          Hashtbl.replace counts l
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
        (Graph.distinct_node_labels g))
    db;
  Hashtbl.fold
    (fun l c acc -> if c >= min_support then l :: acc else acc)
    counts []
  |> List.sort compare
