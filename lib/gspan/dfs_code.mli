(** DFS codes — gSpan's canonical representation of connected labeled graphs
    (Yan & Han, ICDM 2002).

    A DFS code is the edge sequence of a depth-first traversal; each edge is
    a 5-tuple [(i, j, l_i, l_e, l_j)] of the DFS discovery indices of its
    endpoints and the node/edge labels. An edge is {e forward} when it
    discovers a new node ([j = max-so-far + 1]) and {e backward} otherwise
    ([j < i]). The total order on codes (lexicographic over the edge order
    below) defines the {e minimum} DFS code, which is canonical: two graphs
    are isomorphic iff their minimum codes are equal. *)

type edge = {
  from_i : int;
  to_i : int;
  from_label : Tsg_graph.Label.id;
  edge_label : Tsg_graph.Label.id;
  to_label : Tsg_graph.Label.id;
}

type t = edge array
(** Edges in DFS order. The empty array is the empty code. *)

val is_forward : edge -> bool

val is_backward : edge -> bool

val compare_edge : edge -> edge -> int
(** gSpan's edge order [<_e]:
    backward edges precede forward edges growing from deeper anchors;
    among forward edges, deeper anchors come first; among backward edges,
    earlier targets come first; ties break on the label triple. Only
    meaningful for edges extending the same code prefix. *)

val compare : t -> t -> int
(** Lexicographic extension of {!compare_edge}; a proper prefix precedes. *)

val node_count : t -> int

val edge_count : t -> int

val rightmost : t -> int
(** Highest DFS index; [0] for the empty code (a single-node code). *)

val rightmost_path : t -> int list
(** DFS indices from the rightmost node up to the root, rightmost first.
    E.g. [[3; 1; 0]]. *)

val label_of : t -> int -> Tsg_graph.Label.id
(** Node label carried by the code for a DFS index. *)

val has_edge : t -> int -> int -> bool
(** Does the code contain an edge between these DFS indices (either
    direction)? *)

val to_graph : t -> Tsg_graph.Graph.t
(** The graph spelled by the code; node ids are DFS indices. *)

val pp : Format.formatter -> t -> unit
