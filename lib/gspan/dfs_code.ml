module Graph = Tsg_graph.Graph

type edge = {
  from_i : int;
  to_i : int;
  from_label : Tsg_graph.Label.id;
  edge_label : Tsg_graph.Label.id;
  to_label : Tsg_graph.Label.id;
}

type t = edge array

let is_forward e = e.to_i > e.from_i

let is_backward e = not (is_forward e)

let compare_labels a b =
  match compare a.from_label b.from_label with
  | 0 -> (
    match compare a.edge_label b.edge_label with
    | 0 -> compare a.to_label b.to_label
    | c -> c)
  | c -> c

(* gSpan's edge order: see Yan & Han 2002, Section "DFS Lexicographic
   Order". For edges extending the same prefix:
   - backward vs backward: smaller target first, then labels;
   - forward vs forward: larger source first (same target: the new node),
     then labels;
   - backward (i1,j1) vs forward (i2,j2): backward first iff i1 < j2;
     the reverse comparison: forward first iff j1 <= i2. *)
let compare_edge a b =
  match (is_forward a, is_forward b) with
  | false, false -> (
    match compare a.to_i b.to_i with
    | 0 -> (
      match compare a.from_i b.from_i with
      | 0 -> compare_labels a b
      | c -> c)
    | c -> c)
  | true, true -> (
    match compare a.to_i b.to_i with
    | 0 -> (
      match compare b.from_i a.from_i with
      | 0 -> compare_labels a b
      | c -> c)
    | c -> c)
  | false, true -> if a.from_i < b.to_i then -1 else 1
  | true, false -> if a.to_i <= b.from_i then -1 else 1

let compare (a : t) (b : t) =
  let na = Array.length a and nb = Array.length b in
  let rec go k =
    if k = na && k = nb then 0
    else if k = na then -1
    else if k = nb then 1
    else
      match compare_edge a.(k) b.(k) with 0 -> go (k + 1) | c -> c
  in
  go 0

let node_count code =
  Array.fold_left (fun acc e -> max acc (max e.from_i e.to_i + 1)) 0 code

let edge_count = Array.length

let rightmost code =
  Array.fold_left (fun acc e -> max acc e.to_i) 0 code

let rightmost_path code =
  (* walk forward edges backward from the rightmost node to the root *)
  let target = rightmost code in
  let rec climb node acc =
    if node = 0 then List.rev (0 :: acc)
    else
      let parent =
        Array.fold_left
          (fun found e ->
            if is_forward e && e.to_i = node then Some e.from_i else found)
          None code
      in
      match parent with
      | Some p -> climb p (node :: acc)
      | None -> List.rev (node :: acc)
  in
  (* climb accumulates top-down, so reversing inside yields rightmost-first *)
  climb target []

let label_of code i =
  let found =
    Array.fold_left
      (fun acc e ->
        match acc with
        | Some _ -> acc
        | None ->
          if e.from_i = i then Some e.from_label
          else if e.to_i = i then Some e.to_label
          else None)
      None code
  in
  match found with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Dfs_code.label_of: index %d unused" i)

let has_edge code i j =
  Array.exists
    (fun e ->
      (e.from_i = i && e.to_i = j) || (e.from_i = j && e.to_i = i))
    code

let to_graph code =
  let n = node_count code in
  let labels = Array.make n (-1) in
  Array.iter
    (fun e ->
      labels.(e.from_i) <- e.from_label;
      labels.(e.to_i) <- e.to_label)
    code;
  let edges =
    Array.to_list (Array.map (fun e -> (e.from_i, e.to_i, e.edge_label)) code)
  in
  Graph.build ~labels ~edges

let pp ppf code =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun e ->
      Format.fprintf ppf "(%d,%d,%d,%d,%d)@," e.from_i e.to_i e.from_label
        e.edge_label e.to_label)
    code;
  Format.fprintf ppf "@]"
