module Graph = Tsg_graph.Graph

(* Column block for placing node [v] after the already-ordered [chosen]
   (most recent first is inconvenient; we keep chosen in order). Entry 0
   means no edge, otherwise edge label + 1. *)
let column g chosen v =
  Graph.node_label g v
  :: List.map
       (fun u ->
         match Graph.edge_label g u v with Some l -> l + 1 | None -> 0)
       chosen

(* lexicographic comparison of int lists *)
let rec compare_prefix a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: a, y :: b -> ( match compare x y with 0 -> compare_prefix a b | c -> c)

let code g =
  let n = Graph.node_count g in
  if n = 0 then [||]
  else begin
    let best = ref None in
    (* depth-first over node orderings; [acc] is the code so far (reversed
       per block for cheap append), compared block-wise against the best
       complete code's prefix to prune *)
    let rec place chosen used acc_rev depth =
      if depth = n then begin
        let candidate = List.concat (List.rev acc_rev) in
        match !best with
        | None -> best := Some candidate
        | Some b -> if compare_prefix candidate b < 0 then best := Some candidate
      end
      else
        for v = 0 to n - 1 do
          if not used.(v) then begin
            let col = column g chosen v in
            let acc_rev' = col :: acc_rev in
            let prefix = List.concat (List.rev acc_rev') in
            let viable =
              match !best with
              | None -> true
              | Some b ->
                (* compare the prefix against the best code's prefix of the
                   same length *)
                let rec cmp p b =
                  match (p, b) with
                  | [], _ -> true (* equal so far *)
                  | _, [] -> false
                  | x :: p, y :: b -> x < y || (x = y && cmp p b)
                in
                cmp prefix b
            in
            if viable then begin
              used.(v) <- true;
              place (chosen @ [ v ]) used acc_rev' (depth + 1);
              used.(v) <- false
            end
          end
        done
    in
    place [] (Array.make n false) [] 0;
    Array.of_list (Option.get !best)
  end

let key g =
  let c = code g in
  let buf = Buffer.create (4 * Array.length c) in
  Array.iter (fun x -> Buffer.add_string buf (string_of_int x ^ ",")) c;
  Buffer.contents buf

let same_class a b =
  Graph.node_count a = Graph.node_count b
  && Graph.edge_count a = Graph.edge_count b
  && key a = key b
