(** gSpan: frequent connected-subgraph mining over a graph database
    (Yan & Han, ICDM 2002) — the general-purpose miner Taxogram's Step 2
    extends.

    Depth-first pattern growth: each frequent pattern is visited exactly once
    (duplicates are cut by the minimum-DFS-code test), and only one pattern's
    embedding list is alive per recursion branch, which is the memory profile
    the paper contrasts with the level-wise TAcGM. *)

type embedding = {
  graph_id : int;
  map : int array;  (** pattern DFS index -> node of the database graph *)
}

type pattern = {
  code : Dfs_code.t;
  graph : Tsg_graph.Graph.t;  (** node ids are DFS indices *)
  support_set : Tsg_util.Bitset.t;  (** database graph ids *)
  support : int;  (** [Bitset.cardinal support_set] *)
  embeddings : embedding list;
      (** all occurrences; persistent (maps are never mutated after being
          reported) *)
}

val mine :
  ?max_edges:int ->
  min_support:int ->
  Tsg_graph.Db.t ->
  (pattern -> unit) ->
  unit
(** [mine ~min_support db report] calls [report] once per frequent connected
    pattern with at least one edge and at most [max_edges] edges (default:
    unbounded). [min_support] is an absolute graph count, at least 1.
    Patterns arrive in DFS (minimum-code lexicographic) order. *)

val mine_list :
  ?max_edges:int -> min_support:int -> Tsg_graph.Db.t -> pattern list
(** Collect reported patterns (embedding lists copied so they stay valid). *)

val mine_tasks :
  ?max_edges:int ->
  min_support:int ->
  Tsg_graph.Db.t ->
  ((pattern -> unit) -> unit) list
(** The search decomposed for a domain pool: one closure per frequent
    1-edge DFS-code root, in the same sorted seed order {!mine} visits
    them. Applying a closure to a report callback explores that root's
    rightmost-path extension subtree exactly as {!mine} would (the root
    pattern is reported first), and the subtrees partition the pattern
    space — running every task, in any order or concurrently, reports
    each frequent pattern exactly once. Closures share only immutable
    state ([db] and the seed embeddings), so they may run on different
    domains; a callback may raise to abandon its subtree. [mine db r] is
    equivalent to applying every task to [r] in list order. *)

val mine_seed_tasks :
  ?max_edges:int ->
  min_support:int ->
  Tsg_graph.Db.t ->
  ((Tsg_graph.Label.id * Tsg_graph.Label.id * Tsg_graph.Label.id)
  * ((pattern -> unit) -> unit))
  list
(** Like {!mine_tasks} but each closure is paired with its seed 1-edge
    [(from_label, edge_label, to_label)] ([from_label <= to_label] by
    id, the canonical orientation). Every pattern a task reports
    contains its seed edge, which is what lets an incremental re-mine
    skip roots no changed graph can touch. [mine_tasks] is
    [List.map snd] of this. *)

val frequent_labels : min_support:int -> Tsg_graph.Db.t -> Tsg_graph.Label.id list
(** Node labels occurring in at least [min_support] distinct graphs. *)
