(** Canonical adjacency-matrix codes — the canonical form of AcGM
    (Inokuchi et al.), the level-wise miner the paper's TAcGM comparator
    extends.

    A labeled graph's code is its adjacency matrix read in column blocks
    ([node label], then the upper-triangular edge entries of the column,
    0 for no edge, label+1 otherwise) under the node ordering that
    lexicographically minimizes the sequence. Two graphs have equal codes
    iff they are isomorphic with identical labels — the same equivalence as
    {!Min_code.canonical_key}, computed by a completely different route,
    which makes the two implementations mutual cross-checks. Branch-and-
    bound over node orderings: exponential worst case, intended for
    pattern-sized graphs. Works on disconnected graphs too (unlike DFS
    codes). *)

val code : Tsg_graph.Graph.t -> int array
(** Minimal column-block code. *)

val key : Tsg_graph.Graph.t -> string
(** [code] serialized; equal iff isomorphic (labels included). *)

val same_class : Tsg_graph.Graph.t -> Tsg_graph.Graph.t -> bool
(** [key]-equality with cheap size prechecks. *)
