(** Minimum DFS codes: canonical forms and the gSpan canonicity test.

    The minimum DFS code of a connected labeled graph is built edge by edge,
    keeping every embedding of the current minimal prefix and choosing, at
    each step, the smallest extension under {!Dfs_code.compare_edge} over all
    surviving embeddings (backward extensions always beat forward ones;
    forward extensions from deeper rightmost-path anchors beat shallower
    ones; labels break ties). *)

val minimum : Tsg_graph.Graph.t -> Dfs_code.t
(** Minimum DFS code of a connected graph. The single-node graph yields the
    empty code; @raise Invalid_argument on disconnected or empty graphs. *)

val is_min : Dfs_code.t -> bool
(** Is this code the minimum code of the graph it spells? The test runs the
    incremental construction against the candidate and stops at the first
    smaller step, which makes it cheap for the rejected-duplicate case that
    dominates mining. The empty code is minimal. *)

val canonical_key : Tsg_graph.Graph.t -> string
(** Injective-on-isomorphism-classes key: the minimum code serialized to a
    string, prefixed by the node label for single-node graphs. Two connected
    graphs get equal keys iff they are isomorphic (labels included). *)
