module Graph = Tsg_graph.Graph

type embedding = int array
(* dfs index -> graph node *)

let mapped emb node = Array.exists (fun v -> v = node) emb

(* Incrementally build the minimum code of [g], calling [on_edge k e] after
   choosing the k-th edge; stop early when it returns [false]. *)
let fold_min g ~on_edge =
  let ecount = Graph.edge_count g in
  if Graph.node_count g = 0 then invalid_arg "Min_code: empty graph";
  if not (Graph.is_connected g) then
    invalid_arg "Min_code: graph must be connected";
  if ecount = 0 then ()
  else begin
    (* first edge: smallest (l_from, l_e, l_to) over both orientations *)
    let best = ref None in
    let consider u v le =
      let tuple = (Graph.node_label g u, le, Graph.node_label g v) in
      match !best with
      | None -> best := Some tuple
      | Some t -> if compare tuple t < 0 then best := Some tuple
    in
    Array.iter
      (fun (u, v, le) ->
        consider u v le;
        consider v u le)
      (Graph.edges g);
    let l0, le0, l1 = Option.get !best in
    let first =
      {
        Dfs_code.from_i = 0;
        to_i = 1;
        from_label = l0;
        edge_label = le0;
        to_label = l1;
      }
    in
    let embeddings = ref [] in
    let add_if u v le =
      if
        Graph.node_label g u = l0 && le = le0 && Graph.node_label g v = l1
      then embeddings := [| u; v |] :: !embeddings
    in
    Array.iter
      (fun (u, v, le) ->
        add_if u v le;
        add_if v u le)
      (Graph.edges g);
    let code = ref [ first ] in
    let continue_ = ref (on_edge 0 first) in
    let k = ref 1 in
    while !continue_ && !k < ecount do
      let prefix = Array.of_list (List.rev !code) in
      let rpath = Dfs_code.rightmost_path prefix in
      let r = List.hd rpath in
      let nodes_so_far = Dfs_code.node_count prefix in
      (* backward candidates: rightmost node to rightmost-path ancestors *)
      let back_targets =
        List.filter
          (fun i -> i <> r && not (Dfs_code.has_edge prefix r i))
          (List.sort compare (List.tl rpath))
      in
      let best_back = ref None in
      List.iter
        (fun (emb : embedding) ->
          List.iter
            (fun i ->
              match Graph.edge_label g emb.(r) emb.(i) with
              | Some le -> (
                match !best_back with
                | None -> best_back := Some (i, le)
                | Some (bi, ble) ->
                  if compare (i, le) (bi, ble) < 0 then best_back := Some (i, le))
              | None -> ())
            back_targets)
        !embeddings;
      let chosen =
        match !best_back with
        | Some (i, le) ->
          let edge =
            {
              Dfs_code.from_i = r;
              to_i = i;
              from_label = Dfs_code.label_of prefix r;
              edge_label = le;
              to_label = Dfs_code.label_of prefix i;
            }
          in
          let survivors =
            List.filter
              (fun (emb : embedding) ->
                Graph.edge_label g emb.(r) emb.(i) = Some le)
              !embeddings
          in
          Some (edge, survivors)
        | None ->
          (* forward: walk the rightmost path from the deep end; the first
             anchor with any candidate wins, labels break ties there *)
          let rec try_anchor = function
            | [] -> None
            | i :: rest ->
              let best_lab = ref None in
              List.iter
                (fun (emb : embedding) ->
                  Array.iter
                    (fun (w, le) ->
                      if not (mapped emb w) then begin
                        let lw = Graph.node_label g w in
                        match !best_lab with
                        | None -> best_lab := Some (le, lw)
                        | Some t -> if compare (le, lw) t < 0 then best_lab := Some (le, lw)
                      end)
                    (Graph.neighbors g emb.(i)))
                !embeddings;
              (match !best_lab with
              | None -> try_anchor rest
              | Some (le, lw) ->
                let edge =
                  {
                    Dfs_code.from_i = i;
                    to_i = nodes_so_far;
                    from_label = Dfs_code.label_of prefix i;
                    edge_label = le;
                    to_label = lw;
                  }
                in
                let survivors =
                  List.concat_map
                    (fun (emb : embedding) ->
                      Array.to_list (Graph.neighbors g emb.(i))
                      |> List.filter_map (fun (w, le') ->
                             if
                               le' = le
                               && (not (mapped emb w))
                               && Graph.node_label g w = lw
                             then Some (Array.append emb [| w |])
                             else None))
                    !embeddings
                in
                Some (edge, survivors))
          in
          try_anchor rpath
      in
      match chosen with
      | None -> assert false (* connected graph: some extension must exist *)
      | Some (edge, survivors) ->
        code := edge :: !code;
        embeddings := survivors;
        continue_ := on_edge !k edge;
        incr k
    done
  end

let minimum g =
  let acc = ref [] in
  fold_min g ~on_edge:(fun _ e ->
      acc := e :: !acc;
      true);
  Array.of_list (List.rev !acc)

exception Not_min

let is_min (code : Dfs_code.t) =
  if Array.length code = 0 then true
  else
    let g = Dfs_code.to_graph code in
    try
      fold_min g ~on_edge:(fun k e ->
          let c = Dfs_code.compare_edge e code.(k) in
          if c < 0 then raise Not_min
          else if c > 0 then
            (* impossible for a valid DFS code of the same graph *)
            assert false
          else true);
      true
    with Not_min -> false

let canonical_key g =
  if Graph.node_count g = 1 then
    Printf.sprintf "n%d" (Graph.node_label g 0)
  else
    let code = minimum g in
    let buf = Buffer.create (16 * Array.length code) in
    Array.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "%d,%d,%d,%d,%d;" e.Dfs_code.from_i e.to_i
             e.from_label e.edge_label e.to_label))
      code;
    Buffer.contents buf
