(** FSG-style level-wise frequent-subgraph miner.

    The paper notes that {e any} of the general-purpose miners (FSG, gSpan,
    FFSM) can be extended into Taxogram's Step 2; this is the breadth-first
    alternative, in the style of FSG (Kuramochi & Karypis, ICDM'01):
    level-k candidates are one-edge extensions of frequent (k-1)-edge
    patterns, deduplicated by canonical form, Apriori-pruned, and supported
    by explicit subgraph-isomorphism embedding enumeration.

    Produces exactly the same patterns (same {!Gspan.pattern} records, same
    embedding semantics) as {!Gspan.mine} — property-tested equal — while
    exhibiting the level-wise memory profile: all patterns of a level plus
    their embeddings are alive at once. *)

val mine :
  ?max_edges:int ->
  min_support:int ->
  Tsg_graph.Db.t ->
  (Gspan.pattern -> unit) ->
  unit
(** As {!Gspan.mine}; patterns arrive level by level (1-edge patterns
    first). The [code] field of reported patterns is the minimum DFS code
    of the pattern graph (whose node numbering may differ from the graph's —
    use [graph] and [embeddings], which agree with each other). *)

val mine_list :
  ?max_edges:int -> min_support:int -> Tsg_graph.Db.t -> Gspan.pattern list
