module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Bitset = Tsg_util.Bitset
module Subiso = Tsg_iso.Subiso

let embeddings_of db pattern =
  let out = ref [] in
  Db.iteri
    (fun gid target ->
      Subiso.iter_embeddings ~pattern ~target (fun map ->
          out := { Gspan.graph_id = gid; map = Array.copy map } :: !out))
    db;
  List.rev !out

let support_set db embeddings =
  let set = Bitset.create (Db.size db) in
  List.iter (fun e -> Bitset.set set e.Gspan.graph_id) embeddings;
  set

(* one-edge extensions over the frequent label vocabulary *)
let extensions graph ~node_labels ~edge_labels =
  let n = Graph.node_count graph in
  let labels = Graph.node_labels graph in
  let base = Array.to_list (Graph.edges graph) in
  let out = ref [] in
  List.iter
    (fun le ->
      for u = 0 to n - 1 do
        List.iter
          (fun a ->
            out :=
              Graph.build
                ~labels:(Array.append labels [| a |])
                ~edges:((u, n, le) :: base)
              :: !out)
          node_labels;
        for v = u + 1 to n - 1 do
          if not (Graph.has_edge graph u v) then
            out := Graph.build ~labels ~edges:((u, v, le) :: base) :: !out
        done
      done)
    edge_labels;
  !out

(* connected one-edge-removed subpatterns, for the Apriori check *)
let sub_patterns graph =
  let edges = Graph.edges graph in
  let out = ref [] in
  Array.iteri
    (fun drop _ ->
      let kept = ref [] in
      Array.iteri (fun i e -> if i <> drop then kept := e :: !kept) edges;
      let touched = Array.make (Graph.node_count graph) false in
      List.iter
        (fun (a, b, _) ->
          touched.(a) <- true;
          touched.(b) <- true)
        !kept;
      let nodes = ref [] in
      Array.iteri (fun i t -> if t then nodes := i :: !nodes) touched;
      let nodes = List.rev !nodes in
      if nodes <> [] then begin
        let remap = Hashtbl.create 8 in
        List.iteri (fun idx node -> Hashtbl.add remap node idx) nodes;
        let labels =
          Array.of_list
            (List.map (fun node -> Graph.node_label graph node) nodes)
        in
        let sub_edges =
          List.map
            (fun (a, b, l) -> (Hashtbl.find remap a, Hashtbl.find remap b, l))
            !kept
        in
        let sub = Graph.build ~labels ~edges:sub_edges in
        if Graph.is_connected sub then out := sub :: !out
      end)
    edges;
  !out

let distinct_edge_labels db =
  let seen = Hashtbl.create 16 in
  Db.iteri
    (fun _ g ->
      Array.iter
        (fun (_, _, l) -> Hashtbl.replace seen l ())
        (Graph.edges g))
    db;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) seen [])

let level_one db =
  let seen = Hashtbl.create 128 in
  Db.iteri
    (fun _ g ->
      Array.iter
        (fun (u, v, le) ->
          let lu = Graph.node_label g u and lv = Graph.node_label g v in
          let a, b = if lu <= lv then (lu, lv) else (lv, lu) in
          let cand = Graph.build ~labels:[| a; b |] ~edges:[ (0, 1, le) ] in
          let key = Min_code.canonical_key cand in
          if not (Hashtbl.mem seen key) then Hashtbl.add seen key cand)
        (Graph.edges g))
    db;
  Hashtbl.fold (fun key cand acc -> (key, cand) :: acc) seen []
  |> List.sort compare

let mine ?max_edges ~min_support db report =
  if min_support < 1 then
    invalid_arg "Level_miner.mine: min_support must be >= 1";
  let max_edges = Option.value ~default:max_int max_edges in
  if max_edges >= 1 then begin
    let node_labels = Gspan.frequent_labels ~min_support db in
    let edge_labels = distinct_edge_labels db in
    let evaluate (key, cand) =
      let embeddings = embeddings_of db cand in
      let set = support_set db embeddings in
      if Bitset.cardinal set >= min_support then
        Some (key, cand, embeddings, set)
      else None
    in
    let level = ref (List.filter_map evaluate (level_one db)) in
    let edge_count = ref 1 in
    while !level <> [] do
      List.iter
        (fun (_, cand, embeddings, set) ->
          report
            {
              Gspan.code = Min_code.minimum cand;
              graph = cand;
              support_set = set;
              support = Bitset.cardinal set;
              embeddings;
            })
        !level;
      if !edge_count >= max_edges then level := []
      else begin
        let freq_keys = Hashtbl.create 256 in
        List.iter (fun (key, _, _, _) -> Hashtbl.replace freq_keys key ()) !level;
        let seen = Hashtbl.create 1024 in
        let candidates = ref [] in
        List.iter
          (fun (_, parent, _, _) ->
            List.iter
              (fun cand ->
                let key = Min_code.canonical_key cand in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  let prunable =
                    List.exists
                      (fun sub ->
                        Graph.edge_count sub = !edge_count
                        && not
                             (Hashtbl.mem freq_keys
                                (Min_code.canonical_key sub)))
                      (sub_patterns cand)
                  in
                  if not prunable then candidates := (key, cand) :: !candidates
                end)
              (extensions parent ~node_labels ~edge_labels))
          !level;
        level := List.filter_map evaluate !candidates;
        incr edge_count
      end
    done
  end

let mine_list ?max_edges ~min_support db =
  let acc = ref [] in
  mine ?max_edges ~min_support db (fun p -> acc := p :: !acc);
  List.rev !acc
