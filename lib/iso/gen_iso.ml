module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Bitset = Tsg_util.Bitset

let spec taxonomy =
  {
    Matcher.node_ok =
      (fun pattern_label target_label ->
        Taxonomy.is_ancestor taxonomy ~anc:pattern_label target_label);
    edge_ok = ( = );
  }

let subgraph_isomorphic taxonomy ~pattern ~target =
  Matcher.exists (spec taxonomy) ~pattern ~target

let count_embeddings ?limit taxonomy ~pattern target =
  Matcher.count_embeddings ?limit (spec taxonomy) ~pattern ~target

let iter_embeddings ?limit taxonomy ~pattern ~target f =
  Matcher.iter_embeddings ?limit (spec taxonomy) ~pattern ~target f

let graph_isomorphic taxonomy g1 g2 =
  Matcher.exists_bijective (spec taxonomy) ~pattern:g1 ~target:g2

let support_count taxonomy ~pattern db =
  Db.fold
    (fun acc g ->
      if subgraph_isomorphic taxonomy ~pattern ~target:g then acc + 1 else acc)
    0 db

let support taxonomy ~pattern db =
  if Db.size db = 0 then 0.0
  else
    float_of_int (support_count taxonomy ~pattern db)
    /. float_of_int (Db.size db)

let support_set taxonomy ~pattern db =
  let set = Bitset.create (Db.size db) in
  Db.iteri
    (fun i g ->
      if subgraph_isomorphic taxonomy ~pattern ~target:g then Bitset.set set i)
    db;
  set
