(** Exact (label-equality) subgraph isomorphism. *)

val exists : pattern:Tsg_graph.Graph.t -> target:Tsg_graph.Graph.t -> bool

val count_embeddings :
  ?limit:int -> pattern:Tsg_graph.Graph.t -> Tsg_graph.Graph.t -> int
(** [count_embeddings ~pattern target]. *)

val iter_embeddings :
  ?limit:int ->
  pattern:Tsg_graph.Graph.t ->
  target:Tsg_graph.Graph.t ->
  (int array -> unit) ->
  unit

val isomorphic : Tsg_graph.Graph.t -> Tsg_graph.Graph.t -> bool
(** Exact graph isomorphism (same node and edge counts, bijection preserving
    labels and edges). *)

val support_count : pattern:Tsg_graph.Graph.t -> Tsg_graph.Db.t -> int
(** Number of database graphs containing at least one embedding. *)
