module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db

let spec = Matcher.equal_labels

let exists ~pattern ~target = Matcher.exists spec ~pattern ~target

let count_embeddings ?limit ~pattern target =
  Matcher.count_embeddings ?limit spec ~pattern ~target

let iter_embeddings ?limit ~pattern ~target f =
  Matcher.iter_embeddings ?limit spec ~pattern ~target f

let isomorphic a b =
  Graph.node_count a = Graph.node_count b
  && Graph.edge_count a = Graph.edge_count b
  && Matcher.exists_bijective spec ~pattern:a ~target:b

let support_count ~pattern db =
  Db.fold
    (fun acc g -> if exists ~pattern ~target:g then acc + 1 else acc)
    0 db
