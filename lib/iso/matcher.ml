module Graph = Tsg_graph.Graph

type spec = {
  node_ok : Tsg_graph.Label.id -> Tsg_graph.Label.id -> bool;
  edge_ok : Tsg_graph.Label.id -> Tsg_graph.Label.id -> bool;
}

let equal_labels = { node_ok = ( = ); edge_ok = ( = ) }

(* Static matching order: start from a max-degree node, then repeatedly pick
   an unplaced node adjacent to a placed one (highest degree first), falling
   back to any unplaced node for disconnected patterns. For each position we
   record the constraints against earlier positions. *)
type plan_step = {
  pnode : int;
  anchor : int option; (* earlier position whose image we expand from *)
  checks : (int * Tsg_graph.Label.id) list;
      (* (earlier position, required edge label) — includes the anchor *)
}

let plan pattern =
  let n = Graph.node_count pattern in
  let placed_pos = Array.make n (-1) in
  let order = Array.make n 0 in
  let chosen = Array.make n false in
  let pick_best candidates =
    List.fold_left
      (fun best v ->
        match best with
        | None -> Some v
        | Some b -> if Graph.degree pattern v > Graph.degree pattern b then Some v else best)
      None candidates
  in
  let unplaced_adjacent () =
    let cs = ref [] in
    for v = 0 to n - 1 do
      if not chosen.(v) then
        if Array.exists (fun (w, _) -> chosen.(w)) (Graph.neighbors pattern v)
        then cs := v :: !cs
    done;
    !cs
  in
  let any_unplaced () =
    let cs = ref [] in
    for v = 0 to n - 1 do
      if not chosen.(v) then cs := v :: !cs
    done;
    !cs
  in
  let steps = ref [] in
  for pos = 0 to n - 1 do
    let candidates =
      match unplaced_adjacent () with [] -> any_unplaced () | cs -> cs
    in
    let v = Option.get (pick_best candidates) in
    chosen.(v) <- true;
    placed_pos.(v) <- pos;
    order.(pos) <- v;
    let checks =
      Array.fold_left
        (fun acc (w, lbl) ->
          if chosen.(w) && placed_pos.(w) < pos then (placed_pos.(w), lbl) :: acc
          else acc)
        []
        (Graph.neighbors pattern v)
    in
    let anchor = match checks with [] -> None | (p, _) :: _ -> Some p in
    steps := { pnode = v; anchor; checks } :: !steps
  done;
  (order, Array.of_list (List.rev !steps))

exception Stop

let search ?limit spec ~pattern ~target ~bijective emit =
  let np = Graph.node_count pattern in
  let nt = Graph.node_count target in
  if bijective && np <> nt then ()
  else if np > nt then ()
  else if np = 0 then emit [||]
  else begin
    let _, steps = plan pattern in
    let image = Array.make np (-1) in (* position -> target node *)
    let used = Array.make nt false in
    let emitted = ref 0 in
    let assignment () =
      let a = Array.make np (-1) in
      Array.iteri (fun pos step -> a.(step.pnode) <- image.(pos)) steps;
      a
    in
    let feasible step tnode =
      (not used.(tnode))
      && spec.node_ok
           (Graph.node_label pattern step.pnode)
           (Graph.node_label target tnode)
      && List.for_all
           (fun (pos, plbl) ->
             match Graph.edge_label target tnode image.(pos) with
             | Some tlbl -> spec.edge_ok plbl tlbl
             | None -> false)
           step.checks
    in
    let rec extend pos =
      if pos = np then begin
        emit (assignment ());
        incr emitted;
        match limit with
        | Some l when !emitted >= l -> raise Stop
        | _ -> ()
      end
      else begin
        let step = steps.(pos) in
        let try_node tnode =
          if feasible step tnode then begin
            image.(pos) <- tnode;
            used.(tnode) <- true;
            extend (pos + 1);
            used.(tnode) <- false;
            image.(pos) <- -1
          end
        in
        match step.anchor with
        | Some apos ->
          Array.iter
            (fun (tnode, _) -> try_node tnode)
            (Graph.neighbors target image.(apos))
        | None ->
          for tnode = 0 to nt - 1 do
            try_node tnode
          done
      end
    in
    (try extend 0 with Stop -> ())
  end

let iter_embeddings ?limit spec ~pattern ~target f =
  search ?limit spec ~pattern ~target ~bijective:false f

let exists spec ~pattern ~target =
  let found = ref false in
  search ~limit:1 spec ~pattern ~target ~bijective:false (fun _ ->
      found := true);
  !found

let count_embeddings ?limit spec ~pattern ~target =
  let count = ref 0 in
  search ?limit spec ~pattern ~target ~bijective:false (fun _ -> incr count);
  !count

let exists_bijective spec ~pattern ~target =
  let found = ref false in
  search ~limit:1 spec ~pattern ~target ~bijective:true (fun _ ->
      found := true);
  !found
