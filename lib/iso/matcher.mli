(** Backtracking (sub)graph-isomorphism engine with pluggable label
    compatibility.

    This is the single matching core behind both exact subgraph isomorphism
    and the paper's {e generalized} subgraph isomorphism (where a pattern
    node labeled [l] may map to a target node whose label is [l] or any
    descendant of [l]). Matching is non-induced: every pattern edge must map
    to a target edge with a compatible label, extra target edges are
    allowed. Node mappings are injective. *)

type spec = {
  node_ok : Tsg_graph.Label.id -> Tsg_graph.Label.id -> bool;
      (** [node_ok pattern_label target_label] *)
  edge_ok : Tsg_graph.Label.id -> Tsg_graph.Label.id -> bool;
      (** [edge_ok pattern_label target_label] *)
}

val equal_labels : spec
(** Exact label equality on nodes and edges. *)

val exists : spec -> pattern:Tsg_graph.Graph.t -> target:Tsg_graph.Graph.t -> bool
(** Is there at least one subgraph-isomorphic embedding of [pattern] in
    [target]? The empty pattern embeds everywhere. *)

val iter_embeddings :
  ?limit:int ->
  spec ->
  pattern:Tsg_graph.Graph.t ->
  target:Tsg_graph.Graph.t ->
  (int array -> unit) ->
  unit
(** Call the function once per embedding with the assignment array
    (pattern node -> target node; the array is fresh per call). Distinct
    assignments are distinct embeddings even when they cover the same target
    nodes (automorphic images). Stops after [limit] embeddings if given. *)

val count_embeddings :
  ?limit:int ->
  spec -> pattern:Tsg_graph.Graph.t -> target:Tsg_graph.Graph.t -> int

val exists_bijective :
  spec -> pattern:Tsg_graph.Graph.t -> target:Tsg_graph.Graph.t -> bool
(** Generalized {e graph} isomorphism: a bijection of the node sets
    preserving edges in both directions with compatible labels. This is the
    paper's [IS_GEN_ISO] when used with a taxonomy-aware [spec]. *)
