(** Generalized (taxonomy-aware) isomorphism tests (paper Section 2).

    A pattern node labeled [l] matches a target node labeled [l'] when [l]
    is an ancestor of [l'] in the taxonomy (reflexively) — i.e. the pattern
    is the generalization, the database graph the specialization. Edge labels
    still compare exactly (the paper's taxonomy covers node labels only). *)

val spec : Tsg_taxonomy.Taxonomy.t -> Matcher.spec

val subgraph_isomorphic :
  Tsg_taxonomy.Taxonomy.t ->
  pattern:Tsg_graph.Graph.t ->
  target:Tsg_graph.Graph.t ->
  bool
(** [subgraph_isomorphic t ~pattern ~target]: is [target] generalized
    subgraph isomorphic to [pattern] — does [pattern] occur in [target]? *)

val count_embeddings :
  ?limit:int ->
  Tsg_taxonomy.Taxonomy.t ->
  pattern:Tsg_graph.Graph.t ->
  Tsg_graph.Graph.t ->
  int
(** [count_embeddings t ~pattern target]. *)

val iter_embeddings :
  ?limit:int ->
  Tsg_taxonomy.Taxonomy.t ->
  pattern:Tsg_graph.Graph.t ->
  target:Tsg_graph.Graph.t ->
  (int array -> unit) ->
  unit

val graph_isomorphic :
  Tsg_taxonomy.Taxonomy.t -> Tsg_graph.Graph.t -> Tsg_graph.Graph.t -> bool
(** The paper's [G1 IS_GEN_ISO G2]: a node bijection from [G1] to [G2] with
    every [G1] label an ancestor of its image's label and every [G1] edge
    mapped onto a [G2] edge. Not commutative. *)

val support_count :
  Tsg_taxonomy.Taxonomy.t -> pattern:Tsg_graph.Graph.t -> Tsg_graph.Db.t -> int
(** Number of database graphs in which [pattern] occurs (the numerator of
    the paper's support). *)

val support :
  Tsg_taxonomy.Taxonomy.t -> pattern:Tsg_graph.Graph.t -> Tsg_graph.Db.t -> float

val support_set :
  Tsg_taxonomy.Taxonomy.t ->
  pattern:Tsg_graph.Graph.t ->
  Tsg_graph.Db.t ->
  Tsg_util.Bitset.t
(** Bitset over graph indices — the paper's [GenSet]. *)
