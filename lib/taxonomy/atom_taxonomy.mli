(** The atom taxonomy for the PTE carcinogenicity dataset (paper Figure 4.1).

    Leaf-level letters are atom labels; upper levels are logical groupings of
    atoms by similarity. Lower-case letters stand for aromatic atoms,
    upper-case for non-aromatic ones. The paper's figure is reconstructed
    here: a single [Atom] root over aromatic/non-aromatic branches, with
    halogens, metals and non-metals grouped under the non-aromatic branch —
    24 atom labels, matching Table 1's "Dist. Label Count" for PTE. *)

val create : unit -> Taxonomy.t

val atom_labels : Taxonomy.t -> Tsg_graph.Label.id list
(** The leaf labels — the only ones that appear on molecule nodes. *)

val aromatic_labels : Taxonomy.t -> Tsg_graph.Label.id list

val organic_labels : Taxonomy.t -> Tsg_graph.Label.id list
(** C, H, O, N, S, P — the labels that dominate the molecules. *)
