(** Text serialization of taxonomies.

    Line format, one record per line:
    {v
    c <concept-name>
    i <child-name> <parent-name>
    v}

    Concept names must not contain whitespace. Artificial roots synthesized
    at build time are {e not} written: they are recreated by [parse]. *)

val to_string : Taxonomy.t -> string

val save : string -> Taxonomy.t -> unit

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Taxonomy.t
(** @raise Parse_error on malformed input (including unknown names, cycles,
    duplicates — reported with line 0 when structural). *)

val load : string -> Taxonomy.t
