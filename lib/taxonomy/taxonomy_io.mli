(** Text serialization of taxonomies.

    Line format, one record per line:
    {v
    c <concept-name>
    i <child-name> <parent-name>
    v}

    Concept names must not contain whitespace. Artificial roots synthesized
    at build time are {e not} written: they are recreated by [parse]. *)

val to_string : Taxonomy.t -> string

val save : string -> Taxonomy.t -> unit

exception Parse_error of Tsg_util.Diagnostic.t
(** Carries the offending file (when known), 1-based line, rule code and
    message. Parse-level problems use rule [TAX009]; structural problems
    rejected at build time use their lint rule codes ([TAX001]..[TAX005],
    see DESIGN.md). *)

(** {1 Raw form}

    The unvalidated content of a taxonomy file, with source line numbers —
    what the lint passes ({!Tsg_check.Check_taxonomy}) analyze, so that
    structurally-broken files (cycles, duplicates) can still be read and
    diagnosed precisely. *)

type raw = {
  decls : (string * int) list;  (** concept name, declaration line *)
  is_a : (string * string * int) list;  (** child, parent, line *)
}

val parse_raw : ?file:string -> string -> raw
(** Line-level parse only; performs no structural validation.
    @raise Parse_error (rule [TAX009]) on unrecognized lines. *)

val of_raw : ?file:string -> raw -> Taxonomy.t
(** Validate and build.
    @raise Parse_error with the first structural problem, located at its
    source line: duplicate declaration [TAX001], unknown name [TAX002],
    self is-a [TAX003], duplicate is-a [TAX004], cycle [TAX005]. *)

val parse : ?file:string -> string -> Taxonomy.t
(** [of_raw ?file (parse_raw ?file text)].
    @raise Parse_error on malformed input. *)

val load : string -> Taxonomy.t
(** @raise Parse_error (with the path as file) on malformed input. *)
