(** Graphviz DOT rendering of taxonomies (is-a edges point from child up to
    parent, drawn top-down). *)

val render : ?name:string -> ?highlight:Taxonomy.id list -> Taxonomy.t -> string
(** [highlight] labels are drawn filled — handy for showing which concepts a
    mined pattern covers. *)

val save :
  string -> ?name:string -> ?highlight:Taxonomy.id list -> Taxonomy.t -> unit
