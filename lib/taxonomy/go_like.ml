module Prng = Tsg_util.Prng

let paper_concepts = 7800

let paper_depth = 14

let generate ?(concepts = paper_concepts) ?(depth = paper_depth)
    ?(multi_parent_fraction = 0.15) rng =
  if concepts < 1 then invalid_arg "Go_like.generate: concepts must be >= 1";
  let widths = Synth_taxonomy.level_widths rng ~concepts ~depth in
  let depth = Array.length widths in
  let level_start = Array.make depth 0 in
  for lvl = 1 to depth - 1 do
    level_start.(lvl) <- level_start.(lvl - 1) + widths.(lvl - 1)
  done;
  let level_of = Array.make concepts 0 in
  for lvl = 0 to depth - 1 do
    for i = level_start.(lvl) to level_start.(lvl) + widths.(lvl) - 1 do
      level_of.(i) <- lvl
    done
  done;
  let node_at_level lvl = level_start.(lvl) + Prng.int rng widths.(lvl) in
  let edge_set = Hashtbl.create (4 * concepts) in
  let edges = ref [] in
  let add_edge child parent =
    if child <> parent && not (Hashtbl.mem edge_set (child, parent)) then begin
      Hashtbl.add edge_set (child, parent) ();
      edges := (child, parent) :: !edges
    end
  in
  for v = 1 to concepts - 1 do
    add_edge v (node_at_level (level_of.(v) - 1));
    (* GO terms are frequently multi-parent: add a second, possibly
       shallower, parent for a fraction of concepts *)
    if level_of.(v) >= 2 && Prng.bernoulli rng multi_parent_fraction then begin
      let parent_lvl = Prng.int rng level_of.(v) in
      add_edge v (node_at_level parent_lvl)
    end
  done;
  let go_name v = Printf.sprintf "GO:%07d" v in
  let names = List.init concepts go_name in
  let is_a = List.map (fun (c, p) -> (go_name c, go_name p)) !edges in
  Taxonomy.build ~names ~is_a

let scaled rng concepts = generate ~concepts rng
