module Label = Tsg_graph.Label
module Bitset = Tsg_util.Bitset

type id = Label.id

type t = {
  labels : Label.t;
  parents : id list array;
  children : id list array;
  anc : Bitset.t array; (* reflexive ancestor closure *)
  desc : Bitset.t array; (* reflexive descendant closure *)
  depth : int array;
  topo : id array; (* ancestors before descendants *)
  roots : id list;
  artificial_from : int; (* ids >= this were synthesized *)
}

let label_count t = Array.length t.parents

let relationship_count t =
  Array.fold_left (fun acc ps -> acc + List.length ps) 0 t.parents

let labels t = t.labels

let name t l = Label.name t.labels l

let id_of_name t n = Label.find_exn t.labels n

let is_artificial t l = l >= t.artificial_from

let parents t l = t.parents.(l)

let children t l = t.children.(l)

let roots t = t.roots

let is_root t l = t.parents.(l) = []

let is_leaf t l = t.children.(l) = []

let leaves t =
  let acc = ref [] in
  for l = label_count t - 1 downto 0 do
    if is_leaf t l then acc := l :: !acc
  done;
  !acc

let topological_order t = Array.copy t.topo

let is_ancestor t ~anc l = Bitset.mem t.anc.(l) anc

let ancestors t l = Bitset.to_list t.anc.(l)

let strict_ancestors t l = List.filter (fun a -> a <> l) (ancestors t l)

let ancestor_set t l = t.anc.(l)

let descendants t l = Bitset.to_list t.desc.(l)

let strict_descendants t l = List.filter (fun d -> d <> l) (descendants t l)

let descendant_set t l = t.desc.(l)

let depth t l = t.depth.(l)

let max_depth t = Array.fold_left max 0 t.depth

let level_count t = if label_count t = 0 then 0 else max_depth t + 1

let most_general t l =
  match List.filter (fun r -> Bitset.mem t.anc.(l) r) t.roots with
  | [ r ] -> r
  | [] -> l (* only possible when l is itself an isolated root *)
  | _ -> assert false (* build guarantees a unique root per label *)

let avg_strict_ancestors t =
  let n = label_count t in
  if n = 0 then 0.0
  else
    let total =
      Array.fold_left (fun acc s -> acc + Bitset.cardinal s - 1) 0 t.anc
    in
    float_of_int total /. float_of_int n

let restrict t ~keep l =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit c =
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      if keep c then out := c :: !out
      else List.iter visit t.children.(c)
    end
  in
  List.iter visit t.children.(l);
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "@[<v>taxonomy: %d labels, %d is-a edges, depth %d@,"
    (label_count t) (relationship_count t) (max_depth t);
  Array.iteri
    (fun l ps ->
      if ps <> [] then
        Format.fprintf ppf "  %s -> %s@," (name t l)
          (String.concat ", " (List.map (name t) ps)))
    t.parents;
  Format.fprintf ppf "@]"

(* --- construction ------------------------------------------------------- *)

(* Kahn's algorithm; raises on cycles. Orders ancestors before descendants,
   so we walk edges parent->child. *)
let topo_sort n children_of =
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter (fun c -> indeg.(c) <- indeg.(c) + 1) (children_of v)
  done;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    List.iter
      (fun c ->
        indeg.(c) <- indeg.(c) - 1;
        if indeg.(c) = 0 then Queue.add c queue)
      (children_of v)
  done;
  if !filled <> n then invalid_arg "Taxonomy.build: is-a graph has a cycle";
  order

module Union_find = struct
  let create n = Array.init n (fun i -> i)

  let rec find uf i = if uf.(i) = i then i else find uf uf.(i)

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then uf.(ri) <- rj
end

let build_ids ~labels ~is_a =
  let n0 = Label.size labels in
  let parents0 = Array.make n0 [] in
  let children0 = Array.make n0 [] in
  List.iter
    (fun (child, parent) ->
      if child < 0 || child >= n0 || parent < 0 || parent >= n0 then
        invalid_arg "Taxonomy.build_ids: label id out of range";
      if child = parent then
        invalid_arg "Taxonomy.build_ids: self is-a edge";
      if List.mem parent parents0.(child) then
        invalid_arg "Taxonomy.build_ids: duplicate is-a edge";
      parents0.(child) <- parent :: parents0.(child);
      children0.(parent) <- child :: children0.(parent))
    is_a;
  (* Wherever a label can reach several roots, merge those roots under one
     artificial ancestor so most-general ancestors are unique (paper §3
     step 1). Roots reachable from a common label are unioned. *)
  let topo0 = topo_sort n0 (fun v -> children0.(v)) in
  let root_ids0 =
    List.filter (fun v -> parents0.(v) = [])
      (List.init n0 (fun i -> i))
  in
  let root_index = Hashtbl.create 8 in
  List.iteri (fun i r -> Hashtbl.add root_index r i) root_ids0;
  let nroots = List.length root_ids0 in
  let root_sets = Array.init n0 (fun _ -> Bitset.create nroots) in
  Array.iter
    (fun v ->
      (match Hashtbl.find_opt root_index v with
      | Some i -> Bitset.set root_sets.(v) i
      | None -> ());
      List.iter
        (fun p -> Bitset.union_into ~dst:root_sets.(v) root_sets.(v) root_sets.(p))
        parents0.(v))
    topo0;
  let uf = Union_find.create nroots in
  Array.iter
    (fun s ->
      match Bitset.to_list s with
      | [] | [ _ ] -> ()
      | first :: rest -> List.iter (Union_find.union uf first) rest)
    root_sets;
  let groups = Hashtbl.create 8 in
  List.iteri
    (fun i r ->
      let rep = Union_find.find uf i in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups rep) in
      Hashtbl.replace groups rep (r :: existing))
    root_ids0;
  let multi_groups =
    (* sort: the synthetic <root:k> names must not depend on the hash
       order the union-find representatives happen to land in *)
    Hashtbl.fold
      (fun _ members acc ->
        match members with [] | [ _ ] -> acc | ms -> List.rev ms :: acc)
      groups []
    |> List.sort compare
  in
  let extra_edges = ref [] in
  List.iteri
    (fun k members ->
      let root_name = Printf.sprintf "<root:%d>" k in
      let root_id = Label.intern labels root_name in
      List.iter (fun m -> extra_edges := (m, root_id) :: !extra_edges) members)
    multi_groups;
  let n = Label.size labels in
  let parents = Array.make n [] in
  let children = Array.make n [] in
  let add (child, parent) =
    parents.(child) <- parent :: parents.(child);
    children.(parent) <- child :: children.(parent)
  in
  List.iter add is_a;
  List.iter add !extra_edges;
  for v = 0 to n - 1 do
    parents.(v) <- List.sort compare parents.(v);
    children.(v) <- List.sort compare children.(v)
  done;
  let topo = topo_sort n (fun v -> children.(v)) in
  let anc = Array.init n (fun _ -> Bitset.create n) in
  let depth = Array.make n 0 in
  Array.iter
    (fun v ->
      Bitset.set anc.(v) v;
      List.iter
        (fun p ->
          Bitset.union_into ~dst:anc.(v) anc.(v) anc.(p);
          depth.(v) <- max depth.(v) (depth.(p) + 1))
        parents.(v))
    topo;
  let desc = Array.init n (fun _ -> Bitset.create n) in
  for i = n - 1 downto 0 do
    let v = topo.(i) in
    Bitset.set desc.(v) v;
    List.iter
      (fun c -> Bitset.union_into ~dst:desc.(v) desc.(v) desc.(c))
      children.(v)
  done;
  let roots =
    List.filter (fun v -> parents.(v) = []) (List.init n (fun i -> i))
  in
  { labels; parents; children; anc; desc; depth; topo; roots;
    artificial_from = n0 }

let build ~names ~is_a =
  let labels = Label.of_names names in
  let resolve n =
    match Label.find labels n with
    | Some id -> id
    | None -> invalid_arg ("Taxonomy.build: unknown label " ^ n)
  in
  let is_a = List.map (fun (c, p) -> (resolve c, resolve p)) is_a in
  build_ids ~labels ~is_a
