(** Synthetic taxonomy generator (paper Section 4.1).

    The paper's generator is parameterized by taxonomy size (number of
    concepts and of relationships among them) and by taxonomy depth (number
    of levels). Concepts are arranged into levels; every non-root concept
    gets one tree parent on the previous level, and extra is-a relationships
    (up to the requested relationship count) connect concepts to additional
    parents on any strictly shallower level, making the result a DAG. *)

type params = {
  concepts : int;  (** number of labels, at least 1 *)
  relationships : int;
    (** total is-a edge target; at least [concepts - depth] tree edges are
        always created, extra edges are added up to this count *)
  depth : int;  (** number of levels, at least 1 *)
}

val default : params
(** 1000 concepts, 2000 relationships, depth 10 — the paper's Figure 4.5
    configuration. *)

val generate : Tsg_util.Prng.t -> params -> Taxonomy.t
(** Single-root taxonomy honouring [params] as closely as the shape allows
    (the relationship count is clamped to what a DAG of that size/depth can
    host). Concept names are ["c0" .. "cN"]. *)

val level_widths : Tsg_util.Prng.t -> concepts:int -> depth:int -> int array
(** The per-level concept counts used by {!generate}: level 0 holds the
    single root; remaining concepts spread over levels with a mild widening
    then narrowing profile, every level non-empty. Exposed for tests. *)
