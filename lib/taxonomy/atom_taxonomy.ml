let groupings =
  [
    ("Aromatic", "Atom");
    ("NonAromatic", "Atom");
    ("Halogen", "NonAromatic");
    ("Metal", "NonAromatic");
    ("NonMetal", "NonAromatic");
  ]

let aromatic = [ "c"; "n"; "o"; "s" ]

let halogens = [ "F"; "Cl"; "Br"; "I" ]

let metals = [ "Na"; "K"; "Ca"; "Zn"; "Cu"; "Pb"; "Sn"; "Ba" ]

let organic = [ "C"; "H"; "O"; "N"; "S"; "P" ]

let other_nonmetals = [ "As"; "Te" ]

let create () =
  let names =
    [ "Atom" ]
    @ List.map fst groupings
    @ aromatic @ halogens @ metals @ organic @ other_nonmetals
  in
  let leaf_edges =
    List.map (fun a -> (a, "Aromatic")) aromatic
    @ List.map (fun a -> (a, "Halogen")) halogens
    @ List.map (fun a -> (a, "Metal")) metals
    @ List.map (fun a -> (a, "NonMetal")) (organic @ other_nonmetals)
  in
  Taxonomy.build ~names ~is_a:(groupings @ leaf_edges)

let ids t names = List.map (Taxonomy.id_of_name t) names

let atom_labels t =
  ids t (aromatic @ halogens @ metals @ organic @ other_nonmetals)

let aromatic_labels t = ids t aromatic

let organic_labels t = ids t organic
