module Prng = Tsg_util.Prng

type params = { concepts : int; relationships : int; depth : int }

let default = { concepts = 1000; relationships = 2000; depth = 10 }

(* Level 0 is the single root. The remaining concepts are spread over levels
   1..depth-1 with weights that rise towards the middle levels and taper at
   the bottom, echoing ontology level-population profiles such as GO's. *)
let level_widths rng ~concepts ~depth =
  if concepts < 1 then invalid_arg "Synth_taxonomy: concepts must be >= 1";
  if depth < 1 then invalid_arg "Synth_taxonomy: depth must be >= 1";
  let depth = min depth concepts in
  let widths = Array.make depth 0 in
  widths.(0) <- (if depth = 1 then concepts else 1);
  let remaining = concepts - 1 in
  if depth > 1 then begin
    (* one concept per level to keep every level populated *)
    for lvl = 1 to depth - 1 do
      widths.(lvl) <- 1
    done;
    let spare = remaining - (depth - 1) in
    if spare > 0 then begin
      let weight lvl =
        let x = float_of_int lvl /. float_of_int (depth - 1) in
        0.25 +. (x *. (1.8 -. x))
      in
      let total = ref 0.0 in
      for lvl = 1 to depth - 1 do
        total := !total +. weight lvl
      done;
      let assigned = ref 0 in
      for lvl = 1 to depth - 1 do
        let share =
          int_of_float (float_of_int spare *. weight lvl /. !total)
        in
        widths.(lvl) <- widths.(lvl) + share;
        assigned := !assigned + share
      done;
      (* distribute rounding leftovers at random levels *)
      for _ = 1 to spare - !assigned do
        let lvl = 1 + Prng.int rng (depth - 1) in
        widths.(lvl) <- widths.(lvl) + 1
      done
    end
  end;
  widths

let generate rng { concepts; relationships; depth } =
  let widths = level_widths rng ~concepts ~depth in
  let depth = Array.length widths in
  let names = List.init concepts (fun i -> Printf.sprintf "c%d" i) in
  (* concept ids laid out level by level *)
  let level_start = Array.make depth 0 in
  for lvl = 1 to depth - 1 do
    level_start.(lvl) <- level_start.(lvl - 1) + widths.(lvl - 1)
  done;
  let level_of = Array.make concepts 0 in
  for lvl = 0 to depth - 1 do
    for i = level_start.(lvl) to level_start.(lvl) + widths.(lvl) - 1 do
      level_of.(i) <- lvl
    done
  done;
  let node_at_level lvl = level_start.(lvl) + Prng.int rng widths.(lvl) in
  let edges = ref [] in
  let edge_set = Hashtbl.create (2 * relationships) in
  let add_edge child parent =
    if child <> parent && not (Hashtbl.mem edge_set (child, parent)) then begin
      Hashtbl.add edge_set (child, parent) ();
      edges := (child, parent) :: !edges;
      true
    end
    else false
  in
  (* tree backbone: each concept below the root level gets a parent one
     level up (a depth-1 taxonomy is a flat label set with no edges) *)
  for v = 1 to concepts - 1 do
    if level_of.(v) >= 1 then
      ignore (add_edge v (node_at_level (level_of.(v) - 1)))
  done;
  let tree_edges = concepts - 1 in
  let wanted_extra = max 0 (relationships - tree_edges) in
  (* extra DAG edges: child at level >= 2 to a parent at any shallower level *)
  if depth > 2 then begin
    let added = ref 0 in
    let attempts = ref 0 in
    let max_attempts = 20 * (wanted_extra + 1) in
    while !added < wanted_extra && !attempts < max_attempts do
      incr attempts;
      let child_lvl = 2 + Prng.int rng (depth - 2) in
      if widths.(child_lvl) > 0 then begin
        let child = node_at_level child_lvl in
        let parent_lvl = Prng.int rng child_lvl in
        let parent = node_at_level parent_lvl in
        if add_edge child parent then incr added
      end
    done
  end;
  let names_idx v = Printf.sprintf "c%d" v in
  let is_a = List.map (fun (c, p) -> (names_idx c, names_idx p)) !edges in
  Taxonomy.build ~names ~is_a
