module Diagnostic = Tsg_util.Diagnostic

let to_string t =
  let buf = Buffer.create 4096 in
  for l = 0 to Taxonomy.label_count t - 1 do
    if not (Taxonomy.is_artificial t l) then
      Buffer.add_string buf (Printf.sprintf "c %s\n" (Taxonomy.name t l))
  done;
  for l = 0 to Taxonomy.label_count t - 1 do
    if not (Taxonomy.is_artificial t l) then
      List.iter
        (fun p ->
          if not (Taxonomy.is_artificial t p) then
            Buffer.add_string buf
              (Printf.sprintf "i %s %s\n" (Taxonomy.name t l)
                 (Taxonomy.name t p)))
        (Taxonomy.parents t l)
  done;
  Buffer.contents buf

(* .tax artifacts are inputs to every downstream stage: write them
   atomically so a crash mid-save cannot leave a truncated taxonomy *)
let save path t = Tsg_util.Safe_io.write_atomic path (to_string t)

exception Parse_error of Diagnostic.t

let fail ?file ?line rule fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Parse_error (Diagnostic.make ?file ?line ~rule Diagnostic.Error message)))
    fmt

type raw = {
  decls : (string * int) list;
  is_a : (string * string * int) list;
}

let parse_raw ?file text =
  let decls = ref [] in
  let edges = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun raw_line ->
         incr lineno;
         let line = String.trim raw_line in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | [ "c"; name ] -> decls := (name, !lineno) :: !decls
           | [ "i"; child; parent ] ->
             edges := (child, parent, !lineno) :: !edges
           | _ -> fail ?file ~line:!lineno "TAX009" "unrecognized line: %s" line);
  { decls = List.rev !decls; is_a = List.rev !edges }

let of_raw ?file raw =
  (* pre-check the conditions Taxonomy.build rejects, so the error carries
     the offending source line and a stable rule code *)
  let decl_lines = Hashtbl.create 64 in
  List.iter
    (fun (name, line) ->
      match Hashtbl.find_opt decl_lines name with
      | Some first ->
        fail ?file ~line "TAX001"
          "duplicate declaration of %s (first declared on line %d)" name first
      | None -> Hashtbl.add decl_lines name line)
    raw.decls;
  let seen_edges = Hashtbl.create 64 in
  List.iter
    (fun (child, parent, line) ->
      List.iter
        (fun name ->
          if not (Hashtbl.mem decl_lines name) then
            fail ?file ~line "TAX002" "unknown concept %s in is-a edge" name)
        [ child; parent ];
      if child = parent then
        fail ?file ~line "TAX003" "self is-a edge on %s" child;
      if Hashtbl.mem seen_edges (child, parent) then
        fail ?file ~line "TAX004" "duplicate is-a edge %s -> %s" child parent;
      Hashtbl.add seen_edges (child, parent) ())
    raw.is_a;
  try
    Taxonomy.build
      ~names:(List.map fst raw.decls)
      ~is_a:(List.map (fun (c, p, _) -> (c, p)) raw.is_a)
  with Invalid_argument msg ->
    (* only cycles remain possible after the pre-checks *)
    fail ?file "TAX005" "%s" msg

let parse ?file text = of_raw ?file (parse_raw ?file text)

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ~file:path text
