let to_string t =
  let buf = Buffer.create 4096 in
  for l = 0 to Taxonomy.label_count t - 1 do
    if not (Taxonomy.is_artificial t l) then
      Buffer.add_string buf (Printf.sprintf "c %s\n" (Taxonomy.name t l))
  done;
  for l = 0 to Taxonomy.label_count t - 1 do
    if not (Taxonomy.is_artificial t l) then
      List.iter
        (fun p ->
          if not (Taxonomy.is_artificial t p) then
            Buffer.add_string buf
              (Printf.sprintf "i %s %s\n" (Taxonomy.name t l)
                 (Taxonomy.name t p)))
        (Taxonomy.parents t l)
  done;
  Buffer.contents buf

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

exception Parse_error of int * string

let parse text =
  let names = ref [] in
  let edges = ref [] in
  let lineno = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.split_on_char ' ' line with
           | [ "c"; name ] -> names := name :: !names
           | [ "i"; child; parent ] -> edges := (child, parent) :: !edges
           | _ -> raise (Parse_error (!lineno, "unrecognized line: " ^ line)));
  try Taxonomy.build ~names:(List.rev !names) ~is_a:(List.rev !edges)
  with Invalid_argument msg -> raise (Parse_error (0, msg))

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text
