let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(name = "taxonomy") ?(highlight = []) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=BT;\n";
  for l = 0 to Taxonomy.label_count t - 1 do
    let attrs =
      if List.mem l highlight then
        " style=filled fillcolor=lightblue"
      else if Taxonomy.is_artificial t l then " style=dashed"
      else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  c%d [label=\"%s\"%s];\n" l
         (escape (Taxonomy.name t l))
         attrs)
  done;
  for l = 0 to Taxonomy.label_count t - 1 do
    List.iter
      (fun p -> Buffer.add_string buf (Printf.sprintf "  c%d -> c%d;\n" l p))
      (Taxonomy.parents t l)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path ?name ?highlight t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?name ?highlight t))
[@@tsg.allow "IO101"
  "dot renderings are disposable visualisation output, not pipeline \
   artifacts: a torn write costs a re-render, never a corrupt input"]
