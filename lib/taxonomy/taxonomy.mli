(** Label taxonomies: is-a hierarchies over node labels.

    A taxonomy [T(V_T, E_T, L_T, lambda_T)] per the paper's Section 2: a
    labeled DAG where an edge from [u] to [v] states that [v] is an ancestor
    (generalization) of [u], and the labeling is one-to-one and onto — so
    taxonomy nodes {e are} labels, and this module works directly over
    {!Tsg_graph.Label.id}s. Ancestorship is reflexive and transitive.

    When the input DAG has several roots and some label can reach more than
    one of them, artificial root labels are introduced at build time so that
    every label has a unique most general ancestor (Section 3, Step 1). *)

type id = Tsg_graph.Label.id

type t

(** {1 Construction} *)

val build : names:string list -> is_a:(string * string) list -> t
(** [build ~names ~is_a] where [is_a] lists [(child, parent)] pairs by name.
    Artificial roots (named ["<root:k>"]) are added where needed.
    @raise Invalid_argument on unknown names, duplicate names, duplicate
    edges, self edges, or cycles. *)

val build_ids :
  labels:Tsg_graph.Label.t -> is_a:(id * id) list -> t
(** As {!build} but over an existing label table (which may intern extra
    labels for artificial roots; the table is not copied). *)

(** {1 Size and naming} *)

val label_count : t -> int
(** Including artificial roots. *)

val relationship_count : t -> int
(** Number of is-a edges, including edges to artificial roots. *)

val labels : t -> Tsg_graph.Label.t

val name : t -> id -> string

val id_of_name : t -> string -> id
(** @raise Not_found on unknown names. *)

val is_artificial : t -> id -> bool
(** True for roots synthesized at build time. *)

(** {1 Structure} *)

val parents : t -> id -> id list
(** Direct generalizations (empty for roots). *)

val children : t -> id -> id list
(** Direct specializations. *)

val roots : t -> id list

val leaves : t -> id list

val is_root : t -> id -> bool

val is_leaf : t -> id -> bool

val topological_order : t -> id array
(** Every label appears after all of its ancestors. *)

(** {1 Ancestorship (reflexive)} *)

val is_ancestor : t -> anc:id -> id -> bool
(** [is_ancestor t ~anc l]: is [anc] an ancestor of [l]? Reflexive:
    [is_ancestor t ~anc:l l = true]. *)

val ancestors : t -> id -> id list
(** All ancestors including the label itself, ascending id order. *)

val strict_ancestors : t -> id -> id list

val ancestor_set : t -> id -> Tsg_util.Bitset.t
(** Shared bitset over label ids — do not mutate. Reflexive. *)

val descendants : t -> id -> id list
(** All descendants including the label itself. *)

val strict_descendants : t -> id -> id list

val descendant_set : t -> id -> Tsg_util.Bitset.t
(** Shared bitset — do not mutate. Reflexive. *)

val most_general : t -> id -> id
(** The unique most general ancestor (a root; unique thanks to artificial
    roots). Used by Taxogram's relabeling step. *)

val avg_strict_ancestors : t -> float
(** The paper's [d]: average number of (strict) ancestors per label. *)

(** {1 Depth} *)

val depth : t -> id -> int
(** Length of the longest path from the label's root(s); roots have depth 0. *)

val max_depth : t -> int

val level_count : t -> int
(** [max_depth + 1], the paper's "number of levels". *)

(** {1 Pruned views} *)

val restrict : t -> keep:(id -> bool) -> id -> id list
(** [restrict t ~keep l] lists the children of [l] in the taxonomy where
    labels failing [keep] are removed and their kept descendants are
    reattached to the nearest kept ancestors (paper Section 3, enhancement
    (b): removing a label reconnects each kept child to the removed label's
    parents). Results are distinct, and never include [l] itself. *)

val pp : Format.formatter -> t -> unit
