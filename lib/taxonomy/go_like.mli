(** Synthetic stand-in for the Gene Ontology molecular-function subontology.

    The paper uses GO molecular function (~7,800 concepts, 14 levels, DAG) as
    the label taxonomy for most synthetic-graph experiments and for the
    pathway study. The real ontology is not available offline, so this
    generator produces a taxonomy with GO-like shape: 14 levels, a population
    profile that peaks at mid depth, and a fraction of multi-parent concepts
    (GO terms frequently have 2+ parents).

    Concept names are ["GO:0000000" ...]-styled for recognisability. *)

val paper_concepts : int
(** 7800 — the concept count the paper quotes. *)

val paper_depth : int
(** 14 levels. *)

val generate :
  ?concepts:int -> ?depth:int -> ?multi_parent_fraction:float ->
  Tsg_util.Prng.t -> Taxonomy.t
(** Defaults: [concepts = paper_concepts], [depth = paper_depth],
    [multi_parent_fraction = 0.15]. *)

val scaled : Tsg_util.Prng.t -> int -> Taxonomy.t
(** [scaled rng concepts] keeps the 14-level GO shape at a smaller size
    (depth shrinks only when [concepts] cannot populate 14 levels). *)
