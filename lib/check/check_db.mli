(** Lint pass over graph-database files (rules [DB001]..[DB008]).

    Works on the {e raw} parse ({!Tsg_graph.Serial.raw_db}) so files
    {!Tsg_graph.Graph.build} would reject — dangling endpoints, self loops,
    duplicate edges — are still analyzed end to end with precise
    [file:line] locations.

    Rules (see DESIGN.md for the catalog):
    - [DB001] error: bad or duplicate node index within a graph
    - [DB002] error: edge endpoint never declared by a [v] line
    - [DB003] error: self loop
    - [DB004] error: duplicate edge (either endpoint order)
    - [DB005] error: node label that is not a taxonomy concept (only when
      a taxonomy is supplied)
    - [DB006] warning: graph with no nodes
    - [DB007] error: unrecognized or misplaced line
    - [DB008] info: database statistics (only with [~stats]) *)

val check_raw :
  Tsg_util.Diagnostic.collector ->
  ?file:string ->
  ?taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?stats:bool ->
  Tsg_graph.Serial.raw_db ->
  unit

val validate :
  Tsg_util.Diagnostic.collector ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  Tsg_graph.Db.t ->
  unit
(** In-memory counterpart for load-time validation (no source locations):
    every node-label id of every graph must be a taxonomy concept
    ([DB005]). Structural invariants are already enforced by
    {!Tsg_graph.Graph.build}. *)
