(** Cross-artifact lint passes (rules [X001]..[X003]).

    - [X001] warning: a pattern node label outside the taxonomy closure of
      the database's labels — no database node can specialize it, so the
      pattern can never match ({!check_closure})
    - [X002] error: a {!Tsg_query.Store} index disagrees with the pattern
      set it was built from ({!check_store})
    - [X003] error: a pattern's recorded support differs from its true
      generalized-isomorphism support against the database — brute force,
      opt-in via [tsg-lint --deep] ({!check_supports}) *)

val check_closure :
  Tsg_util.Diagnostic.collector ->
  ?file:string ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  db_labels:Tsg_util.Bitset.t ->
  node_labels:Tsg_graph.Label.t ->
  Tsg_core.Pattern_io.located list ->
  unit
(** [db_labels] is a bitset over taxonomy label ids of the labels that
    actually occur in the database(s). Pattern labels outside the taxonomy
    are [PAT007]'s business and are skipped here. *)

val check_store :
  Tsg_util.Diagnostic.collector -> Tsg_query.Store.t -> unit
(** Re-derive every index of the store from its own pattern array and
    compare: generalizing/mentioning membership per taxonomy label,
    edge-count buckets, and the support-sorted order. *)

val check_supports :
  Tsg_util.Diagnostic.collector ->
  ?file:string ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  db:Tsg_graph.Db.t ->
  Tsg_core.Pattern_io.located list ->
  unit
