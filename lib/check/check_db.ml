module Diagnostic = Tsg_util.Diagnostic
module Serial = Tsg_graph.Serial
module Label = Tsg_graph.Label
module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy

let check_raw c ?file ?taxonomy ?(stats = false) (raw : Serial.raw_db) =
  let error ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Error fmt
  in
  let warn ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Warning fmt
  in
  let info ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Info fmt
  in
  List.iter
    (fun (line, problem) -> error ~line "DB007" "%s" problem)
    raw.Serial.bad_lines;
  let known_label =
    match taxonomy with
    | None -> fun _ -> true
    | Some t ->
      let labels = Taxonomy.labels t in
      fun name -> Label.find labels name <> None
  in
  let unknown = Hashtbl.create 16 in
  let total_nodes = ref 0 in
  let total_edges = ref 0 in
  List.iteri
    (fun gid (g : Serial.raw_graph) ->
      if g.Serial.g_nodes = [] then
        warn ~line:g.Serial.g_line "DB006" "graph %d has no nodes" gid;
      let declared = Hashtbl.create 16 in
      List.iter
        (fun (node : Serial.raw_node) ->
          incr total_nodes;
          if node.Serial.v_index < 0 then
            error ~line:node.Serial.v_line "DB001"
              "graph %d: negative node index %d" gid node.Serial.v_index
          else if Hashtbl.mem declared node.Serial.v_index then
            error ~line:node.Serial.v_line "DB001"
              "graph %d: duplicate node %d" gid node.Serial.v_index
          else Hashtbl.add declared node.Serial.v_index ();
          if not (known_label node.Serial.v_label) then begin
            Hashtbl.replace unknown node.Serial.v_label ();
            error ~line:node.Serial.v_line "DB005"
              "graph %d: label %s is not a taxonomy concept" gid
              node.Serial.v_label
          end)
        g.Serial.g_nodes;
      let seen_edges = Hashtbl.create 16 in
      List.iter
        (fun (edge : Serial.raw_edge) ->
          incr total_edges;
          let u = edge.Serial.e_src and v = edge.Serial.e_dst in
          List.iter
            (fun endpoint ->
              if not (Hashtbl.mem declared endpoint) then
                error ~line:edge.Serial.e_line "DB002"
                  "graph %d: edge endpoint %d is not a declared node" gid
                  endpoint)
            (if u = v then [ u ] else [ u; v ]);
          if u = v then
            error ~line:edge.Serial.e_line "DB003"
              "graph %d: self loop on node %d" gid u
          else begin
            let key = (min u v, max u v) in
            if Hashtbl.mem seen_edges key then
              error ~line:edge.Serial.e_line "DB004"
                "graph %d: duplicate edge %d-%d" gid u v
            else Hashtbl.add seen_edges key ()
          end)
        g.Serial.g_edges)
    raw.Serial.graphs;
  if stats then begin
    let n = List.length raw.Serial.graphs in
    info "DB008" "%d graphs, %d nodes, %d edges%s" n !total_nodes !total_edges
      (if Hashtbl.length unknown > 0 then
         Printf.sprintf ", %d distinct unknown labels" (Hashtbl.length unknown)
       else "")
  end

let validate c ~taxonomy db =
  let known = Taxonomy.label_count taxonomy in
  let names = Taxonomy.labels taxonomy in
  Db.iteri
    (fun gid g ->
      Array.iter
        (fun l ->
          if l < 0 || l >= known then
            Diagnostic.emitf c ~rule:"DB005" Diagnostic.Error
              "graph %d uses label %s which is not in the taxonomy" gid
              (if l >= 0 && l < Label.size names then Label.name names l
               else string_of_int l))
        (Graph.node_labels g))
    db
