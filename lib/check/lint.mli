(** Driver for the multi-pass artifact linter (the engine behind
    [tsg-lint] and the load/save-time validation in [tsg-mine] and
    [tsg-serve]).

    Findings accumulate in a caller-supplied
    {!Tsg_util.Diagnostic.collector}; nothing here raises on malformed
    artifacts — parse failures become findings too. Pass order: taxonomy
    file first (later passes need it), then database files, then pattern
    files, then cross-artifact checks. Cross checks that need a clean
    prerequisite (e.g. the {!Tsg_query.Store} round-trip needs an
    error-free pattern set) are skipped when that prerequisite already has
    errors. *)

type result = {
  taxonomy : Tsg_taxonomy.Taxonomy.t option;
      (** built when the taxonomy file parsed and passed its checks *)
  db_count : int;  (** database files that parsed *)
  pattern_count : int;  (** patterns across all parsed pattern files *)
  wal_count : int;  (** write-ahead logs checked *)
}

val run :
  Tsg_util.Diagnostic.collector ->
  ?taxonomy:string ->
  ?dbs:string list ->
  ?patterns:string list ->
  ?wals:string list ->
  ?stats:bool ->
  ?deep:bool ->
  unit ->
  result
(** Lint the given artifact files. [wals] are write-ahead delta logs
    ({!Tsg_pipeline.Wal.validate}: [WAL001] bad magic/version, [WAL002]
    corruption — a torn tail is only a warning, recovery repairs it —
    [WAL003] sequence order). [stats] adds info-level statistics findings
    ([TAX008]/[DB008]/[PAT008]); [deep] additionally recomputes every
    pattern's support against the database(s) by brute force ([X003] —
    needs a taxonomy and at least one database). Unreadable files yield
    an [IO001] error finding. *)
