module Diagnostic = Tsg_util.Diagnostic
module Bitset = Tsg_util.Bitset
module Label = Tsg_graph.Label
module Graph = Tsg_graph.Graph
module Serial = Tsg_graph.Serial
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io
module Pattern_io = Tsg_core.Pattern_io
module Store = Tsg_query.Store

type result = {
  taxonomy : Taxonomy.t option;
  db_count : int;
  pattern_count : int;
  wal_count : int;
}

let read_file c path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Some text
  | exception Sys_error msg ->
    Diagnostic.emitf c ~file:path ~rule:"IO001" Diagnostic.Error
      "cannot read file: %s" msg;
    None

(* a label table aligned with the taxonomy's ids but owned by the lint run,
   so parsing artifacts never interns stray names into the live taxonomy *)
let shadow_labels taxonomy =
  Label.of_names (Array.to_list (Label.names (Taxonomy.labels taxonomy)))

let run c ?taxonomy:tax_path ?(dbs = []) ?(patterns = []) ?(wals = [])
    ?(stats = false) ?(deep = false) () =
  (* 1. taxonomy *)
  let taxonomy =
    match tax_path with
    | None -> None
    | Some path -> (
      match read_file c path with
      | None -> None
      | Some text -> (
        match Taxonomy_io.parse_raw ~file:path text with
        | exception Taxonomy_io.Parse_error d -> (
          Diagnostic.emit c d;
          None)
        | raw ->
          let before = Diagnostic.error_count c in
          Check_taxonomy.check_raw c ~file:path ~stats raw;
          if Diagnostic.error_count c > before then None
          else (
            match Taxonomy_io.of_raw ~file:path raw with
            | t -> Some t
            | exception Taxonomy_io.Parse_error d ->
              (* the lint pass mirrors of_raw's checks, so this is
                 unreachable barring a bug — surface it rather than hide *)
              Diagnostic.emit c d;
              None)))
  in
  (* 2. databases: raw line-level pass, then a real parse for cross checks *)
  let db_labels =
    Option.map (fun t -> Bitset.create (Taxonomy.label_count t)) taxonomy
  in
  (* one edge-label table across every artifact of this run, so edge-label
     ids agree between databases and pattern sets (X003 compares them) *)
  let edge_labels = Label.create () in
  let parsed_dbs = ref [] in
  List.iter
    (fun path ->
      match read_file c path with
      | None -> ()
      | Some text ->
        let raw = Serial.parse_db_raw text in
        let before = Diagnostic.error_count c in
        Check_db.check_raw c ~file:path ?taxonomy ~stats raw;
        if Diagnostic.error_count c = before then begin
          match taxonomy with
          | None -> ()
          | Some t -> (
            let node_labels = shadow_labels t in
            match Serial.parse_db ~node_labels ~edge_labels text with
            | db ->
              parsed_dbs := (path, db) :: !parsed_dbs;
              let known = Taxonomy.label_count t in
              Option.iter
                (fun set ->
                  Db.iteri
                    (fun _ g ->
                      Array.iter
                        (fun l -> if l >= 0 && l < known then Bitset.set set l)
                        (Graph.node_labels g))
                    db)
                db_labels
            | exception Serial.Parse_error (line, msg) ->
              Diagnostic.emitf c ~file:path ~line ~rule:"DB007"
                Diagnostic.Error "%s" msg)
        end)
    dbs;
  let parsed_dbs = List.rev !parsed_dbs in
  (* 3. pattern sets *)
  let pattern_count = ref 0 in
  List.iter
    (fun path ->
      match read_file c path with
      | None -> ()
      | Some text -> (
        let node_labels =
          match taxonomy with
          | Some t -> shadow_labels t
          | None -> Label.create ()
        in
        match
          Pattern_io.parse_located ~file:path ~node_labels ~edge_labels text
        with
        | exception Pattern_io.Parse_error d -> Diagnostic.emit c d
        | located, db_size ->
          pattern_count := !pattern_count + List.length located;
          let before = Diagnostic.error_count c in
          Check_patterns.check_located c ~file:path ?taxonomy ~stats
            ~node_labels ~edge_labels located;
          (* 4. cross-artifact checks, on sets with no errors of their own *)
          match taxonomy with
          | None -> ()
          | Some t when Diagnostic.error_count c = before ->
            (* closure needs every database's labels on board — skip when
               any db file failed to read or parse *)
            Option.iter
              (fun set ->
                if dbs <> [] && List.length parsed_dbs = List.length dbs then
                  Check_cross.check_closure c ~file:path ~taxonomy:t
                    ~db_labels:set ~node_labels located)
              db_labels;
            let pats = List.map (fun l -> l.Pattern_io.pattern) located in
            (match Store.build ~taxonomy:t ~db_size pats with
            | store -> Check_cross.check_store c store
            | exception Invalid_argument msg ->
              Diagnostic.emitf c ~file:path ~rule:"X002" Diagnostic.Error
                "store construction failed: %s" msg);
            if deep then
              List.iter
                (fun (_, db) ->
                  Check_cross.check_supports c ~file:path ~taxonomy:t ~db
                    located)
                parsed_dbs
          | Some _ -> ()))
    patterns;
  (* 5. write-ahead delta logs (framing, checksums, sequence order) *)
  List.iter (Tsg_pipeline.Wal.validate c) wals;
  {
    taxonomy;
    db_count = List.length parsed_dbs;
    pattern_count = !pattern_count;
    wal_count = List.length wals;
  }
