module Diagnostic = Tsg_util.Diagnostic
module Bitset = Tsg_util.Bitset
module Graph = Tsg_graph.Graph
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Gen_iso = Tsg_iso.Gen_iso
module Pattern = Tsg_core.Pattern
module Pattern_io = Tsg_core.Pattern_io
module Store = Tsg_query.Store

let check_closure c ?file ~taxonomy ~db_labels ~node_labels located =
  let known = Taxonomy.label_count taxonomy in
  List.iteri
    (fun i (l : Pattern_io.located) ->
      let g = l.Pattern_io.pattern.Pattern.graph in
      List.iter
        (fun label ->
          if label >= 0 && label < known then begin
            let matchable =
              Bitset.exists
                (fun d -> Bitset.mem db_labels d)
                (Taxonomy.descendant_set taxonomy label)
            in
            if not matchable then
              Diagnostic.emitf c ?file ~line:l.Pattern_io.header_line
                ~rule:"X001" Diagnostic.Warning
                "pattern #%d: no database label specializes %s — the pattern \
                 can never match"
                i
                (Label.name node_labels label)
          end)
        (Graph.distinct_node_labels g))
    located

let check_store c store =
  let error fmt = Diagnostic.emitf c ~rule:"X002" Diagnostic.Error fmt in
  let taxonomy = Store.taxonomy store in
  let known = Taxonomy.label_count taxonomy in
  let n = Store.size store in
  let patterns = Store.patterns store in
  if Array.length patterns <> n then
    error "store size %d but %d patterns" n (Array.length patterns);
  (* distinct node labels per pattern, for re-deriving the label indexes *)
  let labels_of =
    Array.map
      (fun (p : Pattern.t) ->
        List.filter
          (fun l -> l >= 0 && l < known)
          (Graph.distinct_node_labels p.Pattern.graph))
      patterns
  in
  for l = 0 to known - 1 do
    let expect_gen = Bitset.create n in
    let expect_men = Bitset.create n in
    Array.iteri
      (fun i ls ->
        List.iter
          (fun pl ->
            (* pattern i generalizes l when pl is an ancestor of l;
               it mentions (a specialization of) l when pl descends from l *)
            if Taxonomy.is_ancestor taxonomy ~anc:pl l then
              Bitset.set expect_gen i;
            if Taxonomy.is_ancestor taxonomy ~anc:l pl then
              Bitset.set expect_men i)
          ls)
      labels_of;
    if not (Bitset.equal (Store.generalizing store l) expect_gen) then
      error "generalizing index disagrees at label %s"
        (Taxonomy.name taxonomy l);
    if not (Bitset.equal (Store.mentioning store l) expect_men) then
      error "mentioning index disagrees at label %s" (Taxonomy.name taxonomy l)
  done;
  (* edge-count buckets *)
  Array.iteri
    (fun i (p : Pattern.t) ->
      let e = Pattern.edge_count p in
      if not (Bitset.mem (Store.with_at_most_edges store e) i) then
        error "pattern #%d (%d edges) missing from its edge bucket" i e;
      if e > 0 && Bitset.mem (Store.with_at_most_edges store (e - 1)) i then
        error "pattern #%d (%d edges) present in bucket %d" i e (e - 1))
    patterns;
  (* support order: a permutation of 0..n-1, support non-increasing *)
  let order = Store.by_support store in
  if Array.length order <> n then
    error "by_support has %d entries for %d patterns" (Array.length order) n
  else begin
    let seen = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n then error "by_support mentions bad id %d" i
        else if seen.(i) then error "by_support repeats id %d" i
        else seen.(i) <- true)
      order;
    for k = 0 to Array.length order - 2 do
      let a = order.(k) and b = order.(k + 1) in
      if
        a >= 0 && a < n && b >= 0 && b < n
        && patterns.(a).Pattern.support_count
           < patterns.(b).Pattern.support_count
      then
        error "by_support not sorted: #%d (support %d) before #%d (support %d)"
          a
          patterns.(a).Pattern.support_count
          b
          patterns.(b).Pattern.support_count
    done
  end

let check_supports c ?file ~taxonomy ~db located =
  List.iteri
    (fun i (l : Pattern_io.located) ->
      let p = l.Pattern_io.pattern in
      let actual =
        Gen_iso.support_count taxonomy ~pattern:p.Pattern.graph db
      in
      if actual <> p.Pattern.support_count then
        Diagnostic.emitf c ?file ~line:l.Pattern_io.header_line ~rule:"X003"
          Diagnostic.Error
          "pattern #%d records support %d but %d database graphs contain it" i
          p.Pattern.support_count actual)
    located
