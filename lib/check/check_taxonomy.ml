module Diagnostic = Tsg_util.Diagnostic
module Bitset = Tsg_util.Bitset
module Taxonomy_io = Tsg_taxonomy.Taxonomy_io

let check_raw c ?file ?(stats = false) (raw : Taxonomy_io.raw) =
  let error ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Error fmt
  in
  let warn ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Warning fmt
  in
  let info ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Info fmt
  in
  (* declarations: dense ids for the first occurrence of every name *)
  let ids = Hashtbl.create 64 in
  let rev_names = ref [] in
  let count = ref 0 in
  List.iter
    (fun (name, line) ->
      match Hashtbl.find_opt ids name with
      | Some (_, first) ->
        error ~line "TAX001" "duplicate declaration of %s (first on line %d)"
          name first
      | None ->
        Hashtbl.add ids name (!count, line);
        rev_names := name :: !rev_names;
        incr count)
    raw.Taxonomy_io.decls;
  let n = !count in
  let names = Array.of_list (List.rev !rev_names) in
  (* edges over known, distinct endpoints; duplicates and self edges are
     reported and then dropped so the structural passes see a simple DAG
     candidate *)
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  List.iter
    (fun (child, parent, line) ->
      let resolve name =
        match Hashtbl.find_opt ids name with
        | Some (id, _) -> Some id
        | None ->
          error ~line "TAX002" "unknown concept %s in is-a edge" name;
          None
      in
      match (resolve child, resolve parent) with
      | Some cid, Some pid ->
        if cid = pid then error ~line "TAX003" "self is-a edge on %s" child
        else if Hashtbl.mem seen (cid, pid) then
          error ~line "TAX004" "duplicate is-a edge %s -> %s" child parent
        else begin
          Hashtbl.add seen (cid, pid) ();
          edges := (cid, pid, line) :: !edges
        end
      | _ -> ())
    raw.Taxonomy_io.is_a;
  let edges = List.rev !edges in
  let parents = Array.make n [] in
  let children = Array.make n [] in
  List.iter
    (fun (cid, pid, _) ->
      parents.(cid) <- pid :: parents.(cid);
      children.(pid) <- cid :: children.(pid))
    edges;
  (* acyclicity: Kahn's algorithm peeling childless nodes upward; whatever
     survives lies on or above a cycle, and every surviving node keeps at
     least one surviving child, so a child-walk from any survivor must
     revisit a node — a concrete cycle witness *)
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun p -> indeg.(p) <- indeg.(p) + 1)) parents;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let processed = Array.make n false in
  let processed_count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    processed.(v) <- true;
    incr processed_count;
    List.iter
      (fun p ->
        indeg.(p) <- indeg.(p) - 1;
        if indeg.(p) = 0 then Queue.add p queue)
      parents.(v)
  done;
  let acyclic = !processed_count = n in
  if not acyclic then begin
    let start = ref (-1) in
    for v = n - 1 downto 0 do
      if not processed.(v) then start := v
    done;
    let visited = Array.make n false in
    let rec walk v trail =
      if visited.(v) then (v, trail)
      else begin
        visited.(v) <- true;
        match List.find_opt (fun ch -> not processed.(ch)) children.(v) with
        | Some ch -> walk ch (v :: trail)
        | None -> assert false
      end
    in
    let repeat, trail = walk !start [] in
    (* trail is the child-walk newest-first; the segment down to [repeat]
       is the cycle. Child steps run against is-a edges, so newest-first
       order spells the witness in is-a (child -> parent) direction. *)
    let rec take acc = function
      | [] -> acc
      | v :: rest -> if v = repeat then v :: acc else take (v :: acc) rest
    in
    let cycle = repeat :: List.rev (take [] trail) in
    let witness = String.concat " -> " (List.map (fun v -> names.(v)) cycle) in
    let line =
      match cycle with
      | first :: second :: _ ->
        List.find_map
          (fun (cid, pid, line) ->
            if cid = first && pid = second then Some line else None)
          edges
      | _ -> None
    in
    error ?line "TAX005" "is-a cycle: %s" witness
  end;
  (* isolated concepts *)
  if n > 1 then
    for v = 0 to n - 1 do
      if parents.(v) = [] && children.(v) = [] then begin
        let line = snd (Hashtbl.find ids names.(v)) in
        warn ~line "TAX007" "isolated concept %s (no is-a edge)" names.(v)
      end
    done;
  if acyclic && n > 0 then begin
    (* ancestors-first topological order (Kahn again, parent -> child) *)
    let indeg2 = Array.make n 0 in
    Array.iter (List.iter (fun c -> indeg2.(c) <- indeg2.(c) + 1)) children;
    let q = Queue.create () in
    for v = 0 to n - 1 do
      if indeg2.(v) = 0 then Queue.add v q
    done;
    let topo = Array.make n (-1) in
    let filled = ref 0 in
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      topo.(!filled) <- v;
      incr filled;
      List.iter
        (fun ch ->
          indeg2.(ch) <- indeg2.(ch) - 1;
          if indeg2.(ch) = 0 then Queue.add ch q)
        children.(v)
    done;
    (* single-root reachability (paper Section 3, Step 1) *)
    let roots = List.filter (fun v -> parents.(v) = []) (List.init n Fun.id) in
    let nroots = List.length roots in
    if nroots > 1 then begin
      let index = Hashtbl.create 8 in
      List.iteri (fun i r -> Hashtbl.add index r i) roots;
      let sets = Array.init n (fun _ -> Bitset.create nroots) in
      Array.iter
        (fun v ->
          (match Hashtbl.find_opt index v with
          | Some i -> Bitset.set sets.(v) i
          | None -> ());
          List.iter
            (fun p -> Bitset.union_into ~dst:sets.(v) sets.(v) sets.(p))
            parents.(v))
        topo;
      let multi =
        Array.fold_left
          (fun acc s -> if Bitset.cardinal s > 1 then acc + 1 else acc)
          0 sets
      in
      if multi > 0 then
        info "TAX006"
          "%d concept%s can reach more than one root; artificial roots will \
           be synthesized at build time"
          multi
          (if multi = 1 then "" else "s")
    end;
    if stats then begin
      let depth = Array.make n 0 in
      Array.iter
        (fun v ->
          List.iter
            (fun ch -> depth.(ch) <- max depth.(ch) (depth.(v) + 1))
            children.(v))
        topo;
      let max_depth = Array.fold_left max 0 depth in
      let max_fanout =
        Array.fold_left (fun acc cs -> max acc (List.length cs)) 0 children
      in
      info "TAX008"
        "%d concepts, %d is-a edges, %d roots, depth %d, max fanout %d" n
        (List.length edges) (List.length roots) max_depth max_fanout
    end
  end
