(** Lint pass over taxonomy files (rules [TAX001]..[TAX008]).

    Works on the {e raw} parse ({!Tsg_taxonomy.Taxonomy_io.raw}) so that
    files {!Tsg_taxonomy.Taxonomy.build} would reject — cycles, duplicates,
    unknown names — are still analyzed end to end, and every finding
    carries the offending source line.

    Rules (see DESIGN.md for the catalog):
    - [TAX001] error: duplicate concept declaration
    - [TAX002] error: is-a edge over an undeclared concept
    - [TAX003] error: self is-a edge
    - [TAX004] error: duplicate is-a edge
    - [TAX005] error: is-a cycle (message carries a cycle witness)
    - [TAX006] info: labels reaching several roots (artificial roots will
      be synthesized at build time, paper Section 3 Step 1)
    - [TAX007] warning: isolated concept (no is-a edge at all)
    - [TAX008] info: size/depth/fanout statistics (only with [~stats]) *)

val check_raw :
  Tsg_util.Diagnostic.collector ->
  ?file:string ->
  ?stats:bool ->
  Tsg_taxonomy.Taxonomy_io.raw ->
  unit
