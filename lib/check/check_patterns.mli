(** Lint pass over mined pattern sets (rules [PAT001]..[PAT008]).

    Patterns are analyzed after parsing ({!Tsg_core.Pattern_io}); findings
    anchor to each pattern's [p]-header line when the set came from a file.

    Rules (see DESIGN.md for the catalog):
    - [PAT001] error: pattern graph is not connected
    - [PAT002] error: node numbering is not the minimum-DFS-code order
      ({!Tsg_gspan.Min_code}) — canonical form is what makes
      isomorphism-dedup a string comparison
    - [PAT003] error: duplicate pattern (isomorphic with equal labels)
    - [PAT004] error: support monotonicity violated — a generalization
      recorded with {e smaller} support than one of its specializations
      (impossible: [GenSet(spec) ⊆ GenSet(gen)], paper Lemma 7)
    - [PAT005] warning: over-generalization residue — a strict
      generalization with support {e equal} to a specialization's should
      have been eliminated by the paper's equal-support rule
    - [PAT006] error: headers disagree on the database size
    - [PAT007] error: node label that is not a taxonomy concept (only when
      a taxonomy is supplied)
    - [PAT008] info: pattern-set statistics (only with [~stats])

    The pairwise rules ([PAT003]..[PAT005]) compare patterns under
    generalized graph isomorphism ({!Tsg_iso.Gen_iso.graph_isomorphic}),
    so they subsume single-node-relabeling generalizations. *)

val check_located :
  Tsg_util.Diagnostic.collector ->
  ?file:string ->
  ?taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?stats:bool ->
  node_labels:Tsg_graph.Label.t ->
  edge_labels:Tsg_graph.Label.t ->
  Tsg_core.Pattern_io.located list ->
  unit
(** [edge_labels] must be the table the set was parsed with — [PAT002]
    compares against {!Tsg_core.Pattern_io.canonical_form}, whose node
    order is defined over edge-label {e names}. *)

val validate :
  Tsg_util.Diagnostic.collector ->
  ?taxonomy:Tsg_taxonomy.Taxonomy.t ->
  node_labels:Tsg_graph.Label.t ->
  db_size:int ->
  Tsg_core.Pattern.t list ->
  unit
(** In-memory counterpart for save-time validation (no source locations;
    patterns are identified by position). [PAT002] is not applied:
    in-memory pattern graphs carry their pattern-class numbering and are
    canonicalized by {!Tsg_core.Pattern_io} on write. *)
