module Diagnostic = Tsg_util.Diagnostic
module Graph = Tsg_graph.Graph
module Label = Tsg_graph.Label
module Taxonomy = Tsg_taxonomy.Taxonomy
module Gen_iso = Tsg_iso.Gen_iso
module Pattern = Tsg_core.Pattern
module Pattern_io = Tsg_core.Pattern_io

(* shared worker: [line] is None for in-memory validation, and [canonical]
   carries the edge-label table when PAT002 applies — the canonical form is
   name-ranked ({!Pattern_io.canonical_form}), meaningless before
   Pattern_io canonicalizes on write *)
let check_all c ?file ?taxonomy ~stats ~canonical ~node_labels
    (entries : (Pattern.t * int option) array) =
  let error ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Error fmt
  in
  let warn ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Warning fmt
  in
  let info ?line rule fmt =
    Diagnostic.emitf c ?file ?line ~rule Diagnostic.Info fmt
  in
  let n = Array.length entries in
  let known_count =
    match taxonomy with
    | Some t -> Taxonomy.label_count t
    | None -> Label.size node_labels
  in
  let connected = Array.make n false in
  let keys = Array.make n None in
  Array.iteri
    (fun i ((p : Pattern.t), line) ->
      let g = p.Pattern.graph in
      connected.(i) <- Graph.is_connected g;
      if not connected.(i) then
        error ?line "PAT001" "pattern #%d is not connected" i
      else begin
        keys.(i) <- Some (Pattern.key p);
        match canonical with
        | Some edge_labels
          when Graph.node_count g > 1
               && not (Graph.equal (Pattern_io.canonical_form ~edge_labels g) g)
          ->
          error ?line "PAT002"
            "pattern #%d: node numbering is not minimum-DFS-code canonical" i
        | _ -> ()
      end;
      if taxonomy <> None then
        List.iter
          (fun l ->
            if l < 0 || l >= known_count then
              error ?line "PAT007"
                "pattern #%d: label %s is not a taxonomy concept" i
                (if l >= 0 && l < Label.size node_labels then
                   Label.name node_labels l
                 else string_of_int l))
          (Graph.distinct_node_labels g))
    entries;
  (* pairwise rules, cut down by node/edge counts before the iso tests *)
  for i = 0 to n - 1 do
    let pi, line_i = entries.(i) in
    let gi = pi.Pattern.graph in
    for j = i + 1 to n - 1 do
      let pj, line_j = entries.(j) in
      let gj = pj.Pattern.graph in
      if
        Graph.node_count gi = Graph.node_count gj
        && Graph.edge_count gi = Graph.edge_count gj
      then begin
        let duplicate =
          match (keys.(i), keys.(j)) with
          | Some a, Some b -> a = b
          | _ -> false
        in
        if duplicate then
          error ?line:line_j "PAT003" "pattern #%d duplicates pattern #%d" j i
        else
          match taxonomy with
          | None -> ()
          | Some tax ->
            let report gen_idx gen_line spec_idx (gen : Pattern.t)
                (spec : Pattern.t) =
              if gen.Pattern.support_count < spec.Pattern.support_count then
                error ?line:gen_line "PAT004"
                  "pattern #%d generalizes pattern #%d but records smaller \
                   support (%d < %d)"
                  gen_idx spec_idx gen.Pattern.support_count
                  spec.Pattern.support_count
              else if gen.Pattern.support_count = spec.Pattern.support_count
              then
                warn ?line:gen_line "PAT005"
                  "pattern #%d is over-generalized: specialization #%d has \
                   equal support %d"
                  gen_idx spec_idx gen.Pattern.support_count
            in
            if Gen_iso.graph_isomorphic tax gi gj then
              report i line_i j pi pj
            else if Gen_iso.graph_isomorphic tax gj gi then
              report j line_j i pj pi
      end
    done
  done;
  if stats && n > 0 then begin
    let max_edges = ref 0 and min_sup = ref max_int and max_sup = ref 0 in
    Array.iter
      (fun ((p : Pattern.t), _) ->
        max_edges := max !max_edges (Pattern.edge_count p);
        min_sup := min !min_sup p.Pattern.support_count;
        max_sup := max !max_sup p.Pattern.support_count)
      entries;
    info "PAT008" "%d patterns, max %d edges, support %d..%d" n !max_edges
      !min_sup !max_sup
  end

let check_located c ?file ?taxonomy ?(stats = false) ~node_labels ~edge_labels
    located =
  (* headers must agree on the database size *)
  (match located with
  | [] -> ()
  | first :: rest ->
    let expect = first.Pattern_io.recorded_db_size in
    List.iteri
      (fun k (l : Pattern_io.located) ->
        if l.Pattern_io.recorded_db_size <> expect then
          Diagnostic.emitf c ?file ~line:l.Pattern_io.header_line
            ~rule:"PAT006" Diagnostic.Error
            "pattern #%d records database size %d but the set started with %d"
            (k + 1) l.Pattern_io.recorded_db_size expect)
      rest);
  let entries =
    Array.of_list
      (List.map
         (fun (l : Pattern_io.located) ->
           (l.Pattern_io.pattern, Some l.Pattern_io.header_line))
         located)
  in
  check_all c ?file ?taxonomy ~stats ~canonical:(Some edge_labels)
    ~node_labels entries

let validate c ?taxonomy ~node_labels ~db_size patterns =
  List.iteri
    (fun i (p : Pattern.t) ->
      if p.Pattern.support_count > db_size then
        Diagnostic.emitf c ~rule:"PAT006" Diagnostic.Error
          "pattern #%d records support %d over a database of %d graphs" i
          p.Pattern.support_count db_size)
    patterns;
  let entries = Array.of_list (List.map (fun p -> (p, None)) patterns) in
  check_all c ?taxonomy ~stats:false ~canonical:None ~node_labels entries
