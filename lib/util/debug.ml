let enabled =
  lazy
    (match Sys.getenv_opt "TSG_DEBUG_CHECKS" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let checks_enabled () = Lazy.force enabled
