(* read eagerly at module init: a [lazy] here would be forced concurrently
   by pool domains building occurrence indices, and OCaml 5 lazy blocks are
   not safe to force from several domains at once *)
let enabled =
  match Sys.getenv_opt "TSG_DEBUG_CHECKS" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let checks_enabled () = enabled
