(* Work-stealing domain pool with deterministic task ids.

   Each domain owns a Chase–Lev-style deque: the owner pushes and pops at
   the bottom (LIFO, depth-first, no synchronization beyond two atomic
   loads and a store in the common case), thieves CAS the top to steal
   the oldest task one at a time (breadth-first, which moves the biggest
   remaining subtrees). There is no mutex anywhere on the scheduling
   path; the only contended operations are single-word CASes on the
   deque ends and the pending-task counter. *)

let default_domains () =
  let fallback = min 8 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "TSG_DOMAINS" with
  | None | Some "" -> fallback
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> fallback)

(* --- deques ---------------------------------------------------------- *)

module Ws_deque = struct
  (* Chase–Lev work-stealing deque over a growable circular buffer.

     Invariants: [top <= bottom]; logical indices are monotonically
     increasing ints (never wrapped back), so CASes on [top] are immune
     to ABA. The physical slot for logical index [i] in an array of
     (power-of-two) size [n] is [i land (n-1)]. A slot is reused by
     [push] only once [bottom - top] has shrunk past it, which requires
     [top] to have advanced — so a thief holding a stale [top] always
     fails its CAS and never observes a recycled slot as current.

     Memory-model notes (OCaml 5 atomics are SC): the owner publishes a
     task with a plain slot write followed by the atomic store of
     [bottom]; a thief reads [top] then [bottom] then the slot, so a
     thief that observes [bottom > top] also observes the slot write
     that preceded that [bottom]. [grow] installs the new array in [tab]
     (atomic) before publishing any index that lives in it, and never
     mutates the old array, so a lagging thief reading the old array
     still sees correct values for the indices it can successfully
     steal. *)

  type 'a t = {
    top : int Atomic.t;  (* next index to steal *)
    bottom : int Atomic.t;  (* next index to push *)
    tab : 'a option array Atomic.t;
  }

  let min_capacity = 32

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      tab = Atomic.make (Array.make min_capacity None);
    }

  let grow q t b =
    let old = Atomic.get q.tab in
    let n = Array.length old in
    let n' = 2 * n in
    let a = Array.make n' None in
    for i = t to b - 1 do
      a.(i land (n' - 1)) <- old.(i land (n - 1))
    done;
    Atomic.set q.tab a;
    a

  (* owner only *)
  let push q x =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    let a = Atomic.get q.tab in
    let a = if b - t >= Array.length a then grow q t b else a in
    a.(b land (Array.length a - 1)) <- Some x;
    Atomic.set q.bottom (b + 1)

  (* owner only *)
  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    (* SC fence between the bottom store and the top load: both atomic *)
    let t = Atomic.get q.top in
    if b < t then begin
      (* empty; restore *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let a = Atomic.get q.tab in
      let i = b land (Array.length a - 1) in
      let x = a.(i) in
      if b > t then begin
        (* more than one element left: no thief can reach slot [b] *)
        a.(i) <- None;
        x
      end
      else begin
        (* last element: race any thief for it via the top CAS *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          a.(i) <- None;
          x
        end
        else None
      end
    end

  (* any domain *)
  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b - t <= 0 then None
    else begin
      let a = Atomic.get q.tab in
      let x = a.(t land (Array.length a - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then x else None
    end
end

(* --- supervision ------------------------------------------------------ *)

exception Transient of string

exception Deadline_exceeded of {
  task : int list;
  elapsed_s : float;
  deadline_s : float;
}

type policy = {
  deadline_s : float option;
  max_attempts : int;
  backoff_s : float;
  max_backoff_s : float;
  retry_on : exn -> bool;
}

let default_retry_on = function
  | Transient _ | Fault.Injected _ -> true
  | _ -> false

let default_policy =
  {
    deadline_s = None;
    max_attempts = 3;
    backoff_s = 0.001;
    max_backoff_s = 0.25;
    retry_on = default_retry_on;
  }

type supervision = {
  policy : policy;
  q_lock : Mutex.t;
  mutable quarantined : (int list * Diagnostic.t) list;
}

type 'a task = { tid : int list; f : 'a ctx -> 'a }

and 'a state = {
  deques : 'a task Ws_deque.t array;
  results : (int list * 'a) list array;  (* slot [d] written only by domain [d] *)
  pending : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
  supervision : supervision option;
}

and 'a ctx = {
  st : 'a state;
  dom : int;
  task_id : int list;
  mutable forks : int;
  mutable started : float;  (* attempt start, for the deadline *)
}

let id ctx = ctx.task_id

let check_deadline ctx =
  match ctx.st.supervision with
  | None -> ()
  | Some { policy = { deadline_s = None; _ }; _ } -> ()
  | Some { policy = { deadline_s = Some limit; _ }; _ } ->
    let elapsed = Unix.gettimeofday () -. ctx.started in
    if elapsed > limit then
      raise
        (Deadline_exceeded
           { task = ctx.task_id; elapsed_s = elapsed; deadline_s = limit })

let fork ctx f =
  let k = ctx.forks in
  ctx.forks <- k + 1;
  Atomic.incr ctx.st.pending;
  Ws_deque.push ctx.st.deques.(ctx.dom) { tid = ctx.task_id @ [ k ]; f }

let pool_task_site = "pool.task"

let quarantine_diagnostic ~task ~attempts e bt =
  match Fault.diagnostic e with
  | Some d -> d
  | None -> (
    let tid = String.concat "." (List.map string_of_int task) in
    match e with
    | Deadline_exceeded { elapsed_s; deadline_s; _ } ->
      Diagnostic.makef ~rule:"POOL002" Diagnostic.Error
        "task %s exceeded its %.3fs deadline (%.3fs elapsed)" tid deadline_s
        elapsed_s
    | e ->
      let where =
        match Printexc.backtrace_slots bt with
        | Some slots when Array.length slots > 0 -> (
          match Printexc.Slot.location slots.(0) with
          | Some l -> Printf.sprintf " at %s:%d" l.Printexc.filename l.Printexc.line_number
          | None -> "")
        | _ -> ""
      in
      Diagnostic.makef ~rule:"POOL001" Diagnostic.Error
        "task %s failed after %d attempt%s: %s%s" tid attempts
        (if attempts = 1 then "" else "s")
        (Printexc.to_string e) where)

(* One attempt of a supervised task. Retry only when the policy calls the
   failure transient AND the failed attempt forked nothing: forked
   subtasks are already scheduled under their deterministic ids, so
   re-running the parent would enqueue duplicates. *)
let exec_supervised st sup dom task =
  let rec go attempt =
    let ctx = { st; dom; task_id = task.tid; forks = 0; started = Unix.gettimeofday () } in
    match
      Fault.inject pool_task_site;
      task.f ctx
    with
    | r -> st.results.(dom) <- (task.tid, r) :: st.results.(dom)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if
        attempt < sup.policy.max_attempts
        && ctx.forks = 0
        && sup.policy.retry_on e
      then begin
        let pause =
          Float.min sup.policy.max_backoff_s
            (sup.policy.backoff_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
        in
        if pause > 0.0 then Unix.sleepf pause;
        go (attempt + 1)
      end
      else begin
        let d =
          if ctx.forks > 0 && sup.policy.retry_on e then
            let base = quarantine_diagnostic ~task:task.tid ~attempts:attempt e bt in
            { base with
              Diagnostic.message =
                base.Diagnostic.message
                ^ Printf.sprintf
                    " (not retried: the failed attempt had already forked %d \
                     subtask%s)"
                    ctx.forks
                    (if ctx.forks = 1 then "" else "s") }
          else quarantine_diagnostic ~task:task.tid ~attempts:attempt e bt
        in
        Mutex.lock sup.q_lock;
        sup.quarantined <- (task.tid, d) :: sup.quarantined;
        Mutex.unlock sup.q_lock
      end
  in
  go 1

let exec st dom task =
  (match Atomic.get st.failed with
  | Some _ -> ()  (* cancelled: drain without running *)
  | None -> (
    match st.supervision with
    | Some sup -> exec_supervised st sup dom task
    | None -> (
      match
        Fault.inject pool_task_site;
        task.f { st; dom; task_id = task.tid; forks = 0; started = Unix.gettimeofday () }
      with
      | r -> st.results.(dom) <- (task.tid, r) :: st.results.(dom)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set st.failed None (Some (e, bt))))));
  Atomic.decr st.pending

(* Steal exactly one task (the victim's oldest) and run it here; the
   forks it makes land on this domain's own deque, so a successful steal
   migrates a whole subtree for the price of one CAS. *)
let try_steal st dom =
  let n = Array.length st.deques in
  let rec probe i =
    if i >= n then None
    else
      let victim = (dom + i) mod n in
      match Ws_deque.steal st.deques.(victim) with
      | Some _ as hit -> hit
      | None -> probe (i + 1)
  in
  probe 1

let worker st dom =
  let misses = ref 0 in
  let rec loop () =
    match Ws_deque.pop st.deques.(dom) with
    | Some task ->
      misses := 0;
      exec st dom task;
      loop ()
    | None ->
      if Atomic.get st.pending = 0 || Atomic.get st.failed <> None then ()
      else begin
        match try_steal st dom with
        | Some task ->
          misses := 0;
          exec st dom task;
          loop ()
        | None ->
          (* nothing to steal yet: spin briefly, then sleep so idle
             domains stop competing for the cores doing real work *)
          incr misses;
          if !misses < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002;
          loop ()
      end
  in
  loop ()

let run_state ~size ~supervision tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let d = size in
  let st =
    {
      deques = Array.init d (fun _ -> Ws_deque.create ());
      results = Array.make d [];
      pending = Atomic.make n;
      failed = Atomic.make None;
      supervision;
    }
  in
  (* Seed round-robin before any worker starts (Domain.spawn publishes
     the writes), pushing the highest ids first so each owner's LIFO pop
     yields ascending ids — which maximizes the canonical prefix under
     budgeted early stops. *)
  for i = n - 1 downto 0 do
    Ws_deque.push st.deques.(i mod d) { tid = [ i ]; f = arr.(i) }
  done;
  let others =
    List.init (d - 1) (fun i ->
        Domain.spawn (fun () ->
            (* the worker's scratch arena dies with the domain; drain it
               explicitly so the memory is reclaimable at the join, not
               at the next major slice *)
            Fun.protect ~finally:Arena.drain (fun () -> worker st (i + 1))))
  in
  worker st 0;
  List.iter Domain.join others;
  st

(* --- the execution surface ------------------------------------------- *)

module Exec = struct
  type t = { size : int }

  let create ?domains () =
    let d =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    { size = d }

  let domains t = t.size

  let run t tasks =
    match tasks with
    | [] -> []
    | _ ->
      let st = run_state ~size:t.size ~supervision:None tasks in
      (match Atomic.get st.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list st.results
      |> List.concat
      |> List.sort (fun (a, _) (b, _) -> compare a b)

  let run_supervised t ?(policy = default_policy) tasks =
    match tasks with
    | [] -> []
    | _ ->
      let sup = { policy; q_lock = Mutex.create (); quarantined = [] } in
      let st = run_state ~size:t.size ~supervision:(Some sup) tasks in
      (* supervised runs never set [failed]: every task either produced a
         result or a quarantine record *)
      let ok =
        Array.to_list st.results
        |> List.concat
        |> List.map (fun (tid, r) -> (tid, Ok r))
      in
      let bad = List.map (fun (tid, d) -> (tid, Error d)) sup.quarantined in
      List.sort (fun (a, _) (b, _) -> compare a b) (ok @ bad)
end
