(* Work-stealing domain pool with deterministic task ids.

   Each domain owns a mutex-protected deque: the owner pushes and pops at
   the head (LIFO, depth-first), thieves detach the oldest half from the
   tail (breadth-first). Coarse tasks (a DFS-code subtree, one class's
   specialization) keep the lock far off the hot path — a task acquires
   its own deque's mutex only to push forks and to pop the next task, and
   computes with no synchronization at all in between. *)

let default_domains () =
  let fallback = min 8 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "TSG_DOMAINS" with
  | None | Some "" -> fallback
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> fallback)

type t = { size : int }

let create ?domains () =
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  { size = d }

let domains t = t.size

(* --- deques ---------------------------------------------------------- *)

module Deque = struct
  type 'a t = {
    lock : Mutex.t;
    mutable items : 'a list;  (* newest first *)
    mutable count : int;
  }

  let create () = { lock = Mutex.create (); items = []; count = 0 }

  let push d x =
    Mutex.lock d.lock;
    d.items <- x :: d.items;
    d.count <- d.count + 1;
    Mutex.unlock d.lock

  let pop d =
    Mutex.lock d.lock;
    let r =
      match d.items with
      | [] -> None
      | x :: tl ->
        d.items <- tl;
        d.count <- d.count - 1;
        Some x
    in
    Mutex.unlock d.lock;
    r

  (* detach the oldest ceil(n/2) items, returned oldest-first; the owner
     keeps the newer (deeper, cache-warm) half *)
  let steal_half d =
    Mutex.lock d.lock;
    let stolen =
      if d.count = 0 then []
      else begin
        let keep = d.count / 2 in
        let rec split i = function
          | [] -> ([], [])
          | x :: tl ->
            if i = 0 then ([], x :: tl)
            else
              let kept, taken = split (i - 1) tl in
              (x :: kept, taken)
        in
        let kept, taken = split keep d.items in
        d.items <- kept;
        d.count <- keep;
        List.rev taken
      end
    in
    Mutex.unlock d.lock;
    stolen

  (* refill an (empty) thief deque so that pop yields oldest-first *)
  let push_all d xs =
    Mutex.lock d.lock;
    d.items <- d.items @ xs;
    d.count <- d.count + List.length xs;
    Mutex.unlock d.lock
end

(* --- the run --------------------------------------------------------- *)

(* --- supervision ------------------------------------------------------ *)

exception Transient of string

exception Deadline_exceeded of {
  task : int list;
  elapsed_s : float;
  deadline_s : float;
}

type policy = {
  deadline_s : float option;
  max_attempts : int;
  backoff_s : float;
  max_backoff_s : float;
  retry_on : exn -> bool;
}

let default_retry_on = function
  | Transient _ | Fault.Injected _ -> true
  | _ -> false

let default_policy =
  {
    deadline_s = None;
    max_attempts = 3;
    backoff_s = 0.001;
    max_backoff_s = 0.25;
    retry_on = default_retry_on;
  }

type supervision = {
  policy : policy;
  q_lock : Mutex.t;
  mutable quarantined : (int list * Diagnostic.t) list;
}

type 'a task = { tid : int list; f : 'a ctx -> 'a }

and 'a state = {
  deques : 'a task Deque.t array;
  results : (int list * 'a) list array;  (* slot [d] written only by domain [d] *)
  pending : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
  supervision : supervision option;
}

and 'a ctx = {
  st : 'a state;
  dom : int;
  task_id : int list;
  mutable forks : int;
  mutable started : float;  (* attempt start, for the deadline *)
}

let id ctx = ctx.task_id

let check_deadline ctx =
  match ctx.st.supervision with
  | None -> ()
  | Some { policy = { deadline_s = None; _ }; _ } -> ()
  | Some { policy = { deadline_s = Some limit; _ }; _ } ->
    let elapsed = Unix.gettimeofday () -. ctx.started in
    if elapsed > limit then
      raise
        (Deadline_exceeded
           { task = ctx.task_id; elapsed_s = elapsed; deadline_s = limit })

let fork ctx f =
  let k = ctx.forks in
  ctx.forks <- k + 1;
  Atomic.incr ctx.st.pending;
  Deque.push ctx.st.deques.(ctx.dom) { tid = ctx.task_id @ [ k ]; f }

let pool_task_site = "pool.task"

let quarantine_diagnostic ~task ~attempts e bt =
  match Fault.diagnostic e with
  | Some d -> d
  | None -> (
    let tid = String.concat "." (List.map string_of_int task) in
    match e with
    | Deadline_exceeded { elapsed_s; deadline_s; _ } ->
      Diagnostic.makef ~rule:"POOL002" Diagnostic.Error
        "task %s exceeded its %.3fs deadline (%.3fs elapsed)" tid deadline_s
        elapsed_s
    | e ->
      let where =
        match Printexc.backtrace_slots bt with
        | Some slots when Array.length slots > 0 -> (
          match Printexc.Slot.location slots.(0) with
          | Some l -> Printf.sprintf " at %s:%d" l.Printexc.filename l.Printexc.line_number
          | None -> "")
        | _ -> ""
      in
      Diagnostic.makef ~rule:"POOL001" Diagnostic.Error
        "task %s failed after %d attempt%s: %s%s" tid attempts
        (if attempts = 1 then "" else "s")
        (Printexc.to_string e) where)

(* One attempt of a supervised task. Retry only when the policy calls the
   failure transient AND the failed attempt forked nothing: forked
   subtasks are already scheduled under their deterministic ids, so
   re-running the parent would enqueue duplicates. *)
let exec_supervised st sup dom task =
  let rec go attempt =
    let ctx = { st; dom; task_id = task.tid; forks = 0; started = Unix.gettimeofday () } in
    match
      Fault.inject pool_task_site;
      task.f ctx
    with
    | r -> st.results.(dom) <- (task.tid, r) :: st.results.(dom)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if
        attempt < sup.policy.max_attempts
        && ctx.forks = 0
        && sup.policy.retry_on e
      then begin
        let pause =
          Float.min sup.policy.max_backoff_s
            (sup.policy.backoff_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
        in
        if pause > 0.0 then Unix.sleepf pause;
        go (attempt + 1)
      end
      else begin
        let d =
          if ctx.forks > 0 && sup.policy.retry_on e then
            let base = quarantine_diagnostic ~task:task.tid ~attempts:attempt e bt in
            { base with
              Diagnostic.message =
                base.Diagnostic.message
                ^ Printf.sprintf
                    " (not retried: the failed attempt had already forked %d \
                     subtask%s)"
                    ctx.forks
                    (if ctx.forks = 1 then "" else "s") }
          else quarantine_diagnostic ~task:task.tid ~attempts:attempt e bt
        in
        Mutex.lock sup.q_lock;
        sup.quarantined <- (task.tid, d) :: sup.quarantined;
        Mutex.unlock sup.q_lock
      end
  in
  go 1

let exec st dom task =
  (match Atomic.get st.failed with
  | Some _ -> ()  (* cancelled: drain without running *)
  | None -> (
    match st.supervision with
    | Some sup -> exec_supervised st sup dom task
    | None -> (
      match
        Fault.inject pool_task_site;
        task.f { st; dom; task_id = task.tid; forks = 0; started = Unix.gettimeofday () }
      with
      | r -> st.results.(dom) <- (task.tid, r) :: st.results.(dom)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set st.failed None (Some (e, bt))))));
  Atomic.decr st.pending

let try_steal st dom =
  let n = Array.length st.deques in
  let rec probe i =
    if i >= n then false
    else
      let victim = (dom + i) mod n in
      match Deque.steal_half st.deques.(victim) with
      | [] -> probe (i + 1)
      | stolen ->
        Deque.push_all st.deques.(dom) stolen;
        true
  in
  probe 1

let worker st dom =
  let misses = ref 0 in
  let rec loop () =
    match Deque.pop st.deques.(dom) with
    | Some task ->
      misses := 0;
      exec st dom task;
      loop ()
    | None ->
      if Atomic.get st.pending = 0 || Atomic.get st.failed <> None then ()
      else if try_steal st dom then begin
        misses := 0;
        loop ()
      end
      else begin
        (* nothing to steal yet: spin briefly, then sleep so idle domains
           stop competing for the cores doing real work *)
        incr misses;
        if !misses < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002;
        loop ()
      end
  in
  loop ()

let run_state t ~supervision tasks =
  let n = List.length tasks in
  let d = t.size in
  let st =
    {
      deques = Array.init d (fun _ -> Deque.create ());
      results = Array.make d [];
      pending = Atomic.make n;
      failed = Atomic.make None;
      supervision;
    }
  in
  (* seed round-robin; reversed so each owner pops ascending ids first,
     which maximizes the canonical prefix under budgeted early stops *)
  List.iteri
    (fun i f -> Deque.push st.deques.((n - 1 - i) mod d) { tid = [ n - 1 - i ]; f })
    (List.rev tasks);
  let others =
    List.init (d - 1) (fun i -> Domain.spawn (fun () -> worker st (i + 1)))
  in
  worker st 0;
  List.iter Domain.join others;
  st

let run t tasks =
  match tasks with
  | [] -> []
  | _ ->
    let st = run_state t ~supervision:None tasks in
    (match Atomic.get st.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list st.results
    |> List.concat
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let run_supervised t ?(policy = default_policy) tasks =
  match tasks with
  | [] -> []
  | _ ->
    let sup = { policy; q_lock = Mutex.create (); quarantined = [] } in
    let st = run_state t ~supervision:(Some sup) tasks in
    (* supervised runs never set [failed]: every task either produced a
       result or a quarantine record *)
    let ok =
      Array.to_list st.results
      |> List.concat
      |> List.map (fun (tid, r) -> (tid, Ok r))
    in
    let bad = List.map (fun (tid, d) -> (tid, Error d)) sup.quarantined in
    List.sort (fun (a, _) (b, _) -> compare a b) (ok @ bad)
