type t = float

let now () = Unix.gettimeofday ()

let start () = now ()

let elapsed_s t = now () -. t

let elapsed_ms t = 1000.0 *. elapsed_s t

let time f =
  let t = start () in
  let x = f () in
  (x, elapsed_s t)

module Budget = struct
  type budget = Unlimited | Deadline of float

  let unlimited = Unlimited

  let of_seconds s = Deadline (now () +. s)

  let exceeded = function
    | Unlimited -> false
    | Deadline d -> now () > d

  let remaining_s = function
    | Unlimited -> infinity
    | Deadline d -> Float.max 0.0 (d -. now ())
end
