(** Crash-safe file writes.

    Artifact writers (databases, pattern sets, mining checkpoints) must
    never leave a half-written file where a complete one stood: a reader
    racing a crash sees either the old content or the new, nothing in
    between. *)

val write_atomic : ?fsync:bool -> string -> string -> unit
(** [write_atomic path content] writes [content] to a fresh temporary
    file in [path]'s directory, flushes it ([fsync]s when requested,
    default [true]), and renames it over [path] — atomic on POSIX
    filesystems. The temporary file is removed on failure. Honors the
    ["safe_io.write"] failpoint ({!Fault}), which fires {e before} the
    rename, so an injected crash never clobbers the previous version. *)

val read_file : string -> string
(** The whole file as a string. *)
