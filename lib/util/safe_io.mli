(** Crash-safe file writes.

    Artifact writers (databases, pattern sets, mining checkpoints) must
    never leave a half-written file where a complete one stood: a reader
    racing a crash sees either the old content or the new, nothing in
    between. *)

val write_atomic : ?fsync:bool -> string -> string -> unit
(** [write_atomic path content] writes [content] to a fresh temporary
    file in [path]'s directory, flushes it ([fsync]s when requested,
    default [true]), renames it over [path] — atomic on POSIX
    filesystems — and (when [fsync]ing) fsyncs the parent directory, so
    a crash after the rename cannot forget the new directory entry. The
    temporary file is removed on failure. Honors two failpoints
    ({!Fault}): ["safe_io.write"] fires {e before} the rename (an
    injected crash never clobbers the previous version), and
    ["safe_io.dirsync"] fires {e after} it, before the directory sync —
    the caller sees the failure but the rename has already happened,
    exactly the window a real crash would leave. *)

val read_file : string -> string
(** The whole file as a string. *)
