(** Per-domain scratch arenas for {!Bitset} temporaries.

    The mining hot paths (occurrence-set intersections during
    specialization, support sets during gSpan extension) need short-lived
    bitsets at a very high rate. Allocating them fresh taxes every domain
    at once — OCaml 5's minor collections are stop-the-world — so the
    arena recycles them instead: {!acquire} hands out a {e cleared}
    bitset from this domain's free list (or allocates on a miss),
    {!release} returns it for reuse.

    State lives in [Domain.DLS]: each domain owns its own arena, no call
    here ever takes a lock or touches another domain's memory, and the
    arena of a pool-spawned domain dies with it at the end of the run
    (see {!Tsg_util.Pool.Exec}). A bitset must be released on the same
    domain that acquired it; pool tasks never migrate mid-body, so this
    holds for free in task code.

    Discipline: a borrowed bitset is owned until released; never release
    twice, never use after release, never publish a borrowed bitset to
    another task (copy it out with [Bitset.copy] instead — that is the
    idiom for "keep this result": intersect into scratch, and pay the
    copy only for survivors). *)

val acquire : int -> Bitset.t
(** [acquire n] borrows a cleared bitset of capacity [n]. *)

val release : Bitset.t -> unit
(** Return a borrowed bitset to this domain's arena. *)

val with_bitset : int -> (Bitset.t -> 'a) -> 'a
(** [with_bitset n f] borrows, runs [f], and releases even on raise. The
    hot loops use explicit {!acquire}/{!release} instead to keep closure
    allocation off the path; this is the convenience form. *)

val drain : unit -> unit
(** Drop every cached bitset on this domain (the memory becomes garbage).
    Pool workers drain on exit; long-lived callers may drain between
    runs to release scratch memory early. *)

type stats = { cached : int; hits : int; misses : int }

val stats : unit -> stats
(** This domain's arena counters: bitsets currently cached, and the
    hit/miss split of every {!acquire} so far (a hit reused memory, a
    miss allocated). Test/diagnostic surface. *)

val reset_stats : unit -> unit
(** Zero the hit/miss counters (cached bitsets are kept). *)
