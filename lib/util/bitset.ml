type t = { mutable words : int array; capacity : int }

let bits_per_word = Sys.int_size

let words_for n = if n = 0 then 0 else (n - 1) / bits_per_word + 1

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make (words_for n) 0; capacity = n }

let capacity t = t.capacity

let copy t = { words = Array.copy t.words; capacity = t.capacity }

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg
      (Printf.sprintf "Bitset: index %d out of bounds (capacity %d)" i
         t.capacity)

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let unset t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

(* Kernighan-style popcount per word; words are at most 63 bits wide. *)
let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b =
  a.capacity = b.capacity
  && Array.for_all2 (fun x y -> x = y) a.words b.words

let same_capacity a b op =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch" op)

let subset a b =
  same_capacity a b "subset";
  let ok = ref true in
  let n = Array.length a.words in
  let i = ref 0 in
  while !ok && !i < n do
    if a.words.(!i) land lnot b.words.(!i) <> 0 then ok := false;
    incr i
  done;
  !ok

let inter_into ~dst a b =
  same_capacity a b "inter";
  same_capacity dst a "inter";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land b.words.(i)
  done

let inter a b =
  let dst = create a.capacity in
  inter_into ~dst a b;
  dst

let inter_cardinal a b =
  same_capacity a b "inter_cardinal";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let union_into ~dst a b =
  same_capacity a b "union";
  same_capacity dst a "union";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) lor b.words.(i)
  done

let union a b =
  let dst = create a.capacity in
  union_into ~dst a b;
  dst

let diff a b =
  same_capacity a b "diff";
  let dst = create a.capacity in
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) land lnot b.words.(i)
  done;
  dst

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

exception Found

let exists p t =
  try
    iter (fun i -> if p i then raise Found) t;
    false
  with Found -> true

let for_all p t = not (exists (fun i -> not (p i)) t)

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n members =
  let t = create n in
  List.iter (fun i -> set t i) members;
  t

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    set t i
  done;
  t

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let choose t =
  let n = Array.length t.words in
  let rec scan w =
    if w >= n then None
    else if t.words.(w) = 0 then scan (w + 1)
    else
      let word = t.words.(w) in
      let rec bit b =
        if word land (1 lsl b) <> 0 then Some ((w * bits_per_word) + b)
        else bit (b + 1)
      in
      bit 0
  in
  scan 0

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list t)
