(** Serving-side metrics: monotonic counters and latency histograms.

    The query-serving subsystem ([tsg_query], [tsg-serve]) records cache
    hits, isomorphism-test counts and per-request latencies here; the
    registry renders as a {!Text_table} on shutdown or on a [stats]
    request. All operations are safe to call concurrently from multiple
    OCaml domains (a single mutex per registry). *)

type t
(** A registry of named counters and histograms. *)

type counter

type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** [counter t name] registers (or returns the existing) monotonic counter
    under [name]. *)

val incr : ?n:int -> counter -> unit
(** Add [n] (default 1); [n] must be non-negative. *)

val value : counter -> int

val hit_rate : hits:counter -> misses:counter -> float
(** [hits / (hits + misses)], or [0.] when nothing was recorded. *)

(** {1 Gauges}

    Point-in-time integer values (queue depth, in-flight requests,
    degradation level); unlike counters they may go down. Rendered after
    the counters in {!to_table}. *)

type gauge

val gauge : t -> string -> gauge
(** [gauge t name] registers (or returns the existing) gauge under
    [name]; initial value 0. *)

val set_gauge : gauge -> int -> unit

val add_gauge : gauge -> int -> unit
(** Add a (possibly negative) delta. *)

val gauge_value : gauge -> int

(** {1 Histograms} *)

val histogram : t -> string -> histogram
(** [histogram t name] registers (or returns) a latency histogram under
    [name]. Observations are in seconds; buckets follow a 1-2-5 series
    from 1 microsecond to 10 seconds plus an overflow bucket. *)

val observe : histogram -> float -> unit
(** Record one latency, in seconds. Negative values count as 0. *)

val count : histogram -> int

val sum : histogram -> float
(** Total observed seconds. *)

val mean : histogram -> float
(** [0.] when empty. *)

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0, 100]: an upper bound on the [q]-th
    percentile latency (the bucket boundary the quantile falls under);
    [0.] when empty. *)

val max_value : histogram -> float

(** {1 Rendering} *)

val to_table : t -> Text_table.t
(** One row per counter ([name], value) followed by one row per histogram
    ([name], count, mean/p50/p95/p99/max in milliseconds). *)

val render : t -> string

val render_machine : t -> string
(** One line per metric, trivially parseable by scrapers (the [stats]
    protocol verb of [tsg-serve] and [tsg-router] emit this between
    [begin stats]/[end stats] markers):
    {v
counter <name> <value>
gauge <name> <value>
hist <name> count <n> mean_ms <f> p50_ms <f> p95_ms <f> p99_ms <f> max_ms <f>
    v}
    Every line ends with a newline; the empty registry renders as [""]. *)

val print : t -> unit
