(** Deterministic splitmix64 pseudo-random number generator.

    All dataset generators take an explicit generator so that every dataset in
    the experiment suite is reproducible from a seed. *)

type t

val create : int64 -> t
(** Generator seeded with a 64-bit value. *)

val of_int : int -> t

val split : t -> t
(** Independent child generator; advances the parent. *)

val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]; requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample : t -> 'a array -> int -> 'a list
(** [sample t arr k] draws [k] elements without replacement
    (requires [k <= Array.length arr]). *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a
    Bernoulli([p]) sequence; requires [0 < p <= 1]. *)
