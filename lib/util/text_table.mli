(** Aligned plain-text tables for the benchmark harness output.

    The harness prints the same rows/series the paper's tables and figures
    report; this module renders them legibly on a terminal. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table; [aligns] defaults to left for the first
    column and right for the rest. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val add_int_row : t -> string -> int list -> unit
(** Label cell followed by integer cells. *)

val render : t -> string

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val to_csv : t -> string
(** RFC-4180-style CSV (header row first; cells with commas, quotes or
    newlines are quoted). *)

val save_csv : t -> string -> unit
