(** A work-stealing pool of OCaml 5 domains with deterministic task
    identities.

    The pool exists so that tree-shaped search work — gSpan's DFS-code
    subtrees, per-class specialization, query batches — can fan out across
    domains while the {e result} of a run stays independent of the
    schedule: every task carries a deterministic id (its path in the
    fork tree), and {!run} returns results sorted by id, so callers can
    re-order, truncate to a canonical prefix, or merge without caring
    which domain computed what.

    Scheduling is classic work stealing: each domain owns a deque, treats
    it as a LIFO stack (depth-first, cache-friendly), and when empty
    steals the {e oldest half} of a victim's deque (breadth-first, which
    moves the biggest remaining subtrees). Tasks may {!fork} subtasks at
    any point; forks land on the forking domain's own deque and are
    stolen from there.

    Tasks must not share mutable state unless they synchronize
    themselves; everything a task returns is published to the caller at
    the {!run} join. *)

type t
(** A pool descriptor. Cheap; domains are spawned per {!run} and joined
    before it returns, so a pool may be reused or discarded freely. *)

val default_domains : unit -> int
(** The domain count used when a caller does not choose one: the
    [TSG_DOMAINS] environment variable when it holds a positive integer,
    otherwise [Domain.recommended_domain_count ()] capped at 8 (the cap
    keeps small machines from oversubscription and mirrors the paper
    harness's biggest test box). Read per call, so tests may override
    [TSG_DOMAINS] between runs. *)

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool with {!default_domains}; [~domains] (at
    least 1, values below are clamped) overrides. *)

val domains : t -> int

type 'a ctx
(** A task's handle to the running pool: identity plus the ability to
    fork. Valid only for the duration of the task's body. *)

val id : 'a ctx -> int list
(** The task's deterministic id: [[i]] for the [i]-th root task passed to
    {!run}, [parent @ [k]] for the [k]-th task forked by [parent]
    (0-based, in fork order). Ids are totally ordered by [compare] —
    lexicographic with prefixes first — and that order is the order
    {!run} returns results in. *)

val fork : 'a ctx -> ('a ctx -> 'a) -> unit
(** [fork ctx f] schedules [f] as a subtask of the current task. The
    subtask runs on this domain or on a thief; its result joins the
    others at {!run}'s return, under the forked id. *)

val run : t -> ('a ctx -> 'a) list -> (int list * 'a) list
(** [run pool tasks] executes the root tasks and everything they fork,
    across [domains pool] domains (the calling domain is one of them),
    and returns every task's [(id, result)] sorted by id. If any task
    raises, remaining tasks are abandoned (already-running ones finish),
    and the first exception observed is re-raised — with the raising
    task's original backtrace ([Printexc.raise_with_backtrace]) — after
    all domains have joined. An empty task list returns []. *)

(** {1 Supervised runs}

    {!run} is fail-fast: one poisoned task kills the whole run. A
    {e supervised} run instead gives every task a retry budget for
    transient failures and quarantines tasks that keep failing, so the
    run always completes — with partial results plus one structured
    {!Tsg_util.Diagnostic} per casualty — and a multi-hour mining job
    survives a flaky task. *)

exception Transient of string
(** Tasks raise this (or anything [policy.retry_on] accepts, e.g. an
    injected {!Fault.Injected}) to mark a failure worth retrying. *)

exception Deadline_exceeded of {
  task : int list;
  elapsed_s : float;
  deadline_s : float;
}
(** Raised by {!check_deadline} when the supervised policy's per-task
    deadline has passed. Not transient: a task that ran out of time once
    is quarantined, not retried. *)

type policy = {
  deadline_s : float option;
      (** cooperative per-task deadline enforced by {!check_deadline};
          [None] (the default) means none *)
  max_attempts : int;  (** total attempts per task, at least 1 *)
  backoff_s : float;
      (** pause before retry [k] is [backoff_s * 2^(k-1)], capped at
          [max_backoff_s] *)
  max_backoff_s : float;
  retry_on : exn -> bool;
      (** which failures are transient; the default accepts {!Transient}
          and {!Fault.Injected} only *)
}

val default_policy : policy
(** No deadline, 3 attempts, 1 ms initial backoff capped at 250 ms. *)

val check_deadline : 'a ctx -> unit
(** Poll point for long supervised tasks: raises {!Deadline_exceeded}
    when the current attempt has outlived [policy.deadline_s]. A no-op
    under {!run} or when the policy has no deadline. *)

val run_supervised :
  t -> ?policy:policy -> ('a ctx -> 'a) list -> (int list * ('a, Diagnostic.t) result) list
(** Like {!run}, but failures never escape: each task is retried per the
    policy (only while it has not yet forked — a failed attempt that
    already forked subtasks is quarantined immediately, since its
    children are already scheduled under their deterministic ids and a
    re-run would duplicate them), and a task that exhausts its attempts
    contributes [(id, Error diagnostic)] (rules [POOL001], [POOL002] for
    deadlines, [FLT001] for injected faults) instead of aborting the run.
    Results and quarantine records are sorted together by id. *)
