(** A work-stealing pool of OCaml 5 domains with deterministic task
    identities.

    The pool exists so that tree-shaped search work — gSpan's DFS-code
    subtrees, per-class specialization, query batches — can fan out across
    domains while the {e result} of a run stays independent of the
    schedule: every task carries a deterministic id (its path in the
    fork tree), and {!Exec.run} returns results sorted by id, so callers
    can re-order, truncate to a canonical prefix, or merge without caring
    which domain computed what.

    Scheduling is lock-free work stealing: each domain owns a Chase–Lev
    deque, treats it as a LIFO stack (depth-first, cache-friendly), and
    when empty steals the {e oldest} task of a victim via a single CAS
    (breadth-first, which migrates the biggest remaining subtrees — the
    forks a stolen task makes land on the thief's own deque). There is
    no mutex on the scheduling path.

    Memory: tasks must not share mutable state unless they synchronize
    themselves; everything a task returns is published to the caller at
    the {!Exec.run} join. Per-domain scratch ({!Tsg_util.Arena}) lives
    in [Domain.DLS] — worker domains drain their arenas when a run ends,
    and the calling domain keeps its arena warm across runs. *)

val default_domains : unit -> int
(** The domain count used when a caller does not choose one: the
    [TSG_DOMAINS] environment variable when it holds a positive integer,
    otherwise [Domain.recommended_domain_count ()] capped at 8 (the cap
    keeps small machines from oversubscription and mirrors the paper
    harness's biggest test box). Read once per {!Exec.create} — never on
    a hot path, and never re-read behind a live handle's back. *)

type 'a ctx
(** A task's handle to the running pool: identity plus the ability to
    fork. Valid only for the duration of the task's body. *)

val id : 'a ctx -> int list
(** The task's deterministic id: [[i]] for the [i]-th root task passed to
    {!Exec.run}, [parent @ [k]] for the [k]-th task forked by [parent]
    (0-based, in fork order). Ids are totally ordered by [compare] —
    lexicographic with prefixes first — and that order is the order
    {!Exec.run} returns results in. *)

val fork : 'a ctx -> ('a ctx -> 'a) -> unit
(** [fork ctx f] schedules [f] as a subtask of the current task. The
    subtask runs on this domain or on a thief; its result joins the
    others at {!Exec.run}'s return, under the forked id. *)

(** {1 Supervision}

    {!Exec.run} is fail-fast: one poisoned task kills the whole run. A
    {e supervised} run instead gives every task a retry budget for
    transient failures and quarantines tasks that keep failing, so the
    run always completes — with partial results plus one structured
    {!Tsg_util.Diagnostic} per casualty — and a multi-hour mining job
    survives a flaky task. *)

exception Transient of string
(** Tasks raise this (or anything [policy.retry_on] accepts, e.g. an
    injected {!Fault.Injected}) to mark a failure worth retrying. *)

exception Deadline_exceeded of {
  task : int list;
  elapsed_s : float;
  deadline_s : float;
}
(** Raised by {!check_deadline} when the supervised policy's per-task
    deadline has passed. Not transient: a task that ran out of time once
    is quarantined, not retried. *)

type policy = {
  deadline_s : float option;
      (** cooperative per-task deadline enforced by {!check_deadline};
          [None] (the default) means none *)
  max_attempts : int;  (** total attempts per task, at least 1 *)
  backoff_s : float;
      (** pause before retry [k] is [backoff_s * 2^(k-1)], capped at
          [max_backoff_s] *)
  max_backoff_s : float;
  retry_on : exn -> bool;
      (** which failures are transient; the default accepts {!Transient}
          and {!Fault.Injected} only *)
}

val default_policy : policy
(** No deadline, 3 attempts, 1 ms initial backoff capped at 250 ms. *)

val check_deadline : 'a ctx -> unit
(** Poll point for long supervised tasks: raises {!Deadline_exceeded}
    when the current attempt has outlived [policy.deadline_s]. A no-op
    under {!Exec.run} or when the policy has no deadline. *)

(** {1 The execution surface}

    An {!Exec.t} is the one way work enters the pool. Creating one
    snapshots the effective domain count (so concurrent reconfiguration
    — e.g. a serve loop reloading while requests are in flight — cannot
    change the width of a handle mid-life), and every subsystem that
    runs parallel work ({!Tsg_core.Taxogram}, [Serve], the benches)
    takes or builds an [Exec.t] rather than a raw domain count. *)

module Exec : sig
  type t
  (** An execution handle: a snapshot of the domain count taken at
      {!create} time. Cheap; domains are spawned per {!run} and joined
      before it returns, so a handle may be reused or discarded
      freely. *)

  val create : ?domains:int -> unit -> t
  (** [create ()] snapshots {!default_domains} {e once}; [~domains] (at
      least 1, values below are clamped) overrides. The handle never
      re-reads [TSG_DOMAINS]. *)

  val domains : t -> int
  (** The snapshot: how many domains (including the calling one) each
      {!run} on this handle uses. *)

  val run : t -> ('a ctx -> 'a) list -> (int list * 'a) list
  (** [run exec tasks] executes the root tasks and everything they fork,
      across [domains exec] domains (the calling domain is one of them),
      and returns every task's [(id, result)] sorted by id. If any task
      raises, remaining tasks are abandoned (already-running ones
      finish), and the first exception observed is re-raised — with the
      raising task's original backtrace
      ([Printexc.raise_with_backtrace]) — after all domains have joined.
      An empty task list returns []. *)

  val run_supervised :
    t ->
    ?policy:policy ->
    ('a ctx -> 'a) list ->
    (int list * ('a, Diagnostic.t) result) list
  (** Like {!run}, but failures never escape: each task is retried per
      the policy (only while it has not yet forked — a failed attempt
      that already forked subtasks is quarantined immediately, since its
      children are already scheduled under their deterministic ids and a
      re-run would duplicate them), and a task that exhausts its
      attempts contributes [(id, Error diagnostic)] (rules [POOL001],
      [POOL002] for deadlines, [FLT001] for injected faults) instead of
      aborting the run. Results and quarantine records are sorted
      together by id. *)
end
