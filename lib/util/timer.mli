(** Wall-clock timing and watchdog budgets for the experiment harness. *)

type t

val start : unit -> t

val elapsed_s : t -> float

val elapsed_ms : t -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns the elapsed wall-clock seconds. *)

(** A deadline that long-running algorithms poll so that a comparator that
    would run for hours (as TAcGM does in the paper) can be cut off and
    reported as "did not finish". *)
module Budget : sig
  type budget

  val unlimited : budget

  val of_seconds : float -> budget

  val exceeded : budget -> bool

  val remaining_s : budget -> float
end
