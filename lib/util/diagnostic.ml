type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  rule : string;
  severity : severity;
  file : string option;
  line : int option;
  message : string;
}

let make ?file ?line ~rule severity message =
  { rule; severity; file; line; message }

let makef ?file ?line ~rule severity fmt =
  Printf.ksprintf (fun message -> make ?file ?line ~rule severity message) fmt

let with_file file t =
  match t.file with Some _ -> t | None -> { t with file = Some file }

let to_string t =
  let loc =
    match (t.file, t.line) with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  Printf.sprintf "%s%s [%s] %s" loc
    (severity_to_string t.severity)
    t.rule t.message

let to_machine t =
  let no_tabs s =
    String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s
  in
  Printf.sprintf "%s\t%s\t%s\t%s\t%s"
    (match t.file with Some f -> no_tabs f | None -> "-")
    (match t.line with Some l -> string_of_int l | None -> "-")
    (severity_to_string t.severity)
    t.rule (no_tabs t.message)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let quoted s = Printf.sprintf "\"%s\"" (json_escape s) in
  let opt_string = function Some s -> quoted s | None -> "null" in
  let opt_int = function Some i -> string_of_int i | None -> "null" in
  Printf.sprintf
    "{\"file\":%s,\"line\":%s,\"severity\":%s,\"rule\":%s,\"message\":%s}"
    (opt_string t.file) (opt_int t.line)
    (quoted (severity_to_string t.severity))
    (quoted t.rule) (quoted t.message)

let compare a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.rule b.rule in
      if c <> 0 then c else compare a.message b.message

type collector = {
  mutable items : t list;  (** reverse emission order *)
  suppress : (string, unit) Hashtbl.t;
  mutable errors : int;
  mutable warnings : int;
  mutable infos : int;
  mutable suppressed : int;
}

let collector ?(suppress = []) () =
  let table = Hashtbl.create 8 in
  List.iter (fun rule -> Hashtbl.replace table rule ()) suppress;
  {
    items = [];
    suppress = table;
    errors = 0;
    warnings = 0;
    infos = 0;
    suppressed = 0;
  }

let emit c t =
  if Hashtbl.mem c.suppress t.rule then c.suppressed <- c.suppressed + 1
  else begin
    c.items <- t :: c.items;
    match t.severity with
    | Error -> c.errors <- c.errors + 1
    | Warning -> c.warnings <- c.warnings + 1
    | Info -> c.infos <- c.infos + 1
  end

let emitf c ?file ?line ~rule severity fmt =
  Printf.ksprintf (fun message -> emit c (make ?file ?line ~rule severity message)) fmt

let items c = List.stable_sort compare (List.rev c.items)

let error_count c = c.errors

let warning_count c = c.warnings

let info_count c = c.infos

let suppressed_count c = c.suppressed

let has_errors c = c.errors > 0

let max_severity c =
  if c.errors > 0 then Some Error
  else if c.warnings > 0 then Some Warning
  else if c.infos > 0 then Some Info
  else None

let exit_code c = if c.errors > 0 then 2 else if c.warnings > 0 then 1 else 0

type format = Text | Machine | Json

let format_of_string = function
  | "text" -> Some Text
  | "machine" -> Some Machine
  | "json" -> Some Json
  | _ -> None

let print_json oc c =
  output_string oc "{\"findings\":[";
  List.iteri
    (fun i t ->
      if i > 0 then output_string oc ",";
      output_string oc (to_json t))
    (items c);
  Printf.fprintf oc
    "],\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"suppressed\":%d}\n"
    c.errors c.warnings c.infos c.suppressed

let print ?(machine = false) ?format oc c =
  let format =
    match format with
    | Some f -> f
    | None -> if machine then Machine else Text
  in
  match format with
  | Json -> print_json oc c
  | Text | Machine ->
    let render = if format = Machine then to_machine else to_string in
    List.iter (fun t -> output_string oc (render t ^ "\n")) (items c)

let summary c =
  if c.errors = 0 && c.warnings = 0 && c.infos = 0 then "no findings"
  else begin
    let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
    let parts =
      (if c.errors > 0 then [ part c.errors "error" ] else [])
      @ (if c.warnings > 0 then [ part c.warnings "warning" ] else [])
      @ if c.infos > 0 then [ part c.infos "info" ] else []
    in
    String.concat ", " parts
  end

module Registry = struct
  type entry = { code : string; default_severity : severity; summary : string }

  let e code default_severity summary = { code; default_severity; summary }

  (* Every rule code any tool in this repository may emit, in catalog
     order. scripts/rule_catalog_check.sh diffs this list against the
     README/DESIGN catalogs, and tsg-analyze's REG001 flags code-shaped
     string literals that are missing from it. *)
  let rules =
    [
      (* tsg-lint: taxonomy artifact passes *)
      e "TAX001" Error "duplicate concept declaration";
      e "TAX002" Error "is-a references an undeclared concept";
      e "TAX003" Error "self is-a";
      e "TAX004" Error "duplicate is-a edge";
      e "TAX005" Error "is-a cycle";
      e "TAX006" Info "multiple roots";
      e "TAX007" Warning "isolated concept";
      e "TAX008" Info "taxonomy statistics";
      e "TAX009" Error "taxonomy syntax error";
      (* tsg-lint: graph database passes *)
      e "DB001" Error "bad or duplicate node index";
      e "DB002" Error "edge endpoint references a missing node";
      e "DB003" Error "self-loop";
      e "DB004" Error "duplicate edge";
      e "DB005" Error "node label not declared in the taxonomy";
      e "DB006" Warning "empty graph";
      e "DB007" Error "database syntax error";
      e "DB008" Info "database statistics";
      (* tsg-lint: pattern-set passes *)
      e "PAT001" Error "disconnected pattern graph";
      e "PAT002" Error "node numbering not canonical";
      e "PAT003" Error "duplicate pattern";
      e "PAT004" Error "support monotonicity violation";
      e "PAT005" Warning "over-generalized residue";
      e "PAT006" Error "support denominators disagree";
      e "PAT007" Error "pattern label not declared in the taxonomy";
      e "PAT008" Info "pattern-set statistics";
      e "PAT009" Error "pattern syntax error";
      (* tsg-lint: cross-artifact passes *)
      e "X001" Warning "pattern label matches no database label";
      e "X002" Error "query store disagrees with the pattern set";
      e "X003" Error "recorded support differs from recomputed support";
      e "IO001" Error "file unreadable";
      (* runtime: pool supervision, checkpoints, faults, serving *)
      e "POOL001" Error "supervised task exhausted its retry budget";
      e "POOL002" Error "supervised task exceeded its deadline";
      e "CKPT001" Error "corrupt checkpoint snapshot";
      e "CKPT002" Error "checkpoint does not match this run";
      e "CKPT003" Error "checkpoint stale: corpus sequence moved on";
      e "FLT001" Error "injected fault";
      (* tsg-lint: write-ahead delta log passes *)
      e "WAL001" Error "bad WAL magic or version";
      e "WAL002" Error "corrupt WAL frame (CRC or structure) mid-log";
      e "WAL003" Error "non-monotonic WAL sequence numbers";
      (* tsg-pipe: incremental pipeline *)
      e "PIPE001" Error "delta rejected";
      e "PIPE002" Error "published artifact failed verification, rolled back";
      e "PIPE003" Warning "pipeline state snapshot unusable, re-mining";
      e "SRV001" Error "bad bind address";
      e "SRV002" Error "artifact reload failed, engine rolled back";
      e "SRV003" Error "artifact reload unstable, engine rolled back";
      (* epoch-consistent cluster deployment *)
      e "EPO001" Error "no common artifact epoch across shards";
      e "EPO002" Error "artifact epoch stamp does not match its payload";
      e "RSY001" Warning "replica serving a stale epoch, fenced from merges";
      e "RSY002" Error "replica resync failed, artifact re-push required";
      (* tsg-analyze: domain-safety and determinism passes *)
      e "DOM001" Error
        "unguarded toplevel mutable state reachable from pool domains";
      e "DOM002" Error "Lazy value in domain-executed code";
      e "DET001" Error "Hashtbl iteration order flows into output";
      e "DET002" Error "ambient Random state in library code";
      e "IO101" Error "artifact write bypasses Safe_io";
      e "REG001" Error "code used but absent from the central registry";
      e "ANA001" Error "malformed tsg.allow suppression attribute";
      e "ANA002" Warning "unreadable cmt file";
      e "ANA003" Warning "stale allowlist entry";
    ]

  (* Stable wire codes of the serving protocol's `error <CODE> <msg>`
     replies (Tsg_query.Protocol.code_string, matched by the router's
     failover logic and tsg-blast's accounting). *)
  let protocol_errors =
    [
      ("BADREQ", "unparseable request");
      ("OVERSIZED", "request exceeds the line-size bound");
      ("DEADLINE", "request missed its deadline");
      ("OVERLOADED", "shed by admission control");
      ("UNAVAILABLE", "degraded below this verb, or breaker open");
      ("FAULT", "injected fault surfaced to the client");
      ("INTERNAL", "unexpected server error");
      ("RELOAD", "artifact reload failed");
      ("STALE_EPOCH", "request pinned to an epoch this replica is not serving");
    ]

  let find code = List.find_opt (fun entry -> entry.code = code) rules

  let is_rule code = find code <> None

  let is_protocol_error code =
    List.mem_assoc code protocol_errors
end
