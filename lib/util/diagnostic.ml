type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  rule : string;
  severity : severity;
  file : string option;
  line : int option;
  message : string;
}

let make ?file ?line ~rule severity message =
  { rule; severity; file; line; message }

let makef ?file ?line ~rule severity fmt =
  Printf.ksprintf (fun message -> make ?file ?line ~rule severity message) fmt

let with_file file t =
  match t.file with Some _ -> t | None -> { t with file = Some file }

let to_string t =
  let loc =
    match (t.file, t.line) with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  Printf.sprintf "%s%s [%s] %s" loc
    (severity_to_string t.severity)
    t.rule t.message

let to_machine t =
  let no_tabs s =
    String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s
  in
  Printf.sprintf "%s\t%s\t%s\t%s\t%s"
    (match t.file with Some f -> no_tabs f | None -> "-")
    (match t.line with Some l -> string_of_int l | None -> "-")
    (severity_to_string t.severity)
    t.rule (no_tabs t.message)

let compare a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.rule b.rule in
      if c <> 0 then c else compare a.message b.message

type collector = {
  mutable items : t list;  (** reverse emission order *)
  suppress : (string, unit) Hashtbl.t;
  mutable errors : int;
  mutable warnings : int;
  mutable infos : int;
  mutable suppressed : int;
}

let collector ?(suppress = []) () =
  let table = Hashtbl.create 8 in
  List.iter (fun rule -> Hashtbl.replace table rule ()) suppress;
  {
    items = [];
    suppress = table;
    errors = 0;
    warnings = 0;
    infos = 0;
    suppressed = 0;
  }

let emit c t =
  if Hashtbl.mem c.suppress t.rule then c.suppressed <- c.suppressed + 1
  else begin
    c.items <- t :: c.items;
    match t.severity with
    | Error -> c.errors <- c.errors + 1
    | Warning -> c.warnings <- c.warnings + 1
    | Info -> c.infos <- c.infos + 1
  end

let emitf c ?file ?line ~rule severity fmt =
  Printf.ksprintf (fun message -> emit c (make ?file ?line ~rule severity message)) fmt

let items c = List.stable_sort compare (List.rev c.items)

let error_count c = c.errors

let warning_count c = c.warnings

let info_count c = c.infos

let suppressed_count c = c.suppressed

let has_errors c = c.errors > 0

let max_severity c =
  if c.errors > 0 then Some Error
  else if c.warnings > 0 then Some Warning
  else if c.infos > 0 then Some Info
  else None

let exit_code c = if c.errors > 0 then 2 else if c.warnings > 0 then 1 else 0

let print ?(machine = false) oc c =
  let render = if machine then to_machine else to_string in
  List.iter (fun t -> output_string oc (render t ^ "\n")) (items c)

let summary c =
  if c.errors = 0 && c.warnings = 0 && c.infos = 0 then "no findings"
  else begin
    let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
    let parts =
      (if c.errors > 0 then [ part c.errors "error" ] else [])
      @ (if c.warnings > 0 then [ part c.warnings "warning" ] else [])
      @ if c.infos > 0 then [ part c.infos "info" ] else []
    in
    String.concat ", " parts
  end
