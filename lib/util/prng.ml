type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea & Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  nonneg t mod n

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. mantissa *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let sample t arr k =
  let n = Array.length arr in
  if k > n then invalid_arg "Prng.sample: k exceeds array length";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  List.init k (fun i -> arr.(idx.(i)))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p out of (0,1]";
  let rec go n = if bernoulli t p then n else go (n + 1) in
  go 0
