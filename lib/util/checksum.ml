(* CRC-32 with the reflected IEEE polynomial 0xEDB88320, table-driven. *)

(* built eagerly at module init: a [lazy] here could be forced from
   several pool domains at once (checkpoint writers), which OCaml 5 lazy
   blocks do not allow *)
let table =
  Array.init 256 (fun n ->
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        if Int32.logand !c 1l <> 0l then
          c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else c := Int32.shift_right_logical !c 1
      done;
      !c)

(* the running (pre-finalization) state: start at all-ones, fold each
   byte through the table, xor with all-ones to finish *)
type stream = int32

let init = 0xFFFFFFFFl

let feed_sub st s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Checksum.feed_sub";
  let crc = ref st in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  !crc

let feed st s = feed_sub st s ~pos:0 ~len:(String.length s)
let finish st = Int32.logxor st 0xFFFFFFFFl

let crc32_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Checksum.crc32_sub";
  finish (feed_sub init s ~pos ~len)

let crc32 s = crc32_sub s ~pos:0 ~len:(String.length s)

let to_hex c = Printf.sprintf "%08lx" c

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let mix64 a b =
  (* splitmix64 finalizer over the xor-rotated pair; order-sensitive *)
  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k)) in
  let z = ref (Int64.logxor (rotl a 17) b) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xbf58476d1ce4e5b9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94d049bb133111ebL;
  Int64.logxor !z (Int64.shift_right_logical !z 31)
