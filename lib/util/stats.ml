let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> nan
  | s ->
    let n = List.length s in
    let nth i = List.nth s i in
    if n mod 2 = 1 then nth (n / 2)
    else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let stddev xs =
  match xs with
  | [] -> nan
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let minimum = function [] -> nan | x :: xs -> List.fold_left Float.min x xs

let maximum = function [] -> nan | x :: xs -> List.fold_left Float.max x xs

let percentile p xs =
  match sorted xs with
  | [] -> nan
  | s ->
    let n = List.length s in
    let rank =
      int_of_float (Float.round (p /. 100.0 *. float_of_int (n - 1)))
    in
    List.nth s (max 0 (min (n - 1) rank))

let round_to d x =
  let f = 10.0 ** float_of_int d in
  Float.round (x *. f) /. f
