type clock = unit -> float

let wall_clock = Unix.gettimeofday

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

module Token_bucket = struct
  type t = {
    clock : clock;
    rate : float;
    burst : float;
    lock : Mutex.t;
    mutable tokens : float;
    mutable last : float;
  }

  let create ?(clock = wall_clock) ~rate ~burst () =
    if not (Float.is_finite rate && rate > 0.0) then
      invalid_arg "Token_bucket.create: rate must be finite and positive";
    let burst = Float.max 1.0 burst in
    {
      clock;
      rate;
      burst;
      lock = Mutex.create ();
      tokens = burst;
      last = clock ();
    }

  (* clocks may stall or step backwards (virtual clocks, NTP): elapsed
     time is clamped at zero so the bucket never drains spontaneously *)
  let refill t =
    let now = t.clock () in
    let elapsed = Float.max 0.0 (now -. t.last) in
    t.last <- Float.max t.last now;
    t.tokens <- Float.min t.burst (t.tokens +. (elapsed *. t.rate))

  let try_take ?(cost = 1.0) t =
    locked t.lock (fun () ->
        refill t;
        if t.tokens >= cost then begin
          t.tokens <- t.tokens -. cost;
          true
        end
        else false)

  let retry_after_s ?(cost = 1.0) t =
    locked t.lock (fun () ->
        refill t;
        if t.tokens >= cost then 0.0
        else (cost -. t.tokens) /. t.rate)

  let available t =
    locked t.lock (fun () ->
        refill t;
        t.tokens)
end

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    clock : clock;
    window : int;
    min_samples : int;
    failure_ratio : float;
    cooldown_s : float;
    lock : Mutex.t;
    outcomes : bool array;  (* ring of the last [window] outcomes *)
    mutable next : int;
    mutable filled : int;
    mutable failures : int;
    mutable st : state;
    mutable opened_at : float;
    mutable probing : bool;  (* half-open: one probe outstanding *)
  }

  let create ?(clock = wall_clock) ?(window = 128) ?(min_samples = 32)
      ?(failure_ratio = 0.5) ?(cooldown_s = 1.0) () =
    if window < 1 then invalid_arg "Breaker.create: window < 1";
    {
      clock;
      window;
      min_samples = max 1 min_samples;
      failure_ratio;
      cooldown_s;
      lock = Mutex.create ();
      outcomes = Array.make window false;
      next = 0;
      filled = 0;
      failures = 0;
      st = Closed;
      opened_at = neg_infinity;
      probing = false;
    }

  let forget t =
    t.filled <- 0;
    t.next <- 0;
    t.failures <- 0

  let push t ok =
    if t.filled = t.window then begin
      (* evict the oldest outcome *)
      if t.outcomes.(t.next) then t.failures <- t.failures - 1
    end
    else t.filled <- t.filled + 1;
    t.outcomes.(t.next) <- not ok;
    if not ok then t.failures <- t.failures + 1;
    t.next <- (t.next + 1) mod t.window

  (* open -> half-open once the cooldown has elapsed; call under lock *)
  let tick t =
    match t.st with
    | Open when t.clock () -. t.opened_at >= t.cooldown_s ->
      t.st <- Half_open;
      t.probing <- false
    | Open | Closed | Half_open -> ()

  let state t =
    locked t.lock (fun () ->
        tick t;
        t.st)

  let allow t =
    locked t.lock (fun () ->
        tick t;
        match t.st with
        | Closed -> true
        | Open -> false
        | Half_open ->
          if t.probing then false
          else begin
            t.probing <- true;
            true
          end)

  let record t ~ok =
    locked t.lock (fun () ->
        tick t;
        match t.st with
        | Half_open ->
          t.probing <- false;
          if ok then begin
            t.st <- Closed;
            forget t
          end
          else begin
            t.st <- Open;
            t.opened_at <- t.clock ()
          end
        | Open ->
          (* a straggler from before the trip; the window is history *)
          ()
        | Closed ->
          push t ok;
          if
            t.filled >= t.min_samples
            && float_of_int t.failures
               >= t.failure_ratio *. float_of_int t.filled
          then begin
            t.st <- Open;
            t.opened_at <- t.clock ()
          end)

  let retry_after_s t =
    locked t.lock (fun () ->
        tick t;
        match t.st with
        | Closed | Half_open -> 0.0
        | Open ->
          Float.max 0.0 (t.cooldown_s -. (t.clock () -. t.opened_at)))
end

module Window = struct
  type t = {
    lock : Mutex.t;
    ring : float array;
    mutable next : int;
    mutable filled : int;
    mutable seen : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Window.create: capacity < 1";
    {
      lock = Mutex.create ();
      ring = Array.make capacity 0.0;
      next = 0;
      filled = 0;
      seen = 0;
    }

  let observe t v =
    locked t.lock (fun () ->
        t.ring.(t.next) <- v;
        t.next <- (t.next + 1) mod Array.length t.ring;
        if t.filled < Array.length t.ring then t.filled <- t.filled + 1;
        t.seen <- t.seen + 1)

  let count t = locked t.lock (fun () -> t.filled)

  let total t = locked t.lock (fun () -> t.seen)

  let snapshot t = locked t.lock (fun () -> Array.sub t.ring 0 t.filled)

  let percentile t q =
    if q < 0.0 || q > 100.0 then
      invalid_arg "Window.percentile: q outside [0,100]";
    let xs = snapshot t in
    let n = Array.length xs in
    if n = 0 then 0.0
    else begin
      Array.sort compare xs;
      (* nearest-rank: the smallest value with at least q% of the window
         at or below it *)
      let rank = int_of_float (ceil (q /. 100.0 *. float_of_int n)) in
      xs.(max 0 (min (n - 1) (rank - 1)))
    end

  let max_value t =
    let xs = snapshot t in
    Array.fold_left Float.max 0.0 xs
end
