(** Load-limiting primitives for the serving path: a token-bucket rate
    limiter, a sliding-window circuit breaker, and a sliding-window
    latency quantile estimator.

    All three are driven by an injectable clock (seconds as [float]) so
    their timing behaviour is unit-testable without sleeping; the default
    clock is {!wall_clock}. Every operation is safe to call concurrently
    from multiple domains or threads (one mutex per value). Clocks are
    allowed to stall or step backwards (virtual clocks in tests, NTP
    slews in production): elapsed time is clamped at zero, never
    negative. *)

type clock = unit -> float
(** Current time in seconds. Only differences of readings matter, so any
    monotone-enough time base works. *)

val wall_clock : clock
(** [Unix.gettimeofday]. *)

(** {1 Token bucket}

    The classic rate limiter: a bucket holds up to [burst] tokens and
    refills continuously at [rate] tokens per second; each admitted
    request takes one token (or an explicit [cost]). Steady load is
    capped at [rate] requests per second while short bursts up to
    [burst] pass untouched. *)

module Token_bucket : sig
  type t

  val create : ?clock:clock -> rate:float -> burst:float -> unit -> t
  (** A full bucket. [rate] is tokens per second; [burst] the bucket
      capacity (clamped to at least 1.0).
      @raise Invalid_argument when [rate] is not finite and positive. *)

  val try_take : ?cost:float -> t -> bool
  (** Refill by elapsed time, then take [cost] (default 1.0) tokens if
      available. [false] means the caller should shed or wait. *)

  val retry_after_s : ?cost:float -> t -> float
  (** Seconds until [cost] tokens will be available — [0.] when they
      already are. Does not take anything. *)

  val available : t -> float
  (** Tokens currently in the bucket (after refill). *)
end

(** {1 Circuit breaker}

    Tracks the outcome of the last [window] operations. When at least
    [min_samples] outcomes are present and the failure fraction reaches
    [failure_ratio], the breaker {e opens}: {!allow} answers [false] for
    [cooldown_s] seconds. After the cooldown it goes {e half-open} and
    lets a single probe through; a successful probe closes it (and
    forgets the window), a failed one re-opens it for another
    cooldown. *)

module Breaker : sig
  type t

  type state = Closed | Open | Half_open

  val create :
    ?clock:clock ->
    ?window:int ->
    ?min_samples:int ->
    ?failure_ratio:float ->
    ?cooldown_s:float ->
    unit ->
    t
  (** Defaults: [window = 128] outcomes, [min_samples = 32],
      [failure_ratio = 0.5], [cooldown_s = 1.0]. *)

  val state : t -> state
  (** Current state; reading it performs the open→half-open transition
      when the cooldown has elapsed. *)

  val allow : t -> bool
  (** [true] when a request may proceed. While half-open only the first
      caller gets [true] (the probe) until its outcome is recorded. *)

  val record : t -> ok:bool -> unit
  (** Report the outcome of an allowed operation. *)

  val retry_after_s : t -> float
  (** Seconds until the breaker will next allow a request — [0.] unless
      open. *)
end

(** {1 Sliding latency window}

    A ring of the last [capacity] observations; quantiles are computed
    over that window only, so the estimate tracks current conditions
    rather than the whole process lifetime (unlike the cumulative
    {!Metrics} histograms). *)

module Window : sig
  type t

  val create : capacity:int -> t
  (** @raise Invalid_argument when [capacity < 1]. *)

  val observe : t -> float -> unit

  val count : t -> int
  (** Observations currently in the window (at most [capacity]). *)

  val total : t -> int
  (** Observations ever made. *)

  val percentile : t -> float -> float
  (** [percentile t q] for [q] in \[0,100\]: the [q]-th percentile of the
      windowed observations (nearest-rank); [0.] when empty.
      @raise Invalid_argument when [q] is outside \[0,100\]. *)

  val max_value : t -> float
  (** Largest windowed observation; [0.] when empty. *)
end
