(** Diagnostics: rule-coded findings with source locations.

    The lint passes ([tsg_check], surfaced by [tsg-lint]) and the artifact
    parsers ({!Tsg_taxonomy.Taxonomy_io}, {!Tsg_core.Pattern_io}) report
    problems as values of {!t}: a stable rule code (["TAX005"],
    ["DB002"], ...), a severity, an optional [file:line] location for
    text-format artifacts, and a human-readable message. A {!collector}
    accumulates findings, honours per-rule suppression, and renders text or
    machine-readable output. The rule-code catalog lives in DESIGN.md. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val compare_severity : severity -> severity -> int
(** [Info < Warning < Error]. *)

type t = {
  rule : string;  (** stable code, e.g. ["TAX005"] *)
  severity : severity;
  file : string option;
  line : int option;  (** 1-based line in [file] *)
  message : string;
}

val make :
  ?file:string -> ?line:int -> rule:string -> severity -> string -> t

val makef :
  ?file:string ->
  ?line:int ->
  rule:string ->
  severity ->
  ('a, unit, string, t) format4 ->
  'a
(** [makef ~rule sev fmt ...] is {!make} over a format string. *)

val with_file : string -> t -> t
(** Stamp a file name onto a diagnostic that lacks one. *)

val to_string : t -> string
(** Human form: ["file:line: error [TAX005] message"] (location parts
    omitted when absent). *)

val to_machine : t -> string
(** Tab-separated [file line severity rule message] with ["-"] for absent
    location parts; one line, for toolchain consumption. *)

val compare : t -> t -> int
(** Orders by file, then line, then rule, then message. *)

(** {1 Collectors} *)

type collector

val collector : ?suppress:string list -> unit -> collector
(** A fresh collector. Findings whose rule code appears in [suppress] are
    dropped on {!emit} (case-sensitive). *)

val emit : collector -> t -> unit

val emitf :
  collector ->
  ?file:string ->
  ?line:int ->
  rule:string ->
  severity ->
  ('a, unit, string, unit) format4 ->
  'a

val items : collector -> t list
(** Collected findings sorted with {!compare}; suppression already
    applied. *)

val error_count : collector -> int

val warning_count : collector -> int

val info_count : collector -> int

val suppressed_count : collector -> int
(** Findings dropped by the suppression list. *)

val has_errors : collector -> bool

val max_severity : collector -> severity option
(** [None] when nothing was collected. *)

val exit_code : collector -> int
(** The lint exit convention: [2] with errors, [1] with warnings (but no
    errors), [0] otherwise — infos never affect the code. *)

val print : ?machine:bool -> out_channel -> collector -> unit
(** One finding per line ({!to_string}, or {!to_machine} when
    [machine]). *)

val summary : collector -> string
(** E.g. ["2 errors, 1 warning"]; ["no findings"] when empty. *)
