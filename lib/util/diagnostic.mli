(** Diagnostics: rule-coded findings with source locations.

    The lint passes ([tsg_check], surfaced by [tsg-lint]) and the artifact
    parsers ({!Tsg_taxonomy.Taxonomy_io}, {!Tsg_core.Pattern_io}) report
    problems as values of {!t}: a stable rule code (["TAX005"],
    ["DB002"], ...), a severity, an optional [file:line] location for
    text-format artifacts, and a human-readable message. A {!collector}
    accumulates findings, honours per-rule suppression, and renders text or
    machine-readable output. The rule-code catalog lives in DESIGN.md. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
(** ["info"], ["warning"], ["error"]. *)

val compare_severity : severity -> severity -> int
(** [Info < Warning < Error]. *)

type t = {
  rule : string;  (** stable code, e.g. ["TAX005"] *)
  severity : severity;
  file : string option;
  line : int option;  (** 1-based line in [file] *)
  message : string;
}

val make :
  ?file:string -> ?line:int -> rule:string -> severity -> string -> t

val makef :
  ?file:string ->
  ?line:int ->
  rule:string ->
  severity ->
  ('a, unit, string, t) format4 ->
  'a
(** [makef ~rule sev fmt ...] is {!make} over a format string. *)

val with_file : string -> t -> t
(** Stamp a file name onto a diagnostic that lacks one. *)

val to_string : t -> string
(** Human form: ["file:line: error [TAX005] message"] (location parts
    omitted when absent). *)

val to_machine : t -> string
(** Tab-separated [file line severity rule message] with ["-"] for absent
    location parts; one line, for toolchain consumption. *)

val to_json : t -> string
(** One JSON object [{"file":…,"line":…,"severity":…,"rule":…,"message":…}]
    with [null] for absent location parts; strings are escaped. *)

val compare : t -> t -> int
(** Orders by file, then line, then rule, then message. *)

(** {1 Collectors} *)

type collector

val collector : ?suppress:string list -> unit -> collector
(** A fresh collector. Findings whose rule code appears in [suppress] are
    dropped on {!emit} (case-sensitive). *)

val emit : collector -> t -> unit

val emitf :
  collector ->
  ?file:string ->
  ?line:int ->
  rule:string ->
  severity ->
  ('a, unit, string, unit) format4 ->
  'a

val items : collector -> t list
(** Collected findings sorted with {!compare}; suppression already
    applied. *)

val error_count : collector -> int

val warning_count : collector -> int

val info_count : collector -> int

val suppressed_count : collector -> int
(** Findings dropped by the suppression list. *)

val has_errors : collector -> bool

val max_severity : collector -> severity option
(** [None] when nothing was collected. *)

val exit_code : collector -> int
(** The lint exit convention: [2] with errors, [1] with warnings (but no
    errors), [0] otherwise — infos never affect the code. *)

type format = Text | Machine | Json
(** Output renderings shared by the CLI tools' [--format] option. *)

val format_of_string : string -> format option
(** Parses ["text"], ["machine"], ["json"]. *)

val print : ?machine:bool -> ?format:format -> out_channel -> collector -> unit
(** One finding per line ({!to_string}; {!to_machine} when [machine] or
    [~format:Machine]), or one JSON document under [~format:Json].
    [format] wins over the legacy [machine] flag. *)

val print_json : out_channel -> collector -> unit
(** The whole collector as one JSON document:
    [{"findings":[…],"errors":n,"warnings":n,"infos":n,"suppressed":n}]. *)

val summary : collector -> string
(** E.g. ["2 errors, 1 warning"]; ["no findings"] when empty. *)

(** {1 The central code registry}

    One authoritative list of every stable code the toolchain can emit:
    diagnostic rule codes (lint, analyzer, runtime supervision) and the
    serving protocol's error codes. [tsg-analyze]'s REG001 pass flags
    code-shaped literals used in the source but absent here, and
    [scripts/rule_catalog_check.sh] diffs this registry against the
    README/DESIGN catalogs. *)
module Registry : sig
  type entry = { code : string; default_severity : severity; summary : string }

  val rules : entry list
  (** All diagnostic rule codes, in catalog order. *)

  val protocol_errors : (string * string) list
  (** Stable [error <CODE> …] wire codes with one-line summaries. *)

  val find : string -> entry option

  val is_rule : string -> bool

  val is_protocol_error : string -> bool
end
