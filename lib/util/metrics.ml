type counter = { c_name : string; c_lock : Mutex.t; mutable c_value : int }

type gauge = { g_name : string; g_lock : Mutex.t; mutable g_value : int }

(* 1-2-5 series of bucket upper bounds, in seconds, plus an overflow
   bucket; index i counts observations v with bounds.(i-1) < v <= bounds.(i) *)
let bounds =
  let decades = [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 ] in
  Array.of_list (List.concat_map (fun d -> [ d; 2.0 *. d; 5.0 *. d ]) decades)

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  buckets : int array;  (* length = Array.length bounds + 1; last = overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type t = {
  lock : Mutex.t;
  mutable counters : counter list;  (* reverse registration order *)
  mutable gauges : gauge list;
  mutable histograms : histogram list;
}

let create () =
  { lock = Mutex.create (); counters = []; gauges = []; histograms = [] }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter t name =
  locked t.lock (fun () ->
      match List.find_opt (fun c -> c.c_name = name) t.counters with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_lock = t.lock; c_value = 0 } in
        t.counters <- c :: t.counters;
        c)

let incr ?(n = 1) c =
  if n < 0 then invalid_arg "Metrics.incr: negative increment";
  locked c.c_lock (fun () -> c.c_value <- c.c_value + n)

let value c = locked c.c_lock (fun () -> c.c_value)

let gauge t name =
  locked t.lock (fun () ->
      match List.find_opt (fun g -> g.g_name = name) t.gauges with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_lock = t.lock; g_value = 0 } in
        t.gauges <- g :: t.gauges;
        g)

let set_gauge g v = locked g.g_lock (fun () -> g.g_value <- v)

let add_gauge g n = locked g.g_lock (fun () -> g.g_value <- g.g_value + n)

let gauge_value g = locked g.g_lock (fun () -> g.g_value)

let hit_rate ~hits ~misses =
  let h = value hits and m = value misses in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let histogram t name =
  locked t.lock (fun () ->
      match List.find_opt (fun h -> h.h_name = name) t.histograms with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_lock = t.lock;
            buckets = Array.make (Array.length bounds + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_max = 0.0;
          }
        in
        t.histograms <- h :: t.histograms;
        h)

let bucket_of v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  locked h.h_lock (fun () ->
      h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v > h.h_max then h.h_max <- v)

let count h = locked h.h_lock (fun () -> h.h_count)

let sum h = locked h.h_lock (fun () -> h.h_sum)

let mean h =
  locked h.h_lock (fun () ->
      if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)

let percentile h q =
  if q < 0.0 || q > 100.0 then invalid_arg "Metrics.percentile: q outside [0,100]";
  locked h.h_lock (fun () ->
      if h.h_count = 0 then 0.0
      else begin
        let target = q /. 100.0 *. float_of_int h.h_count in
        let acc = ref 0 and i = ref 0 in
        let n = Array.length h.buckets in
        while !i < n - 1 && float_of_int (!acc + h.buckets.(!i)) < target do
          acc := !acc + h.buckets.(!i);
          i := !i + 1
        done;
        if !i >= Array.length bounds then h.h_max else bounds.(!i)
      end)

let max_value h = locked h.h_lock (fun () -> h.h_max)

let ms s = Printf.sprintf "%.3f" (1000.0 *. s)

let to_table t =
  let counters, gauges, histograms =
    locked t.lock (fun () ->
        (List.rev t.counters, List.rev t.gauges, List.rev t.histograms))
  in
  let table =
    Text_table.create
      [ "metric"; "count"; "mean ms"; "p50 ms"; "p95 ms"; "p99 ms"; "max ms" ]
  in
  List.iter
    (fun c -> Text_table.add_row table [ c.c_name; string_of_int (value c) ])
    counters;
  List.iter
    (fun g ->
      Text_table.add_row table [ g.g_name; string_of_int (gauge_value g) ])
    gauges;
  List.iter
    (fun h ->
      Text_table.add_row table
        [
          h.h_name;
          string_of_int (count h);
          ms (mean h);
          ms (percentile h 50.0);
          ms (percentile h 95.0);
          ms (percentile h 99.0);
          ms (max_value h);
        ])
    histograms;
  table

let render t = Text_table.render (to_table t)

let render_machine t =
  let counters, gauges, histograms =
    locked t.lock (fun () ->
        (List.rev t.counters, List.rev t.gauges, List.rev t.histograms))
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" c.c_name (value c)))
    counters;
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "gauge %s %d\n" g.g_name (gauge_value g)))
    gauges;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "hist %s count %d mean_ms %s p50_ms %s p95_ms %s p99_ms %s max_ms %s\n"
           h.h_name (count h) (ms (mean h))
           (ms (percentile h 50.0))
           (ms (percentile h 95.0))
           (ms (percentile h 99.0))
           (ms (max_value h))))
    histograms;
  Buffer.contents buf

let print t = Text_table.print (to_table t)
