(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial) for artifact integrity.

    Checkpoint files record a trailer checksum so a resumed run can tell a
    complete snapshot from a torn or bit-rotted one before trusting it. *)

val crc32 : string -> int32
(** Checksum of the whole string. [crc32 "123456789" = 0xCBF43926l]. *)

val crc32_sub : string -> pos:int -> len:int -> int32
(** Checksum of a substring, without copying.
    @raise Invalid_argument when the range is out of bounds. *)

val to_hex : int32 -> string
(** Lower-case 8-digit hex, e.g. ["cbf43926"]. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a hash — not a CRC; used for cheap content fingerprints
    (e.g. matching a checkpoint to its database and configuration). *)

val mix64 : int64 -> int64 -> int64
(** Order-sensitive combination of two 64-bit hashes. *)
