(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial) for artifact integrity.

    Checkpoint files record a trailer checksum so a resumed run can tell a
    complete snapshot from a torn or bit-rotted one before trusting it. *)

val crc32 : string -> int32
(** Checksum of the whole string. [crc32 "123456789" = 0xCBF43926l]. *)

val crc32_sub : string -> pos:int -> len:int -> int32
(** Checksum of a substring, without copying.
    @raise Invalid_argument when the range is out of bounds. *)

(** {1 Streaming interface}

    For callers that produce a record in pieces (WAL frames, large
    artifacts) and do not want to buffer the whole payload just to
    checksum it.  [finish (feed (feed init a) b) = crc32 (a ^ b)] for
    any split. *)

type stream
(** Running CRC state. Immutable — [feed] returns a new state, so a
    stream value can be reused as a fork point. *)

val init : stream
(** The state of an empty input: [finish init = crc32 ""]. *)

val feed : stream -> string -> stream
(** Fold a chunk into the running state. *)

val feed_sub : stream -> string -> pos:int -> len:int -> stream
(** Like {!feed} on a substring, without copying.
    @raise Invalid_argument when the range is out of bounds. *)

val finish : stream -> int32
(** Finalize to the same value the one-shot {!crc32} of the
    concatenated chunks would produce. *)

val to_hex : int32 -> string
(** Lower-case 8-digit hex, e.g. ["cbf43926"]. *)

val fnv1a64 : string -> int64
(** 64-bit FNV-1a hash — not a CRC; used for cheap content fingerprints
    (e.g. matching a checkpoint to its database and configuration). *)

val mix64 : int64 -> int64 -> int64
(** Order-sensitive combination of two 64-bit hashes. *)
