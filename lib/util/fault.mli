(** Failpoints: named fault-injection sites for chaos testing.

    Long mining runs and the serve loop thread {!inject} calls through
    their failure-prone seams (pool task dispatch, occurrence-index
    construction, artifact IO, checkpoint writes, request handling). In
    production the framework is disarmed and an injection site costs one
    atomic load and a branch; under test, a {e schedule} — parsed from the
    [TSG_FAULTS] environment variable or passed to {!configure} — arms
    chosen sites to raise {!Injected} with a per-site probability, exactly
    once, or on an exact hit count.

    Firing decisions are deterministic: each armed site draws from its own
    splitmix64 stream ({!Tsg_util.Prng}) seeded from the schedule seed and
    the site name, and counts its own hits, so a schedule replays
    identically however domains interleave their hits on {e other} sites.

    The injection-site catalog lives in DESIGN.md ("Fault tolerance"). *)

exception Injected of { site : string; hit : int }
(** Raised by {!inject} when the site's trigger fires; [hit] is the
    1-based count of {!inject} calls on that site so far. *)

type trigger =
  | Probability of float  (** fire each hit with probability [p] *)
  | Once  (** fire on the first hit, then disarm *)
  | On_hit of int  (** fire on exactly the [n]-th hit (1-based) *)

val configure : ?seed:int64 -> (string * trigger) list -> unit
(** Replace the schedule. An empty list disarms every site (same as
    {!clear}). [seed] (default [0x7461786f6772616dL]) drives the
    probabilistic triggers. *)

val parse_spec : string -> ((string * trigger) list, string) result
(** Parse a [TSG_FAULTS]-style schedule: comma-separated [site:trigger]
    pairs where trigger is a probability in \[0,1\] (["0.25"]), ["once"],
    or ["@N"] for the N-th hit. Whitespace around items is ignored;
    [Error msg] names the offending item. *)

val configure_from_env : unit -> (unit, string) result
(** Read [TSG_FAULTS] (and [TSG_FAULT_SEED], a decimal 64-bit seed) and
    {!configure} accordingly. [Ok ()] when the variable is unset or empty
    (schedule cleared). *)

val clear : unit -> unit
(** Disarm all sites and reset hit counts. *)

val armed : unit -> bool
(** [true] when any site is armed — the cheap guard {!inject} reads
    first. *)

val inject : string -> unit
(** [inject site] does nothing when the framework is disarmed (one atomic
    load). When armed, counts a hit on [site] and raises {!Injected} if
    the site's trigger fires. *)

val hit_count : string -> int
(** {!inject} calls observed on [site] since the last {!configure} /
    {!clear} (0 when disarmed throughout). *)

val fired_count : string -> int
(** Times [site] actually raised since the last {!configure} /
    {!clear}. *)

val diagnostic : ?file:string -> exn -> Diagnostic.t option
(** [Some d] (rule [FLT001], severity Error) when the exception is
    {!Injected}; [None] otherwise. Lets supervisors turn injected faults
    into structured findings. *)
