(** Opt-in internal self-checks.

    Expensive invariant checks sprinkled through the hot paths (e.g.
    {!Tsg_core.Occ_index}'s brute-force cross-validation) only run when the
    [TSG_DEBUG_CHECKS] environment variable is set to something other than
    ["0"], [""] or ["false"]. The variable is read once per process. *)

val checks_enabled : unit -> bool
