(* Per-domain scratch arenas for bitset temporaries.

   OCaml 5's minor collector is stop-the-world across domains, so the
   allocation rate of the *busiest* domain taxes every other one. The hot
   mining loops (occurrence-set intersections in Step 3, support sets in
   Step 2) used to allocate a fresh bitset per candidate; the arena lets
   them borrow a cleared scratch bitset instead and give it back, turning
   the steady-state allocation rate of those loops into (almost) zero.

   The arena lives in [Domain.DLS], so acquire/release never synchronize:
   each domain owns its own free lists, and a bitset borrowed on one
   domain is returned to that same domain's arena (tasks never migrate
   mid-body). Bitsets are bucketed by capacity because every workload
   mixes universes (graph count, embedding count) with different sizes. *)

type stats = { cached : int; hits : int; misses : int }

type bucket = { mutable free : Bitset.t list; mutable free_len : int }

type t = {
  buckets : (int, bucket) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { buckets = Hashtbl.create 8; hits = 0; misses = 0 })

let arena () = Domain.DLS.get key

let bucket_for a n =
  match Hashtbl.find_opt a.buckets n with
  | Some b -> b
  | None ->
    let b = { free = []; free_len = 0 } in
    Hashtbl.add a.buckets n b;
    b

let acquire n =
  let a = arena () in
  let b = bucket_for a n in
  match b.free with
  | s :: rest ->
    b.free <- rest;
    b.free_len <- b.free_len - 1;
    a.hits <- a.hits + 1;
    Bitset.clear s;
    s
  | [] ->
    a.misses <- a.misses + 1;
    Bitset.create n

(* Steady-state pool size is the deepest simultaneous borrow (the
   specialization recursion depth), so the cap is pure insurance against
   a leaky caller pinning unbounded memory in DLS. *)
let max_cached_per_bucket = 1024

let release s =
  let a = arena () in
  let b = bucket_for a (Bitset.capacity s) in
  if b.free_len < max_cached_per_bucket then begin
    b.free <- s :: b.free;
    b.free_len <- b.free_len + 1
  end

let with_bitset n f =
  let s = acquire n in
  match f s with
  | r ->
    release s;
    r
  | exception e ->
    release s;
    raise e

let drain () =
  let a = arena () in
  Hashtbl.reset a.buckets

let stats () =
  let a = arena () in
  let cached = Hashtbl.fold (fun _ b acc -> acc + b.free_len) a.buckets 0 in
  { cached; hits = a.hits; misses = a.misses }

let reset_stats () =
  let a = arena () in
  a.hits <- 0;
  a.misses <- 0
