(* after the rename, the new directory entry lives only in the page
   cache: a crash before the directory inode reaches the platter can
   forget the entry entirely, leaving neither the temp file (renamed
   away) nor the target (entry lost) — the file fsync alone does not
   cover it. POSIX requires an fsync on the directory itself. *)
let fsync_dir dir =
  Fault.inject "safe_io.dirsync";
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (* some filesystems refuse fsync on directories; the rename is
           still atomic, durability just falls back to the journal *)
        try Unix.fsync fd with Unix.Unix_error _ -> ())

let write_atomic ?(fsync = true) path content =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".tmp.")
      ""
  in
  match
    output_string oc content;
    flush oc;
    if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    (* the injection point for "crashed mid-write": the complete new
       version exists only as the temp file, [path] still holds the old *)
    Fault.inject "safe_io.write";
    Sys.rename tmp path;
    if fsync then fsync_dir dir
  with
  | () -> ()
  | exception e ->
    (try close_out_noerr oc with _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
