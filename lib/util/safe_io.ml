let write_atomic ?(fsync = true) path content =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".tmp.")
      ""
  in
  match
    output_string oc content;
    flush oc;
    if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    (* the injection point for "crashed mid-write": the complete new
       version exists only as the temp file, [path] still holds the old *)
    Fault.inject "safe_io.write";
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try close_out_noerr oc with _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
