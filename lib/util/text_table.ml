type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> (
      match headers with
      | [] -> []
      | _ :: rest -> Left :: List.map (fun _ -> Right) rest)
  in
  { headers; aligns; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  let n = width t in
  let len = List.length cells in
  let cells =
    if len >= n then cells
    else cells @ List.init (n - len) (fun _ -> "")
  in
  t.rows <- cells :: t.rows

let add_int_row t label ints =
  add_row t (label :: List.map string_of_int ints)

let pad align w s =
  let n = String.length s in
  if n >= w then s
  else
    let fill = String.make (w - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
      t.headers
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          let a = try List.nth t.aligns i with _ -> Left in
          pad a w cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n"
    ((render_row t.headers :: sep :: List.map render_row rows) @ [])

let print t = print_endline (render t)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line t.headers :: List.rev_map line t.rows) ^ "\n"

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
