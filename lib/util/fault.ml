(* Failpoints. The disarmed fast path is a single atomic load so that
   injection sites can sit on hot paths (one per pool task, one per
   occurrence index) without measurable cost; everything else happens
   under one mutex, which only schedules under test ever reach. *)

exception Injected of { site : string; hit : int }

type trigger =
  | Probability of float
  | Once
  | On_hit of int

type site_state = {
  trigger : trigger;
  prng : Prng.t;
  mutable hits : int;
  mutable fired : int;
  mutable spent : bool;  (* a one-shot trigger that already fired *)
}

let armed_flag = Atomic.make false

let lock = Mutex.create ()

let sites : (string, site_state) Hashtbl.t = Hashtbl.create 8

(* hits on sites the schedule does not mention, counted only while armed
   so the disarmed fast path stays free *)
let bystanders : (string, int) Hashtbl.t = Hashtbl.create 8

let default_seed = 0x7461786f6772616dL (* "taxogram" *)

let site_prng seed site =
  (* per-site stream: deterministic in the site's own hit order no matter
     how other sites interleave across domains *)
  Prng.create (Int64.add seed (Int64.of_int (Hashtbl.hash site)))

(* every table access goes through [locked]: the lock must not leak if a
   trigger's PRNG or a table operation raises mid-section *)
let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let configure ?(seed = default_seed) schedule =
  locked (fun () ->
      Hashtbl.reset sites;
      Hashtbl.reset bystanders;
      List.iter
        (fun (site, trigger) ->
          Hashtbl.replace sites site
            { trigger; prng = site_prng seed site; hits = 0; fired = 0;
              spent = false })
        schedule;
      Atomic.set armed_flag (Hashtbl.length sites > 0))

let clear () = configure []

let armed () = Atomic.get armed_flag

let parse_trigger item spec =
  if spec = "once" then Ok Once
  else if String.length spec > 1 && spec.[0] = '@' then
    match int_of_string_opt (String.sub spec 1 (String.length spec - 1)) with
    | Some n when n >= 1 -> Ok (On_hit n)
    | _ -> Error (Printf.sprintf "bad hit index in %S" item)
  else
    match float_of_string_opt spec with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Probability p)
    | Some _ -> Error (Printf.sprintf "probability out of [0,1] in %S" item)
    | None -> Error (Printf.sprintf "bad trigger %S in %S" spec item)

let parse_spec text =
  let items =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc item ->
      match acc with
      | Error _ as e -> e
      | Ok schedule -> (
        match String.index_opt item ':' with
        | None -> Error (Printf.sprintf "missing ':' in %S" item)
        | Some i ->
          let site = String.sub item 0 i in
          let spec = String.sub item (i + 1) (String.length item - i - 1) in
          if site = "" then Error (Printf.sprintf "empty site in %S" item)
          else
            (match parse_trigger item spec with
            | Ok t -> Ok ((site, t) :: schedule)
            | Error _ as e -> e)))
    (Ok []) items
  |> Result.map List.rev

let configure_from_env () =
  let seed =
    match Sys.getenv_opt "TSG_FAULT_SEED" with
    | None | Some "" -> default_seed
    | Some s -> (
      match Int64.of_string_opt (String.trim s) with
      | Some v -> v
      | None -> default_seed)
  in
  match Sys.getenv_opt "TSG_FAULTS" with
  | None | Some "" ->
    clear ();
    Ok ()
  | Some spec -> (
    match parse_spec spec with
    | Ok schedule ->
      configure ~seed schedule;
      Ok ()
    | Error _ as e -> e)

(* the armed path: count the hit, decide under the lock, raise outside it *)
let slow_path site =
  let verdict =
    locked (fun () ->
        match Hashtbl.find_opt sites site with
        | None ->
          Hashtbl.replace bystanders site
            (1 + Option.value ~default:0 (Hashtbl.find_opt bystanders site));
          None
        | Some st ->
          st.hits <- st.hits + 1;
          let fire =
            (not st.spent)
            &&
            match st.trigger with
            | Probability p -> p > 0.0 && Prng.bernoulli st.prng p
            | Once ->
              st.spent <- true;
              true
            | On_hit n ->
              if st.hits = n then begin
                st.spent <- true;
                true
              end
              else false
          in
          if fire then begin
            st.fired <- st.fired + 1;
            Some st.hits
          end
          else None)
  in
  match verdict with
  | None -> ()
  | Some hit -> raise (Injected { site; hit })

let inject site = if Atomic.get armed_flag then slow_path site

let hit_count site =
  locked (fun () ->
      match Hashtbl.find_opt sites site with
      | Some st -> st.hits
      | None -> Option.value ~default:0 (Hashtbl.find_opt bystanders site))

let fired_count site =
  locked (fun () ->
      match Hashtbl.find_opt sites site with Some st -> st.fired | None -> 0)

let diagnostic ?file = function
  | Injected { site; hit } ->
    Some
      (Diagnostic.makef ?file ~rule:"FLT001" Diagnostic.Error
         "fault injected at site %s (hit %d)" site hit)
  | _ -> None
