(** Fixed-capacity dense bitsets.

    Occurrence sets in Taxogram (Section 3, Step 2 of the paper) are
    implemented as bitsets so that the support of a specialized pattern is a
    single bitwise-and away from its parent's occurrence set (Lemma 7). *)

type t

val create : int -> t
(** [create n] is an empty bitset with capacity for members [0..n-1]. *)

val capacity : t -> int

val copy : t -> t

val set : t -> int -> unit

val unset : t -> int -> unit

val mem : t -> int -> bool

val cardinal : t -> int
(** Number of members; population count over the words. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every member of [a] is a member of [b]. *)

val inter : t -> t -> t
(** Fresh intersection; capacities must match. *)

val inter_into : dst:t -> t -> t -> unit
(** [inter_into ~dst a b] stores [a ∩ b] in [dst] (which may alias [a]). *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [cardinal (inter a b)] without allocating. *)

val union : t -> t -> t

val union_into : dst:t -> t -> t -> unit

val diff : t -> t -> t

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val exists : (int -> bool) -> t -> bool

val for_all : (int -> bool) -> t -> bool

val to_list : t -> int list

val of_list : int -> int list -> t
(** [of_list n members] is a bitset of capacity [n] holding [members]. *)

val full : int -> t
(** [full n] holds every member [0..n-1]. *)

val clear : t -> unit
(** Remove all members in place. *)

val choose : t -> int option
(** Smallest member, if any. *)

val pp : Format.formatter -> t -> unit
