(** Small numeric summaries used when reporting dataset properties (Table 1)
    and experiment measurements. *)

val mean : float list -> float
(** Mean of a non-empty list; [nan] on the empty list. *)

val mean_int : int list -> float

val median : float list -> float

val stddev : float list -> float
(** Population standard deviation. *)

val minimum : float list -> float

val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,100], nearest-rank on the sorted list. *)

val round_to : int -> float -> float
(** [round_to d x] rounds [x] to [d] decimal places. *)
