module Protocol = Tsg_query.Protocol
module Epoch = Tsg_query.Epoch
module Limiter = Tsg_util.Limiter
module Prng = Tsg_util.Prng
module Checksum = Tsg_util.Checksum

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type t = {
  host : Unix.inet_addr;
  port : int;
  r_name : string;
  io_timeout_s : float;
  pool_limit : int;
  lock : Mutex.t;
  mutable pool : conn list;
  mutable seq : int;
  r_window : Limiter.Window.t;
  r_breaker : Limiter.Breaker.t;
  r_up : bool Atomic.t;
  r_epoch : Epoch.t option Atomic.t;
  r_degraded : bool Atomic.t;
  (* jittered probe backoff: a down replica is re-probed on an
     exponential schedule with per-replica jitter, so a shard-wide
     restart does not summon every router's probes in lockstep *)
  backoff_base_s : float;
  backoff_cap_s : float;
  r_prng : Prng.t;  (** guarded by [lock] *)
  mutable fail_streak : int;  (** guarded by [lock] *)
  mutable retry_at : float;  (** guarded by [lock] *)
}

let create ?clock ?(io_timeout_s = 2.0) ?(window = 256) ?(breaker_window = 32)
    ?(breaker_min_samples = 8) ?(breaker_cooldown_s = 1.0) ?(pool_limit = 8)
    ?(backoff_base_s = 0.1) ?(backoff_cap_s = 2.0) ~host ~port ~name () =
  {
    host;
    port;
    r_name = name;
    io_timeout_s;
    pool_limit;
    lock = Mutex.create ();
    pool = [];
    seq = 0;
    r_window = Limiter.Window.create ~capacity:window;
    r_breaker =
      Limiter.Breaker.create ?clock ~window:breaker_window
        ~min_samples:breaker_min_samples ~cooldown_s:breaker_cooldown_s ();
    r_up = Atomic.make true;
    r_epoch = Atomic.make None;
    r_degraded = Atomic.make false;
    backoff_base_s;
    backoff_cap_s;
    (* deterministic per name+port (distinct replicas jitter apart), mixed
       with the wall clock so two routers fronting the same fleet do not
       share a schedule either *)
    r_prng =
      Prng.create
        (Checksum.mix64 (Checksum.fnv1a64 name)
           (Int64.of_float (Unix.gettimeofday () *. 1e6)));
    fail_streak = 0;
    retry_at = 0.0;
  }

let name t = t.r_name

let endpoint t = (t.host, t.port)

let window t = t.r_window

let breaker t = t.r_breaker

let up t = Atomic.get t.r_up

let epoch t = Atomic.get t.r_epoch

let set_epoch t e = Atomic.set t.r_epoch e

let degraded t = Atomic.get t.r_degraded

let set_degraded t d = Atomic.set t.r_degraded d

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let close_conn c =
  (* closing the channels would double-close the shared fd *)
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let close t =
  let conns = locked t (fun () ->
      let cs = t.pool in
      t.pool <- [];
      cs)
  in
  List.iter close_conn conns

let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (t.host, t.port));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let checkout t =
  match
    locked t (fun () ->
        match t.pool with
        | c :: rest ->
          t.pool <- rest;
          Some c
        | [] -> None)
  with
  | Some c -> c
  | None -> connect t

let checkin t c =
  let keep =
    locked t (fun () ->
        if List.length t.pool < t.pool_limit then begin
          t.pool <- c :: t.pool;
          true
        end
        else false)
  in
  if not keep then close_conn c

let next_tag t =
  locked t (fun () ->
      t.seq <- t.seq + 1;
      Printf.sprintf "r%d" t.seq)

(* one reply block: a single line, [ok <n>] plus n result lines, or a
   [begin stats]/[end stats] bracket; the first line may carry a tag *)
let read_block ic =
  let first = input_line ic in
  let tag, body = Protocol.split_tag first in
  let block =
    match String.split_on_char ' ' body with
    | [ "ok"; n ] when int_of_string_opt n <> None ->
      let n = int_of_string n in
      let buf = Buffer.create 256 in
      Buffer.add_string buf body;
      for _ = 1 to n do
        Buffer.add_char buf '\n';
        Buffer.add_string buf (input_line ic)
      done;
      Buffer.contents buf
    | "begin" :: "stats" :: _ ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf body;
      let rec go () =
        let line = input_line ic in
        Buffer.add_char buf '\n';
        Buffer.add_string buf line;
        if line <> "end stats" then go ()
      in
      go ();
      Buffer.contents buf
    | _ -> body
  in
  (tag, block)

let max_stale_blocks = 64

let call ?timeout_s t request =
  let timeout_s = Option.value ~default:t.io_timeout_s timeout_s in
  match checkout t with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: connect: %s" t.r_name (Unix.error_message e))
  | c -> (
    let tag = next_tag t in
    let attempt () =
      (try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO (Float.max 0.01 timeout_s)
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      output_string c.oc (Printf.sprintf "id %s %s\n" tag request);
      flush c.oc;
      let rec read_reply budget =
        if budget = 0 then failwith "too many unmatched replies"
        else
          let got_tag, block = read_block c.ic in
          if got_tag = Some tag then block
          else
            (* a reply abandoned by an earlier timed-out call on this
               pooled connection: skip it *)
            read_reply (budget - 1)
      in
      read_reply max_stale_blocks
    in
    match attempt () with
    | block ->
      checkin t c;
      Ok block
    | exception e ->
      close_conn c;
      let msg =
        match e with
        | End_of_file -> "connection closed"
        | Sys_blocked_io -> "read timed out"
        | Sys_error m -> m
        | Unix.Unix_error (ue, _, _) -> Unix.error_message ue
        | Failure m -> m
        | e -> Printexc.to_string e
      in
      Error (Printf.sprintf "%s: %s" t.r_name msg))

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* [... epoch <e> ...] anywhere in a health line *)
let epoch_of_health block =
  let rec scan = function
    | "epoch" :: e :: _ -> Epoch.of_string e
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (String.split_on_char ' ' block)

let backoff_delay t =
  locked t (fun () ->
      t.fail_streak <- min (t.fail_streak + 1) 16;
      let d =
        Float.min t.backoff_cap_s
          (t.backoff_base_s *. Float.pow 2.0 (float_of_int (t.fail_streak - 1)))
      in
      (* full jitter in [d/2, d): the point is that replicas (and
         routers) spread out, not the exact curve *)
      d /. 2.0 +. Prng.float t.r_prng (d /. 2.0))

let probe ?(timeout_s = 1.0) ?(force = false) t =
  let now = Unix.gettimeofday () in
  let backed_off =
    (not force)
    && (not (Atomic.get t.r_up))
    && locked t (fun () -> now < t.retry_at)
  in
  if backed_off then false
  else begin
    let healthy =
      match call ~timeout_s t "health" with
      | Ok block when has_prefix ~prefix:"ok health" block ->
        Atomic.set t.r_epoch (epoch_of_health block);
        true
      | Ok _ | Error _ -> false
    in
    Atomic.set t.r_up healthy;
    if healthy then
      locked t (fun () ->
          t.fail_streak <- 0;
          t.retry_at <- 0.0)
    else begin
      let delay = backoff_delay t in
      locked t (fun () -> t.retry_at <- Unix.gettimeofday () +. delay)
    end;
    healthy
  end
