(** Pure scatter-gather reply merging — no sockets, unit-testable.

    Each shard answers a data query with a reply block ([ok <n>] plus
    [n] result lines, or a single [error ...] line). Because shard
    slices print {e global} pattern ids ({!Tsg_query.Store.external_id})
    and inherit interest ratios from the unsliced store, merging is just
    re-sorting the union under the single-node order — the merged block
    is byte-identical to what one unsharded engine would answer. *)

type verb =
  | List  (** [contains] / [by-label]: every match, ascending id *)
  | Top_k of int * [ `Support | `Interest ]
      (** best [k] by (support desc, id asc) or (score desc, id asc) *)

val verb_of_query : Tsg_query.Protocol.query -> verb option
(** [None] for barrier verbs. *)

val merge : ?epochs:string option list -> verb -> string list -> string
(** [merge verb blocks] combines one reply block per shard (in shard
    order) into the single-node reply. If any shard answered an error
    block, that error (the first, in shard order) is the merged answer —
    a partial listing would be silently wrong. Duplicate global ids
    (overlapping slices) keep their first occurrence.

    [epochs] (parallel to [blocks], [None] for a shard with no epoch
    pin) is the mixed-merge refusal: two {e different} [Some] epochs
    answer [error STALE_EPOCH merge refused ...] before any row-level
    work — blocks computed from different artifact versions must never
    combine into one reply, whatever upstream bug produced them.
    @raise Failure on a block that is neither [ok <n> ...] nor an error
    line. *)
