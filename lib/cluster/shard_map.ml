module Checksum = Tsg_util.Checksum

type t = {
  n_shards : int;
  points : (int64 * int) array;  (* (ring point, shard), sorted by point *)
}

let fingerprint = Checksum.fnv1a64

(* FNV-1a alone disperses the low bits of short, similar strings far
   better than the high bits that order the ring — raw vnode points
   cluster and the partition skews badly. Scrambling every hash through
   the splitmix64 finalizer (Checksum.mix64 against a fixed salt) gives
   uniform ring positions; slicing and routing agree because both go
   through [shard_of_key]. *)
let ring_position s = Checksum.mix64 (fingerprint s) 0x9e3779b97f4a7c15L

let create ?(vnodes = 64) ~shards () =
  if shards < 1 then invalid_arg "Shard_map.create: shards < 1";
  if vnodes < 1 then invalid_arg "Shard_map.create: vnodes < 1";
  let points = Array.make (shards * vnodes) (0L, 0) in
  for s = 0 to shards - 1 do
    for v = 0 to vnodes - 1 do
      points.((s * vnodes) + v) <-
        (ring_position (Printf.sprintf "shard-%d#%d" s v), s)
    done
  done;
  (* unsigned 64-bit order on the circle; ties (hash collisions between
     vnode names) break on the shard index so the ring is deterministic *)
  Array.sort
    (fun (a, sa) (b, sb) ->
      let c = Int64.unsigned_compare a b in
      if c <> 0 then c else compare sa sb)
    points;
  { n_shards = shards; points }

let shards t = t.n_shards

let shard_of_key t key =
  if t.n_shards = 1 then 0
  else begin
    let h = ring_position key in
    (* first ring point with point >= h, wrapping to points.(0) *)
    let n = Array.length t.points in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
      else hi := mid
    done;
    snd t.points.(if !lo = n then 0 else !lo)
  end
