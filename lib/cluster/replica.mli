(** One backend replica as seen by the router: an endpoint, a pool of
    tagged protocol connections, a circuit breaker, a sliding latency
    window (the hedge trigger), a probed health flag, and the artifact
    epoch the replica last reported.

    Every call is tagged ([id <token> <request>] —
    {!Tsg_query.Protocol.split_tag}) so a pooled connection can never
    hand a stale reply to the wrong request: replies whose token does
    not match are discarded. A call that fails at the transport level
    (connect/read/write error, timeout) closes its connection instead
    of returning it to the pool. Thread-safe. *)

type t

val create :
  ?clock:Tsg_util.Limiter.clock ->
  ?io_timeout_s:float ->
  ?window:int ->
  ?breaker_window:int ->
  ?breaker_min_samples:int ->
  ?breaker_cooldown_s:float ->
  ?pool_limit:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  host:Unix.inet_addr ->
  port:int ->
  name:string ->
  unit ->
  t
(** [name] labels the replica in logs and errors (e.g. ["0/1"] for
    shard 0, replica 1). Defaults: [io_timeout_s = 2.0] (per-call cap
    when the caller gives no tighter one), latency [window = 256]
    samples, breaker over 32 outcomes with 8 minimum samples and 1s
    cooldown, at most [pool_limit = 8] idle pooled connections. A down
    replica is re-probed on an exponential backoff from
    [backoff_base_s] (0.1s) doubling up to [backoff_cap_s] (2s), with
    per-replica jitter so a fleet-wide restart does not draw every
    probe at once. *)

val name : t -> string

val endpoint : t -> Unix.inet_addr * int

val call : ?timeout_s:float -> t -> string -> (string, string) result
(** [call t request] sends one request line and returns the reply block
    with its tag stripped — [ok <n>] listings arrive whole, [begin
    stats]/[end stats] blocks too. [Error msg] is a transport-level
    failure (protocol-level failures are [Ok "error ..."] blocks — the
    router classifies those). The read deadline is [timeout_s] (default
    [io_timeout_s]), enforced with [SO_RCVTIMEO]. *)

val probe : ?timeout_s:float -> ?force:bool -> t -> bool
(** One [health] round-trip (default timeout 1s); records the verdict
    in {!up} and the reported serving epoch in {!epoch}. While the
    replica is down, probes inside the current backoff window return
    [false] without touching the network — pass [~force:true] to probe
    anyway (reload and scrub do, so repair is never delayed by the
    backoff schedule). *)

val up : t -> bool
(** Last probe verdict; [true] before any probe. *)

val epoch : t -> Tsg_query.Epoch.t option
(** Serving epoch from the last successful probe; [None] before any
    probe or when the replica predates epoch stamping. *)

val set_epoch : t -> Tsg_query.Epoch.t option -> unit
(** Record an epoch learned outside {!probe} (e.g. from a two-phase
    commit acknowledgement). *)

val degraded : t -> bool
(** Fenced by the anti-entropy scrubber: the replica answers probes but
    serves the wrong epoch and resync has not (yet) fixed it. Degraded
    replicas take no data traffic. *)

val set_degraded : t -> bool -> unit

val window : t -> Tsg_util.Limiter.Window.t
(** Observed latencies of successful calls, seconds. *)

val breaker : t -> Tsg_util.Limiter.Breaker.t
(** Availability breaker; the router records call outcomes here. *)

val close : t -> unit
(** Drop all pooled connections. *)
