module Protocol = Tsg_query.Protocol

type verb = List | Top_k of int * [ `Support | `Interest ]

let verb_of_query = function
  | Protocol.Contains _ | Protocol.By_label _ -> Some List
  | Protocol.Top_k (k, order) -> Some (Top_k (k, order))
  | Protocol.(
      Stats | Health | Epoch_info | Reload | Prepare | Commit | Abort | Quit)
    ->
    None

type row = {
  id : int;
  score : float;  (* 0. for un-scored listings *)
  support_count : int;
  line : string;
}

let parse_row line =
  match String.split_on_char ' ' line with
  | "p" :: id :: "score" :: s :: "support" :: cd :: _ -> (id, Some s, cd)
  | "p" :: id :: "support" :: cd :: _ -> (id, None, cd)
  | _ -> failwith (Printf.sprintf "Merge: bad result line %S" line)

let row_of_line line =
  let id, score, cd = parse_row line in
  let id =
    match int_of_string_opt id with
    | Some id -> id
    | None -> failwith (Printf.sprintf "Merge: bad pattern id in %S" line)
  in
  let score =
    match score with
    | None -> 0.0
    | Some s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> failwith (Printf.sprintf "Merge: bad score in %S" line))
  in
  let support_count =
    match String.index_opt cd '/' with
    | Some i -> (
      match int_of_string_opt (String.sub cd 0 i) with
      | Some c -> c
      | None -> failwith (Printf.sprintf "Merge: bad support in %S" line))
    | None -> failwith (Printf.sprintf "Merge: bad support in %S" line)
  in
  { id; score; support_count; line }

let is_error_block b =
  let _, b = Protocol.split_tag b in
  String.length b >= 5 && String.sub b 0 5 = "error"

(* [ok <n>] plus n result lines -> rows *)
let rows_of_block block =
  match String.split_on_char '\n' block with
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "ok"; n ] -> (
      match int_of_string_opt n with
      | Some n when n = List.length rest -> List.map row_of_line rest
      | _ -> failwith (Printf.sprintf "Merge: bad reply header %S" header))
    | _ -> failwith (Printf.sprintf "Merge: bad reply header %S" header))
  | [] -> failwith "Merge: empty reply block"

let render rows =
  String.concat "\n"
    (Printf.sprintf "ok %d" (List.length rows)
    :: List.map (fun r -> r.line) rows)

let take k l =
  let rec go k = function
    | x :: rest when k > 0 -> x :: go (k - 1) rest
    | _ -> []
  in
  go k l

let dedup_by_id rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.id then false
      else begin
        Hashtbl.add seen r.id ();
        true
      end)
    rows

(* the last line of defense against a silent mixed-version merge: the
   router pins every scattered request to one target epoch, so the
   per-block epochs it hands us must be identical — if they ever are
   not (a routing bug, a future caller skipping the pin), answering
   [STALE_EPOCH] is strictly better than fabricating an answer no
   single artifact version ever contained *)
let mixed_epochs epochs =
  let rec go seen = function
    | [] -> None
    | None :: rest -> go seen rest
    | Some e :: rest -> (
      match seen with
      | Some e' when e' <> e -> Some (e', e)
      | _ -> go (Some e) rest)
  in
  go None epochs

let merge ?(epochs = []) verb blocks =
  match mixed_epochs epochs with
  | Some (a, b) ->
    Protocol.error_line Protocol.Stale_epoch
      (Printf.sprintf "merge refused: shard blocks from epochs %s and %s" a b)
  | None -> (
  match List.find_opt is_error_block blocks with
  | Some e -> e
  | None -> (
    let rows = dedup_by_id (List.concat_map rows_of_block blocks) in
    match verb with
    | List -> render (List.sort (fun a b -> compare a.id b.id) rows)
    | Top_k (k, `Support) ->
      render
        (take k
           (List.sort
              (fun a b ->
                let c = compare b.support_count a.support_count in
                if c <> 0 then c else compare a.id b.id)
              rows))
    | Top_k (k, `Interest) ->
      render
        (take k
           (List.sort
              (fun a b ->
                let c = compare b.score a.score in
                if c <> 0 then c else compare a.id b.id)
              rows))))
