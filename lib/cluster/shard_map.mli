(** Consistent hashing of shard keys onto shard indexes.

    A classic vnode ring: every shard owns [vnodes] points on a 64-bit
    circle (FNV-1a64 of ["shard-<i>#<j>"]); a key lands on the first
    point clockwise of its own hash. Two properties matter here:

    - {b agreement} — the mapping is a pure function of [(shards,
      vnodes)], so [tsg-serve --shard i/n] slicing a pattern artifact
      and [tsg-router] picking a preferred replica compute the same
      partition without talking to each other;
    - {b stability} — going from [n] to [n+1] shards moves an expected
      [1/(n+1)] of the keys, so resharding invalidates per-replica
      caches proportionally, not wholesale. *)

type t

val create : ?vnodes:int -> shards:int -> unit -> t
(** [vnodes] defaults to 64 points per shard.
    @raise Invalid_argument when [shards < 1] or [vnodes < 1]. *)

val shards : t -> int

val shard_of_key : t -> string -> int
(** The owning shard of a key, in [0 .. shards-1]. Deterministic. *)

val fingerprint : string -> int64
(** The raw key hash (FNV-1a64) — also used by the router to rotate
    replica preference within a shard. *)
