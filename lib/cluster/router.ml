module Protocol = Tsg_query.Protocol
module Serve = Tsg_query.Serve
module Epoch = Tsg_query.Epoch
module Taxonomy = Tsg_taxonomy.Taxonomy
module Label = Tsg_graph.Label
module Metrics = Tsg_util.Metrics
module Limiter = Tsg_util.Limiter
module Diagnostic = Tsg_util.Diagnostic
module Fault = Tsg_util.Fault
module Prng = Tsg_util.Prng
module Checksum = Tsg_util.Checksum

type config = {
  hedge_min_s : float;
  hedge_pctl : float;
  deadline_s : float;
  probe_interval_s : float;
  reload_gate_s : float;
  scrub_interval_s : float;
  resync : bool;
}

let default_config =
  {
    hedge_min_s = 0.002;
    hedge_pctl = 95.0;
    deadline_s = 2.0;
    probe_interval_s = 1.0;
    reload_gate_s = 10.0;
    scrub_interval_s = 5.0;
    resync = true;
  }

type t = {
  cfg : config;
  taxonomy : Taxonomy.t option;
  shard_array : Replica.t array array;
  metrics : Metrics.t;
  started : float;
  reload_lock : Mutex.t;
  on_diagnostic : Diagnostic.t -> unit;
  target : Epoch.t option Atomic.t;
  prng_lock : Mutex.t;
  prng : Prng.t;  (** guarded by [prng_lock] *)
  c_requests : Metrics.counter;
  c_hedges : Metrics.counter;
  c_hedge_wins : Metrics.counter;
  c_failovers : Metrics.counter;
  c_replica_errors : Metrics.counter;
  c_stale : Metrics.counter;
  c_deadline : Metrics.counter;
  c_unavailable : Metrics.counter;
  c_reloads : Metrics.counter;
  c_reload_aborts : Metrics.counter;
  c_probe_down : Metrics.counter;
  c_scrubs : Metrics.counter;
  c_scrub_faults : Metrics.counter;
  c_resyncs : Metrics.counter;
  g_up : Metrics.gauge;
  g_degraded : Metrics.gauge;
  h_latency : Metrics.histogram;
}

let default_on_diagnostic d = prerr_endline (Diagnostic.to_string d)

let create ?(config = default_config) ?taxonomy
    ?(on_diagnostic = default_on_diagnostic) ~metrics ~shards () =
  Array.iteri
    (fun i reps ->
      if Array.length reps = 0 then
        invalid_arg (Printf.sprintf "Router.create: shard %d has no replicas" i))
    shards;
  if Array.length shards = 0 then invalid_arg "Router.create: no shards";
  {
    cfg = config;
    taxonomy;
    shard_array = shards;
    metrics;
    started = Unix.gettimeofday ();
    reload_lock = Mutex.create ();
    on_diagnostic;
    target = Atomic.make None;
    prng_lock = Mutex.create ();
    prng =
      Prng.create
        (Checksum.mix64
           (Checksum.fnv1a64 "router.probe")
           (Int64.of_float (Unix.gettimeofday () *. 1e6)));
    c_requests = Metrics.counter metrics "cluster.requests";
    c_hedges = Metrics.counter metrics "cluster.hedges";
    c_hedge_wins = Metrics.counter metrics "cluster.hedge_wins";
    c_failovers = Metrics.counter metrics "cluster.failovers";
    c_replica_errors = Metrics.counter metrics "cluster.replica_errors";
    c_stale = Metrics.counter metrics "cluster.stale_epoch";
    c_deadline = Metrics.counter metrics "cluster.deadline_giveups";
    c_unavailable = Metrics.counter metrics "cluster.unavailable";
    c_reloads = Metrics.counter metrics "cluster.reloads";
    c_reload_aborts = Metrics.counter metrics "cluster.reload_aborts";
    c_probe_down = Metrics.counter metrics "cluster.probe_down";
    c_scrubs = Metrics.counter metrics "cluster.scrubs";
    c_scrub_faults = Metrics.counter metrics "cluster.scrub_faults";
    c_resyncs = Metrics.counter metrics "cluster.resyncs";
    g_up = Metrics.gauge metrics "cluster.replicas_up";
    g_degraded = Metrics.gauge metrics "cluster.replicas_degraded";
    h_latency = Metrics.histogram metrics "cluster.latency";
  }

let config t = t.cfg

let shards t = t.shard_array

let target_epoch t = Atomic.get t.target

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- request classification -------------------------------------------- *)

type request =
  | Data of Merge.verb * string  (* merge plan, affinity key *)
  | Health
  | Stats
  | Epoch_verb
  | Reload_verb
  | Quit
  | Ignore
  | Bad of string

(* [by-label] queries for any label of one closure share their shard
   key: the most general ancestor. Repeats land on the same replica. *)
let by_label_key t name =
  match t.taxonomy with
  | None -> "root:" ^ name
  | Some tax -> (
    match Taxonomy.id_of_name tax name with
    | id -> "root:" ^ Label.name (Taxonomy.labels tax) (Taxonomy.most_general tax id)
    | exception Not_found -> "root:" ^ name)

let classify t body =
  if body = "" || body.[0] = '#' then Ignore
  else
    match String.split_on_char ' ' body with
    | [ "health" ] -> Health
    | [ "stats" ] -> Stats
    | [ "epoch" ] -> Epoch_verb
    | [ "reload" ] -> Reload_verb
    | [ "quit" ] -> Quit
    | "contains" :: _ -> Data (Merge.List, body)
    | "by-label" :: rest ->
      Data
        ( Merge.List,
          match rest with [ name ] -> by_label_key t name | _ -> body )
    | "top-k" :: rest -> (
      match rest with
      | [ k; "support" ] when int_of_string_opt k <> None ->
        Data (Merge.Top_k (int_of_string k, `Support), body)
      | [ k; "interest" ] when int_of_string_opt k <> None ->
        Data (Merge.Top_k (int_of_string k, `Interest), body)
      (* other spellings scatter anyway: the shards answer the
         authoritative BADREQ, which merge propagates before any
         row-level work *)
      | _ -> Data (Merge.List, body))
    | cmd :: _ -> Bad cmd
    | [] -> Ignore

(* --- cached helper threads --------------------------------------------- *)

(* Every data request needs short-lived helpers — one per extra shard in
   the scatter, one per replica attempt in the hedged fan-out. At serving
   rates, creating and destroying real threads for each is measurable
   runtime-lock and scheduler churn, so finished helpers park on an idle
   list and are handed the next closure instead. The pool grows on
   demand (a helper can block for a full request deadline, so a fixed
   size could starve concurrent requests) and only the idle cache is
   bounded; parked threads cost one waiting condvar each. *)
module Workers = struct
  type worker = {
    w_lock : Mutex.t;
    w_cond : Condition.t;
    mutable w_job : (unit -> unit) option;
  }

  let idle : worker list ref = ref []

  let idle_lock = Mutex.create ()

  let max_idle = 32

  let rec run w job =
    (try job () with _ -> ());
    let parked =
      Mutex.lock idle_lock;
      let ok = List.length !idle < max_idle in
      if ok then idle := w :: !idle;
      Mutex.unlock idle_lock;
      ok
    in
    if parked then begin
      Mutex.lock w.w_lock;
      while w.w_job = None do
        Condition.wait w.w_cond w.w_lock
      done;
      let next = Option.get w.w_job in
      w.w_job <- None;
      Mutex.unlock w.w_lock;
      run w next
    end

  let submit job =
    let reused =
      Mutex.lock idle_lock;
      let w =
        match !idle with
        | [] -> None
        | w :: rest ->
          idle := rest;
          Some w
      in
      Mutex.unlock idle_lock;
      w
    in
    match reused with
    | Some w ->
      Mutex.lock w.w_lock;
      w.w_job <- Some job;
      Condition.signal w.w_cond;
      Mutex.unlock w.w_lock
    | None ->
      let w =
        { w_lock = Mutex.create (); w_cond = Condition.create (); w_job = None }
      in
      ignore (Thread.create (fun () -> run w job) ())
end

(* --- attempt outcome classes ------------------------------------------- *)

type block_class = Good | Retryable | Stale | Terminal

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let error_code block =
  match String.split_on_char ' ' (first_line block) with
  | "error" :: code :: _ -> Some code
  | _ -> None

let classify_block block =
  match error_code block with
  | None -> Good
  | Some code -> (
    match code with
    | "OVERLOADED" | "UNAVAILABLE" | "FAULT" | "INTERNAL" -> Retryable
    | "STALE_EPOCH" -> Stale
    | _ -> Terminal (* DEADLINE, BADREQ, OVERSIZED, RELOAD *))

let is_deadline block = error_code block = Some "DEADLINE"

(* --- hedged, breaker-aware call to one shard --------------------------- *)

let hedge_delay t rep =
  Float.max t.cfg.hedge_min_s
    (Limiter.Window.percentile (Replica.window rep) t.cfg.hedge_pctl)

(* Returns the winning block plus the winning replica's serving epoch
   (as last observed around the reply) — the router's input to the
   mixed-merge refusal when no target pin is in force. *)
let shard_call t si ~key line ~deadline =
  let replicas = t.shard_array.(si) in
  let r = Array.length replicas in
  let pref = Int64.to_int (Shard_map.fingerprint key) land max_int mod r in
  let rotated = Array.init r (fun j -> replicas.((pref + j) mod r)) in
  (* healthy-looking replicas first; open-breaker, probed-down, or
     scrubber-fenced ones stay reachable as a last resort (trying them
     is itself a probe) *)
  let eligible, suspect =
    List.partition
      (fun rep ->
        Replica.up rep
        && (not (Replica.degraded rep))
        && Limiter.Breaker.state (Replica.breaker rep) <> Limiter.Breaker.Open)
      (Array.to_list rotated)
  in
  let order = Array.of_list (eligible @ suspect) in
  (* attempt threads push outcomes here and poke the pipe; the pipe (not
     a condvar) because systhreads has no timed wait and the hedge timer
     needs one *)
  let lock = Mutex.create () in
  let inbox = ref [] in
  let closed = ref false in
  let pipe_r, pipe_w = Unix.pipe () in
  let push res =
    Mutex.lock lock;
    inbox := res :: !inbox;
    if not !closed then (
      try ignore (Unix.write_substring pipe_w "x" 0 1)
      with Unix.Unix_error _ -> ());
    Mutex.unlock lock
  in
  let finish reply =
    Mutex.lock lock;
    closed := true;
    Mutex.unlock lock;
    (try Unix.close pipe_r with Unix.Unix_error _ -> ());
    (try Unix.close pipe_w with Unix.Unix_error _ -> ());
    reply
  in
  let launched = ref 0 in
  let pending = ref 0 in
  let next_hedge_at = ref infinity in
  let launch ~hedge () =
    let rep = order.(!launched) in
    incr launched;
    incr pending;
    if hedge then Metrics.incr t.c_hedges;
    next_hedge_at := Unix.gettimeofday () +. hedge_delay t rep;
    Workers.submit (fun () ->
        let t0 = Unix.gettimeofday () in
        let timeout = deadline -. t0 in
        let res =
          if timeout <= 0.0 then Error "cluster deadline exhausted"
          else Replica.call ~timeout_s:timeout rep line
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        (* the attempt records its own outcome, win or lose *)
        (match res with
        | Ok block -> (
          match classify_block block with
          | Good ->
            Limiter.Breaker.record (Replica.breaker rep) ~ok:true;
            Limiter.Window.observe (Replica.window rep) elapsed
          | Retryable -> Limiter.Breaker.record (Replica.breaker rep) ~ok:false
          | Stale | Terminal ->
            (* the server is responsive; the request just can't win *)
            Limiter.Breaker.record (Replica.breaker rep) ~ok:true)
        | Error _ -> Limiter.Breaker.record (Replica.breaker rep) ~ok:false);
        push (hedge, Replica.epoch rep, res))
  in
  launch ~hedge:false ();
  let last_shed = ref None in
  let last_transport = ref "no replica reachable" in
  let rec loop () =
    let now = Unix.gettimeofday () in
    if now >= deadline then begin
      Metrics.incr t.c_deadline;
      finish
        (Protocol.error_line Protocol.Deadline "cluster budget exhausted", None)
    end
    else begin
      let fresh =
        Mutex.lock lock;
        let f = List.rev !inbox in
        inbox := [];
        Mutex.unlock lock;
        f
      in
      let winner = ref None in
      List.iter
        (fun (was_hedge, rep_epoch, res) ->
          if !winner = None then
            match res with
            | Ok block -> (
              match classify_block block with
              | Good ->
                if was_hedge then Metrics.incr t.c_hedge_wins;
                winner := Some (block, rep_epoch)
              | Terminal ->
                if is_deadline block then Metrics.incr t.c_deadline;
                winner := Some (block, rep_epoch)
              | Stale ->
                (* the replica is healthy but serves the wrong artifact
                   version: fail over without a breaker penalty; if every
                   replica is stale the client gets this stable coded
                   error, never a mixed-version merge *)
                decr pending;
                Metrics.incr t.c_stale;
                last_shed := Some block;
                if !launched < r then begin
                  Metrics.incr t.c_failovers;
                  launch ~hedge:false ()
                end
              | Retryable ->
                decr pending;
                Metrics.incr t.c_replica_errors;
                last_shed := Some block;
                if !launched < r then begin
                  Metrics.incr t.c_failovers;
                  launch ~hedge:false ()
                end)
            | Error msg ->
              decr pending;
              Metrics.incr t.c_replica_errors;
              last_transport := msg;
              if !launched < r then begin
                Metrics.incr t.c_failovers;
                launch ~hedge:false ()
              end)
        fresh;
      match !winner with
      | Some (block, rep_epoch) -> finish (block, rep_epoch)
      | None ->
        if !pending = 0 && !launched >= r then
          finish
            (match !last_shed with
            | Some block -> (block, None)
            | None ->
              Metrics.incr t.c_unavailable;
              ( Protocol.error_line Protocol.Unavailable
                  (Printf.sprintf "shard %d: %s" si !last_transport),
                None ))
        else begin
          let hedge_armed = !launched < r && !pending > 0 in
          let wake =
            if hedge_armed then Float.min deadline !next_hedge_at else deadline
          in
          let timeout = Float.max 0.0 (wake -. Unix.gettimeofday ()) in
          (match Unix.select [ pipe_r ] [] [] timeout with
          | [], _, _ ->
            if hedge_armed && Unix.gettimeofday () >= !next_hedge_at then
              launch ~hedge:true ()
          | _ :: _, _, _ -> (
            let buf = Bytes.create 16 in
            try ignore (Unix.read pipe_r buf 0 16)
            with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop ()
        end
    end
  in
  loop ()

(* --- verbs -------------------------------------------------------------- *)

let replica_count t =
  Array.fold_left (fun acc reps -> acc + Array.length reps) 0 t.shard_array

let up_count t =
  Array.fold_left
    (fun acc reps ->
      Array.fold_left
        (fun acc rep -> if Replica.up rep then acc + 1 else acc)
        acc reps)
    0 t.shard_array

let degraded_count t =
  Array.fold_left
    (fun acc reps ->
      Array.fold_left
        (fun acc rep -> if Replica.degraded rep then acc + 1 else acc)
        acc reps)
    0 t.shard_array

let probe_all t =
  let up = ref 0 in
  Array.iter
    (Array.iter (fun rep ->
         if Replica.probe rep then incr up else Metrics.incr t.c_probe_down))
    t.shard_array;
  Metrics.set_gauge t.g_up !up;
  !up

(* --- two-phase rolling reload ------------------------------------------- *)

(* wait until [rep] probes healthy again, and — when [epoch] is given —
   reports that serving epoch *)
let gate t ?epoch rep =
  let t0 = Unix.gettimeofday () in
  let settled () =
    Replica.probe ~force:true rep
    &&
    match epoch with
    | None -> true
    | Some e -> (
      match Replica.epoch rep with
      | Some e' -> Epoch.equal e' e
      | None -> false)
  in
  let rec go () =
    if settled () then true
    else if Unix.gettimeofday () -. t0 > t.cfg.reload_gate_s then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* pre-epoch walk, one replica at a time — kept for backends that answer
   [reload] but not the two-phase verbs *)
let legacy_reload t =
  let total = ref 0 in
  let failure = ref None in
  Array.iter
    (fun reps ->
      Array.iter
        (fun rep ->
          if !failure = None then
            match Replica.call ~timeout_s:30.0 rep "reload" with
            | Ok block when has_prefix ~prefix:"ok reload" block ->
              (* gate: this replica must probe healthy again before
                 the next one leaves rotation *)
              if gate t rep then incr total
              else
                failure :=
                  Some
                    (Printf.sprintf
                       "replica %s did not probe healthy within %.0fs of \
                        reloading"
                       (Replica.name rep) t.cfg.reload_gate_s)
            | Ok block ->
              failure :=
                Some
                  (Printf.sprintf "replica %s: %s" (Replica.name rep)
                     (first_line block))
            | Error msg -> failure := Some msg)
        reps)
    t.shard_array;
  match !failure with
  | Some msg -> Error msg
  | None ->
    Metrics.incr t.c_reloads;
    Ok (Printf.sprintf "replicas %d" !total)

(* "ok prepare epoch <e> patterns <n> checksum <hex>" *)
let prepare_epoch block =
  match String.split_on_char ' ' (first_line block) with
  | "ok" :: "prepare" :: "epoch" :: e :: _ -> Epoch.of_string e
  | _ -> None

let all_replicas t =
  Array.to_list t.shard_array |> List.concat_map Array.to_list

let two_phase_reload t =
  (* phase 1 — prepare: every replica stages and verifies the new
     artifact set; nothing serves it yet *)
  let prepared = ref [] in
  let unsupported = ref false in
  let failure = ref None in
  let epoch_seen = ref None in
  List.iter
    (fun rep ->
      if !failure = None && not !unsupported then
        match Replica.call ~timeout_s:30.0 rep "prepare" with
        | Ok block when has_prefix ~prefix:"ok prepare" block -> (
          prepared := rep :: !prepared;
          match prepare_epoch block with
          | None ->
            failure :=
              Some
                (Printf.sprintf "replica %s: unparseable prepare ack %S"
                   (Replica.name rep) (first_line block))
          | Some e -> (
            match !epoch_seen with
            | None -> epoch_seen := Some e
            | Some e0 when Epoch.equal e0 e -> ()
            | Some e0 ->
              failure :=
                Some
                  (Printf.sprintf
                     "prepare staged mixed epochs %s (earlier replicas) and \
                      %s (replica %s) — artifact push incomplete?"
                     (Epoch.to_string e0) (Epoch.to_string e)
                     (Replica.name rep))))
        | Ok block
          when error_code block = Some "UNAVAILABLE"
               || error_code block = Some "BADREQ" ->
          unsupported := true
        | Ok block ->
          failure :=
            Some
              (Printf.sprintf "replica %s: %s" (Replica.name rep)
                 (first_line block))
        | Error msg -> failure := Some msg)
    (all_replicas t);
  let abort_prepared () =
    if !prepared <> [] then begin
      Metrics.incr t.c_reload_aborts;
      List.iter
        (fun rep -> ignore (Replica.call ~timeout_s:10.0 rep "abort"))
        !prepared
    end
  in
  if !unsupported then begin
    (* a backend predates the two-phase verbs: release any staged swaps
       and fall back to the single-phase walk *)
    abort_prepared ();
    legacy_reload t
  end
  else
    match !failure with
    | Some msg ->
      abort_prepared ();
      Error msg
    | None -> (
      let epoch = Option.get !epoch_seen (* shards are non-empty *) in
      (* phase 2a — first wave: commit one replica per shard and gate on
         it serving the new epoch; if any shard cannot field the new
         epoch, release everything — flipping the target would strand
         that shard behind STALE_EPOCH *)
      let committed = ref [] in
      let wave0 =
        Array.to_list t.shard_array
        |> List.map (fun reps ->
               match Array.to_list reps |> List.find_opt Replica.up with
               | Some rep -> rep
               | None -> reps.(0))
      in
      let commit_one rep =
        match Replica.call ~timeout_s:30.0 rep "commit" with
        | Ok block when has_prefix ~prefix:"ok commit" block ->
          committed := rep :: !committed;
          Replica.set_epoch rep (Some epoch);
          Ok ()
        | Ok block ->
          Error
            (Printf.sprintf "replica %s: %s" (Replica.name rep)
               (first_line block))
        | Error msg -> Error msg
      in
      let wave0_failure = ref None in
      List.iter
        (fun rep ->
          if !wave0_failure = None then
            match commit_one rep with
            | Error msg -> wave0_failure := Some msg
            | Ok () ->
              if not (gate t ~epoch rep) then
                wave0_failure :=
                  Some
                    (Printf.sprintf
                       "replica %s did not serve epoch %s within %.0fs of \
                        committing"
                       (Replica.name rep) (Epoch.to_string epoch)
                       t.cfg.reload_gate_s))
        wave0;
      match !wave0_failure with
      | Some msg ->
        (* release replicas still holding a staged swap; replicas that
           already committed are ahead of the (unchanged) target and the
           scrubber fences them until a later reload succeeds *)
        prepared :=
          List.filter
            (fun rep -> not (List.memq rep !committed))
            !prepared;
        abort_prepared ();
        Error msg
      | None ->
        (* the new epoch is live on every shard: flip the pin so new
           requests target it, then commit the remaining replicas *)
        Atomic.set t.target (Some epoch);
        let stragglers = ref 0 in
        List.iter
          (fun rep ->
            if not (List.memq rep !committed) then
              match commit_one rep with
              | Ok () ->
                if Replica.degraded rep then Replica.set_degraded rep false
              | Error msg ->
                incr stragglers;
                Replica.set_degraded rep true;
                t.on_diagnostic
                  (Diagnostic.makef ~rule:"RSY001" Diagnostic.Warning
                     "replica %s failed to commit epoch %s (%s): fenced \
                      until the scrubber repairs it"
                     (Replica.name rep) (Epoch.to_string epoch) msg))
          (all_replicas t);
        Metrics.set_gauge t.g_degraded (degraded_count t);
        Metrics.incr t.c_reloads;
        let total = List.length !committed in
        Ok (Printf.sprintf "replicas %d epoch %s" total (Epoch.to_string epoch)))

let rolling_reload t =
  if not (Mutex.try_lock t.reload_lock) then
    Error "a reload is already in progress"
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.reload_lock)
      (fun () -> two_phase_reload t)

(* --- anti-entropy scrub -------------------------------------------------- *)

let scrub t =
  match Fault.inject "scrub.probe" with
  | exception Fault.Injected _ ->
    (* chaos: this scrub round is lost; the next one repairs *)
    Metrics.incr t.c_scrub_faults;
    degraded_count t
  | () ->
    if not (Mutex.try_lock t.reload_lock) then
      (* a rolling reload is moving epochs on purpose; scrubbing through
         it would fence replicas mid-walk *)
      degraded_count t
    else begin
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.reload_lock)
        (fun () ->
          Metrics.incr t.c_scrubs;
          Array.iter
            (Array.iter (fun rep -> ignore (Replica.probe ~force:true rep)))
            t.shard_array;
          (* the newest epoch served by at least one up replica of every
             shard — the only epoch the whole cluster can answer *)
          let shard_epochs =
            Array.map
              (fun reps ->
                Array.to_list reps
                |> List.filter_map (fun rep ->
                       if Replica.up rep then Replica.epoch rep else None))
              t.shard_array
          in
          let all_reporting = Array.for_all (fun l -> l <> []) shard_epochs in
          (match Array.to_list shard_epochs with
          | [] -> ()
          | first :: rest -> (
            let common =
              List.filter
                (fun e -> List.for_all (List.exists (Epoch.equal e)) rest)
                first
            in
            match common with
            | [] ->
              if all_reporting then
                t.on_diagnostic
                  (Diagnostic.makef ~rule:"EPO001" Diagnostic.Error
                     "no common artifact epoch across %d shards — cluster \
                      cannot answer any single-version query"
                     (Array.length t.shard_array))
            | e :: es ->
              let newest =
                List.fold_left
                  (fun a e -> if Epoch.compare e a > 0 then e else a)
                  e es
              in
              Atomic.set t.target (Some newest)));
          (match Atomic.get t.target with
          | None -> ()
          | Some tgt ->
            Array.iter
              (Array.iter (fun rep ->
                   if Replica.up rep then
                     match Replica.epoch rep with
                     | Some e when Epoch.equal e tgt ->
                       if Replica.degraded rep then
                         Replica.set_degraded rep false
                     | e ->
                       if not (Replica.degraded rep) then begin
                         Replica.set_degraded rep true;
                         t.on_diagnostic
                           (Diagnostic.makef ~rule:"RSY001" Diagnostic.Warning
                              "replica %s serves epoch %s, cluster target is \
                               %s: fenced from merges"
                              (Replica.name rep)
                              (match e with
                              | Some e -> Epoch.to_string e
                              | None -> "none")
                              (Epoch.to_string tgt))
                       end;
                       let behind =
                         match e with
                         | None -> true
                         | Some e -> Epoch.compare e tgt < 0
                       in
                       if behind && t.cfg.resync then begin
                         Metrics.incr t.c_resyncs;
                         let repaired =
                           match Replica.call ~timeout_s:30.0 rep "reload" with
                           | Ok block
                             when has_prefix ~prefix:"ok reload" block ->
                             ignore (Replica.probe ~force:true rep);
                             (match Replica.epoch rep with
                             | Some e' when Epoch.equal e' tgt ->
                               Replica.set_degraded rep false;
                               true
                             | _ -> false)
                           | Ok _ | Error _ -> false
                         in
                         if not repaired then
                           t.on_diagnostic
                             (Diagnostic.makef ~rule:"RSY002" Diagnostic.Error
                                "replica %s resync did not reach epoch %s — \
                                 re-push the artifact set"
                                (Replica.name rep) (Epoch.to_string tgt))
                       end))
              t.shard_array);
          let d = degraded_count t in
          Metrics.set_gauge t.g_degraded d;
          d)
    end

let start_probes t ~stop =
  Thread.create
    (fun () ->
      let next_scrub =
        ref (Unix.gettimeofday () +. t.cfg.scrub_interval_s)
      in
      while not (stop ()) do
        ignore (probe_all t);
        if Unix.gettimeofday () >= !next_scrub then begin
          ignore (scrub t);
          next_scrub := Unix.gettimeofday () +. t.cfg.scrub_interval_s
        end;
        (* jittered cadence: many routers fronting one fleet must not
           probe (or scrub) in lockstep *)
        let u =
          Mutex.lock t.prng_lock;
          let u = Prng.float t.prng 1.0 in
          Mutex.unlock t.prng_lock;
          u
        in
        let interval = t.cfg.probe_interval_s *. (0.75 +. (0.5 *. u)) in
        let until = Unix.gettimeofday () +. interval in
        while (not (stop ())) && Unix.gettimeofday () < until do
          Thread.delay 0.05
        done
      done)
    ()

let dispatch t line =
  let tag, body = Protocol.split_tag line in
  match classify t body with
  | Ignore -> `None
  | Quit -> `Quit
  | Bad cmd ->
    `Reply
      (Protocol.tag_reply tag
         (Protocol.error_line Protocol.Badreq
            (Printf.sprintf "unknown command %S" cmd)))
  | Health ->
    `Reply
      (Protocol.tag_reply tag
         (Printf.sprintf
            "ok health shards %d replicas %d up %d degraded %d uptime %.3f \
             epoch %s"
            (Array.length t.shard_array)
            (replica_count t) (up_count t) (degraded_count t)
            (Unix.gettimeofday () -. t.started)
            (match Atomic.get t.target with
            | Some e -> Epoch.to_string e
            | None -> "none")))
  | Epoch_verb ->
    `Reply
      (Protocol.tag_reply tag
         (Printf.sprintf "ok epoch %s"
            (match Atomic.get t.target with
            | Some e -> Epoch.to_string e
            | None -> "none")))
  | Stats ->
    `Reply
      (Protocol.tag_reply tag
         ("begin stats\n" ^ Metrics.render_machine t.metrics ^ "end stats"))
  | Reload_verb ->
    `Reply
      (Protocol.tag_reply tag
         (match rolling_reload t with
         | Ok msg -> "ok reload " ^ msg
         | Error msg -> Protocol.error_line Protocol.Reload_failed msg))
  | Data (verb, key) ->
    Metrics.incr t.c_requests;
    let t0 = Unix.gettimeofday () in
    let deadline = t0 +. t.cfg.deadline_s in
    let target = Atomic.get t.target in
    (* the pin: every scattered request names the cluster target epoch,
       so each shard block is either served at that epoch or answered
       STALE_EPOCH (and failed over) — a mixed-version merge cannot be
       assembled in the first place *)
    let sent =
      match target with
      | Some e -> Printf.sprintf "at %s %s" (Epoch.to_string e) body
      | None -> body
    in
    let n = Array.length t.shard_array in
    let results =
      if n = 1 then [| shard_call t 0 ~key sent ~deadline |]
      else begin
        (* scatter: the last shard runs in the dispatching thread — one
           helper per extra shard, not per shard *)
        let out = Array.make n (("", None) : string * Epoch.t option) in
        let join_lock = Mutex.create () in
        let join_cond = Condition.create () in
        let left = ref (n - 1) in
        for i = 0 to n - 2 do
          Workers.submit (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  Mutex.lock join_lock;
                  decr left;
                  if !left = 0 then Condition.signal join_cond;
                  Mutex.unlock join_lock)
                (fun () -> out.(i) <- shard_call t i ~key sent ~deadline))
        done;
        out.(n - 1) <- shard_call t (n - 1) ~key sent ~deadline;
        Mutex.lock join_lock;
        while !left > 0 do
          Condition.wait join_cond join_lock
        done;
        Mutex.unlock join_lock;
        out
      end
    in
    let blocks = Array.to_list results |> List.map fst in
    (* under a pin the epochs are equal by construction; unpinned, the
       winners' observed epochs feed the merge-layer refusal *)
    let epochs =
      Array.to_list results
      |> List.map (fun (_, e) -> Option.map Epoch.to_string e)
    in
    let reply =
      try Merge.merge ~epochs verb blocks
      with Failure msg -> Protocol.error_line Protocol.Internal msg
    in
    Metrics.observe t.h_latency (Unix.gettimeofday () -. t0);
    `Reply (Protocol.tag_reply tag reply)

(* --- front TCP listener ------------------------------------------------- *)

type listen_outcome = { connections : int; overloaded : int }

let listen ?(max_conns = 256) ?(drain_s = 5.0)
    ?(bind_addr = Unix.inet_addr_loopback)
    ?(max_line_bytes = Protocol.default_max_line_bytes) ?on_listen
    ?(should_stop = fun () -> false) t ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let conns_c = Metrics.counter t.metrics "cluster.connections" in
  let shed_c = Metrics.counter t.metrics "cluster.shed_connections" in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let actual_port =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (bind_addr, port));
      Unix.listen sock 64;
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> port
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  Option.iter (fun f -> f actual_port) on_listen;
  let stopping = Atomic.make false in
  let prober = start_probes t ~stop:(fun () -> Atomic.get stopping) in
  let active = Atomic.make 0 in
  let connections = ref 0 in
  let overloaded = ref 0 in
  let handle fd =
    (* replies flush in small writes; without this, Nagle holds the final
       short segment for the client's delayed ACK (tens of ms) *)
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ | Invalid_argument _ -> ());
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try
       let quit = ref false in
       while not !quit do
         match Serve.read_bounded_line ic ~max_bytes:max_line_bytes with
         | `Too_long ->
           output_string oc
             (Protocol.error_line Protocol.Oversized
                (Printf.sprintf "request exceeds %d bytes" max_line_bytes));
           output_char oc '\n';
           flush oc
         | `Line line -> (
           match dispatch t line with
           | `None -> ()
           | `Quit -> quit := true
           | `Reply r ->
             output_string oc r;
             output_char oc '\n';
             flush oc)
       done
     with End_of_file | Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Atomic.decr active
  in
  let running = ref true in
  while !running do
    if should_stop () then running := false
    else begin
      match Unix.select [ sock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ ->
          incr connections;
          Metrics.incr conns_c;
          if Atomic.get active >= max_conns then begin
            incr overloaded;
            Metrics.incr shed_c;
            ignore
              (Thread.create
                 (fun fd ->
                   (try ignore (Unix.write_substring fd "OVERLOADED\n" 0 11)
                    with Unix.Unix_error _ -> ());
                   try Unix.close fd with Unix.Unix_error _ -> ())
                 fd)
          end
          else begin
            Atomic.incr active;
            ignore (Thread.create handle fd)
          end
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  let t0 = Unix.gettimeofday () in
  while Atomic.get active > 0 && Unix.gettimeofday () -. t0 < drain_s do
    Thread.delay 0.02
  done;
  Atomic.set stopping true;
  Thread.join prober;
  { connections = !connections; overloaded = !overloaded }
