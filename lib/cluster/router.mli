(** The cluster front: scatter-gather over shards with hedged,
    breaker-aware replica fan-out, health probing, and rolling reload.

    {b Routing.} Every data query is fanned out to {e all} shards and
    the per-shard blocks are merged ({!Merge}) — with partitioned
    pattern slices that is the only plan whose answers are byte-identical
    to one unsharded engine. The consistent hash decides two other
    things: which {e slice} holds a pattern ([tsg-serve --shard i/n]
    agrees via {!Shard_map}), and which {e replica} of each shard is
    preferred for a given query — the shard key (the label-closure root
    for [by-label], the whole request line for [contains]/[top-k])
    rotates the replica order, so repeats of a query land on the same
    replica and hit its LRU cache.

    {b Hedging and failover.} The preferred replica is asked first; if
    no reply lands within that replica's observed p95 latency
    ({!Tsg_util.Limiter.Window}, floored at [hedge_min_s]) the next
    replica is asked too and the first usable answer wins. Replies with
    a retryable code ([OVERLOADED], [UNAVAILABLE], [FAULT], [INTERNAL])
    and transport failures fail over to the next replica immediately;
    [DEADLINE] (and the other terminal codes) is returned as-is — the
    budget is gone, retrying would only double the load. Outcomes feed
    each replica's circuit breaker; open-breaker and probed-down
    replicas are deprioritized, never excluded (when everything is down,
    trying is the only probe there is). The whole fan-out is bounded by
    [deadline_s]; past it the client gets [error DEADLINE].

    {b Rolling reload.} A [reload] verb walks the cluster one replica at
    a time (shard by shard), sending each a [reload] and gating on its
    [health] probe recovering before touching the next — at most one
    replica per shard is ever out of rotation. Any failure aborts the
    walk with [error RELOAD]; already-reloaded replicas keep the new
    artifact (reloads are idempotent — re-issue the verb). *)

type config = {
  hedge_min_s : float;  (** hedge-delay floor, default 2ms *)
  hedge_pctl : float;  (** window percentile that fires the hedge, 95. *)
  deadline_s : float;  (** end-to-end per-request budget, default 2s *)
  probe_interval_s : float;  (** health-probe cadence, default 1s *)
  reload_gate_s : float;
      (** how long a reloaded replica gets to probe healthy, default 10s *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?taxonomy:Tsg_taxonomy.Taxonomy.t ->
  metrics:Tsg_util.Metrics.t ->
  shards:Replica.t array array ->
  unit ->
  t
(** [shards.(i)] are the replicas of shard [i]; every shard needs at
    least one. [taxonomy] enables label-closure-root affinity for
    [by-label] (without it the label name itself is the key — still
    deterministic, just less cache-friendly). Metrics appear under
    [cluster.*].
    @raise Invalid_argument on an empty shard. *)

val config : t -> config

val shards : t -> Replica.t array array

val dispatch : t -> string -> [ `Reply of string | `Quit | `None ]
(** Answer one request line (possibly [id]-tagged): data queries
    scatter-gather, [health] summarizes the cluster, [stats] dumps the
    router registry, [reload] runs the rolling walk, blank/[#] lines are
    [`None]. Thread-safe — connections dispatch concurrently. *)

val rolling_reload : t -> (string, string) result

val probe_all : t -> int
(** Probe every replica once; the number currently healthy. *)

val start_probes : t -> stop:(unit -> bool) -> Thread.t
(** Background probing every [probe_interval_s] until [stop ()]. *)

type listen_outcome = { connections : int; overloaded : int }

val listen :
  ?max_conns:int ->
  ?drain_s:float ->
  ?bind_addr:Unix.inet_addr ->
  ?max_line_bytes:int ->
  ?on_listen:(int -> unit) ->
  ?should_stop:(unit -> bool) ->
  t ->
  port:int ->
  unit ->
  listen_outcome
(** Serve {!dispatch} over TCP, mirroring {!Tsg_query.Serve.listen}:
    thread per connection, [port = 0] picks a free port ([on_listen]
    gets the bound one), beyond [max_conns] (default 256) clients are
    shed with a bare [OVERLOADED] line, [should_stop] polls ~4x/s and
    in-flight connections get [drain_s] (default 5s) to finish. Starts
    the probe thread for its lifetime. *)
