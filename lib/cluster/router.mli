(** The cluster front: scatter-gather over shards with hedged,
    breaker-aware replica fan-out, epoch-pinned merges, health probing,
    two-phase rolling reload, and anti-entropy repair.

    {b Routing.} Every data query is fanned out to {e all} shards and
    the per-shard blocks are merged ({!Merge}) — with partitioned
    pattern slices that is the only plan whose answers are byte-identical
    to one unsharded engine. The consistent hash decides two other
    things: which {e slice} holds a pattern ([tsg-serve --shard i/n]
    agrees via {!Shard_map}), and which {e replica} of each shard is
    preferred for a given query — the shard key (the label-closure root
    for [by-label], the whole request line for [contains]/[top-k])
    rotates the replica order, so repeats of a query land on the same
    replica and hit its LRU cache.

    {b Epoch pinning.} The router tracks a cluster {e target epoch}
    ({!Tsg_query.Epoch}) — set by a successful two-phase reload and
    maintained by the scrubber as the newest epoch served by at least
    one up replica of {e every} shard. While a target is set, every
    scattered request carries an [at <epoch>] pin, so each shard block
    is either computed at that epoch or answered [STALE_EPOCH] (which
    fails over to the next replica, without a breaker penalty): a
    mixed-version merge cannot be assembled. When every replica of a
    shard is stale the client gets the stable [error STALE_EPOCH] —
    never a silent mixed answer. Unpinned (before the first scrub), the
    winning replicas' observed epochs feed {!Merge.merge}'s refusal as
    a last line of defense.

    {b Hedging and failover.} The preferred replica is asked first; if
    no reply lands within that replica's observed p95 latency
    ({!Tsg_util.Limiter.Window}, floored at [hedge_min_s]) the next
    replica is asked too and the first usable answer wins. Replies with
    a retryable code ([OVERLOADED], [UNAVAILABLE], [FAULT], [INTERNAL])
    and transport failures fail over to the next replica immediately;
    [DEADLINE] (and the other terminal codes) is returned as-is — the
    budget is gone, retrying would only double the load. Outcomes feed
    each replica's circuit breaker; open-breaker, probed-down, and
    scrubber-fenced replicas are deprioritized, never excluded (when
    everything is down, trying is the only probe there is). The whole
    fan-out is bounded by [deadline_s]; past it the client gets
    [error DEADLINE].

    {b Two-phase rolling reload.} The [reload] verb first sends
    [prepare] to {e every} replica: each stages and checksum-verifies
    the new artifact set without serving it, and reports the staged
    epoch. Any prepare failure — including replicas staging {e
    different} epochs — aborts the round ([abort] releases every staged
    swap) and nothing changes. Then one replica per shard commits and
    must probe healthy {e at the new epoch} within [reload_gate_s];
    once every shard serves the new epoch the router flips its target
    pin and commits the rest. A replica that fails this second wave is
    fenced ([RSY001]) for the scrubber to repair — clients never see
    the gap because the pin routes around it. Backends that answer
    [UNAVAILABLE]/[BADREQ] to [prepare] get the pre-epoch single-phase
    walk (one replica out of rotation at a time, gated on its health
    probe).

    {b Anti-entropy.} Every [scrub_interval_s] the probe thread runs
    {!scrub}: force-probes every replica, recomputes the target epoch,
    fences replicas serving any other epoch ([RSY001] — they take no
    data traffic), and, when [resync] is on, drives stragglers {e
    behind} the target through a [reload] ([RSY002] when that fails to
    reach the target; [EPO001] when no epoch is common to all shards).
    Probe and scrub cadence is jittered so many routers fronting one
    fleet spread out. *)

type config = {
  hedge_min_s : float;  (** hedge-delay floor, default 2ms *)
  hedge_pctl : float;  (** window percentile that fires the hedge, 95. *)
  deadline_s : float;  (** end-to-end per-request budget, default 2s *)
  probe_interval_s : float;  (** health-probe cadence, default 1s *)
  reload_gate_s : float;
      (** how long a reloaded/committed replica gets to probe healthy at
          the expected epoch, default 10s *)
  scrub_interval_s : float;  (** anti-entropy cadence, default 5s *)
  resync : bool;
      (** scrub drives stale replicas through a reload, default true —
          off, they stay fenced until an operator intervenes *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?on_diagnostic:(Tsg_util.Diagnostic.t -> unit) ->
  metrics:Tsg_util.Metrics.t ->
  shards:Replica.t array array ->
  unit ->
  t
(** [shards.(i)] are the replicas of shard [i]; every shard needs at
    least one. [taxonomy] enables label-closure-root affinity for
    [by-label] (without it the label name itself is the key — still
    deterministic, just less cache-friendly). [on_diagnostic] receives
    the scrub/reload findings ([EPO001], [RSY001], [RSY002]); default
    prints to stderr. Metrics appear under [cluster.*].
    @raise Invalid_argument on an empty shard. *)

val config : t -> config

val shards : t -> Replica.t array array

val target_epoch : t -> Tsg_query.Epoch.t option
(** The epoch data requests are pinned to; [None] until the first
    successful two-phase reload or scrub. *)

val dispatch : t -> string -> [ `Reply of string | `Quit | `None ]
(** Answer one request line (possibly [id]-tagged): data queries
    scatter-gather under the epoch pin, [health] summarizes the cluster
    (including [degraded] and [epoch]), [epoch] reports the target pin,
    [stats] dumps the router registry, [reload] runs the two-phase
    rolling reload, blank/[#] lines are [`None]. Thread-safe —
    connections dispatch concurrently. *)

val rolling_reload : t -> (string, string) result
(** The two-phase reload described above. [Ok "replicas <n> epoch <e>"]
    (or [Ok "replicas <n>"] via the legacy walk); [Error] aborts leave
    every replica serving its pre-reload artifact set. *)

val probe_all : t -> int
(** Probe every replica once; the number currently healthy. *)

val scrub : t -> int
(** One anti-entropy round (normally driven by the probe thread);
    returns the number of replicas left fenced. Skips (returning the
    current fenced count) while a reload holds the lock, and when the
    [scrub.probe] failpoint fires. *)

val start_probes : t -> stop:(unit -> bool) -> Thread.t
(** Background probing every ~[probe_interval_s] (jittered ±25%) until
    [stop ()]; runs {!scrub} every [scrub_interval_s]. *)

type listen_outcome = { connections : int; overloaded : int }

val listen :
  ?max_conns:int ->
  ?drain_s:float ->
  ?bind_addr:Unix.inet_addr ->
  ?max_line_bytes:int ->
  ?on_listen:(int -> unit) ->
  ?should_stop:(unit -> bool) ->
  t ->
  port:int ->
  unit ->
  listen_outcome
(** Serve {!dispatch} over TCP, mirroring {!Tsg_query.Serve.listen}:
    thread per connection, [port = 0] picks a free port ([on_listen]
    gets the bound one), beyond [max_conns] (default 256) clients are
    shed with a bare [OVERLOADED] line, [should_stop] polls ~4x/s and
    in-flight connections get [drain_s] (default 5s) to finish. Starts
    the probe/scrub thread for its lifetime. *)
