(** Simulated KEGG metabolic-pathway datasets (paper Section 4.2, Table 2).

    The paper mines, for each of 25 metabolic pathways, the
    organism-specific versions from 30 prokaryotic organisms: graphs whose
    nodes are GO molecular-function annotations of the enzymes catalyzing
    each reaction, with edges through shared substrates/products. KEGG is
    not available offline, so each pathway is simulated as a conserved
    template graph plus per-organism variants:

    - the template's size follows the pathway's Table 2 node/edge averages;
    - a per-pathway {e conservation} level (calibrated from the paper's
      per-pathway pattern counts) controls how often an organism keeps an
      enzyme annotation {e functionally similar} to the template's (a
      re-specialization under a shared ancestor) versus replacing it with an
      unrelated function;
    - light structural edits (edge insertions/deletions) model pathway
      variation across organisms.

    This preserves what the experiment measures: common structure exists
    mostly at generalized annotation levels, and the mined pattern count
    grows with conservation. *)

type spec = {
  name : string;
  paper_time_ms : int;  (** Table 2 "Time (msec)" *)
  paper_patterns : int;  (** Table 2 "Pattern Count" *)
  avg_nodes : float;
  avg_edges : float;
}

val table2 : spec list
(** All 25 pathways, in the paper's (running-time) order. *)

val conservation : spec -> float
(** In [0.30, 0.92], increasing in the paper's pattern count (log scale). *)

val paper_organism_count : int
(** 30. *)

val generate :
  Tsg_util.Prng.t ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?organisms:int ->
  spec ->
  Tsg_graph.Db.t
(** One database of [organisms] (default 30) organism-specific versions of
    the pathway. Node labels are leaf-level taxonomy concepts; edges carry a
    single label (0). *)

val generate_all :
  Tsg_util.Prng.t ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?organisms:int ->
  unit ->
  (spec * Tsg_graph.Db.t) list
