
type spec = {
  id : string;
  graph_count : int;
  max_edges : int;
  edge_density : float;
  edge_label_count : int;
}

let mk id graph_count max_edges edge_density =
  { id; graph_count; max_edges; edge_density; edge_label_count = 10 }

let d_series =
  List.map
    (fun n -> mk (Printf.sprintf "D%d" n) n 20 0.27)
    [ 1000; 2000; 3000; 4000; 5000 ]

let nc_series =
  (* Table 1 reports the density falling as graphs grow: 0.32 .. 0.20 *)
  List.map2
    (fun max_edges density ->
      mk (Printf.sprintf "NC%d" max_edges) 4000 max_edges density)
    [ 10; 20; 30; 40 ]
    [ 0.32; 0.27; 0.23; 0.20 ]

let ed_series =
  (* max_edges tuned so the average edge count matches Table 1's rows *)
  List.map2
    (fun tag (density, max_edges) ->
      mk ("ED" ^ tag) 3000 max_edges density)
    [ "06"; "09"; "10"; "11" ]
    [ (0.06, 12); (0.09, 16); (0.10, 17); (0.11, 20) ]

let td_depths = [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

let td_spec ~depth = mk (Printf.sprintf "TD%d" depth) 4000 40 0.20

let ts_concept_counts = [ 25; 50; 100; 200; 400; 800; 1600; 3200 ]

let ts_spec ~concepts = mk (Printf.sprintf "TS%d" concepts) 4000 40 0.20

let d4000 = List.nth d_series 3

let scale factor spec =
  {
    spec with
    graph_count =
      max 10 (int_of_float (Float.round (factor *. float_of_int spec.graph_count)));
  }

let build rng ~node_label spec =
  Synth_graph.generate rng
    {
      Synth_graph.graph_count = spec.graph_count;
      max_edges = spec.max_edges;
      edge_density = spec.edge_density;
      edge_label_count = spec.edge_label_count;
      node_label;
    }

let all =
  d_series @ nc_series @ ed_series
  @ List.map (fun depth -> td_spec ~depth) td_depths
  @ List.map (fun concepts -> ts_spec ~concepts) ts_concept_counts

let find id = List.find_opt (fun s -> s.id = id) all
