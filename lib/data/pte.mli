(** Simulated PTE/NTP carcinogenicity molecules (paper Section 4.2, Fig 4.8).

    The real Predictive Toxicology Challenge set (416 molecular structures,
    atoms as nodes, bonds as edges) is not available offline. This generator
    produces molecule-like graphs under the Figure 4.1 atom taxonomy
    ({!Tsg_taxonomy.Atom_taxonomy}): carbon backbones with hydrogens and
    occasional hetero-atom substituents, aromatic rings of lower-case
    aromatic atoms, and rare halogens/metals. As in the paper's data, C, H
    and O dominate — which is exactly what makes the pattern count explode
    at high support thresholds (the paper's Figure 4.8 observation). *)

val paper_graph_count : int
(** 416. *)

val bond_label_names : string list
(** ["single"; "double"; "aromatic"] — edge label ids 0, 1, 2. *)

val generate :
  Tsg_util.Prng.t ->
  taxonomy:Tsg_taxonomy.Taxonomy.t ->
  ?molecules:int ->
  unit ->
  Tsg_graph.Db.t
(** [taxonomy] must be {!Tsg_taxonomy.Atom_taxonomy.create}'s;
    [molecules] defaults to {!paper_graph_count}. *)
