(** Synthetic graph-database generator (paper Section 4.1).

    The paper's generator takes a label taxonomy, maximum node and edge
    counts, and an edge-density parameter (Wörlein et al.'s
    [2 * edges / nodes^2]); node labels are drawn from the taxonomy, edge
    labels from a fixed-size set. Each graph picks an edge count up to the
    maximum, derives its node count from the density target, and is built as
    a random spanning tree plus random extra edges (so graphs are
    connected). *)

type params = {
  graph_count : int;
  max_edges : int;  (** per-graph edge-count cap (>= 1) *)
  edge_density : float;  (** target [2E/N^2], in (0, 1] *)
  edge_label_count : int;  (** distinct edge labels (>= 1) *)
  node_label : Tsg_util.Prng.t -> Tsg_graph.Label.id;
      (** node-label sampler (see {!samplers}) *)
}

val generate : Tsg_util.Prng.t -> params -> Tsg_graph.Db.t

val generate_graph :
  Tsg_util.Prng.t ->
  max_edges:int ->
  edge_density:float ->
  edge_label_count:int ->
  node_label:(Tsg_util.Prng.t -> Tsg_graph.Label.id) ->
  Tsg_graph.Graph.t
(** One connected graph under the same regime. *)

val generate_directed :
  Tsg_util.Prng.t -> params -> Tsg_graph.Digraph.t list
(** As {!generate}, orienting every generated edge uniformly at random —
    the directed-database counterpart used by the directed-mining mode. *)

(** {2:samplers Node-label samplers} *)

val uniform_labels : Tsg_taxonomy.Taxonomy.t -> Tsg_util.Prng.t -> Tsg_graph.Label.id
(** Uniform over every (non-artificial) taxonomy label. *)

val per_level_labels :
  Tsg_taxonomy.Taxonomy.t -> unit -> Tsg_util.Prng.t -> Tsg_graph.Label.id
(** Pick a taxonomy level uniformly, then a label uniformly within it — the
    paper's sampling for the taxonomy-depth experiments. The [unit]
    argument builds the per-level tables once. *)

val leaf_labels : Tsg_taxonomy.Taxonomy.t -> unit -> Tsg_util.Prng.t -> Tsg_graph.Label.id
(** Uniform over leaves (annotation-style labeling: real data annotates with
    the most specific concepts). *)
