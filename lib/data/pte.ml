module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng

let paper_graph_count = 416

let bond_label_names = [ "single"; "double"; "aromatic" ]

let single = 0

let double_ = 1

let aromatic_bond = 2

type builder = {
  mutable labels : int list; (* reversed *)
  mutable edges : (int * int * int) list;
  mutable count : int;
}

let add_node b l =
  b.labels <- l :: b.labels;
  b.count <- b.count + 1;
  b.count - 1

let add_edge b u v l = b.edges <- (u, v, l) :: b.edges

let molecule rng taxonomy =
  let id n = Taxonomy.id_of_name taxonomy n in
  let c = id "C" and h = id "H" and o = id "O" and n_ = id "N" in
  let s = id "S" and p = id "P" in
  let c_arom = id "c" and n_arom = id "n" in
  let halogens = [| id "F"; id "Cl"; id "Br"; id "I" |] in
  let b = { labels = []; edges = []; count = 0 } in
  (* carbon backbone chain *)
  let backbone_len = 3 + Prng.int rng 6 in
  let backbone =
    Array.init backbone_len (fun _ -> add_node b c)
  in
  for i = 1 to backbone_len - 1 do
    let bond = if Prng.bernoulli rng 0.15 then double_ else single in
    add_edge b backbone.(i - 1) backbone.(i) bond
  done;
  (* aromatic ring fused to the backbone *)
  if Prng.bernoulli rng 0.6 then begin
    let ring =
      Array.init 6 (fun _ ->
          add_node b (if Prng.bernoulli rng 0.12 then n_arom else c_arom))
    in
    for i = 0 to 5 do
      add_edge b ring.(i) ring.((i + 1) mod 6) aromatic_bond
    done;
    add_edge b ring.(0) (Prng.choose rng backbone) single
  end;
  (* substituents on backbone carbons *)
  Array.iter
    (fun carbon ->
      let hydrogens = Prng.int rng 3 in
      for _ = 1 to hydrogens do
        add_edge b (add_node b h) carbon single
      done;
      if Prng.bernoulli rng 0.30 then begin
        let hetero =
          let r = Prng.float rng 1.0 in
          if r < 0.55 then o
          else if r < 0.80 then n_
          else if r < 0.90 then s
          else p
        in
        let bond = if hetero = o && Prng.bernoulli rng 0.4 then double_ else single in
        add_edge b (add_node b hetero) carbon bond
      end;
      if Prng.bernoulli rng 0.06 then
        add_edge b (add_node b (Prng.choose rng halogens)) carbon single)
    backbone;
  (* occasional backbone ring closure *)
  if backbone_len >= 5 && Prng.bernoulli rng 0.25 then
    add_edge b backbone.(0) backbone.(backbone_len - 1) single;
  Graph.build
    ~labels:(Array.of_list (List.rev b.labels))
    ~edges:b.edges

let generate rng ~taxonomy ?(molecules = paper_graph_count) () =
  Db.of_array (Array.init molecules (fun _ -> molecule rng taxonomy))
