(** The named synthetic datasets of the paper's Table 1.

    Each spec carries the generator parameters that reproduce the table's
    rows (database size, per-graph edge cap, edge density, edge-label
    count). Taxonomies are chosen by the experiment: the D/NC/ED series use
    the GO-like taxonomy, TD/TS use synthetic taxonomies of varying
    depth/size, PTE uses the atom taxonomy (see {!Pathways} and {!Pte} for
    the real-data stand-ins). *)

type spec = {
  id : string;
  graph_count : int;
  max_edges : int;
  edge_density : float;
  edge_label_count : int;
}

val d_series : spec list
(** D1000 .. D5000 — varying database size (Figure 4.2); max 20 edges,
    density 0.27, 10 edge labels. *)

val nc_series : spec list
(** NC10 .. NC40 — varying max graph size (Figure 4.3); 4000 graphs. *)

val ed_series : spec list
(** ED06 .. ED11 — varying edge density (Figure 4.4); 3000 graphs. *)

val td_depths : int list
(** 5 .. 15, the taxonomy depths of Figure 4.5. *)

val td_spec : depth:int -> spec
(** TD<depth> — 4000 graphs, max 40 edges, density 0.2 (Figure 4.5). *)

val ts_concept_counts : int list
(** 25, 50, ..., 3200 — the taxonomy sizes of Figure 4.6. *)

val ts_spec : concepts:int -> spec
(** TS<concepts> (Figure 4.6). *)

val d4000 : spec
(** The Figure 4.7 support-threshold dataset. *)

val scale : float -> spec -> spec
(** Scale the database size (for quick benchmark runs); keeps at least 10
    graphs. *)

val build :
  Tsg_util.Prng.t ->
  node_label:(Tsg_util.Prng.t -> Tsg_graph.Label.id) ->
  spec ->
  Tsg_graph.Db.t

val find : string -> spec option
(** Look up any series spec by its Table 1 id (e.g. ["NC30"]). *)

val all : spec list
