module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng

type spec = {
  name : string;
  paper_time_ms : int;
  paper_patterns : int;
  avg_nodes : float;
  avg_edges : float;
}

let table2 =
  [
    ("Vitamin B6 metabolism", 119, 2, 7.03, 4.03);
    ("Inositol phosphate metabolism", 140, 7, 4.33, 3.33);
    ("Sulfur metabolism", 156, 7, 5.17, 3.23);
    ("Benzoate degradation via hydroxylation", 206, 60, 7.60, 5.30);
    ("Riboflavin metabolism", 210, 12, 7.63, 4.73);
    ("Nicotinate and nicotinamide metabolism", 216, 36, 6.67, 4.40);
    ("Thiamine metabolism", 259, 23, 4.57, 3.60);
    ("Lysine biosynthesis", 314, 61, 8.73, 7.67);
    ("Pentose and glucuronate interconversions", 323, 56, 10.83, 6.70);
    ("Synthesis and degradation of ketone bodies", 353, 31, 4.97, 4.10);
    ("Histidine metabolism", 361, 79, 8.83, 6.60);
    ("Tyrosine metabolism", 529, 57, 7.93, 6.13);
    ("Phenylalanine metabolism", 613, 32, 5.80, 4.40);
    ("Nucleotide sugars metabolism", 693, 106, 7.57, 6.30);
    ("Aminosugars metabolism", 808, 168, 8.20, 6.60);
    ("Citrate cycle (TCA cycle)", 1011, 174, 10.80, 8.63);
    ("Glyoxylate and dicarboxylate metabolism", 1036, 233, 9.10, 7.53);
    ("Selenoamino acid metabolism", 1046, 152, 6.90, 6.50);
    ("Valine, leucine and isoleucine biosynthesis", 1069, 75, 5.23, 4.70);
    ("Butanoate metabolism", 1789, 287, 10.57, 8.80);
    ("beta-Alanine metabolism", 3562, 661, 5.10, 5.60);
    ("Glycerolipid metabolism", 6872, 219, 8.10, 7.23);
    ("Biosynthesis of steroids", 10609, 830, 7.97, 8.87);
    ("Nitrogen metabolism", 62777, 1486, 7.20, 7.27);
    ("Pantothenate and CoA biosynthesis", 215047, 142, 10.43, 9.53);
  ]
  |> List.map (fun (name, t, p, n, e) ->
         {
           name;
           paper_time_ms = t;
           paper_patterns = p;
           avg_nodes = n;
           avg_edges = e;
         })

let paper_organism_count = 30

(* Map the paper's pattern counts (2 .. 1486) onto a conservation level:
   more shared patterns across organisms = higher conservation. *)
let conservation spec =
  let lo = log10 2.0 and hi = log10 1486.0 in
  let x = (log10 (float_of_int (max 2 spec.paper_patterns)) -. lo) /. (hi -. lo) in
  0.30 +. (0.62 *. Float.max 0.0 (Float.min 1.0 x))

let random_connected_graph rng ~nodes ~edges ~label =
  let n = max 2 nodes in
  let m = max (n - 1) (min edges (n * (n - 1) / 2)) in
  let labels = Array.init n (fun _ -> label rng) in
  let edge_set = Hashtbl.create m in
  let out = ref [] in
  let add u v =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem edge_set key) then begin
      Hashtbl.add edge_set key ();
      out := (u, v, 0) :: !out;
      true
    end
    else false
  in
  for v = 1 to n - 1 do
    ignore (add v (Prng.int rng v))
  done;
  let added = ref (n - 1) in
  let attempts = ref 0 in
  while !added < m && !attempts < 30 * m do
    incr attempts;
    if add (Prng.int rng n) (Prng.int rng n) then incr added
  done;
  Graph.build ~labels ~edges:!out

(* A "functionally similar" enzyme: re-specialize the template label under
   an ancestor one or two levels up, landing on a leaf again. *)
let similar_label rng taxonomy l =
  let hops = 1 + Prng.int rng 2 in
  let rec up l k =
    if k = 0 then l
    else
      match Taxonomy.parents taxonomy l with
      | [] -> l
      | ps -> up (List.nth ps (Prng.int rng (List.length ps))) (k - 1)
  in
  let anc = up l hops in
  let rec down l =
    match Taxonomy.children taxonomy l with
    | [] -> l
    | cs -> down (List.nth cs (Prng.int rng (List.length cs)))
  in
  down anc

let organism_variant rng taxonomy ~conservation ~random_leaf template =
  let n = Graph.node_count template in
  let labels =
    Array.init n (fun v ->
        let l = Graph.node_label template v in
        if Prng.bernoulli rng conservation then
          (* conserved reaction: usually the very same functional
             annotation, sometimes an organism-specific enzyme from the
             same function family *)
          if Prng.bernoulli rng 0.3 then l
          else similar_label rng taxonomy l
        else random_leaf rng)
  in
  (* structural variation: organisms lose reactions (edges) in proportion
     to how weakly conserved the pathway is, and occasionally gain one *)
  let keep_edge = 0.55 +. (0.45 *. conservation) in
  let edges =
    ref
      (List.filter
         (fun _ -> Prng.bernoulli rng keep_edge)
         (Array.to_list (Graph.edges template)))
  in
  if Prng.bernoulli rng 0.3 then begin
    let u = Prng.int rng n and v = Prng.int rng n in
    if
      u <> v
      && not
           (List.exists
              (fun (a, b, _) -> (a = u && b = v) || (a = v && b = u))
              !edges)
    then edges := (u, v, 0) :: !edges
  end;
  Graph.build ~labels ~edges:!edges

let generate rng ~taxonomy ?(organisms = paper_organism_count) spec =
  let random_leaf = Synth_graph.leaf_labels taxonomy () in
  let template =
    random_connected_graph rng
      ~nodes:(int_of_float (Float.round spec.avg_nodes))
      ~edges:(int_of_float (Float.round spec.avg_edges))
      ~label:random_leaf
  in
  let conservation = conservation spec in
  Db.of_array
    (Array.init organisms (fun _ ->
         organism_variant rng taxonomy ~conservation ~random_leaf template))

let generate_all rng ~taxonomy ?organisms () =
  List.map (fun spec -> (spec, generate rng ~taxonomy ?organisms spec)) table2
