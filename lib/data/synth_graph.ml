module Graph = Tsg_graph.Graph
module Db = Tsg_graph.Db
module Taxonomy = Tsg_taxonomy.Taxonomy
module Prng = Tsg_util.Prng

type params = {
  graph_count : int;
  max_edges : int;
  edge_density : float;
  edge_label_count : int;
  node_label : Prng.t -> Tsg_graph.Label.id;
}

let generate_graph rng ~max_edges ~edge_density ~edge_label_count ~node_label =
  if max_edges < 1 then invalid_arg "Synth_graph: max_edges must be >= 1";
  if edge_density <= 0.0 || edge_density > 1.0 then
    invalid_arg "Synth_graph: edge_density must be in (0, 1]";
  let target_edges = 1 + Prng.int rng max_edges in
  (* density = 2m/n^2  =>  n = sqrt(2m / density); sparse graphs may come
     out disconnected, exactly like the paper's ED series (14 nodes but
     only ~7 edges at density 0.06) *)
  let n =
    int_of_float
      (Float.round (sqrt (2.0 *. float_of_int target_edges /. edge_density)))
  in
  let n = max 2 n in
  let m = min target_edges (n * (n - 1) / 2) in
  let labels = Array.init n (fun _ -> node_label rng) in
  let edge_set = Hashtbl.create m in
  let edges = ref [] in
  let add u v =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem edge_set key) then begin
      Hashtbl.add edge_set key ();
      edges := (u, v, Prng.int rng edge_label_count) :: !edges;
      true
    end
    else false
  in
  (* when the density allows a spanning tree, lay one down first so that
     denser regimes (the D/NC/TD/TS series) yield mostly-connected graphs;
     below that, scatter the edges uniformly *)
  if m >= n - 1 then
    for v = 1 to n - 1 do
      ignore (add v (Prng.int rng v))
    done;
  let added = ref (List.length !edges) in
  let attempts = ref 0 in
  while !added < m && !attempts < 50 * (m + 1) do
    incr attempts;
    if add (Prng.int rng n) (Prng.int rng n) then incr added
  done;
  Graph.build ~labels ~edges:!edges

let generate rng p =
  Db.of_array
    (Array.init p.graph_count (fun _ ->
         generate_graph rng ~max_edges:p.max_edges
           ~edge_density:p.edge_density ~edge_label_count:p.edge_label_count
           ~node_label:p.node_label))

let generate_directed rng p =
  List.init p.graph_count (fun _ ->
      let g =
        generate_graph rng ~max_edges:p.max_edges
          ~edge_density:p.edge_density ~edge_label_count:p.edge_label_count
          ~node_label:p.node_label
      in
      let arcs =
        Array.to_list (Graph.edges g)
        |> List.map (fun (u, v, l) ->
               if Prng.bool rng then (u, v, l) else (v, u, l))
      in
      Tsg_graph.Digraph.build ~labels:(Graph.node_labels g) ~arcs)

let real_labels taxonomy =
  List.filter
    (fun l -> not (Taxonomy.is_artificial taxonomy l))
    (List.init (Taxonomy.label_count taxonomy) (fun i -> i))

let uniform_labels taxonomy =
  let pool = Array.of_list (real_labels taxonomy) in
  fun rng -> Prng.choose rng pool

let per_level_labels taxonomy () =
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let d = Taxonomy.depth taxonomy l in
      Hashtbl.replace by_level d
        (l :: Option.value ~default:[] (Hashtbl.find_opt by_level d)))
    (real_labels taxonomy);
  let levels =
    Hashtbl.fold (fun _ ls acc -> Array.of_list ls :: acc) by_level []
    |> Array.of_list
  in
  fun rng -> Prng.choose rng (Prng.choose rng levels)

let leaf_labels taxonomy () =
  let pool =
    Array.of_list
      (List.filter (fun l -> Taxonomy.is_leaf taxonomy l) (real_labels taxonomy))
  in
  fun rng -> Prng.choose rng pool
