(** The live corpus: the graph database a WAL describes.

    A corpus is a deterministic fold over committed WAL records — two
    replays of the same log build identical databases {e and} identical
    label tables (edge-label names are interned in record order, and the
    log is never compacted, so the interning order survives restarts).
    Graphs keep the sequence number of the record that added them as
    their identity; [Remove] records target that number.

    A record that cannot be applied — unparseable graph, node label
    outside the taxonomy, unknown or already-removed remove target,
    non-monotonic sequence — is {e rejected}: it consumes its sequence
    number (so replay stays aligned with the log) but leaves the
    database untouched, and the rejection is reported as a [PIPE001]
    diagnostic. Rejection is itself deterministic, being a pure function
    of the folded state. *)

type t

val create : taxonomy:Tsg_taxonomy.Taxonomy.t -> unit -> t
(** An empty corpus over the taxonomy, with a fresh edge-label table. *)

val taxonomy : t -> Tsg_taxonomy.Taxonomy.t

val edge_labels : t -> Tsg_graph.Label.t

val seq : t -> int64
(** Sequence number of the last record applied (or rejected); [0L]
    initially. *)

val size : t -> int

val db : t -> Tsg_graph.Db.t
(** The current database, graphs in record (addition) order. Rebuilt on
    each call; removal shifts the graph ids of later additions, which is
    why nothing downstream may cache id-keyed state across deltas. *)

val find : t -> int64 -> Tsg_graph.Graph.t option
(** The still-present graph added by record [seq], if any. *)

val apply : t -> Wal.record -> (Tsg_graph.Graph.t, Tsg_util.Diagnostic.t) result
(** Fold one committed record into the corpus. [Ok g] is the graph that
    was added or removed (the caller uses it to mark mining roots
    dirty); [Error d] is a [PIPE001] rejection — the record consumed its
    sequence number but changed nothing. *)

val to_serial : t -> string
(** The database in {!Tsg_graph.Serial} text form (labels by name), for
    [tsg-pipe export] and from-scratch comparison mines. *)
